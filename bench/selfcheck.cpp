// Selfcheck bench: what the differential harness costs per case, and how
// much of that cost each path contributes. Runs the same seeded case
// stream through three configurations — offline engines only, offline
// plus the loopback served path, and the full harness with the durable
// round-trip — timing each. A clean tree must report zero disagreements
// in every row; any other count is a harness bug, not a slow bench.
//
// The point of the numbers: the selfcheck CI smoke runs 2000 cases per
// sanitizer pass, so cases/sec here bounds how much fuzz budget the gate
// can afford. Writes the BENCH_selfcheck.json sidecar for CI.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "check/selfcheck.h"
#include "util/timer.h"

namespace infoleak::bench {
namespace {

struct PathPlan {
  const char* name;
  bool served;
  bool durable;
  std::size_t cases;
};

int Main() {
  const std::size_t kSeed = 1;
  const std::string config_str = "seed=1 naive_max=12 mc_samples=4000";
  PrintTitle("bench_selfcheck: differential harness throughput by path",
             config_str);
  const std::vector<std::string> columns{"paths",     "cases",
                                         "cases_per_s", "comparisons",
                                         "cmp_per_case", "disagreements"};
  BenchReport report("selfcheck", config_str, columns);
  RowPrinter rows(columns, 14, &report);

  // The served path adds two socket round-trips per engine per case; the
  // durable path batches its cost into one recovery at the end. Offline
  // gets the biggest sweep because it is the cheapest per case.
  const std::vector<PathPlan> plans{
      {"offline", false, false, 4000},
      {"offline+served", true, false, 1500},
      {"all", true, true, 1500},
  };
  for (const PathPlan& plan : plans) {
    check::SelfCheckConfig config;
    config.cases = plan.cases;
    config.seed = kSeed;
    config.check_served = plan.served;
    config.check_durable = plan.durable;
    config.extend_corpus = false;  // a bench must never mutate the tree
    WallTimer timer;
    auto run = check::RunSelfCheck(config);
    const double seconds = timer.ElapsedSeconds();
    if (!run.ok()) {
      std::fprintf(stderr, "selfcheck: %s\n",
                   run.status().ToString().c_str());
      return 1;
    }
    if (!run->clean()) {
      std::fprintf(stderr, "selfcheck found %zu disagreement(s); fix the\n"
                           "engines before trusting the timings:\n%s\n",
                   run->disagreements, run->Summary().c_str());
      return 1;
    }
    rows.Row({plan.name, std::to_string(plan.cases),
              Fmt(static_cast<double>(plan.cases) / std::max(1e-9, seconds),
                  6),
              std::to_string(run->comparisons),
              Fmt(static_cast<double>(run->comparisons) /
                      static_cast<double>(std::max<std::size_t>(1,
                                                                plan.cases)),
                  4),
              std::to_string(run->disagreements)});
  }

  std::printf(
      "\nreading: the offline row is the per-case price of the cross-\n"
      "engine oracle itself (naive/exact/approx/MC/bounds/batch/auto);\n"
      "the served delta is socket round-trips through a loopback\n"
      "`infoleak serve`; the durable delta amortizes one WAL recovery\n"
      "over the whole run. Disagreements must read 0 everywhere.\n");
  Status written = report.WriteFile(".");
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace infoleak::bench

int main() { return infoleak::bench::Main(); }
