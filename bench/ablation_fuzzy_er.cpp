// Ablation: exact vs fuzzy entity matching on a realistic web-profile
// workload with misspelled names. Exact matching splits a person whose
// name was typo'd into separate entities (losing linkage — and hence
// leakage the adversary could have had); fuzzy matching repairs it at
// the price of possible over-merging. The sweep charts clustering quality
// (pairwise F1 vs ground truth) and the resulting worst-person leakage
// across the similarity threshold.

#include "bench/harness.h"
#include "core/leakage.h"
#include "er/cluster_quality.h"
#include "er/similarity_match.h"
#include "er/transitive.h"
#include "gen/realistic.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

/// Worst-person leakage plus the wall time spent scoring it; all timing in
/// this harness goes through infoleak::WallTimer (the same clock the
/// resolvers report through ErStats) rather than raw std::chrono.
std::pair<double, double> WorstLeakage(
    const Database& resolved, const std::vector<RealisticPerson>& people) {
  WallTimer timer;
  WeightModel unit;
  ExactLeakage engine;
  double worst = 0.0;
  for (const auto& person : people) {
    auto l = SetLeakage(resolved, person.reference, unit, engine);
    if (l.ok()) worst = std::max(worst, *l);
  }
  return {worst, timer.ElapsedSeconds()};
}

}  // namespace

int main() {
  RealisticConfig config;
  config.num_people = 15;
  config.records_per_person = 6;
  config.typo_prob = 0.4;
  auto data = GenerateRealistic(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generation failed: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  PrintTitle("Ablation: exact vs fuzzy entity matching (typo'd profiles)",
             "people=15 records/person=6 keep=0.7 typo=0.4 seed=42; match "
             "on name OR email OR phone");
  RowPrinter rows({"matcher", "threshold", "entities", "pair_P", "pair_R",
                   "pair_F1", "worst_leak", "resolve_s", "leak_s"}, 16);

  UnionMerge merge;
  // Exact matching baseline.
  {
    RuleMatch exact(MatchRules{{"N"}, {"E"}, {"P"}});
    TransitiveClosureResolver resolver(exact, merge);
    ErStats stats;
    auto resolved = resolver.Resolve(data->records, &stats);
    if (!resolved.ok()) return 1;
    auto quality = EvaluateClustering(*resolved, data->owner);
    if (!quality.ok()) return 1;
    auto [worst, leak_seconds] = WorstLeakage(*resolved, data->people);
    rows.Row({"exact", "-", std::to_string(resolved->size()),
              Fmt(quality->pairwise_precision, 4),
              Fmt(quality->pairwise_recall, 4),
              Fmt(quality->pairwise_f1, 4), Fmt(worst, 5),
              Fmt(stats.elapsed_seconds, 4), Fmt(leak_seconds, 4)});
  }
  // Fuzzy name matching at several thresholds.
  LabelSimilarity sim;
  sim.Register("N", std::make_unique<EditDistanceSimilarity>());
  for (double threshold : {0.95, 0.85, 0.75, 0.6, 0.4}) {
    SimilarityRuleMatch fuzzy(MatchRules{{"N"}, {"E"}, {"P"}}, sim,
                              threshold);
    TransitiveClosureResolver resolver(fuzzy, merge);
    ErStats stats;
    auto resolved = resolver.Resolve(data->records, &stats);
    if (!resolved.ok()) return 1;
    auto quality = EvaluateClustering(*resolved, data->owner);
    if (!quality.ok()) return 1;
    auto [worst, leak_seconds] = WorstLeakage(*resolved, data->people);
    rows.Row({"fuzzy", Fmt(threshold, 2), std::to_string(resolved->size()),
              Fmt(quality->pairwise_precision, 4),
              Fmt(quality->pairwise_recall, 4),
              Fmt(quality->pairwise_f1, 4), Fmt(worst, 5),
              Fmt(stats.elapsed_seconds, 4), Fmt(leak_seconds, 4)});
  }
  std::printf(
      "\nreading: exact matching misses typo'd pairs (pairwise recall\n"
      "~0.87); a moderate fuzzy threshold recovers them and lands on the\n"
      "true entity count. Too-loose thresholds glue different people into\n"
      "one blob — and the worst-person leakage *falls*, because the merged\n"
      "composite is polluted with other people's attributes. Over-merging\n"
      "is accidental linkage disinformation (the same mechanism Alice\n"
      "exploits deliberately in §4.2).\n");
  return 0;
}
