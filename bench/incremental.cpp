// Append->query latency for the incremental leakage index vs the columnar
// rescan, swept over store size |R| in {1k, 10k, 100k}. Each round appends
// one record through the service and then asks for the set leakage of the
// same interned reference; with the index on the query is a lookup plus a
// one-record delta (flat in |R|), with the index off every query rescans
// the store (linear in |R|). Both modes must land on identical bits.
// Writes the BENCH_incremental.json sidecar for CI.

#include <algorithm>
#include <cstdio>
#include <chrono>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "core/record_io.h"
#include "gen/generator.h"
#include "store/record_store.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace infoleak::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct ModePoint {
  uint64_t queries = 0;
  double mean_us = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double leakage = 0.0;
  double argmax = -1.0;
  std::string path;
};

double PercentileUs(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_us.size() - 1) + 0.5);
  return sorted_us[std::min(rank, sorted_us.size() - 1)];
}

/// One append->query round trip per iteration, service.Handle directly (no
/// sockets: this measures the evaluation plane, not the network).
Result<ModePoint> RunMode(const SyntheticDataset& data, std::size_t base,
                          const std::vector<std::string>& appends,
                          bool index_on) {
  Database db;
  for (std::size_t i = 0; i < base; ++i) db.Add(data.records[i]);
  svc::ServiceConfig config;
  config.enable_index = index_on;
  svc::LeakageService service(RecordStore::FromDatabase(db), config);

  const std::string set_leak =
      std::string(R"({"verb":"set-leak","reference":)") +
      svc::JsonQuote(FormatRecord(data.reference)) + "}";
  auto set_leak_req = svc::ParseRequest(set_leak);
  if (!set_leak_req.ok()) return set_leak_req.status();

  // Warm-up registers the reference (and, index-on, pays the one-time
  // catch-up over the base records) outside the timed region.
  std::string last = service.Handle(*set_leak_req);

  std::vector<double> micros;
  micros.reserve(appends.size());
  for (const std::string& append_line : appends) {
    auto append_req = svc::ParseRequest(append_line);
    if (!append_req.ok()) return append_req.status();
    const Clock::time_point t0 = Clock::now();
    std::string wire_code;
    service.Handle(*append_req, {}, &wire_code);
    if (!wire_code.empty()) return Status::Internal("append: " + wire_code);
    last = service.Handle(*set_leak_req, {}, &wire_code);
    if (!wire_code.empty()) return Status::Internal("set-leak: " + wire_code);
    micros.push_back(std::chrono::duration<double, std::micro>(Clock::now() -
                                                               t0)
                         .count());
  }

  auto parsed = svc::ParseJson(last);
  if (!parsed.ok()) return parsed.status();
  ModePoint point;
  point.queries = micros.size();
  double sum = 0.0;
  for (double us : micros) sum += us;
  point.mean_us = micros.empty() ? 0.0 : sum / static_cast<double>(micros.size());
  std::sort(micros.begin(), micros.end());
  point.p50_us = PercentileUs(micros, 0.50);
  point.p99_us = PercentileUs(micros, 0.99);
  point.leakage = parsed->GetNumber("leakage", -1.0);
  point.argmax = parsed->GetNumber("argmax", -2.0);
  point.path = parsed->GetString("path", "?");
  return point;
}

int Main() {
  const std::vector<std::size_t> sizes{1000, 10000, 100000};
  const int rounds = 64;

  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 20;
  config.num_records = sizes.back() + static_cast<std::size_t>(rounds);
  auto data = GenerateDataset(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  PrintTitle("bench_incremental: append->query latency, index vs rescan",
             config.ToString() + " rounds=" + std::to_string(rounds));
  BenchReport report("incremental", config.ToString(),
                     {"records", "mode", "queries", "mean_us", "p50_us",
                      "p99_us"});
  RowPrinter rows(
      {"records", "mode", "queries", "mean_us", "p50_us", "p99_us"}, 12,
      &report);
  for (std::size_t base : sizes) {
    // The appended records come from past the base prefix so both modes
    // see the same fresh rows.
    std::vector<std::string> appends;
    for (int i = 0; i < rounds; ++i) {
      appends.push_back(
          std::string(R"({"verb":"append","record":)") +
          svc::JsonQuote(FormatRecord(
              data->records[base + static_cast<std::size_t>(i)])) +
          "}");
    }
    ModePoint got[2];
    const bool modes[2] = {true, false};
    const char* names[2] = {"index", "rescan"};
    for (int m = 0; m < 2; ++m) {
      auto point = RunMode(*data, base, appends, modes[m]);
      if (!point.ok()) {
        std::fprintf(stderr, "records=%zu mode=%s: %s\n", base, names[m],
                     point.status().ToString().c_str());
        return 1;
      }
      got[m] = *point;
      rows.Row({std::to_string(base), names[m],
                std::to_string(point->queries), Fmt(point->mean_us, 6),
                Fmt(point->p50_us, 6), Fmt(point->p99_us, 6)});
    }
    // The speedup is only meaningful if both paths answered identically
    // (and the fast mode really took the index path).
    if (got[0].leakage != got[1].leakage || got[0].argmax != got[1].argmax ||
        got[0].path != "index" || got[1].path != "scan") {
      std::fprintf(stderr,
                   "index/rescan disagree at records=%zu: "
                   "leakage %.17g (%s) vs %.17g (%s), argmax %g vs %g\n",
                   base, got[0].leakage, got[0].path.c_str(), got[1].leakage,
                   got[1].path.c_str(), got[0].argmax, got[1].argmax);
      return 1;
    }
  }
  Status written = report.WriteFile(".");
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace infoleak::bench

int main() { return infoleak::bench::Main(); }
