// Extension bench: the anonymization-vs-leakage frontier served by
// `infoleak frontier`, recorded as a checked-in sidecar. Sweeps a
// (k, l, suppression) grid over the seeded synthetic registry, prices every
// mechanism point with the Section-3 adversary pipeline, and charts the
// utility metrics next to the worst-person leakage. Every cell is a pure
// function of (seed, grid-coords), so the sidecar is byte-reproducible.

#include <cstdio>
#include <string>
#include <vector>

#include "apps/frontier.h"
#include "bench/harness.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  FrontierConfig config;
  config.registry.seed = 1;
  config.registry.rows = 60;
  config.grid.ks = {2, 3, 5, 10};
  config.grid.ls = {1, 2};
  config.grid.suppressions = {0, 3};
  config.num_threads = 0;  // the sweep fans across the hardware pool

  PrintTitle("Extension: privacy-mechanism evaluation frontier",
             "seed=1 rows=60 ks={2,3,5,10} ls={1,2} suppress={0,3}; "
             "adversary = generalized ER + exact set leakage");
  BenchReport report("anon_frontier",
                     "seed=1 rows=60 ks={2,3,5,10} ls={1,2} suppress={0,3} "
                     "measure=expected-f1",
                     {"k", "l", "suppress", "found", "height", "dropped",
                      "prec", "discern", "c_avg", "worst_leakage",
                      "mean_leakage"});
  RowPrinter rows({"k", "l", "suppress", "found", "height", "dropped",
                   "prec", "discern", "c_avg", "worst_leak", "mean_leak"},
                  11, &report);

  WallTimer timer;
  auto result = RunFrontier(config);
  if (!result.ok()) {
    std::printf("frontier sweep failed: %s\n",
                result.status().ToString().c_str());
    return 1;
  }
  for (const FrontierPoint& p : result->points) {
    if (!p.found) {
      rows.Row({std::to_string(p.k), std::to_string(p.l),
                std::to_string(p.max_suppressed), "no", "-", "-", "-", "-",
                "-", "-", "-"});
      continue;
    }
    rows.Row({std::to_string(p.k), std::to_string(p.l),
              std::to_string(p.max_suppressed), "yes",
              std::to_string(p.height), std::to_string(p.suppressed),
              Fmt(p.prec, 3), Fmt(p.discernibility, 0), Fmt(p.avg_class, 3),
              Fmt(p.worst_leakage, 5), Fmt(p.mean_leakage, 5)});
  }
  std::printf("\nsweep: %zu points over %zu rows in %.2fs\n",
              result->points.size(), result->rows, timer.ElapsedSeconds());
  std::printf(
      "reading: down any k column the worst-person leakage is non-\n"
      "increasing while Prec falls — the utility price of every extra\n"
      "notch of anonymity, the frontier k-anonymity alone cannot chart.\n");
  if (!report.WriteFile().ok()) return 1;
  return 0;
}
