// Ablation: disinformation budget and strategy (§4.2). Sweeps the budget
// Cmax on a Figure-2-style topology and reports the post-analysis leakage
// reached by the exhaustive optimizer, the greedy optimizer, and restricted
// candidate pools (self-only, linkage-only) — quantifying what each
// strategy contributes.

#include "apps/disinformation.h"
#include "bench/harness.h"
#include "er/swoosh.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  // Figure 2 topology: r and s are Alice's; t, u, v belong to others.
  Record p{{"N", "alice"}, {"P", "123"}, {"C", "999"}, {"A", "main-st"},
           {"Z", "94305"}};
  Database db;
  db.Add(Record{{"N", "alice"}, {"P", "123"}});
  db.Add(Record{{"N", "alice"}, {"C", "999"}});
  db.Add(Record{{"N", "bob"}, {"K", "k1"}});
  db.Add(Record{{"N", "bob"}, {"P", "555"}});
  db.Add(Record{{"N", "carol"}, {"K", "k2"}, {"S", "000"}});

  RuleMatch match(MatchRules{{"N"}, {"P"}, {"K"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator er(resolver);
  RuleMatchFactory factory(MatchRules{{"N"}, {"P"}, {"K"}});
  DisinformationOptimizer optimizer(factory);
  WeightModel unit;
  ExactLeakage engine;

  auto all = optimizer.GenerateCandidates(db, p, /*max_record_size=*/4,
                                          /*max_bogus=*/2);
  if (!all.ok()) return 1;
  std::vector<DisinfoCandidate> self_only;
  std::vector<DisinfoCandidate> linkage_only;
  for (const auto& c : *all) {
    (c.strategy == "self" ? self_only : linkage_only).push_back(c);
  }

  PrintTitle("Ablation: disinformation budget and strategy (Fig. 2 topology)",
             "candidates: " + std::to_string(all->size()) + " (" +
                 std::to_string(self_only.size()) + " self, " +
                 std::to_string(linkage_only.size()) + " linkage); " +
                 "baseline L(R,p,E) printed per row");
  RowPrinter rows({"budget", "pool", "optimizer", "chosen", "cost",
                   "L_before", "L_after"});

  auto run = [&](double budget, const char* pool,
                 const std::vector<DisinfoCandidate>& candidates) {
    auto exhaustive = optimizer.OptimizeExhaustive(db, p, er, candidates,
                                                   budget, unit, engine);
    if (exhaustive.ok()) {
      rows.Row({Fmt(budget, 1), pool, "exhaustive",
                std::to_string(exhaustive->chosen.size()),
                Fmt(exhaustive->total_cost, 2),
                Fmt(exhaustive->leakage_before, 5),
                Fmt(exhaustive->leakage_after, 5)});
    }
    auto greedy = optimizer.OptimizeGreedy(db, p, er, candidates, budget,
                                           unit, engine);
    if (greedy.ok()) {
      rows.Row({Fmt(budget, 1), pool, "greedy",
                std::to_string(greedy->chosen.size()),
                Fmt(greedy->total_cost, 2), Fmt(greedy->leakage_before, 5),
                Fmt(greedy->leakage_after, 5)});
    }
  };

  for (double budget : {0.0, 2.0, 4.0, 8.0, 16.0}) {
    run(budget, "all", *all);
    run(budget, "self", self_only);
    run(budget, "linkage", linkage_only);
  }
  std::printf(
      "\nreading: leakage falls monotonically with budget; combining self\n"
      "and linkage candidates dominates either pool alone, and greedy\n"
      "tracks the exhaustive optimum closely on this topology.\n");
  return 0;
}
