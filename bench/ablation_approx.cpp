// Ablation: Taylor order of the §5.2 approximation. The paper keeps terms
// up to the second order ("one can extend the Taylor series... however our
// approximation is already quite accurate"). This harness quantifies that
// design choice: first-order (mean only) vs second-order (mean + variance
// correction) error against Algorithm 1, as uncertainty (m) and record
// size (n) grow.

#include <cmath>

#include "bench/harness.h"
#include "core/leakage.h"
#include "core/monte_carlo.h"
#include "gen/generator.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

struct ErrStats {
  double max_rel_o1 = 0.0;
  double max_rel_o2 = 0.0;
  double max_rel_mc = 0.0;
  double seconds_o2 = 0.0;
  double seconds_mc = 0.0;
};

ErrStats MeasureErrors(const SyntheticDataset& data) {
  ExactLeakage exact;
  ApproxLeakage order1(1);
  ApproxLeakage order2(2);
  MonteCarloLeakage mc(2000, 99);
  // The closed-form engines share one prepared reference per dataset; the
  // Monte-Carlo engine is an external subclass and stays on the string API.
  const PreparedReference ref(data.reference, data.weights);
  LeakageWorkspace ws;
  PreparedRecord pr;
  ErrStats out;
  for (const auto& r : data.records) {
    pr.Assign(r, ref);
    double e = exact.RecordLeakagePrepared(pr, ref, &ws).value_or(0.0);
    if (e <= 1e-9) continue;
    double a1 = order1.RecordLeakagePrepared(pr, ref, &ws).value_or(0.0);
    WallTimer t2;
    double a2 = order2.RecordLeakagePrepared(pr, ref, &ws).value_or(0.0);
    out.seconds_o2 += t2.ElapsedSeconds();
    WallTimer tmc;
    double sampled = mc.RecordLeakage(r, data.reference, data.weights)
                         .value_or(0.0);
    out.seconds_mc += tmc.ElapsedSeconds();
    out.max_rel_o1 = std::max(out.max_rel_o1, std::abs(a1 - e) / e * 100.0);
    out.max_rel_o2 = std::max(out.max_rel_o2, std::abs(a2 - e) / e * 100.0);
    out.max_rel_mc = std::max(out.max_rel_mc,
                              std::abs(sampled - e) / e * 100.0);
  }
  return out;
}

}  // namespace

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.num_records = 200;
  PrintTitle("Ablation: Taylor order of the approximate algorithm",
             base.ToString() + "  (max relative error vs Algorithm 1, %)");
  RowPrinter rows({"sweep", "value", "order1_err%", "order2_err%",
                   "mc2k_err%", "o2_sec", "mc_sec"});

  // Uncertainty sweep: higher m -> larger Var[Y] -> the variance term earns
  // its keep.
  for (double m : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    GeneratorConfig config = base;
    config.max_confidence = m;
    auto data = GenerateDataset(config);
    if (!data.ok()) return 1;
    ErrStats e = MeasureErrors(*data);
    rows.Row({"m", Fmt(m, 1), Fmt(e.max_rel_o1, 4), Fmt(e.max_rel_o2, 4),
              Fmt(e.max_rel_mc, 3), Fmt(e.seconds_o2, 4),
              Fmt(e.seconds_mc, 4)});
  }
  // Size sweep: larger records concentrate Y around its mean (law of large
  // numbers), shrinking both errors.
  for (std::size_t n : {10u, 25u, 50u, 100u, 200u, 400u}) {
    GeneratorConfig config = base;
    config.n = n;
    auto data = GenerateDataset(config);
    if (!data.ok()) return 1;
    ErrStats e = MeasureErrors(*data);
    rows.Row({"n", std::to_string(n), Fmt(e.max_rel_o1, 4),
              Fmt(e.max_rel_o2, 4), Fmt(e.max_rel_mc, 3),
              Fmt(e.seconds_o2, 4), Fmt(e.seconds_mc, 4)});
  }
  std::printf(
      "\nreading: the second-order term cuts the worst-case error by an\n"
      "order of magnitude at high uncertainty; both orders converge as |r|\n"
      "grows, matching Table 5's near-zero error at n=100. Monte-Carlo\n"
      "sampling (2k worlds) is unbiased but pays ~1000x the time of the\n"
      "Taylor expansion for comparable-or-worse error — supporting the\n"
      "paper's closed-form design choice.\n");
  return 0;
}
