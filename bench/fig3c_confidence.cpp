// Figure 3(c): information leakage as the maximum confidence m grows.
// Paper shape: increasing — higher confidence on correct information
// outweighs higher confidence on incorrect information in the base setup.

#include "bench/trend_common.h"

int main() {
  return infoleak::bench::RunTrendSweep(
      "Figure 3(c): leakage vs maximum confidence (m)", "m",
      [](infoleak::GeneratorConfig* c, double v) { c->max_confidence = v; });
}
