// Extension bench: the privacy/utility tradeoff of k-anonymization,
// measured with information leakage. The paper argues leakage quantifies
// what all-or-nothing models cannot; here it prices the frontier the
// related work (Rastogi et al.) studies: as k grows, utility (Prec,
// discernibility) falls — how much leakage does each step actually buy?

#include "anon/bridge.h"
#include "anon/generalized_er.h"
#include "anon/kanonymity.h"
#include "anon/utility.h"
#include "bench/harness.h"
#include "util/string_util.h"
#include "core/leakage.h"
#include "er/transitive.h"
#include "util/rng.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

/// A synthetic patient registry: zips cluster by prefix, ages by decade,
/// diseases drawn from a small vocabulary.
Table MakeRegistry(std::size_t rows, Rng* rng) {
  auto t = Table::Create({"Name", "Zip", "Age", "Disease"});
  const char* diseases[] = {"Flu", "Heart", "Cancer", "Asthma", "Diabetes"};
  for (std::size_t i = 0; i < rows; ++i) {
    std::string zip = std::to_string(100 + rng->NextBounded(6)) +
                      std::to_string(rng->NextBounded(10));
    std::string age = std::to_string(20 + rng->NextBounded(60));
    t->AddRow({StrCat("P", std::to_string(i)), zip, age,
               diseases[rng->NextBounded(5)]});
  }
  return std::move(t).value();
}

/// Worst per-patient leakage from the published table (the §3.1 pipeline:
/// generalization-aware ER + covering alignment).
double WorstLeakage(const Table& published, const Table& original) {
  auto db = TableToDatabase(published).value();
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(db, nullptr);
  WeightModel unit;
  ExactLeakage engine;
  double worst = 0.0;
  for (std::size_t row = 0; row < original.num_rows(); ++row) {
    Record reference = RowToRecord(original, row).value();
    double best = 0.0;
    for (const auto& r : *resolved) {
      Record aligned = AlignGeneralizedToReference(r, reference);
      best = std::max(
          best, engine.RecordLeakage(aligned, reference, unit).value_or(0.0));
    }
    worst = std::max(worst, best);
  }
  return worst;
}

}  // namespace

int main() {
  Rng rng(2026);
  Table registry = MakeRegistry(60, &rng);
  auto published_base = registry.DropColumns({"Name"}).value();
  SuffixSuppressionHierarchy zip(4);
  IntervalHierarchy age({10, 30, 100});
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};

  PrintTitle("Extension: privacy/utility tradeoff of k-anonymization",
             "60-row synthetic registry; QI = {Zip, Age}; leakage = worst "
             "patient, Section-3 pipeline");
  RowPrinter rows({"k", "levels", "Prec", "discern", "avg_class/k",
                   "worst_leakage", "point_s"});

  for (std::size_t k : {1u, 2u, 3u, 5u, 10u, 20u}) {
    // One WallTimer per sweep point covers generalization + scoring; the
    // harness has no other timing idiom.
    WallTimer point_timer;
    auto result = MinimalFullDomainGeneralization(published_base, qis, k);
    if (!result.ok()) {
      rows.Row({std::to_string(k), "-", "-", "-", "-", "-", "-"});
      continue;
    }
    std::string levels = std::to_string(result->levels[0]) + StrCat("/", std::to_string(result->levels[1]));
    double prec = GeneralizationPrecision(qis, result->levels).value_or(-1);
    double discern =
        DiscernibilityMetric(result->table, {"Zip", "Age"}).value_or(-1);
    double avg =
        AverageClassSizeMetric(result->table, {"Zip", "Age"}, k).value_or(-1);
    double leakage = WorstLeakage(result->table, registry);
    rows.Row({std::to_string(k), levels, Fmt(prec, 3), Fmt(discern, 0),
              Fmt(avg, 3), Fmt(leakage, 5),
              Fmt(point_timer.ElapsedSeconds(), 4)});
  }
  std::printf(
      "\nreading: raising k spends generalization levels (Prec falls,\n"
      "discernibility rises) while the worst-patient leakage declines —\n"
      "the continuous frontier that the all-or-nothing k-anonymity\n"
      "criterion cannot express.\n");
  return 0;
}
