// google-benchmark micro kernels for the library's hot paths: the three
// record-leakage engines, set leakage, entity resolution, merging, and the
// synthetic generator. Complements the figure harnesses with statistically
// robust per-operation timings.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/kernels.h"
#include "core/leakage.h"
#include "core/possible_worlds.h"
#include "er/swoosh.h"
#include "er/transitive.h"
#include "gen/generator.h"
#include "util/rng.h"

namespace infoleak {
namespace {

SyntheticDataset MakeData(std::size_t n, std::size_t records,
                          bool random_weights = false) {
  GeneratorConfig config;
  config.n = n;
  config.num_records = records;
  config.random_weights = random_weights;
  auto data = GenerateDataset(config);
  return std::move(data).value();
}

void BM_RecordLeakageNaive(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  NaiveLeakage engine(kMaxEnumerableAttributes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageNaive)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_RecordLeakageExact(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageExact)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_RecordLeakageApprox(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ApproxLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageApprox)->Arg(16)->Arg(256)->Arg(4096);

void BM_SetLeakage(benchmark::State& state) {
  auto data = MakeData(50, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SetLeakage(data.records, data.reference, data.weights, engine));
  }
}
BENCHMARK(BM_SetLeakage)->Arg(10)->Arg(100)->Arg(1000);

void BM_SetLeakageParallel(benchmark::State& state) {
  auto data = MakeData(50, 1000);
  ExactLeakage engine;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakageParallel(
        data.records, data.reference, data.weights, engine, threads));
  }
}
BENCHMARK(BM_SetLeakageParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExpectedRecall(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ExpectedRecall(
        data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_ExpectedRecall)->Arg(100)->Arg(1000);

void BM_RecordMerge(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Record::Merge(data.records[0], data.records[1]));
  }
}
BENCHMARK(BM_RecordMerge)->Arg(10)->Arg(100)->Arg(1000);

void BM_ErSwoosh(benchmark::State& state) {
  auto data = MakeData(20, static_cast<std::size_t>(state.range(0)));
  auto match = RuleMatch::SharedValue({"L0", "L1", "L2"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(data.records, nullptr));
  }
}
BENCHMARK(BM_ErSwoosh)->Arg(20)->Arg(100)->Arg(400);

void BM_ErTransitive(benchmark::State& state) {
  auto data = MakeData(20, static_cast<std::size_t>(state.range(0)));
  auto match = RuleMatch::SharedValue({"L0", "L1", "L2"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(data.records, nullptr));
  }
}
BENCHMARK(BM_ErTransitive)->Arg(20)->Arg(100)->Arg(400);

// ---------------------------------------------------------------------------
// Array kernels: the scalar reference table vs the runtime-dispatched wide
// table on the Algorithm 1 coefficient recurrence, isolated from record
// preparation. On a non-SIMD host Wide() aliases Scalar() and the pair
// reads as a no-op; on AVX hosts the gap is the vectorization win alone.
// ---------------------------------------------------------------------------

struct KernelFixture {
  std::vector<double> rconf;
  std::vector<double> match_conf;
  std::vector<uint32_t> match_rpos;
  std::vector<double> poly;
  std::size_t pn;
};

KernelFixture MakeKernelFixture(std::size_t rn) {
  Rng rng(rn * 2654435761u + 1);
  KernelFixture f;
  f.rconf.resize(rn);
  for (auto& c : f.rconf) c = rng.Uniform(0.05, 1.0);
  f.pn = rn;
  f.match_conf.assign(f.pn, 0.0);
  f.match_rpos.assign(f.pn, 0xFFFFFFFFu);
  for (std::size_t j = 0; j < f.pn; ++j) {
    if (rng.Bernoulli(0.7)) {
      const auto pos = static_cast<uint32_t>(rng.NextBounded(rn));
      f.match_rpos[j] = pos;
      f.match_conf[j] = f.rconf[pos];
    }
  }
  f.poly.resize(rn + 1);
  return f;
}

void RunExactSum(benchmark::State& state, const kern::KernelTable& table) {
  auto f = MakeKernelFixture(static_cast<std::size_t>(state.range(0)));
  const double m = static_cast<double>(f.pn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.exact_sum(
        f.rconf.data(), f.rconf.size(), f.match_conf.data(),
        f.match_rpos.data(), f.pn, m, 2.0, f.poly.data()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ExactSumScalar(benchmark::State& state) {
  RunExactSum(state, kern::Scalar());
}
BENCHMARK(BM_ExactSumScalar)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ExactSumWide(benchmark::State& state) {
  RunExactSum(state, kern::Wide());
}
BENCHMARK(BM_ExactSumWide)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_ApproxSumKernel(benchmark::State& state) {
  auto f = MakeKernelFixture(static_cast<std::size_t>(state.range(0)));
  std::vector<double> rweight(f.rconf.size(), 1.0);
  std::vector<double> pweight(f.pn, 1.0);
  const double wp = static_cast<double>(f.pn);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kern::Active().approx_sum(
        f.rconf.data(), rweight.data(), f.rconf.size(), f.match_conf.data(),
        f.match_rpos.data(), pweight.data(), f.pn, wp, 2.0, 2));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ApproxSumKernel)->Arg(16)->Arg(256)->Arg(4096);

void BM_GenerateDataset(benchmark::State& state) {
  GeneratorConfig config;
  config.n = 100;
  config.num_records = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateDataset(config));
  }
}
BENCHMARK(BM_GenerateDataset)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace infoleak

// Custom main: default --benchmark_out to BENCH_micro_kernels.json so every
// Release run leaves a machine-readable sidecar; an explicit flag wins, and
// non-Release builds never write the sidecar by default (debug timings must
// not masquerade as baselines).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_kernels.json";
  std::string format_flag = "--benchmark_out_format=json";
#ifndef NDEBUG
  if (!has_out) {
    std::fprintf(stderr,
                 "note: non-Release build; not writing "
                 "BENCH_micro_kernels.json (pass --benchmark_out to force)\n");
    has_out = true;  // suppress the default sidecar
  }
#endif
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
