// google-benchmark micro kernels for the library's hot paths: the three
// record-leakage engines, set leakage, entity resolution, merging, and the
// synthetic generator. Complements the figure harnesses with statistically
// robust per-operation timings.

#include <benchmark/benchmark.h>

#include "core/leakage.h"
#include "core/possible_worlds.h"
#include "er/swoosh.h"
#include "er/transitive.h"
#include "gen/generator.h"

namespace infoleak {
namespace {

SyntheticDataset MakeData(std::size_t n, std::size_t records,
                          bool random_weights = false) {
  GeneratorConfig config;
  config.n = n;
  config.num_records = records;
  config.random_weights = random_weights;
  auto data = GenerateDataset(config);
  return std::move(data).value();
}

void BM_RecordLeakageNaive(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  NaiveLeakage engine(kMaxEnumerableAttributes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageNaive)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

void BM_RecordLeakageExact(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageExact)->Arg(16)->Arg(64)->Arg(256)->Arg(1024);

void BM_RecordLeakageApprox(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ApproxLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakage(data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_RecordLeakageApprox)->Arg(16)->Arg(256)->Arg(4096);

void BM_SetLeakage(benchmark::State& state) {
  auto data = MakeData(50, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SetLeakage(data.records, data.reference, data.weights, engine));
  }
}
BENCHMARK(BM_SetLeakage)->Arg(10)->Arg(100)->Arg(1000);

void BM_SetLeakageParallel(benchmark::State& state) {
  auto data = MakeData(50, 1000);
  ExactLeakage engine;
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakageParallel(
        data.records, data.reference, data.weights, engine, threads));
  }
}
BENCHMARK(BM_SetLeakageParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ExpectedRecall(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 1);
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.ExpectedRecall(
        data.records[0], data.reference, data.weights));
  }
}
BENCHMARK(BM_ExpectedRecall)->Arg(100)->Arg(1000);

void BM_RecordMerge(benchmark::State& state) {
  auto data = MakeData(static_cast<std::size_t>(state.range(0)), 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        Record::Merge(data.records[0], data.records[1]));
  }
}
BENCHMARK(BM_RecordMerge)->Arg(10)->Arg(100)->Arg(1000);

void BM_ErSwoosh(benchmark::State& state) {
  auto data = MakeData(20, static_cast<std::size_t>(state.range(0)));
  auto match = RuleMatch::SharedValue({"L0", "L1", "L2"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(data.records, nullptr));
  }
}
BENCHMARK(BM_ErSwoosh)->Arg(20)->Arg(100)->Arg(400);

void BM_ErTransitive(benchmark::State& state) {
  auto data = MakeData(20, static_cast<std::size_t>(state.range(0)));
  auto match = RuleMatch::SharedValue({"L0", "L1", "L2"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  for (auto _ : state) {
    benchmark::DoNotOptimize(resolver.Resolve(data.records, nullptr));
  }
}
BENCHMARK(BM_ErTransitive)->Arg(20)->Arg(100)->Arg(400);

void BM_GenerateDataset(benchmark::State& state) {
  GeneratorConfig config;
  config.n = 100;
  config.num_records = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateDataset(config));
  }
}
BENCHMARK(BM_GenerateDataset)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace infoleak

BENCHMARK_MAIN();
