// Ablation: ER blocking (extension). §2.4 motivates adversary effort as a
// first-class cost ("if a sophisticated ER algorithm takes quadratic time
// ... it may not be feasible"); blocking is the standard lever. This
// harness sweeps |R| and compares full pairwise transitive closure against
// label-value blocked resolution: identical partitions, divergent match
// counts.

#include "bench/harness.h"
#include "util/string_util.h"
#include "core/leakage.h"
#include "er/blocking.h"
#include "er/transitive.h"
#include "gen/population.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.n = 12;
  base.perturb_prob = 0.1;
  const std::size_t kPeople = 20;
  PrintTitle("Ablation: blocked vs full pairwise entity resolution",
             base.ToString() + StrCat("  people=", std::to_string(kPeople)) +
                 "  (sweeping records/person)");
  RowPrinter rows({"|R|", "engine", "matches", "merges", "seconds",
                   "entities", "max_leak"}, 20);

  std::vector<std::string> labels;
  for (std::size_t l = 0; l < base.n; ++l) {
    labels.push_back(StrCat("L", std::to_string(l)));
  }
  auto match = RuleMatch::SharedValue(labels);
  UnionMerge merge;
  LabelValueBlocking blocking(labels);
  BlockedResolver blocked(blocking, *match, merge);
  TransitiveClosureResolver full(*match, merge);
  ExactLeakage engine;

  for (std::size_t per_person : {2u, 5u, 10u, 20u, 40u}) {
    auto data = GeneratePopulation(base, kPeople, per_person);
    if (!data.ok()) return 1;
    for (const EntityResolver* resolver :
         std::initializer_list<const EntityResolver*>{&full, &blocked}) {
      ErStats stats;
      auto resolved = resolver->Resolve(data->records, &stats);
      if (!resolved.ok()) return 1;
      // Worst-case person leakage after resolution.
      double max_leak = 0.0;
      for (const auto& reference : data->references) {
        auto l = SetLeakage(*resolved, reference, data->weights, engine);
        if (!l.ok()) return 1;
        max_leak = std::max(max_leak, *l);
      }
      rows.Row({std::to_string(data->records.size()),
                std::string(resolver->name()),
                std::to_string(stats.match_calls),
                std::to_string(stats.merge_calls),
                Fmt(stats.elapsed_seconds, 4),
                std::to_string(resolved->size()), Fmt(max_leak, 5)});
    }
  }
  std::printf(
      "\nreading: both engines find the same entities and leakage; the\n"
      "blocked resolver's match calls grow with block sizes (per-entity)\n"
      "instead of quadratically with |R| — the difference is the adversary\n"
      "effort C(E,R) the paper prices.\n");
  return 0;
}
