// Figure 3(a): information leakage as the copy probability pc grows.
// Paper shape: monotonically increasing from 0 to ~0.27 at pc = 1 — more of
// p's attributes copied into r raise recall and thus leakage.

#include "bench/trend_common.h"

int main() {
  return infoleak::bench::RunTrendSweep(
      "Figure 3(a): leakage vs probability of copying (pc)", "pc",
      [](infoleak::GeneratorConfig* c, double v) { c->copy_prob = v; });
}
