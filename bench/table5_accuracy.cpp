// Table 5: accuracy of the approximate algorithm against the exact leakage
// across the paper's seven parameter rows. For constant weights the exact
// value comes from Algorithm 1; for the random-weight row (w = R) the naive
// algorithm is the oracle and |p| is limited to 10, exactly as in §6.2.
//
// Paper result: exact and approximate values nearly identical (max relative
// error 0.006%). Absolute leakage values depend on the RNG and so differ
// from the paper's; the row-wise *relationships* (pp = 1 -> 0, pc = 1 and
// m = 1 raising leakage, n = 200 lowering it) and the tiny approximation
// error are the reproduced results.

#include <cmath>

#include "bench/harness.h"
#include "core/leakage.h"
#include "core/possible_worlds.h"
#include "gen/generator.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

struct Table5Row {
  std::size_t n;
  double pc, pp, pb, m;
  bool random_weights;
};

}  // namespace

int main() {
  PrintTitle("Table 5: exact vs approximate information leakage",
             "|R|=10000 (w=C) / |R|=10000, |p|=10 (w=R), seed=42");
  RowPrinter rows({"n", "pc", "pp", "b", "m", "w", "exact", "approx",
                   "rel_err_%"});

  const std::vector<Table5Row> table = {
      {100, 0.5, 0.5, 0.5, 0.5, false},
      {200, 0.5, 0.5, 0.5, 0.5, false},
      {100, 1.0, 0.5, 0.5, 0.5, false},
      {100, 0.5, 1.0, 0.5, 0.5, false},
      {100, 0.5, 0.5, 1.0, 0.5, false},
      {100, 0.5, 0.5, 0.5, 1.0, false},
      {10, 0.5, 0.5, 0.5, 0.5, true},  // w = R: naive oracle, |p| = 10
  };

  ExactLeakage alg1;
  NaiveLeakage naive(kMaxEnumerableAttributes);
  ApproxLeakage approx;
  double max_rel_err = 0.0;

  for (const auto& row : table) {
    GeneratorConfig config;
    config.n = row.n;
    config.num_records = 10000;
    config.copy_prob = row.pc;
    config.perturb_prob = row.pp;
    config.bogus_prob = row.pb;
    config.max_confidence = row.m;
    config.random_weights = row.random_weights;
    auto data = GenerateDataset(config);
    if (!data.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    const LeakageEngine& oracle =
        row.random_weights ? static_cast<const LeakageEngine&>(naive)
                           : static_cast<const LeakageEngine&>(alg1);
    auto exact = SetLeakage(data->records, data->reference, data->weights,
                            oracle);
    auto approximate = SetLeakage(data->records, data->reference,
                                  data->weights, approx);
    if (!exact.ok() || !approximate.ok()) {
      std::fprintf(stderr, "leakage computation failed\n");
      return 1;
    }
    double rel_err = *exact > 0.0
                         ? std::abs(*exact - *approximate) / *exact * 100.0
                         : std::abs(*approximate) * 100.0;
    max_rel_err = std::max(max_rel_err, rel_err);
    rows.Row({std::to_string(row.n), Fmt(row.pc, 1), Fmt(row.pp, 1),
              Fmt(row.pb, 1), Fmt(row.m, 1), row.random_weights ? "R" : "C",
              Fmt(*exact), Fmt(*approximate), Fmt(rel_err, 5)});
  }
  std::printf("\nmax relative error: %s%%  (paper: 0.006%%)\n",
              Fmt(max_rel_err, 5).c_str());
  return 0;
}
