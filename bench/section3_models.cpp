// §3 (Tables 1-3): comparison with k-anonymity and l-diversity. Rebuilds
// the patient tables, anonymizes Table 1 into Table 2, and reproduces every
// leakage number the paper derives: Alice 2/3, Zoe 3/4, Alice-with-
// background 4/5, and the l-diversity semantic-merge pair 2/3 -> 3/4.

#include "anon/bridge.h"
#include "anon/generalized_er.h"
#include "anon/kanonymity.h"
#include "anon/ldiversity.h"
#include "bench/harness.h"
#include "core/leakage.h"
#include "er/transitive.h"
#include "ops/operator.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

Table PaperTable1() {
  auto t = Table::Create({"Name", "Zip", "Age", "Disease"});
  t->AddRow({"Alice", "111", "30", "Heart"});
  t->AddRow({"Bob", "112", "31", "Breast"});
  t->AddRow({"Carol", "115", "33", "Cancer"});
  t->AddRow({"Dave", "222", "50", "Hair"});
  t->AddRow({"Pat", "299", "70", "Flu"});
  t->AddRow({"Zoe", "241", "60", "Flu"});
  return std::move(t).value();
}

/// Builds Table 2 via the anonymization substrate (mapping hierarchies
/// reproducing the paper's exact renderings).
Table BuildTable2(const Table& table1) {
  auto no_names = table1.DropColumns({"Name"}).value();
  MappingHierarchy zip(1);
  for (const char* v : {"111", "112", "115"}) zip.AddMapping(1, v, "11*");
  for (const char* v : {"222", "299", "241"}) zip.AddMapping(1, v, "2**");
  MappingHierarchy age(1);
  for (const char* v : {"30", "31", "33"}) age.AddMapping(1, v, "3*");
  for (const char* v : {"50", "70", "60"}) age.AddMapping(1, v, ">=50");
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};
  return GeneralizeTable(no_names, qis, {1, 1}).value();
}

double LeakageAgainst(const Database& db, const Record& reference) {
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(db, nullptr);
  WeightModel unit;
  ExactLeakage engine;
  double best = 0.0;
  for (const auto& r : *resolved) {
    Record aligned = AlignGeneralizedToReference(r, reference);
    best = std::max(best, engine.RecordLeakage(aligned, reference, unit)
                              .value_or(0.0));
  }
  return best;
}

}  // namespace

int main() {
  Table table1 = PaperTable1();
  PrintTitle("Section 3: information leakage vs k-anonymity / l-diversity",
             "patient tables of Tables 1-3");

  std::printf("Table 1 (private):\n%s\n", table1.ToCsv().c_str());
  Table table2 = BuildTable2(table1);
  std::printf("Table 2 (published, 3-anonymous):\n%s\n",
              table2.ToCsv().c_str());
  std::printf("3-anonymous: %s;  min distinct diseases per class: %zu\n\n",
              IsKAnonymous(table2, {"Zip", "Age"}, 3).value() ? "yes" : "no",
              MinDistinctSensitive(table2, {"Zip", "Age"}, "Disease")
                  .value());

  Record alice{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"},
               {"Disease", "Heart"}};
  Record zoe{{"Name", "Zoe"}, {"Zip", "241"}, {"Age", "60"},
             {"Disease", "Flu"}};
  Database published = TableToDatabase(table2).value();

  PaperCheck("Alice leakage (k-anon says both safe)", 2.0 / 3.0,
             LeakageAgainst(published, alice));
  PaperCheck("Zoe leakage", 3.0 / 4.0, LeakageAgainst(published, zoe));

  Database with_background = published;
  with_background.Add(
      Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"}});
  PaperCheck("Alice leakage with background (Table 3)", 4.0 / 5.0,
             LeakageAgainst(with_background, alice));

  // §3.2: the 3-diverse variant (Zoe's Flu renamed to Influenza).
  Table diverse = table2;
  diverse.SetCell(5, "Disease", "Influenza");
  std::printf("\n3-diverse variant: min distinct diseases per class: %zu\n",
              MinDistinctSensitive(diverse, {"Zip", "Age"}, "Disease")
                  .value());
  Database diverse_db = TableToDatabase(diverse).value();
  PaperCheck("Zoe leakage, E (Influenza != Flu)", 2.0 / 3.0,
             LeakageAgainst(diverse_db, zoe));

  ValueNormalizer n;
  n.AddSynonym("Disease", "Influenza", "Flu");
  SemanticNormalizeOperator normalize(std::move(n));
  Database normalized = normalize.Apply(diverse_db).value();
  PaperCheck("Zoe leakage, E' (Influenza -> Flu)", 3.0 / 4.0,
             LeakageAgainst(normalized, zoe));

  std::printf(
      "\nconclusion (paper): leakage quantifies per-individual privacy and\n"
      "application semantics; k-anonymity / l-diversity are all-or-nothing.\n");
  return 0;
}
