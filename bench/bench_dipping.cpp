// Extension bench: dipping queries at scale (§2.4's D(R, E, q) — "starting
// with q, Eve may use ER to merge records that refer to the same entity as
// q"). Measures dossier quality and query latency as the database grows,
// for the quadratic resolver the paper prices at C(E,R) = c·|R|² and the
// blocked resolver an adversary would actually use.

#include "bench/harness.h"
#include "util/string_util.h"
#include "core/leakage.h"
#include "er/blocking.h"
#include "er/dipping.h"
#include "er/transitive.h"
#include "gen/population.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.n = 16;
  base.perturb_prob = 0.1;
  const std::size_t kPeople = 20;
  PrintTitle("Extension: dipping-query workload D(R, E, q)",
             base.ToString() + StrCat("  people=", std::to_string(kPeople)) +
                 "  query = 3 attributes of person 0");
  RowPrinter rows({"|R|", "resolver", "seconds", "matches", "dossier_attrs",
                   "dossier_leak"}, 20);

  std::vector<std::string> labels;
  for (std::size_t l = 0; l < base.n; ++l) {
    labels.push_back(StrCat("L", std::to_string(l)));
  }
  auto match = RuleMatch::SharedValue(labels);
  UnionMerge merge;
  TransitiveClosureResolver full(*match, merge);
  LabelValueBlocking blocking(labels);
  BlockedResolver blocked(blocking, *match, merge);
  ExactLeakage engine;
  WeightModel unit;

  for (std::size_t per_person : {5u, 10u, 20u, 40u}) {
    auto data = GeneratePopulation(base, kPeople, per_person);
    if (!data.ok()) return 1;
    // Eve's query: the first three attributes of person 0's reference.
    Record query;
    for (const auto& a : data->references[0]) {
      query.Insert(a);
      if (query.size() == 3) break;
    }
    for (const EntityResolver* resolver :
         std::initializer_list<const EntityResolver*>{&full, &blocked}) {
      ErStats stats;
      WallTimer timer;
      auto dossier = DippingResult(data->records, *resolver, query, &stats);
      double seconds = timer.ElapsedSeconds();
      if (!dossier.ok()) return 1;
      double leak = engine.RecordLeakage(*dossier, data->references[0], unit)
                        .value_or(-1);
      rows.Row({std::to_string(data->records.size()),
                std::string(resolver->name()), Fmt(seconds, 4),
                std::to_string(stats.match_calls),
                std::to_string(dossier->size()), Fmt(leak, 5)});
    }
  }
  std::printf(
      "\nreading: both resolvers pull the same dossier about the queried\n"
      "person; the blocked resolver answers in near-constant match calls\n"
      "while the full pairwise pass pays the paper's quadratic cost.\n");
  return 0;
}
