// Shared helpers for the reproduction harness binaries. Each bench binary
// regenerates one table or figure of the paper and prints:
//   * a header naming the experiment and the generator configuration,
//   * one row per sweep point (aligned columns, also parseable as CSV via
//     the trailing "csv:" lines),
//   * where the paper reports concrete values, a paper-vs-measured note.

#pragma once

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "util/file.h"
#include "util/string_util.h"

namespace infoleak::bench {

inline void PrintTitle(const std::string& title, const std::string& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!config.empty()) std::printf("config: %s\n", config.c_str());
  std::printf("==============================================================\n");
}

/// Machine-readable sidecar for a bench run: collects the same rows the
/// console sees and serializes them as `BENCH_<name>.json` so CI and
/// plotting scripts consume results without scraping aligned columns.
/// Cells that parse as finite numbers are emitted as JSON numbers;
/// sentinels like "-" or ">budget" stay strings.
class BenchReport {
 public:
  BenchReport(std::string name, std::string config,
              std::vector<std::string> columns)
      : name_(std::move(name)),
        config_(std::move(config)),
        columns_(std::move(columns)) {}

  void Row(const std::vector<std::string>& cells) { rows_.push_back(cells); }

  std::string ToJson() const {
    std::string json = "{\n  \"bench\": " + Quote(name_) +
                       ",\n  \"config\": " + Quote(config_) +
                       ",\n  \"columns\": [";
    for (std::size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) json += ", ";
      json += Quote(columns_[i]);
    }
    json += "],\n  \"rows\": [\n";
    for (std::size_t r = 0; r < rows_.size(); ++r) {
      json += "    [";
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) json += ", ";
        json += Cell(rows_[r][c]);
      }
      json += r + 1 < rows_.size() ? "],\n" : "]\n";
    }
    json += "  ]\n}\n";
    return json;
  }

  /// Writes `BENCH_<name>.json` into `dir` and reports the path on stdout.
  /// Refused in non-Release builds: a sidecar produced with assertions on
  /// would silently poison checked-in baselines, so debug runs only print
  /// the console table.
  Status WriteFile(const std::string& dir = ".") const {
#ifndef NDEBUG
    std::printf(
        "json: skipped (non-Release build; BENCH_%s.json would record "
        "debug timings — rebuild with -DCMAKE_BUILD_TYPE=Release)\n",
        name_.c_str());
    return Status::OK();
#else
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    Status status = WriteStringToFile(path, ToJson());
    if (status.ok()) std::printf("json: %s\n", path.c_str());
    return status;
#endif
  }

 private:
  static std::string Quote(const std::string& s) {
    std::string quoted = "\"";
    for (char ch : s) {
      if (ch == '"' || ch == '\\') quoted += '\\';
      if (ch == '\n') {
        quoted += "\\n";
        continue;
      }
      quoted += ch;
    }
    quoted += '"';
    return quoted;
  }

  static std::string Cell(const std::string& text) {
    if (!text.empty()) {
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() + text.size() && std::isfinite(v)) return text;
    }
    return Quote(text);
  }

  std::string name_;
  std::string config_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-width row printer that also emits a machine-readable csv line.
/// Pass a BenchReport to mirror every row into its JSON sidecar.
class RowPrinter {
 public:
  explicit RowPrinter(std::vector<std::string> columns, int width = 14,
                      BenchReport* report = nullptr)
      : columns_(std::move(columns)), width_(width), report_(report) {
    for (const auto& c : columns_) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    std::string csv = "csv:";
    csv += Join(columns_, ",");
    std::printf("%s\n", csv.c_str());
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    std::string csv = "csv:";
    csv += Join(cells, ",");
    std::printf("%s\n", csv.c_str());
    if (report_ != nullptr) report_->Row(cells);
  }

 private:
  std::vector<std::string> columns_;
  int width_;
  BenchReport* report_;
};

inline std::string Fmt(double v, int digits = 7) {
  return FormatDouble(v, digits);
}

/// Paper-vs-measured comparison line for the EXPERIMENTS.md record.
inline void PaperCheck(const std::string& what, double paper,
                       double measured) {
  std::printf("check: %-44s paper=%-10s measured=%-10s %s\n", what.c_str(),
              Fmt(paper, 6).c_str(), Fmt(measured, 6).c_str(),
              std::abs(paper - measured) < 1e-9 ? "EXACT" : "");
}

}  // namespace infoleak::bench
