// Shared helpers for the reproduction harness binaries. Each bench binary
// regenerates one table or figure of the paper and prints:
//   * a header naming the experiment and the generator configuration,
//   * one row per sweep point (aligned columns, also parseable as CSV via
//     the trailing "csv:" lines),
//   * where the paper reports concrete values, a paper-vs-measured note.

#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "util/string_util.h"

namespace infoleak::bench {

inline void PrintTitle(const std::string& title, const std::string& config) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  if (!config.empty()) std::printf("config: %s\n", config.c_str());
  std::printf("==============================================================\n");
}

/// Fixed-width row printer that also emits a machine-readable csv line.
class RowPrinter {
 public:
  explicit RowPrinter(std::vector<std::string> columns, int width = 14)
      : columns_(std::move(columns)), width_(width) {
    for (const auto& c : columns_) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    std::string csv = "csv:";
    csv += Join(columns_, ",");
    std::printf("%s\n", csv.c_str());
  }

  void Row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%-*s", width_, c.c_str());
    std::printf("\n");
    std::string csv = "csv:";
    csv += Join(cells, ",");
    std::printf("%s\n", csv.c_str());
  }

 private:
  std::vector<std::string> columns_;
  int width_;
};

inline std::string Fmt(double v, int digits = 7) {
  return FormatDouble(v, digits);
}

/// Paper-vs-measured comparison line for the EXPERIMENTS.md record.
inline void PaperCheck(const std::string& what, double paper,
                       double measured) {
  std::printf("check: %-44s paper=%-10s measured=%-10s %s\n", what.c_str(),
              Fmt(paper, 6).c_str(), Fmt(measured, 6).c_str(),
              std::abs(paper - measured) < 1e-9 ? "EXACT" : "");
}

}  // namespace infoleak::bench
