// Microbenchmark for the observability layer itself: what a sharded
// counter increment, a histogram observation, and a TraceSpan cost in
// isolation, and — the number docs/observability.md quotes — what the
// instrumentation adds to the prepared exact hot loop. Compare
// BM_PreparedExactHotLoop/metrics_on against /metrics_off: the acceptance
// bar is <5% overhead with metrics enabled.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/leakage.h"
#include "gen/generator.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace infoleak {
namespace {

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "bench_obs_counter_total", {}, "micro_obs scratch counter");
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDisabled(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(false);
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "bench_obs_counter_total", {}, "micro_obs scratch counter");
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.Value());
  obs::MetricsRegistry::SetEnabled(true);
}
BENCHMARK(BM_CounterIncDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "bench_obs_histogram", {}, "micro_obs scratch histogram");
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v += 1e-5;
    if (v > 1.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  obs::TraceRecorder::Global().set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench/micro_obs");
    benchmark::ClobberMemory();
  }
  obs::TraceRecorder::Global().Clear();
}
BENCHMARK(BM_TraceSpan);

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::Global().set_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench/micro_obs");
    benchmark::ClobberMemory();
  }
  obs::TraceRecorder::Global().set_enabled(true);
}
BENCHMARK(BM_TraceSpanDisabled);

// The instrumented production hot loop: prepared exact set leakage over a
// synthetic database, with the metrics layer globally on vs off. The two
// variants run the identical code path; the delta is the cost of the
// counter/histogram calls the leakage engines make.
void PreparedExactHotLoop(benchmark::State& state, bool metrics_enabled) {
  GeneratorConfig config;
  config.n = 20;
  config.num_records = static_cast<std::size_t>(state.range(0));
  auto data = GenerateDataset(config);
  Database db;
  for (const auto& r : data->records) db.Add(r);
  ExactLeakage engine;
  const PreparedReference ref(data->reference, data->weights);
  obs::MetricsRegistry::SetEnabled(metrics_enabled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakage(db, ref, engine));
  }
  obs::MetricsRegistry::SetEnabled(true);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PreparedExactHotLoop_MetricsOn(benchmark::State& state) {
  PreparedExactHotLoop(state, /*metrics_enabled=*/true);
}
BENCHMARK(BM_PreparedExactHotLoop_MetricsOn)->Arg(1000)->Arg(10000);

void BM_PreparedExactHotLoop_MetricsOff(benchmark::State& state) {
  PreparedExactHotLoop(state, /*metrics_enabled=*/false);
}
BENCHMARK(BM_PreparedExactHotLoop_MetricsOff)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace infoleak

// Same sidecar convention as micro_prepared: default --benchmark_out to a
// JSON file so overhead numbers are machine-checkable. Non-Release builds
// never write the sidecar by default — debug timings must not masquerade
// as baselines.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_obs.json";
  std::string format_flag = "--benchmark_out_format=json";
#ifndef NDEBUG
  if (!has_out) {
    std::fprintf(stderr,
                 "note: non-Release build; not writing "
                 "BENCH_micro_obs.json (pass --benchmark_out to force)\n");
    has_out = true;  // suppress the default sidecar
  }
#endif
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
