// Microbenchmark for the observability layer itself: what a sharded
// counter increment, a histogram observation, and a TraceSpan cost in
// isolation, and — the number docs/observability.md quotes — what the
// instrumentation adds to the prepared exact hot loop. Compare
// BM_PreparedExactHotLoop/metrics_on against /metrics_off: the acceptance
// bar is <5% overhead with metrics enabled.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/leakage.h"
#include "core/record_io.h"
#include "gen/generator.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "store/record_store.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace infoleak {
namespace {

void BM_CounterInc(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "bench_obs_counter_total", {}, "micro_obs scratch counter");
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.Value());
}
BENCHMARK(BM_CounterInc);

void BM_CounterIncDisabled(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(false);
  obs::Counter& counter = obs::MetricsRegistry::Global().GetCounter(
      "bench_obs_counter_total", {}, "micro_obs scratch counter");
  for (auto _ : state) {
    counter.Inc();
  }
  benchmark::DoNotOptimize(counter.Value());
  obs::MetricsRegistry::SetEnabled(true);
}
BENCHMARK(BM_CounterIncDisabled);

void BM_HistogramObserve(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "bench_obs_histogram", {}, "micro_obs scratch histogram");
  double v = 0.0;
  for (auto _ : state) {
    hist.Observe(v);
    v += 1e-5;
    if (v > 1.0) v = 0.0;
  }
  benchmark::DoNotOptimize(hist.Count());
}
BENCHMARK(BM_HistogramObserve);

void BM_TraceSpan(benchmark::State& state) {
  obs::TraceRecorder::Global().set_enabled(true);
  for (auto _ : state) {
    obs::TraceSpan span("bench/micro_obs");
    benchmark::ClobberMemory();
  }
  obs::TraceRecorder::Global().Clear();
}
BENCHMARK(BM_TraceSpan);

void BM_TraceSpanDisabled(benchmark::State& state) {
  obs::TraceRecorder::Global().set_enabled(false);
  for (auto _ : state) {
    obs::TraceSpan span("bench/micro_obs");
    benchmark::ClobberMemory();
  }
  obs::TraceRecorder::Global().set_enabled(true);
}
BENCHMARK(BM_TraceSpanDisabled);

// The instrumented production hot loop: prepared exact set leakage over a
// synthetic database, with the metrics layer globally on vs off. The two
// variants run the identical code path; the delta is the cost of the
// counter/histogram calls the leakage engines make.
void PreparedExactHotLoop(benchmark::State& state, bool metrics_enabled) {
  GeneratorConfig config;
  config.n = 20;
  config.num_records = static_cast<std::size_t>(state.range(0));
  auto data = GenerateDataset(config);
  Database db;
  for (const auto& r : data->records) db.Add(r);
  ExactLeakage engine;
  const PreparedReference ref(data->reference, data->weights);
  obs::MetricsRegistry::SetEnabled(metrics_enabled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakage(db, ref, engine));
  }
  obs::MetricsRegistry::SetEnabled(true);
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_PreparedExactHotLoop_MetricsOn(benchmark::State& state) {
  PreparedExactHotLoop(state, /*metrics_enabled=*/true);
}
BENCHMARK(BM_PreparedExactHotLoop_MetricsOn)->Arg(1000)->Arg(10000);

void BM_PreparedExactHotLoop_MetricsOff(benchmark::State& state) {
  PreparedExactHotLoop(state, /*metrics_enabled=*/false);
}
BENCHMARK(BM_PreparedExactHotLoop_MetricsOff)->Arg(1000)->Arg(10000);

// What accepting one finished request into the event log costs: the
// counter/histogram feeds, the slow-ring offer, and the sharded ring push.
void BM_EventLogRecord(benchmark::State& state) {
  obs::MetricsRegistry::SetEnabled(true);
  obs::EventLog log(/*capacity=*/2048, /*slow_capacity=*/32);
  obs::RequestEvent proto;
  proto.verb = "set-leak";
  proto.outcome = "ok";
  proto.total_nanos = 250000;
  proto.phase_nanos[static_cast<int>(obs::Phase::kParse)] = 20000;
  proto.phase_nanos[static_cast<int>(obs::Phase::kEval)] = 200000;
  proto.phase_nanos[static_cast<int>(obs::Phase::kSerialize)] = 30000;
  uint64_t id = 0;
  for (auto _ : state) {
    obs::RequestEvent event = proto;
    event.id = ++id;
    log.Record(std::move(event));
  }
  benchmark::DoNotOptimize(log.recorded());
}
BENCHMARK(BM_EventLogRecord);

void BM_EventLogRecordDisabled(benchmark::State& state) {
  obs::EventLog log(/*capacity=*/2048, /*slow_capacity=*/32);
  log.SetEnabled(false);
  obs::RequestEvent proto;
  proto.verb = "set-leak";
  proto.outcome = "ok";
  for (auto _ : state) {
    obs::RequestEvent event = proto;
    log.Record(std::move(event));
  }
  benchmark::DoNotOptimize(log.recorded());
}
BENCHMARK(BM_EventLogRecordDisabled);

// The serving hot loop end to end: LeakageService::Handle on a set-leak
// request, which creates a request context, charges phase timers through
// store and kernels, and emits one event per call. /log_on vs /log_off is
// the number docs/observability.md quotes for the request-scoped plane:
// the acceptance bar is <5% overhead with the event log enabled.
void ServedSetLeakHotLoop(benchmark::State& state, bool log_enabled) {
  GeneratorConfig config;
  config.n = 20;
  config.num_records = static_cast<std::size_t>(state.range(0));
  auto data = GenerateDataset(config);
  Database db;
  for (const auto& r : data->records) db.Add(r);
  svc::LeakageService service(RecordStore::FromDatabase(db));
  const std::string line =
      std::string(R"({"verb":"set-leak","reference":)") +
      svc::JsonQuote(FormatRecord(data->reference)) + "}";
  auto req = svc::ParseRequest(line);
  if (!req.ok()) {
    state.SkipWithError("ParseRequest failed");
    return;
  }
  obs::EventLog::Global().SetEnabled(log_enabled);
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.Handle(*req));
  }
  obs::EventLog::Global().SetEnabled(true);
  obs::EventLog::Global().Clear();
  state.SetItemsProcessed(state.iterations() * state.range(0));
}

void BM_ServedSetLeak_LogOn(benchmark::State& state) {
  ServedSetLeakHotLoop(state, /*log_enabled=*/true);
}
BENCHMARK(BM_ServedSetLeak_LogOn)->Arg(1000)->Arg(10000);

void BM_ServedSetLeak_LogOff(benchmark::State& state) {
  ServedSetLeakHotLoop(state, /*log_enabled=*/false);
}
BENCHMARK(BM_ServedSetLeak_LogOff)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace infoleak

// Same sidecar convention as micro_prepared: default --benchmark_out to a
// JSON file so overhead numbers are machine-checkable. Non-Release builds
// never write the sidecar by default — debug timings must not masquerade
// as baselines.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_obs.json";
  std::string format_flag = "--benchmark_out_format=json";
#ifndef NDEBUG
  if (!has_out) {
    std::fprintf(stderr,
                 "note: non-Release build; not writing "
                 "BENCH_micro_obs.json (pass --benchmark_out to force)\n");
    has_out = true;  // suppress the default sidecar
  }
#endif
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
