// Measure-disagreement chart: the Table 4 synthetic generator swept under
// every measure in the family (core/measure_family.h). The interesting
// shape: at low maximum confidence the adversary's worlds are diffuse, so
// the worst-case realization (pml) towers over the expectation while the
// best single guess (guesswork) collapses toward zero; as m -> 1 the
// records become deterministic and the whole family converges onto one
// value (the measure-degenerate oracle property, seen as data). The
// under/over columns bracket the expectation throughout.

#include <cstdio>

#include "bench/harness.h"
#include "core/leakage.h"
#include "core/measure_family.h"
#include "gen/generator.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

/// Set leakage (max over the database) under one engine; "-" on error.
std::string SetLeak(const SyntheticDataset& data, const LeakageEngine& e) {
  auto v = SetLeakageArgMax(data.records, data.reference, data.weights, e,
                            nullptr);
  return v.ok() ? Fmt(*v, 5) : "-";
}

void SweepRow(RowPrinter& rows, const char* sweep, double value,
              const GeneratorConfig& config) {
  auto data = GenerateDataset(config);
  if (!data.ok()) {
    std::printf("generate failed: %s\n", data.status().ToString().c_str());
    return;
  }
  AutoLeakage expected;
  rows.Row({sweep, Fmt(value, 2), SetLeak(*data, expected),
            SetLeak(*data, *MeasureEngineSingleton(Measure::kPml)),
            SetLeak(*data, *MeasureEngineSingleton(Measure::kGuesswork)),
            SetLeak(*data, *MeasureEngineSingleton(Measure::kUnder)),
            SetLeak(*data, *MeasureEngineSingleton(Measure::kOver))});
}

}  // namespace

int main() {
  GeneratorConfig base;
  base.n = 30;
  base.num_records = 2000;
  PrintTitle("Measure family under the Table 4 generator",
             base.ToString() + "; set leakage (max over R) per measure");
  BenchReport report("measures", base.ToString(),
                     {"sweep", "value", "expected", "pml", "guesswork",
                      "under", "over"});
  RowPrinter rows(
      {"sweep", "value", "expected", "pml", "guesswork", "under", "over"}, 12,
      &report);

  // Sweep the confidence ceiling m: the measure fan-out is widest when
  // every attribute is uncertain and closes as records turn deterministic.
  for (double m : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    GeneratorConfig config = base;
    config.max_confidence = m;
    SweepRow(rows, "m", m, config);
  }

  // Sweep the perturbation probability at fixed m: perturbed copies miss
  // the reference, pulling every measure down together — the family's
  // orderings hold pointwise at every sweep position.
  for (double pp : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    GeneratorConfig config = base;
    config.perturb_prob = pp;
    SweepRow(rows, "pp", pp, config);
  }

  if (!report.WriteFile().ok()) return 1;
  return 0;
}
