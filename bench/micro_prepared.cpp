// Microbenchmark for the prepared-evaluation layer: string API vs prepared
// API on the workloads the layer targets — one reference scored against a
// large database (SetLeakage) and repeated per-record evaluation. The
// string path resolves labels/values and allocates per call; the prepared
// path interns once per reference and reuses a caller-owned workspace, so
// the gap here is the whole point of the layer. Run both SetLeakage
// variants at Arg(10000)+ to reproduce the PR's headline ratio.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/leakage.h"
#include "gen/generator.h"

namespace infoleak {
namespace {

struct Fixture {
  Database db;
  SyntheticDataset data;
};

Fixture MakeFixture(std::size_t n, std::size_t records,
                    bool random_weights = false) {
  GeneratorConfig config;
  config.n = n;
  config.num_records = records;
  config.random_weights = random_weights;
  auto data = GenerateDataset(config);
  Fixture f{Database{}, std::move(data).value()};
  for (const auto& r : f.data.records) f.db.Add(r);
  return f;
}

// ---------------------------------------------------------------------------
// Headline comparison: set leakage over a large synthetic database.
// String path: the pre-layer implementation — every record evaluation goes
// through the virtual string API and re-resolves weights and match
// positions by hashing strings. Prepared path: SetLeakage's PreparedReference
// overload, which prepares p once and streams records through one reusable
// workspace. (SetLeakage's string overload now also prepares internally, so
// the baseline is spelled out as an explicit loop here.)
// ---------------------------------------------------------------------------

double StringPathSetLeakage(const Database& db, const Record& p,
                            const WeightModel& wm,
                            const LeakageEngine& engine) {
  double best = 0.0;
  for (std::size_t i = 0; i < db.size(); ++i) {
    best = std::max(best, engine.RecordLeakage(db[i], p, wm).value_or(0.0));
  }
  return best;
}

void BM_SetLeakageStringExact(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StringPathSetLeakage(f.db, f.data.reference, f.data.weights, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakageStringExact)->Arg(1000)->Arg(10000);

void BM_SetLeakagePreparedExact(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakage(f.db, ref, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakagePreparedExact)->Arg(1000)->Arg(10000);

void BM_SetLeakageStringApprox(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)),
                       /*random_weights=*/true);
  ApproxLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        StringPathSetLeakage(f.db, f.data.reference, f.data.weights, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakageStringApprox)->Arg(1000)->Arg(10000);

void BM_SetLeakagePreparedApprox(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)),
                       /*random_weights=*/true);
  ApproxLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakage(f.db, ref, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakagePreparedApprox)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Per-record comparison: a single record evaluated repeatedly (the tracker
// / streaming-monitor pattern), isolating per-call overhead.
// ---------------------------------------------------------------------------

void BM_RecordLeakageString(benchmark::State& state) {
  auto f = MakeFixture(static_cast<std::size_t>(state.range(0)), 1);
  ApproxLeakage engine;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RecordLeakage(
        f.data.records[0], f.data.reference, f.data.weights));
  }
}
BENCHMARK(BM_RecordLeakageString)->Arg(20)->Arg(100)->Arg(500);

void BM_RecordLeakagePrepared(benchmark::State& state) {
  auto f = MakeFixture(static_cast<std::size_t>(state.range(0)), 1);
  ApproxLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  PreparedRecord r(f.data.records[0], ref);
  LeakageWorkspace ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.RecordLeakagePrepared(r, ref, &ws));
  }
}
BENCHMARK(BM_RecordLeakagePrepared)->Arg(20)->Arg(100)->Arg(500);

// ---------------------------------------------------------------------------
// Preparation cost itself: what the once-per-reference and once-per-record
// setup steps cost, so readers can amortize.
// ---------------------------------------------------------------------------

void BM_PrepareReference(benchmark::State& state) {
  auto f = MakeFixture(static_cast<std::size_t>(state.range(0)), 1);
  for (auto _ : state) {
    PreparedReference ref(f.data.reference, f.data.weights);
    benchmark::DoNotOptimize(ref.total_weight());
  }
}
BENCHMARK(BM_PrepareReference)->Arg(20)->Arg(100)->Arg(500);

void BM_AssignRecord(benchmark::State& state) {
  auto f = MakeFixture(static_cast<std::size_t>(state.range(0)), 1);
  const PreparedReference ref(f.data.reference, f.data.weights);
  PreparedRecord r;
  for (auto _ : state) {
    r.Assign(f.data.records[0], ref);
    benchmark::DoNotOptimize(r.size());
  }
}
BENCHMARK(BM_AssignRecord)->Arg(20)->Arg(100)->Arg(500);

// ---------------------------------------------------------------------------
// BatchLeakage: the span entry point used by callers that keep their own
// record layout.
// ---------------------------------------------------------------------------

void BM_BatchLeakagePrepared(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  std::vector<const Record*> ptrs;
  for (const auto& r : f.data.records) ptrs.push_back(&r);
  for (auto _ : state) {
    benchmark::DoNotOptimize(BatchLeakage(ptrs, ref, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BatchLeakagePrepared)->Arg(1000)->Arg(10000);

// ---------------------------------------------------------------------------
// Columnar path: the same set-leakage workloads streamed from a ColumnBank
// through the array kernels. The bank is built outside the timer — it is a
// once-per-(store, reference) cost, amortized exactly like PrepareReference.
// ---------------------------------------------------------------------------

void BM_SetLeakageColumnarExact(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)));
  ExactLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  const ColumnBank bank = ColumnBank::FromDatabase(f.db, ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakageColumnar(bank, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakageColumnarExact)->Arg(1000)->Arg(10000);

void BM_SetLeakageColumnarApprox(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)),
                       /*random_weights=*/true);
  ApproxLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  const ColumnBank bank = ColumnBank::FromDatabase(f.db, ref);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SetLeakageColumnar(bank, engine));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SetLeakageColumnarApprox)->Arg(1000)->Arg(10000);

void BM_RecordLeakageColumnar(benchmark::State& state) {
  auto f = MakeFixture(static_cast<std::size_t>(state.range(0)), 1);
  ApproxLeakage engine;
  const PreparedReference ref(f.data.reference, f.data.weights);
  ColumnBank bank(ref);
  bank.Append(f.data.records[0]);
  LeakageWorkspace ws;
  ws.ReserveFor(bank.max_record_size(), ref.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        engine.RecordLeakageColumnar(bank.view(0), ref, &ws));
  }
}
BENCHMARK(BM_RecordLeakageColumnar)->Arg(20)->Arg(100)->Arg(500);

void BM_BuildColumnBank(benchmark::State& state) {
  auto f = MakeFixture(20, static_cast<std::size_t>(state.range(0)));
  const PreparedReference ref(f.data.reference, f.data.weights);
  for (auto _ : state) {
    ColumnBank bank = ColumnBank::FromDatabase(f.db, ref);
    benchmark::DoNotOptimize(bank.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BuildColumnBank)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace infoleak

// Custom main: default --benchmark_out to BENCH_micro_prepared.json so every
// run leaves a machine-readable sidecar next to the console table. An
// explicit --benchmark_out on the command line still wins. Non-Release
// builds never write the sidecar by default — debug timings must not
// masquerade as baselines.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=BENCH_micro_prepared.json";
  std::string format_flag = "--benchmark_out_format=json";
#ifndef NDEBUG
  if (!has_out) {
    std::fprintf(stderr,
                 "note: non-Release build; not writing "
                 "BENCH_micro_prepared.json (pass --benchmark_out to force)\n");
    has_out = true;  // suppress the default sidecar
  }
#endif
  if (!has_out) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int patched_argc = static_cast<int>(args.size());
  benchmark::Initialize(&patched_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(patched_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
