// Figure 3(d): scalability of the three record-leakage algorithms as the
// number of attributes in p (and hence in r) grows.
//
// Paper shape (Java, 2.4 GHz Core 2): the naive possible-worlds algorithm
// only reaches ~12 attributes before exploding (O(2^n)); Algorithm 1 scales
// to ~250 (O(|p|·|r|²)); the approximation exceeds 2,000 (O(|p|·|r|)).
// Absolute times differ on modern hardware and C++, so each engine carries
// a per-point time budget; once a point exceeds it — or the engine's own
// complexity model predicts it would — the engine is cut off. The
// *ordering* of the cutoffs is the reproduced result.

#include <cmath>

#include "bench/harness.h"
#include "core/leakage.h"
#include "core/possible_worlds.h"
#include "gen/generator.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

constexpr double kPerPointBudgetSeconds = 3.0;
constexpr std::size_t kRecordsPerPoint = 20;

/// Seconds to evaluate the record leakage of every record in the dataset,
/// or a negative value when the engine refuses (naive beyond its cap).
/// The reference is prepared once per dataset — the deployment pattern the
/// prepared layer exists for — so the sweep measures evaluation cost, not
/// repeated string resolution.
double MeasureEngine(const LeakageEngine& engine, const SyntheticDataset& data,
                     const PreparedReference& ref) {
  WallTimer timer;
  if (engine.SupportsPrepared()) {
    LeakageWorkspace ws;
    PreparedRecord r;
    for (const auto& record : data.records) {
      r.Assign(record, ref);
      auto l = engine.RecordLeakagePrepared(r, ref, &ws);
      if (!l.ok()) return -1.0;
    }
  } else {
    for (const auto& r : data.records) {
      auto l = engine.RecordLeakage(r, data.reference, data.weights);
      if (!l.ok()) return -1.0;
    }
  }
  return timer.ElapsedSeconds();
}

/// The columnar counterpart: records stream from a pre-built ColumnBank
/// through the array kernels. The bank is built outside the timer — it is
/// a once-per-(store, reference) cost, amortized like PrepareReference.
double MeasureEngineColumnar(const LeakageEngine& engine,
                             const ColumnBank& bank,
                             const PreparedReference& ref) {
  LeakageWorkspace ws;
  ws.ReserveFor(bank.max_record_size(), ref.size());
  WallTimer timer;
  for (std::size_t i = 0; i < bank.size(); ++i) {
    auto l = engine.RecordLeakageColumnar(bank.view(i), ref, &ws);
    if (!l.ok()) return -1.0;
  }
  return timer.ElapsedSeconds();
}

/// One engine's state in the sweep: its last measured point and a
/// complexity model predicting the next point's cost so that hopeless runs
/// are skipped instead of burning minutes.
struct EngineTrack {
  const LeakageEngine* engine;
  // cost(n) exponent model: naive ~ 2^n, Algorithm 1 ~ n^3 (n matched
  // attributes x n^2 polynomial build), approximation ~ n^2.
  enum class Model { kExponential, kCubic, kQuadratic } model;
  bool columnar = false;  // measure through a ColumnBank instead
  bool alive = true;
  double last_seconds = -1.0;
  std::size_t last_n = 0;

  double Predict(std::size_t n) const {
    if (last_seconds < 0.0) return 0.0;  // nothing measured yet
    double ratio = 0.0;
    switch (model) {
      case Model::kExponential:
        ratio = std::pow(2.0, static_cast<double>(n) -
                                  static_cast<double>(last_n));
        break;
      case Model::kCubic:
        ratio = std::pow(static_cast<double>(n) / last_n, 3.0);
        break;
      case Model::kQuadratic:
        ratio = std::pow(static_cast<double>(n) / last_n, 2.0);
        break;
    }
    return last_seconds * ratio;
  }
};

}  // namespace

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.num_records = kRecordsPerPoint;
  PrintTitle("Figure 3(d): runtime vs number of attributes in p",
             base.ToString() +
                 "  (sweeping n; per-record-set runtime; '-' = refused, "
                 "'>budget' = predicted or measured over budget)");
  BenchReport report(
      "fig3d", base.ToString(),
      {"n", "naive_s", "alg1_s", "approx_s", "alg1_col_s", "approx_col_s"});
  RowPrinter rows(
      {"n", "naive_s", "alg1_s", "approx_s", "alg1_col_s", "approx_col_s"},
      14, &report);

  NaiveLeakage naive(/*max_attributes=*/kMaxEnumerableAttributes);
  ExactLeakage exact;
  ApproxLeakage approx;
  EngineTrack tracks[5] = {
      {&naive, EngineTrack::Model::kExponential},
      {&exact, EngineTrack::Model::kCubic},
      {&approx, EngineTrack::Model::kQuadratic},
      {&exact, EngineTrack::Model::kCubic, /*columnar=*/true},
      {&approx, EngineTrack::Model::kQuadratic, /*columnar=*/true},
  };

  for (std::size_t n :
       {1u,   2u,   4u,   6u,    8u,    10u,   12u,   14u,   16u,  18u,
        20u,  24u,  32u,  64u,   128u,  250u,  512u,  1024u, 2048u,
        4096u, 8192u}) {
    GeneratorConfig config = base;
    config.n = n;
    auto data = GenerateDataset(config);
    if (!data.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    const PreparedReference ref(data->reference, data->weights);
    Database db;
    for (const auto& r : data->records) db.Add(r);
    const ColumnBank bank = ColumnBank::FromDatabase(db, ref);
    std::vector<std::string> cells{std::to_string(n)};
    for (auto& track : tracks) {
      if (!track.alive) {
        cells.push_back("-");
        continue;
      }
      if (track.Predict(n) > kPerPointBudgetSeconds) {
        track.alive = false;
        cells.push_back(">budget");
        continue;
      }
      double secs = track.columnar
                        ? MeasureEngineColumnar(*track.engine, bank, ref)
                        : MeasureEngine(*track.engine, *data, ref);
      if (secs < 0.0) {
        track.alive = false;
        cells.push_back("-");
        continue;
      }
      track.last_seconds = secs;
      track.last_n = n;
      if (secs > kPerPointBudgetSeconds) {
        track.alive = false;
        cells.push_back(Fmt(secs, 3) + ">budget");
      } else {
        cells.push_back(Fmt(secs, 4));
      }
    }
    rows.Row(cells);
    bool any_alive = false;
    for (const auto& track : tracks) any_alive |= track.alive;
    if (!any_alive) break;
  }
  std::printf(
      "\nexpected ordering (paper): naive dies first (~12 attrs), Alg. 1 "
      "next (~hundreds), approximation last (thousands).\n");
  Status written = report.WriteFile();
  if (!written.ok()) {
    std::fprintf(stderr, "json write failed: %s\n",
                 written.ToString().c_str());
    return 1;
  }
  return 0;
}
