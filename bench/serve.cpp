// Throughput/latency benchmark for the networked query service: a real
// TCP server on loopback, a fixed pool of blocking clients hammering the
// prepared set-leakage path over a 10k-record store, swept over worker
// counts (1, 4, all cores). Reports req/sec and p50/p99 latency per sweep
// point and writes the BENCH_serve.json sidecar for CI.
//
// The workload interleaves `set-leak` (full prepared scan — the expensive
// representative query) with `leak` by record id (point query) in a 3:1
// ratio, all against one interned reference so the service's prepared
// cache is exercised the way a resident auditor session would.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "core/record_io.h"
#include "gen/generator.h"
#include "store/record_store.h"
#include "svc/client.h"
#include "svc/json.h"
#include "svc/server.h"
#include "svc/service.h"

namespace infoleak::bench {
namespace {

using Clock = std::chrono::steady_clock;

struct SweepPoint {
  std::size_t workers = 0;
  std::size_t clients = 0;
  uint64_t requests = 0;
  uint64_t failures = 0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double PercentileMs(std::vector<double>& sorted_ms, double q) {
  if (sorted_ms.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

Result<SweepPoint> RunSweep(const SyntheticDataset& data, std::size_t workers,
                            std::size_t clients, int per_client) {
  svc::LeakageService service(RecordStore::FromDatabase(data.records));
  svc::ServerConfig config;
  config.port = 0;
  config.workers = workers;
  config.queue_depth = 512;   // headroom: measure service time, not shedding
  config.deadline_ms = 0;     // latency tail belongs in the numbers
  config.idle_timeout_ms = 0;
  svc::Server server(service, config);
  if (Status started = server.Start(); !started.ok()) return started;
  std::thread runner([&server] { (void)server.Run(); });

  const std::string set_leak =
      std::string(R"({"verb":"set-leak","reference":)") +
      svc::JsonQuote(FormatRecord(data.reference)) + "}";
  const std::string point_leak =
      std::string(R"({"verb":"leak","record_id":17,"reference":)") +
      svc::JsonQuote(FormatRecord(data.reference)) + "}";

  std::vector<std::vector<double>> latencies(clients);
  std::vector<uint64_t> failed(clients, 0);
  const Clock::time_point begin = Clock::now();
  std::vector<std::thread> pool;
  for (std::size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c] {
      auto client = svc::Client::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failed[c] = static_cast<uint64_t>(per_client);
        return;
      }
      latencies[c].reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        const std::string& line = (i % 4 == 3) ? point_leak : set_leak;
        const Clock::time_point t0 = Clock::now();
        auto response = client->CallRaw(line);
        const Clock::time_point t1 = Clock::now();
        if (!response.ok() ||
            response->find("\"ok\":true") == std::string::npos) {
          ++failed[c];
          continue;
        }
        latencies[c].push_back(
            std::chrono::duration<double, std::milli>(t1 - t0).count());
      }
    });
  }
  for (auto& t : pool) t.join();
  const double wall_s =
      std::chrono::duration<double>(Clock::now() - begin).count();
  server.RequestShutdown();
  runner.join();

  SweepPoint point;
  point.workers = workers;
  point.clients = clients;
  std::vector<double> all;
  for (std::size_t c = 0; c < clients; ++c) {
    all.insert(all.end(), latencies[c].begin(), latencies[c].end());
    point.failures += failed[c];
  }
  point.requests = all.size();
  std::sort(all.begin(), all.end());
  point.req_per_sec =
      wall_s > 0.0 ? static_cast<double>(all.size()) / wall_s : 0.0;
  point.p50_ms = PercentileMs(all, 0.50);
  point.p99_ms = PercentileMs(all, 0.99);
  return point;
}

int Main() {
  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 20;
  config.num_records = 10000;
  auto data = GenerateDataset(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  const std::size_t cores = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> worker_sweep{1, 4, cores};
  std::sort(worker_sweep.begin(), worker_sweep.end());
  worker_sweep.erase(std::unique(worker_sweep.begin(), worker_sweep.end()),
                     worker_sweep.end());
  const std::size_t clients = 8;
  const int per_client = 150;

  PrintTitle("bench_serve: networked query service throughput",
             config.ToString() + " clients=" + std::to_string(clients) +
                 " per_client=" + std::to_string(per_client));
  BenchReport report(
      "serve", config.ToString(),
      {"workers", "clients", "requests", "failures", "req_per_sec", "p50_ms",
       "p99_ms"});
  RowPrinter rows(
      {"workers", "clients", "requests", "failures", "req_per_sec", "p50_ms",
       "p99_ms"},
      14, &report);
  for (std::size_t workers : worker_sweep) {
    auto point = RunSweep(*data, workers, clients, per_client);
    if (!point.ok()) {
      std::fprintf(stderr, "sweep workers=%zu: %s\n", workers,
                   point.status().ToString().c_str());
      return 1;
    }
    rows.Row({std::to_string(point->workers), std::to_string(point->clients),
              std::to_string(point->requests), std::to_string(point->failures),
              Fmt(point->req_per_sec, 6), Fmt(point->p50_ms, 4),
              Fmt(point->p99_ms, 4)});
  }
  Status written = report.WriteFile(".");
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace infoleak::bench

int main() { return infoleak::bench::Main(); }
