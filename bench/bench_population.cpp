// Population-scale linkage attack (extension bench): K people, per-person
// records mixed into one adversary database. Reports per-person leakage
// distribution and re-identification accuracy as the copy probability
// varies — the population-level generalization of Figure 3(a), and the
// "law-enforcement adversary" scenario of the paper's introduction.

#include <algorithm>
#include <cmath>

#include "apps/population.h"
#include "bench/harness.h"
#include "util/string_util.h"
#include "er/blocking.h"
#include "gen/population.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.n = 20;
  base.perturb_prob = 0.2;
  const std::size_t kPeople = 25;
  const std::size_t kRecordsPerPerson = 8;
  PrintTitle("Population linkage attack (extension)",
             base.ToString() + StrCat("  people=", std::to_string(kPeople)) +
                 StrCat(" records/person=", std::to_string(kRecordsPerPerson)) +
                 "  (sweeping pc)");
  RowPrinter rows({"pc", "min_leak", "median_leak", "max_leak",
                   "reid_accuracy", "entities"});

  ExactLeakage engine;
  for (int i = 1; i <= 9; i += 2) {
    GeneratorConfig config = base;
    config.copy_prob = static_cast<double>(i) / 10.0;
    auto data = GeneratePopulation(config, kPeople, kRecordsPerPerson);
    if (!data.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }

    // The adversary first links records per entity with blocked ER over
    // all attribute labels (complete for shared-value matching).
    std::vector<std::string> labels;
    for (std::size_t l = 0; l < config.n; ++l) {
      labels.push_back(StrCat("L", std::to_string(l)));
    }
    auto match = RuleMatch::SharedValue(labels);
    UnionMerge merge;
    LabelValueBlocking blocking(labels);
    BlockedResolver resolver(blocking, *match, merge);
    ErOperator er(resolver);

    auto leakages = PerPersonLeakage(data->records, data->references, er,
                                     data->weights, engine);
    if (!leakages.ok()) {
      std::fprintf(stderr, "leakage failed: %s\n",
                   leakages.status().ToString().c_str());
      return 1;
    }
    std::vector<double> values;
    for (const auto& entry : *leakages) values.push_back(entry.leakage);
    std::sort(values.begin(), values.end());

    auto reid = ReidentifyRecords(data->records, data->references,
                                  data->weights, engine, &data->owner);
    if (!reid.ok()) return 1;
    auto resolved = resolver.Resolve(data->records, nullptr);
    if (!resolved.ok()) return 1;

    rows.Row({Fmt(config.copy_prob, 1), Fmt(values.front(), 5),
              Fmt(values[values.size() / 2], 5), Fmt(values.back(), 5),
              Fmt(reid->accuracy, 4), std::to_string(resolved->size())});
  }
  std::printf(
      "\nreading: higher copy probability concentrates each person's data\n"
      "into linkable records — per-person leakage and re-identification\n"
      "both rise; the entity count approaches the true population size.\n");
  return 0;
}
