// Shared sweep driver for the Figure 3(a)-(c) trend reproductions: vary one
// Table 4 parameter, generate the dataset, and report the information
// leakage L0(R, p) computed with Algorithm 1 (the paper plots "Alg. 1").

#pragma once

#include <functional>

#include "bench/harness.h"
#include "core/leakage.h"
#include "gen/generator.h"
#include "util/timer.h"

namespace infoleak::bench {

/// Sweeps `set_param(value)` over 0, 0.1, ..., 1.0 and prints one row per
/// point: parameter value, set leakage, expected precision / recall of the
/// argmax record, and generation+evaluation time.
inline int RunTrendSweep(
    const std::string& figure, const std::string& param_name,
    const std::function<void(GeneratorConfig*, double)>& set_param) {
  GeneratorConfig base = GeneratorConfig::Basic();
  PrintTitle(figure, base.ToString() + "  (sweeping " + param_name + ")");
  RowPrinter rows({param_name, "leakage", "E[precision]", "E[recall]",
                   "seconds"});
  ExactLeakage engine;
  for (int i = 0; i <= 10; ++i) {
    double value = static_cast<double>(i) / 10.0;
    GeneratorConfig config = base;
    set_param(&config, value);
    WallTimer timer;
    auto data = GenerateDataset(config);
    if (!data.ok()) {
      std::fprintf(stderr, "generation failed: %s\n",
                   data.status().ToString().c_str());
      return 1;
    }
    std::ptrdiff_t argmax = -1;
    auto leakage = SetLeakageArgMax(data->records, data->reference,
                                    data->weights, engine, &argmax);
    if (!leakage.ok()) {
      std::fprintf(stderr, "leakage failed: %s\n",
                   leakage.status().ToString().c_str());
      return 1;
    }
    double pr = 0.0;
    double re = 0.0;
    if (argmax >= 0) {
      const Record& top = data->records[static_cast<std::size_t>(argmax)];
      pr = engine.ExpectedPrecision(top, data->reference, data->weights)
               .value_or(0.0);
      re = engine.ExpectedRecall(top, data->reference, data->weights)
               .value_or(0.0);
    }
    rows.Row({Fmt(value, 2), Fmt(*leakage), Fmt(pr), Fmt(re),
              Fmt(timer.ElapsedSeconds(), 3)});
  }
  return 0;
}

}  // namespace infoleak::bench
