// Ablation: measure variants (extensions the paper names in §2.1-2.2 but
// defers "due to space limitations"). Sweeps the same perturbed workload
// under (a) the crisp F1 leakage, (b) soft leakage with numeric degree-of-
// error credit, (c) informativeness-weighted leakage against a skewed value
// population, and (d) F-beta for several beta — showing how each extension
// moves the measured leakage.

#include <cmath>

#include "bench/harness.h"
#include "core/correlation.h"
#include "core/fbeta_leakage.h"
#include "core/informativeness.h"
#include "core/leakage.h"
#include "core/similarity.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

/// A numeric workload the extensions can act on: reference ages/zips, and
/// an adversary record whose values are off by a controlled amount.
struct NumericCase {
  Record p;
  Record r;
};

NumericCase MakeCase(double offset, Rng* rng) {
  NumericCase out;
  for (int i = 0; i < 12; ++i) {
    std::string label = StrCat("F", std::to_string(i));
    long long truth = 100 + static_cast<long long>(rng->NextBounded(900));
    out.p.Insert(Attribute(label, std::to_string(truth)));
    // The adversary's guess drifts by ±offset.
    long long guess = truth + static_cast<long long>(
                                  std::llround(offset * (rng->NextDouble() *
                                                             2.0 -
                                                         1.0)));
    out.r.Insert(Attribute(label, std::to_string(guess), 0.9));
  }
  return out;
}

}  // namespace

int main() {
  PrintTitle("Ablation: measure variants (crisp vs soft vs informed vs "
             "F-beta)",
             "12 numeric attributes, confidence 0.9, guesses drift by "
             "+-offset; seed=3");
  RowPrinter rows({"offset", "crisp_L", "soft_L", "fb0.5", "fb2.0"});

  WeightModel unit;
  NaiveLeakage naive;
  LabelSimilarity soft_sim;
  for (int i = 0; i < 12; ++i) {
    soft_sim.Register(StrCat("F", std::to_string(i)),
                      std::make_unique<NumericSimilarity>(100.0));
  }
  FBetaLeakage half(0.5);
  FBetaLeakage two(2.0);

  for (double offset : {0.0, 10.0, 25.0, 50.0, 100.0, 300.0}) {
    Rng rng(3);
    NumericCase c = MakeCase(offset, &rng);
    double crisp = naive.RecordLeakage(c.r, c.p, unit).value_or(-1);
    double soft = SoftRecordLeakage(c.r, c.p, unit, soft_sim).value_or(-1);
    double f05 = half.Naive(c.r, c.p, unit).value_or(-1);
    double f20 = two.Naive(c.r, c.p, unit).value_or(-1);
    rows.Row({Fmt(offset, 0), Fmt(crisp, 5), Fmt(soft, 5), Fmt(f05, 5),
              Fmt(f20, 5)});
  }

  // Informativeness: the same disclosure leaks more when the disclosed
  // value is rare in the population.
  std::printf("\ninformativeness (skewed disease population, adversary "
              "knows only the disease):\n");
  RowPrinter info_rows({"value", "popularity", "crisp_L", "informed_L"});
  ValueDistribution dist;
  for (int i = 0; i < 990; ++i) dist.Observe("D", "Flu");
  for (int i = 0; i < 9; ++i) dist.Observe("D", "Cancer");
  dist.Observe("D", "Kuru");
  InformativenessWeigher weigher(unit, dist);
  for (const char* disease : {"Flu", "Cancer", "Kuru"}) {
    Record p{{"N", "Alice"}, {"Z", "94305"}, {"D", disease}};
    Record r{{"D", disease}};
    double crisp = RecordLeakageNoConfidence(r, p, unit);
    double informed = InformedRecordLeakageNoConfidence(r, p, weigher);
    info_rows.Row({disease,
                   Fmt(dist.Probability("D", disease), 4), Fmt(crisp, 5),
                   Fmt(informed, 5)});
  }
  // Correlated attributes (§2's J/A/P): how much does the naive flat model
  // over-count when the adversary learns the second of two correlated
  // attributes?
  std::printf("\ncorrelated attributes (phone ~ address share neighborhood "
              "J):\n");
  RowPrinter corr_rows({"knows", "flat_L", "decomposed_L"});
  CorrelationModel model;
  CorrelationModel::Group group;
  group.joint_label = "J";
  group.members["P"] = {"P_rest", 1.0};
  group.members["A"] = {"A_rest", 1.0};
  group.joint_values[{"P", "555-0100"}] = "downtown";
  group.joint_values[{"A", "123 Main"}] = "downtown";
  if (!model.AddGroup(std::move(group)).ok()) return 1;
  WeightModel corr_weights;
  if (!model.ApplyWeights(&corr_weights).ok()) return 1;
  Record person{{"N", "Alice"}, {"P", "555-0100"}, {"A", "123 Main"}};
  Record dp = model.Decompose(person);
  struct Known {
    const char* what;
    Record record;
  };
  std::vector<Known> cases{
      {"nothing", Record{{"N", "Alice"}}},
      {"phone", Record{{"N", "Alice"}, {"P", "555-0100"}}},
      {"phone+address",
       Record{{"N", "Alice"}, {"P", "555-0100"}, {"A", "123 Main"}}}};
  ApproxLeakage crisp_engine;  // confidences 1 -> exact
  for (const auto& c : cases) {
    double flat =
        crisp_engine.RecordLeakage(c.record, person, unit).value_or(-1);
    double decomposed =
        crisp_engine
            .RecordLeakage(model.Decompose(c.record), dp, corr_weights)
            .value_or(-1);
    corr_rows.Row({c.what, Fmt(flat, 5), Fmt(decomposed, 5)});
  }

  std::printf(
      "\nreading: soft leakage degrades smoothly with guess error where\n"
      "the crisp measure falls off a cliff; recall-heavy beta punishes the\n"
      "same record for incompleteness; rare-value disclosures score higher\n"
      "under informativeness weighting; and the J/A/P decomposition makes\n"
      "the phone alone worth most of the pair (the flat model over-credits\n"
      "the second correlated attribute) — the paper's deferred extensions,\n"
      "quantified.\n");
  return 0;
}
