// Ablation: entity-resolution engine choice. The paper abstracts E and its
// cost C(E, R) (§2.4); this harness quantifies the trade-off between the
// two engines we provide — pairwise transitive closure (always |R|²/2 match
// calls) and R-Swoosh (merging early shrinks the comparison set) — and
// shows both reach the same leakage.

#include "bench/harness.h"
#include "core/leakage.h"
#include "er/swoosh.h"
#include "er/transitive.h"
#include "gen/generator.h"
#include "ops/cost.h"

using namespace infoleak;
using namespace infoleak::bench;

namespace {

/// Records of the same person share copied attribute values, so "share any
/// (label, value) pair" is the natural synthetic match predicate.
bool ShareAnyAttribute(const Record& a, const Record& b) {
  // Both attribute vectors are sorted; intersect in linear time.
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (ia->Key() < ib->Key()) {
      ++ia;
    } else if (ib->Key() < ia->Key()) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.n = 30;
  base.perturb_prob = 0.2;  // mostly-correct copies so records link up
  PrintTitle("Ablation: ER engine cost vs leakage",
             base.ToString() + "  (sweeping |R|; match = share any "
                               "attribute)");
  RowPrinter rows({"|R|", "engine", "matches", "merges", "seconds",
                   "entities", "leakage", "C(E,R)"}, 20);

  PredicateMatch match(ShareAnyAttribute, "share-any");
  UnionMerge merge;
  SwooshResolver swoosh(match, merge);
  TransitiveClosureResolver transitive(match, merge);
  PolynomialCostModel paper_cost(1.0 / 1000.0, 2.0);
  ExactLeakage engine;

  for (std::size_t records : {50u, 100u, 200u, 400u, 800u}) {
    GeneratorConfig config = base;
    config.num_records = records;
    auto data = GenerateDataset(config);
    if (!data.ok()) return 1;
    for (const EntityResolver* resolver :
         std::initializer_list<const EntityResolver*>{&transitive, &swoosh}) {
      ErStats stats;
      auto resolved = resolver->Resolve(data->records, &stats);
      if (!resolved.ok()) return 1;
      auto leakage = SetLeakage(*resolved, data->reference, data->weights,
                                engine);
      if (!leakage.ok()) return 1;
      rows.Row({std::to_string(records), std::string(resolver->name()),
                std::to_string(stats.match_calls),
                std::to_string(stats.merge_calls),
                Fmt(stats.elapsed_seconds, 4),
                std::to_string(resolved->size()), Fmt(*leakage),
                Fmt(paper_cost.Cost(data->records), 3)});
    }
  }
  std::printf(
      "\nreading: both engines produce identical leakage; R-Swoosh needs\n"
      "far fewer match calls once merges collapse the Alice cluster, while\n"
      "transitive closure always pays the full |R|(|R|-1)/2 — the adversary\n"
      "effort C(E,R) the paper models as c*|R|^2.\n");
  return 0;
}
