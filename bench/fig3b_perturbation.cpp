// Figure 3(b): information leakage as the perturbation probability pp grows.
// Paper shape: monotonically decreasing to exactly 0 at pp = 1 — perturbed
// copies are incorrect, killing precision.

#include "bench/trend_common.h"

int main() {
  return infoleak::bench::RunTrendSweep(
      "Figure 3(b): leakage vs probability of perturbation (pp)", "pp",
      [](infoleak::GeneratorConfig* c, double v) { c->perturb_prob = v; });
}
