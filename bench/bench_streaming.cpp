// Extension bench: online leakage maintenance vs batch recomputation.
// A release ledger (or a monitoring adversary) adds one record at a time;
// recomputing L(R, p, E) from scratch re-resolves the whole database per
// insertion (the paper's quadratic C(E,R) paid |R| times), while the
// streaming monitor touches only the affected entity.

#include "apps/streaming.h"
#include "bench/harness.h"
#include "er/transitive.h"
#include "gen/generator.h"
#include "ops/operator.h"
#include "util/timer.h"

using namespace infoleak;
using namespace infoleak::bench;

int main() {
  GeneratorConfig base = GeneratorConfig::Basic();
  base.n = 20;
  base.perturb_prob = 0.2;
  PrintTitle("Extension: streaming vs batch leakage maintenance",
             base.ToString() + "  (ingesting one record at a time; total "
                               "seconds across all insertions)");
  RowPrinter rows({"|R|", "streaming_s", "batch_s", "speedup", "final_L"},
                  16);

  // The Taylor approximation is the realistic monitoring engine: exact
  // Algorithm 1 costs O(|composite|²) per re-score and the linked
  // composite keeps growing, drowning the ER cost this bench isolates.
  ApproxLeakage engine;
  WeightModel unit;
  auto match = RuleMatch::SharedValue({"L0", "L1", "L2", "L3", "L4"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  ErOperator batch_op(resolver);

  constexpr std::size_t kBatchCap = 200;  // batch is O(|R|³) overall
  for (std::size_t records : {25u, 50u, 100u, 200u, 400u, 1600u}) {
    GeneratorConfig config = base;
    config.num_records = records;
    auto data = GenerateDataset(config);
    if (!data.ok()) return 1;

    WallTimer streaming_timer;
    StreamingLeakage monitor(data->reference,
                             {"L0", "L1", "L2", "L3", "L4"}, unit, engine);
    double streaming_final = 0.0;
    for (const auto& r : data->records) {
      auto l = monitor.Add(r);
      if (!l.ok()) return 1;
      streaming_final = *l;
    }
    double streaming_seconds = streaming_timer.ElapsedSeconds();

    if (records > kBatchCap) {
      rows.Row({std::to_string(records), Fmt(streaming_seconds, 4), "-",
                "-", Fmt(streaming_final, 5)});
      continue;
    }
    WallTimer batch_timer;
    Database so_far;
    double batch_final = 0.0;
    for (const auto& r : data->records) {
      so_far.Add(r);
      auto l = InformationLeakage(so_far, data->reference, batch_op, unit,
                                  engine);
      if (!l.ok()) return 1;
      batch_final = *l;
    }
    double batch_seconds = batch_timer.ElapsedSeconds();

    if (std::abs(streaming_final - batch_final) > 1e-9) {
      std::fprintf(stderr, "MISMATCH: %f vs %f\n", streaming_final,
                   batch_final);
      return 1;
    }
    rows.Row({std::to_string(records), Fmt(streaming_seconds, 4),
              Fmt(batch_seconds, 4),
              Fmt(batch_seconds / std::max(1e-9, streaming_seconds), 1),
              Fmt(streaming_final, 5)});
  }
  std::printf(
      "\nreading: identical leakage trajectories (asserted to 1e-9); the\n"
      "per-insertion batch pipeline pays the full quadratic resolve every\n"
      "time while the streaming monitor touches only the affected\n"
      "component — a 70x gap by |R|=200, and streaming alone carries on\n"
      "to thousands of records in well under a second.\n");
  return 0;
}
