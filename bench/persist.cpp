// Durability bench: what each fsync policy costs on the append path, and
// what recovery costs with and without a snapshot. Appends a generated
// store through the full WAL pipeline per mode, then reopens the
// directory twice — once replaying the whole log, once from a snapshot —
// timing both. Writes the BENCH_persist.json sidecar for CI.
//
// `always` pays one fsync per acknowledged append (the durability
// guarantee the crash tests pin down), so it sweeps fewer records than
// the batched modes; rows report throughput, not totals, to stay
// comparable.

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "gen/generator.h"
#include "persist/durable_store.h"
#include "util/timer.h"

namespace infoleak::bench {
namespace {

namespace fs = std::filesystem;

struct ModePlan {
  persist::FsyncMode mode;
  std::size_t records;
};

std::string FreshDir(const std::string& name) {
  std::string dir = (fs::temp_directory_path() / ("bench_persist_" + name))
                        .string();
  fs::remove_all(dir);
  return dir;
}

int Main() {
  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 16;
  config.num_records = 10000;
  auto data = GenerateDataset(config);
  if (!data.ok()) {
    std::fprintf(stderr, "generate: %s\n", data.status().ToString().c_str());
    return 1;
  }

  PrintTitle("bench_persist: WAL append throughput and recovery cost",
             config.ToString());
  const std::vector<std::string> columns{"fsync",        "records",
                                         "append_per_s", "wal_mib",
                                         "replay_ms",    "snap_recover_ms"};
  BenchReport report("persist", config.ToString(), columns);
  RowPrinter rows(columns, 16, &report);

  // One fsync per append is milliseconds each on real disks; give the
  // durable mode a smaller sweep so the bench stays under a minute.
  const std::vector<ModePlan> plans{
      {persist::FsyncMode::kAlways, 500},
      {persist::FsyncMode::kInterval, 10000},
      {persist::FsyncMode::kNever, 10000},
  };
  for (const ModePlan& plan : plans) {
    const std::string mode_name{persist::FsyncModeName(plan.mode)};
    const std::string dir = FreshDir(mode_name);
    persist::DurableStore::Options options;
    options.fsync = plan.mode;
    {
      auto store = persist::DurableStore::Open(dir, options);
      if (!store.ok()) {
        std::fprintf(stderr, "open: %s\n", store.status().ToString().c_str());
        return 1;
      }
      WallTimer append_timer;
      for (std::size_t i = 0; i < plan.records; ++i) {
        if (!(*store)->Append(data->records[i]).ok()) return 1;
      }
      // Count the final flush against the append path, not recovery.
      if (!(*store)->Sync().ok()) return 1;
      const double append_s = append_timer.ElapsedSeconds();
      const double wal_mib = static_cast<double>((*store)->wal_offset()) /
                             (1024.0 * 1024.0);

      // Recovery 1: full WAL replay (no snapshot exists yet).
      WallTimer replay_timer;
      auto replayed = persist::DurableStore::Open(dir, options);
      const double replay_ms = replay_timer.ElapsedSeconds() * 1e3;
      if (!replayed.ok() ||
          (*replayed)->store().size() != plan.records ||
          (*replayed)->recovery().replayed_frames != plan.records) {
        std::fprintf(stderr, "wal recovery mismatch for %s\n",
                     mode_name.c_str());
        return 1;
      }
      if (!(*replayed)->Snapshot().ok()) return 1;

      // Recovery 2: snapshot load, empty WAL tail.
      WallTimer snap_timer;
      auto snapshotted = persist::DurableStore::Open(dir, options);
      const double snap_ms = snap_timer.ElapsedSeconds() * 1e3;
      if (!snapshotted.ok() ||
          (*snapshotted)->store().size() != plan.records ||
          (*snapshotted)->recovery().replayed_frames != 0) {
        std::fprintf(stderr, "snapshot recovery mismatch for %s\n",
                     mode_name.c_str());
        return 1;
      }

      rows.Row({mode_name, std::to_string(plan.records),
                Fmt(static_cast<double>(plan.records) /
                        std::max(1e-9, append_s),
                    6),
                Fmt(wal_mib, 3), Fmt(replay_ms, 4), Fmt(snap_ms, 4)});
    }
    fs::remove_all(dir);
  }

  std::printf(
      "\nreading: `always` buys the no-lost-acks guarantee at one fsync\n"
      "per append; `interval` batches the flush on a background cadence\n"
      "and `never` leaves it to the OS. Snapshot recovery skips the\n"
      "per-frame decode+CRC of replay, which is what `compact` exists\n"
      "to make permanent.\n");
  Status written = report.WriteFile(".");
  if (!written.ok()) {
    std::fprintf(stderr, "write: %s\n", written.ToString().c_str());
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace infoleak::bench

int main() { return infoleak::bench::Main(); }
