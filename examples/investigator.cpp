// The adversary's (or law-enforcement investigator's — §1's framing) full
// workflow on a realistic web-profile corpus:
//
// 1. Ingest noisy profiles into an indexed record store.
// 2. Pull a dossier on a person of interest with an index-accelerated
//    dipping query.
// 3. Repair typos with fuzzy entity resolution and measure what the extra
//    analysis effort buys (match-call accounting).
// 4. Rank which uncertain fact to verify next (§4.3).
// 5. Re-identify every profile in the corpus against known references.

#include <cstdio>

#include "apps/enhancement.h"
#include "apps/population.h"
#include "er/cluster_quality.h"
#include "er/similarity_match.h"
#include "er/transitive.h"
#include "gen/realistic.h"
#include "store/record_store.h"

using namespace infoleak;

int main() {
  RealisticConfig config;
  config.num_people = 12;
  config.records_per_person = 5;
  config.typo_prob = 0.35;
  config.seed = 1234;
  auto corpus = GenerateRealistic(config);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  const RealisticPerson& target = corpus->people[0];
  std::printf("corpus: %zu noisy profiles of %zu people\n",
              corpus->records.size(), corpus->people.size());
  std::printf("person of interest: %s\n\n", target.full_name.c_str());

  // 1-2. Indexed store + dossier by exact shared values.
  RecordStore store = RecordStore::FromDatabase(corpus->records);
  Record query{{"N", target.full_name}};
  std::vector<RecordId> members;
  auto dossier = store.Dossier(query, {}, &members);
  if (!dossier.ok()) return 1;
  WeightModel unit;
  AutoLeakage engine;
  double exact_leak =
      engine.RecordLeakage(*dossier, target.reference, unit).value_or(-1);
  std::printf("exact-value dossier: %zu records, %zu attributes, leakage "
              "%.4f\n",
              members.size(), dossier->size(), exact_leak);

  // 3. Fuzzy ER over the whole corpus: costs more match calls, repairs
  // typo'd names.
  LabelSimilarity sim;
  sim.Register("N", std::make_unique<EditDistanceSimilarity>());
  SimilarityRuleMatch fuzzy(MatchRules{{"N"}, {"E"}, {"P"}}, sim, 0.8);
  UnionMerge merge;
  TransitiveClosureResolver resolver(fuzzy, merge);
  ErStats stats;
  auto resolved = resolver.Resolve(corpus->records, &stats);
  if (!resolved.ok()) return 1;
  auto quality = EvaluateClustering(*resolved, corpus->owner);
  if (!quality.ok()) return 1;
  double fuzzy_leak =
      SetLeakage(*resolved, target.reference, unit, engine).value_or(-1);
  std::printf(
      "fuzzy ER: %zu entities (truth %zu), pairwise F1 %.3f, %llu match "
      "calls,\n          target leakage %.4f\n\n",
      resolved->size(), corpus->people.size(), quality->pairwise_f1,
      static_cast<unsigned long long>(stats.match_calls), fuzzy_leak);

  // 4. Which uncertain fact should the investigator verify next?
  Database target_facts;
  for (std::size_t i = 0; i < corpus->records.size(); ++i) {
    if (corpus->owner[i] == 0 && !corpus->records[i].empty()) {
      target_facts.Add(corpus->records[i]);
    }
  }
  NaiveLeakage oracle;
  auto best = BestEnhancement(target_facts, unit, oracle);
  if (best.ok()) {
    std::printf("most cost-effective verification: %s (gain/cost %.4f)\n\n",
                best->attribute.ToString().c_str(), best->ratio);
  } else {
    std::printf("every gathered fact is already certain\n\n");
  }

  // 5. Re-identify the whole corpus against the known references.
  std::vector<Record> references;
  for (const auto& person : corpus->people) {
    references.push_back(person.reference);
  }
  auto reid = ReidentifyRecords(corpus->records, references, unit, engine,
                                &corpus->owner);
  if (!reid.ok()) return 1;
  std::printf("re-identification: %zu/%zu profiles attributed, accuracy "
              "%.3f\n",
              reid->attributed, corpus->records.size(), reid->accuracy);
  return 0;
}
