// §4.3 scenario, from the adversary's side: Eve has assembled a composite
// dossier rc about a person of interest, but parts of it are uncertain.
// Verifying an attribute (more research, a bribe, a subpoena) costs money
// proportional to the missing confidence. Which fact should she verify?
//
// Demonstrates: ComposeAll, RankEnhancements / BestEnhancement, and a
// budgeted greedy verification plan.

#include <cstdio>

#include "apps/enhancement.h"

using namespace infoleak;

int main() {
  // Eve's raw facts (the paper's §4.3 example database).
  Database facts;
  facts.Add(Record{{"N", "Alice", 1.0}, {"A", "20", 1.0}});
  facts.Add(
      Record{{"N", "Alice", 0.9}, {"P", "123", 0.5}, {"C", "987", 1.0}});

  WeightModel weights;
  NaiveLeakage engine;  // records are small; the oracle engine is fine

  Record rc = ComposeAll(facts);
  Record rp = rc.WithFullConfidence();
  std::printf("Composite dossier rc = %s\n", rc.ToString().c_str());
  std::printf("Certainty L(rc, rp)  = %.4f (paper: 13/14)\n\n",
              engine.RecordLeakage(rc, rp, weights).value_or(-1.0));

  auto ranked = RankEnhancements(facts, weights, engine);
  if (!ranked.ok()) {
    std::fprintf(stderr, "%s\n", ranked.status().ToString().c_str());
    return 1;
  }
  std::printf("%-28s %-10s %-10s %-10s\n", "verify", "gain", "cost",
              "gain/cost");
  for (const auto& opt : *ranked) {
    std::printf("%-28s %-10.4f %-10.4f %-10.4f\n",
                opt.attribute.ToString().c_str(), opt.gain, opt.cost,
                opt.ratio);
  }
  std::printf(
      "\nVerifying the phone number dominates: the name is already certain\n"
      "in the composite (r1 contributes it at confidence 1), so paying to\n"
      "verify r2's name buys nothing. (paper §4.3; gain 1/14 at cost 1/2 —\n"
      "ratio 1/7; the paper's printed 1/28 is an arithmetic slip)\n\n");

  auto plan = GreedyEnhancementPlan(facts, /*max_budget=*/1.0, weights,
                                    engine);
  if (!plan.ok()) {
    std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
    return 1;
  }
  std::printf("Greedy plan with budget 1.0: %zu step(s), cost %.2f, "
              "certainty %.4f -> %.4f\n",
              plan->steps.size(), plan->total_cost, plan->certainty_before,
              plan->certainty_after);
  for (const auto& step : plan->steps) {
    std::printf("  verify %s (gain %.4f)\n",
                step.attribute.ToString().c_str(), step.gain);
  }
  return 0;
}
