// Quickstart: the paper's running examples end to end.
//
// 1. Build Alice's reference record p and an adversary record r.
// 2. Compute precision / recall / F1 (§2.1–2.2).
// 3. Add confidences and compute the record leakage L(r, p) (§2.3).
// 4. Run entity resolution over a small database and watch the
//    information leakage grow (§2.4).

#include <cstdio>

#include "core/leakage.h"
#include "core/measures.h"
#include "er/swoosh.h"
#include "ops/operator.h"

using namespace infoleak;

int main() {
  // --- Correctness and completeness -------------------------------------
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}, {"Z", "94305"}};
  Record r{{"N", "Alice"}, {"A", "20"}, {"P", "111"}};
  WeightModel wm;
  if (Status st = wm.SetWeight("N", 2.0); !st.ok()) {
    std::fprintf(stderr, "weight setup failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("reference p  = %s\n", p.ToString().c_str());
  std::printf("adversary r  = %s\n\n", r.ToString().c_str());
  std::printf("precision(r, p) = %.4f   (paper: 3/4)\n",
              Precision(r, p, wm));
  std::printf("recall(r, p)    = %.4f   (paper: 3/5)\n", Recall(r, p, wm));
  std::printf("L0(r, p)        = %.4f   (paper: 2/3)\n\n",
              RecordLeakageNoConfidence(r, p, wm));

  // --- Record leakage under uncertainty ----------------------------------
  // §2.3 example: p = {<N,Alice>, <A,20>, <P,123>}, r = {<N,Alice,0.5>,
  // <A,20,1>} -> L(r, p) = 13/20. (The paper states wN = 2 for this
  // example but its arithmetic uses unit weights — 2/2 and 2/3 are plain
  // attribute counts — so we use unit weights to reproduce 13/20.)
  Record p2{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r2{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  WeightModel unit_weights;
  NaiveLeakage naive;
  auto leak = naive.RecordLeakage(r2, p2, unit_weights);
  if (!leak.ok()) {
    std::fprintf(stderr, "leakage failed: %s\n",
                 leak.status().ToString().c_str());
    return 1;
  }
  std::printf("L(r2, p2) = %.4f   (paper: 13/20 = 0.65)\n\n", *leak);

  // --- Entity resolution raises leakage ----------------------------------
  // §2.4 example: leakage grows from 2/3 to 6/7 after ER merges the two
  // Alice records.
  Record pref{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});

  WeightModel unit;  // all weights 1
  AutoLeakage engine;
  auto name_match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver swoosh(*name_match, merge);
  ErOperator er(swoosh);
  IdentityOperator identity;

  auto before = InformationLeakage(db, pref, identity, unit, engine);
  auto after = AnalyzeLeakage(db, pref, er, unit, engine);
  if (!before.ok() || !after.ok()) {
    std::fprintf(stderr, "information leakage failed\n");
    return 1;
  }
  std::printf("L(R, p) before ER = %.4f   (paper: 2/3)\n", *before);
  std::printf("L(R, p) after ER  = %.4f   (paper: 6/7)\n", after->leakage);
  std::printf("analysis cost C(E, R) = %.4f   (c*|R|^2 with c=1/1000)\n",
              after->cost);
  std::printf("\nmerged database:\n%s", after->analyzed.ToString().c_str());
  return 0;
}
