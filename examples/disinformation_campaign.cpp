// §4.2 scenario: Alice has already leaked records r and s; with a limited
// budget, which fake records should she publish to minimize what an
// ER-running adversary can piece together?
//
// Demonstrates: candidate generation (self vs linkage disinformation, the
// Figure 2 topology), the budgeted exhaustive and greedy optimizers, and
// per-record incremental effects.

#include <cstdio>

#include "apps/disinformation.h"
#include "er/swoosh.h"

using namespace infoleak;

int main() {
  // Alice's full information.
  Record p{{"N", "alice"}, {"P", "123"}, {"C", "999"}, {"A", "main-st"},
           {"Z", "94305"}};

  // What is already out there (Figure 2): r, s are Alice's; t, u, v are
  // other people's records.
  Database db;
  db.Add(Record{{"N", "alice"}, {"P", "123"}});              // r
  db.Add(Record{{"N", "alice"}, {"C", "999"}});              // s
  db.Add(Record{{"N", "bob"}, {"K", "k1"}});                 // t
  db.Add(Record{{"N", "bob"}, {"P", "555"}});                // u
  db.Add(Record{{"N", "carol"}, {"K", "k2"}, {"S", "000"}}); // v

  RuleMatch match(MatchRules{{"N"}, {"P"}, {"K"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator adversary(resolver);
  RuleMatchFactory factory(MatchRules{{"N"}, {"P"}, {"K"}});
  DisinformationOptimizer optimizer(factory);
  WeightModel weights;
  ExactLeakage engine;

  auto baseline = InformationLeakage(db, p, adversary, weights, engine);
  std::printf("Database:\n%s\n", db.ToString().c_str());
  std::printf("Baseline leakage after adversary ER: %.4f\n\n",
              baseline.value_or(-1.0));

  auto candidates = optimizer.GenerateCandidates(db, p,
                                                 /*max_record_size=*/4,
                                                 /*max_bogus=*/2);
  if (!candidates.ok()) {
    std::fprintf(stderr, "%s\n", candidates.status().ToString().c_str());
    return 1;
  }
  std::printf("Generated %zu disinformation candidates, e.g.:\n",
              candidates->size());
  for (std::size_t i = 0; i < candidates->size() && i < 4; ++i) {
    std::printf("  [%s, cost %.0f] %s\n", (*candidates)[i].strategy.c_str(),
                (*candidates)[i].cost,
                (*candidates)[i].record.ToString().c_str());
  }

  for (double budget : {4.0, 8.0, 16.0}) {
    auto plan = optimizer.OptimizeGreedy(db, p, adversary, *candidates,
                                         budget, weights, engine);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "\nbudget %5.1f: leakage %.4f -> %.4f using %zu records (cost "
        "%.0f)\n",
        budget, plan->leakage_before, plan->leakage_after,
        plan->chosen.size(), plan->total_cost);
    for (const auto& c : plan->chosen) {
      std::printf("  publish [%s] %s\n", c.strategy.c_str(),
                  c.record.ToString().c_str());
    }
  }
  std::printf(
      "\nSelf disinformation pollutes Alice's own composite with bogus\n"
      "attributes; linkage disinformation splices strangers' data into it.\n"
      "Either way the adversary's merged record gets less precise. (§4.2)\n");
  return 0;
}
