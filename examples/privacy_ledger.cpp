// Life-of-Alice scenario: a privacy ledger tracking every disclosure Alice
// makes over time, plus the adversary-side dipping query of §2.4.
//
// Demonstrates: LeakageTracker (release history, what-if analysis),
// DippingResult (what an adversary focused on Alice can pull together),
// and F-beta leakage as an alternative sensitivity profile.

#include <cstdio>

#include "apps/tracker.h"
#include "core/fbeta_leakage.h"
#include "er/dipping.h"
#include "er/swoosh.h"

using namespace infoleak;

int main() {
  // Alice's complete information.
  Record alice{{"N", "alice"},    {"E", "a@mail"}, {"P", "555-1234"},
               {"C", "4111-9999"}, {"A", "123 Main"}, {"Z", "94305"},
               {"S", "000-00-0000"}};

  // The adversary links records sharing a name, email, or phone.
  RuleMatch match(MatchRules{{"N"}, {"E"}, {"P"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator adversary(resolver);
  WeightModel weights;
  if (!weights.SetWeight("S", 5.0).ok() || !weights.SetWeight("C", 3.0).ok()) {
    return 1;
  }
  AutoLeakage engine;

  LeakageTracker ledger(alice, adversary, weights, engine);

  struct Disclosure {
    const char* what;
    Record record;
  };
  std::vector<Disclosure> disclosures{
      {"social network profile", Record{{"N", "alice"}, {"E", "a@mail"}}},
      {"online store account",
       Record{{"E", "a@mail"}, {"A", "123 Main"}, {"Z", "94305"}}},
      {"app purchase",
       Record{{"N", "alice"}, {"P", "555-1234"}, {"C", "4111-9999"}}},
  };

  std::printf("%-26s %-10s %-10s %-12s\n", "disclosure", "before", "after",
              "incremental");
  for (auto& d : disclosures) {
    auto entry = ledger.Release(d.what, d.record);
    if (!entry.ok()) {
      std::fprintf(stderr, "%s\n", entry.status().ToString().c_str());
      return 1;
    }
    std::printf("%-26s %-10.4f %-10.4f %-+12.4f\n", entry->description.c_str(),
                entry->leakage_before, entry->leakage_after,
                entry->incremental);
  }

  // What if Alice also posted her SSN-bearing tax form?
  Record tax_form{{"N", "alice"}, {"S", "000-00-0000"}};
  auto what_if = ledger.WhatIf(tax_form);
  if (!what_if.ok()) return 1;
  std::printf("\nwhat-if 'tax form': leakage would jump %.4f -> %.4f "
              "(+%.4f) — don't.\n",
              what_if->before, what_if->after, what_if->incremental);

  // The adversary's view: a dipping query focused on Alice (§2.4).
  Record query{{"N", "alice"}};
  auto dossier = DippingResult(ledger.released(), resolver, query);
  if (!dossier.ok()) return 1;
  std::printf("\nadversary dipping query D(R, E, {<N, alice>}) yields:\n  %s\n",
              dossier->ToString().c_str());

  // Different sensitivity profiles: completeness-heavy adversaries (beta=2)
  // vs correctness-heavy (beta=0.5).
  FBetaLeakage recall_heavy(2.0);
  FBetaLeakage precision_heavy(0.5);
  auto resolved = adversary.Apply(ledger.released());
  if (!resolved.ok()) return 1;
  std::printf("\ncurrent leakage under F1:    %.4f\n",
              ledger.CurrentLeakage().value_or(-1));
  std::printf("completeness-heavy (b=2.0): %.4f\n",
              recall_heavy.SetLeakage(*resolved, alice, weights)
                  .value_or(-1));
  std::printf("correctness-heavy (b=0.5):  %.4f\n",
              precision_heavy.SetLeakage(*resolved, alice, weights)
                  .value_or(-1));
  return 0;
}
