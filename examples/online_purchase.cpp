// §4.1 scenario: Alice buys a cellphone app and must decide which credit
// card leaks less of her privacy, assuming the store's records may fall
// into the hands of an adversary running entity resolution.
//
// Demonstrates: IncrementalLeakage, the release advisor, and how a small
// record (the purchase) can bridge previously unlinkable records.

#include <cstdio>

#include "apps/release_advisor.h"
#include "er/swoosh.h"

using namespace infoleak;

int main() {
  // Alice's complete information: name, two credit cards, phone, address.
  Record p{{"N", "n1"}, {"C", "c1"}, {"C", "c2"}, {"P", "p1"}, {"A", "a1"}};

  // What the store already knows from previous purchases.
  Database store;
  store.Add(Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}});  // s
  store.Add(Record{{"N", "n1"}, {"C", "c2"}});               // t

  // The adversary model: records referring to the same person share
  // (name AND card) or (name AND phone); merging unions attributes.
  RuleMatch match(MatchRules{{"N", "C"}, {"N", "P"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator adversary(resolver);

  WeightModel weights;  // every attribute equally sensitive
  ExactLeakage engine;

  std::printf("Alice's reference record: %s\n", p.ToString().c_str());
  std::printf("Store already holds:\n%s\n", store.ToString().c_str());

  auto baseline = InformationLeakage(store, p, adversary, weights, engine);
  if (!baseline.ok()) {
    std::fprintf(stderr, "%s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("Baseline leakage L(R, p, E) = %.4f (paper: 3/4)\n\n",
              *baseline);

  // The app purchase submits name + card + phone; which card?
  std::vector<ReleaseOption> options{
      {"pay with card c1", Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}}},
      {"pay with card c2", Record{{"N", "n1"}, {"C", "c2"}, {"P", "p1"}}},
  };
  auto assessed = AssessReleases(store, p, adversary, options, weights,
                                 engine);
  if (!assessed.ok()) {
    std::fprintf(stderr, "%s\n", assessed.status().ToString().c_str());
    return 1;
  }
  std::printf("%-18s %-12s %-12s %-12s\n", "option", "before", "after",
              "incremental");
  for (const auto& a : *assessed) {
    std::printf("%-18s %-12.4f %-12.4f %-12.4f\n", a.name.c_str(),
                a.leakage_before, a.leakage_after, a.incremental);
  }
  std::printf(
      "\nPaying with c1 re-states what record s already says (incremental "
      "0);\npaying with c2 bridges s and t into one composite (8/9, "
      "incremental 5/36).\nAlice should use c1. (paper §4.1)\n");
  return 0;
}
