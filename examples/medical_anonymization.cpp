// §3 scenario: a hospital publishes a k-anonymized patient table; how much
// do individual patients actually leak? Demonstrates the anonymization
// substrate (hierarchies, k-anonymity, l-diversity), the bridge from typed
// tables to leakage records, and generalization-aware entity resolution
// with background information.

#include <cstdio>

#include "anon/bridge.h"
#include "anon/generalized_er.h"
#include "anon/kanonymity.h"
#include "anon/ldiversity.h"
#include "core/leakage.h"
#include "er/transitive.h"

using namespace infoleak;

namespace {

double PatientLeakage(const Database& published, const Record& reference) {
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(published, nullptr);
  if (!resolved.ok()) return -1.0;
  WeightModel unit;
  ExactLeakage engine;
  double best = 0.0;
  for (const auto& r : *resolved) {
    Record aligned = AlignGeneralizedToReference(r, reference);
    best = std::max(
        best, engine.RecordLeakage(aligned, reference, unit).value_or(0.0));
  }
  return best;
}

}  // namespace

int main() {
  // The hospital's private table (paper Table 1).
  auto table1 = Table::Create({"Name", "Zip", "Age", "Disease"});
  table1->AddRow({"Alice", "111", "30", "Heart"});
  table1->AddRow({"Bob", "112", "31", "Breast"});
  table1->AddRow({"Carol", "115", "33", "Cancer"});
  table1->AddRow({"Dave", "222", "50", "Hair"});
  table1->AddRow({"Pat", "299", "70", "Flu"});
  table1->AddRow({"Zoe", "241", "60", "Flu"});
  std::printf("Private table:\n%s\n", table1->ToCsv().c_str());

  // Anonymize: drop names, then find a minimal full-domain generalization
  // achieving 3-anonymity over {Zip, Age}.
  auto no_names = table1->DropColumns({"Name"});
  SuffixSuppressionHierarchy zip_hierarchy(3);
  IntervalHierarchy age_hierarchy({10, 50});
  std::vector<QuasiIdentifier> qis{{"Zip", &zip_hierarchy},
                                   {"Age", &age_hierarchy}};
  auto anonymized = MinimalFullDomainGeneralization(*no_names, qis, 3);
  if (!anonymized.ok()) {
    std::fprintf(stderr, "anonymization failed: %s\n",
                 anonymized.status().ToString().c_str());
    return 1;
  }
  std::printf("Published 3-anonymous table (zip level %d, age level %d):\n%s\n",
              anonymized->levels[0], anonymized->levels[1],
              anonymized->table.ToCsv().c_str());
  std::printf("distinct l-diversity: every class has >= %zu diseases\n\n",
              MinDistinctSensitive(anonymized->table, {"Zip", "Age"},
                                   "Disease")
                  .value());

  // How much does each patient leak from the published table?
  auto published = TableToDatabase(anonymized->table);
  struct Patient {
    const char* name;
    Record reference;
  };
  std::vector<Patient> patients{
      {"Alice", Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"},
                       {"Disease", "Heart"}}},
      {"Zoe", Record{{"Name", "Zoe"}, {"Zip", "241"}, {"Age", "60"},
                     {"Disease", "Flu"}}},
      {"Dave", Record{{"Name", "Dave"}, {"Zip", "222"}, {"Age", "50"},
                      {"Disease", "Hair"}}},
  };
  std::printf("%-8s %s\n", "patient", "leakage from published table");
  for (const auto& patient : patients) {
    std::printf("%-8s %.4f\n", patient.name,
                PatientLeakage(*published, patient.reference));
  }

  // An adversary with background knowledge (paper Table 3) does better.
  Database with_background = *published;
  with_background.Add(
      Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"}});
  std::printf(
      "\nWith background info {Alice, 111, 30}, Alice's leakage rises to "
      "%.4f\n(k-anonymity still calls the table 'safe'.)\n",
      PatientLeakage(with_background, patients[0].reference));
  return 0;
}
