#include "anon/hierarchy.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(SuffixSuppressionTest, SuppressesFromTheRight) {
  SuffixSuppressionHierarchy h(3);
  EXPECT_EQ(h.Generalize("111", 0), "111");
  EXPECT_EQ(h.Generalize("111", 1), "11*");
  EXPECT_EQ(h.Generalize("111", 2), "1**");
  EXPECT_EQ(h.Generalize("111", 3), "***");
}

TEST(SuffixSuppressionTest, ClampsLevels) {
  SuffixSuppressionHierarchy h(2);
  EXPECT_EQ(h.Generalize("111", 5), "1**");
  EXPECT_EQ(h.Generalize("111", -1), "111");
}

TEST(SuffixSuppressionTest, ShortValuesFullySuppressed) {
  SuffixSuppressionHierarchy h(3);
  EXPECT_EQ(h.Generalize("ab", 3), "**");
  EXPECT_EQ(h.Generalize("", 2), "");
}

TEST(IntervalHierarchyTest, BucketsByWidth) {
  IntervalHierarchy h({10, 25});
  EXPECT_EQ(h.Generalize("30", 0), "30");
  EXPECT_EQ(h.Generalize("30", 1), "[30-40)");
  EXPECT_EQ(h.Generalize("39", 1), "[30-40)");
  EXPECT_EQ(h.Generalize("30", 2), "[25-50)");
}

TEST(IntervalHierarchyTest, ClampRendersThresholdBucket) {
  IntervalHierarchy h({10}, /*clamp_at=*/50);
  EXPECT_EQ(h.Generalize("50", 1), ">=50");
  EXPECT_EQ(h.Generalize("70", 1), ">=50");
  EXPECT_EQ(h.Generalize("49", 1), "[40-50)");
  EXPECT_EQ(h.Generalize("70", 0), "70");
}

TEST(IntervalHierarchyTest, NonNumericPassesThrough) {
  IntervalHierarchy h({10});
  EXPECT_EQ(h.Generalize("abc", 1), "abc");
  EXPECT_EQ(h.Generalize("3x", 1), "3x");
}

TEST(IntervalHierarchyTest, NegativeValuesFloorCorrectly) {
  IntervalHierarchy h({10});
  EXPECT_EQ(h.Generalize("-5", 1), "[-10-0)");
  EXPECT_EQ(h.Generalize("-10", 1), "[-10-0)");
  EXPECT_EQ(h.Generalize("-11", 1), "[-20--10)");
}

TEST(MappingHierarchyTest, ExplicitMappings) {
  MappingHierarchy h(2);
  h.AddMapping(1, "30", "3*");
  h.AddMapping(2, "30", "**");
  EXPECT_EQ(h.Generalize("30", 0), "30");
  EXPECT_EQ(h.Generalize("30", 1), "3*");
  EXPECT_EQ(h.Generalize("30", 2), "**");
  EXPECT_EQ(h.Generalize("77", 1), "77");  // unmapped passes through
}

TEST(GeneralizedCoversTest, ExactEquality) {
  EXPECT_TRUE(GeneralizedCovers("111", "111"));
  EXPECT_FALSE(GeneralizedCovers("111", "112"));
}

TEST(GeneralizedCoversTest, WildcardPatterns) {
  EXPECT_TRUE(GeneralizedCovers("11*", "111"));
  EXPECT_TRUE(GeneralizedCovers("1**", "199"));
  EXPECT_TRUE(GeneralizedCovers("3*", "30"));
  EXPECT_FALSE(GeneralizedCovers("11*", "121"));
  EXPECT_FALSE(GeneralizedCovers("11*", "1111"));
}

TEST(GeneralizedCoversTest, ThresholdBuckets) {
  EXPECT_TRUE(GeneralizedCovers(">=50", "50"));
  EXPECT_TRUE(GeneralizedCovers(">=50", "60"));
  EXPECT_FALSE(GeneralizedCovers(">=50", "49"));
  EXPECT_FALSE(GeneralizedCovers(">=50", "abc"));
  // UTF-8 "≥" variant (as printed in the paper).
  EXPECT_TRUE(GeneralizedCovers("\xE2\x89\xA5"
                                "50",
                                "60"));
}

TEST(GeneralizedCoversTest, IntervalBuckets) {
  EXPECT_TRUE(GeneralizedCovers("[30-40)", "30"));
  EXPECT_TRUE(GeneralizedCovers("[30-40)", "39"));
  EXPECT_FALSE(GeneralizedCovers("[30-40)", "40"));
  EXPECT_FALSE(GeneralizedCovers("[30-40)", "29"));
  EXPECT_TRUE(GeneralizedCovers("[-10-0)", "-5"));
}

TEST(GeneralizedCoversTest, GeneralizationsAlwaysCoverTheirSource) {
  // Property: for every hierarchy and level, Generalize(v, l) covers v.
  SuffixSuppressionHierarchy suffix(3);
  IntervalHierarchy interval({10, 25}, 50);
  for (const char* v : {"111", "112", "241", "30", "49", "50", "70"}) {
    for (int level = 0; level <= 3; ++level) {
      EXPECT_TRUE(GeneralizedCovers(suffix.Generalize(v, level), v))
          << v << " level " << level;
    }
    for (int level = 0; level <= 2; ++level) {
      EXPECT_TRUE(GeneralizedCovers(interval.Generalize(v, level), v))
          << v << " level " << level;
    }
  }
}

}  // namespace
}  // namespace infoleak
