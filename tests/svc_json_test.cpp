#include "svc/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

namespace infoleak::svc {
namespace {

TEST(JsonParseTest, Scalars) {
  EXPECT_TRUE(ParseJson("null")->is_null());
  EXPECT_TRUE(ParseJson("true")->as_bool());
  EXPECT_FALSE(ParseJson("false")->as_bool());
  EXPECT_DOUBLE_EQ(ParseJson("-12.5e2")->as_number(), -1250.0);
  EXPECT_EQ(ParseJson("\"hi\"")->as_string(), "hi");
}

TEST(JsonParseTest, NestedObjectAndArray) {
  auto v = ParseJson(R"({"a": [1, 2, {"b": "x"}], "c": null})");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const JsonValue* a = v->Find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->items().size(), 3u);
  EXPECT_DOUBLE_EQ(a->items()[0].as_number(), 1.0);
  EXPECT_EQ(a->items()[2].Find("b")->as_string(), "x");
  EXPECT_TRUE(v->Find("c")->is_null());
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonParseTest, StringEscapes) {
  auto v = ParseJson(R"("a\"b\\c\ndA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "a\"b\\c\ndA");
}

TEST(JsonParseTest, UnicodeEscapeBecomesUtf8) {
  auto v = ParseJson("\"\\u00e9\\u4e2d\"");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->as_string(), "\xc3\xa9\xe4\xb8\xad");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\" 1}").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("1 2").ok());  // trailing garbage
  EXPECT_FALSE(ParseJson("{} x").ok());
}

TEST(JsonParseTest, RejectsExcessiveNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  auto v = ParseJson(deep);
  ASSERT_FALSE(v.ok());
  EXPECT_TRUE(v.status().IsInvalidArgument()) << v.status().ToString();
}

TEST(JsonParseTest, ErrorsCarryByteOffsets) {
  auto v = ParseJson("{\"a\": !}");
  ASSERT_FALSE(v.ok());
  EXPECT_NE(v.status().message().find("byte 6"), std::string::npos)
      << v.status().ToString();
}

TEST(JsonRenderTest, RoundTripsStructure) {
  const std::string text =
      R"({"s":"hi","n":2.5,"b":true,"z":null,"a":[1,"x"],"o":{"k":3}})";
  auto v = ParseJson(text);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Render(), text);
}

TEST(JsonRenderTest, IntegersRenderWithoutExponent) {
  JsonValue v = JsonValue::Object();
  v.Set("id", JsonValue::Number(123456789.0));
  EXPECT_EQ(v.Render(), "{\"id\":123456789}");
}

TEST(JsonRenderTest, DoublesRoundTripBitExactly) {
  const double value = 0.6666666666666666;  // 2/3: needs all 17 digits
  JsonValue v = JsonValue::Number(value);
  auto back = ParseJson(v.Render());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_number(), value);
}

TEST(JsonRenderTest, NonFiniteNumbersRenderAsNullAndRoundTrip) {
  // %.17g would print "nan"/"inf" — tokens the parser rejects, so a served
  // non-finite value used to produce an unparseable response line. The
  // convention is `null`: every rendered line stays valid JSON.
  for (double v : {std::nan(""), std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    JsonValue num = JsonValue::Number(v);
    EXPECT_EQ(num.Render(), "null");
    auto back = ParseJson(num.Render());
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_TRUE(back->is_null());
  }
  JsonValue obj = JsonValue::Object();
  obj.Set("leakage", JsonValue::Number(std::nan("")));
  auto back = ParseJson(obj.Render());
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_TRUE(back->Find("leakage")->is_null());
}

TEST(JsonRenderTest, EscapesControlCharactersAndQuotes) {
  JsonValue v = JsonValue::Str("a\"b\\c\nd\x01");
  auto back = ParseJson(v.Render());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->as_string(), "a\"b\\c\nd\x01");
}

TEST(JsonValueTest, AccessorsFallBackOnWrongType) {
  auto v = ParseJson(R"({"s": "x", "n": 4})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetString("s", "d"), "x");
  EXPECT_EQ(v->GetString("n", "d"), "d");
  EXPECT_DOUBLE_EQ(v->GetNumber("n", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(v->GetNumber("s", -1.0), -1.0);
  EXPECT_TRUE(v->GetBool("missing", true));
}

}  // namespace
}  // namespace infoleak::svc
