#include "core/measures.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

// §2.1/§2.2 worked example: p = {<N,Alice>, <A,20>, <P,123>, <Z,94305>},
// r = {<N,Alice>, <A,20>, <P,111>}, wN = 2, others 1.
class PaperSection2Example : public ::testing::Test {
 protected:
  void SetUp() override {
    p_ = Record{{"N", "Alice"}, {"A", "20"}, {"P", "123"}, {"Z", "94305"}};
    r_ = Record{{"N", "Alice"}, {"A", "20"}, {"P", "111"}};
    ASSERT_TRUE(wm_.SetWeight("N", 2.0).ok());
  }

  Record p_;
  Record r_;
  WeightModel wm_;
};

TEST_F(PaperSection2Example, PrecisionIsThreeQuarters) {
  EXPECT_NEAR(Precision(r_, p_, wm_), 3.0 / 4.0, kTol);
}

TEST_F(PaperSection2Example, RecallIsThreeFifths) {
  EXPECT_NEAR(Recall(r_, p_, wm_), 3.0 / 5.0, kTol);
}

TEST_F(PaperSection2Example, F1IsTwoThirds) {
  double pr = Precision(r_, p_, wm_);
  double re = Recall(r_, p_, wm_);
  EXPECT_NEAR(F1(pr, re), 2.0 / 3.0, kTol);
  EXPECT_NEAR(RecordLeakageNoConfidence(r_, p_, wm_), 2.0 / 3.0, kTol);
}

TEST(MeasuresTest, EmptyRecordHasZeroPrecision) {
  WeightModel wm;
  Record p{{"A", "1"}};
  EXPECT_EQ(Precision(Record{}, p, wm), 0.0);
  EXPECT_EQ(Recall(Record{}, p, wm), 0.0);
  EXPECT_EQ(RecordLeakageNoConfidence(Record{}, p, wm), 0.0);
}

TEST(MeasuresTest, EmptyReferenceHasZeroRecall) {
  WeightModel wm;
  Record r{{"A", "1"}};
  EXPECT_EQ(Recall(r, Record{}, wm), 0.0);
  EXPECT_EQ(RecordLeakageNoConfidence(r, Record{}, wm), 0.0);
}

TEST(MeasuresTest, IdenticalRecordsLeakEverything) {
  WeightModel wm;
  Record r{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  EXPECT_NEAR(Precision(r, r, wm), 1.0, kTol);
  EXPECT_NEAR(Recall(r, r, wm), 1.0, kTol);
  EXPECT_NEAR(RecordLeakageNoConfidence(r, r, wm), 1.0, kTol);
}

TEST(MeasuresTest, FBetaWeighsRecall) {
  // With beta -> 0 F tends to precision; with beta large it tends to recall.
  double pr = 0.9;
  double re = 0.3;
  EXPECT_NEAR(FBeta(pr, re, 1.0), 2 * pr * re / (pr + re), kTol);
  EXPECT_LT(FBeta(pr, re, 2.0), FBeta(pr, re, 1.0));  // recall-heavy, re < pr
  EXPECT_GT(FBeta(pr, re, 0.5), FBeta(pr, re, 1.0));  // precision-heavy
}

TEST(MeasuresTest, FBetaZeroInputs) {
  EXPECT_EQ(FBeta(0.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(FBeta(1.0, 0.0, 1.0), 0.0);
  EXPECT_EQ(FBeta(0.0, 1.0, 1.0), 0.0);
}

TEST(MeasuresTest, ValueMismatchDoesNotCount) {
  WeightModel wm;
  Record p{{"A", "x"}};
  Record r{{"A", "y"}};
  EXPECT_EQ(Precision(r, p, wm), 0.0);
  EXPECT_EQ(Recall(r, p, wm), 0.0);
}

TEST(MeasuresTest, WeightsScaleInvariant) {
  // Scaling all weights by a constant leaves every measure unchanged.
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  Record r{{"A", "1"}, {"B", "9"}};
  WeightModel w1;
  ASSERT_TRUE(w1.SetWeight("A", 1.0).ok());
  ASSERT_TRUE(w1.SetWeight("B", 2.0).ok());
  ASSERT_TRUE(w1.SetWeight("C", 3.0).ok());
  WeightModel w2;
  ASSERT_TRUE(w2.SetWeight("A", 2.0).ok());
  ASSERT_TRUE(w2.SetWeight("B", 4.0).ok());
  ASSERT_TRUE(w2.SetWeight("C", 6.0).ok());
  // Default weight differs (1 vs 1), but no other labels occur.
  EXPECT_NEAR(Precision(r, p, w1), Precision(r, p, w2), kTol);
  EXPECT_NEAR(Recall(r, p, w1), Recall(r, p, w2), kTol);
  EXPECT_NEAR(RecordLeakageNoConfidence(r, p, w1),
              RecordLeakageNoConfidence(r, p, w2), kTol);
}

}  // namespace
}  // namespace infoleak
