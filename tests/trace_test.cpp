// Tests for the trace ring buffer (src/obs/trace.h): recording order,
// lossy overwrite with a dropped-span counter, the runtime gate, and the
// summary text. TraceSpan itself is exercised only when the tracing macro
// is compiled in (INFOLEAK_TRACING=ON, the default).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace infoleak {
namespace {

TEST(TraceRecorderTest, RecordsInOrder) {
  obs::TraceRecorder rec(/*capacity=*/8);
  rec.Record("a", 10, 1);
  rec.Record("b", 20, 2);
  rec.Record("c", 30, 3);
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "a");
  EXPECT_EQ(events[1].name, "b");
  EXPECT_EQ(events[2].name, "c");
  EXPECT_EQ(events[2].start_ns, 30u);
  EXPECT_EQ(events[2].duration_ns, 3u);
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDrops) {
  obs::TraceRecorder rec(/*capacity=*/3);
  rec.Record("a", 1, 0);
  rec.Record("b", 2, 0);
  rec.Record("c", 3, 0);
  rec.Record("d", 4, 0);
  rec.Record("e", 5, 0);
  auto events = rec.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].name, "c");
  EXPECT_EQ(events[1].name, "d");
  EXPECT_EQ(events[2].name, "e");
  EXPECT_EQ(rec.dropped(), 2u);
}

TEST(TraceRecorderTest, ClearEmptiesBufferAndDropCounter) {
  obs::TraceRecorder rec(/*capacity=*/2);
  rec.Record("a", 1, 0);
  rec.Record("b", 2, 0);
  rec.Record("c", 3, 0);
  EXPECT_EQ(rec.dropped(), 1u);
  rec.Clear();
  EXPECT_TRUE(rec.Snapshot().empty());
  EXPECT_EQ(rec.dropped(), 0u);
}

TEST(TraceRecorderTest, DisabledGateIsVisible) {
  obs::TraceRecorder rec;
  EXPECT_TRUE(rec.enabled());
  rec.set_enabled(false);
  EXPECT_FALSE(rec.enabled());
  rec.set_enabled(true);
  EXPECT_TRUE(rec.enabled());
}

TEST(TraceRecorderTest, SummaryAggregatesByName) {
  obs::TraceRecorder rec(/*capacity=*/8);
  rec.Record("leakage/set", 0, 2000000);  // 2 ms
  rec.Record("leakage/set", 0, 1000000);  // 1 ms
  rec.Record("er/swoosh", 0, 500000);     // 0.5 ms
  std::string summary = rec.SummaryText();
  EXPECT_NE(summary.find("leakage/set"), std::string::npos);
  EXPECT_NE(summary.find("count=2"), std::string::npos);
  EXPECT_NE(summary.find("er/swoosh"), std::string::npos);
  EXPECT_EQ(summary.find("dropped"), std::string::npos);
}

TEST(TraceRecorderTest, SummaryReportsDrops) {
  obs::TraceRecorder rec(/*capacity=*/1);
  rec.Record("a", 0, 1);
  rec.Record("a", 0, 1);
  EXPECT_NE(rec.SummaryText().find("dropped"), std::string::npos);
}

// Drop accounting must stay exact under contention: 8 threads hammering a
// small ring must end with retained + dropped == recorded spans, and every
// retained span intact (name and start/duration belong together). Runs
// under the CI TSan pass.
TEST(TraceRecorderTest, DropAccountingExactUnder8Threads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 4000;
  constexpr std::size_t kCapacity = 64;
  obs::TraceRecorder rec(kCapacity);
  // Span names need static lifetime; one literal per thread lets readers
  // check a retained event's fields stayed together.
  static constexpr std::string_view kNames[kThreads] = {
      "t/0", "t/1", "t/2", "t/3", "t/4", "t/5", "t/6", "t/7"};
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&rec, &start, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        // start_ns encodes the writer, duration_ns the sequence number.
        rec.Record(kNames[t], static_cast<uint64_t>(t),
                   static_cast<uint64_t>(i));
      }
    });
  }
  for (auto& th : threads) th.join();

  const auto events = rec.Snapshot();
  EXPECT_EQ(events.size(), kCapacity);
  EXPECT_EQ(events.size() + rec.dropped(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  for (const auto& event : events) {
    ASSERT_LT(event.start_ns, static_cast<uint64_t>(kThreads));
    EXPECT_EQ(event.name, kNames[event.start_ns]);
    EXPECT_LT(event.duration_ns, static_cast<uint64_t>(kPerThread));
  }
}

TEST(TraceNowNanosTest, IsMonotonic) {
  uint64_t a = obs::TraceNowNanos();
  uint64_t b = obs::TraceNowNanos();
  EXPECT_LE(a, b);
}

#if INFOLEAK_TRACING_ENABLED

TEST(TraceSpanTest, SpanRecordsIntoGlobalRecorder) {
  auto& global = obs::TraceRecorder::Global();
  global.Clear();
  global.set_enabled(true);
  {
    obs::TraceSpan span("test/span");
  }
  auto events = global.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "test/span");
  global.Clear();
}

TEST(TraceSpanTest, DisabledRecorderDropsSpansSilently) {
  auto& global = obs::TraceRecorder::Global();
  global.Clear();
  global.set_enabled(false);
  {
    obs::TraceSpan span("test/disabled");
  }
  EXPECT_TRUE(global.Snapshot().empty());
  EXPECT_EQ(global.dropped(), 0u);
  global.set_enabled(true);
}

#endif  // INFOLEAK_TRACING_ENABLED

}  // namespace
}  // namespace infoleak
