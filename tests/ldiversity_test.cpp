#include "anon/ldiversity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoleak {
namespace {

/// The paper's Table 2 (3-anonymous patient table, names dropped).
Table PaperTable2() {
  auto t = Table::Create({"Zip", "Age", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Heart"}).ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Breast"}).ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Cancer"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Hair"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Flu"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Flu"}).ok());
  return std::move(t).value();
}

TEST(LDiversityTest, Table2HasMinTwoDistinctDiseases) {
  // §3.2: "the first equivalence class contains 3 distinct diseases while
  // the second equivalence class has 2".
  Table t = PaperTable2();
  auto min_distinct = MinDistinctSensitive(t, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(min_distinct.ok());
  EXPECT_EQ(*min_distinct, 2u);
  EXPECT_TRUE(IsDistinctLDiverse(t, {"Zip", "Age"}, "Disease", 2).value());
  EXPECT_FALSE(IsDistinctLDiverse(t, {"Zip", "Age"}, "Disease", 3).value());
}

TEST(LDiversityTest, RenamingFluToInfluenzaAchievesThreeDiversity) {
  // §3.2: changing Zoe's Flu to Influenza makes the table 3-diverse.
  Table t = PaperTable2();
  ASSERT_TRUE(t.SetCell(5, "Disease", "Influenza").ok());
  EXPECT_TRUE(IsDistinctLDiverse(t, {"Zip", "Age"}, "Disease", 3).value());
}

TEST(LDiversityTest, EntropyDiversity) {
  Table t = PaperTable2();
  // Second class has distribution {Hair: 1/3, Flu: 2/3}:
  // H = -(1/3)ln(1/3) - (2/3)ln(2/3) ≈ 0.6365.
  auto h = MinEntropySensitive(t, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(h.ok());
  double expected =
      -(1.0 / 3.0) * std::log(1.0 / 3.0) - (2.0 / 3.0) * std::log(2.0 / 3.0);
  EXPECT_NEAR(*h, expected, 1e-12);
  // Entropy l-diversity: exp(0.6365) ≈ 1.89, so 1.8-diverse but not 2.
  EXPECT_TRUE(IsEntropyLDiverse(t, {"Zip", "Age"}, "Disease", 1.8).value());
  EXPECT_FALSE(IsEntropyLDiverse(t, {"Zip", "Age"}, "Disease", 2.0).value());
}

TEST(LDiversityTest, UniformClassMaximizesEntropy) {
  Table t = PaperTable2();
  ASSERT_TRUE(t.SetCell(5, "Disease", "Influenza").ok());
  // Both classes now have 3 distinct values, uniformly: H = ln(3).
  auto h = MinEntropySensitive(t, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(h.ok());
  EXPECT_NEAR(*h, std::log(3.0), 1e-12);
  EXPECT_TRUE(IsEntropyLDiverse(t, {"Zip", "Age"}, "Disease", 3.0).value());
}

TEST(LDiversityTest, EmptyTable) {
  auto t = Table::Create({"Q", "S"});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(MinDistinctSensitive(*t, {"Q"}, "S").value(), 0u);
  EXPECT_EQ(MinEntropySensitive(*t, {"Q"}, "S").value(), 0.0);
}

TEST(LDiversityTest, TrivialLIsAlwaysSatisfied) {
  Table t = PaperTable2();
  EXPECT_TRUE(IsDistinctLDiverse(t, {"Zip", "Age"}, "Disease", 1).value());
  EXPECT_TRUE(IsEntropyLDiverse(t, {"Zip", "Age"}, "Disease", 1.0).value());
}

TEST(LDiversityTest, UnknownColumnsFail) {
  Table t = PaperTable2();
  EXPECT_FALSE(MinDistinctSensitive(t, {"Ghost"}, "Disease").ok());
  EXPECT_FALSE(MinDistinctSensitive(t, {"Zip"}, "Ghost").ok());
}

}  // namespace
}  // namespace infoleak
