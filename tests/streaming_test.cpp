#include "apps/streaming.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "er/transitive.h"
#include "gen/population.h"
#include "ops/operator.h"
#include "util/rng.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

TEST(StreamingTest, ReproducesSection24Trajectory) {
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  ExactLeakage engine;
  StreamingLeakage monitor(p, {"N"}, WeightModel{}, engine);

  // r: 2/3 on its own.
  auto l1 = monitor.Add(Record{{"N", "Alice"}, {"P", "123"}});
  ASSERT_TRUE(l1.ok());
  EXPECT_NEAR(*l1, 2.0 / 3.0, kTol);
  // s merges with r: the §2.4 jump to 6/7.
  auto l2 = monitor.Add(Record{{"N", "Alice"}, {"C", "999"}});
  ASSERT_TRUE(l2.ok());
  EXPECT_NEAR(*l2, 6.0 / 7.0, kTol);
  // t (Bob) doesn't change anything.
  auto l3 = monitor.Add(Record{{"N", "Bob"}, {"P", "987"}});
  ASSERT_TRUE(l3.ok());
  EXPECT_NEAR(*l3, 6.0 / 7.0, kTol);
  EXPECT_EQ(monitor.num_entities(), 2u);
  EXPECT_EQ(monitor.num_records(), 3u);
}

TEST(StreamingTest, CompositeOfTracksMerges) {
  Record p{{"N", "Alice"}};
  ExactLeakage engine;
  StreamingLeakage monitor(p, {"N"}, WeightModel{}, engine);
  ASSERT_TRUE(monitor.Add(Record{{"N", "Alice"}, {"P", "1"}}).ok());
  ASSERT_TRUE(monitor.Add(Record{{"N", "Alice"}, {"C", "2"}}).ok());
  auto composite = monitor.CompositeOf(0);
  ASSERT_TRUE(composite.ok());
  EXPECT_EQ(composite->size(), 3u);
  auto same = monitor.CompositeOf(1);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(*composite, *same);
  EXPECT_TRUE(monitor.CompositeOf(7).status().IsOutOfRange());
}

TEST(StreamingTest, LinkerRecordBridgesComponents) {
  // Two unrelated fragments until a linker arrives carrying both keys.
  Record p{{"A", "a"}, {"B", "b"}, {"C", "c"}, {"D", "d"}};
  ExactLeakage engine;
  StreamingLeakage monitor(p, {}, WeightModel{}, engine);
  ASSERT_TRUE(monitor.Add(Record{{"A", "a"}, {"B", "b"}}).ok());
  ASSERT_TRUE(monitor.Add(Record{{"C", "c"}, {"D", "d"}}).ok());
  EXPECT_EQ(monitor.num_entities(), 2u);
  double before = monitor.current_leakage();
  auto after = monitor.Add(Record{{"A", "a"}, {"C", "c"}});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(monitor.num_entities(), 1u);
  EXPECT_GT(*after, before);
  EXPECT_NEAR(*after, 1.0, kTol);  // all 4 reference attrs, nothing else
}

TEST(StreamingTest, DisinformationLowersCurrentLeakage) {
  Record p{{"N", "n"}, {"A", "a"}};
  ExactLeakage engine;
  StreamingLeakage monitor(p, {"N"}, WeightModel{}, engine);
  ASSERT_TRUE(monitor.Add(Record{{"N", "n"}, {"A", "a"}}).ok());
  EXPECT_NEAR(monitor.current_leakage(), 1.0, kTol);
  ASSERT_TRUE(
      monitor.Add(Record{{"N", "n"}, {"X", "fake1"}, {"Y", "fake2"}}).ok());
  EXPECT_LT(monitor.current_leakage(), 1.0);
}

class StreamingEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(StreamingEquivalence, MatchesBatchPipelineOnRandomStreams) {
  // Oracle: after every insertion, the monitor's leakage must equal the
  // batch InformationLeakage under transitive shared-value ER.
  Rng rng(GetParam() * 7907);
  Record p;
  for (int i = 0; i < 6; ++i) {
    p.Insert(Attribute(StrCat("L", std::to_string(i)), StrCat("v", std::to_string(i))));
  }
  WeightModel unit;
  ExactLeakage engine;
  StreamingLeakage monitor(p, {}, unit, engine);

  auto match = RuleMatch::SharedValue(
      {"L0", "L1", "L2", "L3", "L4", "L5", "B"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  ErOperator batch_op(resolver);

  Database so_far;
  for (int step = 0; step < 12; ++step) {
    Record r;
    for (int i = 0; i < 6; ++i) {
      if (rng.Bernoulli(0.4)) {
        std::string value = rng.Bernoulli(0.25)
                                ? StrCat("wrong", std::to_string(rng.NextBounded(3)))
                                : StrCat("v", std::to_string(i));
        r.Insert(Attribute(StrCat("L", std::to_string(i)), value,
                           0.2 + 0.8 * rng.NextDouble()));
      }
    }
    if (rng.Bernoulli(0.3)) {
      r.Insert(Attribute("B", StrCat("shared", std::to_string(rng.NextBounded(2))),
                         rng.NextDouble()));
    }
    so_far.Add(r);
    auto streaming = monitor.Add(r);
    ASSERT_TRUE(streaming.ok());
    auto batch = InformationLeakage(so_far, p, batch_op, unit, engine);
    ASSERT_TRUE(batch.ok());
    EXPECT_NEAR(*streaming, *batch, 1e-10) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StreamingEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace infoleak
