#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "core/leakage.h"
#include "core/record_io.h"
#include "store/inverted_index.h"
#include "store/record_store.h"

namespace infoleak {
namespace {

Record MakeRecord(int person, int variant) {
  Record r;
  r.Insert(Attribute("N", "person" + std::to_string(person), 1.0));
  r.Insert(Attribute("P", std::to_string(1000 + variant), 0.9));
  return r;
}

/// Spin-latch so writer and readers enter their loops together. Both sides
/// do a fixed amount of work (never wait on each other's progress): glibc's
/// shared_mutex prefers readers, so a reader loop conditioned on "writer
/// done" can starve the writer forever, and the reverse race can finish the
/// writer before readers start.
class StartGate {
 public:
  void ArriveAndWait() {
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    while (!open_.load(std::memory_order_acquire)) {
    }
  }
  void OpenWhen(int expected) {
    while (arrived_.load(std::memory_order_acquire) < expected) {
    }
    open_.store(true, std::memory_order_release);
  }

 private:
  std::atomic<int> arrived_{0};
  std::atomic<bool> open_{false};
};

// The satellite contract of this PR: RecordStore and InvertedIndex are safe
// for concurrent readers running against a single writer. These tests are
// most meaningful under ASan/TSan, but even plain runs exercise the locking
// and catch gross races via the invariant checks.

TEST(StoreConcurrencyTest, IndexReadersRaceOneWriterSafely) {
  InvertedIndex index;
  StartGate gate;

  std::thread writer([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < 2000; ++i) {
      index.Add(static_cast<RecordId>(i), MakeRecord(i % 50, i));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      gate.ArriveAndWait();
      for (int i = 0; i < 300; ++i) {
        const std::string value = "person" + std::to_string((t * 7 + i) % 50);
        // Postings copies under the shared lock — the returned vector must
        // always be internally consistent (ascending ids).
        std::vector<RecordId> postings = index.Postings("N", value);
        for (std::size_t k = 1; k < postings.size(); ++k) {
          ASSERT_LT(postings[k - 1], postings[k]);
        }
        std::vector<RecordId> candidates =
            index.Candidates(MakeRecord((t * 7 + i) % 50, i));
        for (std::size_t k = 1; k < candidates.size(); ++k) {
          ASSERT_LT(candidates[k - 1], candidates[k]);
        }
        (void)index.num_postings();
      }
    });
  }
  gate.OpenWhen(5);
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(index.Postings("N", "person0").size(), 40u);
}

TEST(StoreConcurrencyTest, StoreReadersRaceOneAppenderSafely) {
  RecordStore store;
  for (int i = 0; i < 100; ++i) {
    store.Append(MakeRecord(i % 10, i));
  }
  auto reference = ParseRecord("{<N, person3, 1>, <P, 1003, 1>}");
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  const PreparedReference prepared(*reference, *weights);
  AutoLeakage engine;
  StartGate gate;

  std::thread writer([&] {
    gate.ArriveAndWait();
    for (int i = 100; i < 600; ++i) {
      store.Append(MakeRecord(i % 10, i));
    }
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      gate.ArriveAndWait();
      for (int i = 0; i < 40; ++i) {
        std::ptrdiff_t argmax = -1;
        auto leakage = store.SetLeak(prepared, engine, &argmax);
        ASSERT_TRUE(leakage.ok()) << leakage.status().ToString();
        ASSERT_GE(*leakage, 0.0);
        ASSERT_GE(argmax, 0);  // reference matches records in every snapshot
        auto one = store.RecordLeak(3, prepared, engine);
        ASSERT_TRUE(one.ok());
        auto record = store.Get(3);
        ASSERT_TRUE(record.ok());
        ASSERT_FALSE(store.Lookup("N", "person3").empty());
        (void)store.size();
      }
    });
  }
  gate.OpenWhen(5);
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(store.size(), 600u);

  // Quiesced store answers identically to a cold scan over the same data.
  std::ptrdiff_t argmax = -1;
  auto final_leak = store.SetLeak(prepared, engine, &argmax);
  ASSERT_TRUE(final_leak.ok());
  std::ptrdiff_t offline_argmax = -1;
  auto offline = SetLeakageArgMax(store.database(), prepared, engine,
                                  &offline_argmax);
  ASSERT_TRUE(offline.ok());
  EXPECT_EQ(*final_leak, *offline);
  EXPECT_EQ(argmax, offline_argmax);
}

TEST(StoreConcurrencyTest, DossierRunsWhileAppending) {
  RecordStore store;
  for (int i = 0; i < 50; ++i) store.Append(MakeRecord(i % 5, i));
  auto query = ParseRecord("{<N, person2>}");
  ASSERT_TRUE(query.ok());
  StartGate gate;

  std::thread writer([&] {
    gate.ArriveAndWait();
    for (int i = 50; i < 300; ++i) store.Append(MakeRecord(i % 5, i));
  });
  std::thread reader([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < 100; ++i) {
      std::vector<RecordId> members;
      auto dossier = store.Dossier(*query, {}, &members);
      ASSERT_TRUE(dossier.ok());
      ASSERT_FALSE(members.empty());
    }
  });
  gate.OpenWhen(2);
  writer.join();
  reader.join();
  EXPECT_EQ(store.size(), 300u);
}

}  // namespace
}  // namespace infoleak
