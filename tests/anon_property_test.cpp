// Property tests of the anonymization substrate on randomized tables:
// the minimal full-domain search really is minimal, generalization is
// monotone in k, suppression never exceeds its budget, and the model
// checks (k-anonymity / l-diversity / t-closeness) relate as theory says.

#include <gtest/gtest.h>

#include <numeric>

#include "anon/kanonymity.h"
#include "anon/ldiversity.h"
#include "anon/suppression.h"
#include "anon/tcloseness.h"
#include "util/rng.h"

namespace infoleak {
namespace {

/// Random 3-column table: clustered Zip (3-digit, clustered prefixes),
/// Age in [20, 80), Disease from a 4-value vocabulary.
Table RandomTable(Rng* rng, std::size_t rows) {
  auto t = Table::Create({"Zip", "Age", "Disease"});
  const char* diseases[] = {"Flu", "Heart", "Cancer", "Asthma"};
  for (std::size_t i = 0; i < rows; ++i) {
    std::string zip = std::to_string(10 + rng->NextBounded(3)) +
                      std::to_string(rng->NextBounded(10));
    std::string age = std::to_string(20 + rng->NextBounded(60));
    t->AddRow({zip, age, diseases[rng->NextBounded(4)]});
  }
  return std::move(t).value();
}

class AnonProperties : public ::testing::TestWithParam<uint64_t> {
 protected:
  AnonProperties() : zip_(3), age_({10, 30, 100}) {}

  std::vector<QuasiIdentifier> Qis() {
    return {{"Zip", &zip_}, {"Age", &age_}};
  }

  SuffixSuppressionHierarchy zip_;
  IntervalHierarchy age_;
};

TEST_P(AnonProperties, MinimalGeneralizationIsKAnonymous) {
  Rng rng(GetParam() * 7919);
  Table t = RandomTable(&rng, 8 + rng.NextBounded(20));
  for (std::size_t k : {2u, 3u}) {
    auto result = MinimalFullDomainGeneralization(t, Qis(), k);
    if (!result.ok()) continue;  // may be unachievable for this table
    EXPECT_TRUE(IsKAnonymous(result->table, {"Zip", "Age"}, k).value());
  }
}

TEST_P(AnonProperties, MinimalGeneralizationHasMinimalLevelSum) {
  Rng rng(GetParam() * 104729);
  Table t = RandomTable(&rng, 8 + rng.NextBounded(12));
  auto result = MinimalFullDomainGeneralization(t, Qis(), 2);
  if (!result.ok()) return;
  int found_sum = std::accumulate(result->levels.begin(),
                                  result->levels.end(), 0);
  // Exhaustively confirm no vector with smaller sum works.
  for (int za = 0; za <= zip_.max_level(); ++za) {
    for (int ag = 0; ag <= age_.max_level(); ++ag) {
      if (za + ag >= found_sum) continue;
      auto generalized = GeneralizeTable(t, Qis(), {za, ag});
      ASSERT_TRUE(generalized.ok());
      EXPECT_FALSE(IsKAnonymous(*generalized, {"Zip", "Age"}, 2).value())
          << "levels {" << za << "," << ag << "} beat the 'minimal' "
          << found_sum;
    }
  }
}

TEST_P(AnonProperties, GeneralizationLevelsMonotoneInK) {
  // A higher k can never need a *smaller* total generalization.
  Rng rng(GetParam() * 31337);
  Table t = RandomTable(&rng, 12 + rng.NextBounded(12));
  int previous_sum = 0;
  for (std::size_t k : {1u, 2u, 3u, 4u}) {
    auto result = MinimalFullDomainGeneralization(t, Qis(), k);
    if (!result.ok()) break;
    int sum = std::accumulate(result->levels.begin(), result->levels.end(),
                              0);
    EXPECT_GE(sum, previous_sum) << "k=" << k;
    previous_sum = sum;
  }
}

TEST_P(AnonProperties, SuppressionRespectsBudgetAndAchievesK) {
  Rng rng(GetParam() * 65537);
  Table t = RandomTable(&rng, 10 + rng.NextBounded(15));
  for (std::size_t budget : {0u, 1u, 3u}) {
    auto result = MinimalGeneralizationWithSuppression(t, Qis(), 3, budget);
    if (!result.ok()) continue;
    EXPECT_LE(result->suppressed.size(), budget);
    EXPECT_EQ(result->table.num_rows() + result->suppressed.size(),
              t.num_rows());
    EXPECT_TRUE(IsKAnonymous(result->table, {"Zip", "Age"}, 3).value());
  }
}

TEST_P(AnonProperties, SuppressionBudgetNeverHurtsGeneralization) {
  // A bigger suppression budget can only lower (or keep) the level sum.
  Rng rng(GetParam() * 13);
  Table t = RandomTable(&rng, 10 + rng.NextBounded(15));
  int previous = 1 << 20;
  for (std::size_t budget : {0u, 2u, 5u}) {
    auto result = MinimalGeneralizationWithSuppression(t, Qis(), 3, budget);
    if (!result.ok()) continue;
    int sum = std::accumulate(result->levels.begin(), result->levels.end(),
                              0);
    EXPECT_LE(sum, previous);
    previous = sum;
  }
}

TEST_P(AnonProperties, DiversityBoundsDistinctValues) {
  // Distinct l-diversity can never exceed the class size or the sensitive
  // vocabulary; a k-anonymous table is at-least-1-diverse.
  Rng rng(GetParam() * 271);
  Table t = RandomTable(&rng, 12 + rng.NextBounded(12));
  auto result = MinimalFullDomainGeneralization(t, Qis(), 2);
  if (!result.ok()) return;
  auto distinct =
      MinDistinctSensitive(result->table, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(distinct.ok());
  EXPECT_GE(*distinct, 1u);
  EXPECT_LE(*distinct, 4u);  // vocabulary size
}

TEST_P(AnonProperties, TClosenessWithinBounds) {
  Rng rng(GetParam() * 997);
  Table t = RandomTable(&rng, 10 + rng.NextBounded(20));
  auto d = MaxSensitiveDistance(t, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, 0.0);
  EXPECT_LE(*d, 1.0);
  // Fully generalizing collapses everything into one class whose
  // distribution IS the global one: distance exactly 0.
  auto fully = GeneralizeTable(
      t, {{"Zip", &zip_}, {"Age", &age_}},
      {zip_.max_level(), age_.max_level()});
  ASSERT_TRUE(fully.ok());
  auto d_full = MaxSensitiveDistance(*fully, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(d_full.ok());
  EXPECT_NEAR(*d_full, 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnonProperties,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace infoleak
