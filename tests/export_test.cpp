// Golden-output tests for the metric exporters (src/obs/export.h). The
// snapshots are hand-built — not read from the global registry — so the
// expected text is exact and independent of what other tests registered.

#include <gtest/gtest.h>

#include <string>

#include "obs/export.h"
#include "obs/metrics.h"

namespace infoleak {
namespace {

obs::MetricsSnapshot MakeSnapshot() {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"infoleak_er_runs_total",
                           {{"resolver", "swoosh"}},
                           "Entity-resolution runs",
                           3});
  snap.counters.push_back({"infoleak_eval_path_total",
                           {{"path", "prepared"}},
                           "Record evaluations by API path",
                           120});
  snap.counters.push_back({"infoleak_eval_path_total",
                           {{"path", "string"}},
                           "Record evaluations by API path",
                           0});
  snap.gauges.push_back({"infoleak_prepared_path_hit_ratio",
                         {},
                         "Fraction of evaluations on the prepared path",
                         1.0});
  snap.histograms.push_back({"infoleak_set_leakage_seconds",
                             {{"mode", "serial"}},
                             "Wall time of one SetLeakage call",
                             {0.001, 0.1},
                             {2, 1, 1},
                             4,
                             0.5});
  return snap;
}

TEST(ExportTest, PrometheusGolden) {
  const std::string expected =
      "# HELP infoleak_er_runs_total Entity-resolution runs\n"
      "# TYPE infoleak_er_runs_total counter\n"
      "infoleak_er_runs_total{resolver=\"swoosh\"} 3\n"
      "# HELP infoleak_eval_path_total Record evaluations by API path\n"
      "# TYPE infoleak_eval_path_total counter\n"
      "infoleak_eval_path_total{path=\"prepared\"} 120\n"
      "infoleak_eval_path_total{path=\"string\"} 0\n"
      "# HELP infoleak_prepared_path_hit_ratio Fraction of evaluations on "
      "the prepared path\n"
      "# TYPE infoleak_prepared_path_hit_ratio gauge\n"
      "infoleak_prepared_path_hit_ratio 1\n"
      "# HELP infoleak_set_leakage_seconds Wall time of one SetLeakage "
      "call\n"
      "# TYPE infoleak_set_leakage_seconds histogram\n"
      "infoleak_set_leakage_seconds_bucket{mode=\"serial\",le=\"0.001\"} 2\n"
      "infoleak_set_leakage_seconds_bucket{mode=\"serial\",le=\"0.1\"} 3\n"
      "infoleak_set_leakage_seconds_bucket{mode=\"serial\",le=\"+Inf\"} 4\n"
      "infoleak_set_leakage_seconds_sum{mode=\"serial\"} 0.5\n"
      "infoleak_set_leakage_seconds_count{mode=\"serial\"} 4\n";
  EXPECT_EQ(obs::RenderPrometheus(MakeSnapshot()), expected);
}

TEST(ExportTest, PrometheusSkipZeroHidesZeroSeries) {
  const std::string rendered =
      obs::RenderPrometheus(MakeSnapshot(), {.skip_zero = true});
  EXPECT_EQ(rendered.find("path=\"string\""), std::string::npos);
  EXPECT_NE(rendered.find("path=\"prepared\""), std::string::npos);
}

TEST(ExportTest, PrometheusSkipHistogramsDropsHistogramSection) {
  const std::string rendered =
      obs::RenderPrometheus(MakeSnapshot(), {.skip_histograms = true});
  EXPECT_EQ(rendered.find("infoleak_set_leakage_seconds"), std::string::npos);
  EXPECT_NE(rendered.find("infoleak_er_runs_total"), std::string::npos);
}

TEST(ExportTest, JsonGolden) {
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"infoleak_er_runs_total\","
      "\"labels\":{\"resolver\":\"swoosh\"},\"value\":3},"
      "{\"name\":\"infoleak_eval_path_total\","
      "\"labels\":{\"path\":\"prepared\"},\"value\":120},"
      "{\"name\":\"infoleak_eval_path_total\","
      "\"labels\":{\"path\":\"string\"},\"value\":0}"
      "],\"gauges\":["
      "{\"name\":\"infoleak_prepared_path_hit_ratio\","
      "\"labels\":{},\"value\":1}"
      "],\"histograms\":["
      "{\"name\":\"infoleak_set_leakage_seconds\","
      "\"labels\":{\"mode\":\"serial\"},"
      "\"bounds\":[0.001,0.1],\"buckets\":[2,1,1],"
      "\"count\":4,\"sum\":0.5}"
      "]}";
  EXPECT_EQ(obs::RenderJson(MakeSnapshot()), expected);
}

TEST(ExportTest, JsonEscapesSpecialCharacters) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"weird_total", {{"k", "a\"b\\c\nd"}}, "", 1});
  const std::string rendered = obs::RenderJson(snap);
  EXPECT_NE(rendered.find("a\\\"b\\\\c\\nd"), std::string::npos);
}

TEST(ExportTest, PrometheusEscapesLabelValues) {
  obs::MetricsSnapshot snap;
  snap.counters.push_back({"weird_total", {{"k", "a\"b\\c\nd"}}, "", 1});
  const std::string rendered = obs::RenderPrometheus(snap);
  EXPECT_NE(rendered.find("k=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

TEST(ExportTest, GlobalRegistryRoundTrips) {
  // Smoke: a metric registered in the global registry appears in both
  // renderings with its current value.
  auto& reg = obs::MetricsRegistry::Global();
  obs::Counter& c = reg.GetCounter("export_roundtrip_total", {}, "round trip");
  c.Reset();
  c.Inc(9);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  EXPECT_NE(obs::RenderPrometheus(snap).find("export_roundtrip_total 9"),
            std::string::npos);
  EXPECT_NE(obs::RenderJson(snap).find(
                "\"name\":\"export_roundtrip_total\",\"labels\":{},"
                "\"value\":9"),
            std::string::npos);
}

}  // namespace
}  // namespace infoleak
