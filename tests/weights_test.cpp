#include "core/weights.h"

#include <gtest/gtest.h>

#include <cmath>

namespace infoleak {
namespace {

TEST(WeightModelTest, DefaultWeightIsOne) {
  WeightModel wm;
  EXPECT_DOUBLE_EQ(wm.Weight("anything"), 1.0);
  EXPECT_TRUE(wm.IsConstant());
}

TEST(WeightModelTest, ExplicitWeightOverridesDefault) {
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("C", 3.0).ok());
  EXPECT_DOUBLE_EQ(wm.Weight("C"), 3.0);
  EXPECT_DOUBLE_EQ(wm.Weight("Z"), 1.0);
  EXPECT_FALSE(wm.IsConstant());
}

TEST(WeightModelTest, RejectsNegativeAndNonFinite) {
  WeightModel wm;
  EXPECT_TRUE(wm.SetWeight("A", -1.0).IsInvalidArgument());
  EXPECT_TRUE(wm.SetWeight("A", std::nan("")).IsInvalidArgument());
  EXPECT_TRUE(wm.SetWeight("A", 0.0).ok());  // zero weight is legal
}

TEST(WeightModelTest, IsConstantOverChecksOnlyOccurringLabels) {
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("X", 5.0).ok());  // X never occurs below
  Record r{{"A", "1"}};
  Record p{{"B", "2"}};
  EXPECT_TRUE(wm.IsConstantOver(r, p));
  Record r2{{"X", "1"}};
  EXPECT_FALSE(wm.IsConstantOver(r2, p));
}

TEST(WeightModelTest, IsConstantOverWithUniformExplicitWeights) {
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 2.0).ok());
  ASSERT_TRUE(wm.SetWeight("B", 2.0).ok());
  Record r{{"A", "1"}};
  Record p{{"B", "2"}};
  // All occurring labels share weight 2 even though the default is 1.
  EXPECT_TRUE(wm.IsConstantOver(r, p));
}

TEST(WeightModelTest, TotalWeight) {
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());
  Record r{{"N", "Alice"}, {"A", "20"}, {"Z", "94305"}};
  EXPECT_DOUBLE_EQ(wm.TotalWeight(r), 4.0);
  EXPECT_DOUBLE_EQ(wm.TotalWeight(Record{}), 0.0);
}

TEST(WeightModelTest, OverlapWeightMatchesOnLabelAndValue) {
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice"}, {"A", "21"}, {"P", "123"}};
  // N matches (weight 2), A differs in value, P matches (weight 1).
  EXPECT_DOUBLE_EQ(wm.OverlapWeight(r, p), 3.0);
  EXPECT_DOUBLE_EQ(wm.OverlapWeight(p, r), 3.0);  // symmetric
}

TEST(WeightModelTest, OverlapWithDuplicateLabels) {
  WeightModel wm;
  Record p{{"A", "20"}, {"A", "30"}};
  Record r{{"A", "30"}, {"A", "40"}};
  EXPECT_DOUBLE_EQ(wm.OverlapWeight(r, p), 1.0);
}

TEST(WeightModelTest, ParseValidSpec) {
  auto wm = WeightModel::Parse("N=2, C = 3.5 ,Z=0.5");
  ASSERT_TRUE(wm.ok());
  EXPECT_DOUBLE_EQ(wm->Weight("N"), 2.0);
  EXPECT_DOUBLE_EQ(wm->Weight("C"), 3.5);
  EXPECT_DOUBLE_EQ(wm->Weight("Z"), 0.5);
  EXPECT_DOUBLE_EQ(wm->Weight("other"), 1.0);
}

TEST(WeightModelTest, ParseEmptySpecIsDefaultModel) {
  auto wm = WeightModel::Parse("  ");
  ASSERT_TRUE(wm.ok());
  EXPECT_TRUE(wm->IsConstant());
}

TEST(WeightModelTest, ParseRejectsMalformedSpecs) {
  EXPECT_FALSE(WeightModel::Parse("N").ok());
  EXPECT_FALSE(WeightModel::Parse("N=").ok());
  EXPECT_FALSE(WeightModel::Parse("=2").ok());
  EXPECT_FALSE(WeightModel::Parse("N=abc").ok());
  EXPECT_FALSE(WeightModel::Parse("N=1=2").ok());
  EXPECT_FALSE(WeightModel::Parse("N=-3").ok());
}

TEST(WeightModelTest, CustomDefaultWeight) {
  WeightModel wm(2.5);
  EXPECT_DOUBLE_EQ(wm.Weight("anything"), 2.5);
  EXPECT_DOUBLE_EQ(wm.default_weight(), 2.5);
}

}  // namespace
}  // namespace infoleak
