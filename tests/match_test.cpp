#include "er/match.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(RuleMatchTest, SharedValueOnSingleLabel) {
  auto m = RuleMatch::SharedValue({"N"});
  Record a{{"N", "Alice"}, {"P", "123"}};
  Record b{{"N", "Alice"}, {"C", "999"}};
  Record c{{"N", "Bob"}};
  EXPECT_TRUE(m->Matches(a, b));
  EXPECT_FALSE(m->Matches(a, c));
}

TEST(RuleMatchTest, SharedValueRequiresSameValue) {
  auto m = RuleMatch::SharedValue({"N"});
  Record a{{"N", "Alice"}};
  Record b{{"N", "alice"}};  // case differs: distinct values
  EXPECT_FALSE(m->Matches(a, b));
}

TEST(RuleMatchTest, MultipleSingletonLabelsAreDisjunctive) {
  auto m = RuleMatch::SharedValue({"N", "P"});
  Record a{{"N", "Alice"}, {"P", "123"}};
  Record b{{"N", "Bob"}, {"P", "123"}};  // names differ, phones match
  EXPECT_TRUE(m->Matches(a, b));
}

TEST(RuleMatchTest, ConjunctiveRule) {
  // §4.1: match iff same name AND credit card, OR same name AND phone.
  RuleMatch m(MatchRules{{"N", "C"}, {"N", "P"}});
  Record s{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}};
  Record t{{"N", "n1"}, {"C", "c2"}};
  Record v{{"N", "n1"}, {"C", "c2"}, {"P", "p1"}};
  EXPECT_FALSE(m.Matches(s, t));  // same name but different card, no phone
  EXPECT_TRUE(m.Matches(s, v));   // same name and phone
  EXPECT_TRUE(m.Matches(t, v));   // same name and card c2
}

TEST(RuleMatchTest, MultiValuedLabelMatchesOnAnySharedValue) {
  auto m = RuleMatch::SharedValue({"P"});
  Record a{{"P", "123"}, {"P", "987"}};
  Record b{{"P", "987"}};
  EXPECT_TRUE(m->Matches(a, b));
}

TEST(RuleMatchTest, EmptyRulesNeverMatch) {
  RuleMatch m({});
  Record a{{"N", "Alice"}};
  EXPECT_FALSE(m.Matches(a, a));
}

TEST(RuleMatchTest, EmptyConjunctionIsDropped) {
  // An empty rule would vacuously match everything; it must be ignored.
  RuleMatch m(MatchRules{{}});
  Record a{{"N", "Alice"}};
  Record b{{"N", "Bob"}};
  EXPECT_FALSE(m.Matches(a, b));
}

TEST(RuleMatchTest, MatchIgnoresConfidence) {
  auto m = RuleMatch::SharedValue({"N"});
  Record a{{"N", "Alice", 0.1}};
  Record b{{"N", "Alice", 0.9}};
  EXPECT_TRUE(m->Matches(a, b));
}

TEST(PredicateMatchTest, WrapsCallable) {
  PredicateMatch m([](const Record& a, const Record& b) {
    return a.size() == b.size();
  });
  EXPECT_TRUE(m.Matches(Record{{"A", "1"}}, Record{{"B", "2"}}));
  EXPECT_FALSE(m.Matches(Record{{"A", "1"}}, Record{}));
}

TEST(CompositeMatchTest, AnyOf) {
  std::vector<std::unique_ptr<MatchFunction>> children;
  children.push_back(RuleMatch::SharedValue({"N"}));
  children.push_back(RuleMatch::SharedValue({"P"}));
  AnyMatch m(std::move(children));
  Record a{{"N", "Alice"}, {"P", "1"}};
  Record b{{"N", "Bob"}, {"P", "1"}};
  Record c{{"N", "Bob"}, {"P", "2"}};
  EXPECT_TRUE(m.Matches(a, b));
  EXPECT_FALSE(m.Matches(a, c));
}

TEST(CompositeMatchTest, AllOf) {
  std::vector<std::unique_ptr<MatchFunction>> children;
  children.push_back(RuleMatch::SharedValue({"N"}));
  children.push_back(RuleMatch::SharedValue({"P"}));
  AllMatch m(std::move(children));
  Record a{{"N", "Alice"}, {"P", "1"}};
  Record b{{"N", "Alice"}, {"P", "1"}};
  Record c{{"N", "Alice"}, {"P", "2"}};
  EXPECT_TRUE(m.Matches(a, b));
  EXPECT_FALSE(m.Matches(a, c));
}

TEST(NeverMatchTest, NeverMatches) {
  NeverMatch m;
  Record a{{"N", "Alice"}};
  EXPECT_FALSE(m.Matches(a, a));
}

}  // namespace
}  // namespace infoleak
