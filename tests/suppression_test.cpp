#include "anon/suppression.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

/// Five clusterable rows plus one outlier that only full suppression of the
/// zip column could absorb.
Table OutlierTable() {
  auto t = Table::Create({"Zip", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"111", "A"}).ok());
  EXPECT_TRUE(t->AddRow({"112", "B"}).ok());
  EXPECT_TRUE(t->AddRow({"113", "C"}).ok());
  EXPECT_TRUE(t->AddRow({"114", "D"}).ok());
  EXPECT_TRUE(t->AddRow({"115", "E"}).ok());
  EXPECT_TRUE(t->AddRow({"999", "F"}).ok());  // outlier
  return std::move(t).value();
}

TEST(SuppressionTest, ZeroBudgetMatchesPlainGeneralization) {
  Table t = OutlierTable();
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto plain = MinimalFullDomainGeneralization(t, qis, 5);
  auto with = MinimalGeneralizationWithSuppression(t, qis, 5, 0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(plain->levels, with->levels);
  EXPECT_TRUE(with->suppressed.empty());
  EXPECT_EQ(plain->table.rows(), with->table.rows());
}

TEST(SuppressionTest, SuppressingOutlierSavesGeneralization) {
  // Without suppression, 5-anonymity needs zip level 3 ("***", since "11*"
  // leaves 999 alone and even "1**"/"9**" split). With one suppression the
  // 11x cluster is 5-anonymous at level 1.
  Table t = OutlierTable();
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto plain = MinimalFullDomainGeneralization(t, qis, 5);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->levels, std::vector<int>{3});

  auto with = MinimalGeneralizationWithSuppression(t, qis, 5, 1);
  ASSERT_TRUE(with.ok());
  EXPECT_EQ(with->levels, std::vector<int>{1});
  EXPECT_EQ(with->suppressed, std::vector<std::size_t>{5});
  EXPECT_EQ(with->table.num_rows(), 5u);
  EXPECT_TRUE(IsKAnonymous(with->table, {"Zip"}, 5).value());
}

TEST(SuppressionTest, BudgetTooSmallFallsBackToCoarser) {
  // Two outliers but budget 1: must generalize further instead.
  auto t = Table::Create({"Zip"});
  ASSERT_TRUE(t.ok());
  for (const char* zip : {"111", "112", "113", "881", "992"}) {
    ASSERT_TRUE(t->AddRow({zip}).ok());
  }
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto result = MinimalGeneralizationWithSuppression(*t, qis, 3, 1);
  ASSERT_TRUE(result.ok());
  // Level 1 leaves classes {11*:3, 88*:1, 99*:1} -> 2 suppressions needed,
  // over budget; level 2 gives {1**:3, 8**:1, 9**:1} -> still 2; level 3
  // collapses everything.
  EXPECT_EQ(result->levels, std::vector<int>{3});
  EXPECT_TRUE(result->suppressed.empty());
}

TEST(SuppressionTest, GenerousBudgetSuppressesInsteadOfGeneralizing) {
  auto t = Table::Create({"Zip"});
  ASSERT_TRUE(t.ok());
  for (const char* zip : {"111", "111", "111", "881", "992"}) {
    ASSERT_TRUE(t->AddRow({zip}).ok());
  }
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto result = MinimalGeneralizationWithSuppression(*t, qis, 3, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{0});  // no generalization at all
  EXPECT_EQ(result->suppressed.size(), 2u);
  EXPECT_EQ(result->table.num_rows(), 3u);
}

TEST(SuppressionTest, BudgetCoveringEveryRowNeverPublishesAnEmptyTable) {
  // Six all-distinct rows, k = 5, budget 6: at level 0 every class is a
  // singleton, so suppressing all six rows fits the budget — the degenerate
  // "solution" the search used to accept (an empty table hides nobody
  // inside a crowd). The real minimal answer is level 1, where the 11x
  // cluster is 5-anonymous once the outlier is suppressed.
  Table t = OutlierTable();
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto result = MinimalGeneralizationWithSuppression(t, qis, 5, 6);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{1});
  EXPECT_EQ(result->suppressed, std::vector<std::size_t>{5});
  EXPECT_EQ(result->table.num_rows(), 5u);
  EXPECT_TRUE(IsKAnonymous(result->table, {"Zip"}, 5).value());
}

TEST(SuppressionTest, SurvivorsUnderKAreNotASolution) {
  // Budget 2 is enough to suppress both outliers at level 0, but the three
  // survivors are fewer than k = 5 — that node must be passed over in favor
  // of full generalization, which keeps all five rows together.
  auto t = Table::Create({"Zip"});
  ASSERT_TRUE(t.ok());
  for (const char* zip : {"111", "111", "111", "888", "999"}) {
    ASSERT_TRUE(t->AddRow({zip}).ok());
  }
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  auto result = MinimalGeneralizationWithSuppression(*t, qis, 5, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{3});
  EXPECT_TRUE(result->suppressed.empty());
  EXPECT_EQ(result->table.num_rows(), 5u);
}

TEST(SuppressionTest, TooFewRowsIsNotFound) {
  auto t = Table::Create({"Zip"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"111"}).ok());
  SuffixSuppressionHierarchy zip(1);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  EXPECT_TRUE(MinimalGeneralizationWithSuppression(*t, qis, 2, 5)
                  .status()
                  .IsNotFound());
}

TEST(SuppressionTest, NullHierarchyRejected) {
  Table t = OutlierTable();
  std::vector<QuasiIdentifier> qis{{"Zip", nullptr}};
  EXPECT_TRUE(MinimalGeneralizationWithSuppression(t, qis, 2, 0)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace infoleak
