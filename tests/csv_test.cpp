#include "util/csv.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(CsvTest, ParseSimpleLine) {
  auto fields = Csv::ParseLine("a,b,c");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b", "c"}));
}

TEST(CsvTest, ParseQuotedField) {
  auto fields = Csv::ParseLine("a,\"b,c\",d");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "b,c", "d"}));
}

TEST(CsvTest, ParseEscapedQuote) {
  auto fields = Csv::ParseLine("\"he said \"\"hi\"\"\",x");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"he said \"hi\"", "x"}));
}

TEST(CsvTest, ParseEmptyFields) {
  auto fields = Csv::ParseLine("a,,c,");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(*fields, (std::vector<std::string>{"a", "", "c", ""}));
}

TEST(CsvTest, ParseMultipleRows) {
  auto rows = Csv::Parse("a,b\nc,d\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, ToleratesCrlfAndMissingTrailingNewline) {
  auto rows = Csv::Parse("a,b\r\nc,d");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[1], (std::vector<std::string>{"c", "d"}));
}

TEST(CsvTest, QuotedNewlineStaysInField) {
  auto rows = Csv::Parse("a,\"line1\nline2\"\nb,c\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][1], "line1\nline2");
}

TEST(CsvTest, UnterminatedQuoteIsCorruption) {
  auto rows = Csv::Parse("a,\"oops\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kCorruption);
}

TEST(CsvTest, EmptyDocument) {
  auto rows = Csv::Parse("");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST(CsvTest, FormatPlainRow) {
  EXPECT_EQ(Csv::FormatRow({"a", "b", "c"}), "a,b,c");
}

TEST(CsvTest, FormatQuotesWhenNeeded) {
  EXPECT_EQ(Csv::FormatRow({"a,b", "c\"d", "e\nf"}),
            "\"a,b\",\"c\"\"d\",\"e\nf\"");
}

TEST(CsvTest, FormatParseRoundTrip) {
  std::vector<std::string> fields{"plain", "with,comma", "with\"quote",
                                  "multi\nline", ""};
  auto parsed = Csv::ParseLine(Csv::FormatRow(fields));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, fields);
}

TEST(CsvTest, QuotedEmptyRowYieldsOneEmptyField) {
  auto rows = Csv::Parse("\"\"\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0], (std::vector<std::string>{""}));
}

}  // namespace
}  // namespace infoleak
