#include "util/string_util.h"

#include <gtest/gtest.h>

#include "util/hash.h"

namespace infoleak {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(JoinTest, RoundTripsWithSplit) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(Join(parts, ","), "x,y,z");
  EXPECT_EQ(Split(Join(parts, ","), ','), parts);
}

TEST(JoinTest, EmptyAndSingle) {
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(TrimTest, StripsWhitespace) {
  EXPECT_EQ(Trim("  hello  "), "hello");
  EXPECT_EQ(Trim("\t\n x \r"), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("nochange"), "nochange");
}

TEST(ToLowerTest, AsciiOnly) {
  EXPECT_EQ(ToLower("HeLLo 123"), "hello 123");
}

TEST(StartsWithTest, Basics) {
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_TRUE(StartsWith("foo", ""));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_FALSE(StartsWith("xfoo", "foo"));
}

TEST(WildcardMatchTest, StarMatchesExactlyOneChar) {
  EXPECT_TRUE(WildcardMatch("11*", "111"));
  EXPECT_TRUE(WildcardMatch("11*", "112"));
  EXPECT_TRUE(WildcardMatch("1**", "199"));
  EXPECT_TRUE(WildcardMatch("***", "abc"));
  EXPECT_FALSE(WildcardMatch("11*", "1113"));  // length must match
  EXPECT_FALSE(WildcardMatch("11*", "12"));
  EXPECT_FALSE(WildcardMatch("11*", "121"));
}

TEST(WildcardMatchTest, NoWildcardsIsEquality) {
  EXPECT_TRUE(WildcardMatch("abc", "abc"));
  EXPECT_FALSE(WildcardMatch("abc", "abd"));
}

TEST(EditDistanceTest, KnownDistances) {
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("abc", "abc"), 0u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("Influenza", "Influenza"), 0u);
  EXPECT_EQ(EditDistance("Flu", "Flue"), 1u);
}

TEST(EditDistanceTest, Symmetric) {
  EXPECT_EQ(EditDistance("abcdef", "azced"), EditDistance("azced", "abcdef"));
}

TEST(FormatDoubleTest, TrimsTrailingZeros) {
  EXPECT_EQ(FormatDouble(0.5, 4), "0.5");
  EXPECT_EQ(FormatDouble(1.0, 4), "1");
  EXPECT_EQ(FormatDouble(0.1234567, 7), "0.1234567");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
  EXPECT_EQ(FormatDouble(-2.50, 3), "-2.5");
}

TEST(StrCatTest, ConcatenatesMixedPieces) {
  std::string owned = "mid";
  EXPECT_EQ(StrCat("a", owned, std::to_string(42), "-end"), "amid42-end");
  EXPECT_EQ(StrCat("solo"), "solo");
  EXPECT_EQ(StrCat("", "", ""), "");
}

TEST(HashTest, Fnv1aIsStableAndDiscriminating) {
  // Stable across platforms (documented FNV-1a test vectors).
  EXPECT_EQ(Fnv1a(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(Fnv1a("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_NE(Fnv1a("alice"), Fnv1a("alicf"));
  EXPECT_EQ(Fnv1a("alice"), Fnv1a("alice"));
}

TEST(HashTest, HashCombineOrderSensitive) {
  std::size_t ab = 0;
  HashCombine(&ab, 1);
  HashCombine(&ab, 2);
  std::size_t ba = 0;
  HashCombine(&ba, 2);
  HashCombine(&ba, 1);
  EXPECT_NE(ab, ba);
}

}  // namespace
}  // namespace infoleak
