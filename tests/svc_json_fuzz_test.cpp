#include "svc/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"

namespace infoleak::svc {
namespace {

/// Deterministic fuzzing of the service's JSON parser: the parser sits on
/// the network boundary, so arbitrary bytes must never crash it (the suite
/// runs under ASan in CI) and every rejection must carry a byte-offset
/// diagnostic a client can act on. Seeded corpora keep failures
/// reproducible: a failing input prints as hex.

std::string Hex(const std::string& s) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (unsigned char c : s) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xF]);
  }
  return out;
}

/// Parse must return (not crash, not hang); errors must name a byte offset.
void CheckTotal(const std::string& input) {
  auto v = ParseJson(input);
  if (!v.ok()) {
    EXPECT_NE(v.status().message().find("at byte"), std::string::npos)
        << "error without byte offset for input " << Hex(input) << ": "
        << v.status().ToString();
  }
}

TEST(JsonFuzzTest, RandomBytesNeverCrashTheParser) {
  Rng rng(0xF00DF00Du);
  for (int round = 0; round < 2000; ++round) {
    const std::size_t len = rng.NextBounded(64);
    std::string input;
    input.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(static_cast<char>(rng.NextBounded(256)));
    }
    CheckTotal(input);
  }
}

TEST(JsonFuzzTest, StructuralBytesNeverCrashTheParser) {
  // Biasing toward JSON's structural vocabulary reaches far deeper parse
  // states than uniform bytes.
  static const std::string kAlphabet = "{}[]\",:.0123456789eE+-\\ntrufalse ";
  Rng rng(0xBADC0DEu);
  for (int round = 0; round < 4000; ++round) {
    const std::size_t len = rng.NextBounded(48);
    std::string input;
    input.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      input.push_back(kAlphabet[rng.NextBounded(kAlphabet.size())]);
    }
    CheckTotal(input);
  }
}

TEST(JsonFuzzTest, MutatedValidDocumentsNeverCrashTheParser) {
  const std::vector<std::string> corpus = {
      R"({"verb":"append","record":"{<name, alice, 0.9>}"})",
      R"({"verb":"set-leak","reference":"{<a, b, 1.0>}","engine":"exact"})",
      R"({"id":17,"verb":"leak","record_id":3,"weights":"N=2,P=0.5"})",
      R"([1, 2.5e-3, true, null, "x", {"nested":[{}]}])",
      R"({"a":"é\n\"quoted\"","b":[-0.0,1e308]})",
  };
  Rng rng(0x5EEDu);
  for (const std::string& base : corpus) {
    CheckTotal(base);  // the unmutated document must parse or not — totally
    for (int round = 0; round < 600; ++round) {
      std::string mutated = base;
      switch (rng.NextBounded(4)) {
        case 0:  // flip one byte
          mutated[rng.NextBounded(mutated.size())] ^=
              static_cast<char>(1u << rng.NextBounded(8));
          break;
        case 1:  // delete one byte
          mutated.erase(rng.NextBounded(mutated.size()), 1);
          break;
        case 2:  // insert one random byte
          mutated.insert(mutated.begin() + static_cast<std::ptrdiff_t>(
                                               rng.NextBounded(mutated.size())),
                         static_cast<char>(rng.NextBounded(256)));
          break;
        default:  // truncate
          mutated.resize(rng.NextBounded(mutated.size()));
          break;
      }
      CheckTotal(mutated);
    }
  }
}

TEST(JsonFuzzTest, DeepNestingIsRejectedNotOverflowed) {
  // A parser recursing per '[' must bound its depth or the network peer
  // controls our stack.
  for (std::size_t depth : {64u, 512u, 4096u, 100000u}) {
    std::string deep(depth, '[');
    deep += std::string(depth, ']');
    CheckTotal(deep);
    CheckTotal(std::string(depth, '['));  // unterminated
    std::string objects;
    for (std::size_t i = 0; i < depth; ++i) objects += "{\"a\":";
    CheckTotal(objects);
  }
}

TEST(JsonFuzzTest, RejectionsReportTheOffendingByte) {
  // Spot-check the offsets are not just present but plausible: the
  // reported byte is at or after the last valid prefix position.
  struct Case {
    std::string input;
    std::size_t min_offset;
  };
  for (const auto& c : std::vector<Case>{
           {"{\"a\": nope}", 6},
           {"[1, 2, x]", 7},
           {"\"unterminated", 0},
           {"{\"a\":1} trailing", 7},
       }) {
    auto v = ParseJson(c.input);
    ASSERT_FALSE(v.ok()) << c.input;
    const std::string& msg = v.status().message();
    const auto pos = msg.find("at byte ");
    ASSERT_NE(pos, std::string::npos) << msg;
    const std::size_t reported =
        static_cast<std::size_t>(std::atoll(msg.c_str() + pos + 8));
    EXPECT_GE(reported, c.min_offset) << msg;
    EXPECT_LE(reported, c.input.size()) << msg;
  }
}

}  // namespace
}  // namespace infoleak::svc
