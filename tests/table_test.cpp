#include "anon/table.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

Table PatientTable() {
  auto t = Table::Create({"Name", "Zip", "Age", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"Alice", "111", "30", "Heart"}).ok());
  EXPECT_TRUE(t->AddRow({"Bob", "112", "31", "Breast"}).ok());
  return std::move(t).value();
}

TEST(TableTest, CreateRejectsBadSchemas) {
  EXPECT_FALSE(Table::Create({}).ok());
  EXPECT_FALSE(Table::Create({"A", "B", "A"}).ok());
  EXPECT_TRUE(Table::Create({"A", "B"}).ok());
}

TEST(TableTest, AddRowValidatesArity) {
  auto t = Table::Create({"A", "B"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"1", "2"}).ok());
  EXPECT_TRUE(t->AddRow({"1"}).IsInvalidArgument());
  EXPECT_TRUE(t->AddRow({"1", "2", "3"}).IsInvalidArgument());
}

TEST(TableTest, ColumnIndexAndCell) {
  Table t = PatientTable();
  auto idx = t.ColumnIndex("Age");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(t.ColumnIndex("Nope").status().IsNotFound());
  auto cell = t.Cell(1, "Disease");
  ASSERT_TRUE(cell.ok());
  EXPECT_EQ(*cell, "Breast");
  EXPECT_TRUE(t.Cell(5, "Disease").status().IsOutOfRange());
  EXPECT_TRUE(t.Cell(0, "Nope").status().IsNotFound());
}

TEST(TableTest, SetCell) {
  Table t = PatientTable();
  ASSERT_TRUE(t.SetCell(0, "Zip", "11*").ok());
  EXPECT_EQ(t.Cell(0, "Zip").value(), "11*");
  EXPECT_TRUE(t.SetCell(9, "Zip", "x").IsOutOfRange());
}

TEST(TableTest, DropColumns) {
  Table t = PatientTable();
  auto dropped = t.DropColumns({"Name"});
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped->num_columns(), 3u);
  EXPECT_EQ(dropped->num_rows(), 2u);
  EXPECT_TRUE(dropped->ColumnIndex("Name").status().IsNotFound());
  EXPECT_EQ(dropped->Cell(0, "Zip").value(), "111");
  EXPECT_FALSE(t.DropColumns({"Ghost"}).ok());
}

TEST(TableTest, CsvRoundTrip) {
  Table t = PatientTable();
  auto parsed = Table::FromCsv(t.ToCsv());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->columns(), t.columns());
  EXPECT_EQ(parsed->rows(), t.rows());
}

TEST(TableTest, FromCsvRejectsEmptyAndRagged) {
  EXPECT_FALSE(Table::FromCsv("").ok());
  EXPECT_FALSE(Table::FromCsv("A,B\n1\n").ok());
}

TEST(TableTest, CsvWithQuotedValues) {
  auto t = Table::FromCsv("Name,Address\nAlice,\"123 Main, Apt 4\"\n");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Cell(0, "Address").value(), "123 Main, Apt 4");
}

}  // namespace
}  // namespace infoleak
