#include "core/possible_worlds.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include <cmath>
#include <map>

namespace infoleak {
namespace {

TEST(PossibleWorldsTest, CountIsTwoToTheN) {
  uint64_t count = 0;
  ASSERT_TRUE(CountPossibleWorlds(Record{}, &count).ok());
  EXPECT_EQ(count, 1u);
  Record r{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  ASSERT_TRUE(CountPossibleWorlds(r, &count).ok());
  EXPECT_EQ(count, 8u);
}

TEST(PossibleWorldsTest, RefusesOversizedRecords) {
  Record big;
  for (int i = 0; i < 12; ++i) {
    big.Insert(Attribute(StrCat("L", std::to_string(i)), "v", 0.5));
  }
  uint64_t count = 0;
  EXPECT_EQ(CountPossibleWorlds(big, &count, 10).code(),
            StatusCode::kResourceExhausted);
  EXPECT_TRUE(CountPossibleWorlds(big, &count, 12).ok());
}

TEST(PossibleWorldsTest, ProbabilitiesSumToOne) {
  Record r{{"N", "Alice", 0.3}, {"A", "20", 0.7}, {"P", "1", 0.5}};
  double total = 0.0;
  std::size_t worlds = 0;
  ASSERT_TRUE(ForEachPossibleWorld(r, [&](const Record&, double prob) {
                total += prob;
                ++worlds;
              }).ok());
  EXPECT_EQ(worlds, 8u);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(PossibleWorldsTest, PaperSection23Example) {
  // r = {<name,Alice,1>, <age,20,0.4>, <phone,123,0.5>} has four worlds with
  // non-zero probability: 0.2, 0.2, 0.3, 0.3 (§2.3).
  Record r{{"name", "Alice", 1.0}, {"age", "20", 0.4}, {"phone", "123", 0.5}};
  std::map<std::size_t, double> prob_by_size;  // world size -> total prob
  double name_age_phone = -1.0;
  double name_only = -1.0;
  ASSERT_TRUE(ForEachPossibleWorld(r, [&](const Record& world, double prob) {
                prob_by_size[world.size()] += prob;
                if (world.size() == 3) name_age_phone = prob;
                if (world.size() == 1 && world.Contains("name", "Alice")) {
                  name_only = prob;
                }
              }).ok());
  EXPECT_NEAR(name_age_phone, 0.4 * 0.5, 1e-12);          // 0.2
  EXPECT_NEAR(name_only, 0.6 * 0.5, 1e-12);               // 0.3
  // Worlds without the certain name attribute have probability 0.
  EXPECT_NEAR(prob_by_size[0], 0.0, 1e-12);
}

TEST(PossibleWorldsTest, WorldsCarryFullConfidence) {
  Record r{{"A", "1", 0.5}};
  ASSERT_TRUE(ForEachPossibleWorld(r, [&](const Record& world, double) {
                for (const auto& a : world) {
                  EXPECT_DOUBLE_EQ(a.confidence, 1.0);
                }
              }).ok());
}

TEST(PossibleWorldsTest, CertainAttributeAppearsInAllPositiveWorlds) {
  Record r{{"A", "1", 1.0}, {"B", "2", 0.5}};
  ASSERT_TRUE(ForEachPossibleWorld(r, [&](const Record& world, double prob) {
                if (prob > 0.0) {
                  EXPECT_TRUE(world.Contains("A", "1"));
                }
              }).ok());
}

TEST(PossibleWorldsTest, ZeroConfidenceAttributeNeverAppears) {
  Record r{{"A", "1", 0.0}, {"B", "2", 0.5}};
  ASSERT_TRUE(ForEachPossibleWorld(r, [&](const Record& world, double prob) {
                if (prob > 0.0) {
                  EXPECT_FALSE(world.Contains("A", "1"));
                }
              }).ok());
}

TEST(PossibleWorldsTest, EmptyRecordHasOneCertainWorld) {
  std::size_t worlds = 0;
  ASSERT_TRUE(ForEachPossibleWorld(Record{}, [&](const Record& w, double p) {
                ++worlds;
                EXPECT_TRUE(w.empty());
                EXPECT_DOUBLE_EQ(p, 1.0);
              }).ok());
  EXPECT_EQ(worlds, 1u);
}

}  // namespace
}  // namespace infoleak
