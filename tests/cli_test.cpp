#include "cli/commands.h"

#include <gtest/gtest.h>

#include "cli/flags.h"
#include "core/kernels.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace infoleak {
namespace {

// ---------------------------------------------------------------------------
// FlagSet
// ---------------------------------------------------------------------------

TEST(FlagSetTest, ParsesSpaceAndEqualsForms) {
  auto flags = FlagSet::Parse({"--a", "1", "--b=2", "--c"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("a"), "1");
  EXPECT_EQ(flags->GetString("b"), "2");
  EXPECT_TRUE(flags->Has("c"));
  EXPECT_EQ(flags->GetString("c"), "true");
  EXPECT_FALSE(flags->Has("d"));
}

TEST(FlagSetTest, Positionals) {
  auto flags = FlagSet::Parse({"pos1", "--a", "1", "pos2"});
  ASSERT_TRUE(flags.ok());
  // "pos2" follows the consumed value of --a... check actual semantics:
  // --a consumes "1", so pos2 is positional.
  EXPECT_EQ(flags->positionals(),
            (std::vector<std::string>{"pos1", "pos2"}));
}

TEST(FlagSetTest, FlagBeforeFlagIsBoolean) {
  auto flags = FlagSet::Parse({"--verbose", "--n", "5"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("verbose"), "true");
  EXPECT_EQ(flags->GetInt("n", 0).value(), 5);
}

TEST(FlagSetTest, NumericAccessors) {
  auto flags = FlagSet::Parse({"--x", "2.5", "--n", "7", "--bad", "abc"});
  ASSERT_TRUE(flags.ok());
  EXPECT_DOUBLE_EQ(flags->GetDouble("x", 0).value(), 2.5);
  EXPECT_EQ(flags->GetInt("n", 0).value(), 7);
  EXPECT_DOUBLE_EQ(flags->GetDouble("missing", 9.5).value(), 9.5);
  EXPECT_FALSE(flags->GetDouble("bad", 0).ok());
  EXPECT_FALSE(flags->GetInt("bad", 0).ok());
}

TEST(FlagSetTest, RepeatedFlagKeepsLast) {
  auto flags = FlagSet::Parse({"--a", "1", "--a", "2"});
  ASSERT_TRUE(flags.ok());
  EXPECT_EQ(flags->GetString("a"), "2");
}

TEST(FlagSetTest, BareDoubleDashRejected) {
  EXPECT_FALSE(FlagSet::Parse({"--"}).ok());
}

// ---------------------------------------------------------------------------
// Commands (driven through Dispatch, no processes spawned)
// ---------------------------------------------------------------------------

constexpr const char* kSection24Db =
    "record,label,value,confidence\n"
    "0,N,Alice,1\n0,P,123,1\n"
    "1,N,Alice,1\n1,C,999,1\n"
    "2,N,Bob,1\n2,P,987,1\n";

TEST(CliTest, HelpAndUnknownCommand) {
  std::string out;
  EXPECT_TRUE(cli::Dispatch({"help"}, &out).ok());
  EXPECT_NE(out.find("usage"), std::string::npos);
  out.clear();
  EXPECT_TRUE(cli::Dispatch({}, &out).ok());
  out.clear();
  EXPECT_FALSE(cli::Dispatch({"frobnicate"}, &out).ok());
}

// Golden output for `infoleak serve --help`: the help text is generated
// from the same registry CheckFlags validates against, so this test pins
// both the rendering and the serve command's flag vocabulary.
TEST(CliTest, ServeHelpGoldenOutput) {
  constexpr const char* kGolden =
      "usage: infoleak serve [flags]\n"
      "\n"
      "  serve leakage queries over TCP (newline-delimited JSON)\n"
      "\n"
      "flags:\n"
      "  --host               bind address (default 127.0.0.1)\n"
      "  --port               TCP port; 0 picks an ephemeral port "
      "(default 0)\n"
      "  --workers            worker threads draining the request queue "
      "(default 4)\n"
      "  --queue-depth        bounded queue size; beyond it requests are "
      "shed with `overloaded` (default 128)\n"
      "  --deadline-ms        per-request deadline from admission; 0 "
      "disables (default 10000)\n"
      "  --idle-timeout-ms    close connections idle this long; 0 disables "
      "(default 30000)\n"
      "  --max-frame-bytes    largest accepted request line "
      "(default 1048576)\n"
      "  --cache-refs         prepared-reference cache capacity "
      "(default 64)\n"
      "  --db                 CSV database file preloaded into the store\n"
      "  --db-csv             inline CSV database text preloaded into the "
      "store\n"
      "  --data-dir           durable mode: recover the store from this "
      "directory and write-ahead-log every append\n"
      "  --fsync              WAL durability: always|interval|never "
      "(default always)\n"
      "  --fsync-interval-ms  background fsync cadence for --fsync interval "
      "(default 25)\n"
      "  --snapshot-every     background-snapshot every N appends; 0 "
      "disables (default 0)\n"
      "  --no-index           disable the incremental leakage index; every "
      "set-leak rescans and `subscribe` is refused\n"
      "  --index-topk         top-k entries each leakage index maintains; "
      "the k-th value is the bounds-skip threshold (default 8)\n"
      "\n"
      "observability riders (accepted by every command):\n"
      "  --stats              append a metrics report to the command "
      "output\n"
      "  --stats-format       metrics report format: prometheus|json\n"
      "  --trace              append a trace-span summary to the command "
      "output\n";
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"serve", "--help"}, &out).ok());
  EXPECT_EQ(out, kGolden);
}

// The compact command's help golden: pins the offline-maintenance entry
// point introduced with the persistence subsystem.
TEST(CliTest, CompactHelpGoldenOutput) {
  constexpr const char* kGolden =
      "usage: infoleak compact [flags]\n"
      "\n"
      "  rewrite a durable store's snapshot and reset its WAL\n"
      "\n"
      "flags:\n"
      "  --data-dir      durable store directory to compact (required)\n"
      "\n"
      "observability riders (accepted by every command):\n"
      "  --stats         append a metrics report to the command output\n"
      "  --stats-format  metrics report format: prometheus|json\n"
      "  --trace         append a trace-span summary to the command "
      "output\n";
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"compact", "--help"}, &out).ok());
  EXPECT_EQ(out, kGolden);
}

// The selfcheck command's help golden: pins the differential harness's
// flag vocabulary alongside its registry entry.
TEST(CliTest, SelfCheckHelpGoldenOutput) {
  constexpr const char* kGolden =
      "usage: infoleak selfcheck [flags]\n"
      "\n"
      "  differential cross-engine check: fuzz, compare, shrink\n"
      "\n"
      "flags:\n"
      "  --cases            generated adversarial cases (default 1000)\n"
      "  --seed             deterministic run seed; a (seed, case) pair "
      "always reproduces (default 1)\n"
      "  --engines          comma list of checks to run: naive,exact,approx,"
      "mc,bounds,batch,auto,served,durable,inc (default all)\n"
      "  --measures         measure-family checks: all|none|comma list of "
      "pml,guesswork,overunder (default all)\n"
      "  --corpus           regression corpus directory: replay every *.case "
      "before generating, write new minimized findings back\n"
      "  --no-corpus-write  replay the corpus but do not add new entries\n"
      "  --naive-max        largest record the O(2^|r|) truth oracle "
      "enumerates (default 12)\n"
      "  --mc-samples       Monte-Carlo samples per estimate (default 4000)\n"
      "  --max-reported     findings minimized and reported in full; further "
      "ones are only counted (default 20)\n"
      "  --scratch-dir      durable-check scratch directory (default: under "
      "the system temp dir, removed afterwards)\n"
      "\n"
      "observability riders (accepted by every command):\n"
      "  --stats            append a metrics report to the command output\n"
      "  --stats-format     metrics report format: prometheus|json\n"
      "  --trace            append a trace-span summary to the command "
      "output\n";
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"selfcheck", "--help"}, &out).ok());
  EXPECT_EQ(out, kGolden);
}

// A small offline selfcheck run through the CLI: all engines must agree and
// the command must report the case/comparison totals.
TEST(CliTest, SelfCheckSmokeRunsClean) {
  std::string out;
  Status st = cli::Dispatch(
      {"selfcheck", "--cases", "40", "--seed", "7",
       "--engines", "naive,exact,approx,mc,bounds,batch,auto"},
      &out);
  ASSERT_TRUE(st.ok()) << st.message() << "\n" << out;
  EXPECT_NE(out.find("generated 40 case(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("0 disagreement(s)"), std::string::npos) << out;
  EXPECT_NE(out.find("all engines and paths agree"), std::string::npos);
}

TEST(CliTest, SelfCheckRejectsUnknownEngine) {
  std::string out;
  Status st = cli::Dispatch({"selfcheck", "--engines", "warp"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("'warp'"), std::string::npos);
}

TEST(CliTest, SelfCheckValidatesNaiveMax) {
  std::string out;
  Status st = cli::Dispatch({"selfcheck", "--naive-max", "30"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--naive-max"), std::string::npos);
}

TEST(CliTest, HelpCommandAndHelpFlagAgree) {
  for (const char* command :
       {"leakage", "er", "incremental", "generate", "anonymize", "frontier",
        "dipping", "enhance", "disinfo", "reidentify", "stats", "serve",
        "call", "tail", "top", "compact", "selfcheck"}) {
    std::string via_flag, via_help;
    ASSERT_TRUE(cli::Dispatch({command, "--help"}, &via_flag).ok());
    ASSERT_TRUE(cli::Dispatch({"help", command}, &via_help).ok());
    EXPECT_EQ(via_flag, via_help) << command;
    EXPECT_NE(via_flag.find("usage: infoleak " + std::string(command)),
              std::string::npos)
        << command;
    EXPECT_NE(via_flag.find("observability riders"), std::string::npos)
        << command;
  }
}

TEST(CliTest, UsageListsEveryCommand) {
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"help"}, &out).ok());
  for (const char* command :
       {"leakage", "er", "incremental", "generate", "anonymize", "frontier",
        "dipping", "enhance", "disinfo", "reidentify", "stats", "serve",
        "call", "tail", "top", "compact", "selfcheck"}) {
    EXPECT_NE(out.find(std::string("  ") + command + " "), std::string::npos)
        << command;
  }
}

TEST(CliTest, UnknownFlagErrorPointsAtCommandHelp) {
  std::string out;
  Status st = cli::Dispatch({"serve", "--warp-speed", "9"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--warp-speed"), std::string::npos);
  EXPECT_NE(st.message().find("infoleak serve --help"), std::string::npos);
}

TEST(CliTest, CallWithoutPortFails) {
  std::string out;
  Status st = cli::Dispatch({"call", "--verb", "ping"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--port"), std::string::npos);
}

TEST(CliTest, TailAndTopValidateFlagsBeforeConnecting) {
  std::string out;
  Status st = cli::Dispatch({"tail"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--port"), std::string::npos);

  st = cli::Dispatch({"tail", "--port", "1", "--count", "0"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--count"), std::string::npos);

  st = cli::Dispatch({"tail", "--port", "1", "--min-micros", "-3"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--min-micros"), std::string::npos);

  // --follow is a live recent-events stream; the slow ring is a snapshot.
  st = cli::Dispatch({"tail", "--port", "1", "--slow", "--follow"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--follow"), std::string::npos);

  st = cli::Dispatch({"top"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--port"), std::string::npos);

  st = cli::Dispatch({"top", "--port", "1", "--count", "5000"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--count"), std::string::npos);
}

TEST(CliTest, LeakageCommandReproducesSection24) {
  std::string out;
  Status st = cli::Dispatch(
      {"leakage", "--db-csv", kSection24Db, "--reference-text",
       "{<N, Alice>, <P, 123>, <C, 999>, <Z, 111>}"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("set leakage L0(R, p) = 0.6666667"), std::string::npos)
      << out;
}

TEST(CliTest, LeakageWithResolutionRaisesToSixSevenths) {
  std::string out;
  Status st = cli::Dispatch(
      {"leakage", "--db-csv", kSection24Db, "--reference-text",
       "{<N, Alice>, <P, 123>, <C, 999>, <Z, 111>}", "--resolve",
       "--match-rules", "N"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("3 records -> 2 entities"), std::string::npos) << out;
  EXPECT_NE(out.find("0.8571429"), std::string::npos) << out;
}

TEST(CliTest, LeakageSupportsFBeta) {
  std::string out;
  Status st = cli::Dispatch({"leakage", "--db-csv", kSection24Db,
                             "--reference-text", "{<N, Alice>, <P, 123>}",
                             "--beta", "2.0"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("F-beta leakage (beta=2)"), std::string::npos) << out;
}

TEST(CliTest, LeakageValidatesEngine) {
  std::string out;
  Status st = cli::Dispatch({"leakage", "--db-csv", kSection24Db,
                             "--reference-text", "{<N, Alice>}", "--engine",
                             "quantum"},
                            &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(CliTest, ErCommandMergesAndReportsStats) {
  std::string out;
  Status st = cli::Dispatch(
      {"er", "--db-csv", kSection24Db, "--match-rules", "N", "--resolver",
       "transitive"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("records: 3 -> entities: 2"), std::string::npos) << out;
  EXPECT_NE(out.find("match calls: 3"), std::string::npos) << out;
}

TEST(CliTest, ErSupportsBlockedResolver) {
  std::string out;
  Status st = cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--resolver", "blocked"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("records: 3 -> entities: 2"), std::string::npos) << out;
}

TEST(CliTest, IncrementalCommandReproducesSection41) {
  const char* store_db =
      "record,label,value,confidence\n"
      "0,N,n1,1\n0,C,c1,1\n0,P,p1,1\n"
      "1,N,n1,1\n1,C,c2,1\n";
  std::string out;
  Status st = cli::Dispatch(
      {"incremental", "--db-csv", store_db, "--reference-text",
       "{<N, n1>, <C, c1>, <C, c2>, <P, p1>, <A, a1>}", "--release-text",
       "{<N, n1>, <C, c2>, <P, p1>}", "--match-rules", "N+C|N+P"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("before:      0.75"), std::string::npos) << out;
  EXPECT_NE(out.find("incremental: 0.1388889"), std::string::npos) << out;
}

TEST(CliTest, GenerateEmitsLoadableCsv) {
  std::string out;
  Status st = cli::Dispatch({"generate", "--n", "5", "--records", "3",
                             "--seed", "99", "--emit-reference"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("# reference:"), std::string::npos);
  EXPECT_NE(out.find("record,label,value,confidence"), std::string::npos);
}

TEST(CliTest, GenerateIsDeterministic) {
  std::string a;
  std::string b;
  ASSERT_TRUE(cli::Dispatch({"generate", "--n", "5", "--records", "3",
                             "--seed", "5"},
                            &a)
                  .ok());
  ASSERT_TRUE(cli::Dispatch({"generate", "--n", "5", "--records", "3",
                             "--seed", "5"},
                            &b)
                  .ok());
  EXPECT_EQ(a, b);
}

TEST(CliTest, GenerateValidatesNumbers) {
  std::string out;
  EXPECT_FALSE(cli::Dispatch({"generate", "--n", "0"}, &out).ok());
  EXPECT_FALSE(cli::Dispatch({"generate", "--pc", "1.5"}, &out).ok());
}

TEST(CliTest, AnonymizeCommand) {
  const char* table =
      "Zip,Age,Disease\n"
      "111,30,Heart\n112,31,Breast\n115,33,Cancer\n"
      "222,50,Hair\n299,70,Flu\n241,60,Flu\n";
  std::string out;
  Status st = cli::Dispatch(
      {"anonymize", "--table-csv", table, "--qi",
       "Zip:suffix:3,Age:interval:50", "--k", "3", "--sensitive", "Disease"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("3-anonymous generalization"), std::string::npos) << out;
  EXPECT_NE(out.find("distinct l-diversity of 'Disease'"), std::string::npos);
}

TEST(CliTest, AnonymizeValidatesQiSpec) {
  std::string out;
  EXPECT_FALSE(cli::Dispatch({"anonymize", "--table-csv", "A\nx\n", "--qi",
                              "A:magic:3", "--k", "1"},
                             &out)
                   .ok());
  EXPECT_FALSE(cli::Dispatch({"anonymize", "--table-csv", "A\nx\n", "--k",
                              "1"},
                             &out)
                   .ok());
}

TEST(CliTest, DippingCommandBuildsDossier) {
  std::string out;
  Status st = cli::Dispatch({"dipping", "--db-csv", kSection24Db,
                             "--query-text", "{<N, Alice>}", "--match-rules",
                             "N"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("<C, 999>"), std::string::npos) << out;
  EXPECT_NE(out.find("<P, 123>"), std::string::npos) << out;
  EXPECT_EQ(out.find("Bob"), std::string::npos) << out;
}

TEST(CliTest, DippingRequiresQuery) {
  std::string out;
  Status st = cli::Dispatch(
      {"dipping", "--db-csv", kSection24Db, "--match-rules", "N"}, &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

TEST(CliTest, EnhanceCommandRanksVerifications) {
  // The §4.3 example through the CLI: phone first (ratio 1/7), name last.
  const char* facts_db =
      "record,label,value,confidence\n"
      "0,N,Alice,1\n0,A,20,1\n"
      "1,N,Alice,0.9\n1,P,123,0.5\n1,C,987,1\n";
  std::string out;
  Status st = cli::Dispatch({"enhance", "--db-csv", facts_db}, &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("certainty L(rc, rp) = 0.9285714"), std::string::npos)
      << out;
  std::size_t phone = out.find("verify <P, 123, 0.5>");
  std::size_t name = out.find("verify <N, Alice, 0.9>");
  ASSERT_NE(phone, std::string::npos);
  ASSERT_NE(name, std::string::npos);
  EXPECT_LT(phone, name);  // better ratio ranks first
}

TEST(CliTest, EnhanceWithBudgetRunsGreedyPlan) {
  const char* facts_db =
      "record,label,value,confidence\n"
      "0,N,Alice,1\n"
      "1,P,123,0.5\n1,N,Alice,1\n";
  std::string out;
  Status st = cli::Dispatch({"enhance", "--db-csv", facts_db, "--budget",
                             "1.0"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("greedy plan"), std::string::npos) << out;
  EXPECT_NE(out.find("verify <P, 123, 0.5>"), std::string::npos) << out;
}

TEST(CliTest, DisinfoCommandLowersLeakage) {
  const char* leaked_db =
      "record,label,value,confidence\n"
      "0,N,alice,1\n0,P,123,1\n"
      "1,N,alice,1\n1,C,999,1\n"
      "2,N,bob,1\n2,K,k1,1\n";
  std::string out;
  Status st = cli::Dispatch(
      {"disinfo", "--db-csv", leaked_db, "--reference-text",
       "{<N, alice>, <P, 123>, <C, 999>, <Z, 94305>}", "--match-rules",
       "N|P|K", "--budget", "8"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("candidates:"), std::string::npos) << out;
  EXPECT_NE(out.find("publish ["), std::string::npos) << out;
  // "leakage: X -> Y" with Y < X; just check the arrow rendered and a
  // record was published.
  EXPECT_NE(out.find("leakage: "), std::string::npos) << out;
}

TEST(CliTest, DisinfoExhaustiveMode) {
  const char* leaked_db =
      "record,label,value,confidence\n"
      "0,N,alice,1\n0,P,123,1\n";
  std::string out;
  Status st = cli::Dispatch(
      {"disinfo", "--db-csv", leaked_db, "--reference-text",
       "{<N, alice>, <P, 123>, <C, 999>}", "--match-rules", "N|P",
       "--budget", "6", "--exhaustive"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
}

TEST(CliTest, ReidentifyCommand) {
  std::string out;
  Status st = cli::Dispatch(
      {"reidentify", "--db-csv",
       "0,N,alice,1\n0,P,123,1\n1,N,bob,1\n2,X,junk,1\n",
       "--references-text",
       "{<N, alice>, <P, 123>}\n{<N, bob>, <Z, 9>}"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("record 0 -> person 0"), std::string::npos) << out;
  EXPECT_NE(out.find("record 1 -> person 1"), std::string::npos) << out;
  EXPECT_NE(out.find("record 2 -> (unattributed)"), std::string::npos);
  EXPECT_NE(out.find("attributed: 2/3"), std::string::npos);
}

TEST(CliTest, ReidentifyRequiresReferences) {
  std::string out;
  EXPECT_TRUE(cli::Dispatch({"reidentify", "--db-csv", "0,N,a,1\n"}, &out)
                  .IsInvalidArgument());
  EXPECT_FALSE(cli::Dispatch({"reidentify", "--db-csv", "0,N,a,1\n",
                              "--references-text", "  "},
                             &out)
                   .ok());
}

TEST(CliTest, LeakageBoundsFlag) {
  std::string out;
  Status st = cli::Dispatch({"leakage", "--db-csv", kSection24Db,
                             "--reference-text",
                             "{<N, Alice>, <P, 123>, <C, 999>, <Z, 111>}",
                             "--bounds"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find(" in ["), std::string::npos) << out;
}

TEST(CliTest, AnonymizeReportsTCloseness) {
  const char* table =
      "Zip,Age,Disease\n"
      "111,30,Heart\n112,31,Breast\n115,33,Cancer\n"
      "222,50,Hair\n299,70,Flu\n241,60,Flu\n";
  std::string out;
  Status st = cli::Dispatch(
      {"anonymize", "--table-csv", table, "--qi",
       "Zip:suffix:3,Age:interval:50", "--k", "3", "--sensitive", "Disease"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("t-closeness (max TV distance): 0.5"),
            std::string::npos)
      << out;
}

TEST(CliTest, MissingDbIsInvalidArgument) {
  std::string out;
  Status st = cli::Dispatch(
      {"leakage", "--reference-text", "{<N, Alice>}"}, &out);
  EXPECT_TRUE(st.IsInvalidArgument());
}

// ---------------------------------------------------------------------------
// Observability: --stats riders and the stats command. Each golden resets
// the registry first; the rider rendering skips zero series and histograms,
// so the report is an exact function of the dispatched workload.
// ---------------------------------------------------------------------------

/// The report section appended after `marker`, or "" if absent.
std::string SectionAfter(const std::string& out, const std::string& marker) {
  std::size_t pos = out.find(marker);
  return pos == std::string::npos ? "" : out.substr(pos + marker.size());
}

/// Every stats render carries the build-info gauge (value 1, identity in
/// the labels); the goldens parametrize on the build like they do for the
/// kernel variant.
std::string BuildInfoPromGolden() {
  return "# HELP infoleak_build_info Build identity (value is always 1; "
         "the info lives in the labels)\n"
         "# TYPE infoleak_build_info gauge\n"
         "infoleak_build_info{simd=\"" +
         std::string(kern::Active().name) + "\",tracing=\"" +
         (INFOLEAK_TRACING_ENABLED ? "on" : "off") + "\",version=\"" +
         std::string(obs::BuildVersion()) + "\"} 1\n";
}

std::string BuildInfoJsonGolden() {
  return "{\"name\":\"infoleak_build_info\",\"labels\":{\"simd\":\"" +
         std::string(kern::Active().name) + "\",\"tracing\":\"" +
         (INFOLEAK_TRACING_ENABLED ? "on" : "off") + "\",\"version\":\"" +
         std::string(obs::BuildVersion()) + "\"},\"value\":1}";
}

TEST(CliStatsTest, LeakageStatsPrometheusGolden) {
  obs::MetricsRegistry::Global().ResetAll();
  std::string out;
  Status st = cli::Dispatch(
      {"leakage", "--db-csv", kSection24Db, "--reference-text",
       "{<N, Alice>, <P, 123>, <C, 999>, <Z, 111>}", "--engine", "exact",
       "--stats"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // 3 records scored twice (per-record report + set-leakage pass), all on
  // the prepared path.
  const std::string expected =
      "# HELP infoleak_cli_commands_total CLI commands dispatched\n"
      "# TYPE infoleak_cli_commands_total counter\n"
      "infoleak_cli_commands_total{command=\"leakage\"} 1\n"
      "# HELP infoleak_eval_path_total Record evaluations by API path: "
      "prepared fast path vs string adapter/fallback\n"
      "# TYPE infoleak_eval_path_total counter\n"
      "infoleak_eval_path_total{path=\"prepared\"} 6\n"
      "# HELP infoleak_kernel_dispatch_total Array-kernel invocations by "
      "dispatched variant (scalar / avx2 / avx512; forced scalar via "
      "INFOLEAK_FORCE_SCALAR)\n"
      "# TYPE infoleak_kernel_dispatch_total counter\n"
      "infoleak_kernel_dispatch_total{variant=\"" +
      std::string(kern::Active().name) + "\"} 6\n"
      "# HELP infoleak_leakage_evaluations_total Record-leakage evaluations "
      "per engine (the hot-loop unit of work)\n"
      "# TYPE infoleak_leakage_evaluations_total counter\n"
      "infoleak_leakage_evaluations_total{engine=\"exact\"} 6\n" +
      BuildInfoPromGolden() +
      "# HELP infoleak_prepared_path_hit_ratio Fraction of record "
      "evaluations served by the prepared fast path\n"
      "# TYPE infoleak_prepared_path_hit_ratio gauge\n"
      "infoleak_prepared_path_hit_ratio 1\n";
  EXPECT_EQ(SectionAfter(out, "--- metrics ---\n"), expected) << out;
}

TEST(CliStatsTest, LeakageStatsJsonGolden) {
  obs::MetricsRegistry::Global().ResetAll();
  std::string out;
  Status st = cli::Dispatch(
      {"leakage", "--db-csv", kSection24Db, "--reference-text",
       "{<N, Alice>, <P, 123>, <C, 999>, <Z, 111>}", "--engine", "exact",
       "--stats", "--stats-format", "json"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"infoleak_cli_commands_total\","
      "\"labels\":{\"command\":\"leakage\"},\"value\":1},"
      "{\"name\":\"infoleak_eval_path_total\","
      "\"labels\":{\"path\":\"prepared\"},\"value\":6},"
      "{\"name\":\"infoleak_kernel_dispatch_total\","
      "\"labels\":{\"variant\":\"" + std::string(kern::Active().name) +
      "\"},\"value\":6},"
      "{\"name\":\"infoleak_leakage_evaluations_total\","
      "\"labels\":{\"engine\":\"exact\"},\"value\":6}"
      "],\"gauges\":[" +
      BuildInfoJsonGolden() +
      ",{\"name\":\"infoleak_prepared_path_hit_ratio\","
      "\"labels\":{},\"value\":1}"
      "],\"histograms\":[]}";
  EXPECT_EQ(SectionAfter(out, "--- metrics ---\n"), expected) << out;
}

TEST(CliStatsTest, ErStatsPrometheusGolden) {
  obs::MetricsRegistry::Global().ResetAll();
  std::string out;
  Status st = cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--resolver", "transitive", "--stats"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // 3 records, full closure: C(3,2) = 3 candidate pairs, 3 match calls,
  // Alice's two records merge once.
  const std::string expected =
      "# HELP infoleak_cli_commands_total CLI commands dispatched\n"
      "# TYPE infoleak_cli_commands_total counter\n"
      "infoleak_cli_commands_total{command=\"er\"} 1\n"
      "# HELP infoleak_er_candidate_pairs_total Candidate record pairs "
      "generated (before dedup and connectivity short-circuits)\n"
      "# TYPE infoleak_er_candidate_pairs_total counter\n"
      "infoleak_er_candidate_pairs_total{resolver=\"transitive\"} 3\n"
      "# HELP infoleak_er_match_calls_total Pairwise match-function "
      "evaluations actually made\n"
      "# TYPE infoleak_er_match_calls_total counter\n"
      "infoleak_er_match_calls_total{resolver=\"transitive\"} 3\n"
      "# HELP infoleak_er_merges_total Record merges performed\n"
      "# TYPE infoleak_er_merges_total counter\n"
      "infoleak_er_merges_total{resolver=\"transitive\"} 1\n"
      "# HELP infoleak_er_runs_total Entity-resolution runs\n"
      "# TYPE infoleak_er_runs_total counter\n"
      "infoleak_er_runs_total{resolver=\"transitive\"} 1\n" +
      BuildInfoPromGolden();
  EXPECT_EQ(SectionAfter(out, "--- metrics ---\n"), expected) << out;
}

TEST(CliStatsTest, ErStatsJsonGolden) {
  obs::MetricsRegistry::Global().ResetAll();
  std::string out;
  Status st = cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--resolver", "transitive", "--stats",
                             "--stats-format", "json"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  const std::string expected =
      "{\"counters\":["
      "{\"name\":\"infoleak_cli_commands_total\","
      "\"labels\":{\"command\":\"er\"},\"value\":1},"
      "{\"name\":\"infoleak_er_candidate_pairs_total\","
      "\"labels\":{\"resolver\":\"transitive\"},\"value\":3},"
      "{\"name\":\"infoleak_er_match_calls_total\","
      "\"labels\":{\"resolver\":\"transitive\"},\"value\":3},"
      "{\"name\":\"infoleak_er_merges_total\","
      "\"labels\":{\"resolver\":\"transitive\"},\"value\":1},"
      "{\"name\":\"infoleak_er_runs_total\","
      "\"labels\":{\"resolver\":\"transitive\"},\"value\":1}"
      "],\"gauges\":[" +
      BuildInfoJsonGolden() +
      "],\"histograms\":[]}";
  EXPECT_EQ(SectionAfter(out, "--- metrics ---\n"), expected) << out;
}

TEST(CliStatsTest, StatsCommandRendersRegistry) {
  obs::MetricsRegistry::Global().ResetAll();
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--resolver", "transitive"},
                            &out)
                  .ok());
  out.clear();
  Status st = cli::Dispatch(
      {"stats", "--format", "json", "--skip-zero", "--skip-histograms"},
      &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  // The stats dispatch itself is counted before rendering.
  EXPECT_NE(out.find("{\"name\":\"infoleak_cli_commands_total\","
                     "\"labels\":{\"command\":\"stats\"},\"value\":1}"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("infoleak_er_runs_total"), std::string::npos) << out;

  out.clear();
  st = cli::Dispatch({"stats", "--skip-zero", "--skip-histograms"}, &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("# TYPE infoleak_er_runs_total counter"),
            std::string::npos)
      << out;
}

TEST(CliStatsTest, StatsFormatIsValidated) {
  std::string out;
  EXPECT_TRUE(cli::Dispatch({"stats", "--format", "xml"}, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--stats", "--stats-format", "yaml"},
                            &out)
                  .IsInvalidArgument());
}

TEST(CliStatsTest, TraceRiderAppendsSummary) {
  std::string out;
  Status st = cli::Dispatch({"er", "--db-csv", kSection24Db, "--match-rules",
                             "N", "--resolver", "transitive", "--trace"},
                            &out);
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_NE(out.find("--- trace ---"), std::string::npos) << out;
#if INFOLEAK_TRACING_ENABLED
  EXPECT_NE(out.find("er/transitive"), std::string::npos) << out;
#endif
}

}  // namespace
}  // namespace infoleak
