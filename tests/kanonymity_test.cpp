#include "anon/kanonymity.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

/// Table 1 of the paper (patients).
Table PaperTable1() {
  auto t = Table::Create({"Name", "Zip", "Age", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"Alice", "111", "30", "Heart"}).ok());
  EXPECT_TRUE(t->AddRow({"Bob", "112", "31", "Breast"}).ok());
  EXPECT_TRUE(t->AddRow({"Carol", "115", "33", "Cancer"}).ok());
  EXPECT_TRUE(t->AddRow({"Dave", "222", "50", "Hair"}).ok());
  EXPECT_TRUE(t->AddRow({"Pat", "299", "70", "Flu"}).ok());
  EXPECT_TRUE(t->AddRow({"Zoe", "241", "60", "Flu"}).ok());
  return std::move(t).value();
}

TEST(EquivalenceClassesTest, GroupsByQuasiIdentifiers) {
  Table t = PaperTable1();
  auto classes = EquivalenceClasses(t, {"Zip", "Age"});
  ASSERT_TRUE(classes.ok());
  EXPECT_EQ(classes->size(), 6u);  // all distinct before generalization
  auto by_disease = EquivalenceClasses(t, {"Disease"});
  ASSERT_TRUE(by_disease.ok());
  EXPECT_EQ(by_disease->size(), 5u);  // two Flu rows share a class
}

TEST(EquivalenceClassesTest, UnknownColumnFails) {
  Table t = PaperTable1();
  EXPECT_FALSE(EquivalenceClasses(t, {"Ghost"}).ok());
}

TEST(IsKAnonymousTest, RawTableIsNotThreeAnonymous) {
  Table t = PaperTable1();
  auto anon = IsKAnonymous(t, {"Zip", "Age"}, 3);
  ASSERT_TRUE(anon.ok());
  EXPECT_FALSE(*anon);
  // Every table is 1-anonymous.
  EXPECT_TRUE(IsKAnonymous(t, {"Zip", "Age"}, 1).value());
}

TEST(GeneralizeTableTest, ReproducesPaperTable2) {
  // Zip suppressed progressively; age to "3*" / ">=50" buckets. With zip at
  // level 1 for the 11x group we'd get 11*; the paper's Table 2 uses
  // heterogeneous suppression (11* vs 2**) which full-domain generalization
  // approximates by the coarser level for all rows of a column. We check
  // the exact Table 2 cells through a MappingHierarchy instead.
  Table t = PaperTable1();
  auto no_names = t.DropColumns({"Name"});
  ASSERT_TRUE(no_names.ok());

  MappingHierarchy zip(1);
  zip.AddMapping(1, "111", "11*");
  zip.AddMapping(1, "112", "11*");
  zip.AddMapping(1, "115", "11*");
  zip.AddMapping(1, "222", "2**");
  zip.AddMapping(1, "299", "2**");
  zip.AddMapping(1, "241", "2**");
  MappingHierarchy age(1);
  age.AddMapping(1, "30", "3*");
  age.AddMapping(1, "31", "3*");
  age.AddMapping(1, "33", "3*");
  age.AddMapping(1, "50", ">=50");
  age.AddMapping(1, "70", ">=50");
  age.AddMapping(1, "60", ">=50");

  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};
  auto table2 = GeneralizeTable(*no_names, qis, {1, 1});
  ASSERT_TRUE(table2.ok());
  EXPECT_EQ(table2->Cell(0, "Zip").value(), "11*");
  EXPECT_EQ(table2->Cell(0, "Age").value(), "3*");
  EXPECT_EQ(table2->Cell(3, "Zip").value(), "2**");
  EXPECT_EQ(table2->Cell(3, "Age").value(), ">=50");

  // Table 2 is 3-anonymous with two equivalence classes of size 3.
  auto anon = IsKAnonymous(*table2, {"Zip", "Age"}, 3);
  ASSERT_TRUE(anon.ok());
  EXPECT_TRUE(*anon);
  auto classes = EquivalenceClasses(*table2, {"Zip", "Age"});
  ASSERT_TRUE(classes.ok());
  ASSERT_EQ(classes->size(), 2u);
  EXPECT_EQ((*classes)[0].size(), 3u);
  EXPECT_EQ((*classes)[1].size(), 3u);
}

TEST(GeneralizeTableTest, ValidatesInputs) {
  Table t = PaperTable1();
  SuffixSuppressionHierarchy zip(3);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}};
  EXPECT_FALSE(GeneralizeTable(t, qis, {1, 2}).ok());  // arity mismatch
  std::vector<QuasiIdentifier> null_qi{{"Zip", nullptr}};
  EXPECT_FALSE(GeneralizeTable(t, null_qi, {1}).ok());
  std::vector<QuasiIdentifier> bad_col{{"Ghost", &zip}};
  EXPECT_FALSE(GeneralizeTable(t, bad_col, {1}).ok());
}

TEST(MinimalGeneralizationTest, FindsMinimalLevels) {
  Table t = PaperTable1();
  auto no_names = t.DropColumns({"Name"});
  ASSERT_TRUE(no_names.ok());
  SuffixSuppressionHierarchy zip(3);
  IntervalHierarchy age({10, 50}, /*clamp_at=*/-1);
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};
  auto result = MinimalFullDomainGeneralization(*no_names, qis, 3);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(
      IsKAnonymous(result->table, {"Zip", "Age"}, 3).value());
  // Minimality: no level vector with smaller sum achieves 3-anonymity.
  // (zip level 2 + age level 1 works: zips 1**/2**, ages by decade... ages
  // 30,31,33 -> [30-40); 50,70,60 -> distinct decades, so age needs level 2.)
  int total = result->levels[0] + result->levels[1];
  EXPECT_LE(total, 4);
  EXPECT_GE(total, 3);
}

TEST(MinimalGeneralizationTest, ZeroGeneralizationWhenAlreadyAnonymous) {
  auto t = Table::Create({"A", "B"});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t->AddRow({"x", "y"}).ok());
  SuffixSuppressionHierarchy h(1);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  auto result = MinimalFullDomainGeneralization(*t, qis, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{0});
}

TEST(MinimalGeneralizationTest, FailsWhenTableTooSmall) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"x"}).ok());
  SuffixSuppressionHierarchy h(1);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  EXPECT_TRUE(
      MinimalFullDomainGeneralization(*t, qis, 2).status().IsNotFound());
}

TEST(MinimalGeneralizationTest, FullSuppressionAsLastResort) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"x1"}).ok());
  ASSERT_TRUE(t->AddRow({"y2"}).ok());
  SuffixSuppressionHierarchy h(2);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  auto result = MinimalFullDomainGeneralization(*t, qis, 2);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{2});  // "**" for both rows
}

}  // namespace
}  // namespace infoleak
