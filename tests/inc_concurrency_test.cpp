#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/leakage.h"
#include "core/record_io.h"
#include "inc/change_feed.h"
#include "inc/leakage_index.h"
#include "persist/durable_store.h"
#include "store/record_store.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/service.h"

namespace infoleak {
namespace {

namespace fs = std::filesystem;

Record MakeRecord(int person, double conf) {
  Record r;
  r.Insert(Attribute("N", "person" + std::to_string(person), conf));
  r.Insert(Attribute("C", "city" + std::to_string(person % 7), 0.9));
  return r;
}

/// Spin-latch so all sides enter their loops together (see
/// store_concurrency_test.cpp for why both sides do fixed work: glibc's
/// shared_mutex prefers readers, so loops conditioned on another thread's
/// progress can starve under contention).
class StartGate {
 public:
  void ArriveAndWait() {
    arrived_.fetch_add(1, std::memory_order_acq_rel);
    while (!open_.load(std::memory_order_acquire)) {
    }
  }
  void OpenWhen(int expected) {
    while (arrived_.load(std::memory_order_acquire) < expected) {
    }
    open_.store(true, std::memory_order_release);
  }

 private:
  std::atomic<int> arrived_{0};
  std::atomic<bool> open_{false};
};

svc::Request Req(const std::string& line) {
  auto parsed = svc::ParseRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

// The tentpole contract of this PR: the change feed, the indexes it
// maintains, and the store/service around them are safe under concurrent
// append / query / compact. These tests are most meaningful under TSan
// (they are in ci.sh's TSan regex), but plain runs still exercise the lock
// order and the bit-identity invariants.

TEST(IncConcurrencyTest, AppendsRaceIndexQueriesSafely) {
  RecordStore store;
  inc::ChangeFeed feed;
  store.SetChangeFeed(&feed);
  AutoLeakage engine;
  auto index = std::make_shared<inc::LeakageIndex>(
      MakeRecord(1, 1.0), WeightModel(), &engine, &feed);
  feed.Register(index);

  StartGate gate;
  constexpr int kAppends = 1500;
  constexpr int kQueries = 400;

  std::thread writer([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < kAppends; ++i) {
      store.Append(MakeRecord(i % 40, 0.5 + 0.5 * ((i % 4) / 3.0)));
    }
  });
  std::thread reader([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < kQueries; ++i) {
      auto ans = store.SetLeakIndexed(*index);
      if (ans.ok()) {
        // The answer must be internally consistent even mid-append.
        EXPECT_GE(ans->argmax, ans->records == 0 ? -1 : 0);
        EXPECT_LT(static_cast<std::size_t>(ans->argmax + 1),
                  ans->records + 1);
      }
    }
  });
  gate.OpenWhen(2);
  writer.join();
  reader.join();

  // Quiesced: the index answer equals a cold scan of the final store.
  auto final_ans = store.SetLeakIndexed(*index);
  ASSERT_TRUE(final_ans.ok());
  EXPECT_EQ(final_ans->records, static_cast<std::size_t>(kAppends));
  store.SetChangeFeed(nullptr);
  feed.Shutdown();
}

TEST(IncConcurrencyTest, EpochBumpsRaceAppendsAndQueriesSafely) {
  RecordStore store;
  inc::ChangeFeed feed;
  store.SetChangeFeed(&feed);
  AutoLeakage engine;
  inc::IndexOptions options;
  options.maintenance_chunk = 64;
  auto index = std::make_shared<inc::LeakageIndex>(
      MakeRecord(1, 1.0), WeightModel(), &engine, &feed, options,
      [&store](inc::LeakageIndex& idx) { return store.MaintainIndex(idx); });
  feed.Register(index);

  StartGate gate;
  std::thread writer([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < 800; ++i) {
      store.Append(MakeRecord(i % 25, 1.0));
    }
  });
  std::thread bumper([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < 20; ++i) {
      feed.PublishEpochBump("test");
      std::this_thread::yield();
    }
  });
  std::thread reader([&] {
    gate.ArriveAndWait();
    for (int i = 0; i < 200; ++i) {
      (void)store.SetLeakIndexed(*index);
      (void)index->Stats();
      (void)index->EventsAfter(0, 32);
    }
  });
  gate.OpenWhen(3);
  writer.join();
  bumper.join();
  reader.join();

  // After the dust settles the index must still converge to the truth.
  auto ans = store.SetLeakIndexed(*index);
  if (!ans.ok()) {  // too far behind: let maintenance finish the rebuild
    for (int i = 0; i < 1000 && !store.MaintainIndex(*index); ++i) {
    }
    ans = store.SetLeakIndexed(*index);
  }
  ASSERT_TRUE(ans.ok()) << ans.status().ToString();
  EXPECT_EQ(ans->records, 800u);
  store.SetChangeFeed(nullptr);
  feed.Shutdown();
}

TEST(IncConcurrencyTest, ServedCompactRacesAppendsAndSetLeaks) {
  const std::string dir =
      (fs::temp_directory_path() / "infoleak-inc-conc-test").string();
  std::error_code ec;
  fs::remove_all(dir, ec);
  persist::DurableStore::Options options;
  options.fsync = persist::FsyncMode::kNever;
  auto durable = persist::DurableStore::Open(dir, options);
  ASSERT_TRUE(durable.ok()) << durable.status().ToString();

  {
    svc::LeakageService service(durable->get());
    const std::string reference = FormatRecord(MakeRecord(3, 1.0));
    const std::string set_leak_line =
        std::string(R"({"verb":"set-leak","reference":)") +
        svc::JsonQuote(reference) + "}";

    StartGate gate;
    std::thread writer([&] {
      gate.ArriveAndWait();
      for (int i = 0; i < 300; ++i) {
        const std::string line =
            std::string(R"({"verb":"append","record":)") +
            svc::JsonQuote(FormatRecord(MakeRecord(i % 20, 1.0))) + "}";
        service.Handle(Req(line));
      }
    });
    std::thread compactor([&] {
      gate.ArriveAndWait();
      for (int i = 0; i < 6; ++i) {
        service.Handle(Req(R"({"verb":"compact"})"));
      }
    });
    std::thread querier([&] {
      gate.ArriveAndWait();
      for (int i = 0; i < 150; ++i) {
        std::string wire_code;
        service.Handle(Req(set_leak_line), {}, &wire_code);
        EXPECT_TRUE(wire_code.empty()) << wire_code;  // scan fallback hides
                                                      // any index rebuild
      }
    });
    gate.OpenWhen(3);
    writer.join();
    compactor.join();
    querier.join();

    // Epoch fencing after the racing compacts: a fresh query still answers,
    // and its record count covers every acknowledged append.
    std::string wire_code;
    const std::string line = service.Handle(Req(set_leak_line), {}, &wire_code);
    EXPECT_TRUE(wire_code.empty()) << line;
    auto parsed = svc::ParseJson(line);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->GetNumber("records", -1.0), 300.0);
  }
  durable->reset();
  fs::remove_all(dir, ec);
}

}  // namespace
}  // namespace infoleak
