#include "inc/leakage_index.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/column_bank.h"
#include "core/database.h"
#include "core/leakage.h"
#include "core/measure_family.h"
#include "core/record_io.h"
#include "inc/change_feed.h"
#include "obs/metrics.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace infoleak::inc {
namespace {

Record Rec(const std::string& text) {
  auto r = ParseRecord(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

WeightModel Weights(const std::string& spec = "") {
  auto wm = WeightModel::Parse(spec);
  EXPECT_TRUE(wm.ok()) << wm.status().ToString();
  return std::move(wm).value();
}

/// A deterministic database with a spread of leakage values against the
/// reference below: some full matches, partial matches, and misses.
Database SeededDb(std::size_t n, uint64_t seed = 42) {
  Rng rng(seed);
  Database db;
  for (std::size_t i = 0; i < n; ++i) {
    const int shape = static_cast<int>(rng.NextBounded(4));
    const double conf = 0.25 + 0.25 * static_cast<double>(rng.NextBounded(4));
    std::string text;
    switch (shape) {
      case 0:
        text = "{<N, alice, " + FormatDoubleRoundTrip(conf) + ">}";
        break;
      case 1:
        text = "{<N, alice, 1>, <C, rome, " + FormatDoubleRoundTrip(conf) +
               ">}";
        break;
      case 2:
        text = "{<N, bob" + std::to_string(rng.NextBounded(8)) + ", 1>}";
        break;
      default:
        text = "{<N, alice, 1>, <C, rome, 1>, <P, 123, " +
               FormatDoubleRoundTrip(conf) + ">}";
        break;
    }
    db.Add(Rec(text));
  }
  return db;
}

const char* kReference = "{<N, alice, 1>, <C, rome, 1>, <P, 123, 1>}";

/// Index answers must be bit-identical to a cold columnar scan of the same
/// records, whichever engine maintains them.
TEST(IncIndexTest, QueryMatchesColdRescanBitExactly) {
  const Database db = SeededDb(200);
  const Record p = Rec(kReference);
  AutoLeakage auto_engine;
  ExactLeakage exact_engine;
  ApproxLeakage approx_engine;
  const LeakageEngine* engines[] = {&auto_engine, &exact_engine,
                                    &approx_engine};
  for (const LeakageEngine* engine : engines) {
    // exact only accepts uniform weights; the others get a skewed model so
    // the comparison covers weighted arithmetic too.
    const WeightModel wm =
        engine == &exact_engine ? Weights() : Weights("N=2,C=1,P=3");
    const PreparedReference prep(p, wm);
    ColumnBank bank(prep);
    bank.ExtendFrom(db);
    std::ptrdiff_t want_argmax = -1;
    auto want = SetLeakageColumnar(bank, *engine, &want_argmax);
    ASSERT_TRUE(want.ok()) << engine->name();

    LeakageIndex index(p, wm, engine, /*feed=*/nullptr);
    auto got = index.QueryLocked(db);
    ASSERT_TRUE(got.ok()) << engine->name() << ": " << got.status().ToString();
    EXPECT_EQ(got->leakage, *want) << engine->name();  // exact, not near
    EXPECT_EQ(got->argmax, want_argmax) << engine->name();
    EXPECT_EQ(got->records, db.size());
  }
}

/// The measure-family engines (core/measure_family.h) maintain indexes too:
/// per measure, the indexed answer must be bit-identical to a cold columnar
/// scan under the same engine — and never a stale default-measure value.
TEST(IncIndexTest, MeasureEngineQueriesMatchColdRescanBitExactly) {
  const Database db = SeededDb(200);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights("N=2,C=1,P=3");
  for (Measure m : {Measure::kPml, Measure::kGuesswork, Measure::kUnder,
                    Measure::kOver}) {
    const LeakageEngine* engine = MeasureEngineSingleton(m);
    ASSERT_NE(engine, nullptr);
    const PreparedReference prep(p, wm);
    ColumnBank bank(prep);
    bank.ExtendFrom(db);
    std::ptrdiff_t want_argmax = -1;
    auto want = SetLeakageColumnar(bank, *engine, &want_argmax);
    ASSERT_TRUE(want.ok()) << engine->name();

    LeakageIndex index(p, wm, engine, /*feed=*/nullptr);
    auto got = index.QueryLocked(db);
    ASSERT_TRUE(got.ok()) << engine->name() << ": " << got.status().ToString();
    EXPECT_EQ(got->leakage, *want) << engine->name();  // exact, not near
    EXPECT_EQ(got->argmax, want_argmax) << engine->name();
    EXPECT_EQ(got->records, db.size());
  }
}

/// Guards the engine-identity keying: an index maintained under pml must
/// not answer with the default measure's value. Every record here keeps a
/// partial confidence, so the world maximum strictly exceeds the
/// expectation and any cross-contamination shows up as a value mismatch.
TEST(IncIndexTest, MeasureIndexNeverServesStaleDefaultAnswers) {
  Database db;
  db.Add(Rec("{<N, alice, 0.5>, <C, rome, 0.5>}"));
  db.Add(Rec("{<N, alice, 0.75>, <P, 123, 0.25>}"));
  db.Add(Rec("{<C, rome, 0.5>}"));
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage auto_engine;
  LeakageIndex default_index(p, wm, &auto_engine, nullptr);
  LeakageIndex pml_index(p, wm, MeasureEngineSingleton(Measure::kPml),
                         nullptr);
  auto expected = default_index.QueryLocked(db);
  auto pml = pml_index.QueryLocked(db);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(pml.ok());
  EXPECT_NE(pml->leakage, expected->leakage)
      << "pml index returned the default measure's answer";
  EXPECT_GE(pml->leakage, expected->leakage);  // family ordering on the max
}

/// Record-at-a-time maintenance under a measure engine lands on the same
/// bits as the one-shot catch-up — the append path has no measure-specific
/// code, and this keeps it that way.
TEST(IncIndexTest, MeasureEngineAppendsMatchOneShotCatchup) {
  const Database db = SeededDb(120, 7);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  const LeakageEngine* engine = MeasureEngineSingleton(Measure::kGuesswork);

  LeakageIndex one_shot(p, wm, engine, nullptr);
  auto want = one_shot.QueryLocked(db);
  ASSERT_TRUE(want.ok());

  LeakageIndex stepped(p, wm, engine, nullptr);
  for (std::size_t i = 0; i < db.size(); ++i) {
    AppendDelta delta{static_cast<RecordId>(i), &db[i]};
    stepped.OnAppend(delta);
  }
  auto got = stepped.QueryLocked(db);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->leakage, want->leakage);
  EXPECT_EQ(got->argmax, want->argmax);
  EXPECT_EQ(stepped.Stats().covered, db.size());
}

TEST(IncIndexTest, IncrementalAppendsMatchOneShotCatchup) {
  // Record-at-a-time maintenance (the OnAppend path) must land on the same
  // bits as one big catch-up, and as the cold scan.
  const Database db = SeededDb(120, 7);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;

  LeakageIndex one_shot(p, wm, &engine, nullptr);
  auto want = one_shot.QueryLocked(db);
  ASSERT_TRUE(want.ok());

  LeakageIndex stepped(p, wm, &engine, nullptr);
  for (std::size_t i = 0; i < db.size(); ++i) {
    AppendDelta delta{static_cast<RecordId>(i), &db[i]};
    stepped.OnAppend(delta);
  }
  auto got = stepped.QueryLocked(db);  // no gap left: pure lookup
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->leakage, want->leakage);
  EXPECT_EQ(got->argmax, want->argmax);
  EXPECT_EQ(stepped.Stats().covered, db.size());
}

TEST(IncIndexTest, OutOfOrderAppendIsIgnoredAndCatchupHeals) {
  const Database db = SeededDb(30, 3);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  LeakageIndex index(p, wm, &engine, nullptr);

  // A delta from the future (id 5 while the index covers 0) must not apply:
  // applying it would mint a wrong record_id -> leakage association.
  AppendDelta future{static_cast<RecordId>(5), &db[5]};
  index.OnAppend(future);
  EXPECT_EQ(index.Stats().covered, 0u);

  auto got = index.QueryLocked(db);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->records, db.size());
}

TEST(IncIndexTest, BoundSkipFiresAndNeverChangesTheAnswer) {
  // Strong matches first, then a long tail of weak records: once the top-k
  // fills with strong values, the tail's upper bounds prove it can't enter.
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  Database db;
  for (int i = 0; i < 8; ++i) {
    db.Add(Rec("{<N, alice, 1>, <C, rome, 1>, <P, 123, 1>}"));
  }
  for (int i = 0; i < 200; ++i) {
    db.Add(Rec("{<N, alice, 0.25>}"));  // weak: one low-confidence attr
  }
  ApproxLeakage engine;
  IndexOptions options;
  options.top_k = 4;
  LeakageIndex index(p, wm, &engine, nullptr, options);
  auto got = index.QueryLocked(db);
  ASSERT_TRUE(got.ok());
  const IndexStats stats = index.Stats();
  EXPECT_GT(stats.bound_skips, 0u) << "the skip never fired";
  // Process-wide proof the counter is wired up.
  EXPECT_GT(obs::MetricsRegistry::Global()
                .GetCounter("infoleak_inc_bound_skips_total")
                .Value(),
            0u);

  const PreparedReference prep(p, wm);
  ColumnBank bank(prep);
  bank.ExtendFrom(db);
  std::ptrdiff_t want_argmax = -1;
  auto want = SetLeakageColumnar(bank, engine, &want_argmax);
  ASSERT_TRUE(want.ok());
  EXPECT_EQ(got->leakage, *want);
  EXPECT_EQ(got->argmax, want_argmax);
}

TEST(IncIndexTest, StructuralErrorEnginesNeverSkip) {
  // naive's record-size cap errors are invisible to the bounds, so the
  // index must evaluate every record (and poison on the first error) —
  // exactly what a cold scan would report.
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  Database db;
  db.Add(Rec("{<N, alice, 1>}"));
  db.Add(Rec("{<N, alice, 1>, <C, rome, 1>, <P, 123, 1>}"));  // over the cap
  NaiveLeakage tiny(/*max_attributes=*/2);
  LeakageIndex index(p, wm, &tiny, nullptr);
  auto got = index.QueryLocked(db);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsFailedPrecondition()) << got.status().ToString();

  const IndexStats stats = index.Stats();
  EXPECT_TRUE(stats.poisoned);
  EXPECT_FALSE(stats.poison_detail.empty());
  EXPECT_EQ(stats.bound_skips, 0u);

  // The fallback scan reproduces the same first error.
  const PreparedReference prep(p, wm);
  ColumnBank bank(prep);
  bank.ExtendFrom(db);
  auto scan = SetLeakageColumnar(bank, tiny, nullptr);
  EXPECT_FALSE(scan.ok());

  // Poison is permanent: later queries keep refusing.
  EXPECT_TRUE(index.QueryLocked(db).status().IsFailedPrecondition());
}

TEST(IncIndexTest, EpochBumpResetsAndRebuildRestoresTheAnswer) {
  const Database db = SeededDb(60, 11);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  LeakageIndex index(p, wm, &engine, nullptr);
  auto before = index.QueryLocked(db);
  ASSERT_TRUE(before.ok());

  index.OnEpochBump(3, "compact");
  IndexStats stats = index.Stats();
  EXPECT_EQ(stats.epoch, 3u);
  EXPECT_EQ(stats.covered, 0u);

  // Background-style rebuild in chunks, then a pure-lookup query.
  while (!index.MaintainChunkLocked(db)) {
  }
  auto after = index.QueryLocked(db);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->leakage, before->leakage);
  EXPECT_EQ(after->argmax, before->argmax);
  EXPECT_EQ(index.Stats().epoch, 3u);
}

TEST(IncIndexTest, TooFarBehindRefusesInlineCatchup) {
  const Database db = SeededDb(50, 5);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  IndexOptions options;
  options.inline_catchup_max = 10;
  LeakageIndex index(p, wm, &engine, nullptr, options);
  auto got = index.QueryLocked(db);
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsFailedPrecondition());

  // Maintenance closes the gap; the query then succeeds as a lookup.
  while (!index.MaintainChunkLocked(db)) {
  }
  EXPECT_TRUE(index.QueryLocked(db).ok());
}

TEST(IncIndexTest, EventsAfterHonorsCursorAndRingCapacity) {
  const Database db = SeededDb(40, 9);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  IndexOptions options;
  options.event_capacity = 16;
  LeakageIndex index(p, wm, &engine, nullptr, options);
  ASSERT_TRUE(index.QueryLocked(db).ok());

  // 40 applies into a 16-slot ring: the oldest 24 are gone, and the batch
  // reports how many.
  auto batch = index.EventsAfter(/*after_seq=*/0, /*max_events=*/100);
  EXPECT_EQ(batch.events.size(), 16u);
  EXPECT_EQ(batch.dropped, 24u);
  EXPECT_EQ(batch.covered, db.size());
  ASSERT_FALSE(batch.events.empty());
  EXPECT_EQ(batch.events.front().seq, 25u);  // seq is 1-based

  // Cursor semantics: strictly-after, oldest first, capped count.
  auto tail = index.EventsAfter(/*after_seq=*/30, /*max_events=*/4);
  ASSERT_EQ(tail.events.size(), 4u);
  EXPECT_EQ(tail.events.front().seq, 31u);
  EXPECT_EQ(tail.events.back().seq, 34u);
  // Sequences keep climbing across the ring: monotonic per index.
  uint64_t prev = 0;
  for (const DeltaEvent& e : batch.events) {
    EXPECT_GT(e.seq, prev);
    prev = e.seq;
  }
}

TEST(IncIndexTest, EventsCarryTheRunningSetLeakage) {
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  Database db;
  db.Add(Rec("{<N, alice, 0.5>}"));
  db.Add(Rec("{<N, alice, 1>, <C, rome, 1>, <P, 123, 1>}"));
  db.Add(Rec("{<N, alice, 0.25>}"));
  AutoLeakage engine;
  LeakageIndex index(p, wm, &engine, nullptr);
  ASSERT_TRUE(index.QueryLocked(db).ok());
  auto batch = index.EventsAfter(0, 10);
  ASSERT_EQ(batch.events.size(), 3u);
  EXPECT_EQ(batch.events[0].argmax, 0);
  EXPECT_EQ(batch.events[1].argmax, 1);  // the full match takes over
  EXPECT_EQ(batch.events[2].argmax, 1);  // and keeps the crown
  EXPECT_EQ(batch.events[2].set_leakage, batch.events[1].set_leakage);
  EXPECT_GE(batch.events[1].leakage, batch.events[0].leakage);
}

// ----- ChangeFeed ----------------------------------------------------------

/// Registered sinks must survive publishes (a weak_ptr self-move once
/// emptied the registry on every publish) and receive each delta once.
TEST(IncFeedTest, PublishKeepsLiveSinksRegistered) {
  const Database db = SeededDb(10, 21);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  ChangeFeed feed;
  auto index = std::make_shared<LeakageIndex>(p, wm, &engine, &feed);
  feed.Register(index);
  ASSERT_EQ(feed.registered(), 1u);

  for (std::size_t i = 0; i < db.size(); ++i) {
    AppendDelta delta{static_cast<RecordId>(i), &db[i]};
    feed.PublishAppend(delta);
    ASSERT_EQ(feed.registered(), 1u) << "publish dropped a live sink";
  }
  EXPECT_EQ(feed.sequence(), db.size());
  EXPECT_EQ(index->Stats().covered, db.size());
  feed.Shutdown();
}

TEST(IncFeedTest, DeadSinksArePrunedAndEpochBumpsFanOut) {
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  ChangeFeed feed;
  auto a = std::make_shared<LeakageIndex>(p, wm, &engine, &feed);
  auto b = std::make_shared<LeakageIndex>(p, wm, &engine, &feed);
  feed.Register(a);
  feed.Register(b);
  EXPECT_EQ(feed.registered(), 2u);
  b.reset();  // simulate cache eviction: the feed holds sinks weakly

  const uint64_t epoch = feed.PublishEpochBump("test");
  EXPECT_EQ(epoch, feed.epoch());
  EXPECT_EQ(feed.registered(), 1u);
  EXPECT_EQ(a->Stats().epoch, epoch);
  feed.Shutdown();
}

TEST(IncFeedTest, MaintenanceThreadRunsTheMaintainerHook) {
  const Database db = SeededDb(64, 31);
  const Record p = Rec(kReference);
  const WeightModel wm = Weights();
  AutoLeakage engine;
  ChangeFeed feed;
  IndexOptions options;
  options.maintenance_chunk = 16;
  auto index = std::make_shared<LeakageIndex>(
      p, wm, &engine, &feed, options,
      [&db](LeakageIndex& idx) { return idx.MaintainChunkLocked(db); });
  feed.Register(index);
  feed.RequestMaintenance(index);
  // The maintenance thread re-enqueues until the index reports done.
  for (int i = 0; i < 200 && index->Stats().covered < db.size(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(index->Stats().covered, db.size());
  feed.Shutdown();
}

TEST(IncFeedTest, WaitForSequenceReturnsOnPublishAndOnTimeout) {
  ChangeFeed feed;
  // Timeout path: nothing publishes.
  EXPECT_EQ(feed.WaitForSequence(feed.sequence(), /*timeout_ms=*/20, {}),
            feed.sequence());
  // Publish path: a delta wakes the waiter.
  const Record r = Rec("{<N, x, 1>}");
  std::thread publisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    AppendDelta delta{0, &r};
    feed.PublishAppend(delta);
  });
  const uint64_t seen =
      feed.WaitForSequence(/*seq=*/0, /*timeout_ms=*/5000, {});
  EXPECT_GE(seen, 1u);
  publisher.join();
  feed.Shutdown();
}

}  // namespace
}  // namespace infoleak::inc
