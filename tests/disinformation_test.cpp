// §4.2: optimal disinformation under a budget — self and linkage
// strategies over the Figure 2 topology.

#include "apps/disinformation.h"

#include <gtest/gtest.h>

#include "er/swoosh.h"

namespace infoleak {
namespace {

/// Figure 2: r and s refer to p; t, u, v refer to someone else. Matching is
/// by shared identifier values.
class Figure2Fixture : public ::testing::Test {
 protected:
  Figure2Fixture()
      : p_{{"N", "alice"}, {"P", "123"}, {"C", "999"}, {"A", "main-st"},
           {"Z", "94305"}},
        match_(MatchRules{{"N"}, {"P"}, {"K"}}),
        resolver_(match_, merge_),
        er_(resolver_),
        factory_(MatchRules{{"N"}, {"P"}, {"K"}}) {
    db_.Add(Record{{"N", "alice"}, {"P", "123"}});             // r (correct)
    db_.Add(Record{{"N", "alice"}, {"C", "999"}});             // s (correct)
    db_.Add(Record{{"N", "bob"}, {"K", "k1"}});                // t
    db_.Add(Record{{"N", "bob"}, {"P", "555"}});               // u
    db_.Add(Record{{"N", "carol"}, {"K", "k2"}, {"S", "000"}});// v
  }

  Record p_;
  Database db_;
  RuleMatch match_;
  UnionMerge merge_;
  SwooshResolver resolver_;
  ErOperator er_;
  RuleMatchFactory factory_;
  WeightModel unit_;
  ExactLeakage engine_;
};

TEST_F(Figure2Fixture, CandidatesIncludeBothStrategies) {
  DisinformationOptimizer optimizer(factory_);
  auto candidates = optimizer.GenerateCandidates(db_, p_,
                                                 /*max_record_size=*/4,
                                                 /*max_bogus=*/2);
  ASSERT_TRUE(candidates.ok());
  bool has_self = false;
  bool has_linkage = false;
  for (const auto& c : *candidates) {
    EXPECT_GT(c.cost, 0.0);
    if (c.strategy == "self") has_self = true;
    if (c.strategy == "linkage") has_linkage = true;
  }
  EXPECT_TRUE(has_self);
  EXPECT_TRUE(has_linkage);
}

TEST_F(Figure2Fixture, SelfDisinformationLowersLeakage) {
  // A record matching r that carries bogus attributes dilutes the merged
  // composite's precision.
  Record d1 = factory_.CreateWithBogus({&db_[0]}, 8, /*num_bogus=*/3, 0);
  ASSERT_FALSE(d1.empty());
  auto before = InformationLeakage(db_, p_, er_, unit_, engine_);
  auto after =
      InformationLeakage(db_.WithRecord(d1), p_, er_, unit_, engine_);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(*after, *before);
}

TEST_F(Figure2Fixture, LinkageDisinformationLowersLeakage) {
  // d2 links the irrelevant v into Alice's composite (Fig. 2).
  Record d2 = factory_.Create({&db_[0], &db_[4]}, 8);
  ASSERT_FALSE(d2.empty());
  auto before = InformationLeakage(db_, p_, er_, unit_, engine_);
  auto after =
      InformationLeakage(db_.WithRecord(d2), p_, er_, unit_, engine_);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_LT(*after, *before);
}

TEST_F(Figure2Fixture, ExhaustiveOptimizerRespectsBudget) {
  DisinformationOptimizer optimizer(factory_);
  auto candidates = optimizer.GenerateCandidates(db_, p_, 4, 1);
  ASSERT_TRUE(candidates.ok());
  ASSERT_LE(candidates->size(), 20u);
  const double budget = 5.0;
  auto plan = optimizer.OptimizeExhaustive(db_, p_, er_, *candidates, budget,
                                           unit_, engine_);
  ASSERT_TRUE(plan.ok());
  EXPECT_LE(plan->total_cost, budget + 1e-12);
  EXPECT_LE(plan->leakage_after, plan->leakage_before + 1e-12);
}

TEST_F(Figure2Fixture, GreedyNeverBeatsExhaustive) {
  DisinformationOptimizer optimizer(factory_);
  auto candidates = optimizer.GenerateCandidates(db_, p_, 4, 1);
  ASSERT_TRUE(candidates.ok());
  const double budget = 6.0;
  auto exhaustive = optimizer.OptimizeExhaustive(db_, p_, er_, *candidates,
                                                 budget, unit_, engine_);
  auto greedy = optimizer.OptimizeGreedy(db_, p_, er_, *candidates, budget,
                                         unit_, engine_);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_LE(exhaustive->leakage_after, greedy->leakage_after + 1e-12);
  EXPECT_LE(greedy->leakage_after, greedy->leakage_before + 1e-12);
  EXPECT_LE(greedy->total_cost, budget + 1e-12);
}

TEST_F(Figure2Fixture, ZeroBudgetMeansNoDisinformation) {
  DisinformationOptimizer optimizer(factory_);
  auto candidates = optimizer.GenerateCandidates(db_, p_, 4, 1);
  ASSERT_TRUE(candidates.ok());
  auto plan = optimizer.OptimizeExhaustive(db_, p_, er_, *candidates, 0.0,
                                           unit_, engine_);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->chosen.empty());
  EXPECT_NEAR(plan->leakage_after, plan->leakage_before, 1e-12);
}

TEST_F(Figure2Fixture, BiggerBudgetsNeverHurt) {
  DisinformationOptimizer optimizer(factory_);
  auto candidates = optimizer.GenerateCandidates(db_, p_, 4, 1);
  ASSERT_TRUE(candidates.ok());
  double previous = 2.0;  // leakage upper bound
  for (double budget : {0.0, 3.0, 6.0, 12.0}) {
    auto plan = optimizer.OptimizeExhaustive(db_, p_, er_, *candidates,
                                             budget, unit_, engine_);
    ASSERT_TRUE(plan.ok());
    EXPECT_LE(plan->leakage_after, previous + 1e-12);
    previous = plan->leakage_after;
  }
}

TEST_F(Figure2Fixture, ExhaustiveCapsCandidateCount) {
  DisinformationOptimizer optimizer(factory_);
  std::vector<DisinfoCandidate> many(21);
  auto plan =
      optimizer.OptimizeExhaustive(db_, p_, er_, many, 1.0, unit_, engine_);
  EXPECT_EQ(plan.status().code(), StatusCode::kResourceExhausted);
}

TEST(RuleMatchFactoryTest, CreateCopiesRuleAttributes) {
  RuleMatchFactory factory(MatchRules{{"N", "C"}, {"N", "P"}});
  Record target{{"N", "n1"}, {"C", "c1"}, {"Z", "z"}};
  Record created = factory.Create({&target}, 4);
  EXPECT_EQ(created.size(), 2u);  // N and C from the first covering rule
  EXPECT_TRUE(created.Contains("N", "n1"));
  EXPECT_TRUE(created.Contains("C", "c1"));
}

TEST(RuleMatchFactoryTest, CreateFailsWhenNoRuleCovers) {
  RuleMatchFactory factory(MatchRules{{"N", "C"}});
  Record target{{"P", "p1"}};  // has neither N nor C
  EXPECT_TRUE(factory.Create({&target}, 4).empty());
}

TEST(RuleMatchFactoryTest, CreateRespectsSizeLimit) {
  RuleMatchFactory factory(MatchRules{{"N"}});
  Record t1{{"N", "a"}};
  Record t2{{"N", "b"}};
  Record t3{{"N", "c"}};
  EXPECT_EQ(factory.Create({&t1, &t2, &t3}, 3).size(), 3u);
  EXPECT_TRUE(factory.Create({&t1, &t2, &t3}, 2).empty());
}

TEST(RuleMatchFactoryTest, CreatedRecordActuallyMatches) {
  RuleMatch match(MatchRules{{"N", "C"}, {"N", "P"}});
  RuleMatchFactory factory(MatchRules{{"N", "C"}, {"N", "P"}});
  Record target{{"N", "n1"}, {"P", "p1"}};
  Record created = factory.Create({&target}, 4);
  ASSERT_FALSE(created.empty());
  EXPECT_TRUE(match.Matches(created, target));
}

TEST(RuleMatchFactoryTest, BogusAttributesDoNotBreakMatching) {
  // The paper assumes Add() keeps matches intact; bogus labels are fresh so
  // rule-based matches cannot be affected.
  RuleMatch match(MatchRules{{"N"}});
  RuleMatchFactory factory(MatchRules{{"N"}});
  Record target{{"N", "n1"}};
  Record created = factory.CreateWithBogus({&target}, 4, 2, 0);
  EXPECT_EQ(created.size(), 3u);
  EXPECT_TRUE(match.Matches(created, target));
}

TEST(RecordCostTest, DefaultCostIsRecordSize) {
  RecordCostFn cost = DefaultRecordCost();
  EXPECT_DOUBLE_EQ(cost(Record{}), 0.0);
  EXPECT_DOUBLE_EQ(cost(Record{{"A", "1"}, {"B", "2"}}), 2.0);
}

}  // namespace
}  // namespace infoleak
