#include "er/similarity_match.h"

#include <gtest/gtest.h>

#include "er/swoosh.h"
#include "er/transitive.h"

namespace infoleak {
namespace {

TEST(SimilarityRuleMatchTest, FuzzyNameMatch) {
  EditDistanceSimilarity sim;
  SimilarityRuleMatch match(MatchRules{{"N"}}, sim, 0.8);
  Record a{{"N", "Johnson"}};
  Record b{{"N", "Jonson"}};   // 1 edit in 7 chars: sim ≈ 0.857
  Record c{{"N", "Smith"}};
  EXPECT_TRUE(match.Matches(a, b));
  EXPECT_FALSE(match.Matches(a, c));
}

TEST(SimilarityRuleMatchTest, ThresholdOneIsExactMatch) {
  EditDistanceSimilarity sim;
  SimilarityRuleMatch fuzzy(MatchRules{{"N"}}, sim, 1.0);
  RuleMatch exact(MatchRules{{"N"}});
  Record a{{"N", "Alice"}};
  Record b{{"N", "Alice"}};
  Record c{{"N", "Alicia"}};
  EXPECT_EQ(fuzzy.Matches(a, b), exact.Matches(a, b));
  EXPECT_EQ(fuzzy.Matches(a, c), exact.Matches(a, c));
}

TEST(SimilarityRuleMatchTest, ConjunctiveFuzzyRule) {
  LabelSimilarity sim;
  sim.Register("N", std::make_unique<EditDistanceSimilarity>());
  sim.Register("Age", std::make_unique<NumericSimilarity>(10.0));
  SimilarityRuleMatch match(MatchRules{{"N", "Age"}}, sim, 0.8);
  Record a{{"N", "Johnson"}, {"Age", "30"}};
  Record b{{"N", "Jonson"}, {"Age", "31"}};  // both within threshold
  Record c{{"N", "Jonson"}, {"Age", "45"}};  // age too far
  EXPECT_TRUE(match.Matches(a, b));
  EXPECT_FALSE(match.Matches(a, c));
}

TEST(SimilarityRuleMatchTest, SymmetricEvenForAsymmetricSimilarity) {
  // A deliberately asymmetric similarity; the matcher takes the max of
  // both orders, so Matches stays symmetric.
  class OneWay : public ValueSimilarity {
   public:
    std::string_view name() const override { return "one-way"; }
    double Similarity(std::string_view, std::string_view got,
                      std::string_view truth) const override {
      return got < truth ? 1.0 : 0.0;
    }
  };
  OneWay sim;
  SimilarityRuleMatch match(MatchRules{{"N"}}, sim, 0.5);
  Record a{{"N", "aaa"}};
  Record b{{"N", "zzz"}};
  EXPECT_EQ(match.Matches(a, b), match.Matches(b, a));
  EXPECT_TRUE(match.Matches(a, b));
}

TEST(SimilarityRuleMatchTest, FuzzyErLinksMisspelledRecords) {
  // Three spellings of one person; exact matching leaves three entities,
  // fuzzy matching merges them all.
  Database db;
  db.Add(Record{{"N", "Johnson"}, {"P", "1"}});
  db.Add(Record{{"N", "Jonson"}, {"C", "2"}});
  db.Add(Record{{"N", "Johnsen"}, {"Z", "3"}});
  EditDistanceSimilarity sim;
  SimilarityRuleMatch fuzzy(MatchRules{{"N"}}, sim, 0.8);
  RuleMatch exact(MatchRules{{"N"}});
  UnionMerge merge;
  auto fuzzy_result =
      TransitiveClosureResolver(fuzzy, merge).Resolve(db, nullptr);
  auto exact_result =
      TransitiveClosureResolver(exact, merge).Resolve(db, nullptr);
  ASSERT_TRUE(fuzzy_result.ok());
  ASSERT_TRUE(exact_result.ok());
  EXPECT_EQ(fuzzy_result->size(), 1u);
  EXPECT_EQ(exact_result->size(), 3u);
}

TEST(SimilarityRuleMatchTest, EmptyRulesNeverMatch) {
  EditDistanceSimilarity sim;
  SimilarityRuleMatch match(MatchRules{}, sim, 0.5);
  Record a{{"N", "Alice"}};
  EXPECT_FALSE(match.Matches(a, a));
}

TEST(SimilarityRuleMatchTest, ThresholdClamped) {
  EditDistanceSimilarity sim;
  SimilarityRuleMatch match(MatchRules{{"N"}}, sim, 7.0);
  EXPECT_DOUBLE_EQ(match.threshold(), 1.0);
  SimilarityRuleMatch low(MatchRules{{"N"}}, sim, -1.0);
  EXPECT_DOUBLE_EQ(low.threshold(), 0.0);
}

}  // namespace
}  // namespace infoleak
