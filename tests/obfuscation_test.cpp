#include "ops/obfuscation.h"

#include <gtest/gtest.h>

#include "core/leakage.h"
#include "er/swoosh.h"

namespace infoleak {
namespace {

Database SmallDb() {
  Database db;
  db.Add(Record{{"N", "alice"}, {"P", "123"}});
  db.Add(Record{{"N", "bob"}, {"Z", "94305"}});
  return db;
}

TEST(ObfuscationTest, AddsConfiguredNumberOfDecoys) {
  ObfuscationOperator op(/*decoys_per_record=*/3, /*attributes_per_decoy=*/2,
                         /*seed=*/1);
  auto out = op.Apply(SmallDb());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u + 6u);
  for (std::size_t i = 2; i < out->size(); ++i) {
    EXPECT_EQ((*out)[i].size(), 2u);
  }
}

TEST(ObfuscationTest, ZeroDecoysIsIdentity) {
  ObfuscationOperator op(0, 2, 1);
  auto out = op.Apply(SmallDb());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 2u);
}

TEST(ObfuscationTest, Deterministic) {
  ObfuscationOperator op(2, 3, 42);
  auto a = op.Apply(SmallDb());
  auto b = op.Apply(SmallDb());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]);
  }
}

TEST(ObfuscationTest, MimicsExistingLabels) {
  ObfuscationOperator op(5, 2, 7);
  auto out = op.Apply(SmallDb());
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 2; i < out->size(); ++i) {
    for (const auto& a : (*out)[i]) {
      EXPECT_TRUE(a.label == "N" || a.label == "P" || a.label == "Z")
          << a.label;
    }
  }
}

TEST(ObfuscationTest, FreshLabelsWhenNotMimicking) {
  ObfuscationOperator op(1, 2, 7);
  op.set_mimic_labels(false);
  auto out = op.Apply(SmallDb());
  ASSERT_TRUE(out.ok());
  for (std::size_t i = 2; i < out->size(); ++i) {
    for (const auto& a : (*out)[i]) {
      EXPECT_EQ(a.label[0], 'O');
    }
  }
}

TEST(ObfuscationTest, DecoysDoNotChangeRecordLeakage) {
  // Free-standing noise never merges with real records under a value-based
  // match, so the max-based set leakage is unchanged — quantifying the
  // paper-adjacent observation that indiscriminate noise is weaker than
  // targeted disinformation.
  Record p{{"N", "alice"}, {"P", "123"}, {"C", "999"}};
  Database db;
  db.Add(Record{{"N", "alice"}, {"P", "123"}});
  ObfuscationOperator noise(10, 3, 99);
  auto match = RuleMatch::SharedValue({"N", "P"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator er(resolver);
  WeightModel unit;
  ExactLeakage engine;

  auto clean = InformationLeakage(db, p, er, unit, engine);
  auto noisy_db = noise.Apply(db);
  ASSERT_TRUE(noisy_db.ok());
  auto noisy = InformationLeakage(*noisy_db, p, er, unit, engine);
  ASSERT_TRUE(clean.ok());
  ASSERT_TRUE(noisy.ok());
  // Decoy values are unique ("noise<random>") so they cannot match the real
  // record; leakage is identical.
  EXPECT_DOUBLE_EQ(*clean, *noisy);
}

TEST(ObfuscationTest, CostScalesWithDecoyVolume) {
  Database db = SmallDb();
  ObfuscationOperator cheap(1, 1, 1);
  ObfuscationOperator expensive(10, 5, 1);
  EXPECT_LT(cheap.Cost(db), expensive.Cost(db));
}

}  // namespace
}  // namespace infoleak
