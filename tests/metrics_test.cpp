// Tests for the sharded metrics layer (src/obs/metrics.h): exact
// aggregation under concurrent writers, registry interning semantics, the
// global kill switch, and the instrumentation contract of the leakage hot
// paths — parallel and serial drivers must report identical, exact
// evaluation counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "core/leakage.h"
#include "gen/generator.h"
#include "obs/metrics.h"

namespace infoleak {
namespace {

obs::MetricsRegistry& Reg() { return obs::MetricsRegistry::Global(); }

TEST(CounterTest, IncAccumulatesAndResets) {
  obs::Counter& c = Reg().GetCounter("test_counter_basic_total");
  c.Reset();
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
  c.Reset();
  EXPECT_EQ(c.Value(), 0u);
}

TEST(CounterTest, ConcurrentIncrementsAreExact) {
  obs::Counter& c = Reg().GetCounter("test_counter_concurrent_total");
  c.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&c] {
      for (uint64_t i = 0; i < kPerThread; ++i) c.Inc();
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  obs::Gauge& g = Reg().GetGauge("test_gauge");
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Reset();
  EXPECT_DOUBLE_EQ(g.Value(), 0.0);
}

TEST(HistogramTest, BucketAssignmentUsesUpperBounds) {
  obs::Histogram& h =
      Reg().GetHistogram("test_histogram_buckets", {}, "", {1.0, 2.0, 4.0});
  h.Reset();
  // Prometheus convention: bucket le=B counts values <= B.
  h.Observe(0.5);   // bucket 0 (le=1)
  h.Observe(1.0);   // bucket 0 (le=1, inclusive)
  h.Observe(1.5);   // bucket 1 (le=2)
  h.Observe(4.0);   // bucket 2 (le=4)
  h.Observe(100.0); // overflow (+Inf)
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 5u);
  EXPECT_DOUBLE_EQ(h.Sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(HistogramTest, ConcurrentObservationsAreExact) {
  obs::Histogram& h =
      Reg().GetHistogram("test_histogram_concurrent", {}, "", {0.5});
  h.Reset();
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h] {
      for (uint64_t i = 0; i < kPerThread; ++i) h.Observe(1.0);
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  std::vector<uint64_t> counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 2u);
  EXPECT_EQ(counts[0], 0u);                      // nothing <= 0.5
  EXPECT_EQ(counts[1], kThreads * kPerThread);   // all overflow
  EXPECT_DOUBLE_EQ(h.Sum(), static_cast<double>(kThreads * kPerThread));
}

TEST(MetricsRegistryTest, InterningReturnsTheSameInstance) {
  obs::Counter& a = Reg().GetCounter("test_interned_total", {{"k", "v"}});
  obs::Counter& b = Reg().GetCounter("test_interned_total", {{"k", "v"}});
  obs::Counter& other = Reg().GetCounter("test_interned_total", {{"k", "w"}});
  EXPECT_EQ(&a, &b);
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  obs::Counter& a = Reg().GetCounter("test_label_order_total",
                                     {{"a", "1"}, {"b", "2"}});
  obs::Counter& b = Reg().GetCounter("test_label_order_total",
                                     {{"b", "2"}, {"a", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistryTest, DisabledIncIsANoOp) {
  obs::Counter& c = Reg().GetCounter("test_kill_switch_total");
  c.Reset();
  obs::MetricsRegistry::SetEnabled(false);
  c.Inc(100);
  obs::MetricsRegistry::SetEnabled(true);
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsRegistryTest, ResetAllKeepsRegistrationsValid) {
  obs::Counter& c = Reg().GetCounter("test_resetall_total");
  c.Inc(7);
  Reg().ResetAll();
  EXPECT_EQ(c.Value(), 0u);   // same handle, zeroed
  c.Inc();
  EXPECT_EQ(c.Value(), 1u);
}

TEST(MetricsRegistryTest, SnapshotIsSortedByNameAndLabels) {
  Reg().GetCounter("test_sorted_b_total");
  Reg().GetCounter("test_sorted_a_total");
  obs::MetricsSnapshot snap = Reg().Snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LE(snap.counters[i - 1].name, snap.counters[i].name)
        << "counters out of order at " << i;
  }
}

// ---------------------------------------------------------------------------
// Instrumentation contracts of the leakage drivers.
// ---------------------------------------------------------------------------

SyntheticDataset MakeData(std::size_t records) {
  GeneratorConfig config;
  config.n = 12;
  config.num_records = records;
  return GenerateDataset(config).value();
}

TEST(LeakageInstrumentation, ParallelDriverCountsEveryRecordExactly) {
  auto data = MakeData(500);
  Database db;
  for (const auto& r : data.records) db.Add(r);
  ExactLeakage engine;
  const PreparedReference ref(data.reference, data.weights);

  obs::Counter& prepared_path = Reg().GetCounter(
      "infoleak_eval_path_total", {{"path", "prepared"}});
  obs::Counter& evals = Reg().GetCounter(
      "infoleak_leakage_evaluations_total", {{"engine", "exact"}});
  const uint64_t path_before = prepared_path.Value();
  const uint64_t evals_before = evals.Value();

  // Explicit thread count: this container may report one hardware thread,
  // and num_threads=0 would silently run the serial path.
  auto parallel = SetLeakageParallel(db, ref, engine, /*num_threads=*/4);
  ASSERT_TRUE(parallel.ok());

  EXPECT_EQ(prepared_path.Value() - path_before, db.size());
  EXPECT_EQ(evals.Value() - evals_before, db.size());

  // And the result matches the serial driver bit for bit.
  auto serial = SetLeakage(db, ref, engine);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*parallel, *serial);
}

TEST(LeakageInstrumentation, ParallelLatencyHistogramAdvances) {
  auto data = MakeData(64);
  Database db;
  for (const auto& r : data.records) db.Add(r);
  ExactLeakage engine;
  const PreparedReference ref(data.reference, data.weights);
  obs::Histogram& latency = Reg().GetHistogram(
      "infoleak_set_leakage_seconds", {{"mode", "parallel"}});
  const uint64_t before = latency.Count();
  ASSERT_TRUE(SetLeakageParallel(db, ref, engine, /*num_threads=*/2).ok());
  EXPECT_EQ(latency.Count() - before, 1u);
}

TEST(LeakageInstrumentation, StringAndPreparedPathsCountSameEvaluations) {
  auto data = MakeData(100);
  Database db;
  for (const auto& r : data.records) db.Add(r);
  ExactLeakage engine;
  obs::Counter& evals = Reg().GetCounter(
      "infoleak_leakage_evaluations_total", {{"engine", "exact"}});

  // String path: one virtual RecordLeakage per record.
  const uint64_t before_string = evals.Value();
  for (std::size_t i = 0; i < db.size(); ++i) {
    ASSERT_TRUE(
        engine.RecordLeakage(db[i], data.reference, data.weights).ok());
  }
  const uint64_t string_evals = evals.Value() - before_string;

  // Prepared path: the SetLeakage driver over the same workload.
  const PreparedReference ref(data.reference, data.weights);
  const uint64_t before_prepared = evals.Value();
  ASSERT_TRUE(SetLeakage(db, ref, engine).ok());
  const uint64_t prepared_evals = evals.Value() - before_prepared;

  EXPECT_EQ(string_evals, db.size());
  EXPECT_EQ(prepared_evals, string_evals);
}

TEST(LeakageInstrumentation, AutoEngineSelectionIsTallied) {
  auto data = MakeData(10);
  Database db;
  for (const auto& r : data.records) db.Add(r);
  AutoLeakage engine;
  const PreparedReference ref(data.reference, data.weights);
  obs::Counter& exact_picks = Reg().GetCounter(
      "infoleak_auto_engine_selected_total", {{"engine", "exact"}});
  obs::Counter& naive_picks = Reg().GetCounter(
      "infoleak_auto_engine_selected_total", {{"engine", "naive"}});
  obs::Counter& approx_picks = Reg().GetCounter(
      "infoleak_auto_engine_selected_total", {{"engine", "approx"}});
  const uint64_t before =
      exact_picks.Value() + naive_picks.Value() + approx_picks.Value();
  ASSERT_TRUE(SetLeakage(db, ref, engine).ok());
  const uint64_t after =
      exact_picks.Value() + naive_picks.Value() + approx_picks.Value();
  EXPECT_EQ(after - before, db.size());
}

TEST(LeakageInstrumentation, ApproxOrderClampIsCounted) {
  obs::Counter& clamped =
      Reg().GetCounter("infoleak_approx_order_clamped_total");
  const uint64_t before = clamped.Value();
  ApproxLeakage valid_low(1), valid_high(2);
  EXPECT_EQ(clamped.Value(), before);
  ApproxLeakage clamped_engine(7);
  EXPECT_EQ(clamped.Value(), before + 1);
}

}  // namespace
}  // namespace infoleak
