// Round-trip property tests for the serialization layers: randomized
// records and tables — including hostile characters — must survive
// format/parse cycles bit-for-bit (modulo documented confidence rounding).

#include <gtest/gtest.h>

#include "anon/table.h"
#include "core/record_io.h"
#include "util/csv.h"
#include "util/rng.h"

namespace infoleak {
namespace {

/// Random printable-ish string; excludes characters the *text* record
/// format reserves (angle brackets, commas, braces) — CSV paths get the
/// full hostile set separately.
std::string RandomToken(Rng* rng, bool hostile) {
  static const char safe[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789._-";
  static const char nasty[] = "\",\n'|;:= ";
  std::string out;
  std::size_t len = 1 + rng->NextBounded(10);
  for (std::size_t i = 0; i < len; ++i) {
    if (hostile && rng->Bernoulli(0.3)) {
      out += nasty[rng->NextBounded(sizeof(nasty) - 1)];
    } else {
      out += safe[rng->NextBounded(sizeof(safe) - 1)];
    }
  }
  return out;
}

class SerializationRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SerializationRoundTrip, RecordTextFormat) {
  Rng rng(GetParam() * 52711);
  for (int trial = 0; trial < 10; ++trial) {
    Record r;
    std::size_t attrs = rng.NextBounded(8);
    for (std::size_t i = 0; i < attrs; ++i) {
      // Quantize confidences so the 4-digit text rendering is lossless.
      double conf = static_cast<double>(rng.NextBounded(10001)) / 10000.0;
      r.Insert(Attribute(RandomToken(&rng, false), RandomToken(&rng, false),
                         conf));
    }
    auto parsed = ParseRecord(FormatRecord(r));
    ASSERT_TRUE(parsed.ok()) << FormatRecord(r);
    EXPECT_EQ(*parsed, r) << FormatRecord(r);
  }
}

TEST_P(SerializationRoundTrip, DatabaseCsvWithHostileValues) {
  Rng rng(GetParam() * 104003);
  for (int trial = 0; trial < 5; ++trial) {
    Database db;
    std::size_t records = 1 + rng.NextBounded(6);
    for (std::size_t k = 0; k < records; ++k) {
      Record r;
      std::size_t attrs = 1 + rng.NextBounded(5);
      for (std::size_t i = 0; i < attrs; ++i) {
        double conf = static_cast<double>(rng.NextBounded(1000001)) / 1e6;
        // Values may contain commas, quotes, newlines — CSV must quote.
        r.Insert(Attribute(RandomToken(&rng, false),
                           RandomToken(&rng, true), conf));
      }
      db.Add(std::move(r));
    }
    auto loaded = LoadDatabaseCsv(SaveDatabaseCsv(db));
    ASSERT_TRUE(loaded.ok());
    ASSERT_EQ(loaded->size(), db.size());
    for (std::size_t k = 0; k < db.size(); ++k) {
      EXPECT_EQ((*loaded)[k], db[k]) << "record " << k;
    }
  }
}

TEST_P(SerializationRoundTrip, TableCsv) {
  Rng rng(GetParam() * 7103);
  for (int trial = 0; trial < 5; ++trial) {
    std::size_t cols = 1 + rng.NextBounded(5);
    std::vector<std::string> names;
    for (std::size_t c = 0; c < cols; ++c) {
      names.push_back("col" + std::to_string(c));
    }
    auto table = Table::Create(names);
    ASSERT_TRUE(table.ok());
    std::size_t rows = rng.NextBounded(8);
    for (std::size_t r = 0; r < rows; ++r) {
      std::vector<std::string> row;
      for (std::size_t c = 0; c < cols; ++c) {
        row.push_back(RandomToken(&rng, true));
      }
      ASSERT_TRUE(table->AddRow(std::move(row)).ok());
    }
    auto parsed = Table::FromCsv(table->ToCsv());
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed->columns(), table->columns());
    EXPECT_EQ(parsed->rows(), table->rows());
  }
}

TEST_P(SerializationRoundTrip, CsvFieldsSurviveAnything) {
  Rng rng(GetParam() * 33391);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::string> fields;
    std::size_t n = 1 + rng.NextBounded(6);
    for (std::size_t i = 0; i < n; ++i) {
      fields.push_back(RandomToken(&rng, true));
    }
    auto parsed = Csv::ParseLine(Csv::FormatRow(fields));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, fields);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SerializationRoundTrip,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace infoleak
