// The prepared-evaluation layer must be a pure representation change: every
// engine's prepared path has to return *bit-identical* results to its
// string path, since the prepared kernels preserve the canonical attribute
// order and hence the exact floating-point accumulation sequence. These
// tests sweep randomized (r, p) pairs — with unit and random weights,
// matched, perturbed, and bogus attributes — through all four engines and
// assert equality with EXPECT_EQ on doubles, not EXPECT_NEAR.

#include <gtest/gtest.h>

#include "core/leakage.h"
#include "gen/generator.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace infoleak {
namespace {

struct RandomCase {
  Record p;
  Record r;
};

/// p has n_ref unit-confidence attributes; r copies each with probability
/// 0.6 (30% perturbed), plus bogus attributes, confidences in [0, max_conf].
RandomCase MakeRandomCase(Rng* rng, std::size_t n_ref, double max_conf) {
  RandomCase out;
  for (std::size_t i = 0; i < n_ref; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    std::string value = StrCat("v", std::to_string(i));
    out.p.Insert(Attribute(label, value, 1.0));
    if (rng->Bernoulli(0.6)) {
      std::string got = rng->Bernoulli(0.3) ? value + "_wrong" : value;
      out.r.Insert(Attribute(label, got, rng->Uniform(0.0, max_conf)));
    }
    if (rng->Bernoulli(0.4)) {
      out.r.Insert(Attribute(StrCat("B", std::to_string(i)), "bogus",
                             rng->Uniform(0.0, max_conf)));
    }
  }
  return out;
}

WeightModel RandomWeights(Rng* rng, const RandomCase& c) {
  WeightModel wm;
  for (const auto& a : c.p) {
    EXPECT_TRUE(wm.SetWeight(a.label, rng->Uniform(0.1, 1.0)).ok());
  }
  for (const auto& a : c.r) {
    if (wm.explicit_weights().count(a.label) == 0) {
      EXPECT_TRUE(wm.SetWeight(a.label, rng->Uniform(0.1, 1.0)).ok());
    }
  }
  return wm;
}

/// Asserts string and prepared paths of `engine` agree bit-for-bit on all
/// three measures for (r, p, wm). Skips measure/engine combinations the
/// string path itself rejects (e.g. exact with non-constant weights) after
/// checking the prepared path rejects them too.
void ExpectBitIdentical(const LeakageEngine& engine, const Record& r,
                        const Record& p, const WeightModel& wm) {
  ASSERT_TRUE(engine.SupportsPrepared());
  const PreparedReference ref(p, wm);
  PreparedRecord pr(r, ref);
  LeakageWorkspace ws;

  const auto ls = engine.RecordLeakage(r, p, wm);
  const auto lp = engine.RecordLeakagePrepared(pr, ref, &ws);
  ASSERT_EQ(ls.ok(), lp.ok()) << "r=" << r.ToString() << " p=" << p.ToString();
  if (ls.ok()) {
    EXPECT_EQ(*ls, *lp) << "r=" << r.ToString();
  }

  const auto ps = engine.ExpectedPrecision(r, p, wm);
  const auto pp = engine.ExpectedPrecisionPrepared(pr, ref, &ws);
  ASSERT_EQ(ps.ok(), pp.ok());
  if (ps.ok()) {
    EXPECT_EQ(*ps, *pp) << "r=" << r.ToString();
  }

  const auto rs = engine.ExpectedRecall(r, p, wm);
  const auto rp = engine.ExpectedRecallPrepared(pr, ref, &ws);
  ASSERT_EQ(rs.ok(), rp.ok());
  if (rs.ok()) {
    EXPECT_EQ(*rs, *rp) << "r=" << r.ToString();
  }
}

// ---------------------------------------------------------------------------
// Per-engine bit-identity sweeps
// ---------------------------------------------------------------------------

class PreparedEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PreparedEquivalence, UnitWeightsAllEngines) {
  Rng rng(GetParam() * 6151);
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage order1(1);
  ApproxLeakage order2(2);
  AutoLeakage dispatch;
  for (int trial = 0; trial < 8; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(7), 1.0);
    ExpectBitIdentical(naive, c.r, c.p, unit);
    ExpectBitIdentical(exact, c.r, c.p, unit);
    ExpectBitIdentical(order1, c.r, c.p, unit);
    ExpectBitIdentical(order2, c.r, c.p, unit);
    ExpectBitIdentical(dispatch, c.r, c.p, unit);
  }
}

TEST_P(PreparedEquivalence, RandomWeightsAllEngines) {
  Rng rng(GetParam() * 13007);
  NaiveLeakage naive;
  ExactLeakage exact;  // rejects non-constant weights on both paths
  ApproxLeakage approx;
  AutoLeakage dispatch;
  for (int trial = 0; trial < 8; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(7), 0.9);
    WeightModel wm = RandomWeights(&rng, c);
    ExpectBitIdentical(naive, c.r, c.p, wm);
    ExpectBitIdentical(exact, c.r, c.p, wm);
    ExpectBitIdentical(approx, c.r, c.p, wm);
    ExpectBitIdentical(dispatch, c.r, c.p, wm);
  }
}

TEST_P(PreparedEquivalence, EdgeRecords) {
  Rng rng(GetParam());
  WeightModel unit;
  ExactLeakage exact;
  ApproxLeakage approx;
  RandomCase c = MakeRandomCase(&rng, 4, 0.8);

  // Empty r.
  Record empty;
  ExpectBitIdentical(exact, empty, c.p, unit);
  ExpectBitIdentical(approx, empty, c.p, unit);

  // r entirely disjoint from p (every id resolves to the kNoSymbol
  // sentinel on the prepared side).
  Record disjoint;
  disjoint.Insert(Attribute("X1", "y1", 0.7));
  disjoint.Insert(Attribute("X2", "y2", 0.4));
  ExpectBitIdentical(exact, disjoint, c.p, unit);
  ExpectBitIdentical(approx, disjoint, c.p, unit);

  // r == p exactly.
  ExpectBitIdentical(exact, c.p, c.p, unit);
  ExpectBitIdentical(approx, c.p, c.p, unit);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PreparedEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------------
// Workspace and scratch-record reuse: repeated evaluation through the same
// workspace must not accumulate state across records of different sizes.
// ---------------------------------------------------------------------------

TEST(PreparedWorkspace, ReuseAcrossRecordsMatchesFreshEvaluation) {
  Rng rng(42);
  WeightModel unit;
  ExactLeakage exact;
  ApproxLeakage approx;
  RandomCase big = MakeRandomCase(&rng, 9, 1.0);
  const PreparedReference ref(big.p, unit);

  // A shuffled mix of sizes so the workspace shrinks and regrows.
  std::vector<Record> records;
  for (int i = 0; i < 20; ++i) {
    records.push_back(MakeRandomCase(&rng, 1 + rng.NextBounded(9), 1.0).r);
  }

  LeakageWorkspace ws;
  PreparedRecord scratch;
  for (const auto& r : records) {
    scratch.Assign(r, ref);
    // Fresh per-record state is the ground truth.
    PreparedRecord fresh(r, ref);
    LeakageWorkspace fresh_ws;
    auto reused = exact.RecordLeakagePrepared(scratch, ref, &ws);
    auto pristine = exact.RecordLeakagePrepared(fresh, ref, &fresh_ws);
    ASSERT_TRUE(reused.ok());
    ASSERT_TRUE(pristine.ok());
    EXPECT_EQ(*reused, *pristine);

    auto a_reused = approx.RecordLeakagePrepared(scratch, ref, &ws);
    auto a_pristine = approx.RecordLeakagePrepared(fresh, ref, &fresh_ws);
    ASSERT_TRUE(a_reused.ok());
    ASSERT_TRUE(a_pristine.ok());
    EXPECT_EQ(*a_reused, *a_pristine);
  }
}

TEST(PreparedWorkspace, RepeatedEvaluationIsIdempotent) {
  Rng rng(7);
  WeightModel unit;
  ExactLeakage exact;
  RandomCase c = MakeRandomCase(&rng, 6, 0.9);
  const PreparedReference ref(c.p, unit);
  PreparedRecord pr(c.r, ref);
  LeakageWorkspace ws;
  auto first = exact.RecordLeakagePrepared(pr, ref, &ws);
  ASSERT_TRUE(first.ok());
  for (int i = 0; i < 5; ++i) {
    auto again = exact.RecordLeakagePrepared(pr, ref, &ws);
    ASSERT_TRUE(again.ok());
    EXPECT_EQ(*first, *again);
  }
}

// ---------------------------------------------------------------------------
// Set-level entry points: string overloads vs prepared overloads vs batch.
// ---------------------------------------------------------------------------

TEST(PreparedSetLeakage, StringAndPreparedOverloadsAgree) {
  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 12;
  config.num_records = 60;
  config.seed = 20260806;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());
  Database db;
  for (const auto& r : data->records) db.Add(r);

  ExactLeakage exact;
  const PreparedReference ref(data->reference, data->weights);

  auto via_string = SetLeakage(db, data->reference, data->weights, exact);
  auto via_prepared = SetLeakage(db, ref, exact);
  ASSERT_TRUE(via_string.ok());
  ASSERT_TRUE(via_prepared.ok());
  EXPECT_EQ(*via_string, *via_prepared);

  std::ptrdiff_t argmax_s = 0, argmax_p = 0;
  auto am_s =
      SetLeakageArgMax(db, data->reference, data->weights, exact, &argmax_s);
  auto am_p = SetLeakageArgMax(db, ref, exact, &argmax_p);
  ASSERT_TRUE(am_s.ok());
  ASSERT_TRUE(am_p.ok());
  EXPECT_EQ(*am_s, *am_p);
  EXPECT_EQ(argmax_s, argmax_p);

  auto par = SetLeakageParallel(db, ref, exact, /*num_threads=*/2);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*via_string, *par);
}

TEST(PreparedSetLeakage, BatchLeakageMatchesPerRecordCalls) {
  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 10;
  config.num_records = 40;
  config.random_weights = true;
  config.seed = 99;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());

  ApproxLeakage approx;
  std::vector<const Record*> ptrs;
  for (const auto& r : data->records) ptrs.push_back(&r);

  const PreparedReference ref(data->reference, data->weights);
  auto batch_s =
      BatchLeakage(ptrs, data->reference, data->weights, approx);
  auto batch_p = BatchLeakage(ptrs, ref, approx);
  ASSERT_TRUE(batch_s.ok());
  ASSERT_TRUE(batch_p.ok());
  ASSERT_EQ(batch_s->size(), ptrs.size());
  ASSERT_EQ(batch_p->size(), ptrs.size());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    auto one = approx.RecordLeakage(*ptrs[i], data->reference, data->weights);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*batch_s)[i], *one) << "record " << i;
    EXPECT_EQ((*batch_p)[i], *one) << "record " << i;
  }
}

// ---------------------------------------------------------------------------
// Fallback path: an engine without a prepared implementation must still be
// usable through every prepared entry point.
// ---------------------------------------------------------------------------

/// Minimal external engine: string API only, like MonteCarloLeakage.
class StringOnlyEngine : public LeakageEngine {
 public:
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override {
    ExactLeakage exact;
    return exact.RecordLeakage(r, p, wm);
  }
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override {
    ExactLeakage exact;
    return exact.ExpectedPrecision(r, p, wm);
  }
  std::string_view name() const override { return "string-only"; }
};

TEST(PreparedFallback, StringOnlyEngineWorksThroughPreparedOverloads) {
  GeneratorConfig config = GeneratorConfig::Basic();
  config.n = 8;
  config.num_records = 20;
  config.seed = 5;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());
  Database db;
  for (const auto& r : data->records) db.Add(r);

  StringOnlyEngine engine;
  EXPECT_FALSE(engine.SupportsPrepared());
  const PreparedReference ref(data->reference, data->weights);

  // The prepared virtuals themselves report NotSupported...
  PreparedRecord pr(data->records[0], ref);
  LeakageWorkspace ws;
  auto direct = engine.RecordLeakagePrepared(pr, ref, &ws);
  EXPECT_FALSE(direct.ok());

  // ...but the set-level overloads transparently fall back to strings.
  auto via_prepared = SetLeakage(db, ref, engine);
  auto via_string = SetLeakage(db, data->reference, data->weights, engine);
  ASSERT_TRUE(via_prepared.ok());
  ASSERT_TRUE(via_string.ok());
  EXPECT_EQ(*via_string, *via_prepared);

  std::vector<const Record*> ptrs;
  for (const auto& r : data->records) ptrs.push_back(&r);
  auto batch = BatchLeakage(ptrs, ref, engine);
  ASSERT_TRUE(batch.ok());
  for (std::size_t i = 0; i < ptrs.size(); ++i) {
    auto one = engine.RecordLeakage(*ptrs[i], data->reference, data->weights);
    ASSERT_TRUE(one.ok());
    EXPECT_EQ((*batch)[i], *one);
  }
}

// ---------------------------------------------------------------------------
// ApproxLeakage order validation (satellite b)
// ---------------------------------------------------------------------------

TEST(ApproxOrderValidation, CreateRejectsOutOfRangeOrders) {
  EXPECT_FALSE(ApproxLeakage::Create(0).ok());
  EXPECT_FALSE(ApproxLeakage::Create(-3).ok());
  EXPECT_FALSE(ApproxLeakage::Create(3).ok());
  EXPECT_TRUE(ApproxLeakage::Create(1).ok());
  EXPECT_TRUE(ApproxLeakage::Create(2).ok());
}

TEST(ApproxOrderValidation, ConstructorClampsToDocumentedOrders) {
  // The legacy constructor keeps working but clamps: <2 → first order,
  // >=2 → second order. Out-of-range inputs therefore behave like the
  // nearest valid order instead of silently producing a third, undefined
  // variant.
  Rng rng(11);
  WeightModel unit;
  RandomCase c = MakeRandomCase(&rng, 6, 0.9);
  ApproxLeakage order1(1);
  ApproxLeakage order2(2);
  ApproxLeakage below(0);
  ApproxLeakage way_below(-7);
  ApproxLeakage above(9);
  auto l1 = order1.RecordLeakage(c.r, c.p, unit);
  auto l2 = order2.RecordLeakage(c.r, c.p, unit);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_EQ(*below.RecordLeakage(c.r, c.p, unit), *l1);
  EXPECT_EQ(*way_below.RecordLeakage(c.r, c.p, unit), *l1);
  EXPECT_EQ(*above.RecordLeakage(c.r, c.p, unit), *l2);
  EXPECT_EQ(order1.name(), below.name());
  EXPECT_EQ(order2.name(), above.name());
}

}  // namespace
}  // namespace infoleak
