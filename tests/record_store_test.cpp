#include "store/record_store.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include <cstdio>

#include "er/dipping.h"
#include "er/transitive.h"
#include "gen/population.h"

namespace infoleak {
namespace {

// ---------------------------------------------------------------------------
// InvertedIndex
// ---------------------------------------------------------------------------

TEST(InvertedIndexTest, PostingListsPerValue) {
  InvertedIndex index;
  index.Add(0, Record{{"N", "Alice"}, {"P", "1"}});
  index.Add(1, Record{{"N", "Alice"}, {"P", "2"}});
  index.Add(2, Record{{"N", "Bob"}});
  const auto* alice = index.Find("N", "Alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(*alice, (std::vector<RecordId>{0, 1}));
  EXPECT_EQ(index.Find("N", "Carol"), nullptr);
  EXPECT_EQ(index.num_postings(), 4u);  // N:Alice, N:Bob, P:1, P:2
}

TEST(InvertedIndexTest, CandidatesUnionPostings) {
  InvertedIndex index;
  index.Add(0, Record{{"N", "Alice"}, {"P", "1"}});
  index.Add(1, Record{{"P", "1"}});
  index.Add(2, Record{{"N", "Bob"}});
  Record probe{{"N", "Alice"}, {"P", "1"}};
  EXPECT_EQ(index.Candidates(probe), (std::vector<RecordId>{0, 1}));
  // Restricting to labels narrows the candidates.
  EXPECT_EQ(index.Candidates(probe, {"N"}), (std::vector<RecordId>{0}));
  EXPECT_TRUE(index.Candidates(Record{{"X", "x"}}).empty());
}

// ---------------------------------------------------------------------------
// RecordStore
// ---------------------------------------------------------------------------

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(RecordStoreTest, AppendAssignsPositionIds) {
  RecordStore store;
  EXPECT_EQ(store.Append(Record{{"N", "Alice"}}), 0u);
  EXPECT_EQ(store.Append(Record{{"N", "Bob"}}), 1u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.Get(0)->Contains("N", "Alice"));
  EXPECT_TRUE(store.Get(1)->Contains("N", "Bob"));
  EXPECT_TRUE(store.Get(9).status().IsOutOfRange());
}

TEST(RecordStoreTest, AppendStripsForeignProvenance) {
  Record foreign{{"N", "Alice"}};
  foreign.AddSource(77);
  RecordStore store;
  RecordId id = store.Append(foreign);
  EXPECT_EQ(id, 0u);
  EXPECT_FALSE(store.Get(0)->HasSource(77));
}

TEST(RecordStoreTest, LookupHitsIndex) {
  RecordStore store;
  store.Append(Record{{"N", "Alice"}, {"P", "123"}});
  store.Append(Record{{"N", "Alice"}});
  EXPECT_EQ(store.Lookup("N", "Alice"), (std::vector<RecordId>{0, 1}));
  EXPECT_TRUE(store.Lookup("N", "Zed").empty());
}

TEST(RecordStoreTest, FlushAndOpenRoundTrip) {
  std::string path = TempPath("infoleak_store_test.csv");
  {
    RecordStore store;
    store.Append(Record{{"N", "Alice"}, {"P", "123", 0.5}});
    store.Append(Record{{"N", "Bob"}});
    ASSERT_TRUE(store.Flush(path).ok());
  }
  auto reopened = RecordStore::Open(path);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened->size(), 2u);
  EXPECT_DOUBLE_EQ(reopened->Get(0)->Confidence("P", "123"), 0.5);
  EXPECT_EQ(reopened->Lookup("N", "Bob"), (std::vector<RecordId>{1}));
  std::remove(path.c_str());
}

TEST(RecordStoreTest, OpenMissingFileIsEmptyStore) {
  auto store = RecordStore::Open(TempPath("does_not_exist_xyz.csv"));
  ASSERT_TRUE(store.ok());
  EXPECT_EQ(store->size(), 0u);
}

TEST(RecordStoreTest, FlushWithoutPathFails) {
  RecordStore store;
  store.Append(Record{{"N", "Alice"}});
  EXPECT_TRUE(store.Flush().IsFailedPrecondition());
}

TEST(RecordStoreTest, DossierMatchesDippingResult) {
  // The §2.4 example: the index-accelerated dossier must equal the
  // resolver-based D(R, E, q) for shared-value matching.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});
  RecordStore store = RecordStore::FromDatabase(db);
  Record q{{"N", "Alice"}};

  std::vector<RecordId> members;
  auto fast = store.Dossier(q, {"N"}, &members);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(members, (std::vector<RecordId>{0, 1}));

  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  auto slow = DippingResult(db, resolver, q);
  ASSERT_TRUE(slow.ok());
  // Same attribute content (provenance bookkeeping differs).
  EXPECT_EQ(fast->size(), slow->size());
  for (const auto& a : *slow) {
    EXPECT_TRUE(fast->Contains(a.label, a.value)) << a.ToString();
  }
}

TEST(RecordStoreTest, DossierFollowsTransitiveChains) {
  RecordStore store;
  store.Append(Record{{"N", "A"}, {"P", "1"}});
  store.Append(Record{{"P", "1"}, {"E", "x"}});
  store.Append(Record{{"E", "x"}, {"Z", "9"}});
  store.Append(Record{{"Z", "8"}});  // unreachable
  std::vector<RecordId> members;
  auto dossier = store.Dossier(Record{{"N", "A"}}, {}, &members);
  ASSERT_TRUE(dossier.ok());
  EXPECT_EQ(members, (std::vector<RecordId>{0, 1, 2}));
  EXPECT_TRUE(dossier->Contains("Z", "9"));
  EXPECT_FALSE(dossier->Contains("Z", "8"));
}

TEST(RecordStoreTest, DossierOnUnknownQueryIsJustTheQuery) {
  RecordStore store;
  store.Append(Record{{"N", "A"}});
  auto dossier = store.Dossier(Record{{"N", "Zed"}, {"P", "7"}});
  ASSERT_TRUE(dossier.ok());
  EXPECT_EQ(dossier->size(), 2u);
}

TEST(RecordStoreTest, DossierAgreesWithResolverOnPopulations) {
  GeneratorConfig config;
  config.n = 8;
  config.perturb_prob = 0.1;
  config.seed = 4242;
  auto data = GeneratePopulation(config, 6, 5);
  ASSERT_TRUE(data.ok());
  RecordStore store = RecordStore::FromDatabase(data->records);

  std::vector<std::string> labels;
  for (std::size_t l = 0; l < config.n; ++l) {
    labels.push_back(StrCat("L", std::to_string(l)));
  }
  auto match = RuleMatch::SharedValue(labels);
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);

  Record query;
  for (const auto& a : data->references[2]) {
    query.Insert(a);
    if (query.size() == 2) break;
  }
  auto fast = store.Dossier(query, labels);
  auto slow = DippingResult(data->records, resolver, query);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  EXPECT_EQ(fast->size(), slow->size());
  for (const auto& a : *slow) {
    EXPECT_TRUE(fast->Contains(a.label, a.value));
  }
}

}  // namespace
}  // namespace infoleak
