#include "anon/utility.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

Table TwoClassTable() {
  auto t = Table::Create({"Q", "S"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"a", "1"}).ok());
  EXPECT_TRUE(t->AddRow({"a", "2"}).ok());
  EXPECT_TRUE(t->AddRow({"a", "3"}).ok());
  EXPECT_TRUE(t->AddRow({"b", "4"}).ok());
  return std::move(t).value();
}

TEST(DiscernibilityTest, SumOfSquaredClassSizes) {
  Table t = TwoClassTable();
  auto d = DiscernibilityMetric(t, {"Q"});
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 9.0 + 1.0, kTol);
}

TEST(DiscernibilityTest, ExtremesMatchTheory) {
  // All singletons: n. One class: n².
  auto singletons = Table::Create({"Q"});
  ASSERT_TRUE(singletons.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(singletons->AddRow({std::to_string(i)}).ok());
  }
  EXPECT_NEAR(DiscernibilityMetric(*singletons, {"Q"}).value(), 5.0, kTol);
  auto merged = Table::Create({"Q"});
  ASSERT_TRUE(merged.ok());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(merged->AddRow({"x"}).ok());
  EXPECT_NEAR(DiscernibilityMetric(*merged, {"Q"}).value(), 25.0, kTol);
}

TEST(DiscernibilityTest, CoarserGeneralizationNeverLowersIt) {
  // Merging classes can only raise the sum of squares (convexity).
  Table fine = TwoClassTable();
  auto coarse = Table::Create({"Q", "S"});
  ASSERT_TRUE(coarse.ok());
  for (const auto& row : fine.rows()) {
    ASSERT_TRUE(coarse->AddRow({"*", row[1]}).ok());
  }
  EXPECT_GE(DiscernibilityMetric(*coarse, {"Q"}).value(),
            DiscernibilityMetric(fine, {"Q"}).value());
}

TEST(AverageClassSizeTest, NormalizedByK) {
  Table t = TwoClassTable();  // 4 rows, 2 classes -> avg 2
  EXPECT_NEAR(AverageClassSizeMetric(t, {"Q"}, 2).value(), 1.0, kTol);
  EXPECT_NEAR(AverageClassSizeMetric(t, {"Q"}, 1).value(), 2.0, kTol);
  EXPECT_TRUE(AverageClassSizeMetric(t, {"Q"}, 0).status()
                  .IsInvalidArgument());
}

TEST(AverageClassSizeTest, EmptyTableIsZero) {
  auto t = Table::Create({"Q"});
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(AverageClassSizeMetric(*t, {"Q"}, 2).value(), 0.0, kTol);
}

TEST(GeneralizationPrecisionTest, Bounds) {
  SuffixSuppressionHierarchy h3(3);
  SuffixSuppressionHierarchy h2(2);
  std::vector<QuasiIdentifier> qis{{"A", &h3}, {"B", &h2}};
  EXPECT_NEAR(GeneralizationPrecision(qis, {0, 0}).value(), 1.0, kTol);
  EXPECT_NEAR(GeneralizationPrecision(qis, {3, 2}).value(), 0.0, kTol);
  // Half of A's hierarchy, none of B's: 1 − (0.5 + 0)/2.
  EXPECT_NEAR(GeneralizationPrecision(qis, {2, 0}).value(), 1.0 - 1.0 / 3.0,
              kTol);
}

TEST(GeneralizationPrecisionTest, DegenerateInputs) {
  EXPECT_NEAR(GeneralizationPrecision({}, {}).value(), 1.0, kTol);
  std::vector<QuasiIdentifier> null_qi{{"A", nullptr}};
  EXPECT_NEAR(GeneralizationPrecision(null_qi, {1}).value(), 1.0, kTol);
}

TEST(GeneralizationPrecisionTest, LevelCountMismatchIsAnError) {
  // A levels vector of the wrong arity is a malformed lattice node, not
  // "untouched data" — silently scoring it 1.0 would chart a broken point
  // as perfect utility.
  SuffixSuppressionHierarchy h(2);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  EXPECT_TRUE(GeneralizationPrecision(qis, {1, 2}).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GeneralizationPrecision(qis, {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace infoleak
