#include "svc/queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <thread>
#include <utility>
#include <vector>

namespace infoleak::svc {
namespace {

TEST(BoundedQueueTest, FillToCapacityThenShed) {
  BoundedQueue<int> queue(3);
  EXPECT_EQ(queue.capacity(), 3u);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_TRUE(queue.TryPush(3));
  EXPECT_EQ(queue.size(), 3u);
  // At capacity the push is shed immediately — the acceptor must never
  // block behind a slow worker pool.
  EXPECT_FALSE(queue.TryPush(4));
  EXPECT_EQ(queue.size(), 3u);
  // Draining one slot re-admits exactly one.
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.TryPush(5));
  EXPECT_FALSE(queue.TryPush(6));
}

TEST(BoundedQueueTest, PopReturnsFifoOrder) {
  BoundedQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(queue.TryPush(i));
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    EXPECT_TRUE(queue.Pop(&out));
    EXPECT_EQ(out, i);
  }
}

TEST(BoundedQueueTest, CloseRejectsPushesButDrainsBacklog) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(3));  // no admissions after close
  int out = 0;
  EXPECT_TRUE(queue.Pop(&out));  // but the backlog still drains
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_FALSE(queue.Pop(&out));  // drained + closed -> false
}

TEST(BoundedQueueTest, CloseWakesABlockedConsumer) {
  BoundedQueue<int> queue(2);
  std::atomic<bool> returned{false};
  std::thread consumer([&] {
    int out = 0;
    const bool got = queue.Pop(&out);  // blocks: queue is empty
    EXPECT_FALSE(got);                 // woken by Close, not by an item
    returned.store(true);
  });
  // Give the consumer time to actually block in Pop.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  queue.Close();
  consumer.join();
  EXPECT_TRUE(returned.load());
}

TEST(BoundedQueueTest, EightProducersOneConsumerKeepPerProducerOrder) {
  // FIFO under concurrency: the queue cannot promise a global order across
  // racing producers, but each producer's own items must come out in the
  // order it pushed them (single lock, single deque — no reordering).
  constexpr int kProducers = 8;
  constexpr int kPerProducer = 500;
  BoundedQueue<std::pair<int, int>> queue(64);

  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        while (!queue.TryPush({p, i})) {
          std::this_thread::yield();  // full: retry, don't drop the sample
        }
      }
    });
  }

  std::map<int, int> next_expected;
  std::size_t popped = 0;
  std::thread consumer([&] {
    std::pair<int, int> item;
    while (queue.Pop(&item)) {
      EXPECT_EQ(item.second, next_expected[item.first])
          << "producer " << item.first << " reordered";
      next_expected[item.first] = item.second + 1;
      ++popped;
    }
  });

  for (auto& t : producers) t.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(popped, static_cast<std::size_t>(kProducers) * kPerProducer);
  for (int p = 0; p < kProducers; ++p) {
    EXPECT_EQ(next_expected[p], kPerProducer) << "producer " << p;
  }
}

}  // namespace
}  // namespace infoleak::svc
