// §4.3: enhancing a composite record — which attribute is most
// cost-effective to verify? Reproduces the paper's example (with its
// arithmetic corrected; see comments).

#include "apps/enhancement.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// §4.3 setup: R = {r1 = {<N,Alice,1>, <A,20,1>},
///                  r2 = {<N,Alice,0.9>, <P,123,0.5>, <C,987,1>}}.
class Section43Fixture : public ::testing::Test {
 protected:
  Section43Fixture() {
    db_.Add(Record{{"N", "Alice", 1.0}, {"A", "20", 1.0}});
    db_.Add(Record{{"N", "Alice", 0.9}, {"P", "123", 0.5}, {"C", "987", 1.0}});
  }

  Database db_;
  WeightModel unit_;
  NaiveLeakage engine_;
};

TEST_F(Section43Fixture, CompositeTakesMaxConfidence) {
  Record rc = ComposeAll(db_);
  EXPECT_EQ(rc.size(), 4u);
  EXPECT_DOUBLE_EQ(rc.Confidence("N", "Alice"), 1.0);  // max(1, 0.9)
  EXPECT_DOUBLE_EQ(rc.Confidence("P", "123"), 0.5);
}

TEST_F(Section43Fixture, BaseCertaintyIsThirteenFourteenths) {
  // L(rc, rp) = 1/2·1 + 1/2·F1(1, 3/4) = 1/2 + 3/7 = 13/14.
  Record rc = ComposeAll(db_);
  Record rp = rc.WithFullConfidence();
  auto l = engine_.RecordLeakage(rc, rp, unit_);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 13.0 / 14.0, kTol);
}

TEST_F(Section43Fixture, VerifyingNameGainsNothing) {
  // Raising r2's name confidence to 1 changes nothing: rc already holds the
  // name at confidence 1 from r1. Ratio = 0/0.1 = 0.
  auto ranked = RankEnhancements(db_, unit_, engine_);
  ASSERT_TRUE(ranked.ok());
  const EnhancementOption* name_option = nullptr;
  for (const auto& opt : *ranked) {
    if (opt.attribute.label == "N" && opt.record_index == 1) {
      name_option = &opt;
    }
  }
  ASSERT_NE(name_option, nullptr);
  EXPECT_NEAR(name_option->gain, 0.0, kTol);
  EXPECT_NEAR(name_option->cost, 0.1, kTol);
  EXPECT_NEAR(name_option->ratio, 0.0, kTol);
}

TEST_F(Section43Fixture, VerifyingPhoneIsBest) {
  // Raising the phone confidence makes rc fully certain: gain = 1 − 13/14 =
  // 1/14, cost = 0.5, ratio = 1/7. (The paper's text prints 1/28, an
  // arithmetic slip — dividing the 1/14 gain by the 0.5 cost doubles it,
  // rather than halving it. The paper's qualitative conclusion — verify the
  // phone, not the name — is what we reproduce.)
  auto best = BestEnhancement(db_, unit_, engine_);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->attribute.label, "P");
  EXPECT_EQ(best->record_index, 1u);
  EXPECT_NEAR(best->gain, 1.0 / 14.0, kTol);
  EXPECT_NEAR(best->cost, 0.5, kTol);
  EXPECT_NEAR(best->ratio, 1.0 / 7.0, kTol);
  EXPECT_NEAR(best->certainty_after, 1.0, kTol);
}

TEST_F(Section43Fixture, FullyCertainAttributesAreNotOptions) {
  auto ranked = RankEnhancements(db_, unit_, engine_);
  ASSERT_TRUE(ranked.ok());
  // Only <N,Alice,0.9> in r2 and <P,123,0.5> are verifiable.
  EXPECT_EQ(ranked->size(), 2u);
  for (const auto& opt : *ranked) {
    EXPECT_LT(opt.attribute.confidence, 1.0);
  }
}

TEST_F(Section43Fixture, NoOptionsWhenEverythingCertain) {
  Database certain;
  certain.Add(Record{{"N", "Alice"}, {"A", "20"}});
  auto best = BestEnhancement(certain, unit_, engine_);
  EXPECT_TRUE(best.status().IsNotFound());
}

TEST_F(Section43Fixture, GreedyPlanReachesFullCertaintyWithBudget) {
  auto plan = GreedyEnhancementPlan(db_, /*max_budget=*/1.0, unit_, engine_);
  ASSERT_TRUE(plan.ok());
  EXPECT_NEAR(plan->certainty_before, 13.0 / 14.0, kTol);
  EXPECT_NEAR(plan->certainty_after, 1.0, kTol);
  // The phone (cost 0.5) is the only gainful verification; the name adds 0.
  ASSERT_EQ(plan->steps.size(), 1u);
  EXPECT_EQ(plan->steps[0].attribute.label, "P");
  EXPECT_NEAR(plan->total_cost, 0.5, kTol);
}

TEST_F(Section43Fixture, GreedyPlanRespectsBudget) {
  auto plan = GreedyEnhancementPlan(db_, /*max_budget=*/0.3, unit_, engine_);
  ASSERT_TRUE(plan.ok());
  // The phone costs 0.5 > 0.3 and the name gains nothing: no steps taken.
  EXPECT_TRUE(plan->steps.empty());
  EXPECT_NEAR(plan->certainty_after, plan->certainty_before, kTol);
}

TEST(EnhancementTest, MultiStepGreedyPlan) {
  Database db;
  db.Add(Record{{"A", "1", 0.5}, {"B", "2", 0.8}, {"C", "3", 1.0}});
  WeightModel unit;
  NaiveLeakage engine;
  auto plan = GreedyEnhancementPlan(db, /*max_budget=*/10.0, unit, engine);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 2u);  // A and B both get verified
  EXPECT_NEAR(plan->certainty_after, 1.0, 1e-12);
  EXPECT_NEAR(plan->total_cost, 0.5 + 0.2, 1e-12);
}

TEST(EnhancementTest, CustomCostFunction) {
  Database db;
  db.Add(Record{{"A", "1", 0.5}, {"B", "2", 0.5}});
  WeightModel unit;
  NaiveLeakage engine;
  // Make verifying B ten times more expensive: A must rank first despite
  // equal gains.
  VerificationCostFn cost = [](const Attribute& a) {
    return (a.label == "B" ? 10.0 : 1.0) * (1.0 - a.confidence);
  };
  auto ranked = RankEnhancements(db, unit, engine, cost);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), 2u);
  EXPECT_EQ((*ranked)[0].attribute.label, "A");
}

}  // namespace
}  // namespace infoleak
