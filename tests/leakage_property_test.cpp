// Property-based tests of the leakage engines: randomized record pairs are
// swept through parameterized gtest suites and the engines are checked
// against each other and against the measure's invariants.

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "core/leakage.h"
#include "gen/generator.h"
#include "util/rng.h"

namespace infoleak {
namespace {

/// Builds a random (r, p) pair: p has `n_ref` unit-confidence attributes;
/// r copies each with probability 0.6 (perturbing 30% of copies) and adds
/// bogus attributes, with confidences in [0, max_conf].
struct RandomCase {
  Record p;
  Record r;
};

RandomCase MakeRandomCase(Rng* rng, std::size_t n_ref, double max_conf) {
  RandomCase out;
  for (std::size_t i = 0; i < n_ref; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    std::string value = StrCat("v", std::to_string(i));
    out.p.Insert(Attribute(label, value, 1.0));
    if (rng->Bernoulli(0.6)) {
      std::string got = rng->Bernoulli(0.3) ? value + "_wrong" : value;
      out.r.Insert(Attribute(label, got, rng->Uniform(0.0, max_conf)));
    }
    if (rng->Bernoulli(0.4)) {
      out.r.Insert(Attribute(StrCat("B", std::to_string(i)), "bogus",
                             rng->Uniform(0.0, max_conf)));
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Exact (Algorithm 1) vs naive oracle, constant weights
// ---------------------------------------------------------------------------

class ExactVsNaive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExactVsNaive, LeakageAgrees) {
  Rng rng(GetParam());
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(7), 1.0);
    auto ln = naive.RecordLeakage(c.r, c.p, unit);
    auto le = exact.RecordLeakage(c.r, c.p, unit);
    ASSERT_TRUE(ln.ok()) << ln.status().ToString();
    ASSERT_TRUE(le.ok()) << le.status().ToString();
    EXPECT_NEAR(*ln, *le, 1e-10)
        << "r=" << c.r.ToString() << " p=" << c.p.ToString();
  }
}

TEST_P(ExactVsNaive, ExpectedPrecisionAgrees) {
  Rng rng(GetParam() ^ 0xABCDEF);
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(6), 1.0);
    auto n = naive.ExpectedPrecision(c.r, c.p, unit);
    auto e = exact.ExpectedPrecision(c.r, c.p, unit);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(e.ok());
    EXPECT_NEAR(*n, *e, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsNaive,
                         ::testing::Range(uint64_t{1}, uint64_t{21}));

// ---------------------------------------------------------------------------
// Approximation accuracy, arbitrary weights (vs naive oracle)
// ---------------------------------------------------------------------------

class ApproxVsNaive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ApproxVsNaive, CloseToOracleWithRandomWeights) {
  Rng rng(GetParam() * 7919);
  NaiveLeakage naive;
  ApproxLeakage approx;
  for (int trial = 0; trial < 5; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 4 + rng.NextBounded(6), 0.8);
    WeightModel wm;
    for (const auto& a : c.p) {
      ASSERT_TRUE(wm.SetWeight(a.label, rng.Uniform(0.1, 1.0)).ok());
    }
    for (const auto& a : c.r) {
      if (wm.explicit_weights().count(a.label) == 0) {
        ASSERT_TRUE(wm.SetWeight(a.label, rng.Uniform(0.1, 1.0)).ok());
      }
    }
    auto n = naive.RecordLeakage(c.r, c.p, wm);
    auto a = approx.RecordLeakage(c.r, c.p, wm);
    ASSERT_TRUE(n.ok());
    ASSERT_TRUE(a.ok());
    // Table 5 reports near-identical values; small records deviate more
    // than the paper's 100-attribute cases, so allow a few percent.
    EXPECT_NEAR(*a, *n, 0.05) << "r=" << c.r.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApproxVsNaive,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// ---------------------------------------------------------------------------
// Invariants
// ---------------------------------------------------------------------------

class LeakageInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LeakageInvariants, LeakageIsInUnitInterval) {
  Rng rng(GetParam() * 104729);
  WeightModel unit;
  ExactLeakage exact;
  for (int trial = 0; trial < 20; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(10), 1.0);
    auto l = exact.RecordLeakage(c.r, c.p, unit);
    ASSERT_TRUE(l.ok());
    EXPECT_GE(*l, 0.0);
    EXPECT_LE(*l, 1.0 + 1e-12);
  }
}

TEST_P(LeakageInvariants, RaisingCorrectConfidenceRaisesLeakage) {
  // Increasing the confidence of a *correct* attribute can only increase
  // expected leakage (F1 is monotone in the inclusion of a matching
  // attribute when precision stays 1... in general it is monotone because
  // every world containing the attribute dominates its sibling world).
  Rng rng(GetParam() * 31337);
  WeightModel unit;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 2 + rng.NextBounded(6), 0.9);
    // Find a correct attribute in r.
    const Attribute* correct = nullptr;
    for (const auto& a : c.r) {
      if (c.p.Contains(a.label, a.value)) {
        correct = &a;
        break;
      }
    }
    if (correct == nullptr) continue;
    auto before = exact.RecordLeakage(c.r, c.p, unit);
    Record boosted = c.r;
    ASSERT_TRUE(
        boosted.SetConfidence(correct->label, correct->value, 1.0).ok());
    auto after = exact.RecordLeakage(boosted, c.p, unit);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_GE(*after, *before - 1e-12);
  }
}

TEST_P(LeakageInvariants, RaisingBogusConfidenceLowersLeakage) {
  // Becoming more confident about *incorrect* information dilutes precision
  // in every world, so leakage cannot increase.
  Rng rng(GetParam() * 65537);
  WeightModel unit;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 2 + rng.NextBounded(6), 0.9);
    const Attribute* bogus = nullptr;
    for (const auto& a : c.r) {
      if (!c.p.Contains(a.label, a.value)) {
        bogus = &a;
        break;
      }
    }
    if (bogus == nullptr) continue;
    auto before = exact.RecordLeakage(c.r, c.p, unit);
    Record boosted = c.r;
    ASSERT_TRUE(boosted.SetConfidence(bogus->label, bogus->value, 1.0).ok());
    auto after = exact.RecordLeakage(boosted, c.p, unit);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_LE(*after, *before + 1e-12);
  }
}

TEST_P(LeakageInvariants, AddingCertainCorrectAttributeRaisesLeakage) {
  Rng rng(GetParam() * 999331);
  WeightModel unit;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 3 + rng.NextBounded(5), 0.9);
    // Find a reference attribute r does not know yet.
    const Attribute* missing = nullptr;
    for (const auto& b : c.p) {
      if (!c.r.Contains(b.label, b.value)) {
        missing = &b;
        break;
      }
    }
    if (missing == nullptr) continue;
    auto before = exact.RecordLeakage(c.r, c.p, unit);
    Record richer = c.r;
    richer.Insert(Attribute(missing->label, missing->value, 1.0));
    auto after = exact.RecordLeakage(richer, c.p, unit);
    ASSERT_TRUE(before.ok());
    ASSERT_TRUE(after.ok());
    EXPECT_GE(*after, *before - 1e-12);
  }
}

TEST_P(LeakageInvariants, MergingInCorrectAttributesNeverHurts) {
  // Merging a set of *correct*, certain attributes (r2 ⊆ p) into any record
  // raises every possible world's F1 (numerator and denominator both grow by
  // the same weight), so L(r1 + r2, p) >= L(r1, p). Note the converse is
  // false: merging a record containing bogus attributes can dilute a clean
  // record's precision — that is exactly how disinformation works (§4.2).
  Rng rng(GetParam() * 7);
  WeightModel unit;
  ExactLeakage exact;
  for (int trial = 0; trial < 10; ++trial) {
    RandomCase c1 = MakeRandomCase(&rng, 5, 0.9);
    Record r2;
    for (const auto& b : c1.p) {
      if (rng.Bernoulli(0.5)) r2.Insert(b);
    }
    Record merged = Record::Merge(c1.r, r2);
    auto lm = exact.RecordLeakage(merged, c1.p, unit);
    auto l1 = exact.RecordLeakage(c1.r, c1.p, unit);
    ASSERT_TRUE(lm.ok());
    ASSERT_TRUE(l1.ok());
    EXPECT_GE(*lm + 1e-12, *l1);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeakageInvariants,
                         ::testing::Range(uint64_t{1}, uint64_t{16}));

// ---------------------------------------------------------------------------
// Generator-driven agreement sweep (closer to the paper's Table 5 setup)
// ---------------------------------------------------------------------------

struct SweepParam {
  double pc;
  double pp;
  double m;
};

class GeneratorSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GeneratorSweep, ExactMatchesNaiveOnGeneratedRecords) {
  const SweepParam param = GetParam();
  GeneratorConfig config;
  config.n = 8;  // small enough for the naive oracle
  config.num_records = 10;
  config.copy_prob = param.pc;
  config.perturb_prob = param.pp;
  config.max_confidence = param.m;
  config.seed = 20260707;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage approx;
  for (const auto& r : data->records) {
    auto ln = naive.RecordLeakage(r, data->reference, data->weights);
    auto le = exact.RecordLeakage(r, data->reference, data->weights);
    auto la = approx.RecordLeakage(r, data->reference, data->weights);
    ASSERT_TRUE(ln.ok());
    ASSERT_TRUE(le.ok());
    ASSERT_TRUE(la.ok());
    EXPECT_NEAR(*le, *ln, 1e-10);
    EXPECT_NEAR(*la, *ln, 0.05);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Params, GeneratorSweep,
    ::testing::Values(SweepParam{0.0, 0.5, 0.5}, SweepParam{0.5, 0.0, 0.5},
                      SweepParam{0.5, 1.0, 0.5}, SweepParam{1.0, 0.5, 0.5},
                      SweepParam{0.5, 0.5, 1.0}, SweepParam{0.5, 0.5, 0.1},
                      SweepParam{1.0, 0.0, 1.0}, SweepParam{0.3, 0.7, 0.9}));

}  // namespace
}  // namespace infoleak
