#include "er/cluster_quality.h"

#include <gtest/gtest.h>

#include "er/swoosh.h"
#include "er/transitive.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// Hand-built "resolved" database: clusters given by provenance ids.
Database MakeClusters(const std::vector<std::vector<RecordId>>& clusters) {
  Database db;
  for (const auto& cluster : clusters) {
    Record r;
    for (RecordId id : cluster) r.AddSource(id);
    db.Add(std::move(r));
  }
  return db;
}

TEST(ClusterQualityTest, PerfectClustering) {
  // Truth: {0,1} person A, {2,3} person B; clusters identical.
  Database resolved = MakeClusters({{0, 1}, {2, 3}});
  auto q = EvaluateClustering(resolved, {0, 0, 1, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->true_positive_pairs, 2u);
  EXPECT_EQ(q->false_positive_pairs, 0u);
  EXPECT_EQ(q->false_negative_pairs, 0u);
  EXPECT_NEAR(q->pairwise_precision, 1.0, kTol);
  EXPECT_NEAR(q->pairwise_recall, 1.0, kTol);
  EXPECT_NEAR(q->pairwise_f1, 1.0, kTol);
  EXPECT_EQ(q->num_clusters, 2u);
  EXPECT_EQ(q->num_entities, 2u);
}

TEST(ClusterQualityTest, UnderMergedLosesRecall) {
  // Person A split into singletons.
  Database resolved = MakeClusters({{0}, {1}, {2, 3}});
  auto q = EvaluateClustering(resolved, {0, 0, 1, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->false_negative_pairs, 1u);
  EXPECT_NEAR(q->pairwise_precision, 1.0, kTol);
  EXPECT_NEAR(q->pairwise_recall, 0.5, kTol);
}

TEST(ClusterQualityTest, OverMergedLosesPrecision) {
  Database resolved = MakeClusters({{0, 1, 2, 3}});
  auto q = EvaluateClustering(resolved, {0, 0, 1, 1});
  ASSERT_TRUE(q.ok());
  // 6 pairs in the blob: 2 true (0-1, 2-3), 4 false.
  EXPECT_EQ(q->true_positive_pairs, 2u);
  EXPECT_EQ(q->false_positive_pairs, 4u);
  EXPECT_NEAR(q->pairwise_precision, 2.0 / 6.0, kTol);
  EXPECT_NEAR(q->pairwise_recall, 1.0, kTol);
}

TEST(ClusterQualityTest, AllSingletonsWithSingletonTruth) {
  Database resolved = MakeClusters({{0}, {1}, {2}});
  auto q = EvaluateClustering(resolved, {0, 1, 2});
  ASSERT_TRUE(q.ok());
  // No positive pairs anywhere: precision and recall default to 1.
  EXPECT_NEAR(q->pairwise_precision, 1.0, kTol);
  EXPECT_NEAR(q->pairwise_recall, 1.0, kTol);
}

TEST(ClusterQualityTest, ValidatesProvenance) {
  Database out_of_range = MakeClusters({{0, 7}});
  EXPECT_TRUE(EvaluateClustering(out_of_range, {0, 0})
                  .status()
                  .IsInvalidArgument());
  Database duplicated = MakeClusters({{0}, {0}});
  EXPECT_TRUE(EvaluateClustering(duplicated, {0})
                  .status()
                  .IsInvalidArgument());
}

TEST(ClusterQualityTest, EndToEndWithRealResolver) {
  // Two people, three records each, linked by shared phones.
  Database db;
  db.Add(Record{{"N", "a1"}, {"P", "111"}});   // person 0
  db.Add(Record{{"N", "a2"}, {"P", "111"}});   // person 0
  db.Add(Record{{"N", "a3"}, {"P", "111"}});   // person 0
  db.Add(Record{{"N", "b1"}, {"P", "222"}});   // person 1
  db.Add(Record{{"N", "b2"}, {"P", "222"}});   // person 1
  db.Add(Record{{"N", "b3"}, {"P", "999"}});   // person 1, unlinkable
  auto match = RuleMatch::SharedValue({"P"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  auto resolved = resolver.Resolve(db, nullptr);
  ASSERT_TRUE(resolved.ok());
  auto q = EvaluateClustering(*resolved, {0, 0, 0, 1, 1, 1});
  ASSERT_TRUE(q.ok());
  EXPECT_NEAR(q->pairwise_precision, 1.0, kTol);  // nothing wrong merged
  // Person 1's third record is unreachable: 2 of 3+3=6 true pairs lost.
  EXPECT_EQ(q->false_negative_pairs, 2u);
  EXPECT_NEAR(q->pairwise_recall, 4.0 / 6.0, kTol);
}

}  // namespace
}  // namespace infoleak
