#include "core/bounds.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "util/rng.h"

namespace infoleak {
namespace {

TEST(BoundsTest, BracketsPaperExample) {
  // §2.3: L = 13/20 (unit weights).
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  WeightModel unit;
  LeakageBounds bounds = BoundRecordLeakage(r, p, unit);
  EXPECT_LE(bounds.lower, 13.0 / 20.0 + 1e-12);
  EXPECT_GE(bounds.upper, 13.0 / 20.0 - 1e-12);
  EXPECT_GT(bounds.lower, 0.0);
  EXPECT_LT(bounds.upper, 1.0 + 1e-12);
}

TEST(BoundsTest, EmptyInputsCollapseToZero) {
  WeightModel unit;
  LeakageBounds empty_r = BoundRecordLeakage(Record{}, Record{{"A", "1"}},
                                             unit);
  EXPECT_EQ(empty_r.lower, 0.0);
  EXPECT_EQ(empty_r.upper, 0.0);
  LeakageBounds empty_p = BoundRecordLeakage(Record{{"A", "1"}}, Record{},
                                             unit);
  EXPECT_EQ(empty_p.upper, 0.0);
}

TEST(BoundsTest, CertainExactMatchIsTight) {
  Record p{{"A", "1"}, {"B", "2"}};
  WeightModel unit;
  LeakageBounds bounds = BoundRecordLeakage(p, p, unit);
  EXPECT_NEAR(bounds.lower, 1.0, 1e-12);
  EXPECT_NEAR(bounds.upper, 1.0, 1e-12);
}

class BoundsProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BoundsProperty, AlwaysBracketTheOracle) {
  Rng rng(GetParam() * 6151);
  NaiveLeakage oracle;
  for (int trial = 0; trial < 20; ++trial) {
    Record p;
    Record r;
    WeightModel wm;
    std::size_t n = 1 + rng.NextBounded(8);
    for (std::size_t i = 0; i < n; ++i) {
      std::string label = StrCat("L", std::to_string(i));
      ASSERT_TRUE(wm.SetWeight(label, rng.Uniform(0.1, 2.0)).ok());
      p.Insert(Attribute(label, "v"));
      if (rng.Bernoulli(0.7)) {
        r.Insert(Attribute(label, rng.Bernoulli(0.3) ? "wrong" : "v",
                           rng.NextDouble()));
      }
      if (rng.Bernoulli(0.3)) {
        std::string bogus = StrCat("B", std::to_string(i));
        ASSERT_TRUE(wm.SetWeight(bogus, rng.Uniform(0.1, 2.0)).ok());
        r.Insert(Attribute(bogus, "x", rng.NextDouble()));
      }
    }
    auto exact = oracle.RecordLeakage(r, p, wm);
    ASSERT_TRUE(exact.ok());
    LeakageBounds bounds = BoundRecordLeakage(r, p, wm);
    EXPECT_LE(bounds.lower, *exact + 1e-10)
        << "r=" << r.ToString() << " p=" << p.ToString();
    EXPECT_GE(bounds.upper, *exact - 1e-10)
        << "r=" << r.ToString() << " p=" << p.ToString();
    EXPECT_LE(bounds.lower, bounds.upper + 1e-12);
  }
}

TEST_P(BoundsProperty, LowerBoundIsFirstOrderTaylor) {
  // The lower bound and ApproxLeakage(order=1) implement the same formula.
  Rng rng(GetParam() * 31);
  ApproxLeakage order1(1);
  WeightModel unit;
  for (int trial = 0; trial < 10; ++trial) {
    Record p;
    Record r;
    std::size_t n = 1 + rng.NextBounded(6);
    for (std::size_t i = 0; i < n; ++i) {
      std::string label = StrCat("L", std::to_string(i));
      p.Insert(Attribute(label, "v"));
      if (rng.Bernoulli(0.6)) {
        r.Insert(Attribute(label, "v", rng.NextDouble()));
      }
    }
    LeakageBounds bounds = BoundRecordLeakage(r, p, unit);
    auto taylor = order1.RecordLeakage(r, p, unit);
    ASSERT_TRUE(taylor.ok());
    EXPECT_NEAR(bounds.lower, std::min(*taylor, 1.0), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundsProperty,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

}  // namespace
}  // namespace infoleak
