#include "core/informativeness.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "core/measures.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

TEST(ValueDistributionTest, SmoothedProbabilities) {
  ValueDistribution dist;
  dist.Observe("Age", "30");
  dist.Observe("Age", "30");
  dist.Observe("Age", "80");
  // (count + 1) / (total + distinct + 1) = (2+1)/(3+2+1) and (1+1)/6.
  EXPECT_NEAR(dist.Probability("Age", "30"), 3.0 / 6.0, kTol);
  EXPECT_NEAR(dist.Probability("Age", "80"), 2.0 / 6.0, kTol);
  EXPECT_NEAR(dist.Probability("Age", "999"), 1.0 / 6.0, kTol);  // unseen
  EXPECT_NEAR(dist.Probability("Ghost", "x"), 0.5, kTol);  // unknown label
}

TEST(ValueDistributionTest, SurprisalOrdersByRarity) {
  ValueDistribution dist;
  for (int i = 0; i < 99; ++i) dist.Observe("Age", "30");
  dist.Observe("Age", "80");
  EXPECT_LT(dist.Surprisal("Age", "30"), dist.Surprisal("Age", "80"));
  EXPECT_LT(dist.Surprisal("Age", "80"), dist.Surprisal("Age", "unseen"));
  EXPECT_GE(dist.Surprisal("Age", "30"), 0.0);
}

TEST(ValueDistributionTest, ObserveDatabase) {
  Database db;
  db.Add(Record{{"D", "Flu"}, {"Z", "94305"}});
  db.Add(Record{{"D", "Flu"}});
  db.Add(Record{{"D", "Cancer"}});
  ValueDistribution dist;
  dist.ObserveDatabase(db);
  EXPECT_EQ(dist.TotalObservations("D"), 3u);
  EXPECT_EQ(dist.TotalObservations("Z"), 1u);
  EXPECT_GT(dist.Surprisal("D", "Cancer"), dist.Surprisal("D", "Flu"));
}

TEST(InformativenessWeigherTest, RareValuesWeighMore) {
  ValueDistribution dist;
  for (int i = 0; i < 50; ++i) dist.Observe("D", "Flu");
  dist.Observe("D", "Kuru");
  WeightModel base;
  InformativenessWeigher weigher(base, dist);
  EXPECT_GT(weigher.Weight("D", "Kuru"), weigher.Weight("D", "Flu"));
  // The label weight scales the result.
  WeightModel heavy;
  ASSERT_TRUE(heavy.SetWeight("D", 3.0).ok());
  InformativenessWeigher heavy_weigher(heavy, dist);
  EXPECT_NEAR(heavy_weigher.Weight("D", "Kuru"),
              3.0 * weigher.Weight("D", "Kuru"), kTol);
}

TEST(InformativenessWeigherTest, UnobservedLabelKeepsBaseWeight) {
  ValueDistribution dist;
  WeightModel base;
  ASSERT_TRUE(base.SetWeight("X", 2.5).ok());
  InformativenessWeigher weigher(base, dist);
  EXPECT_DOUBLE_EQ(weigher.Weight("X", "anything"), 2.5);
}

TEST(InformativenessWeigherTest, ScaleIsClamped) {
  ValueDistribution dist;
  for (int i = 0; i < 100000; ++i) dist.Observe("D", "Flu");
  dist.Observe("D", "Kuru");
  WeightModel base;
  InformativenessWeigher weigher(base, dist, 0.25, 4.0);
  EXPECT_LE(weigher.Weight("D", "NeverSeen"), 4.0 + kTol);
  EXPECT_GE(weigher.Weight("D", "Flu"), 0.25 - kTol);
}

TEST(InformedMeasuresTest, ReduceToBaseWithEmptyDistribution) {
  ValueDistribution empty;
  WeightModel base;
  ASSERT_TRUE(base.SetWeight("N", 2.0).ok());
  InformativenessWeigher weigher(base, empty);
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}, {"Z", "94305"}};
  Record r{{"N", "Alice"}, {"A", "20"}, {"P", "111"}};
  EXPECT_NEAR(InformedPrecision(r, p, weigher), Precision(r, p, base), kTol);
  EXPECT_NEAR(InformedRecall(r, p, weigher), Recall(r, p, base), kTol);
  EXPECT_NEAR(InformedRecordLeakageNoConfidence(r, p, weigher),
              RecordLeakageNoConfidence(r, p, base), kTol);
}

TEST(InformedMeasuresTest, ExceptionalValueLeaksMore) {
  // The §2.1 background-knowledge intuition: knowing an exceptional
  // disease leaks more than knowing a common one.
  ValueDistribution dist;
  for (int i = 0; i < 99; ++i) dist.Observe("D", "Flu");
  dist.Observe("D", "Kuru");
  WeightModel base;
  InformativenessWeigher weigher(base, dist);

  Record p_common{{"N", "Alice"}, {"Z", "111"}, {"D", "Flu"}};
  Record p_rare{{"N", "Alice"}, {"Z", "111"}, {"D", "Kuru"}};
  // The adversary knows only the disease in both cases.
  Record r_common{{"D", "Flu"}};
  Record r_rare{{"D", "Kuru"}};
  EXPECT_GT(InformedRecordLeakageNoConfidence(r_rare, p_rare, weigher),
            InformedRecordLeakageNoConfidence(r_common, p_common, weigher));
}

TEST(InformedRecordLeakageTest, ExpectedValueOverWorlds) {
  ValueDistribution empty;
  WeightModel unit;
  InformativenessWeigher weigher(unit, empty);
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  auto l = InformedRecordLeakage(r, p, weigher);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 13.0 / 20.0, kTol);  // reduces to the crisp 13/20
}

TEST(InformedRecordLeakageTest, RefusesHugeRecords) {
  ValueDistribution empty;
  WeightModel unit;
  InformativenessWeigher weigher(unit, empty);
  Record r;
  for (int i = 0; i < 30; ++i) {
    r.Insert(Attribute(StrCat("L", std::to_string(i)), "v", 0.5));
  }
  auto l = InformedRecordLeakage(r, Record{{"A", "1"}}, weigher, 25);
  EXPECT_EQ(l.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace infoleak
