#include "anon/samarati.h"

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/string_util.h"

namespace infoleak {
namespace {

Table PaperTable1NoNames() {
  auto t = Table::Create({"Zip", "Age", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"111", "30", "Heart"}).ok());
  EXPECT_TRUE(t->AddRow({"112", "31", "Breast"}).ok());
  EXPECT_TRUE(t->AddRow({"115", "33", "Cancer"}).ok());
  EXPECT_TRUE(t->AddRow({"222", "50", "Hair"}).ok());
  EXPECT_TRUE(t->AddRow({"299", "70", "Flu"}).ok());
  EXPECT_TRUE(t->AddRow({"241", "60", "Flu"}).ok());
  return std::move(t).value();
}

TEST(SamaratiTest, MatchesExhaustiveOnPaperTable) {
  Table t = PaperTable1NoNames();
  SuffixSuppressionHierarchy zip(3);
  IntervalHierarchy age({10, 50});
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};
  auto exhaustive = MinimalFullDomainGeneralization(t, qis, 3);
  auto samarati = SamaratiGeneralization(t, qis, 3);
  ASSERT_TRUE(exhaustive.ok());
  ASSERT_TRUE(samarati.ok()) << samarati.status().ToString();
  EXPECT_EQ(exhaustive->levels, samarati->levels);
  EXPECT_EQ(exhaustive->table.rows(), samarati->table.rows());
}

TEST(SamaratiTest, AlreadyAnonymousNeedsNoGeneralization) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(t->AddRow({"x"}).ok());
  SuffixSuppressionHierarchy h(1);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  auto result = SamaratiGeneralization(*t, qis, 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->levels, std::vector<int>{0});
}

TEST(SamaratiTest, NotFoundWhenImpossible) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"x"}).ok());
  SuffixSuppressionHierarchy h(1);
  std::vector<QuasiIdentifier> qis{{"A", &h}};
  EXPECT_TRUE(SamaratiGeneralization(*t, qis, 2).status().IsNotFound());
}

TEST(SamaratiTest, NullHierarchyRejected) {
  Table t = PaperTable1NoNames();
  std::vector<QuasiIdentifier> qis{{"Zip", nullptr}};
  EXPECT_TRUE(SamaratiGeneralization(t, qis, 2).status().IsInvalidArgument());
}

class SamaratiEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SamaratiEquivalence, AgreesWithExhaustiveOnRandomTables) {
  Rng rng(GetParam() * 50021);
  SuffixSuppressionHierarchy zip(3);
  IntervalHierarchy age({10, 30, 100});
  std::vector<QuasiIdentifier> qis{{"Zip", &zip}, {"Age", &age}};
  for (int trial = 0; trial < 4; ++trial) {
    auto t = Table::Create({"Zip", "Age"});
    ASSERT_TRUE(t.ok());
    std::size_t rows = 6 + rng.NextBounded(20);
    for (std::size_t i = 0; i < rows; ++i) {
      std::string zip_value =
          StrCat(std::to_string(10 + rng.NextBounded(3)),
                 std::to_string(rng.NextBounded(10)));
      std::string age_value = std::to_string(20 + rng.NextBounded(60));
      ASSERT_TRUE(t->AddRow({zip_value, age_value}).ok());
    }
    for (std::size_t k : {2u, 3u, 5u}) {
      auto exhaustive = MinimalFullDomainGeneralization(*t, qis, k);
      auto samarati = SamaratiGeneralization(*t, qis, k);
      ASSERT_EQ(exhaustive.ok(), samarati.ok()) << "k=" << k;
      if (!exhaustive.ok()) continue;
      EXPECT_EQ(exhaustive->levels, samarati->levels) << "k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamaratiEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace infoleak
