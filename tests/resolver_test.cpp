#include "er/swoosh.h"
#include "er/transitive.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/leakage.h"

namespace infoleak {
namespace {

Database PaperSection24Database() {
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});
  return db;
}

/// Sorted record strings — a canonical form for comparing databases whose
/// record order may differ between resolvers.
std::vector<std::string> Canonical(const Database& db) {
  std::vector<std::string> out;
  for (const auto& r : db) out.push_back(r.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class ResolverTest : public ::testing::TestWithParam<std::string> {
 protected:
  Result<Database> Resolve(const Database& db, const MatchFunction& match,
                           const MergeFunction& merge, ErStats* stats) {
    if (GetParam() == "swoosh") {
      return SwooshResolver(match, merge).Resolve(db, stats);
    }
    return TransitiveClosureResolver(match, merge).Resolve(db, stats);
  }
};

TEST_P(ResolverTest, MergesPaperSection24Example) {
  Database db = PaperSection24Database();
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  ErStats stats;
  auto resolved = Resolve(db, *match, merge, &stats);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->size(), 2u);
  // One record must be the Alice composite.
  bool found_composite = false;
  for (const auto& r : *resolved) {
    if (r.Contains("P", "123") && r.Contains("C", "999")) {
      found_composite = true;
      EXPECT_TRUE(r.HasSource(0));
      EXPECT_TRUE(r.HasSource(1));
      EXPECT_FALSE(r.HasSource(2));
    }
  }
  EXPECT_TRUE(found_composite);
  EXPECT_GT(stats.match_calls, 0u);
  EXPECT_EQ(stats.merge_calls, 1u);
}

TEST_P(ResolverTest, NeverMatchIsIdentity) {
  Database db = PaperSection24Database();
  NeverMatch match;
  UnionMerge merge;
  auto resolved = Resolve(db, match, merge, nullptr);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(Canonical(*resolved), Canonical(db));
}

TEST_P(ResolverTest, EmptyDatabase) {
  NeverMatch match;
  UnionMerge merge;
  auto resolved = Resolve(Database{}, match, merge, nullptr);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->empty());
}

TEST_P(ResolverTest, ResolutionIsIdempotent) {
  Database db = PaperSection24Database();
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  auto once = Resolve(db, *match, merge, nullptr);
  ASSERT_TRUE(once.ok());
  auto twice = Resolve(*once, *match, merge, nullptr);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Canonical(*once), Canonical(*twice));
}

TEST_P(ResolverTest, TransitiveChainCollapses) {
  // a-b share phone, b-c share email: all three are one entity.
  Database db;
  db.Add(Record{{"N", "A1"}, {"P", "555"}});
  db.Add(Record{{"N", "A2"}, {"P", "555"}, {"E", "a@x"}});
  db.Add(Record{{"N", "A3"}, {"E", "a@x"}});
  auto match = RuleMatch::SharedValue({"P", "E"});
  UnionMerge merge;
  auto resolved = Resolve(db, *match, merge, nullptr);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(resolved->size(), 1u);
  EXPECT_EQ((*resolved)[0].size(), 5u);
}

TEST_P(ResolverTest, ResolutionIncreasesLeakage) {
  // §2.4: L0 goes from 2/3 to 6/7 after ER.
  Database db = PaperSection24Database();
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  WeightModel unit;
  ExactLeakage engine;
  auto before = SetLeakage(db, p, unit, engine);
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  auto resolved = Resolve(db, *match, merge, nullptr);
  ASSERT_TRUE(resolved.ok());
  auto after = SetLeakage(*resolved, p, unit, engine);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_NEAR(*before, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(*after, 6.0 / 7.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Engines, ResolverTest,
                         ::testing::Values("swoosh", "transitive"));

TEST(SwooshVsTransitiveTest, AgreeOnRepresentativeMatch) {
  // Shared-value matches are representative (a merged record matches
  // whatever its parts matched), so both algorithms yield one partition.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "1"}});
  db.Add(Record{{"N", "Alice"}, {"C", "2"}});
  db.Add(Record{{"N", "Bob"}, {"P", "1"}});   // linked to Alice via phone
  db.Add(Record{{"N", "Carol"}});
  db.Add(Record{{"N", "Carol"}, {"Z", "9"}});
  auto match = RuleMatch::SharedValue({"N", "P"});
  UnionMerge merge;
  auto s = SwooshResolver(*match, merge).Resolve(db, nullptr);
  auto t = TransitiveClosureResolver(*match, merge).Resolve(db, nullptr);
  ASSERT_TRUE(s.ok());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(Canonical(*s), Canonical(*t));
}

TEST(SwooshVsTransitiveTest, SwooshFindsMergeInducedMatches) {
  // Conjunctive rule {N, C}: records a and c only match after a first merge
  // contributes the missing attribute. R-Swoosh compares merged records and
  // finds it; single-pass transitive closure over base records does not.
  Database db;
  db.Add(Record{{"N", "n1"}, {"P", "p1"}});              // a
  db.Add(Record{{"N", "n1"}, {"P", "p1"}, {"C", "c1"}}); // b (matches a via N+P)
  db.Add(Record{{"N", "n1"}, {"C", "c1"}, {"Z", "z"}});  // c (matches b via N+C)
  RuleMatch match(MatchRules{{"N", "P"}, {"N", "C"}});
  UnionMerge merge;
  auto s = SwooshResolver(match, merge).Resolve(db, nullptr);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->size(), 1u);  // everything merges
  // Transitive closure also links them here because b matches both a and c
  // directly; build a variant where only the *merged* a+b matches c.
  Database db2;
  db2.Add(Record{{"N", "n1"}, {"P", "p1"}});             // a
  db2.Add(Record{{"P", "p1"}, {"C", "c1"}});             // b (matches a? no N)
  // a and b share P but rule requires N+P or N+C; no base pair matches, yet
  // a+b (if merged) would match c. Without any base match nothing merges:
  db2.Add(Record{{"N", "n1"}, {"C", "c1"}});             // c
  auto s2 = SwooshResolver(match, merge).Resolve(db2, nullptr);
  auto t2 = TransitiveClosureResolver(match, merge).Resolve(db2, nullptr);
  ASSERT_TRUE(s2.ok());
  ASSERT_TRUE(t2.ok());
  // Neither algorithm may invent a merge when no pair matches.
  EXPECT_EQ(s2->size(), 3u);
  EXPECT_EQ(t2->size(), 3u);
}

TEST(ErStatsTest, TransitiveCountsAllPairs) {
  Database db = PaperSection24Database();
  NeverMatch match;
  UnionMerge merge;
  ErStats stats;
  auto resolved =
      TransitiveClosureResolver(match, merge).Resolve(db, &stats);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(stats.match_calls, 3u);  // C(3,2)
  EXPECT_EQ(stats.merge_calls, 0u);
  EXPECT_GE(stats.elapsed_seconds, 0.0);
}

TEST(ErStatsTest, AccumulateAddsCounters) {
  ErStats a{10, 2, 0.5};
  ErStats b{5, 1, 0.25};
  a.Accumulate(b);
  EXPECT_EQ(a.match_calls, 15u);
  EXPECT_EQ(a.merge_calls, 3u);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, 0.75);
}

}  // namespace
}  // namespace infoleak
