#include "check/selfcheck.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "check/case.h"
#include "check/case_gen.h"
#include "check/corpus.h"
#include "check/oracle.h"
#include "check/shrink.h"
#include "core/bounds.h"
#include "core/leakage.h"
#include "util/string_util.h"

namespace infoleak::check {
namespace {

#ifndef INFOLEAK_SOURCE_DIR
#define INFOLEAK_SOURCE_DIR "."
#endif

constexpr char kCorpusDir[] = INFOLEAK_SOURCE_DIR "/tests/corpus/selfcheck";

// ---------------------------------------------------------------------------
// Case text form
// ---------------------------------------------------------------------------

TEST(CheckCaseTest, FormatParseRoundTrip) {
  CheckCase c;
  c.r = Record{{"A", "v1", 0.5}, {"B", "v2", 1e-9}};
  c.p = Record{{"A", "v1"}, {"C", "v3"}};
  ASSERT_TRUE(c.wm.SetWeight("A", 2.5).ok());
  auto round = Canonicalize(c);
  ASSERT_TRUE(round.ok()) << round.status().message();
  EXPECT_EQ(FormatCase(*round), FormatCase(c));
}

// Canonicalize must be the identity, not merely idempotent: the text form
// is how cases cross the wire and land in the corpus, so a lossy rendering
// would make bit-identical cross-path comparison unsound. The tiny
// confidence here is exactly the value the old 4-decimal rendering lost.
TEST(CheckCaseTest, TinyConfidenceSurvivesTextForm) {
  CheckCase c;
  c.r = Record{{"A", "v1", 1e-9}};
  c.p = Record{{"A", "v1"}};
  auto round = Canonicalize(c);
  ASSERT_TRUE(round.ok());
  EXPECT_EQ(round->r.attributes()[0].confidence, 1e-9);
}

TEST(CheckCaseTest, ParseRejectsUnknownPrefix) {
  EXPECT_FALSE(ParseCase("r: {}\np: {}\nq: huh\n", "t").ok());
}

TEST(CheckCaseTest, ParseRequiresBothRecords) {
  EXPECT_FALSE(ParseCase("r: {<A, v1, 0.5>}\n", "t").ok());
}

TEST(StringUtilTest, FormatDoubleRoundTripIsExact) {
  for (double v : {0.1, 1e-9, 1.0 - 1e-7, 0.33333333333333331, 1e300,
                   5e-324, 0.0, 1.0, 123456.789}) {
    const std::string text = FormatDoubleRoundTrip(v);
    EXPECT_EQ(std::strtod(text.c_str(), nullptr), v) << text;
  }
}

// ---------------------------------------------------------------------------
// Generator determinism
// ---------------------------------------------------------------------------

TEST(CaseGeneratorTest, SameSeedSameSequence) {
  CaseGenerator a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(FormatCase(a.Next()), FormatCase(b.Next())) << "case " << i;
  }
}

TEST(CaseGeneratorTest, DifferentSeedsDiverge) {
  CaseGenerator a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 50; ++i) {
    if (FormatCase(a.Next()) != FormatCase(b.Next())) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(CaseGeneratorTest, CaseSeedIsDeterministicAndSpread) {
  EXPECT_EQ(CaseGenerator::CaseSeed(1, 0), CaseGenerator::CaseSeed(1, 0));
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(CaseGenerator::CaseSeed(1, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);  // the SplitMix64 finalizer never collides
}

// Every generated case must survive its own text form — the generator is
// not allowed to produce cases the corpus could not hold.
TEST(CaseGeneratorTest, GeneratedCasesCanonicalize) {
  CaseGenerator gen(7);
  for (int i = 0; i < 500; ++i) {
    const CheckCase c = gen.Next();
    auto round = Canonicalize(c);
    ASSERT_TRUE(round.ok()) << c.name << ": " << round.status().message();
    EXPECT_EQ(FormatCase(*round), FormatCase(c)) << c.name;
  }
}

// ---------------------------------------------------------------------------
// Engine agreement properties (the ctest face of `infoleak selfcheck`)
// ---------------------------------------------------------------------------

// Exact (Algorithm 1) and naive (possible worlds) are independent
// derivations of the same expectation; under uniform weights on enumerable
// records they must agree to accumulated rounding.
TEST(SelfCheckPropertyTest, ExactMatchesNaiveUnderUniformWeights) {
  NaiveLeakage naive;
  ExactLeakage exact;
  CaseGenerator gen(11);
  WeightModel unit;
  int compared = 0;
  for (int i = 0; i < 300; ++i) {
    const CheckCase c = gen.Next();
    if (c.r.size() > 12) continue;
    const auto n = naive.RecordLeakage(c.r, c.p, unit);
    const auto e = exact.RecordLeakage(c.r, c.p, unit);
    ASSERT_TRUE(n.ok()) << c.name;
    ASSERT_TRUE(e.ok()) << c.name;
    EXPECT_NEAR(*n, *e, 1e-12) << c.name;
    ++compared;
  }
  EXPECT_GT(compared, 100);
}

// |approx − truth| must stay within the computable §5.2 error bound, with
// a hair of slack for the comparison baseline's own rounding.
TEST(SelfCheckPropertyTest, ApproxStaysWithinItsErrorBound) {
  NaiveLeakage naive;
  ApproxLeakage approx1(1), approx2(2);
  CaseGenerator gen(13);
  for (int i = 0; i < 300; ++i) {
    const CheckCase c = gen.Next();
    if (c.r.size() > 12) continue;
    const auto truth = naive.RecordLeakage(c.r, c.p, c.wm);
    if (!truth.ok()) continue;  // degenerate weights: no defined truth
    const auto a1 = approx1.RecordLeakage(c.r, c.p, c.wm);
    const auto a2 = approx2.RecordLeakage(c.r, c.p, c.wm);
    ASSERT_TRUE(a1.ok()) << c.name;
    ASSERT_TRUE(a2.ok()) << c.name;
    const double b1 = ApproxLeakageErrorBound(c.r, c.p, c.wm, 1);
    const double b2 = ApproxLeakageErrorBound(c.r, c.p, c.wm, 2);
    EXPECT_LE(std::abs(*a1 - *truth), b1 + 1e-9) << c.name;
    EXPECT_LE(std::abs(*a2 - *truth), b2 + 1e-9) << c.name;
  }
}

// The string-record API and the prepared fast path must agree
// bit-for-bit — not approximately — on every engine.
TEST(SelfCheckPropertyTest, PreparedPathIsBitIdentical) {
  NaiveLeakage naive(12);  // over-cap records must fail identically too
  ExactLeakage exact;
  ApproxLeakage approx;
  CaseGenerator gen(17);
  WeightModel unit;
  for (int i = 0; i < 200; ++i) {
    const CheckCase c = gen.Next();
    PreparedReference ref(c.p, c.wm);
    PreparedRecord pr(c.r, ref);
    LeakageWorkspace ws;
    for (const LeakageEngine* engine :
         {static_cast<const LeakageEngine*>(&naive),
          static_cast<const LeakageEngine*>(&exact),
          static_cast<const LeakageEngine*>(&approx)}) {
      const auto via_string = engine->RecordLeakage(c.r, c.p, c.wm);
      const auto via_prepared = engine->RecordLeakagePrepared(pr, ref, &ws);
      ASSERT_EQ(via_string.ok(), via_prepared.ok())
          << engine->name() << " " << c.name;
      if (via_string.ok()) {
        EXPECT_EQ(*via_string, *via_prepared)
            << engine->name() << " " << c.name;
      }
    }
  }
}

// The selfcheck-found regression: a uniform weight of exactly 0 must not
// let Algorithm 1 cancel it into an unweighted F1. Both engines agree the
// leakage is 0 (every world's weighted F1 is 0/0 → the per-world
// convention's 0).
TEST(SelfCheckPropertyTest, ZeroUniformWeightLeaksNothing) {
  Record r{{"B", "v5", 0.5}};
  Record p{{"B", "v5"}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("B", 0.0).ok());
  NaiveLeakage naive;
  ExactLeakage exact;
  const auto n = naive.RecordLeakage(r, p, wm);
  const auto e = exact.RecordLeakage(r, p, wm);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(*n, 0.0);
  EXPECT_EQ(*e, 0.0);
  const auto np = naive.ExpectedPrecision(r, p, wm);
  const auto ep = exact.ExpectedPrecision(r, p, wm);
  ASSERT_TRUE(np.ok());
  ASSERT_TRUE(ep.ok());
  EXPECT_EQ(*np, 0.0);
  EXPECT_EQ(*ep, 0.0);
}

// Engine outputs are probabilities: [0, 1] always, even for the
// weight/confidence extremes the generator is biased toward.
TEST(SelfCheckPropertyTest, EveryEngineValueStaysInUnitInterval) {
  NaiveLeakage naive(12);  // cap enumeration; big records still hit the rest
  ExactLeakage exact;
  ApproxLeakage approx;
  AutoLeakage autoe;
  CaseGenerator gen(19);
  for (int i = 0; i < 500; ++i) {
    const CheckCase c = gen.Next();
    for (const LeakageEngine* engine :
         {static_cast<const LeakageEngine*>(&naive),
          static_cast<const LeakageEngine*>(&exact),
          static_cast<const LeakageEngine*>(&approx),
          static_cast<const LeakageEngine*>(&autoe)}) {
      const auto v = engine->RecordLeakage(c.r, c.p, c.wm);
      if (!v.ok()) continue;
      EXPECT_GE(*v, 0.0) << engine->name() << " " << c.name;
      EXPECT_LE(*v, 1.0) << engine->name() << " " << c.name;
    }
  }
}

// ---------------------------------------------------------------------------
// Oracle + shrinker
// ---------------------------------------------------------------------------

TEST(OracleTest, CleanOnGeneratedCases) {
  Oracle oracle;
  CaseGenerator gen(23);
  std::size_t comparisons = 0;
  for (int i = 0; i < 200; ++i) {
    const CheckCase c = gen.Next();
    const OracleOutcome o =
        oracle.Evaluate(c, CaseGenerator::CaseSeed(23, i));
    for (const Finding& f : o.findings) {
      ADD_FAILURE() << f.kind << " on " << c.name << ": " << f.detail;
    }
    comparisons += o.comparisons;
  }
  EXPECT_GT(comparisons, 200u);
}

// The shrinker must strip everything irrelevant to the predicate and keep
// the failure. Predicate: "r contains an attribute with label D".
TEST(ShrinkTest, RemovesIrrelevantStructure) {
  CheckCase fat;
  fat.r = Record{{"A", "v1", 0.25},
                 {"B", "v2", 0.5},
                 {"C", "v3", 0.75},
                 {"D", "v4", 0.125}};
  fat.p = Record{{"A", "v1"}, {"B", "v2"}};
  ASSERT_TRUE(fat.wm.SetWeight("A", 3.0).ok());
  fat.name = "fat";
  auto has_d = [](const CheckCase& c) {
    for (const auto& a : c.r) {
      if (a.label == "D") return true;
    }
    return false;
  };
  const CheckCase slim = Shrink(fat, has_d);
  EXPECT_TRUE(has_d(slim));
  EXPECT_EQ(slim.r.size(), 1u);
  EXPECT_EQ(slim.p.size(), 0u);
  EXPECT_TRUE(slim.wm.explicit_weights().empty());
  EXPECT_EQ(slim.name, "fat/shrunk");
}

TEST(ShrinkTest, SimplifiesConfidencesTowardOne) {
  CheckCase c;
  c.r = Record{{"A", "v1", 0.1234567}};
  c.p = Record{{"A", "v1"}};
  c.name = "conf";
  auto has_a = [](const CheckCase& cand) { return cand.r.size() == 1; };
  const CheckCase slim = Shrink(c, has_a);
  EXPECT_EQ(slim.r.attributes()[0].confidence, 1.0);
}

TEST(ShrinkTest, IsDeterministic) {
  CaseGenerator gen(29);
  const CheckCase c = gen.Next();
  auto nonempty = [](const CheckCase& cand) { return !cand.r.empty(); };
  EXPECT_EQ(FormatCase(Shrink(c, nonempty)), FormatCase(Shrink(c, nonempty)));
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

// Every checked-in regression must replay clean: each *.case file encodes
// a bug this repo fixed, and a reappearance is a regression, not noise.
TEST(CorpusTest, CheckedInCorpusReplaysClean) {
  auto corpus = LoadCorpus(kCorpusDir);
  ASSERT_TRUE(corpus.ok()) << corpus.status().message();
  ASSERT_GE(corpus->size(), 4u) << "corpus missing from " << kCorpusDir;
  Oracle oracle;
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    auto c = Canonicalize((*corpus)[i]);
    ASSERT_TRUE(c.ok()) << (*corpus)[i].name;
    const OracleOutcome o =
        oracle.Evaluate(*c, CaseGenerator::CaseSeed(1, 4096 + i));
    for (const Finding& f : o.findings) {
      ADD_FAILURE() << c->name << " regressed [" << f.kind
                    << "]: " << f.detail;
    }
  }
}

// The corpus replay above exercises the columnar path implicitly (the
// oracle's columnar-vs-prepared property is on by default); this pins it
// explicitly: every checked-in case, pushed through a ColumnBank, must
// reproduce the prepared path bit for bit on every columnar-capable engine.
TEST(CorpusTest, CheckedInCorpusReplaysThroughColumnar) {
  auto corpus = LoadCorpus(kCorpusDir);
  ASSERT_TRUE(corpus.ok()) << corpus.status().message();
  ASSERT_GE(corpus->size(), 4u) << "corpus missing from " << kCorpusDir;
  NaiveLeakage naive(16);
  ExactLeakage exact;
  ApproxLeakage approx;
  AutoLeakage autoe;
  for (std::size_t i = 0; i < corpus->size(); ++i) {
    auto c = Canonicalize((*corpus)[i]);
    ASSERT_TRUE(c.ok()) << (*corpus)[i].name;
    const PreparedReference ref(c->p, c->wm);
    PreparedRecord pr(c->r, ref);
    ColumnBank bank(ref);
    bank.Append(c->r);
    const ColumnRecordView v = bank.view(0);
    LeakageWorkspace ws, cws;
    for (const LeakageEngine* engine :
         {static_cast<const LeakageEngine*>(&naive),
          static_cast<const LeakageEngine*>(&exact),
          static_cast<const LeakageEngine*>(&approx),
          static_cast<const LeakageEngine*>(&autoe)}) {
      const auto lp = engine->RecordLeakagePrepared(pr, ref, &ws);
      const auto lc = engine->RecordLeakageColumnar(v, ref, &cws);
      ASSERT_EQ(lp.ok(), lc.ok()) << engine->name() << " " << c->name;
      if (lp.ok()) {
        EXPECT_EQ(*lp, *lc) << engine->name() << " " << c->name;
      }
      const auto rp = engine->ExpectedRecallPrepared(pr, ref, &ws);
      const auto rc = engine->ExpectedRecallColumnar(v, ref, &cws);
      ASSERT_EQ(rp.ok(), rc.ok()) << engine->name() << " " << c->name;
      if (rp.ok()) {
        EXPECT_EQ(*rp, *rc) << engine->name() << " " << c->name;
      }
    }
  }
}

TEST(CorpusTest, MissingDirectoryIsEmptyCorpus) {
  auto corpus = LoadCorpus(INFOLEAK_SOURCE_DIR "/tests/corpus/no-such-dir");
  ASSERT_TRUE(corpus.ok());
  EXPECT_TRUE(corpus->empty());
}

// ---------------------------------------------------------------------------
// Full harness, offline engines only (served/durable paths have their own
// integration coverage through the CLI smoke in scripts/ci.sh)
// ---------------------------------------------------------------------------

TEST(SelfCheckRunTest, OfflineHarnessRunsClean) {
  SelfCheckConfig config;
  config.cases = 150;
  config.seed = 31;
  config.check_served = false;
  config.check_durable = false;
  auto report = RunSelfCheck(config);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->generated_cases, 150u);
  for (const Finding& f : report->findings) {
    ADD_FAILURE() << "[" << f.kind << "] " << f.detail << "\n"
                  << FormatCase(f.c);
  }
  EXPECT_TRUE(report->clean());
  EXPECT_NE(report->Summary().find("0 disagreement(s)"), std::string::npos);
}

TEST(SelfCheckRunTest, ServedAndDurablePathsAgree) {
  SelfCheckConfig config;
  config.cases = 40;
  config.seed = 37;
  auto report = RunSelfCheck(config);
  ASSERT_TRUE(report.ok()) << report.status().message();
  for (const Finding& f : report->findings) {
    ADD_FAILURE() << "[" << f.kind << "] " << f.detail << "\n"
                  << FormatCase(f.c);
  }
  EXPECT_TRUE(report->clean());
}

}  // namespace
}  // namespace infoleak::check
