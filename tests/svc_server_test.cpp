#include "svc/server.h"

#include <gtest/gtest.h>

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/leakage.h"
#include "core/record_io.h"
#include "svc/client.h"

namespace infoleak::svc {
namespace {

constexpr const char* kDbCsv =
    "record,label,value,confidence\n"
    "0,N,Alice,1\n0,P,123,1\n"
    "1,N,Alice,1\n1,C,999,1\n"
    "2,N,Bob,1\n2,P,987,1\n";

constexpr const char* kReference =
    "{<N, Alice, 1>, <P, 123, 1>, <C, 999, 1>, <Z, 111, 1>}";

/// One running server on an ephemeral port, torn down via graceful drain.
class ServerFixture {
 public:
  explicit ServerFixture(ServerConfig config = {}) {
    auto db = LoadDatabaseCsv(kDbCsv);
    EXPECT_TRUE(db.ok());
    service_ = std::make_unique<LeakageService>(
        RecordStore::FromDatabase(*db));
    config.port = 0;
    server_ = std::make_unique<Server>(*service_, config);
    Status started = server_->Start();
    EXPECT_TRUE(started.ok()) << started.ToString();
    runner_ = std::thread([this] { run_result_ = server_->Run(); });
  }

  ~ServerFixture() { Shutdown(); }

  void Shutdown() {
    if (runner_.joinable()) {
      server_->RequestShutdown();
      runner_.join();
      EXPECT_TRUE(run_result_.ok()) << run_result_.ToString();
    }
  }

  int port() const { return server_->port(); }
  Server& server() { return *server_; }

  Client MustConnect(int timeout_ms = 10000) {
    auto client = Client::Connect("127.0.0.1", port(), timeout_ms);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(client).value();
  }

 private:
  std::unique_ptr<LeakageService> service_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
  Status run_result_;
};

/// Raw socket for protocol-abuse tests the Client refuses to produce.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr),
                        sizeof(addr)),
              0);
    timeval tv{5, 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }
  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void Send(std::string_view bytes) {
    ASSERT_EQ(::send(fd_, bytes.data(), bytes.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(bytes.size()));
  }

  /// Reads until '\n' (stripped) or EOF/timeout (empty).
  std::string ReadLine() {
    std::string line;
    char c;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') return line;
      line.push_back(c);
    }
    return std::string();
  }

 private:
  int fd_ = -1;
};

TEST(ServerTest, AnswersBitIdenticalToOfflineApiUnderConcurrency) {
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  AutoLeakage engine;
  std::ptrdiff_t argmax = -1;
  auto expected_set = SetLeakageArgMax(*db, *reference, *weights, engine,
                                       &argmax);
  ASSERT_TRUE(expected_set.ok());
  auto expected_rec = engine.RecordLeakage((*db)[0], *reference, *weights);
  ASSERT_TRUE(expected_rec.ok());

  ServerFixture fixture;
  std::vector<std::thread> callers;
  for (int t = 0; t < 8; ++t) {
    callers.emplace_back([&] {
      Client client = fixture.MustConnect();
      for (int i = 0; i < 25; ++i) {
        JsonValue set_req = JsonValue::Object();
        set_req.Set("reference", JsonValue::Str(kReference));
        auto set = client.CallVerb("set-leak", std::move(set_req));
        ASSERT_TRUE(set.ok()) << set.status().ToString();
        ASSERT_EQ(set->GetNumber("leakage", -1), *expected_set);
        ASSERT_EQ(set->GetNumber("argmax", -2), static_cast<double>(argmax));

        JsonValue leak_req = JsonValue::Object();
        leak_req.Set("reference", JsonValue::Str(kReference));
        leak_req.Set("record_id", JsonValue::Number(0));
        auto leak = client.CallVerb("leak", std::move(leak_req));
        ASSERT_TRUE(leak.ok()) << leak.status().ToString();
        ASSERT_EQ(leak->GetNumber("leakage", -1), *expected_rec);
      }
    });
  }
  for (auto& t : callers) t.join();
}

TEST(ServerTest, PipelinedRequestsAllAnswered) {
  ServerFixture fixture;
  RawConn conn(fixture.port());
  // Three requests in one write; with several workers the responses may
  // interleave, but each carries its id, so all three must come back.
  conn.Send(
      "{\"verb\":\"ping\",\"id\":1}\n"
      "{\"verb\":\"stats\",\"id\":2}\n"
      "{\"verb\":\"ping\",\"id\":3}\n");
  std::vector<double> ids;
  for (int i = 0; i < 3; ++i) {
    auto response = ParseJson(conn.ReadLine());
    ASSERT_TRUE(response.ok());
    ids.push_back(response->GetNumber("id", -1));
  }
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<double>{1, 2, 3}));
}

TEST(ServerTest, TruncatedLineAcrossWritesIsOneFrame) {
  ServerFixture fixture;
  RawConn conn(fixture.port());
  conn.Send("{\"verb\":\"pi");
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  conn.Send("ng\",\"id\":9}\n");
  auto response = ParseJson(conn.ReadLine());
  ASSERT_TRUE(response.ok());
  EXPECT_TRUE(response->GetBool("pong", false));
  EXPECT_DOUBLE_EQ(response->GetNumber("id", -1), 9.0);
}

TEST(ServerTest, InvalidJsonGetsErrorResponseNotDisconnect) {
  ServerFixture fixture;
  RawConn conn(fixture.port());
  conn.Send("this is not json\n");
  auto response = ParseJson(conn.ReadLine());
  ASSERT_TRUE(response.ok());
  EXPECT_FALSE(response->GetBool("ok", true));
  EXPECT_EQ(response->GetString("code"), "invalid_argument");
  // The connection survives the bad frame.
  conn.Send("{\"verb\":\"ping\"}\n");
  auto next = ParseJson(conn.ReadLine());
  ASSERT_TRUE(next.ok());
  EXPECT_TRUE(next->GetBool("pong", false));
}

TEST(ServerTest, UnknownVerbIsCleanError) {
  ServerFixture fixture;
  Client client = fixture.MustConnect();
  JsonValue req = JsonValue::Object();
  req.Set("verb", JsonValue::Str("transmogrify"));
  auto response = client.Call(req);
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsInvalidArgument())
      << response.status().ToString();
}

TEST(ServerTest, OversizedFrameIsRejectedAndConnectionClosed) {
  ServerConfig config;
  config.max_frame_bytes = 256;
  ServerFixture fixture(config);
  RawConn conn(fixture.port());
  std::string huge = "{\"verb\":\"ping\",\"pad\":\"";
  huge += std::string(1024, 'x');
  huge += "\"}\n";
  conn.Send(huge);
  auto response = ParseJson(conn.ReadLine());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("code"), "frame_too_large");
  // Server closes after flushing the error.
  EXPECT_EQ(conn.ReadLine(), "");
  fixture.Shutdown();
  EXPECT_GE(fixture.server().stats().frame_errors, 1u);
}

TEST(ServerTest, OversizedFrameWithoutNewlineIsCaughtEarly) {
  ServerConfig config;
  config.max_frame_bytes = 128;
  ServerFixture fixture(config);
  RawConn conn(fixture.port());
  // No terminator at all: the server must not buffer forever.
  conn.Send(std::string(4096, 'y'));
  auto response = ParseJson(conn.ReadLine());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("code"), "frame_too_large");
}

TEST(ServerTest, ClientDisconnectMidResponseDoesNotCrashServer) {
  ServerFixture fixture;
  for (int i = 0; i < 10; ++i) {
    RawConn conn(fixture.port());
    conn.Send("{\"verb\":\"stats\"}\n{\"verb\":\"ping\"}\n");
    conn.Close();  // vanish before the responses flush
  }
  // The server is still healthy for a well-behaved client.
  Client client = fixture.MustConnect();
  auto response = client.CallVerb("ping", JsonValue::Object());
  ASSERT_TRUE(response.ok()) << response.status().ToString();
}

TEST(ServerTest, QueueOverflowShedsWithOverloaded) {
  ServerConfig config;
  config.workers = 1;
  config.queue_depth = 1;
  config.deadline_ms = 0;  // irrelevant here
  ServerFixture fixture(config);

  // Occupy the single worker, then flood: with the worker busy and depth 1,
  // at least one of the burst must be shed, and the acceptor keeps serving.
  Client blocker = fixture.MustConnect();
  std::thread burner([&] {
    JsonValue req = JsonValue::Object();
    req.Set("burn_ms", JsonValue::Number(600));
    auto r = blocker.CallVerb("ping", std::move(req));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  RawConn flood(fixture.port());
  std::string burst;
  for (int i = 0; i < 8; ++i) burst += "{\"verb\":\"ping\"}\n";
  flood.Send(burst);
  int overloaded = 0, okay = 0;
  for (int i = 0; i < 8; ++i) {
    auto response = ParseJson(flood.ReadLine());
    ASSERT_TRUE(response.ok());
    if (response->GetString("code") == "overloaded") {
      ++overloaded;
    } else if (response->GetBool("ok", false)) {
      ++okay;
    }
  }
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(overloaded + okay, 8);
  burner.join();

  fixture.Shutdown();
  EXPECT_EQ(fixture.server().stats().shed,
            static_cast<uint64_t>(overloaded));
}

TEST(ServerTest, DeadlineExpiresMidEvaluation) {
  ServerConfig config;
  config.workers = 1;
  config.deadline_ms = 80;
  ServerFixture fixture(config);
  Client client = fixture.MustConnect();
  JsonValue req = JsonValue::Object();
  req.Set("burn_ms", JsonValue::Number(2000));
  auto response = client.CallVerb("ping", std::move(req));
  ASSERT_FALSE(response.ok());
  EXPECT_TRUE(response.status().IsDeadlineExceeded())
      << response.status().ToString();

  fixture.Shutdown();
  EXPECT_GE(fixture.server().stats().deadline_misses, 1u);
}

TEST(ServerTest, GracefulDrainFinishesInFlightWork) {
  ServerConfig config;
  config.workers = 2;
  ServerFixture fixture(config);
  Client client = fixture.MustConnect();

  // Launch a slow request, then trigger shutdown while it runs: the drain
  // must deliver its response before the server exits.
  std::thread slow([&] {
    JsonValue req = JsonValue::Object();
    req.Set("burn_ms", JsonValue::Number(400));
    auto r = client.CallVerb("ping", std::move(req));
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fixture.server().RequestShutdown();
  slow.join();
  fixture.Shutdown();
  EXPECT_EQ(fixture.server().stats().requests, 1u);
}

TEST(ServerTest, DrainingServerRejectsNewFrames) {
  ServerConfig config;
  config.workers = 1;
  ServerFixture fixture(config);
  Client busy = fixture.MustConnect();
  RawConn late(fixture.port());

  std::thread slow([&] {
    JsonValue req = JsonValue::Object();
    req.Set("burn_ms", JsonValue::Number(500));
    (void)busy.CallVerb("ping", std::move(req));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  fixture.server().RequestShutdown();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  late.Send("{\"verb\":\"ping\"}\n");
  auto response = ParseJson(late.ReadLine());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response->GetString("code"), "shutting_down");
  slow.join();
  fixture.Shutdown();
  EXPECT_GE(fixture.server().stats().rejected_draining, 1u);
}

TEST(ClientTest, ConnectToClosedPortFailsCleanly) {
  // Bind-then-close to get a port that is almost certainly unoccupied.
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  ASSERT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  const int port = ntohs(addr.sin_port);
  ::close(fd);

  auto client = Client::Connect("127.0.0.1", port, 1000);
  EXPECT_FALSE(client.ok());
}

}  // namespace
}  // namespace infoleak::svc
