#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace infoleak {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ZeroSeedIsValid) {
  Rng r(0);
  // The all-zero xoshiro state is avoided; the stream must not be stuck.
  std::set<uint64_t> seen;
  for (int i = 0; i < 50; ++i) seen.insert(r.NextUint64());
  EXPECT_GT(seen.size(), 45u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, NextDoubleRoughlyUniform) {
  Rng r(11);
  int low = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (r.NextDouble() < 0.5) ++low;
  }
  // 5-sigma band around the binomial mean.
  EXPECT_NEAR(low, kN / 2, 5 * 160);
}

TEST(RngTest, UniformRespectsRange) {
  Rng r(13);
  for (int i = 0; i < 1000; ++i) {
    double d = r.Uniform(2.5, 7.5);
    EXPECT_GE(d, 2.5);
    EXPECT_LT(d, 7.5);
  }
}

TEST(RngTest, NextBoundedInRange) {
  Rng r(17);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(r.NextBounded(n), n);
    }
  }
}

TEST(RngTest, NextBoundedZeroReturnsZero) {
  Rng r(19);
  EXPECT_EQ(r.NextBounded(0), 0u);
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng r(23);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng r(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.Bernoulli(0.0));
    EXPECT_TRUE(r.Bernoulli(1.0));
    EXPECT_FALSE(r.Bernoulli(-0.5));
    EXPECT_TRUE(r.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng r(31);
  int hits = 0;
  const int kN = 100000;
  for (int i = 0; i < kN; ++i) {
    if (r.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits, 30000, 5 * 145);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r(37);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> original = v;
  r.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng r(41);
  std::vector<int> empty;
  r.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{42};
  r.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(43);
  Rng child = parent.Fork();
  // Child and parent should not emit identical sequences.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextUint64() == child.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(47);
  Rng b(47);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(fa.NextUint64(), fb.NextUint64());
  }
}

}  // namespace
}  // namespace infoleak
