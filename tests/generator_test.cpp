#include "gen/generator.h"

#include <gtest/gtest.h>

#include "core/leakage.h"

namespace infoleak {
namespace {

TEST(GeneratorConfigTest, BasicMatchesTable4) {
  GeneratorConfig c = GeneratorConfig::Basic();
  EXPECT_EQ(c.n, 100u);
  EXPECT_EQ(c.num_records, 10000u);
  EXPECT_DOUBLE_EQ(c.copy_prob, 0.5);
  EXPECT_DOUBLE_EQ(c.perturb_prob, 0.5);
  EXPECT_DOUBLE_EQ(c.bogus_prob, 0.5);
  EXPECT_DOUBLE_EQ(c.max_confidence, 0.5);
  EXPECT_FALSE(c.random_weights);
  EXPECT_TRUE(c.Validate().ok());
}

TEST(GeneratorConfigTest, ValidationRejectsBadParameters) {
  GeneratorConfig c;
  c.n = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = GeneratorConfig{};
  c.copy_prob = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = GeneratorConfig{};
  c.perturb_prob = -0.1;
  EXPECT_FALSE(c.Validate().ok());
  c = GeneratorConfig{};
  c.max_confidence = 2.0;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(GeneratorTest, ReferenceHasNAttributes) {
  GeneratorConfig c;
  c.n = 37;
  c.num_records = 1;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->reference.size(), 37u);
  for (const auto& a : data->reference) {
    EXPECT_DOUBLE_EQ(a.confidence, 1.0);
  }
}

TEST(GeneratorTest, DatasetIsDeterministic) {
  GeneratorConfig c;
  c.n = 20;
  c.num_records = 50;
  c.seed = 777;
  auto d1 = GenerateDataset(c);
  auto d2 = GenerateDataset(c);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_EQ(d1->reference, d2->reference);
  ASSERT_EQ(d1->records.size(), d2->records.size());
  for (std::size_t i = 0; i < d1->records.size(); ++i) {
    EXPECT_EQ(d1->records[i], d2->records[i]);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorConfig c;
  c.n = 20;
  c.num_records = 5;
  c.seed = 1;
  auto d1 = GenerateDataset(c);
  c.seed = 2;
  auto d2 = GenerateDataset(c);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  EXPECT_FALSE(d1->reference == d2->reference);
}

TEST(GeneratorTest, ExtendingRecordCountKeepsPrefix) {
  GeneratorConfig c;
  c.n = 10;
  c.seed = 99;
  c.num_records = 10;
  auto small = GenerateDataset(c);
  c.num_records = 20;
  auto large = GenerateDataset(c);
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(small->records[i], large->records[i]) << "record " << i;
  }
}

TEST(GeneratorTest, ZeroCopyYieldsNoCorrectAttributes) {
  GeneratorConfig c;
  c.n = 30;
  c.num_records = 20;
  c.copy_prob = 0.0;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  WeightModel unit;
  for (const auto& r : data->records) {
    EXPECT_DOUBLE_EQ(unit.OverlapWeight(r, data->reference), 0.0);
  }
}

TEST(GeneratorTest, FullCopyNoPerturbNoBogusReproducesReference) {
  GeneratorConfig c;
  c.n = 15;
  c.num_records = 5;
  c.copy_prob = 1.0;
  c.perturb_prob = 0.0;
  c.bogus_prob = 0.0;
  c.max_confidence = 1.0;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  WeightModel unit;
  for (const auto& r : data->records) {
    EXPECT_EQ(r.size(), 15u);
    EXPECT_DOUBLE_EQ(unit.OverlapWeight(r, data->reference), 15.0);
  }
}

TEST(GeneratorTest, FullPerturbationYieldsZeroLeakage) {
  // pp = 1 makes every copied attribute incorrect: Table 5's fourth row
  // reports exactly 0 leakage.
  GeneratorConfig c;
  c.n = 20;
  c.num_records = 50;
  c.perturb_prob = 1.0;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  ExactLeakage engine;
  auto l = SetLeakage(data->records, data->reference, data->weights, engine);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(*l, 0.0);
}

TEST(GeneratorTest, ConfidencesBoundedByMax) {
  GeneratorConfig c;
  c.n = 20;
  c.num_records = 30;
  c.max_confidence = 0.3;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  for (const auto& r : data->records) {
    for (const auto& a : r) {
      EXPECT_GE(a.confidence, 0.0);
      EXPECT_LE(a.confidence, 0.3);
    }
  }
}

TEST(GeneratorTest, RandomWeightsCoverAllLabels) {
  GeneratorConfig c;
  c.n = 10;
  c.num_records = 5;
  c.random_weights = true;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  EXPECT_FALSE(data->weights.IsConstant());
  for (const auto& a : data->reference) {
    double w = data->weights.Weight(a.label);
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  // Every explicit weight was drawn from [0, 1).
  for (const auto& [label, w] : data->weights.explicit_weights()) {
    EXPECT_GE(w, 0.0);
    EXPECT_LT(w, 1.0);
  }
}

TEST(GeneratorTest, ConstantWeightsByDefault) {
  GeneratorConfig c;
  c.n = 5;
  c.num_records = 1;
  auto data = GenerateDataset(c);
  ASSERT_TRUE(data.ok());
  EXPECT_TRUE(data->weights.IsConstant());
}

TEST(GeneratorTest, HigherCopyProbabilityMeansMoreLeakage) {
  // The Figure 3(a) trend, asserted coarsely at the two extremes.
  ExactLeakage engine;
  GeneratorConfig lo;
  lo.n = 40;
  lo.num_records = 100;
  lo.copy_prob = 0.1;
  GeneratorConfig hi = lo;
  hi.copy_prob = 0.9;
  auto dlo = GenerateDataset(lo);
  auto dhi = GenerateDataset(hi);
  ASSERT_TRUE(dlo.ok());
  ASSERT_TRUE(dhi.ok());
  auto llo = SetLeakage(dlo->records, dlo->reference, dlo->weights, engine);
  auto lhi = SetLeakage(dhi->records, dhi->reference, dhi->weights, engine);
  ASSERT_TRUE(llo.ok());
  ASSERT_TRUE(lhi.ok());
  EXPECT_GT(*lhi, *llo);
}

}  // namespace
}  // namespace infoleak
