#include "core/database.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(DatabaseTest, AddStampsSequentialIds) {
  Database db;
  RecordId a = db.Add(Record{{"N", "Alice"}});
  RecordId b = db.Add(Record{{"N", "Bob"}});
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_TRUE(db[0].HasSource(0));
  EXPECT_TRUE(db[1].HasSource(1));
}

TEST(DatabaseTest, ConstructorFromVectorStampsIds) {
  Database db({Record{{"A", "1"}}, Record{{"B", "2"}}, Record{{"C", "3"}}});
  EXPECT_EQ(db.size(), 3u);
  EXPECT_TRUE(db[2].HasSource(2));
}

TEST(DatabaseTest, AddPreservesExistingProvenance) {
  Record merged{{"N", "Alice"}};
  merged.AddSource(5);
  merged.AddSource(9);
  Database db;
  db.Add(merged);
  EXPECT_EQ(db[0].sources(), (std::vector<RecordId>{5, 9}));
  // A later fresh record must not collide with id 5 or 9.
  RecordId fresh = db.Add(Record{{"N", "Bob"}});
  EXPECT_GT(fresh, 9u);
}

TEST(DatabaseTest, FindBySource) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  RecordId bob = db.Add(Record{{"N", "Bob"}});
  auto found = db.FindBySource(bob);
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found->Contains("N", "Bob"));
  EXPECT_TRUE(db.FindBySource(999).status().IsNotFound());
}

TEST(DatabaseTest, WithRecordDoesNotMutateOriginal) {
  Database db;
  db.Add(Record{{"A", "1"}});
  Database extended = db.WithRecord(Record{{"B", "2"}});
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(extended.size(), 2u);
  EXPECT_TRUE(extended[1].HasSource(1));
}

TEST(DatabaseTest, TotalAttributes) {
  Database db;
  db.Add(Record{{"A", "1"}, {"B", "2"}});
  db.Add(Record{{"C", "3"}});
  db.Add(Record{});
  EXPECT_EQ(db.TotalAttributes(), 3u);
}

TEST(DatabaseTest, EmptyDatabase) {
  Database db;
  EXPECT_TRUE(db.empty());
  EXPECT_EQ(db.size(), 0u);
  EXPECT_EQ(db.TotalAttributes(), 0u);
}

}  // namespace
}  // namespace infoleak
