// The columnar evaluation plane must be a pure representation change:
// every engine's columnar path (ColumnBank + array kernels) has to return
// *bit-identical* results to its prepared path — the bank stores the same
// canonical attribute order and resolves the same weights, and the kernels
// keep every reduction in the scalar accumulation order. These tests sweep
// randomized (r, p) pairs — unit, random, and all-zero weights, over-cap
// records, fully disjoint records — through all four engines and assert
// equality with EXPECT_EQ on doubles, not EXPECT_NEAR. They also pin the
// scalar-vs-SIMD kernel contract, incremental bank construction, the
// sharded/cancellable columnar scans, and workspace pointer stability.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/bounds.h"
#include "core/kernels.h"
#include "core/leakage.h"
#include "store/record_store.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace infoleak {
namespace {

struct RandomCase {
  Record p;
  Record r;
};

/// p has n_ref unit-confidence attributes; r copies each with probability
/// 0.6 (30% perturbed), plus bogus attributes, confidences in [0, max_conf].
RandomCase MakeRandomCase(Rng* rng, std::size_t n_ref, double max_conf) {
  RandomCase out;
  for (std::size_t i = 0; i < n_ref; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    std::string value = StrCat("v", std::to_string(i));
    out.p.Insert(Attribute(label, value, 1.0));
    if (rng->Bernoulli(0.6)) {
      std::string got = rng->Bernoulli(0.3) ? value + "_wrong" : value;
      out.r.Insert(Attribute(label, got, rng->Uniform(0.0, max_conf)));
    }
    if (rng->Bernoulli(0.4)) {
      out.r.Insert(Attribute(StrCat("B", std::to_string(i)), "bogus",
                             rng->Uniform(0.0, max_conf)));
    }
  }
  return out;
}

WeightModel RandomWeights(Rng* rng, const RandomCase& c) {
  WeightModel wm;
  for (const auto& a : c.p) {
    EXPECT_TRUE(wm.SetWeight(a.label, rng->Uniform(0.1, 1.0)).ok());
  }
  for (const auto& a : c.r) {
    if (wm.explicit_weights().count(a.label) == 0) {
      EXPECT_TRUE(wm.SetWeight(a.label, rng->Uniform(0.1, 1.0)).ok());
    }
  }
  return wm;
}

/// Asserts the columnar and prepared paths of `engine` agree bit-for-bit —
/// same ok-ness, and on success the exact same double — on all three
/// measures for (r, p, wm).
void ExpectColumnarBitIdentical(const LeakageEngine& engine, const Record& r,
                                const Record& p, const WeightModel& wm) {
  ASSERT_TRUE(engine.SupportsPrepared());
  ASSERT_TRUE(engine.SupportsColumnar());
  const PreparedReference ref(p, wm);
  PreparedRecord pr(r, ref);
  ColumnBank bank(ref);
  bank.Append(r);
  const ColumnRecordView v = bank.view(0);
  LeakageWorkspace ws;
  LeakageWorkspace cws;

  const auto lp = engine.RecordLeakagePrepared(pr, ref, &ws);
  const auto lc = engine.RecordLeakageColumnar(v, ref, &cws);
  ASSERT_EQ(lp.ok(), lc.ok()) << "r=" << r.ToString() << " p=" << p.ToString();
  if (lp.ok()) {
    EXPECT_EQ(*lp, *lc) << "r=" << r.ToString();
  }

  const auto pp = engine.ExpectedPrecisionPrepared(pr, ref, &ws);
  const auto pc = engine.ExpectedPrecisionColumnar(v, ref, &cws);
  ASSERT_EQ(pp.ok(), pc.ok());
  if (pp.ok()) {
    EXPECT_EQ(*pp, *pc) << "r=" << r.ToString();
  }

  const auto rp = engine.ExpectedRecallPrepared(pr, ref, &ws);
  const auto rc = engine.ExpectedRecallColumnar(v, ref, &cws);
  ASSERT_EQ(rp.ok(), rc.ok());
  if (rp.ok()) {
    EXPECT_EQ(*rp, *rc) << "r=" << r.ToString();
  }

  // Bounds ride along: the columnar bounds kernel must reproduce the
  // string-path bracket exactly.
  const LeakageBounds bs = BoundRecordLeakage(r, p, wm);
  const LeakageBounds bc = BoundRecordLeakageColumnar(bank, 0, &cws);
  EXPECT_EQ(bs.lower, bc.lower) << "r=" << r.ToString();
  EXPECT_EQ(bs.upper, bc.upper) << "r=" << r.ToString();
}

// ---------------------------------------------------------------------------
// Per-engine bit-identity sweeps
// ---------------------------------------------------------------------------

class ColumnarEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ColumnarEquivalence, UnitWeightsAllEngines) {
  Rng rng(GetParam() * 6151);
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage order1(1);
  ApproxLeakage order2(2);
  AutoLeakage dispatch;
  for (int trial = 0; trial < 8; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(7), 1.0);
    ExpectColumnarBitIdentical(naive, c.r, c.p, unit);
    ExpectColumnarBitIdentical(exact, c.r, c.p, unit);
    ExpectColumnarBitIdentical(order1, c.r, c.p, unit);
    ExpectColumnarBitIdentical(order2, c.r, c.p, unit);
    ExpectColumnarBitIdentical(dispatch, c.r, c.p, unit);
  }
}

TEST_P(ColumnarEquivalence, RandomWeightsAllEngines) {
  Rng rng(GetParam() * 13007);
  NaiveLeakage naive;
  ExactLeakage exact;  // rejects non-constant weights on both paths
  ApproxLeakage approx;
  AutoLeakage dispatch;
  for (int trial = 0; trial < 8; ++trial) {
    RandomCase c = MakeRandomCase(&rng, 1 + rng.NextBounded(7), 0.9);
    WeightModel wm = RandomWeights(&rng, c);
    ExpectColumnarBitIdentical(naive, c.r, c.p, wm);
    ExpectColumnarBitIdentical(exact, c.r, c.p, wm);
    ExpectColumnarBitIdentical(approx, c.r, c.p, wm);
    ExpectColumnarBitIdentical(dispatch, c.r, c.p, wm);
  }
}

TEST(ColumnarEquivalence, EdgeRecords) {
  Rng rng(99);
  WeightModel unit;
  RandomCase c = MakeRandomCase(&rng, 4, 0.8);
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage approx;
  AutoLeakage dispatch;

  // Empty r.
  Record empty;
  for (const LeakageEngine* e :
       {static_cast<const LeakageEngine*>(&naive),
        static_cast<const LeakageEngine*>(&exact),
        static_cast<const LeakageEngine*>(&approx),
        static_cast<const LeakageEngine*>(&dispatch)}) {
    ExpectColumnarBitIdentical(*e, empty, c.p, unit);
  }

  // r entirely disjoint from p (every id resolves to the kNoSymbol
  // sentinel in the bank's label column; every match_pos is kNoMatch).
  Record disjoint;
  disjoint.Insert(Attribute("X1", "y1", 0.7));
  disjoint.Insert(Attribute("X2", "y2", 0.4));
  ExpectColumnarBitIdentical(exact, disjoint, c.p, unit);
  ExpectColumnarBitIdentical(approx, disjoint, c.p, unit);
  ExpectColumnarBitIdentical(naive, disjoint, c.p, unit);

  // r == p exactly.
  ExpectColumnarBitIdentical(exact, c.p, c.p, unit);
  ExpectColumnarBitIdentical(approx, c.p, c.p, unit);
}

TEST(ColumnarEquivalence, OverCapRecordFailsIdenticallyOnBothPaths) {
  // 18 attributes exceeds NaiveLeakage's default 2^|r| cap: the columnar
  // path must refuse exactly when the prepared path refuses.
  WeightModel unit;
  Record p, r;
  for (int i = 0; i < 18; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    p.Insert(Attribute(label, "v", 1.0));
    r.Insert(Attribute(label, "v", 0.5));
  }
  NaiveLeakage naive(16);
  ExpectColumnarBitIdentical(naive, r, p, unit);  // both fail, same ok-ness

  const PreparedReference ref(p, unit);
  ColumnBank bank(ref);
  bank.Append(r);
  LeakageWorkspace ws;
  const auto res = naive.RecordLeakageColumnar(bank.view(0), ref, &ws);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().ToString();
}

TEST(ColumnarEquivalence, AllZeroWeights) {
  // A uniform weight of exactly 0 exercises the 0/0-convention branch that
  // once split naive and exact (see UniformWeightIsZero); the columnar
  // path must take the same branch.
  WeightModel zero;
  Record p, r;
  for (int i = 0; i < 3; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    ASSERT_TRUE(zero.SetWeight(label, 0.0).ok());
    p.Insert(Attribute(label, "v", 1.0));
    r.Insert(Attribute(label, "v", 0.5));
  }
  NaiveLeakage naive;
  ExactLeakage exact;
  AutoLeakage dispatch;
  ExpectColumnarBitIdentical(naive, r, p, zero);
  ExpectColumnarBitIdentical(exact, r, p, zero);
  ExpectColumnarBitIdentical(dispatch, r, p, zero);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ColumnarEquivalence,
                         ::testing::Range(uint64_t{1}, uint64_t{13}));

// ---------------------------------------------------------------------------
// Bank construction: FromDatabase == incremental Append/ExtendFrom
// ---------------------------------------------------------------------------

TEST(ColumnBankTest, IncrementalExtendMatchesFromDatabase) {
  Rng rng(1234);
  WeightModel unit;
  RandomCase base = MakeRandomCase(&rng, 6, 1.0);
  const PreparedReference ref(base.p, unit);

  Database db;
  for (int i = 0; i < 30; ++i) {
    db.Add(MakeRandomCase(&rng, 1 + rng.NextBounded(6), 1.0).r);
  }

  const ColumnBank whole = ColumnBank::FromDatabase(db, ref);
  ColumnBank grown(ref);
  for (std::size_t i = 0; i < 10; ++i) grown.Append(db[i]);
  grown.ExtendFrom(db);  // records [10, 30)
  ASSERT_EQ(whole.size(), db.size());
  ASSERT_EQ(grown.size(), db.size());
  EXPECT_EQ(whole.attributes(), grown.attributes());
  EXPECT_EQ(whole.max_record_size(), grown.max_record_size());

  AutoLeakage engine;
  const auto a = BatchLeakageColumnar(whole, engine);
  const auto b = BatchLeakageColumnar(grown, engine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "record " << i;
  }
}

// ---------------------------------------------------------------------------
// Columnar scans: serial == sharded == record-at-a-time, cancellation
// ---------------------------------------------------------------------------

TEST(ColumnarScanTest, SerialAndShardedMatchPreparedScan) {
  Rng rng(777);
  WeightModel unit;
  RandomCase base = MakeRandomCase(&rng, 6, 1.0);
  const PreparedReference ref(base.p, unit);
  Database db;
  for (int i = 0; i < 101; ++i) {
    db.Add(MakeRandomCase(&rng, 1 + rng.NextBounded(6), 1.0).r);
  }
  const ColumnBank bank = ColumnBank::FromDatabase(db, ref);
  AutoLeakage engine;

  std::ptrdiff_t want_arg = -2;
  const auto want = SetLeakageArgMax(db, ref, engine, &want_arg);
  ASSERT_TRUE(want.ok());

  std::ptrdiff_t serial_arg = -2;
  const auto serial = SetLeakageColumnar(bank, engine, &serial_arg);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(*serial, *want);
  EXPECT_EQ(serial_arg, want_arg);

  ColumnScanOptions sharded;
  sharded.num_threads = 4;
  std::ptrdiff_t par_arg = -2;
  const auto par = SetLeakageColumnar(bank, engine, &par_arg, sharded);
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(*par, *want);
  EXPECT_EQ(par_arg, want_arg);
}

TEST(ColumnarScanTest, EmptyBankIsZeroWithNegativeArgmax) {
  WeightModel unit;
  Record p;
  p.Insert(Attribute("N", "x", 1.0));
  const PreparedReference ref(p, unit);
  ColumnBank bank(ref);
  AutoLeakage engine;
  std::ptrdiff_t argmax = 5;
  const auto got = SetLeakageColumnar(bank, engine, &argmax);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 0.0);
  EXPECT_EQ(argmax, -1);
}

TEST(ColumnarScanTest, CancellationAbortsWithDeadlineExceeded) {
  Rng rng(31);
  WeightModel unit;
  RandomCase base = MakeRandomCase(&rng, 5, 1.0);
  const PreparedReference ref(base.p, unit);
  Database db;
  for (int i = 0; i < 20; ++i) {
    db.Add(MakeRandomCase(&rng, 1 + rng.NextBounded(5), 1.0).r);
  }
  const ColumnBank bank = ColumnBank::FromDatabase(db, ref);
  AutoLeakage engine;

  ColumnScanOptions cancelled;
  cancelled.cancel = [] { return true; };
  const auto aborted = SetLeakageColumnar(bank, engine, nullptr, cancelled);
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsDeadlineExceeded())
      << aborted.status().ToString();

  // A cancel callback that never fires must not perturb the result.
  ColumnScanOptions armed;
  armed.cancel = [] { return false; };
  std::ptrdiff_t a1 = -2, a2 = -2;
  const auto plain = SetLeakageColumnar(bank, engine, &a1);
  const auto polled = SetLeakageColumnar(bank, engine, &a2, armed);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(*plain, *polled);
  EXPECT_EQ(a1, a2);
}

TEST(ColumnarScanTest, EngineWithoutColumnarPathIsRefused) {
  // A stub engine that supports nothing: the columnar scan must refuse it
  // with NotSupported instead of silently falling back.
  class StubEngine : public LeakageEngine {
   public:
    std::string_view name() const override { return "stub"; }
    Result<double> RecordLeakage(const Record&, const Record&,
                                 const WeightModel&) const override {
      return 0.5;
    }
    Result<double> ExpectedPrecision(const Record&, const Record&,
                                     const WeightModel&) const override {
      return 0.5;
    }
  };
  WeightModel unit;
  Record p;
  p.Insert(Attribute("N", "x", 1.0));
  const PreparedReference ref(p, unit);
  ColumnBank bank(ref);
  StubEngine stub;
  const auto got = SetLeakageColumnar(bank, stub);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotSupported)
      << got.status().ToString();
}

// ---------------------------------------------------------------------------
// Kernel dispatch: the wide table must reproduce the scalar reference
// bit-for-bit (the recurrence is element-wise independent; reductions stay
// scalar-ordered).
// ---------------------------------------------------------------------------

TEST(KernelTest, WideExactSumBitIdenticalToScalar) {
  Rng rng(2024);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t rn = 1 + rng.NextBounded(40);
    const std::size_t pn = 1 + rng.NextBounded(12);
    std::vector<double> rconf(rn);
    for (auto& c : rconf) c = rng.Uniform(0.0, 1.0);
    std::vector<double> match_conf(pn, 0.0);
    std::vector<uint32_t> match_rpos(pn, 0xFFFFFFFFu);
    for (std::size_t j = 0; j < pn; ++j) {
      if (rng.Bernoulli(0.6)) {
        const auto pos = static_cast<uint32_t>(rng.NextBounded(rn));
        match_rpos[j] = pos;
        match_conf[j] = rconf[pos];
      }
    }
    const double m = static_cast<double>(pn);
    std::vector<double> poly_s(rn + 1), poly_w(rn + 1);
    const double scalar = kern::Scalar().exact_sum(
        rconf.data(), rn, match_conf.data(), match_rpos.data(), pn, m, 2.0,
        poly_s.data());
    const double wide = kern::Wide().exact_sum(
        rconf.data(), rn, match_conf.data(), match_rpos.data(), pn, m, 2.0,
        poly_w.data());
    EXPECT_EQ(scalar, wide) << "rn=" << rn << " pn=" << pn
                            << " trial=" << trial;
  }
}

TEST(KernelTest, DispatchTablesAreWellFormed) {
  EXPECT_EQ(kern::Scalar().name, "scalar");
  const std::string_view wide = kern::Wide().name;
  EXPECT_TRUE(wide == "scalar" || wide == "avx2" || wide == "avx512")
      << wide;
  // Active() is either the scalar table (forced) or the wide table.
  const std::string_view active = kern::Active().name;
  if (kern::ForcedScalar()) {
    EXPECT_EQ(active, "scalar");
  } else {
    EXPECT_EQ(active, wide);
  }
}

// ---------------------------------------------------------------------------
// Workspace steady state: after ReserveFor, evaluating any record of the
// bank reallocates nothing — every buffer keeps its address.
// ---------------------------------------------------------------------------

TEST(ColumnarWorkspaceTest, ReserveForPinsEveryBufferAcrossEvaluations) {
  Rng rng(555);
  WeightModel unit;
  RandomCase base = MakeRandomCase(&rng, 8, 1.0);
  const PreparedReference ref(base.p, unit);
  Database db;
  for (int i = 0; i < 40; ++i) {
    db.Add(MakeRandomCase(&rng, 1 + rng.NextBounded(8), 1.0).r);
  }
  const ColumnBank bank = ColumnBank::FromDatabase(db, ref);
  AutoLeakage engine;

  LeakageWorkspace ws;
  ws.ReserveFor(bank.max_record_size(), ref.size());
  const double* poly = ws.poly.data();
  const double* conf = ws.conf.data();
  const double* weight = ws.weight.data();
  const double* match_conf = ws.match_conf.data();
  const uint32_t* match_rpos = ws.match_rpos.data();
  const uint8_t* matched = ws.matched.data();

  for (std::size_t i = 0; i < bank.size(); ++i) {
    const auto l = engine.RecordLeakageColumnar(bank.view(i), ref, &ws);
    ASSERT_TRUE(l.ok()) << l.status().ToString();
  }
  EXPECT_EQ(poly, ws.poly.data());
  EXPECT_EQ(conf, ws.conf.data());
  EXPECT_EQ(weight, ws.weight.data());
  EXPECT_EQ(match_conf, ws.match_conf.data());
  EXPECT_EQ(match_rpos, ws.match_rpos.data());
  EXPECT_EQ(matched, ws.matched.data());
}

// ---------------------------------------------------------------------------
// Concurrency: concurrent SetLeakColumnar queries racing an appender must
// be data-race-free (bank_mu serializes catch-up against scans) and every
// returned value must be a leakage the store could have held at some
// consistent snapshot. Named Columnar* so the TSan CI pass picks it up.
// ---------------------------------------------------------------------------

TEST(ColumnarConcurrencyTest, ConcurrentQueriesAndAppends) {
  Rng rng(4242);
  WeightModel unit;
  RandomCase base = MakeRandomCase(&rng, 5, 1.0);

  RecordStore store;
  std::vector<Record> extra;
  for (int i = 0; i < 48; ++i) {
    Record r = MakeRandomCase(&rng, 1 + rng.NextBounded(5), 1.0).r;
    if (r.empty()) r.Insert(Attribute("L0", "v0", 0.5));
    if (i < 16) {
      store.Append(r);
    } else {
      extra.push_back(std::move(r));
    }
  }

  const PreparedReference ref(base.p, unit);
  ColumnBank bank(ref);
  std::shared_mutex bank_mu;
  AutoLeakage engine;

  std::atomic<bool> failed{false};
  std::thread appender([&] {
    for (auto& r : extra) store.Append(std::move(r));
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      for (int q = 0; q < 8; ++q) {
        std::ptrdiff_t argmax = -2;
        const auto l =
            store.SetLeakColumnar(bank, bank_mu, engine, &argmax);
        if (!l.ok() || !(*l >= 0.0 && *l <= 1.0)) failed.store(true);
      }
    });
  }
  appender.join();
  for (auto& r : readers) r.join();
  EXPECT_FALSE(failed.load());

  // Quiescent: the final scan must agree bit-for-bit with the
  // record-at-a-time scan over the full store.
  std::ptrdiff_t want_arg = -2, got_arg = -2;
  const auto want = store.SetLeak(ref, engine, &want_arg);
  const auto got = store.SetLeakColumnar(bank, bank_mu, engine, &got_arg);
  ASSERT_TRUE(want.ok());
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*want, *got);
  EXPECT_EQ(want_arg, got_arg);
  EXPECT_EQ(bank.size(), store.size());
}

TEST(ColumnarConcurrencyTest, BankFromWrongStoreIsRejected) {
  WeightModel unit;
  Record p;
  p.Insert(Attribute("N", "x", 1.0));
  const PreparedReference ref(p, unit);

  // Bank grown past the store's size: the serving path must refuse it
  // rather than scan stale columns.
  RecordStore small;
  Record r;
  r.Insert(Attribute("N", "x", 0.5));
  Database big;
  big.Add(r);
  big.Add(r);
  ColumnBank bank = ColumnBank::FromDatabase(big, ref);
  std::shared_mutex bank_mu;
  AutoLeakage engine;
  const auto got = small.SetLeakColumnar(bank, bank_mu, engine);
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal)
      << got.status().ToString();
}

}  // namespace
}  // namespace infoleak
