#include "core/record.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(AttributeTest, SameInfoIgnoresConfidence) {
  Attribute a("N", "Alice", 0.5);
  Attribute b("N", "Alice", 0.9);
  EXPECT_TRUE(a.SameInfo(b));
  EXPECT_FALSE(a == b);  // full equality includes confidence
  EXPECT_TRUE(a == Attribute("N", "Alice", 0.5));
}

TEST(AttributeTest, OrderingByLabelThenValue) {
  EXPECT_LT(Attribute("A", "2"), Attribute("B", "1"));
  EXPECT_LT(Attribute("A", "1"), Attribute("A", "2"));
  EXPECT_FALSE(Attribute("A", "1", 0.1) < Attribute("A", "1", 0.9));
}

TEST(AttributeTest, ToStringOmitsFullConfidence) {
  EXPECT_EQ(Attribute("N", "Alice").ToString(), "<N, Alice>");
  EXPECT_EQ(Attribute("A", "20", 0.5).ToString(), "<A, 20, 0.5>");
}

TEST(RecordTest, AttributesKeptSorted) {
  Record r{{"Z", "1"}, {"A", "2"}, {"M", "3"}};
  ASSERT_EQ(r.size(), 3u);
  EXPECT_EQ(r.attributes()[0].label, "A");
  EXPECT_EQ(r.attributes()[1].label, "M");
  EXPECT_EQ(r.attributes()[2].label, "Z");
}

TEST(RecordTest, DuplicateLabelsWithDifferentValuesCoexist) {
  // The paper: "<A, 20> and <A, 30> are two separate pieces of information".
  Record r{{"A", "20"}, {"A", "30"}};
  EXPECT_EQ(r.size(), 2u);
  EXPECT_TRUE(r.Contains("A", "20"));
  EXPECT_TRUE(r.Contains("A", "30"));
}

TEST(RecordTest, DuplicateKeyKeepsMaxConfidence) {
  Record r;
  r.Insert(Attribute("N", "Alice", 0.4));
  r.Insert(Attribute("N", "Alice", 0.7));
  r.Insert(Attribute("N", "Alice", 0.2));
  EXPECT_EQ(r.size(), 1u);
  EXPECT_DOUBLE_EQ(r.Confidence("N", "Alice"), 0.7);
}

TEST(RecordTest, InsertStrictRejectsDuplicates) {
  Record r{{"N", "Alice"}};
  Status st = r.InsertStrict(Attribute("N", "Alice", 0.5));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_TRUE(r.InsertStrict(Attribute("N", "Bob")).ok());
  EXPECT_EQ(r.size(), 2u);
}

TEST(RecordTest, ConfidenceClampedToUnitInterval) {
  Record r;
  r.Insert(Attribute("A", "1", 1.5));
  r.Insert(Attribute("B", "2", -0.5));
  EXPECT_DOUBLE_EQ(r.Confidence("A", "1"), 1.0);
  EXPECT_DOUBLE_EQ(r.Confidence("B", "2"), 0.0);
}

TEST(RecordTest, ConfidenceOfAbsentAttributeIsZero) {
  // The paper's p(a, r) = 0 for attributes not in r.
  Record r{{"N", "Alice", 0.8}};
  EXPECT_DOUBLE_EQ(r.Confidence("N", "Bob"), 0.0);
  EXPECT_DOUBLE_EQ(r.Confidence("X", "Alice"), 0.0);
}

TEST(RecordTest, EraseRemovesAttribute) {
  Record r{{"N", "Alice"}, {"A", "20"}};
  EXPECT_TRUE(r.Erase("N", "Alice").ok());
  EXPECT_EQ(r.size(), 1u);
  EXPECT_FALSE(r.Contains("N", "Alice"));
  EXPECT_TRUE(r.Erase("N", "Alice").IsNotFound());
}

TEST(RecordTest, SetConfidence) {
  Record r{{"P", "123", 0.5}};
  EXPECT_TRUE(r.SetConfidence("P", "123", 1.0).ok());
  EXPECT_DOUBLE_EQ(r.Confidence("P", "123"), 1.0);
  EXPECT_TRUE(r.SetConfidence("P", "999", 1.0).IsNotFound());
}

TEST(RecordTest, WithFullConfidence) {
  Record r{{"N", "Alice", 0.5}, {"A", "20", 0.3}};
  Record full = r.WithFullConfidence();
  EXPECT_DOUBLE_EQ(full.Confidence("N", "Alice"), 1.0);
  EXPECT_DOUBLE_EQ(full.Confidence("A", "20"), 1.0);
  // Original unchanged.
  EXPECT_DOUBLE_EQ(r.Confidence("N", "Alice"), 0.5);
}

TEST(RecordTest, MergeUnionsAttributesWithMaxConfidence) {
  // §4.3: "we take the maximum confidence value when merging two attributes
  // with the same label and value pair".
  Record a{{"N", "Alice", 0.9}, {"A", "20", 1.0}};
  Record b{{"N", "Alice", 0.5}, {"P", "123", 0.7}};
  Record m = Record::Merge(a, b);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_DOUBLE_EQ(m.Confidence("N", "Alice"), 0.9);
  EXPECT_DOUBLE_EQ(m.Confidence("P", "123"), 0.7);
}

TEST(RecordTest, MergeUnionsProvenance) {
  Record a;
  a.AddSource(1);
  Record b;
  b.AddSource(3);
  b.AddSource(1);
  Record m = Record::Merge(a, b);
  EXPECT_EQ(m.sources(), (std::vector<RecordId>{1, 3}));
  EXPECT_TRUE(m.HasSource(3));
  EXPECT_FALSE(m.HasSource(2));
}

TEST(RecordTest, MergeIsCommutativeOnAttributes) {
  Record a{{"N", "Alice", 0.9}, {"A", "20", 0.2}};
  Record b{{"A", "20", 0.6}, {"C", "999", 1.0}};
  EXPECT_EQ(Record::Merge(a, b), Record::Merge(b, a));
}

TEST(RecordTest, MergeIsIdempotent) {
  Record a{{"N", "Alice", 0.9}};
  EXPECT_EQ(Record::Merge(a, a), a);
}

TEST(RecordTest, MergeIsAssociative) {
  Record a{{"N", "Alice", 0.9}};
  Record b{{"A", "20", 0.4}};
  Record c{{"N", "Alice", 0.5}, {"P", "1", 1.0}};
  EXPECT_EQ(Record::Merge(Record::Merge(a, b), c),
            Record::Merge(a, Record::Merge(b, c)));
}

TEST(RecordTest, EqualityIgnoresProvenance) {
  Record a{{"N", "Alice"}};
  Record b{{"N", "Alice"}};
  b.AddSource(7);
  EXPECT_EQ(a, b);
}

TEST(RecordTest, ToStringIsDeterministic) {
  Record r{{"Z", "9"}, {"A", "20", 0.5}};
  EXPECT_EQ(r.ToString(), "{<A, 20, 0.5>, <Z, 9>}");
  EXPECT_EQ(Record{}.ToString(), "{}");
}

TEST(RecordTest, FindReturnsStoredAttribute) {
  Record r{{"N", "Alice", 0.8}};
  const Attribute* a = r.Find("N", "Alice");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->confidence, 0.8);
  EXPECT_EQ(r.Find("N", "Bob"), nullptr);
}

}  // namespace
}  // namespace infoleak
