#include "er/union_find.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(UnionFindTest, StartsAsSingletons) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumSets(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(uf.Find(i), i);
    EXPECT_EQ(uf.SetSize(i), 1u);
  }
}

TEST(UnionFindTest, UnionMergesSets) {
  UnionFind uf(4);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Connected(0, 1));
  EXPECT_FALSE(uf.Connected(0, 2));
  EXPECT_EQ(uf.NumSets(), 3u);
  EXPECT_EQ(uf.SetSize(0), 2u);
}

TEST(UnionFindTest, UnionIsIdempotent) {
  UnionFind uf(3);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(0, 1));
  EXPECT_FALSE(uf.Union(1, 0));
  EXPECT_EQ(uf.NumSets(), 2u);
}

TEST(UnionFindTest, TransitiveConnectivity) {
  UnionFind uf(5);
  uf.Union(0, 1);
  uf.Union(1, 2);
  uf.Union(3, 4);
  EXPECT_TRUE(uf.Connected(0, 2));
  EXPECT_TRUE(uf.Connected(3, 4));
  EXPECT_FALSE(uf.Connected(2, 3));
}

TEST(UnionFindTest, GroupsAreDeterministicAndComplete) {
  UnionFind uf(6);
  uf.Union(5, 0);
  uf.Union(2, 4);
  auto groups = uf.Groups();
  ASSERT_EQ(groups.size(), 4u);
  // Every element appears exactly once and members are ascending.
  std::vector<bool> seen(6, false);
  for (const auto& g : groups) {
    for (std::size_t i = 1; i < g.size(); ++i) EXPECT_LT(g[i - 1], g[i]);
    for (std::size_t e : g) {
      EXPECT_FALSE(seen[e]);
      seen[e] = true;
    }
  }
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(UnionFindTest, EmptyStructure) {
  UnionFind uf(0);
  EXPECT_EQ(uf.NumSets(), 0u);
  EXPECT_TRUE(uf.Groups().empty());
}

TEST(UnionFindTest, LargeChainCollapses) {
  const std::size_t n = 1000;
  UnionFind uf(n);
  for (std::size_t i = 1; i < n; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumSets(), 1u);
  EXPECT_EQ(uf.SetSize(0), n);
  EXPECT_TRUE(uf.Connected(0, n - 1));
}

}  // namespace
}  // namespace infoleak
