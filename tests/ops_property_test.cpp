// Property tests for the adversary-operator algebra: identity laws,
// pipeline composition, operator idempotence, and leakage monotonicity of
// correct analysis.

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "er/swoosh.h"
#include "ops/augment.h"
#include "ops/error_correction.h"
#include "ops/obfuscation.h"
#include "ops/operator.h"
#include "util/rng.h"

namespace infoleak {
namespace {

Database RandomDatabase(Rng* rng, std::size_t n) {
  Database db;
  const char* labels[] = {"N", "P", "Z"};
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    std::size_t attrs = 1 + rng->NextBounded(4);
    for (std::size_t a = 0; a < attrs; ++a) {
      r.Insert(Attribute(labels[rng->NextBounded(3)],
                         StrCat("v", std::to_string(rng->NextBounded(5))),
                         rng->NextDouble()));
    }
    db.Add(std::move(r));
  }
  return db;
}

std::string Canonical(const Database& db) {
  std::vector<std::string> rows;
  for (const auto& r : db) rows.push_back(r.ToString());
  std::sort(rows.begin(), rows.end());
  std::string out;
  for (const auto& row : rows) out += row + "\n";
  return out;
}

class OpsProperties : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OpsProperties, IdentityIsNeutralInPipelines) {
  Rng rng(GetParam() * 17);
  Database db = RandomDatabase(&rng, 4 + rng.NextBounded(8));
  IdentityOperator id;
  ErrorCorrectionOperator fix(1);
  fix.AddDictionary("N", {"v0", "v1"});
  PipelineOperator with_id({&id, &fix, &id});
  PipelineOperator without({&fix});
  auto a = with_id.Apply(db);
  auto b = without.Apply(db);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(Canonical(*a), Canonical(*b));
}

TEST_P(OpsProperties, PipelineComposesSequentially) {
  // pipeline({f, g}) must equal applying f then g by hand.
  Rng rng(GetParam() * 29);
  Database db = RandomDatabase(&rng, 4 + rng.NextBounded(8));
  ErrorCorrectionOperator fix(1);
  fix.AddDictionary("N", {"v0"});
  AugmentOperator infer;
  infer.AddRule("N", "v0", "Z", "augmented");
  PipelineOperator pipeline({&fix, &infer});
  auto composed = pipeline.Apply(db);
  auto by_hand = infer.Apply(fix.Apply(db).value());
  ASSERT_TRUE(composed.ok());
  ASSERT_TRUE(by_hand.ok());
  EXPECT_EQ(Canonical(*composed), Canonical(*by_hand));
}

TEST_P(OpsProperties, ErrorCorrectionIsIdempotent) {
  Rng rng(GetParam() * 41);
  Database db = RandomDatabase(&rng, 4 + rng.NextBounded(8));
  ErrorCorrectionOperator fix(1);
  fix.AddDictionary("N", {"v0", "v3"});
  auto once = fix.Apply(db);
  ASSERT_TRUE(once.ok());
  auto twice = fix.Apply(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Canonical(*once), Canonical(*twice));
}

TEST_P(OpsProperties, AugmentIsIdempotentAndGrowsRecords) {
  Rng rng(GetParam() * 53);
  Database db = RandomDatabase(&rng, 4 + rng.NextBounded(8));
  AugmentOperator infer;
  infer.AddRule("N", "v0", "D", "derived");
  auto once = infer.Apply(db);
  ASSERT_TRUE(once.ok());
  auto twice = infer.Apply(*once);
  ASSERT_TRUE(twice.ok());
  EXPECT_EQ(Canonical(*once), Canonical(*twice));
  EXPECT_GE(once->TotalAttributes(), db.TotalAttributes());
}

TEST_P(OpsProperties, CorrectAugmentationNeverLowersLeakage) {
  // Rules that derive *reference-true* facts can only help the adversary.
  Rng rng(GetParam() * 71);
  Record p{{"N", "v0"}, {"Z", "z-true"}, {"P", "v1"}};
  Database db = RandomDatabase(&rng, 6);
  AugmentOperator infer;
  infer.AddRule("N", "v0", "Z", "z-true");
  IdentityOperator id;
  WeightModel unit;
  ExactLeakage engine;
  double before = InformationLeakage(db, p, id, unit, engine).value();
  double after = InformationLeakage(db, p, infer, unit, engine).value();
  EXPECT_GE(after, before - 1e-12);
}

TEST_P(OpsProperties, ObfuscationNeverRaisesSetLeakageWithoutEr) {
  // Without merging, decoys are separate records; the max over records
  // can only stay or... decoys score 0 against p (unique noise values),
  // so set leakage is unchanged exactly.
  Rng rng(GetParam() * 83);
  Record p{{"N", "v0"}, {"P", "v1"}};
  Database db = RandomDatabase(&rng, 5);
  ObfuscationOperator noise(2, 2, GetParam());
  IdentityOperator id;
  WeightModel unit;
  ExactLeakage engine;
  double before = InformationLeakage(db, p, id, unit, engine).value();
  auto noisy = noise.Apply(db);
  ASSERT_TRUE(noisy.ok());
  double after = InformationLeakage(*noisy, p, id, unit, engine).value();
  EXPECT_NEAR(after, before, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, OpsProperties,
                         ::testing::Range(uint64_t{1}, uint64_t{9}));

}  // namespace
}  // namespace infoleak
