#include "apps/population.h"
#include "gen/population.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

GeneratorConfig SmallConfig() {
  GeneratorConfig config;
  config.n = 10;
  config.perturb_prob = 0.2;
  config.seed = 7;
  return config;
}

TEST(GeneratePopulationTest, ShapesAndOwnership) {
  auto data = GeneratePopulation(SmallConfig(), 5, 4);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->references.size(), 5u);
  EXPECT_EQ(data->records.size(), 20u);
  EXPECT_EQ(data->owner.size(), 20u);
  for (const auto& reference : data->references) {
    EXPECT_EQ(reference.size(), 10u);
  }
  // Owners are grouped: 4 records per person, in person order.
  for (std::size_t i = 0; i < data->owner.size(); ++i) {
    EXPECT_EQ(data->owner[i], i / 4);
  }
}

TEST(GeneratePopulationTest, ReferencesAreDisjointInValues) {
  auto data = GeneratePopulation(SmallConfig(), 3, 1);
  ASSERT_TRUE(data.ok());
  WeightModel unit;
  for (std::size_t a = 0; a < 3; ++a) {
    for (std::size_t b = a + 1; b < 3; ++b) {
      EXPECT_DOUBLE_EQ(
          unit.OverlapWeight(data->references[a], data->references[b]), 0.0);
    }
  }
}

TEST(GeneratePopulationTest, Deterministic) {
  auto d1 = GeneratePopulation(SmallConfig(), 3, 2);
  auto d2 = GeneratePopulation(SmallConfig(), 3, 2);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  for (std::size_t i = 0; i < d1->records.size(); ++i) {
    EXPECT_EQ(d1->records[i], d2->records[i]);
  }
}

TEST(GeneratePopulationTest, ValidatesInputs) {
  EXPECT_FALSE(GeneratePopulation(SmallConfig(), 0, 5).ok());
  GeneratorConfig bad = SmallConfig();
  bad.copy_prob = 2.0;
  EXPECT_FALSE(GeneratePopulation(bad, 3, 2).ok());
}

TEST(PerPersonLeakageTest, EveryPersonScored) {
  auto data = GeneratePopulation(SmallConfig(), 4, 3);
  ASSERT_TRUE(data.ok());
  IdentityOperator identity;
  ExactLeakage engine;
  auto leakages = PerPersonLeakage(data->records, data->references, identity,
                                   data->weights, engine);
  ASSERT_TRUE(leakages.ok());
  ASSERT_EQ(leakages->size(), 4u);
  for (const auto& entry : *leakages) {
    EXPECT_GE(entry.leakage, 0.0);
    EXPECT_LE(entry.leakage, 1.0);
    EXPECT_GE(entry.argmax, 0);
    // The argmax record must belong to this person (values are disjoint
    // across people, so only own records can leak).
    EXPECT_EQ(data->owner[static_cast<std::size_t>(entry.argmax)],
              entry.person);
  }
}

TEST(ReidentifyTest, PerfectAttributionOnCleanCopies) {
  GeneratorConfig config = SmallConfig();
  config.perturb_prob = 0.0;  // every copied attribute is correct
  config.copy_prob = 1.0;     // records carry all attributes
  config.bogus_prob = 0.0;
  config.max_confidence = 1.0;
  auto data = GeneratePopulation(config, 5, 3);
  ASSERT_TRUE(data.ok());
  ExactLeakage engine;
  auto report = ReidentifyRecords(data->records, data->references,
                                  data->weights, engine, &data->owner);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->attributed, data->records.size());
  EXPECT_EQ(report->correct, data->records.size());
  EXPECT_DOUBLE_EQ(report->accuracy, 1.0);
}

TEST(ReidentifyTest, NoisyRecordsStillMostlyAttributed) {
  auto data = GeneratePopulation(SmallConfig(), 5, 4);
  ASSERT_TRUE(data.ok());
  ExactLeakage engine;
  auto report = ReidentifyRecords(data->records, data->references,
                                  data->weights, engine, &data->owner);
  ASSERT_TRUE(report.ok());
  // Disjoint value spaces: any attributed record is attributed correctly.
  EXPECT_EQ(report->correct, report->attributed);
  EXPECT_GT(report->attributed, 0u);
  for (const auto& reid : report->results) {
    EXPECT_GE(reid.score, reid.runner_up);
  }
}

TEST(ReidentifyTest, GroundTruthSizeValidated) {
  auto data = GeneratePopulation(SmallConfig(), 2, 2);
  ASSERT_TRUE(data.ok());
  ExactLeakage engine;
  std::vector<std::size_t> wrong_size{0};
  auto report = ReidentifyRecords(data->records, data->references,
                                  data->weights, engine, &wrong_size);
  EXPECT_TRUE(report.status().IsInvalidArgument());
}

TEST(ReidentifyTest, UnattributableRecord) {
  Database db;
  db.Add(Record{{"X", "unrelated"}});
  std::vector<Record> references{Record{{"N", "Alice"}}};
  WeightModel unit;
  ExactLeakage engine;
  auto report = ReidentifyRecords(db, references, unit, engine);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->attributed, 0u);
  EXPECT_EQ(report->results[0].predicted_person, -1);
}

}  // namespace
}  // namespace infoleak
