#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include <cmath>

#include "gen/generator.h"

namespace infoleak {
namespace {

TEST(MonteCarloTest, DeterministicForSameSeed) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  Record r{{"A", "1", 0.5}, {"B", "9", 0.7}, {"C", "3", 0.3}};
  WeightModel unit;
  MonteCarloLeakage mc(1000, 42);
  auto a = mc.RecordLeakage(r, p, unit);
  auto b = mc.RecordLeakage(r, p, unit);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(*a, *b);
}

TEST(MonteCarloTest, ConvergesToNaiveOracle) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}, {"D", "4"}};
  Record r{{"A", "1", 0.5}, {"B", "9", 0.7}, {"C", "3", 0.3},
           {"E", "5", 0.6}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 3.0).ok());  // arbitrary weights are fine
  NaiveLeakage naive;
  double truth = naive.RecordLeakage(r, p, wm).value();
  MonteCarloLeakage mc(200000, 7);
  auto est = mc.EstimateLeakage(r, p, wm);
  ASSERT_TRUE(est.ok());
  // Within 5 standard errors of the exact value.
  EXPECT_NEAR(est->mean, truth, 5 * est->standard_error + 1e-12);
  EXPECT_LT(est->standard_error, 0.005);
}

TEST(MonteCarloTest, StandardErrorShrinksWithSamples) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}, {"B", "2", 0.5}};
  WeightModel unit;
  MonteCarloLeakage small(100, 3);
  MonteCarloLeakage large(10000, 3);
  auto es = small.EstimateLeakage(r, p, unit);
  auto el = large.EstimateLeakage(r, p, unit);
  ASSERT_TRUE(es.ok());
  ASSERT_TRUE(el.ok());
  EXPECT_LT(el->standard_error, es->standard_error);
}

TEST(MonteCarloTest, CertainRecordHasZeroVariance) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 1.0}};
  WeightModel unit;
  MonteCarloLeakage mc(500, 9);
  auto est = mc.EstimateLeakage(r, p, unit);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->mean, 2.0 / 3.0, 1e-12);  // single world
  EXPECT_NEAR(est->standard_error, 0.0, 1e-7);  // FP accumulation noise
}

TEST(MonteCarloTest, EmptyRecordLeaksNothing) {
  WeightModel unit;
  MonteCarloLeakage mc(100, 1);
  auto l = mc.RecordLeakage(Record{}, Record{{"A", "1"}}, unit);
  ASSERT_TRUE(l.ok());
  EXPECT_DOUBLE_EQ(*l, 0.0);
}

TEST(MonteCarloTest, ExpectedPrecisionConverges) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}, {"X", "9", 0.5}};
  WeightModel unit;
  NaiveLeakage naive;
  double truth = naive.ExpectedPrecision(r, p, unit).value();
  MonteCarloLeakage mc(200000, 17);
  auto estimate = mc.ExpectedPrecision(r, p, unit);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(*estimate, truth, 0.01);
}

TEST(MonteCarloTest, ScalesToRecordsEnumerationCannotTouch) {
  // 200-attribute records: 2^200 worlds, trivially sampled.
  GeneratorConfig config;
  config.n = 200;
  config.num_records = 1;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());
  MonteCarloLeakage mc(2000, 5);
  ExactLeakage exact;
  auto sampled = mc.RecordLeakage(data->records[0], data->reference,
                                  data->weights);
  auto truth = exact.RecordLeakage(data->records[0], data->reference,
                                   data->weights);
  ASSERT_TRUE(sampled.ok());
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(*sampled, *truth, 0.02);
}

TEST(MonteCarloTest, ZeroSamplesClampedToOne) {
  MonteCarloLeakage mc(0, 1);
  EXPECT_EQ(mc.samples(), 1u);
}

// The per-call seed overload (the selfcheck harness's reproducibility
// hook): the same (case, seed) pair must give a bit-identical estimate,
// independent of the engine's constructor seed, and a different per-call
// seed must actually resample.
TEST(MonteCarloTest, PerCallSeedOverridesEngineSeed) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  Record r{{"A", "1", 0.5}, {"B", "2", 0.7}, {"C", "9", 0.3}};
  WeightModel unit;
  MonteCarloLeakage mc_a(400, 1);
  MonteCarloLeakage mc_b(400, 999);  // different constructor seed
  auto ea = mc_a.EstimateLeakage(r, p, unit, /*seed=*/77);
  auto eb = mc_b.EstimateLeakage(r, p, unit, /*seed=*/77);
  ASSERT_TRUE(ea.ok());
  ASSERT_TRUE(eb.ok());
  EXPECT_EQ(ea->mean, eb->mean);
  EXPECT_EQ(ea->standard_error, eb->standard_error);

  auto other = mc_a.EstimateLeakage(r, p, unit, /*seed=*/78);
  ASSERT_TRUE(other.ok());
  EXPECT_NE(ea->mean, other->mean);  // 400 Bernoulli draws; ties don't happen
}

// Verifies the Bessel (n-1) correction numerically. With a single
// attribute at confidence 0.5 the per-sample F1 is Bernoulli: 1 when the
// attribute materializes, 0 otherwise. For k successes in n samples the
// unbiased sample variance is k(n-k)/(n(n-1)), so the reported standard
// error must equal sqrt(k(n-k)/(n(n-1))/n) to rounding — any biased /n
// variance would miss by a factor sqrt((n-1)/n).
TEST(MonteCarloTest, StandardErrorUsesUnbiasedVariance) {
  Record p{{"A", "1"}};
  Record r{{"A", "1", 0.5}};
  WeightModel unit;
  const std::size_t n = 1000;
  MonteCarloLeakage mc(n, 3);
  auto est = mc.EstimateLeakage(r, p, unit, /*seed=*/21);
  ASSERT_TRUE(est.ok());
  const double k = std::round(est->mean * static_cast<double>(n));
  const double nn = static_cast<double>(n);
  const double unbiased_var = k * (nn - k) / (nn * (nn - 1.0));
  EXPECT_NEAR(est->standard_error, std::sqrt(unbiased_var / nn), 1e-12);
}

}  // namespace
}  // namespace infoleak
