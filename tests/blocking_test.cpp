#include "er/blocking.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "er/transitive.h"
#include "gen/population.h"

namespace infoleak {
namespace {

std::vector<std::string> Canonical(const Database& db) {
  std::vector<std::string> out;
  for (const auto& r : db) out.push_back(r.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

TEST(LabelValueBlockingTest, OneKeyPerBlockingAttribute) {
  LabelValueBlocking blocking({"N", "P"});
  Record r{{"N", "Alice"}, {"P", "123"}, {"Z", "94305"}};
  auto keys = blocking.Keys(r);
  EXPECT_EQ(keys.size(), 2u);  // Z is not a blocking label
}

TEST(LabelValueBlockingTest, SharedValueSharesKey) {
  LabelValueBlocking blocking({"N"});
  Record a{{"N", "Alice"}, {"P", "1"}};
  Record b{{"N", "Alice"}, {"C", "2"}};
  Record c{{"N", "Bob"}};
  auto ka = blocking.Keys(a);
  auto kb = blocking.Keys(b);
  auto kc = blocking.Keys(c);
  EXPECT_EQ(ka, kb);
  EXPECT_NE(ka, kc);
}

TEST(BlockedResolverTest, MatchesTransitiveClosureOnSharedValueRules) {
  // Blocking on the match labels is complete for shared-value matches, so
  // the blocked resolver must produce the same partition.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "1"}});
  db.Add(Record{{"N", "Alice"}, {"C", "2"}});
  db.Add(Record{{"N", "Bob"}, {"P", "1"}});
  db.Add(Record{{"N", "Carol"}});
  db.Add(Record{{"N", "Carol"}, {"Z", "9"}});
  auto match = RuleMatch::SharedValue({"N", "P"});
  UnionMerge merge;
  LabelValueBlocking blocking({"N", "P"});
  BlockedResolver blocked(blocking, *match, merge);
  TransitiveClosureResolver full(*match, merge);
  auto rb = blocked.Resolve(db, nullptr);
  auto rf = full.Resolve(db, nullptr);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(Canonical(*rb), Canonical(*rf));
}

TEST(BlockedResolverTest, FarFewerMatchCallsOnPopulations) {
  GeneratorConfig config;
  config.n = 10;
  config.perturb_prob = 0.0;  // clean copies so blocks align with entities
  config.seed = 11;
  auto data = GeneratePopulation(config, /*num_people=*/20,
                                 /*records_per_person=*/10);
  ASSERT_TRUE(data.ok());
  auto match = RuleMatch::SharedValue(
      {"L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"});
  UnionMerge merge;
  LabelValueBlocking blocking(
      {"L0", "L1", "L2", "L3", "L4", "L5", "L6", "L7", "L8", "L9"});
  BlockedResolver blocked(blocking, *match, merge);
  TransitiveClosureResolver full(*match, merge);
  ErStats blocked_stats;
  ErStats full_stats;
  auto rb = blocked.Resolve(data->records, &blocked_stats);
  auto rf = full.Resolve(data->records, &full_stats);
  ASSERT_TRUE(rb.ok());
  ASSERT_TRUE(rf.ok());
  EXPECT_EQ(Canonical(*rb), Canonical(*rf));
  // 200 records: full pays C(200,2) = 19900; blocking only compares within
  // per-person value blocks.
  EXPECT_EQ(full_stats.match_calls, 19900u);
  EXPECT_LT(blocked_stats.match_calls, full_stats.match_calls / 3);
}

TEST(BlockedResolverTest, NoBlocksMeansNoComparisons) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  db.Add(Record{{"N", "Bob"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  LabelValueBlocking blocking({"Z"});  // nobody has Z
  BlockedResolver blocked(blocking, *match, merge);
  ErStats stats;
  auto resolved = blocked.Resolve(db, &stats);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(stats.match_calls, 0u);
  EXPECT_EQ(resolved->size(), 2u);
}

TEST(BlockedResolverTest, DuplicatePairsComparedOnce) {
  // Two records sharing two blocking values meet in two blocks but must be
  // compared only once.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "1"}});
  db.Add(Record{{"N", "Alice"}, {"P", "1"}});
  auto match = RuleMatch::SharedValue({"N", "P"});
  UnionMerge merge;
  LabelValueBlocking blocking({"N", "P"});
  BlockedResolver blocked(blocking, *match, merge);
  ErStats stats;
  auto resolved = blocked.Resolve(db, &stats);
  ASSERT_TRUE(resolved.ok());
  EXPECT_EQ(stats.match_calls, 1u);
  EXPECT_EQ(resolved->size(), 1u);
}

TEST(BlockedResolverTest, EmptyDatabase) {
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  LabelValueBlocking blocking({"N"});
  BlockedResolver blocked(blocking, *match, merge);
  auto resolved = blocked.Resolve(Database{}, nullptr);
  ASSERT_TRUE(resolved.ok());
  EXPECT_TRUE(resolved->empty());
}

}  // namespace
}  // namespace infoleak
