#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>

#include "core/leakage.h"
#include "gen/generator.h"
#include "persist/durable_store.h"
#include "store/record_store.h"

namespace infoleak {
namespace {

namespace fs = std::filesystem;

/// The durability contract under test: a recovered store is not merely
/// "equivalent" to the live one — its leakage answers are BIT-identical,
/// across engines, because records come back in append order with their
/// exact confidence bits, so every floating-point reduction runs in the
/// same order on the same values.

std::string TempDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct Answers {
  double set_leakage;
  std::ptrdiff_t argmax;
};

Answers Ask(const RecordStore& store, const PreparedReference& ref,
            const LeakageEngine& engine) {
  std::ptrdiff_t argmax = -1;
  auto leakage = store.SetLeak(ref, engine, &argmax);
  EXPECT_TRUE(leakage.ok()) << leakage.status().ToString();
  return {leakage.value_or(-1.0), argmax};
}

/// Appends the dataset into a durable store, optionally snapshotting at
/// `snapshot_at` appends (so recovery mixes snapshot + WAL tail), then
/// recovers and checks both engines answer exactly like the live store.
void CheckRoundTrip(uint64_t seed, std::size_t num_records,
                    std::size_t snapshot_at, const std::string& dir_name) {
  GeneratorConfig config;
  config.seed = seed;
  config.n = 12;
  config.num_records = num_records;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok()) << data.status().ToString();

  // The never-persisted original.
  RecordStore live;
  for (const auto& r : data->records) live.Append(r);

  const std::string dir = TempDir(dir_name);
  {
    auto durable = persist::DurableStore::Open(dir);
    ASSERT_TRUE(durable.ok()) << durable.status().ToString();
    std::size_t appended = 0;
    for (const auto& r : data->records) {
      ASSERT_TRUE((*durable)->Append(r).ok());
      if (++appended == snapshot_at) {
        ASSERT_TRUE((*durable)->Snapshot().ok());
      }
    }
  }

  auto recovered = persist::DurableStore::Open(dir);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ((*recovered)->store().size(), live.size());
  if (snapshot_at > 0 && snapshot_at <= num_records) {
    EXPECT_EQ((*recovered)->recovery().snapshot_records, snapshot_at);
  }

  const PreparedReference ref(data->reference, data->weights);
  const ExactLeakage exact;
  const ApproxLeakage approx;  // Taylor-series engine
  for (const LeakageEngine* engine :
       {static_cast<const LeakageEngine*>(&exact),
        static_cast<const LeakageEngine*>(&approx)}) {
    const Answers want = Ask(live, ref, *engine);
    const Answers got = Ask((*recovered)->store(), ref, *engine);
    // EXPECT_EQ on doubles: same bits, not same-within-epsilon.
    EXPECT_EQ(got.set_leakage, want.set_leakage)
        << "engine " << engine->name() << ", seed " << seed;
    EXPECT_EQ(got.argmax, want.argmax)
        << "engine " << engine->name() << ", seed " << seed;
  }
}

TEST(PersistRoundTripTest, WalOnlyRecoveryIsBitIdentical) {
  CheckRoundTrip(/*seed=*/1, /*num_records=*/200, /*snapshot_at=*/0,
                 "rt_wal_only");
}

TEST(PersistRoundTripTest, SnapshotOnlyRecoveryIsBitIdentical) {
  CheckRoundTrip(/*seed=*/2, /*num_records=*/200, /*snapshot_at=*/200,
                 "rt_snapshot_only");
}

TEST(PersistRoundTripTest, SnapshotPlusWalTailIsBitIdentical) {
  CheckRoundTrip(/*seed=*/3, /*num_records=*/200, /*snapshot_at=*/120,
                 "rt_mixed");
}

TEST(PersistRoundTripTest, ManySeedsSweep) {
  for (uint64_t seed = 10; seed < 18; ++seed) {
    CheckRoundTrip(seed, /*num_records=*/60,
                   /*snapshot_at=*/(seed % 4) * 20,
                   "rt_sweep_" + std::to_string(seed));
  }
}

TEST(PersistRoundTripTest, TenThousandRecordStoreRecoversBitIdentical) {
  // The issue's acceptance bar: a generator-built 10k-record store.
  CheckRoundTrip(/*seed=*/42, /*num_records=*/10000, /*snapshot_at=*/6000,
                 "rt_10k");
}

TEST(PersistRoundTripTest, CompactionPreservesAnswers) {
  GeneratorConfig config;
  config.seed = 7;
  config.n = 10;
  config.num_records = 150;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());

  RecordStore live;
  for (const auto& r : data->records) live.Append(r);

  const std::string dir = TempDir("rt_compact");
  {
    auto durable = persist::DurableStore::Open(dir);
    ASSERT_TRUE(durable.ok());
    std::size_t appended = 0;
    for (const auto& r : data->records) {
      ASSERT_TRUE((*durable)->Append(r).ok());
      // Compact mid-stream: later appends go to the reset WAL.
      if (++appended == 100) ASSERT_TRUE((*durable)->Compact().ok());
    }
  }
  auto recovered = persist::DurableStore::Open(dir);
  ASSERT_TRUE(recovered.ok());
  ASSERT_EQ((*recovered)->store().size(), live.size());
  EXPECT_EQ((*recovered)->recovery().snapshot_records, 100u);
  EXPECT_EQ((*recovered)->recovery().replayed_frames, 50u);

  const PreparedReference ref(data->reference, data->weights);
  const ExactLeakage exact;
  const Answers want = Ask(live, ref, exact);
  const Answers got = Ask((*recovered)->store(), ref, exact);
  EXPECT_EQ(got.set_leakage, want.set_leakage);
  EXPECT_EQ(got.argmax, want.argmax);
}

}  // namespace
}  // namespace infoleak
