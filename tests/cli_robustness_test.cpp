// Robustness fuzzing of the CLI layer: randomized flag soup and hostile
// inputs must produce clean Status errors, never crashes or hangs.

#include <gtest/gtest.h>

#include "cli/commands.h"
#include "util/rng.h"

namespace infoleak {
namespace {

const char* const kCommands[] = {"leakage",  "er",        "incremental",
                                 "generate", "anonymize", "dipping",
                                 "enhance",  "disinfo",   "reidentify",
                                 "stats"};
const char* const kFlagNames[] = {
    "--db-csv",     "--db",          "--reference-text", "--reference",
    "--weights",    "--engine",      "--beta",           "--resolve",
    "--match-rules", "--resolver",   "--block-labels",   "--release-text",
    "--n",          "--records",     "--seed",           "--pc",
    "--table-csv",  "--qi",          "--k",              "--sensitive",
    "--query-text", "--budget",      "--max-size",       "--max-bogus",
    "--exhaustive"};
const char* const kValues[] = {
    "",          "x",         "-1",       "1e309",      "{<N, A>}",
    "{<",        "nan",       "0,1,2",    "N+C|N+P",    "a:b:c",
    "record,label,value,confidence\n0,N,A,1\n", "\"", "99999999999999999999"};

class CliFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CliFuzz, RandomFlagSoupNeverCrashes) {
  Rng rng(GetParam() * 2654435761ULL);
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<std::string> args;
    args.push_back(kCommands[rng.NextBounded(
        sizeof(kCommands) / sizeof(kCommands[0]))]);
    std::size_t flags = rng.NextBounded(6);
    for (std::size_t f = 0; f < flags; ++f) {
      args.push_back(kFlagNames[rng.NextBounded(
          sizeof(kFlagNames) / sizeof(kFlagNames[0]))]);
      if (rng.Bernoulli(0.8)) {
        args.push_back(kValues[rng.NextBounded(
            sizeof(kValues) / sizeof(kValues[0]))]);
      }
    }
    std::string out;
    // Must terminate and return a Status — crash/UB is the failure mode
    // this test exists to catch; the status value itself is unconstrained.
    Status st = cli::Dispatch(args, &out);
    (void)st;
  }
}

TEST(CliRobustnessTest, HostileCsvPayloads) {
  for (const char* payload :
       {"record,label,value,confidence\n0,N,\"unterminated",
        "0,N\n",                         // too few columns
        "0,N,A,B,C,D\n",                 // too many columns
        "nonsense that is not csv at all",
        "-5,N,A,1\n",                    // negative index
        "0,N,A,2.5\n"}) {                // confidence out of range
    std::string out;
    Status st = cli::Dispatch({"leakage", "--db-csv", payload,
                               "--reference-text", "{<N, A>}"},
                              &out);
    EXPECT_FALSE(st.ok()) << payload;
  }
}

TEST(CliRobustnessTest, HostileRecordTexts) {
  const char* db = "0,N,A,1\n";
  for (const char* payload :
       {"{<N, A>", "<N>", "<N, A, 9>", "{{{", "}<N, A>{", "<,>",
        "text outside <N, A>"}) {
    std::string out;
    Status st = cli::Dispatch(
        {"leakage", "--db-csv", db, "--reference-text", payload}, &out);
    EXPECT_FALSE(st.ok()) << payload;
  }
}

TEST(CliRobustnessTest, SaturatingIntegersAreRejected) {
  // Regression: "99999999999999999999" saturates strtoll to LLONG_MAX;
  // before the errno check + sanity caps this hung the generator trying to
  // materialize 9e18 records (found by the fuzz test above).
  std::string out;
  EXPECT_FALSE(cli::Dispatch({"generate", "--records",
                              "99999999999999999999"},
                             &out)
                   .ok());
  EXPECT_FALSE(
      cli::Dispatch({"generate", "--records", "10000001"}, &out).ok());
  EXPECT_FALSE(cli::Dispatch({"generate", "--n", "1e309"}, &out).ok());
}

TEST(CliRobustnessTest, HugeGenerateRequestIsBoundedByValidation) {
  // Numbers that parse but are absurd must be caught by validation, not
  // attempted: --n 0 and negative values fail fast.
  std::string out;
  EXPECT_FALSE(cli::Dispatch({"generate", "--n", "-3"}, &out).ok());
  EXPECT_FALSE(cli::Dispatch({"generate", "--records", "-1"}, &out).ok());
  EXPECT_FALSE(cli::Dispatch({"generate", "--seed", "-1"}, &out).ok());
}

TEST(CliRobustnessTest, UnknownFlagIsRejectedByEveryCommand) {
  // Every command must refuse a flag outside its vocabulary with
  // InvalidArgument naming the flag — typos fail fast instead of being
  // silently ignored. The args are otherwise well-formed so the check is
  // reached (and proven to run before the command's own work).
  const char* db = "0,N,a,1\n1,N,a,1\n";
  const std::vector<std::vector<std::string>> invocations = {
      {"leakage", "--db-csv", db, "--reference-text", "{<N, a>}",
       "--definitely-bogus", "1"},
      {"er", "--db-csv", db, "--match-rules", "N", "--definitely-bogus"},
      {"incremental", "--db-csv", db, "--reference-text", "{<N, a>}",
       "--release-text", "{<N, a>}", "--definitely-bogus", "x"},
      {"generate", "--n", "4", "--records", "2", "--definitely-bogus"},
      {"anonymize", "--table-csv", "A\nx\n", "--qi", "A:suffix:1", "--k",
       "1", "--definitely-bogus"},
      {"dipping", "--db-csv", db, "--query-text", "{<N, a>}",
       "--match-rules", "N", "--definitely-bogus"},
      {"enhance", "--db-csv", db, "--definitely-bogus"},
      {"disinfo", "--db-csv", db, "--reference-text", "{<N, a>}",
       "--match-rules", "N", "--definitely-bogus"},
      {"reidentify", "--db-csv", db, "--references-text", "{<N, a>}",
       "--definitely-bogus"},
      {"stats", "--definitely-bogus"},
  };
  for (const auto& args : invocations) {
    std::string out;
    Status st = cli::Dispatch(args, &out);
    EXPECT_TRUE(st.IsInvalidArgument()) << args[0] << ": " << st.ToString();
    EXPECT_NE(st.ToString().find("definitely-bogus"), std::string::npos)
        << args[0] << ": " << st.ToString();
  }
}

TEST(CliRobustnessTest, ObservabilityRidersAreAcceptedEverywhere) {
  // The --stats/--trace riders must not trip the unknown-flag check.
  std::string out;
  EXPECT_TRUE(cli::Dispatch({"generate", "--n", "4", "--records", "2",
                             "--stats", "--trace"},
                            &out)
                  .ok())
      << out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CliFuzz,
                         ::testing::Range(uint64_t{1}, uint64_t{6}));

}  // namespace
}  // namespace infoleak
