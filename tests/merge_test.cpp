#include "er/merge.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(UnionMergeTest, UnionsAttributes) {
  UnionMerge merge;
  Record a{{"N", "Alice"}, {"P", "123"}};
  Record b{{"N", "Alice"}, {"C", "999"}};
  Record m = merge.Merge(a, b);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_TRUE(m.Contains("P", "123"));
  EXPECT_TRUE(m.Contains("C", "999"));
}

TEST(UnionMergeTest, KeepsMaxConfidence) {
  UnionMerge merge;
  Record a{{"N", "Alice", 0.9}};
  Record b{{"N", "Alice", 0.5}};
  EXPECT_DOUBLE_EQ(merge.Merge(a, b).Confidence("N", "Alice"), 0.9);
  EXPECT_DOUBLE_EQ(merge.Merge(b, a).Confidence("N", "Alice"), 0.9);
}

TEST(ValueNormalizerTest, LabelScopedSynonym) {
  ValueNormalizer n;
  n.AddSynonym("Disease", "Influenza", "Flu");
  EXPECT_EQ(n.Canonical("Disease", "Influenza"), "Flu");
  EXPECT_EQ(n.Canonical("Disease", "Flu"), "Flu");
  EXPECT_EQ(n.Canonical("Name", "Influenza"), "Influenza");  // other label
}

TEST(ValueNormalizerTest, WildcardLabelSynonym) {
  ValueNormalizer n;
  n.AddSynonym("", "NYC", "New York");
  EXPECT_EQ(n.Canonical("City", "NYC"), "New York");
  EXPECT_EQ(n.Canonical("Airport", "NYC"), "New York");
}

TEST(ValueNormalizerTest, NormalizeCollapsesDuplicates) {
  ValueNormalizer n;
  n.AddSynonym("D", "Influenza", "Flu");
  Record r{{"D", "Flu", 0.4}, {"D", "Influenza", 0.8}};
  Record out = n.Normalize(r);
  EXPECT_EQ(out.size(), 1u);
  // Collapsing keeps the max confidence.
  EXPECT_DOUBLE_EQ(out.Confidence("D", "Flu"), 0.8);
}

TEST(ValueNormalizerTest, NormalizePreservesProvenance) {
  ValueNormalizer n;
  n.AddSynonym("D", "Influenza", "Flu");
  Record r{{"D", "Influenza"}};
  r.AddSource(7);
  EXPECT_TRUE(n.Normalize(r).HasSource(7));
}

TEST(NormalizingMergeTest, ReproducesSection32Semantics) {
  // E' replaces Influenza with Flu when merging (§3.2): the merged record
  // carries one Flu attribute instead of Flu + Influenza.
  ValueNormalizer n;
  n.AddSynonym("Disease", "Influenza", "Flu");
  NormalizingMerge merge(std::move(n));
  Record a{{"Zip", "2**"}, {"Disease", "Hair"}, {"Disease", "Flu"}};
  Record b{{"Zip", "2**"}, {"Disease", "Influenza"}};
  Record m = merge.Merge(a, b);
  EXPECT_TRUE(m.Contains("Disease", "Flu"));
  EXPECT_FALSE(m.Contains("Disease", "Influenza"));
  EXPECT_EQ(m.size(), 3u);  // Zip, Hair, Flu
}

}  // namespace
}  // namespace infoleak
