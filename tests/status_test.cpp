#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace infoleak {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kResourceExhausted, StatusCode::kFailedPrecondition,
        StatusCode::kInternal, StatusCode::kNotSupported,
        StatusCode::kCorruption}) {
    EXPECT_FALSE(StatusCodeToString(code).empty());
    EXPECT_NE(StatusCodeToString(code), "Unknown");
  }
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::OutOfRange("x"));
}

TEST(StatusTest, DeadlineExceededRoundTrips) {
  Status st = Status::DeadlineExceeded("too slow");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusCodeToString(st.code()), "DeadlineExceeded");
  EXPECT_EQ(st.ToString(), "DeadlineExceeded: too slow");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace infoleak
