// Integration tests reproducing every number in §3 of the paper: the
// information leakage of individuals within a k-anonymous table, the effect
// of background information, and the l-diversity semantic-merge scenario.

#include <gtest/gtest.h>

#include "anon/bridge.h"
#include "anon/generalized_er.h"
#include "core/leakage.h"
#include "er/transitive.h"
#include "ops/operator.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// Table 2 as a database of records (the adversary's view).
Database Table2Database() {
  Database db;
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Heart"}});
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Breast"}});
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Cancer"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Hair"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Flu"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Flu"}});
  return db;
}

Record AliceReference() {
  return Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"},
                {"Disease", "Heart"}};
}

Record ZoeReference() {
  return Record{{"Name", "Zoe"}, {"Zip", "241"}, {"Age", "60"},
                {"Disease", "Flu"}};
}

/// Runs the §3 ER (merge records with the same zip and age) and returns the
/// leakage of `reference` under the covering-value simplification.
double Section3Leakage(const Database& db, const Record& reference) {
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(db, nullptr);
  EXPECT_TRUE(resolved.ok());
  WeightModel unit;
  ExactLeakage engine;
  double best = 0.0;
  for (const auto& r : *resolved) {
    Record aligned = AlignGeneralizedToReference(r, reference);
    auto l = engine.RecordLeakage(aligned, reference, unit);
    EXPECT_TRUE(l.ok());
    best = std::max(best, *l);
  }
  return best;
}

TEST(Section3Test, ErProducesTwoMergedRecords) {
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(Table2Database(), nullptr);
  ASSERT_TRUE(resolved.ok());
  ASSERT_EQ(resolved->size(), 2u);
  // r1: zip, age, 3 diseases = 5 attributes; r2: zip, age, 2 diseases = 4.
  EXPECT_EQ((*resolved)[0].size(), 5u);
  EXPECT_EQ((*resolved)[1].size(), 4u);
}

TEST(Section3Test, AliceLeakageIsTwoThirds) {
  // §3.1: max{L(r1, pa), L(r2, pa)} = max{2·(3/5)·(3/4)/((3/5)+(3/4)), 0}
  //     = 2/3.
  EXPECT_NEAR(Section3Leakage(Table2Database(), AliceReference()), 2.0 / 3.0,
              kTol);
}

TEST(Section3Test, ZoeLeakageIsThreeQuarters) {
  // §3.1: Zoe's class has 4 attributes, 3 of which match: 3/4. k-anonymity
  // deems both Alice and Zoe equally safe; leakage distinguishes them.
  EXPECT_NEAR(Section3Leakage(Table2Database(), ZoeReference()), 3.0 / 4.0,
              kTol);
}

TEST(Section3Test, BackgroundInformationRaisesAliceToFourFifths) {
  // §3.1 + Table 3: adding the background record {Alice, 111, 30} merges
  // into the first class and lifts Alice's leakage from 2/3 to 4/5.
  Database db = Table2Database();
  db.Add(Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"}});
  EXPECT_NEAR(Section3Leakage(db, AliceReference()), 4.0 / 5.0, kTol);
}

TEST(Section3Test, BackgroundMergeKeepsSpecificValues) {
  Database db = Table2Database();
  db.Add(Record{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"}});
  GeneralizedRuleMatch match(MatchRules{{"Zip", "Age"}});
  GeneralizationMerge merge;
  TransitiveClosureResolver er(match, merge);
  auto resolved = er.Resolve(db, nullptr);
  ASSERT_TRUE(resolved.ok());
  // The Alice composite has 6 attributes (the paper's r1'): name, one zip,
  // one age, three diseases.
  bool found = false;
  for (const auto& r : *resolved) {
    if (r.Contains("Name", "Alice")) {
      found = true;
      EXPECT_EQ(r.size(), 6u);
      EXPECT_TRUE(r.Contains("Zip", "111"));   // specific value kept
      EXPECT_FALSE(r.Contains("Zip", "11*"));  // generalized collapsed
    }
  }
  EXPECT_TRUE(found);
}

// ---------------------------------------------------------------------------
// §3.2: l-diversity and application semantics
// ---------------------------------------------------------------------------

/// Table 2 with Zoe's Flu renamed to Influenza (the 3-diverse variant).
Database DiverseDatabase() {
  Database db;
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Heart"}});
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Breast"}});
  db.Add(Record{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Cancer"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Hair"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Flu"}});
  db.Add(Record{{"Zip", "2**"}, {"Age", ">=50"}, {"Disease", "Influenza"}});
  return db;
}

TEST(Section3Test, LiteralSemanticsGiveZoeTwoThirds) {
  // E treats Flu and Influenza as different: Zoe's class has 5 attributes,
  // 3 matching -> 2·(3/5)·(3/4)/((3/5)+(3/4)) = 2/3.
  EXPECT_NEAR(Section3Leakage(DiverseDatabase(), ZoeReference()), 2.0 / 3.0,
              kTol);
}

TEST(Section3Test, SemanticNormalizationRaisesZoeToThreeQuarters) {
  // E' maps Influenza -> Flu before merging: back to 4 attributes, 3
  // matching -> 3/4. l-diversity cannot express this distinction.
  ValueNormalizer n;
  n.AddSynonym("Disease", "Influenza", "Flu");
  SemanticNormalizeOperator normalize(std::move(n));
  auto normalized = normalize.Apply(DiverseDatabase());
  ASSERT_TRUE(normalized.ok());
  EXPECT_NEAR(Section3Leakage(*normalized, ZoeReference()), 3.0 / 4.0, kTol);
}

}  // namespace
}  // namespace infoleak
