#include "ops/operator.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "er/swoosh.h"
#include "ops/augment.h"
#include "ops/error_correction.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

TEST(IdentityOperatorTest, LeavesDatabaseUntouchedAtZeroCost) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  IdentityOperator op;
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->size(), 1u);
  EXPECT_EQ(op.Cost(db), 0.0);
}

TEST(ErOperatorTest, DefaultCostIsPaperQuadratic) {
  // §2.4's example: C(E, R) = |R|²/1000, so 1000 records cost 1000.
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator op(resolver);
  Database db;
  for (int i = 0; i < 1000; ++i) {
    db.Add(Record{{"N", StrCat("P", std::to_string(i))}});
  }
  EXPECT_NEAR(op.Cost(db), 1000.0, kTol);
}

TEST(ErOperatorTest, ReproducesSection24Leakage) {
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator er(resolver);
  IdentityOperator identity;
  WeightModel unit;
  ExactLeakage engine;
  EXPECT_NEAR(InformationLeakage(db, p, identity, unit, engine).value(),
              2.0 / 3.0, kTol);
  EXPECT_NEAR(InformationLeakage(db, p, er, unit, engine).value(), 6.0 / 7.0,
              kTol);
}

TEST(ErOperatorTest, CumulativeStatsAccumulate) {
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator op(resolver);
  Database db;
  db.Add(Record{{"N", "A"}});
  db.Add(Record{{"N", "A"}});
  ASSERT_TRUE(op.Apply(db).ok());
  uint64_t after_one = op.cumulative_stats().merge_calls;
  EXPECT_EQ(after_one, 1u);
  ASSERT_TRUE(op.Apply(db).ok());
  EXPECT_EQ(op.cumulative_stats().merge_calls, 2u);
}

TEST(SemanticNormalizeOperatorTest, RewritesValuesAcrossDatabase) {
  ValueNormalizer n;
  n.AddSynonym("Disease", "Influenza", "Flu");
  SemanticNormalizeOperator op(std::move(n));
  Database db;
  db.Add(Record{{"Disease", "Influenza"}});
  db.Add(Record{{"Disease", "Flu"}});
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE((*out)[0].Contains("Disease", "Flu"));
  EXPECT_FALSE((*out)[0].Contains("Disease", "Influenza"));
}

TEST(PipelineOperatorTest, ComposesLeftToRight) {
  // Normalize, then resolve: the §3.2 E' operation as a pipeline.
  ValueNormalizer n;
  n.AddSynonym("D", "Influenza", "Flu");
  SemanticNormalizeOperator normalize(std::move(n));
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator er(resolver);
  PipelineOperator pipeline({&normalize, &er});

  Database db;
  db.Add(Record{{"N", "Zoe"}, {"D", "Flu"}});
  db.Add(Record{{"N", "Zoe"}, {"D", "Influenza"}});
  auto out = pipeline.Apply(db);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->size(), 1u);
  EXPECT_EQ((*out)[0].size(), 2u);  // N + one Disease, duplicates collapsed
}

TEST(PipelineOperatorTest, CostSumsStageCosts) {
  IdentityOperator id1;
  IdentityOperator id2;
  PipelineOperator pipeline({&id1, &id2});
  Database db;
  db.Add(Record{{"A", "1"}});
  EXPECT_EQ(pipeline.Cost(db), 0.0);
}

TEST(ErrorCorrectionTest, SnapsMisspelledValues) {
  ErrorCorrectionOperator op(/*max_edit_distance=*/1);
  op.AddDictionary("City", {"Boston", "Austin"});
  EXPECT_EQ(op.Correct("City", "Bostom"), "Boston");
  EXPECT_EQ(op.Correct("City", "Boston"), "Boston");
  EXPECT_EQ(op.Correct("City", "Bstn"), "Bstn");  // too far: unchanged
  EXPECT_EQ(op.Correct("Name", "Bostom"), "Bostom");  // no dictionary
}

TEST(ErrorCorrectionTest, TieBreaksDeterministically) {
  ErrorCorrectionOperator op(1);
  op.AddDictionary("L", {"aa", "ab"});
  // "ac" is distance 1 from both; lexicographically smallest wins.
  EXPECT_EQ(op.Correct("L", "ac"), "aa");
}

TEST(ErrorCorrectionTest, AppliesAcrossDatabaseAndKeepsConfidence) {
  ErrorCorrectionOperator op(1);
  op.AddDictionary("N", {"Alice"});
  Database db;
  db.Add(Record{{"N", "Alicd", 0.7}, {"P", "123", 0.4}});
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0].Confidence("N", "Alice"), 0.7);
  EXPECT_DOUBLE_EQ((*out)[0].Confidence("P", "123"), 0.4);
}

TEST(ErrorCorrectionTest, CorrectionCanRaiseLeakage) {
  // Fixing a misspelling turns a non-matching attribute into a correct one.
  Record p{{"N", "Alice"}, {"P", "123"}};
  Database db;
  db.Add(Record{{"N", "Alicd"}, {"P", "123"}});
  WeightModel unit;
  ExactLeakage engine;
  ErrorCorrectionOperator op(1);
  op.AddDictionary("N", {"Alice"});
  IdentityOperator identity;
  double before = InformationLeakage(db, p, identity, unit, engine).value();
  double after = InformationLeakage(db, p, op, unit, engine).value();
  EXPECT_NEAR(before, 0.5, kTol);   // only P matches: 2·1/(2+2)
  EXPECT_NEAR(after, 1.0, kTol);
}

TEST(AugmentTest, DerivesAttributesFromRules) {
  // "if Eve knows the addresses she can fill in their zip codes" (§2.4).
  AugmentOperator op;
  op.AddRule("A", "123 Main", "Z", "94305");
  Database db;
  db.Add(Record{{"A", "123 Main", 0.8}});
  db.Add(Record{{"A", "456 Oak", 1.0}});
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0].Confidence("Z", "94305"), 0.8);
  EXPECT_FALSE((*out)[1].Contains("Z", "94305"));
}

TEST(AugmentTest, ReliabilityScalesConfidence) {
  AugmentOperator op;
  op.AddRule("A", "x", "B", "y", /*reliability=*/0.5);
  Database db;
  db.Add(Record{{"A", "x", 0.8}});
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ((*out)[0].Confidence("B", "y"), 0.4);
}

TEST(AugmentTest, OneSourceCanImplySeveralFacts) {
  AugmentOperator op;
  op.AddRule("A", "x", "B", "y");
  op.AddRule("A", "x", "C", "z");
  Database db;
  db.Add(Record{{"A", "x"}});
  auto out = op.Apply(db);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0].size(), 3u);
}

TEST(AugmentTest, AugmentationRaisesLeakage) {
  Record p{{"A", "123 Main"}, {"Z", "94305"}};
  Database db;
  db.Add(Record{{"A", "123 Main"}});
  AugmentOperator op;
  op.AddRule("A", "123 Main", "Z", "94305");
  IdentityOperator identity;
  WeightModel unit;
  ExactLeakage engine;
  double before = InformationLeakage(db, p, identity, unit, engine).value();
  double after = InformationLeakage(db, p, op, unit, engine).value();
  EXPECT_GT(after, before);
  EXPECT_NEAR(after, 1.0, kTol);
}

TEST(CostModelTest, PolynomialModel) {
  PolynomialCostModel model(0.001, 2.0);
  Database db;
  for (int i = 0; i < 100; ++i) db.Add(Record{{"A", std::to_string(i)}});
  EXPECT_NEAR(model.Cost(db), 10.0, kTol);
  EXPECT_EQ(model.name(), "polynomial");
}

TEST(CostModelTest, PerAttributeModel) {
  PerAttributeCostModel model(0.5);
  Database db;
  db.Add(Record{{"A", "1"}, {"B", "2"}});
  db.Add(Record{{"C", "3"}});
  EXPECT_NEAR(model.Cost(db), 1.5, kTol);
}

TEST(CostModelTest, ObservedErCost) {
  ErStats stats{100, 7, 0.0};
  EXPECT_NEAR(ObservedErCost(stats, 0.01, 1.0), 1.0 + 7.0, kTol);
}

TEST(AnalyzeLeakageTest, ReportsLeakageCostAndDatabase) {
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator er(resolver);
  WeightModel unit;
  ExactLeakage engine;
  auto report = AnalyzeLeakage(db, p, er, unit, engine);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->leakage, 6.0 / 7.0, kTol);
  EXPECT_NEAR(report->cost, 4.0 / 1000.0, kTol);
  EXPECT_EQ(report->analyzed.size(), 1u);
}

}  // namespace
}  // namespace infoleak
