#include "svc/service.h"

#include <gtest/gtest.h>

#include <string>

#include "core/leakage.h"
#include "core/measure_family.h"
#include "core/record_io.h"
#include "obs/log.h"
#include "obs/request.h"
#include "svc/json.h"

namespace infoleak::svc {
namespace {

constexpr const char* kDbCsv =
    "record,label,value,confidence\n"
    "0,N,Alice,1\n0,P,123,1\n"
    "1,N,Alice,1\n1,C,999,1\n"
    "2,N,Bob,1\n2,P,987,1\n";

constexpr const char* kReference =
    "{<N, Alice, 1>, <P, 123, 1>, <C, 999, 1>, <Z, 111, 1>}";

LeakageService MakeService(ServiceConfig config = {}) {
  auto db = LoadDatabaseCsv(kDbCsv);
  EXPECT_TRUE(db.ok());
  return LeakageService(RecordStore::FromDatabase(*db), std::move(config));
}

Request Req(const std::string& line) {
  auto parsed = ParseRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

JsonValue Handle(LeakageService& service, const std::string& line) {
  auto response = ParseJson(service.Handle(Req(line)));
  EXPECT_TRUE(response.ok());
  return std::move(response).value();
}

TEST(LeakageServiceTest, PingPongs) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service, R"({"verb":"ping","id":1})");
  EXPECT_TRUE(out.GetBool("ok", false));
  EXPECT_TRUE(out.GetBool("pong", false));
  EXPECT_DOUBLE_EQ(out.GetNumber("id", -1), 1.0);
}

TEST(LeakageServiceTest, SetLeakMatchesOfflineApiBitExactly) {
  // The serving path must answer exactly what the offline API computes on
  // the same store — same scan order, same accumulation, rendered with
  // round-trip precision.
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  AutoLeakage engine;
  std::ptrdiff_t argmax = -1;
  auto expected = SetLeakageArgMax(*db, *reference, *weights, engine, &argmax);
  ASSERT_TRUE(expected.ok());

  LeakageService service = MakeService();
  JsonValue out = Handle(service, std::string(R"({"verb":"set-leak",)") +
                                      "\"reference\":" + JsonQuote(kReference) +
                                      "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_EQ(out.GetNumber("leakage", -1), *expected);  // exact, not approx
  EXPECT_EQ(out.GetNumber("argmax", -2), static_cast<double>(argmax));
}

TEST(LeakageServiceTest, RecordLeakByIdMatchesOfflineApi) {
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  AutoLeakage engine;
  auto expected = engine.RecordLeakage((*db)[1], *reference, *weights);
  ASSERT_TRUE(expected.ok());

  LeakageService service = MakeService();
  JsonValue out = Handle(service, std::string(R"({"verb":"leak",)") +
                                      "\"record_id\":1,\"reference\":" +
                                      JsonQuote(kReference) + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_EQ(out.GetNumber("leakage", -1), *expected);
}

TEST(LeakageServiceTest, InlineRecordLeak) {
  LeakageService service = MakeService();
  JsonValue out = Handle(
      service, std::string(R"({"verb":"leak","record":)") +
                   JsonQuote("{<N, Alice, 1>, <P, 123, 1>}") +
                   ",\"reference\":" + JsonQuote(kReference) + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_GT(out.GetNumber("leakage", -1), 0.0);
}

TEST(LeakageServiceTest, AppendGrowsStoreAndServesNewRecord) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service,
                         std::string(R"({"verb":"append","record":)") +
                             JsonQuote("{<N, Carol, 0.9>, <P, 555, 1>}") + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_DOUBLE_EQ(out.GetNumber("appended", -1), 3.0);
  EXPECT_DOUBLE_EQ(out.GetNumber("records", -1), 4.0);

  JsonValue leak = Handle(
      service, std::string(R"({"verb":"leak","record_id":3,"reference":)") +
                   JsonQuote("{<N, Carol, 1>, <P, 555, 1>}") + "}");
  EXPECT_TRUE(leak.GetBool("ok", false)) << leak.Render();
}

TEST(LeakageServiceTest, ResolveReturnsDossierAndMembers) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service,
                         std::string(R"({"verb":"resolve","query":)") +
                             JsonQuote("{<N, Alice>}") + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_DOUBLE_EQ(out.GetNumber("members", -1), 2.0);
  ASSERT_NE(out.Find("ids"), nullptr);
  EXPECT_EQ(out.Find("ids")->items().size(), 2u);
}

TEST(LeakageServiceTest, StatsReportsStoreAndCache) {
  LeakageService service = MakeService();
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  JsonValue out = Handle(service, R"({"verb":"stats"})");
  ASSERT_TRUE(out.GetBool("ok", false));
  EXPECT_DOUBLE_EQ(out.GetNumber("records", -1), 3.0);
  EXPECT_DOUBLE_EQ(out.GetNumber("cached_references", -1), 1.0);
}

TEST(LeakageServiceTest, ReferenceCacheInternsAndEvictsFifo) {
  ServiceConfig config;
  config.max_cached_references = 2;
  LeakageService service = MakeService(config);
  auto query = [&](const std::string& ref) {
    Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                        JsonQuote(ref) + "}");
  };
  query("{<N, Alice, 1>}");
  query("{<N, Alice, 1>}");  // hit: same spelling
  EXPECT_EQ(service.cached_references(), 1u);
  query("{<N, Bob, 1>}");
  query("{<P, 123, 1>}");  // evicts the Alice entry (FIFO)
  EXPECT_EQ(service.cached_references(), 2u);
}

TEST(LeakageServiceTest, ErrorsUseWireCodes) {
  LeakageService service = MakeService();
  std::string code;
  service.Handle(Req(R"({"verb":"warp"})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"leak","reference":"{<N, Alice>}","record_id":99})"),
                 {}, &code);
  EXPECT_EQ(code, "not_found");
  service.Handle(Req(R"({"verb":"leak","reference":"not a record"})"), {},
                 &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"append","record":"{}"})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
}

// The "measure" field follows the closed-vocabulary wire rule: unknown
// names, wrong types, and contradictory engine selections are
// invalid_argument on the wire — never a silent fall-back to the default
// measure.
TEST(LeakageServiceTest, MeasureFieldUsesClosedVocabulary) {
  LeakageService service = MakeService();
  std::string code;
  const std::string ref = "\"reference\":" + JsonQuote(kReference);
  service.Handle(
      Req(R"({"verb":"set-leak",)" + ref + R"(,"measure":"renyi"})"), {},
      &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"set-leak",)" + ref + R"(,"measure":3})"),
                 {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  // A non-default measure has exactly one engine; naming another is a
  // contradiction, not a preference.
  service.Handle(Req(R"({"verb":"set-leak",)" + ref +
                     R"(,"measure":"pml","engine":"exact"})"),
                 {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  // The default measure spelled out composes with an engine choice.
  code.clear();
  service.Handle(Req(R"({"verb":"set-leak",)" + ref +
                     R"(,"measure":"expected-f1","engine":"exact"})"),
                 {}, &code);
  EXPECT_TRUE(code.empty()) << code;
}

TEST(LeakageServiceTest, MeasureSetLeakMatchesOfflineApiBitExactly) {
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  for (Measure m : {Measure::kPml, Measure::kGuesswork, Measure::kUnder,
                    Measure::kOver}) {
    const LeakageEngine* engine = MeasureEngineSingleton(m);
    ASSERT_NE(engine, nullptr);
    std::ptrdiff_t argmax = -1;
    auto expected =
        SetLeakageArgMax(*db, *reference, *weights, *engine, &argmax);
    ASSERT_TRUE(expected.ok()) << engine->name();

    LeakageService service = MakeService();
    JsonValue out = Handle(
        service, std::string(R"({"verb":"set-leak",)") +
                     "\"reference\":" + JsonQuote(kReference) +
                     ",\"measure\":\"" + std::string(engine->name()) + "\"}");
    ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
    EXPECT_EQ(out.GetNumber("leakage", -1), *expected) << engine->name();
    EXPECT_EQ(out.GetNumber("argmax", -2), static_cast<double>(argmax))
        << engine->name();
  }
}

// Indexes are keyed by engine identity, so a measure query after a default
// query on the same reference must answer under its own engine — a stale
// default-measure value here would be silent data corruption. The appended
// partial-confidence record makes the two answers provably different.
TEST(LeakageServiceTest, MeasureSetLeakNeverServesStaleDefaultAnswers) {
  LeakageService service = MakeService();
  JsonValue appended = Handle(
      service,
      std::string(R"({"verb":"append","record":)") +
          JsonQuote("{<N, Alice, 0.5>, <P, 123, 0.5>, <C, 999, 0.5>}") + "}");
  ASSERT_TRUE(appended.GetBool("ok", false)) << appended.Render();

  const std::string ref = "\"reference\":" + JsonQuote(kReference);
  // Warm the default-measure index first, then query pml on the same
  // reference; repeat the measure query so it can land on its own index.
  JsonValue expected =
      Handle(service, R"({"verb":"set-leak",)" + ref + "}");
  ASSERT_TRUE(expected.GetBool("ok", false)) << expected.Render();
  for (int i = 0; i < 2; ++i) {
    JsonValue pml = Handle(service, R"({"verb":"set-leak",)" + ref +
                                        R"(,"measure":"pml"})");
    ASSERT_TRUE(pml.GetBool("ok", false)) << pml.Render();
    EXPECT_GT(pml.GetNumber("leakage", -1),
              expected.GetNumber("leakage", 2.0))
        << "pml answer did not exceed the expected-F1 answer: stale index?";
    EXPECT_EQ(pml.GetNumber("argmax", -2), 3.0);  // the partial record wins
  }
}

TEST(LeakageServiceTest, CancelHookAbortsWithDeadlineExceeded) {
  LeakageService service = MakeService();
  std::string code;
  const std::string response = service.Handle(
      Req(std::string(R"({"verb":"set-leak","reference":)") +
          JsonQuote(kReference) + "}"),
      [] { return true; },  // already expired
      &code);
  EXPECT_EQ(code, "deadline_exceeded") << response;
  auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(parsed->GetString("code"), "deadline_exceeded");
}

TEST(LeakageServiceTest, StatsReportsEventsSlowRingAndBuildInfo) {
  obs::EventLog::Global().Clear();
  LeakageService service = MakeService();
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  JsonValue out = Handle(service, R"({"verb":"stats"})");
  ASSERT_TRUE(out.GetBool("ok", false));
  const JsonValue* events = out.Find("events");
  ASSERT_NE(events, nullptr);
  EXPECT_GE(events->GetNumber("recorded", -1), 1.0);
  const JsonValue* slow = out.Find("slow");
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(slow->is_array());
  ASSERT_FALSE(slow->items().empty());
  EXPECT_GT(slow->items()[0].GetNumber("total_us", 0.0), 0.0);
  const JsonValue* build = out.Find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->GetString("version").empty());
  EXPECT_FALSE(build->GetString("simd").empty());
}

TEST(LeakageServiceTest, HandleEmitsExactlyOneEventPerRequest) {
  auto& log = obs::EventLog::Global();
  log.Clear();
  LeakageService service = MakeService();
  Handle(service, R"({"verb":"ping"})");
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  std::string code;
  service.Handle(Req(R"({"verb":"warp"})"), {}, &code);  // error path too
  EXPECT_EQ(log.recorded(), 3u);
  const auto events = log.Recent(10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].verb, "ping");
  EXPECT_EQ(events[0].outcome, "ok");
  EXPECT_EQ(events[1].verb, "set-leak");
  EXPECT_EQ(events[1].outcome, "ok");
  EXPECT_EQ(events[2].verb, "warp");
  EXPECT_EQ(events[2].outcome, "invalid_argument");
  // Ids are process-unique and increasing.
  EXPECT_LT(events[0].id, events[1].id);
  EXPECT_LT(events[1].id, events[2].id);
  // A caller-provided context transfers emission ownership: the service
  // must fill it in without recording it.
  obs::RequestContext ctx;
  service.Handle(Req(R"({"verb":"ping"})"), {}, nullptr, &ctx);
  EXPECT_EQ(log.recorded(), 3u);
  // ...but it still charges the phases it ran to the caller's context.
  EXPECT_GT(ctx.phase_nanos(obs::Phase::kSerialize), 0u);
}

TEST(LeakageServiceTest, SetLeakEventCarriesPhaseBreakdown) {
  auto& log = obs::EventLog::Global();
  log.Clear();
  LeakageService service = MakeService();
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  const auto events = log.Recent(1);
  ASSERT_EQ(events.size(), 1u);
  const obs::RequestEvent& event = events[0];
  EXPECT_EQ(event.verb, "set-leak");
  EXPECT_EQ(event.outcome, "ok");
  EXPECT_EQ(event.records_scanned, 3u);  // the whole store was scanned
  // Parse (reference preparation), eval (the scan), and serialize
  // (rendering) all ran, so each must carry time; the phase sum never
  // exceeds the end-to-end total.
  EXPECT_GT(event.phase_nanos[static_cast<int>(obs::Phase::kParse)], 0u);
  EXPECT_GT(event.phase_nanos[static_cast<int>(obs::Phase::kEval)], 0u);
  EXPECT_GT(event.phase_nanos[static_cast<int>(obs::Phase::kSerialize)], 0u);
  uint64_t sum = 0;
  for (uint64_t nanos : event.phase_nanos) sum += nanos;
  EXPECT_LE(sum, event.total_nanos);
}

TEST(LeakageServiceTest, TailReturnsRecentEventsAndHonorsFilters) {
  auto& log = obs::EventLog::Global();
  log.Clear();
  LeakageService service = MakeService();
  Handle(service, R"({"verb":"ping"})");
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  JsonValue out = Handle(service, R"({"verb":"tail"})");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  const JsonValue* events = out.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  // The tail request itself finishes only after its response is built, so
  // it never appears in its own window.
  ASSERT_EQ(events->items().size(), 2u);
  const JsonValue& ping = events->items()[0];
  const JsonValue& setleak = events->items()[1];
  EXPECT_EQ(ping.GetString("verb"), "ping");
  EXPECT_EQ(setleak.GetString("verb"), "set-leak");
  EXPECT_EQ(setleak.GetString("outcome"), "ok");
  EXPECT_GT(setleak.GetNumber("total_us", 0.0), 0.0);
  const JsonValue* phases = setleak.Find("phases");
  ASSERT_NE(phases, nullptr);
  EXPECT_GT(phases->GetNumber("eval", 0.0), 0.0);
  // Cursor filter: only events past the ping's id.
  const double ping_id = ping.GetNumber("id", 0.0);
  JsonValue after =
      Handle(service, std::string(R"({"verb":"tail","after_id":)") +
                          JsonNumber(ping_id) + "}");
  const JsonValue* after_events = after.Find("events");
  ASSERT_NE(after_events, nullptr);
  // The set-leak plus the first tail request (which finished by now).
  ASSERT_GE(after_events->items().size(), 2u);
  EXPECT_EQ(after_events->items()[0].GetString("verb"), "set-leak");
  // Slow view: the worst-retained ring renders through the same shape.
  JsonValue slow = Handle(service, R"({"verb":"tail","slow":true,"count":1})");
  const JsonValue* slow_events = slow.Find("events");
  ASSERT_NE(slow_events, nullptr);
  ASSERT_EQ(slow_events->items().size(), 1u);
}

TEST(LeakageServiceTest, TailValidatesItsArguments) {
  LeakageService service = MakeService();
  std::string code;
  service.Handle(Req(R"({"verb":"tail","count":0})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"tail","count":1001})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"tail","count":2.5})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"tail","min_micros":-1})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
}

TEST(LeakageServiceTest, SetLeakReportsItsAnswerPath) {
  // With the index on (the default) set-leak answers off the materialized
  // index; with --no-index semantics every query goes to the scan. Both
  // paths are bit-identical, so only the path tag may differ.
  LeakageService indexed = MakeService();
  const std::string line = std::string(R"({"verb":"set-leak",)") +
                           "\"reference\":" + JsonQuote(kReference) + "}";
  JsonValue fast = Handle(indexed, line);
  ASSERT_TRUE(fast.GetBool("ok", false)) << fast.Render();
  EXPECT_EQ(fast.GetString("path"), "index");

  ServiceConfig config;
  config.enable_index = false;
  LeakageService scanning = MakeService(config);
  JsonValue slow = Handle(scanning, line);
  ASSERT_TRUE(slow.GetBool("ok", false)) << slow.Render();
  EXPECT_EQ(slow.GetString("path"), "scan");
  EXPECT_EQ(fast.GetNumber("leakage", -1.0), slow.GetNumber("leakage", -2.0));
  EXPECT_EQ(fast.GetNumber("argmax", -1.0), slow.GetNumber("argmax", -2.0));
}

TEST(LeakageServiceTest, SubscribeStreamsAppendDeltasWithCursor) {
  LeakageService service = MakeService();
  const std::string subscribe = std::string(R"({"verb":"subscribe",)") +
                                "\"reference\":" + JsonQuote(kReference) + "}";
  // The first call primes the index over the preloaded store: one delta
  // event per record, cursor at the newest sequence.
  JsonValue first = Handle(service, subscribe);
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Render();
  const JsonValue* events = first.Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->items().size(), 3u);
  EXPECT_EQ(first.GetNumber("cursor", -1.0), 3.0);
  EXPECT_EQ(first.GetNumber("covered", -1.0), 3.0);
  EXPECT_EQ(first.GetNumber("dropped", -1.0), 0.0);

  // An append published through the feed shows up after the cursor without
  // any intervening query.
  Handle(service, R"({"verb":"append","record":"{<N, Alice, 1>}"})");
  JsonValue next = Handle(
      service, std::string(R"({"verb":"subscribe","after_seq":3,)") +
                   "\"reference\":" + JsonQuote(kReference) + "}");
  ASSERT_TRUE(next.GetBool("ok", false)) << next.Render();
  const JsonValue* delta = next.Find("events");
  ASSERT_NE(delta, nullptr);
  ASSERT_EQ(delta->items().size(), 1u);
  EXPECT_EQ(delta->items()[0].GetNumber("seq", -1.0), 4.0);
  EXPECT_EQ(delta->items()[0].GetNumber("record_id", -1.0), 3.0);
  EXPECT_EQ(next.GetNumber("cursor", -1.0), 4.0);
}

TEST(LeakageServiceTest, SubscribeNeedsTheIndexAndValidatesItsArguments) {
  ServiceConfig config;
  config.enable_index = false;
  LeakageService disabled = MakeService(config);
  const std::string subscribe = std::string(R"({"verb":"subscribe",)") +
                                "\"reference\":" + JsonQuote(kReference) + "}";
  JsonValue refused = Handle(disabled, subscribe);
  EXPECT_FALSE(refused.GetBool("ok", true));
  EXPECT_NE(refused.GetString("error").find("--no-index"), std::string::npos);

  LeakageService service = MakeService();
  std::string code;
  service.Handle(Req(std::string(R"({"verb":"subscribe","max_events":0,)") +
                     "\"reference\":" + JsonQuote(kReference) + "}"),
                 {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(std::string(R"({"verb":"subscribe","wait_ms":20000,)") +
                     "\"reference\":" + JsonQuote(kReference) + "}"),
                 {}, &code);
  EXPECT_EQ(code, "invalid_argument");
}

TEST(LeakageServiceTest, IndexRebuildsAfterCacheEviction) {
  // An index lives inside its prepared-cache entry, so FIFO eviction kills
  // it; re-querying the evicted reference must mint a fresh entry whose
  // rebuilt index answers identically, still off the index path.
  ServiceConfig config;
  config.max_cached_references = 1;
  LeakageService service = MakeService(config);
  const std::string line_a = std::string(R"({"verb":"set-leak",)") +
                             "\"reference\":" + JsonQuote(kReference) + "}";
  const std::string line_b =
      R"({"verb":"set-leak","reference":"{<N, Bob, 1>, <P, 987, 1>}"})";
  JsonValue first = Handle(service, line_a);
  ASSERT_TRUE(first.GetBool("ok", false)) << first.Render();
  EXPECT_EQ(first.GetString("path"), "index");

  JsonValue other = Handle(service, line_b);  // evicts A's entry and index
  ASSERT_TRUE(other.GetBool("ok", false)) << other.Render();

  JsonValue again = Handle(service, line_a);
  ASSERT_TRUE(again.GetBool("ok", false)) << again.Render();
  EXPECT_EQ(again.GetString("path"), "index");
  EXPECT_EQ(again.GetNumber("leakage", -1.0), first.GetNumber("leakage", -2.0));
  EXPECT_EQ(again.GetNumber("argmax", -1.0), first.GetNumber("argmax", -2.0));

  // The feed prunes the dead sink: only the live entry's index remains.
  JsonValue stats = Handle(service, R"({"verb":"stats"})");
  const JsonValue* index = stats.Find("index");
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->GetNumber("registered", -1.0), 1.0);
}

TEST(LeakageServiceTest, StatsReportsIndexAccounting) {
  LeakageService service = MakeService();
  const std::string line = std::string(R"({"verb":"set-leak",)") +
                           "\"reference\":" + JsonQuote(kReference) + "}";
  Handle(service, line);
  JsonValue stats = Handle(service, R"({"verb":"stats"})");
  ASSERT_TRUE(stats.GetBool("ok", false)) << stats.Render();
  const JsonValue* index = stats.Find("index");
  ASSERT_NE(index, nullptr) << stats.Render();
  EXPECT_TRUE(index->GetBool("enabled", false));
  EXPECT_EQ(index->GetNumber("registered", -1.0), 1.0);
  // hit/fallback counters are process-global (other tests in this binary
  // also serve), so only demand they moved, not an exact value.
  EXPECT_GE(index->GetNumber("hits", -1.0), 1.0);
  EXPECT_GE(index->GetNumber("invalidations", -1.0), 0.0);
}

}  // namespace
}  // namespace infoleak::svc
