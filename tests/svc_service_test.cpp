#include "svc/service.h"

#include <gtest/gtest.h>

#include <string>

#include "core/leakage.h"
#include "core/record_io.h"
#include "svc/json.h"

namespace infoleak::svc {
namespace {

constexpr const char* kDbCsv =
    "record,label,value,confidence\n"
    "0,N,Alice,1\n0,P,123,1\n"
    "1,N,Alice,1\n1,C,999,1\n"
    "2,N,Bob,1\n2,P,987,1\n";

constexpr const char* kReference =
    "{<N, Alice, 1>, <P, 123, 1>, <C, 999, 1>, <Z, 111, 1>}";

LeakageService MakeService(ServiceConfig config = {}) {
  auto db = LoadDatabaseCsv(kDbCsv);
  EXPECT_TRUE(db.ok());
  return LeakageService(RecordStore::FromDatabase(*db), std::move(config));
}

Request Req(const std::string& line) {
  auto parsed = ParseRequest(line);
  EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
  return std::move(parsed).value();
}

JsonValue Handle(LeakageService& service, const std::string& line) {
  auto response = ParseJson(service.Handle(Req(line)));
  EXPECT_TRUE(response.ok());
  return std::move(response).value();
}

TEST(LeakageServiceTest, PingPongs) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service, R"({"verb":"ping","id":1})");
  EXPECT_TRUE(out.GetBool("ok", false));
  EXPECT_TRUE(out.GetBool("pong", false));
  EXPECT_DOUBLE_EQ(out.GetNumber("id", -1), 1.0);
}

TEST(LeakageServiceTest, SetLeakMatchesOfflineApiBitExactly) {
  // The serving path must answer exactly what the offline API computes on
  // the same store — same scan order, same accumulation, rendered with
  // round-trip precision.
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  AutoLeakage engine;
  std::ptrdiff_t argmax = -1;
  auto expected = SetLeakageArgMax(*db, *reference, *weights, engine, &argmax);
  ASSERT_TRUE(expected.ok());

  LeakageService service = MakeService();
  JsonValue out = Handle(service, std::string(R"({"verb":"set-leak",)") +
                                      "\"reference\":" + JsonQuote(kReference) +
                                      "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_EQ(out.GetNumber("leakage", -1), *expected);  // exact, not approx
  EXPECT_EQ(out.GetNumber("argmax", -2), static_cast<double>(argmax));
}

TEST(LeakageServiceTest, RecordLeakByIdMatchesOfflineApi) {
  auto db = LoadDatabaseCsv(kDbCsv);
  ASSERT_TRUE(db.ok());
  auto reference = ParseRecord(kReference);
  ASSERT_TRUE(reference.ok());
  auto weights = WeightModel::Parse("");
  ASSERT_TRUE(weights.ok());
  AutoLeakage engine;
  auto expected = engine.RecordLeakage((*db)[1], *reference, *weights);
  ASSERT_TRUE(expected.ok());

  LeakageService service = MakeService();
  JsonValue out = Handle(service, std::string(R"({"verb":"leak",)") +
                                      "\"record_id\":1,\"reference\":" +
                                      JsonQuote(kReference) + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_EQ(out.GetNumber("leakage", -1), *expected);
}

TEST(LeakageServiceTest, InlineRecordLeak) {
  LeakageService service = MakeService();
  JsonValue out = Handle(
      service, std::string(R"({"verb":"leak","record":)") +
                   JsonQuote("{<N, Alice, 1>, <P, 123, 1>}") +
                   ",\"reference\":" + JsonQuote(kReference) + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_GT(out.GetNumber("leakage", -1), 0.0);
}

TEST(LeakageServiceTest, AppendGrowsStoreAndServesNewRecord) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service,
                         std::string(R"({"verb":"append","record":)") +
                             JsonQuote("{<N, Carol, 0.9>, <P, 555, 1>}") + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_DOUBLE_EQ(out.GetNumber("appended", -1), 3.0);
  EXPECT_DOUBLE_EQ(out.GetNumber("records", -1), 4.0);

  JsonValue leak = Handle(
      service, std::string(R"({"verb":"leak","record_id":3,"reference":)") +
                   JsonQuote("{<N, Carol, 1>, <P, 555, 1>}") + "}");
  EXPECT_TRUE(leak.GetBool("ok", false)) << leak.Render();
}

TEST(LeakageServiceTest, ResolveReturnsDossierAndMembers) {
  LeakageService service = MakeService();
  JsonValue out = Handle(service,
                         std::string(R"({"verb":"resolve","query":)") +
                             JsonQuote("{<N, Alice>}") + "}");
  ASSERT_TRUE(out.GetBool("ok", false)) << out.Render();
  EXPECT_DOUBLE_EQ(out.GetNumber("members", -1), 2.0);
  ASSERT_NE(out.Find("ids"), nullptr);
  EXPECT_EQ(out.Find("ids")->items().size(), 2u);
}

TEST(LeakageServiceTest, StatsReportsStoreAndCache) {
  LeakageService service = MakeService();
  Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                      JsonQuote(kReference) + "}");
  JsonValue out = Handle(service, R"({"verb":"stats"})");
  ASSERT_TRUE(out.GetBool("ok", false));
  EXPECT_DOUBLE_EQ(out.GetNumber("records", -1), 3.0);
  EXPECT_DOUBLE_EQ(out.GetNumber("cached_references", -1), 1.0);
}

TEST(LeakageServiceTest, ReferenceCacheInternsAndEvictsFifo) {
  ServiceConfig config;
  config.max_cached_references = 2;
  LeakageService service = MakeService(config);
  auto query = [&](const std::string& ref) {
    Handle(service, std::string(R"({"verb":"set-leak","reference":)") +
                        JsonQuote(ref) + "}");
  };
  query("{<N, Alice, 1>}");
  query("{<N, Alice, 1>}");  // hit: same spelling
  EXPECT_EQ(service.cached_references(), 1u);
  query("{<N, Bob, 1>}");
  query("{<P, 123, 1>}");  // evicts the Alice entry (FIFO)
  EXPECT_EQ(service.cached_references(), 2u);
}

TEST(LeakageServiceTest, ErrorsUseWireCodes) {
  LeakageService service = MakeService();
  std::string code;
  service.Handle(Req(R"({"verb":"warp"})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"leak","reference":"{<N, Alice>}","record_id":99})"),
                 {}, &code);
  EXPECT_EQ(code, "not_found");
  service.Handle(Req(R"({"verb":"leak","reference":"not a record"})"), {},
                 &code);
  EXPECT_EQ(code, "invalid_argument");
  service.Handle(Req(R"({"verb":"append","record":"{}"})"), {}, &code);
  EXPECT_EQ(code, "invalid_argument");
}

TEST(LeakageServiceTest, CancelHookAbortsWithDeadlineExceeded) {
  LeakageService service = MakeService();
  std::string code;
  const std::string response = service.Handle(
      Req(std::string(R"({"verb":"set-leak","reference":)") +
          JsonQuote(kReference) + "}"),
      [] { return true; },  // already expired
      &code);
  EXPECT_EQ(code, "deadline_exceeded") << response;
  auto parsed = ParseJson(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(parsed->GetString("code"), "deadline_exceeded");
}

}  // namespace
}  // namespace infoleak::svc
