#include "anon/bridge.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(BridgeTest, RowToRecordUsesColumnLabels) {
  auto t = Table::Create({"Zip", "Age"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"111", "30"}).ok());
  auto r = RowToRecord(*t, 0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->Confidence("Zip", "111"), 1.0);
  EXPECT_DOUBLE_EQ(r->Confidence("Age", "30"), 1.0);
}

TEST(BridgeTest, RowToRecordWithConfidence) {
  auto t = Table::Create({"Zip"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"111"}).ok());
  auto r = RowToRecord(*t, 0, 0.5);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Confidence("Zip", "111"), 0.5);
}

TEST(BridgeTest, RowOutOfRange) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  EXPECT_TRUE(RowToRecord(*t, 0).status().IsOutOfRange());
}

TEST(BridgeTest, TableToDatabase) {
  auto t = Table::Create({"A"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"1"}).ok());
  ASSERT_TRUE(t->AddRow({"2"}).ok());
  auto db = TableToDatabase(*t);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->size(), 2u);
  EXPECT_TRUE((*db)[1].Contains("A", "2"));
  EXPECT_TRUE((*db)[1].HasSource(1));
}

TEST(BridgeTest, AlignRewritesCoveringValues) {
  // The §3.1 simplification: <Zip, 11*> counts as <Zip, 111> against
  // Alice's reference.
  Record r{{"Zip", "11*"}, {"Age", "3*"}, {"Disease", "Heart"}};
  Record p{{"Name", "Alice"}, {"Zip", "111"}, {"Age", "30"},
           {"Disease", "Heart"}};
  Record aligned = AlignGeneralizedToReference(r, p);
  EXPECT_TRUE(aligned.Contains("Zip", "111"));
  EXPECT_TRUE(aligned.Contains("Age", "30"));
  EXPECT_TRUE(aligned.Contains("Disease", "Heart"));
  EXPECT_FALSE(aligned.Contains("Zip", "11*"));
}

TEST(BridgeTest, AlignLeavesNonCoveringValues) {
  Record r{{"Zip", "2**"}};
  Record p{{"Zip", "111"}};
  Record aligned = AlignGeneralizedToReference(r, p);
  EXPECT_TRUE(aligned.Contains("Zip", "2**"));  // 2** does not cover 111
}

TEST(BridgeTest, AlignReducedConfidenceVariant) {
  // The paper's alternative: "view a suppressed value as the original value
  // with a reduced confidence value".
  Record r{{"Zip", "11*", 1.0}};
  Record p{{"Zip", "111"}};
  Record aligned = AlignGeneralizedToReference(r, p, 0.4);
  EXPECT_DOUBLE_EQ(aligned.Confidence("Zip", "111"), 0.4);
}

TEST(BridgeTest, AlignKeepsExactMatchesAtFullConfidence) {
  Record r{{"Zip", "111", 0.9}};
  Record p{{"Zip", "111"}};
  Record aligned = AlignGeneralizedToReference(r, p, 0.4);
  EXPECT_DOUBLE_EQ(aligned.Confidence("Zip", "111"), 0.9);
}

TEST(BridgeTest, AlignPreservesProvenance) {
  Record r{{"Zip", "11*"}};
  r.AddSource(3);
  Record p{{"Zip", "111"}};
  EXPECT_TRUE(AlignGeneralizedToReference(r, p).HasSource(3));
}

}  // namespace
}  // namespace infoleak
