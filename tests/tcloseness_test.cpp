#include "anon/tcloseness.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// The paper's Table 2 (3-anonymous patient table).
Table PaperTable2() {
  auto t = Table::Create({"Zip", "Age", "Disease"});
  EXPECT_TRUE(t.ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Heart"}).ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Breast"}).ok());
  EXPECT_TRUE(t->AddRow({"11*", "3*", "Cancer"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Hair"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Flu"}).ok());
  EXPECT_TRUE(t->AddRow({"2**", ">=50", "Flu"}).ok());
  return std::move(t).value();
}

TEST(TClosenessTest, Table2Distance) {
  // Global: Heart/Breast/Cancer/Hair 1/6 each, Flu 2/6.
  // Class 1 {Heart, Breast, Cancer}: TV = 1/2(|1/3-1/6|*3 + 1/6 + 2/6)
  //   = 1/2(1/2 + 1/2) = 1/2.
  Table t = PaperTable2();
  auto d = MaxSensitiveDistance(t, {"Zip", "Age"}, "Disease");
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.5, kTol);
  EXPECT_TRUE(IsTClose(t, {"Zip", "Age"}, "Disease", 0.5).value());
  EXPECT_FALSE(IsTClose(t, {"Zip", "Age"}, "Disease", 0.4).value());
}

TEST(TClosenessTest, SingleClassIsPerfectlyClose) {
  auto t = Table::Create({"Q", "S"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"a", "x"}).ok());
  ASSERT_TRUE(t->AddRow({"a", "y"}).ok());
  auto d = MaxSensitiveDistance(*t, {"Q"}, "S");
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.0, kTol);
  EXPECT_TRUE(IsTClose(*t, {"Q"}, "S", 0.0).value());
}

TEST(TClosenessTest, HomogeneousClassIsFar) {
  // Two classes, each homogeneous in a different value: distance 1/2.
  auto t = Table::Create({"Q", "S"});
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(t->AddRow({"a", "x"}).ok());
  ASSERT_TRUE(t->AddRow({"a", "x"}).ok());
  ASSERT_TRUE(t->AddRow({"b", "y"}).ok());
  ASSERT_TRUE(t->AddRow({"b", "y"}).ok());
  auto d = MaxSensitiveDistance(*t, {"Q"}, "S");
  ASSERT_TRUE(d.ok());
  EXPECT_NEAR(*d, 0.5, kTol);
}

TEST(TClosenessTest, EmptyTableIsClose) {
  auto t = Table::Create({"Q", "S"});
  ASSERT_TRUE(t.ok());
  EXPECT_NEAR(MaxSensitiveDistance(*t, {"Q"}, "S").value(), 0.0, kTol);
}

TEST(TClosenessTest, UnknownColumnsFail) {
  Table t = PaperTable2();
  EXPECT_FALSE(MaxSensitiveDistance(t, {"Ghost"}, "Disease").ok());
  EXPECT_FALSE(MaxSensitiveDistance(t, {"Zip"}, "Ghost").ok());
}

TEST(TClosenessTest, DistanceBounds) {
  // Total-variation distance lies in [0, 1].
  auto t = Table::Create({"Q", "S"});
  ASSERT_TRUE(t.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->AddRow({std::to_string(i % 3),
                           StrCat("v", std::to_string(i))}).ok());
  }
  auto d = MaxSensitiveDistance(*t, {"Q"}, "S");
  ASSERT_TRUE(d.ok());
  EXPECT_GE(*d, 0.0);
  EXPECT_LE(*d, 1.0);
}

}  // namespace
}  // namespace infoleak
