#include "apps/frontier.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cli/commands.h"
#include "svc/json.h"
#include "svc/protocol.h"
#include "svc/service.h"
#include "store/record_store.h"

namespace infoleak {
namespace {

FrontierConfig SmokeConfig() {
  FrontierConfig config;
  config.registry.seed = 1;
  config.registry.rows = 40;
  config.grid.ks = {2, 5, 10};
  return config;
}

std::string RenderLines(const FrontierResult& result,
                        const FrontierConfig& config) {
  std::string out;
  for (const FrontierPoint& point : result.points) {
    out += FrontierPointLine(point, config);
    out += '\n';
  }
  return out;
}

TEST(FrontierTest, SameSeedAndGridYieldByteIdenticalNdjson) {
  FrontierConfig config = SmokeConfig();
  config.grid.suppressions = {0, 4};
  auto first = RunFrontier(config);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  auto second = RunFrontier(config);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(RenderLines(*first, config), RenderLines(*second, config));
}

TEST(FrontierTest, WorkerPoolNeverChangesBytes) {
  FrontierConfig serial = SmokeConfig();
  auto one = RunFrontier(serial);
  ASSERT_TRUE(one.ok());
  FrontierConfig pooled = SmokeConfig();
  pooled.num_threads = 4;
  auto four = RunFrontier(pooled);
  ASSERT_TRUE(four.ok());
  EXPECT_EQ(RenderLines(*one, serial), RenderLines(*four, pooled));
}

TEST(FrontierTest, WorstLeakageIsNonIncreasingInK) {
  FrontierConfig config = SmokeConfig();
  auto result = RunFrontier(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result->points.size(), 3u);
  double previous = 1.0;
  for (const FrontierPoint& point : result->points) {
    ASSERT_TRUE(point.found) << "k=" << point.k;
    EXPECT_LE(point.worst_leakage, previous + 1e-12) << "k=" << point.k;
    previous = point.worst_leakage;
  }
}

TEST(FrontierTest, GridOrderIsKThenLThenTThenSuppression) {
  FrontierConfig config = SmokeConfig();
  config.grid.ks = {2, 5};
  config.grid.ls = {1, 2};
  config.grid.suppressions = {0, 2};
  auto result = RunFrontier(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->points.size(), 8u);
  EXPECT_EQ(result->points[0].k, 2u);
  EXPECT_EQ(result->points[0].l, 1u);
  EXPECT_EQ(result->points[0].max_suppressed, 0u);
  EXPECT_EQ(result->points[1].max_suppressed, 2u);
  EXPECT_EQ(result->points[2].l, 2u);
  EXPECT_EQ(result->points[4].k, 5u);
}

TEST(FrontierTest, TighterMechanismsNeverImproveUtility) {
  // Adding l-diversity on top of the same k can only climb the lattice:
  // Prec must not rise.
  FrontierConfig config = SmokeConfig();
  config.grid.ks = {2};
  config.grid.ls = {1, 3};
  auto result = RunFrontier(config);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->points.size(), 2u);
  ASSERT_TRUE(result->points[0].found);
  ASSERT_TRUE(result->points[1].found);
  EXPECT_LE(result->points[1].prec, result->points[0].prec + 1e-12);
  EXPECT_GE(result->points[1].height, result->points[0].height);
}

TEST(FrontierTest, EmptyGridAxisIsInvalid) {
  FrontierConfig config = SmokeConfig();
  config.grid.ks = {};
  EXPECT_TRUE(RunFrontier(config).status().IsInvalidArgument());
  config = SmokeConfig();
  config.grid.ts = {1.5};
  EXPECT_TRUE(RunFrontier(config).status().IsInvalidArgument());
}

TEST(FrontierTest, PhaseAccountingIsCharged) {
  FrontierConfig config = SmokeConfig();
  config.grid.ks = {2};
  auto result = RunFrontier(config);
  ASSERT_TRUE(result.ok());
  const FrontierPoint& point = result->points[0];
  EXPECT_GT(point.anonymize_nanos, 0u);
  EXPECT_GT(point.resolve_nanos, 0u);
  EXPECT_GT(point.eval_nanos, 0u);
}

TEST(FrontierCliTest, HelpGoldenOutput) {
  constexpr const char* kGolden =
      "usage: infoleak frontier [flags]\n"
      "\n"
      "  sweep anonymization grids, charting leakage vs utility\n"
      "\n"
      "flags:\n"
      "  --seed          registry PRNG seed (default 1)\n"
      "  --rows          registry rows swept (default 60)\n"
      "  --zip-prefixes  distinct leading zip prefixes in the registry "
      "(default 6)\n"
      "  --diseases      sensitive-vocabulary size (default 5)\n"
      "  --ks            comma list of k values to sweep (default 2,5)\n"
      "  --ls            comma list of l-diversity values; 1 disables "
      "(default 1)\n"
      "  --ts            comma list of t-closeness values in [0,1]; 1 "
      "disables (default 1)\n"
      "  --suppress      comma list of suppression budgets (default 0)\n"
      "  --measure       leakage measure pricing each point: "
      "expected-f1|pml|guesswork|under|over\n"
      "  --threads       worker threads fanning grid points; 0 = hardware "
      "(default 1)\n"
      "  --phases        append '#' comment lines with per-point "
      "anonymize/resolve/eval phase micros\n"
      "\n"
      "observability riders (accepted by every command):\n"
      "  --stats         append a metrics report to the command output\n"
      "  --stats-format  metrics report format: prometheus|json\n"
      "  --trace         append a trace-span summary to the command "
      "output\n";
  std::string out;
  ASSERT_TRUE(cli::Dispatch({"frontier", "--help"}, &out).ok());
  EXPECT_EQ(out, kGolden);
}

TEST(FrontierCliTest, UnknownFlagIsRejected) {
  std::string out;
  Status st = cli::Dispatch({"frontier", "--warp", "9"}, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("--warp"), std::string::npos);
  EXPECT_NE(st.message().find("infoleak frontier --help"), std::string::npos);
}

TEST(FrontierCliTest, NdjsonIsDeterministicAcrossRuns) {
  const std::vector<std::string> args = {"frontier", "--rows", "30",
                                         "--ks",     "2,5",   "--seed", "7"};
  std::string first, second;
  ASSERT_TRUE(cli::Dispatch(args, &first).ok());
  ASSERT_TRUE(cli::Dispatch(args, &second).ok());
  EXPECT_FALSE(first.empty());
  EXPECT_EQ(first, second);
}

TEST(FrontierCliTest, BadListEntriesAreRejected) {
  std::string out;
  EXPECT_TRUE(cli::Dispatch({"frontier", "--ks", "2,x"}, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(cli::Dispatch({"frontier", "--ts", "0.5,oops"}, &out)
                  .IsInvalidArgument());
  EXPECT_TRUE(cli::Dispatch({"frontier", "--measure", "psychic"}, &out)
                  .IsInvalidArgument());
}

TEST(FrontierWireTest, ServedSweepMatchesTheLibrary) {
  svc::LeakageService service{RecordStore()};
  auto request = svc::ParseRequest(
      R"({"verb":"frontier","id":9,"rows":30,"ks":[2,5],"seed":1})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  auto response = svc::ParseJson(service.Handle(*request));
  ASSERT_TRUE(response.ok()) << response.status().ToString();
  EXPECT_TRUE(response->GetBool("ok", false));
  const svc::JsonValue* points = response->Find("points");
  ASSERT_NE(points, nullptr);
  ASSERT_EQ(points->items().size(), 2u);

  FrontierConfig config;
  config.registry.rows = 30;
  config.grid.ks = {2, 5};
  auto direct = RunFrontier(config);
  ASSERT_TRUE(direct.ok());
  for (std::size_t i = 0; i < 2; ++i) {
    const svc::JsonValue& point = points->items()[i];
    EXPECT_EQ(point.GetNumber("k", -1), static_cast<double>(config.grid.ks[i]));
    EXPECT_DOUBLE_EQ(point.GetNumber("worst_leakage", -1),
                     direct->points[i].worst_leakage);
    EXPECT_DOUBLE_EQ(point.GetNumber("prec", -1), direct->points[i].prec);
  }
}

TEST(FrontierWireTest, OversizedGridIsRefused) {
  svc::LeakageService service{RecordStore()};
  auto request = svc::ParseRequest(
      R"({"verb":"frontier","id":1,"rows":2000})");
  ASSERT_TRUE(request.ok());
  std::string wire_code;
  service.Handle(*request, {}, &wire_code);
  EXPECT_EQ(wire_code, "invalid_argument");
  request = svc::ParseRequest(
      R"({"verb":"frontier","id":2,"ks":[2,3,4,5,6,7,8,9,10],)"
      R"("suppress":[0,1,2,3,4,5,6,7,8]})");
  ASSERT_TRUE(request.ok());
  service.Handle(*request, {}, &wire_code);
  EXPECT_EQ(wire_code, "invalid_argument");
}

}  // namespace
}  // namespace infoleak
