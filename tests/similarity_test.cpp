#include "core/similarity.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "core/leakage.h"
#include "core/measures.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

TEST(ExactSimilarityTest, ZeroOne) {
  ExactSimilarity sim;
  EXPECT_EQ(sim.Similarity("A", "x", "x"), 1.0);
  EXPECT_EQ(sim.Similarity("A", "x", "y"), 0.0);
}

TEST(NumericSimilarityTest, LinearDecay) {
  NumericSimilarity sim(10.0);
  EXPECT_NEAR(sim.Similarity("Age", "30", "30"), 1.0, kTol);
  EXPECT_NEAR(sim.Similarity("Age", "31", "30"), 0.9, kTol);
  EXPECT_NEAR(sim.Similarity("Age", "35", "30"), 0.5, kTol);
  EXPECT_NEAR(sim.Similarity("Age", "80", "30"), 0.0, kTol);
  EXPECT_NEAR(sim.Similarity("Age", "25", "30"), 0.5, kTol);  // symmetric
}

TEST(NumericSimilarityTest, NonNumericFallsBackToExact) {
  NumericSimilarity sim(10.0);
  EXPECT_EQ(sim.Similarity("A", "abc", "abc"), 1.0);
  EXPECT_EQ(sim.Similarity("A", "abc", "abd"), 0.0);
  EXPECT_EQ(sim.Similarity("A", "30", "abc"), 0.0);
}

TEST(EditDistanceSimilarityTest, NormalizedByLength) {
  EditDistanceSimilarity sim;
  EXPECT_NEAR(sim.Similarity("N", "Alice", "Alice"), 1.0, kTol);
  EXPECT_NEAR(sim.Similarity("N", "Alicia", "Alice"), 1.0 - 2.0 / 6.0, kTol);
  EXPECT_EQ(sim.Similarity("N", "", ""), 1.0);
  // Completely different strings of equal length score 0.
  EXPECT_NEAR(sim.Similarity("N", "abc", "xyz"), 0.0, kTol);
}

TEST(LabelSimilarityTest, DispatchesByLabel) {
  LabelSimilarity sim;
  sim.Register("Age", std::make_unique<NumericSimilarity>(10.0));
  sim.Register("Name", std::make_unique<EditDistanceSimilarity>());
  EXPECT_NEAR(sim.Similarity("Age", "31", "30"), 0.9, kTol);
  EXPECT_GT(sim.Similarity("Name", "Alicia", "Alice"), 0.5);
  // Unregistered labels use the exact fallback.
  EXPECT_EQ(sim.Similarity("Card", "1234", "1235"), 0.0);
}

TEST(SoftMeasuresTest, ReduceToCrispWithExactSimilarity) {
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}, {"Z", "94305"}};
  Record r{{"N", "Alice"}, {"A", "20"}, {"P", "111"}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());
  ExactSimilarity sim;
  EXPECT_NEAR(SoftPrecision(r, p, wm, sim), Precision(r, p, wm), kTol);
  EXPECT_NEAR(SoftRecall(r, p, wm, sim), Recall(r, p, wm), kTol);
  EXPECT_NEAR(SoftRecordLeakageNoConfidence(r, p, wm, sim),
              RecordLeakageNoConfidence(r, p, wm), kTol);
}

TEST(SoftMeasuresTest, CloserGuessLeaksMore) {
  // The paper's §2.1 example: guessing 31 for age 30 should leak more than
  // guessing 80.
  Record p{{"N", "Alice"}, {"Age", "30"}};
  Record close_guess{{"N", "Alice"}, {"Age", "31"}};
  Record far_guess{{"N", "Alice"}, {"Age", "80"}};
  WeightModel unit;
  LabelSimilarity sim;
  sim.Register("Age", std::make_unique<NumericSimilarity>(20.0));
  double close_leak =
      SoftRecordLeakageNoConfidence(close_guess, p, unit, sim);
  double far_leak = SoftRecordLeakageNoConfidence(far_guess, p, unit, sim);
  double exact_leak = SoftRecordLeakageNoConfidence(p, p, unit, sim);
  EXPECT_GT(close_leak, far_leak);
  EXPECT_GT(exact_leak, close_leak);
  EXPECT_NEAR(exact_leak, 1.0, kTol);
}

TEST(SoftMeasuresTest, DuplicateLabelsTakeBestMatch) {
  Record p{{"Age", "30"}};
  Record r{{"Age", "29"}, {"Age", "50"}};
  WeightModel unit;
  LabelSimilarity sim;
  sim.Register("Age", std::make_unique<NumericSimilarity>(10.0));
  // Recall credit for <Age,30> is the best guess (29 -> 0.9).
  EXPECT_NEAR(SoftRecall(r, p, unit, sim), 0.9, kTol);
  // Precision: 29 scores 0.9, 50 scores 0 -> (0.9 + 0)/2.
  EXPECT_NEAR(SoftPrecision(r, p, unit, sim), 0.45, kTol);
}

TEST(SoftMeasuresTest, EmptyRecordsScoreZero) {
  WeightModel unit;
  ExactSimilarity sim;
  Record p{{"A", "1"}};
  EXPECT_EQ(SoftPrecision(Record{}, p, unit, sim), 0.0);
  EXPECT_EQ(SoftRecall(Record{}, p, unit, sim), 0.0);
  EXPECT_EQ(SoftRecordLeakageNoConfidence(Record{}, p, unit, sim), 0.0);
}

TEST(SoftRecordLeakageTest, MatchesCrispEngineWithExactSimilarity) {
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  WeightModel unit;
  ExactSimilarity sim;
  NaiveLeakage naive;
  auto soft = SoftRecordLeakage(r, p, unit, sim);
  auto crisp = naive.RecordLeakage(r, p, unit);
  ASSERT_TRUE(soft.ok());
  ASSERT_TRUE(crisp.ok());
  EXPECT_NEAR(*soft, *crisp, kTol);
  EXPECT_NEAR(*soft, 13.0 / 20.0, kTol);
}

TEST(SoftRecordLeakageTest, ConfidenceStillApplies) {
  Record p{{"Age", "30"}};
  Record r{{"Age", "31", 0.5}};
  WeightModel unit;
  LabelSimilarity sim;
  sim.Register("Age", std::make_unique<NumericSimilarity>(10.0));
  // World with the guess: soft-F1 = 0.9; empty world 0. L = 0.5·0.9.
  auto l = SoftRecordLeakage(r, p, unit, sim);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 0.45, kTol);
}

TEST(SoftRecordLeakageTest, RefusesHugeRecords) {
  Record p{{"A", "1"}};
  Record r;
  for (int i = 0; i < 30; ++i) {
    r.Insert(Attribute(StrCat("L", std::to_string(i)), "v", 0.5));
  }
  ExactSimilarity sim;
  auto l = SoftRecordLeakage(r, p, WeightModel{}, sim, 25);
  EXPECT_EQ(l.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace infoleak
