#include "core/fbeta_leakage.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

#include <cmath>

#include "util/rng.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-10;

TEST(FBetaLeakageTest, BetaOneMatchesRecordLeakage) {
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}, {"X", "9", 0.3}};
  WeightModel unit;
  FBetaLeakage f1(1.0);
  ExactLeakage exact;
  NaiveLeakage naive;
  EXPECT_NEAR(f1.Exact(r, p, unit).value(),
              exact.RecordLeakage(r, p, unit).value(), kTol);
  EXPECT_NEAR(f1.Naive(r, p, unit).value(),
              naive.RecordLeakage(r, p, unit).value(), kTol);
}

TEST(FBetaLeakageTest, ExactMatchesNaiveForVariousBetas) {
  Rng rng(2026);
  WeightModel unit;
  for (double beta : {0.25, 0.5, 1.0, 2.0, 4.0}) {
    FBetaLeakage fbeta(beta);
    for (int trial = 0; trial < 5; ++trial) {
      Record p;
      Record r;
      std::size_t n = 2 + rng.NextBounded(6);
      for (std::size_t i = 0; i < n; ++i) {
        std::string label = StrCat("L", std::to_string(i));
        p.Insert(Attribute(label, "v"));
        if (rng.Bernoulli(0.7)) {
          std::string value = rng.Bernoulli(0.3) ? "wrong" : "v";
          r.Insert(Attribute(label, value, rng.NextDouble()));
        }
      }
      auto exact = fbeta.Exact(r, p, unit);
      auto naive = fbeta.Naive(r, p, unit);
      ASSERT_TRUE(exact.ok());
      ASSERT_TRUE(naive.ok());
      EXPECT_NEAR(*exact, *naive, kTol) << "beta=" << beta;
    }
  }
}

TEST(FBetaLeakageTest, SmallBetaApproachesPrecision) {
  // As beta -> 0, F_beta -> precision.
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}, {"D", "4"}};
  Record r{{"A", "1", 0.8}, {"X", "9", 0.6}};
  WeightModel unit;
  FBetaLeakage tiny(0.01);
  NaiveLeakage naive;
  auto f = tiny.Naive(r, p, unit);
  auto pr = naive.ExpectedPrecision(r, p, unit);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(pr.ok());
  EXPECT_NEAR(*f, *pr, 1e-3);
}

TEST(FBetaLeakageTest, LargeBetaApproachesRecall) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}, {"D", "4"}};
  Record r{{"A", "1", 0.8}, {"X", "9", 0.6}};
  WeightModel unit;
  FBetaLeakage big(100.0);
  NaiveLeakage naive;
  auto f = big.Naive(r, p, unit);
  auto re = naive.ExpectedRecall(r, p, unit);
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE(re.ok());
  EXPECT_NEAR(*f, *re, 1e-3);
}

TEST(FBetaLeakageTest, RecallHeavyBetaPunishesIncompleteness) {
  // r knows 1 of 4 attributes perfectly: recall-heavy beta scores lower
  // than precision-heavy beta.
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}, {"D", "4"}};
  Record r{{"A", "1", 1.0}};
  WeightModel unit;
  FBetaLeakage recall_heavy(2.0);
  FBetaLeakage precision_heavy(0.5);
  double lr = recall_heavy.Exact(r, p, unit).value();
  double lp = precision_heavy.Exact(r, p, unit).value();
  EXPECT_LT(lr, lp);
}

TEST(FBetaLeakageTest, ApproximationTracksExact) {
  Rng rng(777);
  WeightModel unit;
  for (double beta : {0.5, 1.0, 2.0}) {
    FBetaLeakage fbeta(beta);
    Record p;
    Record r;
    for (std::size_t i = 0; i < 40; ++i) {
      std::string label = StrCat("L", std::to_string(i));
      p.Insert(Attribute(label, "v"));
      if (rng.Bernoulli(0.6)) {
        r.Insert(Attribute(label, rng.Bernoulli(0.3) ? "wrong" : "v",
                           rng.NextDouble() * 0.5));
      }
    }
    auto exact = fbeta.Exact(r, p, unit);
    auto approx = fbeta.Approximate(r, p, unit);
    ASSERT_TRUE(exact.ok());
    ASSERT_TRUE(approx.ok());
    EXPECT_NEAR(*approx, *exact, 0.01) << "beta=" << beta;
  }
}

TEST(FBetaLeakageTest, ExactRejectsNonConstantWeights) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 2.0).ok());
  FBetaLeakage fbeta(2.0);
  EXPECT_TRUE(fbeta.Exact(r, p, wm).status().IsInvalidArgument());
  // The approximation handles them.
  EXPECT_TRUE(fbeta.Approximate(r, p, wm).ok());
}

TEST(FBetaLeakageTest, SetLeakageTakesMax) {
  Record p{{"A", "1"}, {"B", "2"}};
  Database db;
  db.Add(Record{{"A", "1"}});
  db.Add(Record{{"A", "1"}, {"B", "2"}});
  WeightModel unit;
  FBetaLeakage fbeta(2.0);
  auto set = fbeta.SetLeakage(db, p, unit);
  auto best = fbeta.Exact(db[1], p, unit);
  ASSERT_TRUE(set.ok());
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(*set, *best, kTol);
}

TEST(FBetaLeakageTest, InvalidBetaFallsBackToOne) {
  FBetaLeakage nan_beta(std::nan(""));
  EXPECT_DOUBLE_EQ(nan_beta.beta(), 1.0);
  FBetaLeakage negative(-3.0);
  EXPECT_DOUBLE_EQ(negative.beta(), 1.0);
}

}  // namespace
}  // namespace infoleak
