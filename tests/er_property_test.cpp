// Property tests of the entity-resolution engines: on randomized databases
// with shared-value match predicates, all three resolvers must produce the
// same partition, be idempotent, preserve provenance exactly, and never
// lose attributes.

#include <gtest/gtest.h>

#include "util/string_util.h"

#include <algorithm>
#include <set>

#include "er/blocking.h"
#include "er/swoosh.h"
#include "er/transitive.h"
#include "util/rng.h"

namespace infoleak {
namespace {

/// Random database over a small value pool so that records genuinely
/// collide: ~n records with 1-4 attributes over labels {N, P, E}.
Database RandomDatabase(Rng* rng, std::size_t n) {
  Database db;
  const char* labels[] = {"N", "P", "E"};
  for (std::size_t i = 0; i < n; ++i) {
    Record r;
    std::size_t attrs = 1 + rng->NextBounded(4);
    for (std::size_t a = 0; a < attrs; ++a) {
      const char* label = labels[rng->NextBounded(3)];
      std::string value = StrCat("v", std::to_string(rng->NextBounded(6)));
      r.Insert(Attribute(label, value, rng->NextDouble()));
    }
    db.Add(std::move(r));
  }
  return db;
}

std::vector<std::string> Canonical(const Database& db) {
  std::vector<std::string> out;
  for (const auto& r : db) out.push_back(r.ToString());
  std::sort(out.begin(), out.end());
  return out;
}

class ErEngines : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ErEngines, AllEnginesAgreeOnSharedValueMatch) {
  Rng rng(GetParam() * 60013);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  LabelValueBlocking blocking({"N", "P", "E"});
  SwooshResolver swoosh(*match, merge);
  TransitiveClosureResolver transitive(*match, merge);
  BlockedResolver blocked(blocking, *match, merge);
  for (int trial = 0; trial < 5; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(15));
    auto s = swoosh.Resolve(db, nullptr);
    auto t = transitive.Resolve(db, nullptr);
    auto b = blocked.Resolve(db, nullptr);
    ASSERT_TRUE(s.ok());
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(Canonical(*s), Canonical(*t));
    EXPECT_EQ(Canonical(*s), Canonical(*b));
  }
}

TEST_P(ErEngines, ResolutionIsIdempotent) {
  Rng rng(GetParam() * 90001);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  SwooshResolver swoosh(*match, merge);
  for (int trial = 0; trial < 5; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(12));
    auto once = swoosh.Resolve(db, nullptr);
    ASSERT_TRUE(once.ok());
    auto twice = swoosh.Resolve(*once, nullptr);
    ASSERT_TRUE(twice.ok());
    EXPECT_EQ(Canonical(*once), Canonical(*twice));
  }
}

TEST_P(ErEngines, ProvenancePartitionsBaseIds) {
  // After resolution, each base id appears in exactly one output record.
  Rng rng(GetParam() * 123457);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  for (int trial = 0; trial < 5; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(12));
    auto resolved = resolver.Resolve(db, nullptr);
    ASSERT_TRUE(resolved.ok());
    std::multiset<RecordId> seen;
    for (const auto& r : *resolved) {
      for (RecordId id : r.sources()) seen.insert(id);
    }
    EXPECT_EQ(seen.size(), db.size());
    for (RecordId id = 0; id < db.size(); ++id) {
      EXPECT_EQ(seen.count(id), 1u) << "id " << id;
    }
  }
}

TEST_P(ErEngines, NoAttributeIsLost) {
  // Union merge: every (label, value) present before resolution survives.
  Rng rng(GetParam() * 31);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  for (int trial = 0; trial < 5; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(12));
    auto resolved = resolver.Resolve(db, nullptr);
    ASSERT_TRUE(resolved.ok());
    for (const auto& original : db) {
      for (const auto& attr : original) {
        bool found = false;
        for (const auto& r : *resolved) {
          if (r.Contains(attr.label, attr.value)) {
            found = true;
            break;
          }
        }
        EXPECT_TRUE(found) << attr.ToString();
      }
    }
  }
}

TEST_P(ErEngines, MergedConfidenceIsMaxOfSources) {
  Rng rng(GetParam() * 77);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  for (int trial = 0; trial < 3; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(10));
    auto resolved = resolver.Resolve(db, nullptr);
    ASSERT_TRUE(resolved.ok());
    for (const auto& r : *resolved) {
      for (const auto& attr : r) {
        double max_source_conf = 0.0;
        for (RecordId id : r.sources()) {
          max_source_conf = std::max(
              max_source_conf, db[id].Confidence(attr.label, attr.value));
        }
        EXPECT_DOUBLE_EQ(attr.confidence, max_source_conf)
            << attr.ToString();
      }
    }
  }
}

TEST_P(ErEngines, EntityCountNeverIncreases) {
  Rng rng(GetParam() * 271828);
  auto match = RuleMatch::SharedValue({"N", "P", "E"});
  UnionMerge merge;
  TransitiveClosureResolver resolver(*match, merge);
  for (int trial = 0; trial < 5; ++trial) {
    Database db = RandomDatabase(&rng, 3 + rng.NextBounded(12));
    auto resolved = resolver.Resolve(db, nullptr);
    ASSERT_TRUE(resolved.ok());
    EXPECT_LE(resolved->size(), db.size());
    // Adding a record never decreases the entity count by more than...
    // it can decrease by many (a linker can glue several groups), but the
    // count stays >= 1 for non-empty input.
    if (!db.empty()) {
      EXPECT_GE(resolved->size(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErEngines,
                         ::testing::Range(uint64_t{1}, uint64_t{11}));

}  // namespace
}  // namespace infoleak
