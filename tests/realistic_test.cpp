#include "gen/realistic.h"

#include <gtest/gtest.h>

#include <set>

#include "util/string_util.h"

namespace infoleak {
namespace {

TEST(RealisticConfigTest, Validation) {
  RealisticConfig c;
  EXPECT_TRUE(c.Validate().ok());
  c.num_people = 0;
  EXPECT_FALSE(c.Validate().ok());
  c = RealisticConfig{};
  c.typo_prob = 1.5;
  EXPECT_FALSE(c.Validate().ok());
  c = RealisticConfig{};
  c.min_confidence = -0.1;
  EXPECT_FALSE(c.Validate().ok());
}

TEST(InjectTypoTest, ProducesSmallEdits) {
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    std::string typo = InjectTypo("johnson", &rng);
    EXPECT_LE(EditDistance(typo, "johnson"), 2u);  // transpose counts as 2
    EXPECT_GE(typo.size(), 6u);
    EXPECT_LE(typo.size(), 8u);
  }
}

TEST(InjectTypoTest, EmptyAndSingleChar) {
  Rng rng(7);
  EXPECT_EQ(InjectTypo("", &rng), "");
  for (int i = 0; i < 20; ++i) {
    std::string typo = InjectTypo("a", &rng);
    EXPECT_LE(typo.size(), 2u);  // delete is skipped for single chars
  }
}

TEST(RealisticTest, ShapesAndOwnership) {
  RealisticConfig c;
  c.num_people = 8;
  c.records_per_person = 3;
  auto data = GenerateRealistic(c);
  ASSERT_TRUE(data.ok());
  EXPECT_EQ(data->people.size(), 8u);
  EXPECT_EQ(data->records.size(), 24u);
  EXPECT_EQ(data->owner.size(), 24u);
  for (const auto& person : data->people) {
    EXPECT_EQ(person.reference.size(), 5u);  // N, E, P, Z, C
    EXPECT_FALSE(person.full_name.empty());
  }
}

TEST(RealisticTest, NamesAreUnique) {
  RealisticConfig c;
  c.num_people = 50;
  c.records_per_person = 1;
  auto data = GenerateRealistic(c);
  ASSERT_TRUE(data.ok());
  std::set<std::string> names;
  for (const auto& person : data->people) names.insert(person.full_name);
  EXPECT_EQ(names.size(), 50u);
}

TEST(RealisticTest, Deterministic) {
  RealisticConfig c;
  c.num_people = 5;
  c.records_per_person = 4;
  auto d1 = GenerateRealistic(c);
  auto d2 = GenerateRealistic(c);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  for (std::size_t i = 0; i < d1->records.size(); ++i) {
    EXPECT_EQ(d1->records[i], d2->records[i]);
  }
}

TEST(RealisticTest, ObservedValuesComeFromOwner) {
  RealisticConfig c;
  c.num_people = 6;
  c.records_per_person = 4;
  c.typo_prob = 0.0;  // keep values verbatim for this check
  auto data = GenerateRealistic(c);
  ASSERT_TRUE(data.ok());
  for (std::size_t i = 0; i < data->records.size(); ++i) {
    const Record& reference =
        data->people[data->owner[i]].reference;
    for (const auto& a : data->records[i]) {
      EXPECT_TRUE(reference.Contains(a.label, a.value))
          << a.ToString() << " not in owner's reference";
    }
  }
}

TEST(RealisticTest, TypoProbabilityControlsNoise) {
  RealisticConfig clean;
  clean.num_people = 10;
  clean.records_per_person = 5;
  clean.typo_prob = 0.0;
  auto clean_data = GenerateRealistic(clean);
  ASSERT_TRUE(clean_data.ok());
  RealisticConfig noisy = clean;
  noisy.typo_prob = 1.0;
  auto noisy_data = GenerateRealistic(noisy);
  ASSERT_TRUE(noisy_data.ok());

  auto count_exact_names = [](const RealisticDataset& d) {
    std::size_t exact = 0;
    for (std::size_t i = 0; i < d.records.size(); ++i) {
      const Record& reference = d.people[d.owner[i]].reference;
      for (const auto& a : d.records[i]) {
        if (a.label == "N" && reference.Contains("N", a.value)) ++exact;
      }
    }
    return exact;
  };
  EXPECT_GT(count_exact_names(*clean_data), count_exact_names(*noisy_data));
}

TEST(RealisticTest, ConfidencesWithinRange) {
  RealisticConfig c;
  c.num_people = 5;
  c.records_per_person = 3;
  c.min_confidence = 0.6;
  auto data = GenerateRealistic(c);
  ASSERT_TRUE(data.ok());
  for (const auto& r : data->records) {
    for (const auto& a : r) {
      EXPECT_GE(a.confidence, 0.6);
      EXPECT_LE(a.confidence, 1.0);
    }
  }
}

}  // namespace
}  // namespace infoleak
