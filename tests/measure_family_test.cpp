#include "core/measure_family.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "check/case.h"
#include "check/case_gen.h"
#include "check/corpus.h"
#include "check/oracle.h"
#include "core/bounds.h"
#include "core/column_bank.h"
#include "core/leakage.h"
#include "core/record.h"
#include "core/weights.h"

namespace infoleak {
namespace {

using check::CaseGenerator;
using check::CheckCase;
using check::Finding;
using check::LoadCorpus;
using check::Oracle;
using check::OracleOutcome;

#ifndef INFOLEAK_SOURCE_DIR
#define INFOLEAK_SOURCE_DIR "."
#endif

constexpr char kCorpusDir[] = INFOLEAK_SOURCE_DIR "/tests/corpus/selfcheck";

constexpr double kTol = 1e-10;

const LeakageEngine& EngineFor(Measure m) {
  const LeakageEngine* e = MeasureEngineSingleton(m);
  EXPECT_NE(e, nullptr) << MeasureName(m);
  return *e;
}

std::vector<Measure> NonDefaultMeasures() {
  return {Measure::kPml, Measure::kGuesswork, Measure::kUnder, Measure::kOver};
}

// ---------------------------------------------------------------------------
// Vocabulary and singletons
// ---------------------------------------------------------------------------

TEST(MeasureFamilyTest, ParseMeasureRoundTripsEveryName) {
  for (Measure m : {Measure::kExpectedF1, Measure::kPml, Measure::kGuesswork,
                    Measure::kUnder, Measure::kOver}) {
    const auto parsed = ParseMeasure(MeasureName(m));
    ASSERT_TRUE(parsed.ok()) << MeasureName(m);
    EXPECT_EQ(*parsed, m);
  }
}

// The closed-vocabulary rule: an unknown measure is an error naming the
// vocabulary, never a silent fall-back to the default.
TEST(MeasureFamilyTest, ParseMeasureRejectsUnknownNames) {
  for (const char* bad : {"renyi", "PML", "expected_f1", "", "f1", "bounds"}) {
    const auto parsed = ParseMeasure(bad);
    ASSERT_FALSE(parsed.ok()) << bad;
    EXPECT_TRUE(parsed.status().IsInvalidArgument()) << bad;
    EXPECT_NE(parsed.status().message().find("pml"), std::string::npos) << bad;
  }
}

// The serving layer keys per-reference indexes by engine identity, so the
// singleton must hand back the same object on every call.
TEST(MeasureFamilyTest, SingletonIsStablePerMeasure) {
  EXPECT_EQ(MeasureEngineSingleton(Measure::kExpectedF1), nullptr);
  for (Measure m : NonDefaultMeasures()) {
    const LeakageEngine* a = MeasureEngineSingleton(m);
    const LeakageEngine* b = MeasureEngineSingleton(m);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b) << MeasureName(m);
    EXPECT_EQ(a->name(), MeasureName(m));
    EXPECT_TRUE(a->SupportsPrepared()) << MeasureName(m);
    EXPECT_TRUE(a->SupportsColumnar()) << MeasureName(m);
  }
}

// ---------------------------------------------------------------------------
// Hand-computed values
// ---------------------------------------------------------------------------

// r = {A:0.6 matched, B:0.3 matched, C:1.0 unmatched}, p has 3 unit-weight
// attributes. The maximizing world includes A and B and cannot exclude C:
// pml = 2·2 / (2 + 1 + 3) = 2/3. The modal world includes A and C only:
// guesswork = 2·1 / (2 + 3) = 2/5.
TEST(MeasureFamilyTest, ClosedFormsMatchHandMath) {
  const Record r{{"A", "v1", 0.6}, {"B", "v2", 0.3}, {"C", "v3", 1.0}};
  const Record p{{"A", "v1"}, {"B", "v2"}, {"D", "v4"}};
  const WeightModel wm;
  const auto pml = EngineFor(Measure::kPml).RecordLeakage(r, p, wm);
  const auto gw = EngineFor(Measure::kGuesswork).RecordLeakage(r, p, wm);
  ASSERT_TRUE(pml.ok());
  ASSERT_TRUE(gw.ok());
  EXPECT_NEAR(*pml, 2.0 / 3.0, kTol);
  EXPECT_NEAR(*gw, 2.0 / 5.0, kTol);
}

// The 0.5 tie includes: a matched attribute at exactly 0.5 is in the modal
// world (guesswork 1), while an ulp below it is out (guesswork 0). This
// convention is documented in core/measure_family.h and must not drift.
TEST(MeasureFamilyTest, ModalTieAtExactlyHalfIncludes) {
  const Record p{{"A", "v1"}};
  const WeightModel wm;
  const auto& gw = EngineFor(Measure::kGuesswork);
  const auto at_half = gw.RecordLeakage(Record{{"A", "v1", 0.5}}, p, wm);
  const auto below = gw.RecordLeakage(
      Record{{"A", "v1", std::nextafter(0.5, 0.0)}}, p, wm);
  ASSERT_TRUE(at_half.ok());
  ASSERT_TRUE(below.ok());
  EXPECT_EQ(*at_half, 1.0);
  EXPECT_EQ(*below, 0.0);
}

// ---------------------------------------------------------------------------
// Conventions and error contracts (the fbeta-test trio: zero weights,
// non-finite weights, over-cap records)
// ---------------------------------------------------------------------------

// All-zero weights make every denominator 0/0; the repo-wide convention is
// 0, not NaN, on every measure and on both leakage and precision.
TEST(MeasureFamilyTest, ZeroWeightsFollowZeroOverZeroConvention) {
  const Record r{{"A", "v1", 0.8}, {"B", "v2", 0.5}};
  const Record p{{"A", "v1"}, {"B", "v2"}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 0.0).ok());
  ASSERT_TRUE(wm.SetWeight("B", 0.0).ok());
  for (Measure m : NonDefaultMeasures()) {
    const auto v = EngineFor(m).RecordLeakage(r, p, wm);
    ASSERT_TRUE(v.ok()) << MeasureName(m);
    EXPECT_EQ(*v, 0.0) << MeasureName(m);
  }
  for (Measure m : {Measure::kPml, Measure::kGuesswork}) {
    const auto pr = EngineFor(m).ExpectedPrecision(r, p, wm);
    ASSERT_TRUE(pr.ok()) << MeasureName(m);
    EXPECT_EQ(*pr, 0.0) << MeasureName(m);
  }
}

// Weight magnitudes whose sums overflow double range must never smuggle a
// NaN/Inf into a [0, 1] result — the same audit fbeta_leakage_test runs on
// the classic engines. pml, guesswork, and over hit a non-finite total and
// reject with InvalidArgument. The under bound is the one closed form whose
// overflow cancels (each term divides by the infinite weight total), so it
// degrades to the trivially-valid lower bound 0 instead of failing — pinned
// here so the asymmetry is a documented contract, not an accident.
TEST(MeasureFamilyTest, OverflowingWeightsAreRejectedNotNaN) {
  Record r, p;
  for (int i = 0; i < 4; ++i) {
    const std::string v = "v" + std::to_string(i);
    r.Insert(Attribute{"A", v, 0.5});
    p.Insert(Attribute{"A", v, 1.0});
  }
  WeightModel wm(1e308);  // four of these sum past DBL_MAX
  for (Measure m : {Measure::kPml, Measure::kGuesswork, Measure::kOver}) {
    const auto v = EngineFor(m).RecordLeakage(r, p, wm);
    ASSERT_FALSE(v.ok()) << MeasureName(m) << " returned "
                         << (v.ok() ? *v : 0.0);
    EXPECT_TRUE(v.status().IsInvalidArgument())
        << MeasureName(m) << ": " << v.status().ToString();
  }
  const auto under = EngineFor(Measure::kUnder).RecordLeakage(r, p, wm);
  ASSERT_TRUE(under.ok());
  EXPECT_EQ(*under, 0.0);
}

// The measure engines are closed-form and O(|r| + |p|): unlike naive
// enumeration they have no record-size cap, so a 20-attribute record that
// naive refuses must still evaluate — and still obey the family orderings
// against the exact engine (uniform weights).
TEST(MeasureFamilyTest, OverCapRecordsEvaluateOnEveryMeasure) {
  Record r, p;
  CaseGenerator gen(41);
  for (int i = 0; i < 20; ++i) {
    const std::string v = "v" + std::to_string(i);
    const std::string label(1, static_cast<char>('A' + i % 8));
    r.Insert(Attribute{label, v, 0.05 + 0.9 * (i / 19.0)});
    if (i % 2 == 0) p.Insert(Attribute{label, v, 1.0});
  }
  const WeightModel wm;
  ASSERT_FALSE(NaiveLeakage(16).RecordLeakage(r, p, wm).ok());
  const auto truth = ExactLeakage().RecordLeakage(r, p, wm);
  ASSERT_TRUE(truth.ok());
  double vals[4];
  Measure order[] = {Measure::kPml, Measure::kGuesswork, Measure::kUnder,
                     Measure::kOver};
  for (int i = 0; i < 4; ++i) {
    const auto v = EngineFor(order[i]).RecordLeakage(r, p, wm);
    ASSERT_TRUE(v.ok()) << MeasureName(order[i]);
    EXPECT_GE(*v, 0.0);
    EXPECT_LE(*v, 1.0);
    vals[i] = *v;
  }
  EXPECT_LE(*truth, vals[0] + kTol);   // expected ≤ pml
  EXPECT_LE(vals[1], vals[0] + kTol);  // guesswork ≤ pml
  EXPECT_LE(vals[2], *truth + kTol);   // under ≤ expected
  EXPECT_LE(*truth, vals[3] + kTol);   // expected ≤ over
}

// The under/over bounds are derived for F1 only; their precision analogue
// would be a different derivation, so the engines refuse rather than guess.
TEST(MeasureFamilyTest, UnderOverPrecisionIsNotSupported) {
  const Record r{{"A", "v1", 0.5}};
  const Record p{{"A", "v1"}};
  const WeightModel wm;
  for (Measure m : {Measure::kUnder, Measure::kOver}) {
    const auto pr = EngineFor(m).ExpectedPrecision(r, p, wm);
    ASSERT_FALSE(pr.ok()) << MeasureName(m);
    EXPECT_EQ(pr.status().code(), StatusCode::kNotSupported)
        << MeasureName(m) << ": " << pr.status().ToString();
  }
}

// ---------------------------------------------------------------------------
// Cross-path bit-identity and family orderings (generator-driven)
// ---------------------------------------------------------------------------

TEST(MeasureFamilyTest, StringPreparedColumnarBitIdentical) {
  CaseGenerator gen(43);
  for (int i = 0; i < 200; ++i) {
    const CheckCase c = gen.Next();
    const PreparedReference ref(c.p, c.wm);
    PreparedRecord pr(c.r, ref);
    ColumnBank bank(ref);
    bank.Append(c.r);
    const ColumnRecordView view = bank.view(0);
    LeakageWorkspace ws;
    for (Measure m : NonDefaultMeasures()) {
      const LeakageEngine& e = EngineFor(m);
      const auto s = e.RecordLeakage(c.r, c.p, c.wm);
      const auto p2 = e.RecordLeakagePrepared(pr, ref, &ws);
      const auto col = e.RecordLeakageColumnar(view, ref, &ws);
      ASSERT_EQ(s.ok(), p2.ok()) << MeasureName(m) << " " << c.name;
      ASSERT_EQ(s.ok(), col.ok()) << MeasureName(m) << " " << c.name;
      if (s.ok()) {
        EXPECT_EQ(*s, *p2) << MeasureName(m) << " " << c.name;
        EXPECT_EQ(*s, *col) << MeasureName(m) << " " << c.name;
      }
    }
  }
}

TEST(MeasureFamilyTest, FamilyOrderingsHoldOnGeneratedCases) {
  CaseGenerator gen(47);
  NaiveLeakage naive(12);
  int bracketed = 0;
  for (int i = 0; i < 300; ++i) {
    const CheckCase c = gen.Next();
    const auto pml = EngineFor(Measure::kPml).RecordLeakage(c.r, c.p, c.wm);
    const auto gw =
        EngineFor(Measure::kGuesswork).RecordLeakage(c.r, c.p, c.wm);
    const auto under =
        EngineFor(Measure::kUnder).RecordLeakage(c.r, c.p, c.wm);
    const auto over = EngineFor(Measure::kOver).RecordLeakage(c.r, c.p, c.wm);
    if (!pml.ok()) continue;  // degenerate weights fail uniformly
    ASSERT_TRUE(gw.ok()) << c.name;
    ASSERT_TRUE(under.ok()) << c.name;
    ASSERT_TRUE(over.ok()) << c.name;
    EXPECT_LE(*gw, *pml + kTol) << c.name;
    EXPECT_LE(*under, *over) << c.name;  // bitwise by the bounds contract
    if (c.r.size() <= 12) {
      const auto truth = naive.RecordLeakage(c.r, c.p, c.wm);
      if (truth.ok()) {
        EXPECT_LE(*truth, *pml + kTol) << c.name;
        EXPECT_LE(*under, *truth + kTol) << c.name;
        EXPECT_LE(*truth, *over + kTol) << c.name;
        ++bracketed;
      }
    }
  }
  EXPECT_GT(bracketed, 100);
}

// The under/over engines are the closed-form bracket *as engines*: bitwise
// equal to BoundRecordLeakage, not merely close.
TEST(MeasureFamilyTest, UnderOverAreBitwiseTheBounds) {
  CaseGenerator gen(53);
  for (int i = 0; i < 200; ++i) {
    const CheckCase c = gen.Next();
    const LeakageBounds b = BoundRecordLeakage(c.r, c.p, c.wm);
    const auto under =
        EngineFor(Measure::kUnder).RecordLeakage(c.r, c.p, c.wm);
    const auto over = EngineFor(Measure::kOver).RecordLeakage(c.r, c.p, c.wm);
    ASSERT_EQ(under.ok(), over.ok()) << c.name;
    if (!under.ok()) continue;  // non-finite bracket: rejected as a value
    EXPECT_EQ(*under, b.lower) << c.name;
    EXPECT_EQ(*over, b.upper) << c.name;
  }
}

// ---------------------------------------------------------------------------
// Perturbation sensitivity: each measure owes at least one oracle property
// that fails when its implementation is wrong. A wrapper engine shifts the
// leakage value by a small constant — consistently across all three paths,
// so the cross-path property stays green and only the semantic properties
// can catch it — and the oracle must report a finding.
// ---------------------------------------------------------------------------

class PerturbedEngine : public LeakageEngine {
 public:
  PerturbedEngine(const LeakageEngine* base, double delta)
      : base_(base), delta_(delta) {}

  std::string_view name() const override { return base_->name(); }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override {
    return Shift(base_->RecordLeakage(r, p, wm));
  }
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override {
    return base_->ExpectedPrecision(r, p, wm);
  }
  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override {
    return Shift(base_->RecordLeakagePrepared(r, p, ws));
  }
  Result<double> ExpectedPrecisionPrepared(
      const PreparedRecord& r, const PreparedReference& p,
      LeakageWorkspace* ws) const override {
    return base_->ExpectedPrecisionPrepared(r, p, ws);
  }
  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override {
    return Shift(base_->RecordLeakageColumnar(r, p, ws));
  }
  Result<double> ExpectedPrecisionColumnar(
      const ColumnRecordView& r, const PreparedReference& p,
      LeakageWorkspace* ws) const override {
    return base_->ExpectedPrecisionColumnar(r, p, ws);
  }

 private:
  Result<double> Shift(Result<double> v) const {
    if (!v.ok()) return v;
    return std::min(1.0, std::max(0.0, *v + delta_));
  }
  const LeakageEngine* base_;
  double delta_;
};

CheckCase SensitivityCase() {
  CheckCase c;
  c.r = Record{{"A", "v1", 0.6}, {"B", "v2", 0.3}, {"C", "v3", 1.0}};
  c.p = Record{{"A", "v1"}, {"B", "v2"}, {"D", "v4"}};
  c.name = "measure-sensitivity";
  return c;
}

bool HasKind(const OracleOutcome& out, const std::string& kind) {
  for (const Finding& f : out.findings) {
    if (f.kind == kind) return true;
  }
  return false;
}

// Baseline sanity: the sensitivity case itself is clean with the real
// engines, so any finding below is attributable to the perturbation.
TEST(MeasureSensitivityTest, UnperturbedEnginesAreClean) {
  Oracle oracle;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), Oracle::MeasureEngines{}, &out);
  for (const Finding& f : out.findings) {
    ADD_FAILURE() << f.kind << ": " << f.detail;
  }
  EXPECT_GT(out.comparisons, 0u);
}

TEST(MeasureSensitivityTest, PerturbedPmlFailsMeasureTruth) {
  Oracle oracle;
  const PerturbedEngine bad(MeasureEngineSingleton(Measure::kPml), 0.03);
  Oracle::MeasureEngines engines;
  engines.pml = &bad;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), engines, &out);
  EXPECT_TRUE(HasKind(out, "measure-truth"));
}

TEST(MeasureSensitivityTest, PerturbedGuessworkFailsMeasureTruth) {
  Oracle oracle;
  const PerturbedEngine bad(MeasureEngineSingleton(Measure::kGuesswork), 0.03);
  Oracle::MeasureEngines engines;
  engines.guesswork = &bad;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), engines, &out);
  EXPECT_TRUE(HasKind(out, "measure-truth"));
}

// An inflated guesswork can also cross above pml; the ordering property is
// a second, independent tripwire for the same implementation error.
TEST(MeasureSensitivityTest, InflatedGuessworkFailsMeasureOrder) {
  Oracle oracle;
  const PerturbedEngine bad(MeasureEngineSingleton(Measure::kGuesswork), 0.5);
  Oracle::MeasureEngines engines;
  engines.guesswork = &bad;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), engines, &out);
  EXPECT_TRUE(HasKind(out, "measure-order"));
}

TEST(MeasureSensitivityTest, PerturbedUnderFailsMeasureVsBounds) {
  Oracle oracle;
  const PerturbedEngine bad(MeasureEngineSingleton(Measure::kUnder), 0.03);
  Oracle::MeasureEngines engines;
  engines.under = &bad;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), engines, &out);
  EXPECT_TRUE(HasKind(out, "measure-vs-bounds"));
}

TEST(MeasureSensitivityTest, PerturbedOverFailsMeasureVsBounds) {
  Oracle oracle;
  const PerturbedEngine bad(MeasureEngineSingleton(Measure::kOver), -0.03);
  Oracle::MeasureEngines engines;
  engines.over = &bad;
  OracleOutcome out;
  oracle.EvaluateMeasures(SensitivityCase(), engines, &out);
  EXPECT_TRUE(HasKind(out, "measure-vs-bounds"));
}

// The pinned corpus entries (tests/corpus/selfcheck/measure-*.case) must
// themselves be sensitive: replay each through every single-measure
// perturbation and require at least one finding per measure. This is the
// regression form of the sensitivity proof — if a future refactor weakens
// a property until a wrong engine slips through, these cases catch it.
TEST(MeasureSensitivityTest, PinnedCorpusCasesCatchEveryPerturbedMeasure) {
  auto corpus = LoadCorpus(kCorpusDir);
  ASSERT_TRUE(corpus.ok()) << corpus.status().message();
  std::vector<CheckCase> cases;
  for (const CheckCase& c : *corpus) {
    if (c.name.find("measure-") != std::string::npos) cases.push_back(c);
  }
  ASSERT_GE(cases.size(), 2u) << "measure corpus entries missing from "
                              << kCorpusDir;
  Oracle oracle;
  for (Measure m : NonDefaultMeasures()) {
    const PerturbedEngine bad(MeasureEngineSingleton(m), 0.03);
    Oracle::MeasureEngines engines;
    switch (m) {
      case Measure::kPml: engines.pml = &bad; break;
      case Measure::kGuesswork: engines.guesswork = &bad; break;
      case Measure::kUnder: engines.under = &bad; break;
      case Measure::kOver: engines.over = &bad; break;
      case Measure::kExpectedF1: break;
    }
    if (m == Measure::kOver) {
      // +delta keeps an upper bound valid; an over engine goes wrong by
      // under-reporting, so perturb downward instead.
      const PerturbedEngine low(MeasureEngineSingleton(m), -0.03);
      OracleOutcome out;
      for (const CheckCase& c : cases) {
        Oracle::MeasureEngines e2;
        e2.over = &low;
        oracle.EvaluateMeasures(c, e2, &out);
      }
      EXPECT_FALSE(out.findings.empty()) << MeasureName(m);
      continue;
    }
    OracleOutcome out;
    for (const CheckCase& c : cases) {
      oracle.EvaluateMeasures(c, engines, &out);
    }
    EXPECT_FALSE(out.findings.empty()) << MeasureName(m);
  }
}

}  // namespace
}  // namespace infoleak
