#include "core/leakage.h"

#include <gtest/gtest.h>

#include "util/string_util.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

// ---------------------------------------------------------------------------
// Paper worked examples
// ---------------------------------------------------------------------------

TEST(RecordLeakageTest, PaperSection23Example) {
  // §2.3: p = {<N,Alice>, <A,20>, <P,123>}, r = {<N,Alice,0.5>, <A,20,1>}
  // -> L(r, p) = 1/2·L0({A}) + 1/2·L0({N,A}) = 1/2·1/2 + 1/2·4/5 = 13/20.
  // (The paper states wN = 2 for this example but its own arithmetic uses
  // unit weights; we reproduce the published 13/20 with unit weights and
  // check the properly weighted value separately below.)
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  auto ln = naive.RecordLeakage(r, p, unit);
  auto le = exact.RecordLeakage(r, p, unit);
  ASSERT_TRUE(ln.ok());
  ASSERT_TRUE(le.ok());
  EXPECT_NEAR(*ln, 13.0 / 20.0, kTol);
  EXPECT_NEAR(*le, 13.0 / 20.0, kTol);
}

TEST(RecordLeakageTest, Section23ExampleWithStatedWeights) {
  // The same records evaluated with the weights the paper *states*
  // (wN = 2): worlds {A} -> F1(1, 1/4) = 2/5 and {N,A} -> F1(1, 3/4) = 6/7,
  // giving L = 1/2·2/5 + 1/2·6/7 = 22/35.
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}};
  Record r{{"N", "Alice", 0.5}, {"A", "20", 1.0}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());
  NaiveLeakage naive;
  auto l = naive.RecordLeakage(r, p, wm);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 22.0 / 35.0, kTol);
}

TEST(SetLeakageTest, PaperSection24BeforeEr) {
  // §2.4: L0(R, p) = max{2/3, 2/3, 0} = 2/3 before entity resolution.
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});
  WeightModel unit;
  ExactLeakage exact;
  std::ptrdiff_t argmax = -1;
  auto l = SetLeakageArgMax(db, p, unit, exact, &argmax);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 2.0 / 3.0, kTol);
  EXPECT_EQ(argmax, 0);  // first of the two tied Alice records
}

TEST(SetLeakageTest, PaperSection24AfterMerge) {
  // After merging r and s: L(r+s, p) = 2·3/(3+4) = 6/7.
  Record p{{"N", "Alice"}, {"P", "123"}, {"C", "999"}, {"Z", "111"}};
  Record merged{{"N", "Alice"}, {"P", "123"}, {"C", "999"}};
  WeightModel unit;
  ExactLeakage exact;
  auto l = exact.RecordLeakage(merged, p, unit);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 6.0 / 7.0, kTol);
}

// ---------------------------------------------------------------------------
// Engine agreement on hand-picked cases
// ---------------------------------------------------------------------------

TEST(RecordLeakageTest, AllCertainReducesToL0) {
  Record p{{"N", "Alice"}, {"A", "20"}, {"P", "123"}, {"Z", "94305"}};
  Record r{{"N", "Alice"}, {"A", "20"}, {"P", "111"}};  // confidences all 1
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  double expected = RecordLeakageNoConfidence(r, p, unit);
  EXPECT_NEAR(naive.RecordLeakage(r, p, unit).value(), expected, kTol);
  EXPECT_NEAR(exact.RecordLeakage(r, p, unit).value(), expected, kTol);
}

TEST(RecordLeakageTest, EmptyAdversaryRecordLeaksNothing) {
  Record p{{"N", "Alice"}};
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage approx;
  for (const LeakageEngine* e :
       std::initializer_list<const LeakageEngine*>{&naive, &exact, &approx}) {
    auto l = e->RecordLeakage(Record{}, p, unit);
    ASSERT_TRUE(l.ok());
    EXPECT_NEAR(*l, 0.0, kTol);
  }
}

TEST(RecordLeakageTest, EmptyReferenceLeaksNothing) {
  Record r{{"N", "Alice", 0.5}};
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  EXPECT_NEAR(naive.RecordLeakage(r, Record{}, unit).value(), 0.0, kTol);
  EXPECT_NEAR(exact.RecordLeakage(r, Record{}, unit).value(), 0.0, kTol);
}

TEST(RecordLeakageTest, ZeroConfidenceEqualsAbsent) {
  Record p{{"N", "Alice"}, {"A", "20"}};
  Record with_zero{{"N", "Alice", 0.0}, {"A", "20", 0.8}};
  Record without{{"A", "20", 0.8}};
  WeightModel unit;
  ExactLeakage exact;
  // A zero-confidence attribute contributes no overlap term, but it does
  // still influence the precision denominator distribution... with c=0 the
  // attribute never appears in a world, so the two must agree exactly.
  EXPECT_NEAR(exact.RecordLeakage(with_zero, p, unit).value(),
              exact.RecordLeakage(without, p, unit).value(), kTol);
}

TEST(RecordLeakageTest, PerfectCertainMatchLeaksEverything) {
  Record p{{"N", "Alice"}, {"A", "20"}};
  Record r = p;
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  ApproxLeakage approx;
  EXPECT_NEAR(naive.RecordLeakage(r, p, unit).value(), 1.0, kTol);
  EXPECT_NEAR(exact.RecordLeakage(r, p, unit).value(), 1.0, kTol);
  // The Taylor approximation is exact here (Var[Y] = 0).
  EXPECT_NEAR(approx.RecordLeakage(r, p, unit).value(), 1.0, kTol);
}

TEST(RecordLeakageTest, SingleUncertainAttribute) {
  // One matching attribute with confidence c: L = c·F1(1, 1/|p|)... with
  // |p| = 2: world {a} has L0 = 2·1/(1+2) = 2/3, so L = c·2/3.
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.25}};
  WeightModel unit;
  ExactLeakage exact;
  NaiveLeakage naive;
  EXPECT_NEAR(exact.RecordLeakage(r, p, unit).value(), 0.25 * 2.0 / 3.0,
              kTol);
  EXPECT_NEAR(naive.RecordLeakage(r, p, unit).value(), 0.25 * 2.0 / 3.0,
              kTol);
}

TEST(RecordLeakageTest, ExactRejectsNonConstantWeights) {
  Record p{{"N", "Alice"}, {"A", "20"}};
  Record r{{"N", "Alice", 0.5}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());  // A keeps the default 1.0
  ExactLeakage exact;
  auto l = exact.RecordLeakage(r, p, wm);
  EXPECT_FALSE(l.ok());
  EXPECT_TRUE(l.status().IsInvalidArgument());
}

TEST(RecordLeakageTest, ExactAcceptsSingleLabelWithAnyWeight) {
  // With one occurring label the weight cancels, so Algorithm 1 applies
  // even though that label's weight differs from the default.
  Record p{{"N", "Alice"}};
  Record r{{"N", "Alice", 0.5}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("N", 2.0).ok());
  ExactLeakage exact;
  auto l = exact.RecordLeakage(r, p, wm);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 0.5, kTol);  // single world {N} w.p. 0.5, F1 = 1
}

TEST(RecordLeakageTest, NaiveRefusesHugeRecords) {
  Record p{{"A", "1"}};
  Record r;
  for (int i = 0; i < 30; ++i) {
    r.Insert(Attribute(StrCat("L", std::to_string(i)), "v", 0.5));
  }
  NaiveLeakage naive(25);
  auto l = naive.RecordLeakage(r, p, WeightModel{});
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kResourceExhausted);
}

// ---------------------------------------------------------------------------
// Expected precision / recall
// ---------------------------------------------------------------------------

TEST(ExpectedRecallTest, LinearInConfidence) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}, {"B", "2", 0.25}};
  WeightModel unit;
  NaiveLeakage naive;
  // E[Re] = (0.5 + 0.25)/2.
  EXPECT_NEAR(naive.ExpectedRecall(r, p, unit).value(), 0.375, kTol);
  ExactLeakage exact;
  EXPECT_NEAR(exact.ExpectedRecall(r, p, unit).value(), 0.375, kTol);
}

TEST(ExpectedRecallTest, WeightedRecall) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 1.0}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 3.0).ok());
  NaiveLeakage naive;
  // E[Re] = 3/(3+1).
  EXPECT_NEAR(naive.ExpectedRecall(r, p, wm).value(), 0.75, kTol);
}

TEST(ExpectedPrecisionTest, NaiveAndExactAgree) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  Record r{{"A", "1", 0.5}, {"B", "9", 0.7}, {"C", "3", 0.3},
           {"D", "4", 0.6}};
  WeightModel unit;
  NaiveLeakage naive;
  ExactLeakage exact;
  auto n = naive.ExpectedPrecision(r, p, unit);
  auto e = exact.ExpectedPrecision(r, p, unit);
  ASSERT_TRUE(n.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(*n, *e, 1e-10);
}

TEST(ExpectedPrecisionTest, CertainExactMatchIsOne) {
  Record p{{"A", "1"}};
  Record r{{"A", "1", 1.0}};
  WeightModel unit;
  ExactLeakage exact;
  EXPECT_NEAR(exact.ExpectedPrecision(r, p, unit).value(), 1.0, kTol);
}

// ---------------------------------------------------------------------------
// Set leakage
// ---------------------------------------------------------------------------

TEST(SetLeakageTest, EmptyDatabaseIsZero) {
  WeightModel unit;
  ExactLeakage exact;
  std::ptrdiff_t argmax = 123;
  auto l = SetLeakageArgMax(Database{}, Record{{"A", "1"}}, unit, exact,
                            &argmax);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(*l, 0.0);
  EXPECT_EQ(argmax, -1);
}

TEST(SetLeakageTest, TakesMaximumOverRecords) {
  Record p{{"A", "1"}, {"B", "2"}, {"C", "3"}};
  Database db;
  db.Add(Record{{"A", "1"}});                 // L0 = 2/4
  db.Add(Record{{"A", "1"}, {"B", "2"}});     // L0 = 4/5 <- max
  db.Add(Record{{"X", "9"}});                 // 0
  WeightModel unit;
  ExactLeakage exact;
  std::ptrdiff_t argmax = -1;
  auto l = SetLeakageArgMax(db, p, unit, exact, &argmax);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 4.0 / 5.0, kTol);
  EXPECT_EQ(argmax, 1);
}

// ---------------------------------------------------------------------------
// AutoLeakage dispatch
// ---------------------------------------------------------------------------

TEST(AutoLeakageTest, MatchesExactOnConstantWeights) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}, {"C", "9", 0.4}};
  WeightModel unit;
  AutoLeakage engine;
  ExactLeakage exact;
  EXPECT_NEAR(engine.RecordLeakage(r, p, unit).value(),
              exact.RecordLeakage(r, p, unit).value(), kTol);
}

TEST(AutoLeakageTest, UsesNaiveForSmallWeightedRecords) {
  Record p{{"A", "1"}, {"B", "2"}};
  Record r{{"A", "1", 0.5}, {"B", "2", 0.7}};
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("A", 3.0).ok());
  AutoLeakage engine;
  NaiveLeakage naive;
  EXPECT_NEAR(engine.RecordLeakage(r, p, wm).value(),
              naive.RecordLeakage(r, p, wm).value(), kTol);
}

TEST(AutoLeakageTest, FallsBackToApproxForLargeWeightedRecords) {
  Record p;
  Record r;
  for (int i = 0; i < 40; ++i) {
    std::string label = StrCat("L", std::to_string(i));
    p.Insert(Attribute(label, "v"));
    r.Insert(Attribute(label, "v", 0.5));
  }
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("L0", 2.0).ok());
  AutoLeakage engine;  // naive cutoff 16 < 40 attributes
  ApproxLeakage approx;
  auto a = engine.RecordLeakage(r, p, wm);
  auto b = approx.RecordLeakage(r, p, wm);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(*a, *b, kTol);
}

TEST(SetLeakageParallelTest, MatchesSerialExactly) {
  Record p;
  for (int i = 0; i < 20; ++i) {
    p.Insert(Attribute(StrCat("L", std::to_string(i)), "v"));
  }
  Database db;
  for (int k = 0; k < 200; ++k) {
    Record r;
    for (int i = 0; i < 20; ++i) {
      if ((k + i) % 3 == 0) {
        r.Insert(Attribute(StrCat("L", std::to_string(i)),
                           (k + i) % 5 == 0 ? "wrong" : "v",
                           0.1 + 0.04 * (i % 20)));
      }
    }
    db.Add(std::move(r));
  }
  WeightModel unit;
  ExactLeakage engine;
  auto serial = SetLeakage(db, p, unit, engine);
  ASSERT_TRUE(serial.ok());
  for (std::size_t threads : {1u, 2u, 3u, 8u, 64u, 0u}) {
    auto parallel = SetLeakageParallel(db, p, unit, engine, threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_DOUBLE_EQ(*serial, *parallel) << threads << " threads";
  }
}

TEST(SetLeakageParallelTest, EmptyDatabase) {
  WeightModel unit;
  ExactLeakage engine;
  auto l = SetLeakageParallel(Database{}, Record{{"A", "1"}}, unit, engine, 4);
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(*l, 0.0);
}

TEST(SetLeakageParallelTest, PropagatesEngineErrors) {
  Database db;
  Record huge;
  for (int i = 0; i < 29; ++i) {
    huge.Insert(Attribute(StrCat("L", std::to_string(i)), "v", 0.5));
  }
  db.Add(huge);
  db.Add(Record{{"A", "1"}});
  WeightModel wm;
  ASSERT_TRUE(wm.SetWeight("L0", 2.0).ok());  // forces naive in AutoLeakage?
  NaiveLeakage naive(25);
  auto l = SetLeakageParallel(db, Record{{"A", "1"}}, wm, naive, 2);
  EXPECT_FALSE(l.ok());
  EXPECT_EQ(l.status().code(), StatusCode::kResourceExhausted);
}

TEST(AutoLeakageTest, FactoryReturnsWorkingEngine) {
  auto engine = MakeDefaultEngine();
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->name(), "auto");
  Record p{{"A", "1"}};
  auto l = engine->RecordLeakage(p, p, WeightModel{});
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 1.0, kTol);
}

}  // namespace
}  // namespace infoleak
