#include "util/file.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace infoleak {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

TEST(FileTest, WriteThenReadRoundTrip) {
  std::string path = TempPath("infoleak_file_test.txt");
  ASSERT_TRUE(WriteStringToFile(path, "hello\nworld\n").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "hello\nworld\n");
  std::remove(path.c_str());
}

TEST(FileTest, EmptyFile) {
  std::string path = TempPath("infoleak_empty_test.txt");
  ASSERT_TRUE(WriteStringToFile(path, "").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE(read->empty());
  std::remove(path.c_str());
}

TEST(FileTest, BinaryContentsSurvive) {
  std::string path = TempPath("infoleak_binary_test.bin");
  // 14 bytes: the 4 binary bytes plus " then text" (the literal holds no
  // more — a larger count would read past it).
  std::string data("\x00\x01\xff\x7f then text", 14);
  ASSERT_TRUE(WriteStringToFile(path, data).ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, data);
  std::remove(path.c_str());
}

TEST(FileTest, MissingFileIsNotFound) {
  auto read = ReadFileToString("/nonexistent/infoleak/nope.txt");
  EXPECT_TRUE(read.status().IsNotFound());
}

TEST(FileTest, OverwriteReplacesContents) {
  std::string path = TempPath("infoleak_overwrite_test.txt");
  ASSERT_TRUE(WriteStringToFile(path, "long original contents").ok());
  ASSERT_TRUE(WriteStringToFile(path, "short").ok());
  auto read = ReadFileToString(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, "short");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace infoleak
