// §4.1: incremental leakage of releasing critical information — the
// credit-card choice scenario, with the paper's exact fractions.

#include "apps/incremental.h"

#include <gtest/gtest.h>

#include "apps/release_advisor.h"
#include "er/swoosh.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// The §4.1 setup: reference p, store database {s, t}, candidate releases
/// u (card c1) and v (card c2), match on (name ∧ card) ∨ (name ∧ phone).
class Section41Fixture : public ::testing::Test {
 protected:
  Section41Fixture()
      : p_{{"N", "n1"}, {"C", "c1"}, {"C", "c2"}, {"P", "p1"}, {"A", "a1"}},
        u_{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}},
        v_{{"N", "n1"}, {"C", "c2"}, {"P", "p1"}},
        match_(MatchRules{{"N", "C"}, {"N", "P"}}),
        resolver_(match_, merge_),
        er_(resolver_) {
    db_.Add(Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}});  // s
    db_.Add(Record{{"N", "n1"}, {"C", "c2"}});               // t
  }

  Record p_;
  Record u_;
  Record v_;
  Database db_;
  RuleMatch match_;
  UnionMerge merge_;
  SwooshResolver resolver_;
  ErOperator er_;
  WeightModel unit_;
  ExactLeakage engine_;
};

TEST_F(Section41Fixture, BaselineLeakageIsThreeQuarters) {
  // s and t do not match each other (same name, different cards, t has no
  // phone), so L(R, p, E) = max{3/4, 4/7} = 3/4.
  auto l = InformationLeakage(db_, p_, er_, unit_, engine_);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR(*l, 3.0 / 4.0, kTol);
}

TEST_F(Section41Fixture, ReleasingUCostsNothing) {
  // u merges only with the identical s: incremental leakage 0.
  auto inc = IncrementalLeakage(db_, p_, er_, u_, unit_, engine_);
  ASSERT_TRUE(inc.ok());
  EXPECT_NEAR(*inc, 0.0, kTol);
}

TEST_F(Section41Fixture, ReleasingVCostsFiveThirtySixths) {
  // v bridges s and t: s+t+v has 4 of p's 5 attributes -> 8/9; the
  // incremental leakage is 8/9 − 3/4 = 5/36.
  auto report = IncrementalLeakageReport(db_, p_, er_, v_, unit_, engine_);
  ASSERT_TRUE(report.ok());
  EXPECT_NEAR(report->before, 3.0 / 4.0, kTol);
  EXPECT_NEAR(report->after, 8.0 / 9.0, kTol);
  EXPECT_NEAR(report->incremental, 5.0 / 36.0, kTol);
}

TEST_F(Section41Fixture, AdvisorPrefersCardC1) {
  std::vector<ReleaseOption> options{{"pay-with-c1", u_},
                                     {"pay-with-c2", v_}};
  auto best = BestRelease(db_, p_, er_, options, unit_, engine_);
  ASSERT_TRUE(best.ok());
  EXPECT_EQ(best->name, "pay-with-c1");
  EXPECT_NEAR(best->incremental, 0.0, kTol);

  auto all = AssessReleases(db_, p_, er_, options, unit_, engine_);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[1].name, "pay-with-c2");
  EXPECT_NEAR((*all)[1].incremental, 5.0 / 36.0, kTol);
}

TEST_F(Section41Fixture, AdvisorRejectsEmptyOptions) {
  auto best = BestRelease(db_, p_, er_, {}, unit_, engine_);
  EXPECT_TRUE(best.status().IsInvalidArgument());
}

TEST(IncrementalTest, IncrementalLeakageCanBeLargeForSmallRecords) {
  // "r may make it possible for Eve to piece together big chunks... the
  // incremental leakage may be large even if r contains relatively little
  // data": a two-attribute linker connects two big fragments.
  Record p{{"N", "n"}, {"A", "a"}, {"B", "b"}, {"C", "c"}, {"D", "d"},
           {"E", "e"}};
  Database db;
  db.Add(Record{{"N", "n"}, {"A", "a"}, {"B", "b"}});
  db.Add(Record{{"X", "x"}, {"C", "c"}, {"D", "d"}, {"E", "e"}});
  RuleMatch match(MatchRules{{"N"}, {"X"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator er(resolver);
  WeightModel unit;
  ExactLeakage engine;
  Record linker{{"N", "n"}, {"X", "x"}};  // 2 attributes, 1 correct
  auto inc = IncrementalLeakage(db, p, er, linker, unit, engine);
  ASSERT_TRUE(inc.ok());
  // Before: max(2·3/(3+6), 2·3/(4+6)) = 2/3. After: everything merges into
  // a 7-attribute composite with 6 correct -> 2·6/(7+6) = 12/13.
  EXPECT_NEAR(*inc, 12.0 / 13.0 - 2.0 / 3.0, kTol);
}

TEST(IncrementalTest, DisinformationHasNegativeIncrementalLeakage) {
  Record p{{"N", "n"}, {"A", "a"}};
  Database db;
  db.Add(Record{{"N", "n"}, {"A", "a"}});  // fully leaked: L = 1
  RuleMatch match(MatchRules{{"N"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator er(resolver);
  WeightModel unit;
  ExactLeakage engine;
  // A bogus record that merges in pollutes the composite.
  Record bogus{{"N", "n"}, {"Z", "junk1"}, {"Y", "junk2"}};
  auto inc = IncrementalLeakage(db, p, er, bogus, unit, engine);
  ASSERT_TRUE(inc.ok());
  EXPECT_LT(*inc, 0.0);
}

}  // namespace
}  // namespace infoleak
