#include "er/dipping.h"

#include <gtest/gtest.h>

#include "er/swoosh.h"
#include "er/transitive.h"

namespace infoleak {
namespace {

TEST(DippingTest, PaperSection24Example) {
  // R = {r, s, t}, E merges same-name records, q = {<N, Alice>}:
  // D(R, E, q) = r + s + q = {<N,Alice>, <C,999>, <P,123>}.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  db.Add(Record{{"N", "Alice"}, {"C", "999"}});
  db.Add(Record{{"N", "Bob"}, {"P", "987"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver er(*match, merge);
  Record q{{"N", "Alice"}};
  auto dipped = DippingResult(db, er, q);
  ASSERT_TRUE(dipped.ok());
  EXPECT_EQ(dipped->size(), 3u);
  EXPECT_TRUE(dipped->Contains("N", "Alice"));
  EXPECT_TRUE(dipped->Contains("P", "123"));
  EXPECT_TRUE(dipped->Contains("C", "999"));
}

TEST(DippingTest, QueryMatchingNothingComesBackAlone) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  TransitiveClosureResolver er(*match, merge);
  Record q{{"N", "Zed"}, {"P", "42"}};
  auto dipped = DippingResult(db, er, q);
  ASSERT_TRUE(dipped.ok());
  EXPECT_EQ(dipped->size(), 2u);
  EXPECT_TRUE(dipped->Contains("N", "Zed"));
}

TEST(DippingTest, DoesNotMutateInputDatabase) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver er(*match, merge);
  Record q{{"N", "Alice"}, {"C", "999"}};
  auto dipped = DippingResult(db, er, q);
  ASSERT_TRUE(dipped.ok());
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db[0].size(), 1u);
}

TEST(DippingTest, QueryWithStaleProvenanceIsCleaned) {
  // A caller may pass a record that already carries source ids (e.g. taken
  // from another database); dipping must still locate the right composite.
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver er(*match, merge);
  Record q{{"N", "Alice"}};
  q.AddSource(0);  // stale id colliding with db's first record
  auto dipped = DippingResult(db, er, q);
  ASSERT_TRUE(dipped.ok());
  EXPECT_TRUE(dipped->Contains("P", "123"));
}

TEST(DippingTest, StatsAreReported) {
  Database db;
  db.Add(Record{{"N", "Alice"}});
  db.Add(Record{{"N", "Bob"}});
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  TransitiveClosureResolver er(*match, merge);
  ErStats stats;
  Record q{{"N", "Alice"}};
  auto dipped = DippingResult(db, er, q, &stats);
  ASSERT_TRUE(dipped.ok());
  EXPECT_EQ(stats.match_calls, 3u);  // C(3,2) over R ∪ {q}
  EXPECT_EQ(stats.merge_calls, 1u);
}

}  // namespace
}  // namespace infoleak
