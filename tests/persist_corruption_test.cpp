#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "persist/durable_store.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/file.h"

namespace infoleak::persist {
namespace {

namespace fs = std::filesystem;

/// The damage model: recovery must survive ANY prefix of the log (a crash
/// can stop a write at any byte) and ANY single flipped byte (a torn or
/// bit-rotted sector), never crash, and never lose a frame that precedes
/// the damage point.

std::string TempDir(const std::string& name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

struct CleanWal {
  std::string bytes;                   ///< the intact log
  std::vector<uint64_t> frame_ends;    ///< byte offset after each frame
};

/// Builds a small WAL of `n` frames and returns its bytes plus the frame
/// boundaries, recovered from the little-endian length prefixes
/// (u32 len | u32 crc | payload).
CleanWal BuildWal(const std::string& dir, int n) {
  const std::string path = dir + "/wal.log";
  {
    auto wal = WalWriter::Open(path, FsyncMode::kNever);
    EXPECT_TRUE(wal.ok());
    for (int i = 0; i < n; ++i) {
      EXPECT_TRUE(
          wal->Append(Record{{"name", "person-" + std::to_string(i), 0.5},
                             {"seq", std::to_string(i), 1.0}})
              .ok());
    }
  }
  CleanWal out;
  auto bytes = ReadFileToString(path);
  EXPECT_TRUE(bytes.ok());
  out.bytes = std::move(bytes).value();
  uint64_t offset = 0;
  while (offset + 8 <= out.bytes.size()) {
    uint32_t len = 0;
    for (int b = 3; b >= 0; --b) {
      len = (len << 8) | static_cast<unsigned char>(
                             out.bytes[offset + static_cast<std::size_t>(b)]);
    }
    offset += 8 + len;
    out.frame_ends.push_back(offset);
  }
  EXPECT_EQ(offset, out.bytes.size());
  return out;
}

/// Frames wholly contained in the first `prefix_len` bytes.
std::size_t FramesBefore(const CleanWal& wal, std::size_t prefix_len) {
  std::size_t n = 0;
  for (uint64_t end : wal.frame_ends) {
    if (end <= prefix_len) ++n;
  }
  return n;
}

std::size_t CountReplayed(const std::string& path, bool* damaged = nullptr) {
  std::size_t frames = 0;
  auto result = ReplayWal(
      path, 0,
      [&](Record) {
        ++frames;
        return Status::OK();
      },
      /*truncate_damage=*/true);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  if (damaged != nullptr) *damaged = !result->damage.ok();
  return frames;
}

TEST(WalCorruptionSweepTest, EveryTruncationPointRecoversThePrefix) {
  const std::string dir = TempDir("sweep_truncate");
  const CleanWal wal = BuildWal(dir, 6);
  const std::string path = dir + "/wal.log";
  ASSERT_GT(wal.bytes.size(), 0u);

  for (std::size_t cut = 0; cut <= wal.bytes.size(); ++cut) {
    ASSERT_TRUE(WriteStringToFile(path, wal.bytes.substr(0, cut)).ok());
    bool damaged = false;
    const std::size_t replayed = CountReplayed(path, &damaged);
    const std::size_t expected = FramesBefore(wal, cut);
    EXPECT_EQ(replayed, expected) << "truncated to " << cut << " bytes";
    // A cut exactly on a frame boundary is a clean shutdown, not damage.
    bool on_boundary = cut == 0;
    for (uint64_t end : wal.frame_ends) {
      if (end == cut) on_boundary = true;
    }
    EXPECT_EQ(damaged, !on_boundary) << "truncated to " << cut << " bytes";
    // truncate_damage must physically restore a clean boundary.
    auto replay_after = ReplayWal(
        path, 0, [](Record) { return Status::OK(); }, false);
    ASSERT_TRUE(replay_after.ok());
    EXPECT_TRUE(replay_after->damage.ok())
        << "file still damaged after truncation at " << cut;
  }
}

TEST(WalCorruptionSweepTest, EverySingleByteFlipKeepsFramesBeforeTheDamage) {
  const std::string dir = TempDir("sweep_flip");
  const CleanWal wal = BuildWal(dir, 4);
  const std::string path = dir + "/wal.log";

  for (std::size_t i = 0; i < wal.bytes.size(); ++i) {
    std::string flipped = wal.bytes;
    flipped[i] ^= 0x5A;
    ASSERT_TRUE(WriteStringToFile(path, flipped).ok());
    bool damaged = false;
    const std::size_t replayed = CountReplayed(path, &damaged);
    // The flip lands inside exactly one frame; replay keeps every frame
    // before it and stops there (it cannot resync past a bad frame).
    EXPECT_EQ(replayed, FramesBefore(wal, i)) << "flip at byte " << i;
    EXPECT_TRUE(damaged) << "flip at byte " << i << " went undetected";
  }
}

TEST(DurableStoreCorruptionTest, RecoversThroughDamagedWalTail) {
  // End-to-end: a store whose log loses its tail reopens with the frames
  // before the damage and keeps accepting appends.
  const std::string dir = TempDir("store_damaged_tail");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          (*store)->Append(Record{{"seq", std::to_string(i), 0.5}}).ok());
    }
  }
  const std::string path = dir + "/wal.log";
  auto bytes = ReadFileToString(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_TRUE(
      WriteStringToFile(path, bytes->substr(0, bytes->size() - 3)).ok());

  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->store().size(), 4u);
  EXPECT_FALSE((*reopened)->recovery().wal_damage.ok());
  EXPECT_GT((*reopened)->recovery().truncated_bytes, 0u);
  // The store keeps going: new appends land after the truncated tail and
  // survive the next recovery cleanly.
  ASSERT_TRUE((*reopened)->Append(Record{{"seq", "fresh", 0.5}}).ok());
  reopened->reset();

  auto again = DurableStore::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->store().size(), 5u);
  EXPECT_TRUE((*again)->recovery().wal_damage.ok());
  EXPECT_TRUE((*again)->store().Get(4)->Contains("seq", "fresh"));
}

TEST(DurableStoreCorruptionTest, AllSnapshotsDamagedFallsBackToFullReplay) {
  const std::string dir = TempDir("store_all_snapshots_bad");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "b", 0.5}}).ok());
    ASSERT_TRUE((*store)->Snapshot().ok());
  }
  // Zero out every snapshot. The WAL alone still holds the full history —
  // recovery degrades, it does not fail.
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    if (ParseSnapshotFileName(name).ok()) {
      ASSERT_TRUE(
          WriteStringToFile(entry.path().string(), "not a snapshot").ok());
    }
  }
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().skipped_snapshots, 1u);
  EXPECT_TRUE((*reopened)->recovery().snapshot_file.empty());
  EXPECT_EQ((*reopened)->store().size(), 2u);
}

}  // namespace
}  // namespace infoleak::persist
