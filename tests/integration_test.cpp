// End-to-end integration tests: whole pipelines crossing every library —
// generation, adversary operators, entity resolution, leakage engines, and
// the defender-side applications.

#include <gtest/gtest.h>

#include "util/string_util.h"

#include "apps/disinformation.h"
#include "apps/population.h"
#include "apps/tracker.h"
#include "core/record_io.h"
#include "er/blocking.h"
#include "er/swoosh.h"
#include "er/transitive.h"
#include "gen/population.h"
#include "ops/augment.h"
#include "ops/error_correction.h"
#include "ops/obfuscation.h"

namespace infoleak {
namespace {

TEST(IntegrationTest, AdversaryPipelineMonotonicallyImprovesLeakage) {
  // Eve's full §2.4 arsenal as one pipeline: fix misspellings, infer zip
  // codes from addresses, then resolve entities. Each stage must not lose
  // leakage and the pipeline must beat raw set leakage.
  Record p{{"N", "Alice"}, {"A", "123 Main"}, {"Z", "94305"}, {"P", "555"}};
  Database db;
  db.Add(Record{{"N", "Alicd"}, {"A", "123 Main"}});   // misspelled name
  db.Add(Record{{"N", "Alice"}, {"P", "555"}});
  db.Add(Record{{"N", "Bob"}, {"P", "777"}});

  ErrorCorrectionOperator fix(1);
  fix.AddDictionary("N", {"Alice", "Bob"});
  AugmentOperator infer;
  infer.AddRule("A", "123 Main", "Z", "94305");
  auto match = RuleMatch::SharedValue({"N"});
  UnionMerge merge;
  SwooshResolver resolver(*match, merge);
  ErOperator er(resolver);
  PipelineOperator pipeline({&fix, &infer, &er});
  IdentityOperator identity;
  WeightModel unit;
  ExactLeakage engine;

  double raw = InformationLeakage(db, p, identity, unit, engine).value();
  double analyzed = InformationLeakage(db, p, pipeline, unit, engine).value();
  EXPECT_GT(analyzed, raw);
  // After the pipeline the Alice composite holds all 4 reference
  // attributes and nothing else: leakage 1.
  EXPECT_NEAR(analyzed, 1.0, 1e-12);
}

TEST(IntegrationTest, DefenderVsAdversaryRoundTrip) {
  // Alice runs the tracker; the store database leaks; she buys
  // disinformation within a budget; leakage drops; the adversary's dipping
  // query afterwards retrieves a polluted dossier.
  Record p{{"N", "alice"}, {"P", "123"}, {"C", "999"}, {"Z", "94305"}};
  RuleMatch match(MatchRules{{"N"}, {"P"}});
  UnionMerge merge;
  SwooshResolver resolver(match, merge);
  ErOperator adversary(resolver);
  WeightModel unit;
  ExactLeakage engine;

  LeakageTracker tracker(p, adversary, unit, engine);
  ASSERT_TRUE(tracker.Release("a", Record{{"N", "alice"}, {"P", "123"}}).ok());
  ASSERT_TRUE(tracker.Release("b", Record{{"N", "alice"}, {"C", "999"}}).ok());
  double before = tracker.CurrentLeakage().value();
  EXPECT_GT(before, 0.8);  // 3 of 4 attributes linked

  RuleMatchFactory factory(MatchRules{{"N"}, {"P"}});
  DisinformationOptimizer optimizer(factory);
  auto candidates =
      optimizer.GenerateCandidates(tracker.released(), p, 4, 2);
  ASSERT_TRUE(candidates.ok());
  auto plan = optimizer.OptimizeGreedy(tracker.released(), p, adversary,
                                       *candidates, 8.0, unit, engine);
  ASSERT_TRUE(plan.ok());
  EXPECT_LT(plan->leakage_after, before);

  // Commit the plan through the tracker and verify the trajectory dips.
  for (const auto& chosen : plan->chosen) {
    auto entry = tracker.Release("disinfo", chosen.record);
    ASSERT_TRUE(entry.ok());
  }
  EXPECT_NEAR(tracker.CurrentLeakage().value(), plan->leakage_after, 1e-12);
}

TEST(IntegrationTest, PopulationPipelineWithBlockingAndNoise) {
  // Population generation -> defender noise -> blocked ER -> per-person
  // leakage and re-identification, everything deterministic.
  GeneratorConfig config;
  config.n = 8;
  config.perturb_prob = 0.1;
  config.seed = 31337;
  auto data = GeneratePopulation(config, 6, 5);
  ASSERT_TRUE(data.ok());

  ObfuscationOperator noise(1, 3, 5);
  auto noisy = noise.Apply(data->records);
  ASSERT_TRUE(noisy.ok());
  EXPECT_EQ(noisy->size(), 30u + 30u);

  std::vector<std::string> labels;
  for (std::size_t l = 0; l < config.n; ++l) {
    labels.push_back(StrCat("L", std::to_string(l)));
  }
  auto match = RuleMatch::SharedValue(labels);
  UnionMerge merge;
  LabelValueBlocking blocking(labels);
  BlockedResolver resolver(blocking, *match, merge);
  ErOperator er(resolver);
  ExactLeakage engine;

  auto leakages = PerPersonLeakage(*noisy, data->references, er,
                                   data->weights, engine);
  ASSERT_TRUE(leakages.ok());
  ASSERT_EQ(leakages->size(), 6u);
  for (const auto& entry : *leakages) {
    EXPECT_GT(entry.leakage, 0.0);
    EXPECT_LE(entry.leakage, 1.0);
  }

  // Re-identification over the *original* (pre-noise) records still works.
  auto reid = ReidentifyRecords(data->records, data->references,
                                data->weights, engine, &data->owner);
  ASSERT_TRUE(reid.ok());
  EXPECT_EQ(reid->correct, reid->attributed);
}

TEST(IntegrationTest, SerializationSurvivesFullPipeline) {
  // Generate, serialize to CSV, reload, and verify the reloaded database
  // produces identical leakage under ER.
  GeneratorConfig config;
  config.n = 12;
  config.num_records = 40;
  config.seed = 9;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());

  auto reloaded = LoadDatabaseCsv(SaveDatabaseCsv(data->records));
  ASSERT_TRUE(reloaded.ok());
  ASSERT_EQ(reloaded->size(), data->records.size());

  ExactLeakage engine;
  auto original = SetLeakage(data->records, data->reference, data->weights,
                             engine);
  auto roundtrip =
      SetLeakage(*reloaded, data->reference, data->weights, engine);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(roundtrip.ok());
  // Confidences pass through decimal text; 9 significant digits keep the
  // leakage equal to ~1e-9.
  EXPECT_NEAR(*original, *roundtrip, 1e-8);
}

TEST(IntegrationTest, AllEnginesAgreeAfterAnalysis) {
  // Resolve a generated database, then confirm naive (where feasible),
  // exact, approximate, and auto engines rank the merged records the same
  // way and agree numerically where they claim exactness.
  GeneratorConfig config;
  config.n = 10;
  config.num_records = 12;
  config.seed = 77;
  config.perturb_prob = 0.2;
  auto data = GenerateDataset(config);
  ASSERT_TRUE(data.ok());

  PredicateMatch match(
      [](const Record& a, const Record& b) {
        WeightModel unit;
        return unit.OverlapWeight(a, b) > 0.0;
      },
      "share-any");
  UnionMerge merge;
  TransitiveClosureResolver resolver(match, merge);
  auto resolved = resolver.Resolve(data->records, nullptr);
  ASSERT_TRUE(resolved.ok());

  ExactLeakage exact;
  AutoLeakage auto_engine;
  ApproxLeakage approx;
  for (const auto& r : *resolved) {
    double e = exact.RecordLeakage(r, data->reference, data->weights)
                   .value_or(-1);
    double a = auto_engine.RecordLeakage(r, data->reference, data->weights)
                   .value_or(-1);
    double x = approx.RecordLeakage(r, data->reference, data->weights)
                   .value_or(-1);
    EXPECT_NEAR(e, a, 1e-12);   // auto dispatches to exact here
    EXPECT_NEAR(e, x, 0.02);    // approximation stays close
  }
}

}  // namespace
}  // namespace infoleak
