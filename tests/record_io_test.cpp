#include "core/record_io.h"

#include <gtest/gtest.h>

namespace infoleak {
namespace {

TEST(ParseRecordTest, BasicRecord) {
  auto r = ParseRecord("{<N, Alice>, <A, 20, 0.5>}");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
  EXPECT_DOUBLE_EQ(r->Confidence("N", "Alice"), 1.0);
  EXPECT_DOUBLE_EQ(r->Confidence("A", "20"), 0.5);
}

TEST(ParseRecordTest, BracesOptional) {
  auto r = ParseRecord("<N, Alice> <P, 123>");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 2u);
}

TEST(ParseRecordTest, EmptyRecord) {
  for (const char* text : {"{}", "", "  "}) {
    auto r = ParseRecord(text);
    ASSERT_TRUE(r.ok()) << text;
    EXPECT_TRUE(r->empty());
  }
}

TEST(ParseRecordTest, RoundTripsWithToString) {
  Record original{{"Z", "94305"}, {"N", "Alice", 0.75}, {"A", "20"}};
  auto parsed = ParseRecord(FormatRecord(original));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(*parsed, original);
}

TEST(ParseRecordTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseRecord("{<N, Alice>").ok());       // unbalanced brace
  EXPECT_FALSE(ParseRecord("<N, Alice").ok());         // unterminated attr
  EXPECT_FALSE(ParseRecord("<N>").ok());               // too few fields
  EXPECT_FALSE(ParseRecord("<N, A, B, C>").ok());      // too many fields
  EXPECT_FALSE(ParseRecord("<N, Alice, nan>").ok());   // bad confidence
  EXPECT_FALSE(ParseRecord("<N, Alice, 2>").ok());     // out of range
  EXPECT_FALSE(ParseRecord("<, Alice>").ok());         // empty label
  EXPECT_FALSE(ParseRecord("junk <N, A>").ok());       // junk before
}

TEST(ParseRecordTest, TrimsWhitespace) {
  auto r = ParseRecord("  { < N ,  Alice ,  0.5 > }  ");
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Confidence("N", "Alice"), 0.5);
}

TEST(DatabaseCsvTest, RoundTrip) {
  Database db;
  db.Add(Record{{"N", "Alice"}, {"P", "123", 0.5}});
  db.Add(Record{{"N", "Bob"}});
  db.Add(Record{});  // empty records vanish in long format — see below
  std::string csv = SaveDatabaseCsv(db);
  auto loaded = LoadDatabaseCsv(csv);
  ASSERT_TRUE(loaded.ok());
  // The empty record has no rows, so only 2 records round-trip.
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0], db[0]);
  EXPECT_EQ((*loaded)[1], db[1]);
}

TEST(DatabaseCsvTest, HeaderOptional) {
  auto with = LoadDatabaseCsv("record,label,value,confidence\n0,N,Alice,1\n");
  auto without = LoadDatabaseCsv("0,N,Alice,1\n");
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ((*with)[0], (*without)[0]);
}

TEST(DatabaseCsvTest, ConfidenceColumnOptional) {
  auto db = LoadDatabaseCsv("0,N,Alice\n0,P,123\n");
  ASSERT_TRUE(db.ok());
  EXPECT_DOUBLE_EQ((*db)[0].Confidence("N", "Alice"), 1.0);
}

TEST(DatabaseCsvTest, RecordsInFirstOccurrenceOrder) {
  auto db = LoadDatabaseCsv("5,N,Eve,1\n2,N,Bob,1\n5,P,99,1\n");
  ASSERT_TRUE(db.ok());
  ASSERT_EQ(db->size(), 2u);
  EXPECT_TRUE((*db)[0].Contains("N", "Eve"));
  EXPECT_TRUE((*db)[0].Contains("P", "99"));
  EXPECT_TRUE((*db)[1].Contains("N", "Bob"));
}

TEST(DatabaseCsvTest, ValuesWithCommasSurviveQuoting) {
  Database db;
  db.Add(Record{{"A", "123 Main, Apt 4"}});
  auto loaded = LoadDatabaseCsv(SaveDatabaseCsv(db));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE((*loaded)[0].Contains("A", "123 Main, Apt 4"));
}

TEST(DatabaseCsvTest, RejectsMalformedRows) {
  EXPECT_FALSE(LoadDatabaseCsv("0,N\n").ok());            // too few fields
  EXPECT_FALSE(LoadDatabaseCsv("x,N,Alice,1\n").ok());    // bad index
  EXPECT_FALSE(LoadDatabaseCsv("-1,N,Alice,1\n").ok());   // negative index
  EXPECT_FALSE(LoadDatabaseCsv("0,N,Alice,7\n").ok());    // bad confidence
}

TEST(DatabaseCsvTest, EmptyDocumentIsEmptyDatabase) {
  auto db = LoadDatabaseCsv("");
  ASSERT_TRUE(db.ok());
  EXPECT_TRUE(db->empty());
}

}  // namespace
}  // namespace infoleak
