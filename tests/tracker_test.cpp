#include "apps/tracker.h"

#include <gtest/gtest.h>

#include "er/swoosh.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// The §4.1 world wrapped in a tracker: Alice releases s, then t, then
/// decides on the app purchase.
class TrackerFixture : public ::testing::Test {
 protected:
  TrackerFixture()
      : reference_{{"N", "n1"}, {"C", "c1"}, {"C", "c2"}, {"P", "p1"},
                   {"A", "a1"}},
        match_(MatchRules{{"N", "C"}, {"N", "P"}}),
        resolver_(match_, merge_),
        adversary_(resolver_),
        tracker_(reference_, adversary_, weights_, engine_) {}

  Record reference_;
  RuleMatch match_;
  UnionMerge merge_;
  SwooshResolver resolver_;
  ErOperator adversary_;
  WeightModel weights_;
  ExactLeakage engine_;
  LeakageTracker tracker_;
};

TEST_F(TrackerFixture, StartsAtZeroLeakage) {
  auto l = tracker_.CurrentLeakage();
  ASSERT_TRUE(l.ok());
  EXPECT_EQ(*l, 0.0);
  EXPECT_EQ(tracker_.num_releases(), 0u);
}

TEST_F(TrackerFixture, ReleasesAccumulate) {
  auto first = tracker_.Release(
      "store purchase", Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}});
  ASSERT_TRUE(first.ok());
  EXPECT_NEAR(first->leakage_before, 0.0, kTol);
  EXPECT_NEAR(first->leakage_after, 3.0 / 4.0, kTol);
  EXPECT_NEAR(first->incremental, 3.0 / 4.0, kTol);

  auto second =
      tracker_.Release("second purchase", Record{{"N", "n1"}, {"C", "c2"}});
  ASSERT_TRUE(second.ok());
  EXPECT_NEAR(second->leakage_before, 3.0 / 4.0, kTol);
  // t doesn't merge with s: leakage stays 3/4.
  EXPECT_NEAR(second->incremental, 0.0, kTol);

  EXPECT_EQ(tracker_.num_releases(), 2u);
  EXPECT_EQ(tracker_.released().size(), 2u);
  EXPECT_NEAR(tracker_.CurrentLeakage().value(), 3.0 / 4.0, kTol);
}

TEST_F(TrackerFixture, WhatIfDoesNotCommit) {
  ASSERT_TRUE(tracker_
                  .Release("store purchase",
                           Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"}})
                  .ok());
  ASSERT_TRUE(
      tracker_.Release("second", Record{{"N", "n1"}, {"C", "c2"}}).ok());
  // What if Alice pays with c2? (the 8/9 bridge from §4.1)
  Record v{{"N", "n1"}, {"C", "c2"}, {"P", "p1"}};
  auto what_if = tracker_.WhatIf(v);
  ASSERT_TRUE(what_if.ok());
  EXPECT_NEAR(what_if->after, 8.0 / 9.0, kTol);
  EXPECT_NEAR(what_if->incremental, 5.0 / 36.0, kTol);
  // Nothing committed.
  EXPECT_EQ(tracker_.num_releases(), 2u);
  EXPECT_NEAR(tracker_.CurrentLeakage().value(), 3.0 / 4.0, kTol);
}

TEST_F(TrackerFixture, HistoryRecordsTrajectory) {
  ASSERT_TRUE(tracker_.Release("a", Record{{"N", "n1"}}).ok());
  ASSERT_TRUE(
      tracker_.Release("b", Record{{"N", "n1"}, {"C", "c1"}}).ok());
  const auto& history = tracker_.history();
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].description, "a");
  EXPECT_EQ(history[1].description, "b");
  // The trajectory chains: each entry starts where the previous ended.
  EXPECT_NEAR(history[1].leakage_before, history[0].leakage_after, kTol);
  // Leakage is monotone here (no disinformation released).
  EXPECT_GE(history[1].leakage_after, history[0].leakage_after - kTol);
}

TEST_F(TrackerFixture, DisinformationShowsNegativeIncrement) {
  ASSERT_TRUE(tracker_
                  .Release("real data",
                           Record{{"N", "n1"}, {"C", "c1"}, {"P", "p1"},
                                  {"A", "a1"}})
                  .ok());
  // A fake record that merges in and pollutes the composite.
  Record fake{{"N", "n1"}, {"C", "c1"}, {"X1", "f1"}, {"X2", "f2"},
              {"X3", "f3"}};
  auto entry = tracker_.Release("disinformation", fake);
  ASSERT_TRUE(entry.ok());
  EXPECT_LT(entry->incremental, 0.0);
}

}  // namespace
}  // namespace infoleak
