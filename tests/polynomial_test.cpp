#include "core/polynomial.h"

#include <gtest/gtest.h>

#include <vector>

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

TEST(PolyTest, OneIsConstantPolynomial) {
  auto one = Poly::One();
  EXPECT_EQ(one, std::vector<double>{1.0});
  EXPECT_NEAR(Poly::Evaluate(one, 0.37), 1.0, kTol);
}

TEST(PolyTest, MultiplyBernoulliDegreeOne) {
  // 1 * (c·t + 1−c) = c·t + (1−c).
  auto y = Poly::MultiplyBernoulli(Poly::One(), 0.3);
  ASSERT_EQ(y.size(), 2u);
  EXPECT_NEAR(y[0], 0.3, kTol);  // t^1 coefficient
  EXPECT_NEAR(y[1], 0.7, kTol);  // t^0 coefficient
}

TEST(PolyTest, MultiplyBernoulliMatchesDirectProduct) {
  // (0.5t + 0.5)(0.2t + 0.8) = 0.1t² + 0.5t + 0.4.
  auto y = Poly::MultiplyBernoulli(Poly::MultiplyBernoulli(Poly::One(), 0.5),
                                   0.2);
  ASSERT_EQ(y.size(), 3u);
  EXPECT_NEAR(y[0], 0.1, kTol);
  EXPECT_NEAR(y[1], 0.5, kTol);
  EXPECT_NEAR(y[2], 0.4, kTol);
}

TEST(PolyTest, ProductEvaluationMatchesFactorEvaluation) {
  std::vector<double> confs{0.1, 0.9, 0.5, 0.33, 0.77};
  auto y = Poly::One();
  for (double c : confs) y = Poly::MultiplyBernoulli(y, c);
  for (double t : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    double direct = 1.0;
    for (double c : confs) direct *= c * t + (1.0 - c);
    EXPECT_NEAR(Poly::Evaluate(y, t), direct, 1e-12);
  }
}

TEST(PolyTest, ExtremeConfidences) {
  // c = 1 multiplies by t (shifts coefficients); c = 0 multiplies by 1.
  auto by_one = Poly::MultiplyBernoulli(Poly::One(), 1.0);
  EXPECT_NEAR(Poly::Evaluate(by_one, 0.4), 0.4, kTol);
  auto by_zero = Poly::MultiplyBernoulli(Poly::One(), 0.0);
  EXPECT_NEAR(Poly::Evaluate(by_zero, 0.4), 1.0, kTol);
}

TEST(PolyTest, IntegrateConstantAgainstPower) {
  // ∫₀¹ t^m dt = 1/(m+1).
  for (std::size_t m : {0u, 1u, 5u, 100u}) {
    EXPECT_NEAR(Poly::IntegrateAgainstPower(Poly::One(), m),
                1.0 / static_cast<double>(m + 1), kTol);
  }
}

TEST(PolyTest, IntegrateLinearPolynomial) {
  // Y(t) = 0.3t + 0.7; ∫₀¹ t²·Y dt = 0.3/4 + 0.7/3.
  auto y = Poly::MultiplyBernoulli(Poly::One(), 0.3);
  EXPECT_NEAR(Poly::IntegrateAgainstPower(y, 2), 0.3 / 4 + 0.7 / 3, kTol);
}

TEST(PolyTest, IntegrateMatchesNumericalQuadrature) {
  std::vector<double> confs{0.4, 0.6, 0.25};
  auto y = Poly::One();
  for (double c : confs) y = Poly::MultiplyBernoulli(y, c);
  const std::size_t m = 3;
  // Simpson's rule with many panels as an independent oracle.
  const int kPanels = 20000;
  double h = 1.0 / kPanels;
  double sum = 0.0;
  auto f = [&](double t) {
    double v = 1.0;
    for (double c : confs) v *= c * t + (1.0 - c);
    double tm = 1.0;
    for (std::size_t i = 0; i < m; ++i) tm *= t;
    return tm * v;
  };
  for (int i = 0; i < kPanels; ++i) {
    double a = i * h;
    sum += (f(a) + 4 * f(a + h / 2) + f(a + h)) * h / 6;
  }
  EXPECT_NEAR(Poly::IntegrateAgainstPower(y, m), sum, 1e-9);
}

}  // namespace
}  // namespace infoleak
