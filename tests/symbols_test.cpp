// Unit tests for the interning layer (core/symbols) and its first consumer,
// the symbol-keyed inverted index (store/inverted_index).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/symbols.h"
#include "store/inverted_index.h"

namespace infoleak {
namespace {

TEST(SymbolTable, InternAssignsDenseIdsInFirstSeenOrder) {
  SymbolTable t;
  EXPECT_TRUE(t.empty());
  EXPECT_EQ(t.Intern("alpha"), 0u);
  EXPECT_EQ(t.Intern("beta"), 1u);
  EXPECT_EQ(t.Intern("alpha"), 0u);  // idempotent
  EXPECT_EQ(t.Intern("gamma"), 2u);
  EXPECT_EQ(t.size(), 3u);
  EXPECT_EQ(t.NameOf(0), "alpha");
  EXPECT_EQ(t.NameOf(1), "beta");
  EXPECT_EQ(t.NameOf(2), "gamma");
}

TEST(SymbolTable, FindDoesNotIntern) {
  SymbolTable t;
  t.Intern("known");
  EXPECT_EQ(t.Find("known"), 0u);
  EXPECT_EQ(t.Find("unknown"), SymbolTable::kNoSymbol);
  EXPECT_EQ(t.size(), 1u);  // the miss did not grow the table
}

TEST(SymbolTable, ViewsStayValidAcrossGrowth) {
  SymbolTable t;
  std::string_view first = t.NameOf(t.Intern("stable"));
  // Force many insertions; the arena must not move the first string.
  for (int i = 0; i < 1000; ++i) t.Intern("sym" + std::to_string(i));
  EXPECT_EQ(first, "stable");
  EXPECT_EQ(t.Find("stable"), 0u);
}

TEST(SymbolTable, MoveTransfersContents) {
  SymbolTable t;
  t.Intern("a");
  t.Intern("b");
  SymbolTable moved = std::move(t);
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved.Find("a"), 0u);
  EXPECT_EQ(moved.Find("b"), 1u);
}

TEST(SymbolTable, PackSymbolPairIsInjective) {
  EXPECT_NE(PackSymbolPair(0, 1), PackSymbolPair(1, 0));
  EXPECT_EQ(PackSymbolPair(2, 3), (uint64_t{2} << 32) | 3);
  EXPECT_NE(PackSymbolPair(0, SymbolTable::kNoSymbol),
            PackSymbolPair(SymbolTable::kNoSymbol, 0));
}

// ---------------------------------------------------------------------------
// InvertedIndex on interned keys
// ---------------------------------------------------------------------------

Record MakeRecord(
    std::initializer_list<std::pair<std::string, std::string>> attrs) {
  Record r;
  for (const auto& [label, value] : attrs) {
    r.Insert(Attribute(label, value, 1.0));
  }
  return r;
}

TEST(InvertedIndex, FindReturnsPostingListOrNull) {
  InvertedIndex index;
  index.Add(0, MakeRecord({{"name", "alice"}, {"zip", "12345"}}));
  index.Add(1, MakeRecord({{"name", "bob"}, {"zip", "12345"}}));

  const auto* zip = index.Find("zip", "12345");
  ASSERT_NE(zip, nullptr);
  EXPECT_EQ(*zip, (std::vector<RecordId>{0, 1}));

  const auto* alice = index.Find("name", "alice");
  ASSERT_NE(alice, nullptr);
  EXPECT_EQ(*alice, (std::vector<RecordId>{0}));

  // Unseen value and unseen label both miss without growing the tables.
  EXPECT_EQ(index.Find("name", "carol"), nullptr);
  EXPECT_EQ(index.Find("ssn", "12345"), nullptr);
  EXPECT_EQ(index.num_postings(), 3u);  // (name,alice) (zip,12345) (name,bob)
  EXPECT_EQ(index.symbols().labels.size(), 2u);
  EXPECT_EQ(index.symbols().values.size(), 3u);  // "12345" is shared
}

TEST(InvertedIndex, SameValueUnderDifferentLabelsIsDistinct) {
  InvertedIndex index;
  index.Add(0, MakeRecord({{"home_zip", "12345"}}));
  index.Add(1, MakeRecord({{"work_zip", "12345"}}));
  ASSERT_NE(index.Find("home_zip", "12345"), nullptr);
  EXPECT_EQ(*index.Find("home_zip", "12345"), (std::vector<RecordId>{0}));
  EXPECT_EQ(*index.Find("work_zip", "12345"), (std::vector<RecordId>{1}));
}

TEST(InvertedIndex, DuplicateAddIsDeduplicated) {
  InvertedIndex index;
  Record r = MakeRecord({{"name", "alice"}});
  index.Add(3, r);
  index.Add(3, r);
  EXPECT_EQ(*index.Find("name", "alice"), (std::vector<RecordId>{3}));
}

TEST(InvertedIndex, OutOfOrderAddsKeepListsSorted) {
  InvertedIndex index;
  Record r = MakeRecord({{"name", "alice"}});
  index.Add(5, r);
  index.Add(1, r);
  index.Add(3, r);
  EXPECT_EQ(*index.Find("name", "alice"), (std::vector<RecordId>{1, 3, 5}));
}

TEST(InvertedIndex, CandidatesRespectsLabelFilter) {
  InvertedIndex index;
  index.Add(0, MakeRecord({{"name", "alice"}, {"zip", "12345"}}));
  index.Add(1, MakeRecord({{"name", "bob"}, {"zip", "12345"}}));
  index.Add(2, MakeRecord({{"name", "alice"}, {"zip", "99999"}}));

  Record query = MakeRecord({{"name", "alice"}, {"zip", "12345"}});
  EXPECT_EQ(index.Candidates(query), (std::vector<RecordId>{0, 1, 2}));
  EXPECT_EQ(index.Candidates(query, {"name"}), (std::vector<RecordId>{0, 2}));
  EXPECT_EQ(index.Candidates(query, {"zip"}), (std::vector<RecordId>{0, 1}));
  EXPECT_TRUE(index.Candidates(query, {"ssn"}).empty());
}

}  // namespace
}  // namespace infoleak
