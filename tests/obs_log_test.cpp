// Tests for the structured request log (src/obs/log.h): ring overwrite
// with exact accounting, the slow-query ring's retention order, Recent's
// cursor/latency filters, the JSONL rendering contract (zero phases
// omitted), the kill switch, and — the load-bearing part — exact
// recorded/overwritten totals with no torn events under 8-thread
// concurrency. The concurrency tests also run under the CI TSan pass.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/log.h"
#include "obs/request.h"

namespace infoleak {
namespace {

obs::RequestEvent MakeEvent(uint64_t id, uint64_t total_nanos,
                            const std::string& verb = "set-leak") {
  obs::RequestEvent event;
  event.id = id;
  event.verb = verb;
  event.outcome = "ok";
  event.total_nanos = total_nanos;
  return event;
}

TEST(EventLogTest, RecordsAndReadsBack) {
  obs::EventLog log(/*capacity=*/64, /*slow_capacity=*/8);
  log.Record(MakeEvent(1, 1000));
  log.Record(MakeEvent(2, 2000));
  log.Record(MakeEvent(3, 3000));
  auto events = log.Recent(10);
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].id, 1u);
  EXPECT_EQ(events[1].id, 2u);
  EXPECT_EQ(events[2].id, 3u);
  EXPECT_EQ(log.recorded(), 3u);
  EXPECT_EQ(log.overwritten(), 0u);
}

TEST(EventLogTest, RingOverwritesOldestAndCountsDisplacements) {
  // Single shard slot per shard (capacity 8 over 8 shards): every record
  // on the same thread lands in one shard, so the second displaces the
  // first and so on.
  obs::EventLog log(/*capacity=*/8, /*slow_capacity=*/4);
  for (uint64_t id = 1; id <= 5; ++id) log.Record(MakeEvent(id, id * 100));
  EXPECT_EQ(log.recorded(), 5u);
  EXPECT_EQ(log.overwritten(), 4u);
  auto events = log.Recent(10);
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].id, 5u);
}

TEST(EventLogTest, RecentFiltersByCursorAndLatency) {
  obs::EventLog log(/*capacity=*/64, /*slow_capacity=*/8);
  for (uint64_t id = 1; id <= 6; ++id) log.Record(MakeEvent(id, id * 1000));
  auto after = log.Recent(10, /*after_id=*/4);
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[0].id, 5u);
  EXPECT_EQ(after[1].id, 6u);
  auto slow = log.Recent(10, /*after_id=*/0, /*min_total_nanos=*/5000);
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].id, 5u);
  EXPECT_EQ(slow[1].id, 6u);
  // Newest-max: asking for 2 keeps the newest two of the six.
  auto newest = log.Recent(2);
  ASSERT_EQ(newest.size(), 2u);
  EXPECT_EQ(newest[0].id, 5u);
  EXPECT_EQ(newest[1].id, 6u);
}

TEST(EventLogTest, SlowRingRetainsWorstAcrossOverwrite) {
  // The recent ring loses old events; the slow ring must keep the worst
  // regardless of age.
  obs::EventLog log(/*capacity=*/8, /*slow_capacity=*/3);
  log.Record(MakeEvent(1, 9000));  // slow, old — must survive
  for (uint64_t id = 2; id <= 40; ++id) log.Record(MakeEvent(id, id));
  log.Record(MakeEvent(41, 7000));
  log.Record(MakeEvent(42, 8000));
  auto slow = log.Slowest(10);
  ASSERT_EQ(slow.size(), 3u);
  EXPECT_EQ(slow[0].id, 1u);   // 9000 ns, slowest first
  EXPECT_EQ(slow[1].id, 42u);  // 8000 ns
  EXPECT_EQ(slow[2].id, 41u);  // 7000 ns
}

TEST(EventLogTest, DisabledRecordsNothing) {
  obs::EventLog log(/*capacity=*/8, /*slow_capacity=*/4);
  EXPECT_TRUE(log.enabled());
  log.SetEnabled(false);
  log.Record(MakeEvent(1, 1000));
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_TRUE(log.Recent(10).empty());
  EXPECT_TRUE(log.Slowest(10).empty());
  log.SetEnabled(true);
  log.Record(MakeEvent(2, 1000));
  EXPECT_EQ(log.recorded(), 1u);
}

TEST(EventLogTest, ClearZeroesEverything) {
  obs::EventLog log(/*capacity=*/8, /*slow_capacity=*/4);
  for (uint64_t id = 1; id <= 10; ++id) log.Record(MakeEvent(id, id));
  log.Clear();
  EXPECT_EQ(log.recorded(), 0u);
  EXPECT_EQ(log.overwritten(), 0u);
  EXPECT_TRUE(log.Recent(10).empty());
  EXPECT_TRUE(log.Slowest(10).empty());
}

TEST(EventLogTest, JsonlOmitsZeroPhasesAndRendersTheRest) {
  obs::RequestEvent event = MakeEvent(7, 1500000, "append");
  event.phase_nanos[static_cast<int>(obs::Phase::kQueue)] = 1000;
  event.phase_nanos[static_cast<int>(obs::Phase::kFsync)] = 1200000;
  event.records_scanned = 3;
  event.bytes_in = 10;
  event.bytes_out = 20;
  const std::string line = obs::RenderEventJsonl(event);
  EXPECT_NE(line.find("\"id\":7"), std::string::npos) << line;
  EXPECT_NE(line.find("\"verb\":\"append\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"outcome\":\"ok\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"total_us\":1500.000"), std::string::npos) << line;
  EXPECT_NE(line.find("\"queue\":1.000"), std::string::npos) << line;
  EXPECT_NE(line.find("\"fsync\":1200.000"), std::string::npos) << line;
  // Phases that never ran are absent, so a present key is always non-zero.
  EXPECT_EQ(line.find("\"eval\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"parse\""), std::string::npos) << line;
  // No kernel, no deadline: the optional keys disappear entirely.
  EXPECT_EQ(line.find("\"kernel\""), std::string::npos) << line;
  EXPECT_EQ(line.find("\"deadline_us\""), std::string::npos) << line;
}

TEST(EventLogTest, JsonlEscapesHostileStrings) {
  obs::RequestEvent event = MakeEvent(1, 1000);
  event.verb = "ve\"rb\n";
  event.outcome = "o\\k";
  const std::string line = obs::RenderEventJsonl(event);
  EXPECT_NE(line.find("\"ve\\\"rb\\n\""), std::string::npos) << line;
  EXPECT_NE(line.find("\"o\\\\k\""), std::string::npos) << line;
}

// The accounting contract under contention: N threads x M events each must
// land as exactly N*M recorded, with recorded - overwritten events
// retained across the shards, and every retained event intact (id, verb,
// outcome, and total must belong together — a torn event would mix them).
TEST(EventLogConcurrencyTest, ExactTotalsAndNoTornEventsUnder8Threads) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  obs::EventLog log(/*capacity=*/256, /*slow_capacity=*/16);
  std::atomic<int> start{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&log, &start, t] {
      start.fetch_add(1);
      while (start.load() < kThreads) {
      }
      for (int i = 0; i < kPerThread; ++i) {
        // Every field derives from the id, so readers can verify an event
        // was written atomically.
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        obs::RequestEvent event =
            MakeEvent(id, id * 10, "verb-" + std::to_string(id));
        event.outcome = "outcome-" + std::to_string(id);
        event.records_scanned = id * 3;
        log.Record(std::move(event));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(log.recorded(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  const auto events = log.Recent(10000);
  EXPECT_EQ(log.recorded() - log.overwritten(), events.size());
  uint64_t prev_id = 0;
  for (const auto& event : events) {
    EXPECT_GT(event.id, prev_id);  // unique, ascending
    prev_id = event.id;
    EXPECT_EQ(event.verb, "verb-" + std::to_string(event.id));
    EXPECT_EQ(event.outcome, "outcome-" + std::to_string(event.id));
    EXPECT_EQ(event.total_nanos, event.id * 10);
    EXPECT_EQ(event.records_scanned, event.id * 3);
  }
  // The slow ring saw every offer; with totals = id*10 it must retain the
  // highest ids, slowest first.
  const auto slow = log.Slowest(16);
  ASSERT_EQ(slow.size(), 16u);
  const uint64_t max_id = static_cast<uint64_t>(kThreads) * kPerThread;
  for (std::size_t i = 0; i < slow.size(); ++i) {
    EXPECT_EQ(slow[i].id, max_id - i);
  }
}

// Readers racing writers must always observe consistent events and
// monotonically consistent accounting (retained <= recorded, and the
// retained count of a quiesced log equals recorded - overwritten).
TEST(EventLogConcurrencyTest, ConcurrentReadersSeeConsistentEvents) {
  constexpr int kWriters = 4;
  constexpr int kReaders = 4;
  constexpr int kPerThread = 1500;
  obs::EventLog log(/*capacity=*/128, /*slow_capacity=*/8);
  std::atomic<bool> done{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const uint64_t id = static_cast<uint64_t>(t) * kPerThread + i + 1;
        log.Record(MakeEvent(id, id, "verb-" + std::to_string(id)));
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&log, &done] {
      while (!done.load()) {
        for (const auto& event : log.Recent(64)) {
          ASSERT_EQ(event.verb, "verb-" + std::to_string(event.id));
          ASSERT_EQ(event.total_nanos, event.id);
        }
        for (const auto& event : log.Slowest(8)) {
          ASSERT_EQ(event.verb, "verb-" + std::to_string(event.id));
        }
      }
    });
  }
  for (int t = 0; t < kWriters; ++t) threads[t].join();
  done.store(true);
  for (int r = 0; r < kReaders; ++r) threads[kWriters + r].join();
  EXPECT_EQ(log.recorded(),
            static_cast<uint64_t>(kWriters) * kPerThread);
  EXPECT_EQ(log.recorded() - log.overwritten(), log.Recent(100000).size());
}

}  // namespace
}  // namespace infoleak
