#include "svc/protocol.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "svc/queue.h"

namespace infoleak::svc {
namespace {

TEST(ParseRequestTest, ExtractsVerbIdAndBody) {
  auto req = ParseRequest(
      R"({"verb": "leak", "id": 7, "record_id": 3})");
  ASSERT_TRUE(req.ok()) << req.status().ToString();
  EXPECT_EQ(req->verb, "leak");
  EXPECT_EQ(req->id, "7");  // captured as rendered JSON, echoed verbatim
  EXPECT_DOUBLE_EQ(req->body.GetNumber("record_id", -1), 3.0);
}

TEST(ParseRequestTest, StringIdsKeepTheirQuotes) {
  auto req = ParseRequest(R"({"verb": "ping", "id": "abc"})");
  ASSERT_TRUE(req.ok());
  EXPECT_EQ(req->id, "\"abc\"");
}

TEST(ParseRequestTest, RejectsNonObjectMissingOrBlankVerb) {
  EXPECT_FALSE(ParseRequest("[1]").ok());
  EXPECT_FALSE(ParseRequest("{}").ok());
  EXPECT_FALSE(ParseRequest(R"({"verb": 3})").ok());
  EXPECT_FALSE(ParseRequest(R"({"verb": ""})").ok());
  EXPECT_FALSE(ParseRequest("not json at all").ok());
}

TEST(ResponseTest, OkResponseEchoesIdAsValue) {
  JsonValue ok = OkResponse("7");
  EXPECT_EQ(ok.Render(), "{\"id\":7,\"ok\":true}");
  EXPECT_EQ(OkResponse("").Render(), "{\"ok\":true}");
}

TEST(ResponseTest, ErrorResponseCarriesCodeAndMessage) {
  const std::string line = ErrorResponse("\"x\"", "overloaded", "full");
  auto parsed = ParseJson(line);
  ASSERT_TRUE(parsed.ok()) << line;
  EXPECT_FALSE(parsed->GetBool("ok", true));
  EXPECT_EQ(parsed->GetString("code"), "overloaded");
  EXPECT_EQ(parsed->GetString("error"), "full");
  EXPECT_EQ(parsed->GetString("id"), "x");
}

TEST(ResponseTest, WireCodeMapsStatusCodes) {
  EXPECT_EQ(WireCode(Status::InvalidArgument("x")), "invalid_argument");
  EXPECT_EQ(WireCode(Status::NotFound("x")), "not_found");
  EXPECT_EQ(WireCode(Status::OutOfRange("x")), "not_found");
  EXPECT_EQ(WireCode(Status::ResourceExhausted("x")), "overloaded");
  EXPECT_EQ(WireCode(Status::DeadlineExceeded("x")), "deadline_exceeded");
  EXPECT_EQ(WireCode(Status::Internal("x")), "internal");
  EXPECT_EQ(WireCode(Status::Corruption("x")), "internal");
}

TEST(BoundedQueueTest, TryPushShedsAtCapacityWithoutBlocking) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: immediate failure, no wait
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(3));  // slot freed
}

TEST(BoundedQueueTest, CloseDrainsBacklogThenStopsConsumers) {
  BoundedQueue<int> q(4);
  ASSERT_TRUE(q.TryPush(10));
  ASSERT_TRUE(q.TryPush(20));
  q.Close();
  EXPECT_FALSE(q.TryPush(30));  // closed: no new admissions
  int out = 0;
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 10);
  EXPECT_TRUE(q.Pop(&out));
  EXPECT_EQ(out, 20);
  EXPECT_FALSE(q.Pop(&out));  // drained + closed
}

TEST(BoundedQueueTest, CloseReleasesBlockedConsumers) {
  BoundedQueue<int> q(1);
  std::vector<std::thread> consumers;
  std::atomic<int> finished{0};
  for (int i = 0; i < 4; ++i) {
    consumers.emplace_back([&] {
      int out;
      while (q.Pop(&out)) {
      }
      finished.fetch_add(1);
    });
  }
  q.Close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(finished.load(), 4);
}

TEST(BoundedQueueTest, ConcurrentProducersNeverExceedCapacity) {
  BoundedQueue<int> q(8);
  std::atomic<int> accepted{0}, popped{0};
  std::vector<std::thread> workers;
  for (int p = 0; p < 4; ++p) {
    workers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (q.TryPush(i)) accepted.fetch_add(1);
      }
    });
  }
  std::thread consumer([&] {
    int out;
    while (q.Pop(&out)) popped.fetch_add(1);
  });
  for (auto& t : workers) t.join();
  q.Close();
  consumer.join();
  EXPECT_EQ(accepted.load(), popped.load());
  EXPECT_GT(accepted.load(), 0);
}

}  // namespace
}  // namespace infoleak::svc
