// §2's correlated-attribute decomposition: phone and address share joint
// information J; decomposing prevents the leakage measure from counting
// the shared knowledge twice.

#include "core/correlation.h"

#include <gtest/gtest.h>

#include "core/leakage.h"

namespace infoleak {
namespace {

constexpr double kTol = 1e-12;

/// The paper's J/A/P setup: Alice's phone and address both reveal her
/// neighborhood (the joint info J); remainders carry what is unique to
/// each.
CorrelationModel PaperModel() {
  CorrelationModel model;
  CorrelationModel::Group group;
  group.joint_label = "J";
  group.joint_weight = 1.0;
  group.members["P"] = {"P_rest", 1.0};
  group.members["A"] = {"A_rest", 1.0};
  group.joint_values[{"P", "555-0100"}] = "downtown";
  group.joint_values[{"A", "123 Main"}] = "downtown";
  EXPECT_TRUE(model.AddGroup(std::move(group)).ok());
  return model;
}

TEST(CorrelationModelTest, GroupValidation) {
  CorrelationModel model;
  CorrelationModel::Group too_small;
  too_small.joint_label = "J";
  too_small.members["P"] = {"P_rest", 1.0};
  EXPECT_TRUE(model.AddGroup(too_small).IsInvalidArgument());

  CorrelationModel::Group no_joint;
  no_joint.members["P"] = {"P_rest", 1.0};
  no_joint.members["A"] = {"A_rest", 1.0};
  EXPECT_TRUE(model.AddGroup(no_joint).IsInvalidArgument());

  CorrelationModel::Group bad_weight;
  bad_weight.joint_label = "J";
  bad_weight.joint_weight = -1.0;
  bad_weight.members["P"] = {"P_rest", 1.0};
  bad_weight.members["A"] = {"A_rest", 1.0};
  EXPECT_TRUE(model.AddGroup(bad_weight).IsInvalidArgument());

  CorrelationModel ok = PaperModel();
  CorrelationModel::Group overlapping;
  overlapping.joint_label = "J2";
  overlapping.members["P"] = {"P2", 1.0};  // P already claimed
  overlapping.members["X"] = {"X2", 1.0};
  EXPECT_EQ(ok.AddGroup(overlapping).code(), StatusCode::kAlreadyExists);
}

TEST(CorrelationModelTest, DecomposeSplitsMembers) {
  CorrelationModel model = PaperModel();
  EXPECT_TRUE(model.IsCorrelated("P"));
  EXPECT_TRUE(model.IsCorrelated("A"));
  EXPECT_FALSE(model.IsCorrelated("N"));

  // Knowing the phone yields J and P_rest (the paper: "if Eve discovers
  // Alice's phone number, she has values for J and P").
  Record phone_only{{"N", "Alice"}, {"P", "555-0100", 0.8}};
  Record d = model.Decompose(phone_only);
  EXPECT_EQ(d.size(), 3u);
  EXPECT_TRUE(d.Contains("N", "Alice"));
  EXPECT_DOUBLE_EQ(d.Confidence("P_rest", "555-0100"), 0.8);
  EXPECT_DOUBLE_EQ(d.Confidence("J", "downtown"), 0.8);
  EXPECT_FALSE(d.Contains("P", "555-0100"));
}

TEST(CorrelationModelTest, BothMembersYieldJointOnce) {
  // "if she has both address and phone, Eve has J, A and P" — one J.
  CorrelationModel model = PaperModel();
  Record both{{"P", "555-0100", 0.5}, {"A", "123 Main", 0.9}};
  Record d = model.Decompose(both);
  EXPECT_EQ(d.size(), 3u);  // J, P_rest, A_rest
  EXPECT_DOUBLE_EQ(d.Confidence("J", "downtown"), 0.9);  // max confidence
}

TEST(CorrelationModelTest, UnrecognizedValueDerivesNoJoint) {
  // A wrong/perturbed phone must not earn credit for the neighborhood.
  CorrelationModel model = PaperModel();
  Record wrong{{"P", "999-9999"}};
  Record d = model.Decompose(wrong);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_TRUE(d.Contains("P_rest", "999-9999"));
  EXPECT_FALSE(d.Contains("J", "downtown"));
}

TEST(CorrelationModelTest, EmptyModelIsIdentity) {
  CorrelationModel model;
  Record r{{"P", "555-0100"}, {"N", "Alice"}};
  EXPECT_EQ(model.Decompose(r), r);
}

TEST(CorrelationModelTest, ApplyWeightsZeroesRawLabels) {
  CorrelationModel model = PaperModel();
  WeightModel wm;
  ASSERT_TRUE(model.ApplyWeights(&wm).ok());
  EXPECT_DOUBLE_EQ(wm.Weight("J"), 1.0);
  EXPECT_DOUBLE_EQ(wm.Weight("P_rest"), 1.0);
  EXPECT_DOUBLE_EQ(wm.Weight("P"), 0.0);  // raw label can't double count
  EXPECT_DOUBLE_EQ(wm.Weight("A"), 0.0);
}

TEST(CorrelationTest, NoDoubleCountingInLeakage) {
  // The paper's motivating inequality: under the naive (undecomposed)
  // model, learning the phone *and* the address counts the shared
  // neighborhood twice; under the decomposition, the second correlated
  // attribute only adds its remainder.
  CorrelationModel model = PaperModel();
  Record p{{"N", "Alice"}, {"P", "555-0100"}, {"A", "123 Main"}};
  Record phone_only{{"N", "Alice"}, {"P", "555-0100"}};
  Record both{{"N", "Alice"}, {"P", "555-0100"}, {"A", "123 Main"}};

  WeightModel wm;
  ASSERT_TRUE(model.ApplyWeights(&wm).ok());
  Record dp = model.Decompose(p);
  ApproxLeakage approx;  // all confidences are 1, so Var[Y]=0: exact

  double leak_phone =
      approx.RecordLeakage(model.Decompose(phone_only), dp, wm).value();
  double leak_both =
      approx.RecordLeakage(model.Decompose(both), dp, wm).value();
  // Phone alone already buys N + J + P_rest = 3 of 4 decomposed units.
  EXPECT_NEAR(leak_phone, 2.0 * 3.0 / (3.0 + 4.0), 1e-9);
  EXPECT_NEAR(leak_both, 1.0, 1e-9);
  // The address's *increment* is one remainder unit (1/7 + ... specifically
  // 1 - 6/7), strictly less than what an undecomposed model would claim
  // (where A adds a full unit of a 3-attribute reference).
  WeightModel unit;
  double naive_phone = approx.RecordLeakage(phone_only, p, unit).value();
  double naive_both = approx.RecordLeakage(both, p, unit).value();
  EXPECT_GT(naive_both - naive_phone, leak_both - leak_phone);
}

TEST(CorrelationTest, DatabaseDecompositionPreservesProvenance) {
  CorrelationModel model = PaperModel();
  Database db;
  db.Add(Record{{"P", "555-0100"}});
  db.Add(Record{{"N", "Bob"}});
  Database d = model.Decompose(db);
  ASSERT_EQ(d.size(), 2u);
  EXPECT_TRUE(d[0].HasSource(0));
  EXPECT_TRUE(d[1].HasSource(1));
  EXPECT_TRUE(d[0].Contains("J", "downtown"));
  EXPECT_TRUE(d[1].Contains("N", "Bob"));
}

}  // namespace
}  // namespace infoleak
