#include "persist/durable_store.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>

#include "persist/codec.h"
#include "persist/crc32c.h"
#include "persist/snapshot.h"
#include "persist/wal.h"
#include "util/file.h"

namespace infoleak::persist {
namespace {

namespace fs = std::filesystem;

/// Fresh empty directory under the test temp root.
std::string TempDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

std::string FileContents(const std::string& path) {
  auto r = ReadFileToString(path);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value_or("");
}

// ---------------------------------------------------------------------------
// CRC32C
// ---------------------------------------------------------------------------

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 appendix B.4 test vectors.
  EXPECT_EQ(Crc32c(""), 0x00000000u);
  EXPECT_EQ(Crc32c(std::string(32, '\0')), 0x8A9136AAu);
  EXPECT_EQ(Crc32c(std::string(32, '\xff')), 0x62A8AB43u);
  std::string ascending;
  for (int i = 0; i < 32; ++i) ascending.push_back(static_cast<char>(i));
  EXPECT_EQ(Crc32c(ascending), 0x46DD794Eu);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
}

TEST(Crc32cTest, ExtendEqualsOneShot) {
  const std::string data = "the write-ahead log of record stores";
  for (std::size_t split = 0; split <= data.size(); ++split) {
    uint32_t crc = Crc32cExtend(0, data.data(), split);
    crc = Crc32cExtend(crc, data.data() + split, data.size() - split);
    EXPECT_EQ(crc, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32cTest, SingleBitFlipChangesChecksum) {
  std::string data = "sensitive payload";
  const uint32_t clean = Crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32c(data), clean) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

TEST(CodecTest, PrimitivesRoundTrip) {
  std::string buf;
  PutU32(&buf, 0xDEADBEEFu);
  PutU64(&buf, 0x0123456789ABCDEFull);
  PutF64(&buf, 0.1 + 0.2);  // not representable exactly: bit-exactness test
  PutString(&buf, "héllo\0world");

  Cursor cur(buf);
  EXPECT_EQ(cur.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(cur.ReadU64().value(), 0x0123456789ABCDEFull);
  const double f = cur.ReadF64().value();
  EXPECT_EQ(f, 0.1 + 0.2);  // EXPECT_EQ, not NEAR: must be the same bits
  EXPECT_EQ(cur.ReadString().value(), "héllo");
  EXPECT_TRUE(cur.AtEnd());
}

TEST(CodecTest, RecordRoundTripIsBitExact) {
  Record record{{"name", "alice", 1.0 / 3.0}, {"city", "zurich", 0.1234}};
  std::string buf;
  EncodeRecord(&buf, record);
  Cursor cur(buf);
  auto decoded = DecodeRecord(&cur);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(cur.AtEnd());
  EXPECT_EQ(*decoded, record);
}

TEST(CodecTest, CursorRejectsOverrun) {
  std::string buf;
  PutU32(&buf, 7);
  Cursor cur(buf);
  EXPECT_TRUE(cur.ReadU64().status().code() == StatusCode::kCorruption);
  // A corrupt string length must not drive a giant allocation or overrun.
  std::string lie;
  PutU32(&lie, 0xFFFFFFFFu);
  lie += "abc";
  Cursor cur2(lie);
  EXPECT_EQ(cur2.ReadString().status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// WAL
// ---------------------------------------------------------------------------

TEST(WalTest, ParseFsyncModeRoundTrips) {
  for (FsyncMode mode :
       {FsyncMode::kAlways, FsyncMode::kInterval, FsyncMode::kNever}) {
    auto parsed = ParseFsyncMode(FsyncModeName(mode));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, mode);
  }
  EXPECT_FALSE(ParseFsyncMode("sometimes").ok());
}

TEST(WalTest, AppendAndReplay) {
  const std::string path = TempDir("wal_append") + "/wal.log";
  {
    auto wal = WalWriter::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    ASSERT_TRUE(wal->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE(wal->Append(Record{{"N", "b", 0.25}, {"P", "1", 1.0}}).ok());
    EXPECT_GT(wal->offset(), 0u);
  }
  std::vector<Record> replayed;
  auto result = ReplayWal(
      path, 0,
      [&](Record r) {
        replayed.push_back(std::move(r));
        return Status::OK();
      },
      /*truncate_damage=*/false);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->damage.ok());
  EXPECT_EQ(result->frames, 2u);
  EXPECT_EQ(result->truncated_bytes, 0u);
  ASSERT_EQ(replayed.size(), 2u);
  EXPECT_TRUE(replayed[0].Contains("N", "a"));
  EXPECT_TRUE(replayed[1].Contains("P", "1"));
}

TEST(WalTest, MissingFileReplaysEmpty) {
  auto result = ReplayWal(
      TempDir("wal_missing") + "/nope.log", 0,
      [](Record) { return Status::OK(); }, false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->frames, 0u);
  EXPECT_TRUE(result->damage.ok());
}

TEST(WalTest, StartOffsetPastEndReplaysEmptyTail) {
  const std::string path = TempDir("wal_past_end") + "/wal.log";
  {
    auto wal = WalWriter::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Record{{"N", "a", 0.5}}).ok());
  }
  // A snapshot taken just before a compaction can cover an offset larger
  // than the post-reset log; that must be an empty tail, not an error.
  auto result = ReplayWal(
      path, 1u << 20, [](Record) { return Status::OK(); }, false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->frames, 0u);
  EXPECT_TRUE(result->damage.ok());
}

TEST(WalTest, TornFrameTruncatesAndKeepsEarlierFrames) {
  const std::string dir = TempDir("wal_torn");
  const std::string path = dir + "/wal.log";
  uint64_t clean_offset = 0;
  {
    auto wal = WalWriter::Open(path, FsyncMode::kNever);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE(wal->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE(wal->Append(Record{{"N", "b", 0.5}}).ok());
    clean_offset = wal->offset();
  }
  // Simulate a torn write: half a frame of garbage at the tail. Write with
  // an explicit length — the header's embedded NULs end a C-string early.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x40\x00\x00\x00gar", 7);
  }
  std::size_t replayed = 0;
  auto result = ReplayWal(
      path, 0,
      [&](Record) {
        ++replayed;
        return Status::OK();
      },
      /*truncate_damage=*/true);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(replayed, 2u);
  EXPECT_FALSE(result->damage.ok());
  EXPECT_EQ(result->damage.code(), StatusCode::kCorruption);
  EXPECT_EQ(result->end_offset, clean_offset);
  EXPECT_EQ(result->truncated_bytes, 7u);
  EXPECT_EQ(fs::file_size(path), clean_offset);  // file physically truncated

  // After truncation, appending resumes at the clean boundary.
  auto wal = WalWriter::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->offset(), clean_offset);
}

TEST(WalTest, ResetTruncatesToZero) {
  const std::string path = TempDir("wal_reset") + "/wal.log";
  auto wal = WalWriter::Open(path, FsyncMode::kNever);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE(wal->Append(Record{{"N", "a", 0.5}}).ok());
  ASSERT_TRUE(wal->Reset().ok());
  EXPECT_EQ(wal->offset(), 0u);
  EXPECT_EQ(fs::file_size(path), 0u);
  ASSERT_TRUE(wal->Append(Record{{"N", "b", 0.5}}).ok());
  std::size_t frames = 0;
  auto result = ReplayWal(
      path, 0,
      [&](Record) {
        ++frames;
        return Status::OK();
      },
      false);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(frames, 1u);
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

TEST(SnapshotTest, EncodeDecodeRoundTrip) {
  Record a{{"name", "alice", 0.75}, {"city", "zurich", 0.5}};
  Record b{{"name", "bob", 0.25}, {"city", "zurich", 1.0}};
  std::string bytes = EncodeSnapshot({&a, &b}, 12345);
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->wal_offset, 12345u);
  ASSERT_EQ(decoded->records.size(), 2u);
  EXPECT_EQ(decoded->records[0], a);
  EXPECT_EQ(decoded->records[1], b);
}

TEST(SnapshotTest, StringPoolInternsRepeatedValues) {
  // 100 records sharing one label/value vocabulary must not serialize the
  // strings 100 times: the pool makes the format compact.
  Record shared{{"label-with-some-length", "value-with-some-length", 0.5}};
  std::vector<const Record*> records(100, &shared);
  const std::string bytes = EncodeSnapshot(records, 0);
  constexpr std::string_view kVocabulary =
      "label-with-some-length value-with-some-length";
  EXPECT_LT(bytes.size(), 100 * kVocabulary.size());
  auto decoded = DecodeSnapshot(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->records.size(), 100u);
  EXPECT_EQ(decoded->records[99], shared);
}

TEST(SnapshotTest, RejectsDamage) {
  Record a{{"N", "a", 0.5}};
  std::string bytes = EncodeSnapshot({&a}, 0);
  EXPECT_FALSE(DecodeSnapshot("junk").ok());
  EXPECT_FALSE(DecodeSnapshot(bytes.substr(0, bytes.size() - 1)).ok());
  std::string flipped = bytes;
  flipped[bytes.size() / 2] ^= 0x01;
  auto damaged = DecodeSnapshot(flipped);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kCorruption);
}

TEST(SnapshotTest, FileNameRoundTrips) {
  EXPECT_EQ(SnapshotFileName(0x2a), "snapshot-000000000000002a.snap");
  EXPECT_EQ(ParseSnapshotFileName("snapshot-000000000000002a.snap").value(),
            0x2au);
  EXPECT_FALSE(ParseSnapshotFileName("wal.log").ok());
  EXPECT_FALSE(ParseSnapshotFileName("snapshot-xyz.snap").ok());
  // Lexicographic order == record-count order (how recovery finds newest).
  EXPECT_LT(SnapshotFileName(9), SnapshotFileName(10));
  EXPECT_LT(SnapshotFileName(255), SnapshotFileName(256));
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

TEST(DurableStoreTest, FreshDirectoryStartsEmpty) {
  auto store = DurableStore::Open(TempDir("ds_fresh"));
  ASSERT_TRUE(store.ok()) << store.status().ToString();
  EXPECT_EQ((*store)->store().size(), 0u);
  EXPECT_EQ((*store)->recovery().snapshot_records, 0u);
  EXPECT_EQ((*store)->recovery().replayed_frames, 0u);
  EXPECT_TRUE((*store)->recovery().wal_damage.ok());
}

TEST(DurableStoreTest, AppendsSurviveReopen) {
  const std::string dir = TempDir("ds_reopen");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    EXPECT_EQ((*store)->Append(Record{{"N", "a", 0.5}}).value(), 0u);
    EXPECT_EQ((*store)->Append(Record{{"N", "b", 0.25}}).value(), 1u);
  }
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->store().size(), 2u);
  EXPECT_EQ((*reopened)->recovery().replayed_frames, 2u);
  EXPECT_TRUE((*reopened)->store().Get(0)->Contains("N", "a"));
  EXPECT_TRUE((*reopened)->store().Get(1)->Contains("N", "b"));
}

TEST(DurableStoreTest, SnapshotShortensReplay) {
  const std::string dir = TempDir("ds_snapshot");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "b", 0.5}}).ok());
    ASSERT_TRUE((*store)->Snapshot().ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "c", 0.5}}).ok());
  }
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->store().size(), 3u);
  EXPECT_EQ((*reopened)->recovery().snapshot_records, 2u);
  EXPECT_EQ((*reopened)->recovery().replayed_frames, 1u);
  EXPECT_TRUE((*reopened)->store().Get(2)->Contains("N", "c"));
}

TEST(DurableStoreTest, CompactFoldsWalIntoSnapshot) {
  const std::string dir = TempDir("ds_compact");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "b", 0.5}}).ok());
    ASSERT_TRUE((*store)->Compact().ok());
    EXPECT_EQ((*store)->wal_offset(), 0u);
    // Appends after compaction land in the fresh log...
    ASSERT_TRUE((*store)->Append(Record{{"N", "c", 0.5}}).ok());
  }
  // ...and must replay on recovery (the snapshot covers offset 0).
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->store().size(), 3u);
  EXPECT_EQ((*reopened)->recovery().snapshot_records, 2u);
  EXPECT_EQ((*reopened)->recovery().replayed_frames, 1u);

  // Compaction prunes to a single snapshot file plus the wal.
  std::size_t snapshots = 0;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (ParseSnapshotFileName(entry.path().filename().string()).ok()) {
      ++snapshots;
    }
  }
  EXPECT_EQ(snapshots, 1u);
}

TEST(DurableStoreTest, DamagedSnapshotFallsBackToOlderOne) {
  const std::string dir = TempDir("ds_bad_snapshot");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE((*store)->Snapshot().ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "b", 0.5}}).ok());
    ASSERT_TRUE((*store)->Snapshot().ok());
  }
  // Corrupt the newest snapshot; the older one plus the log still recover
  // the full state.
  const std::string newest = dir + "/" + SnapshotFileName(2);
  std::string bytes = FileContents(newest);
  bytes[bytes.size() / 2] ^= 0x01;
  ASSERT_TRUE(WriteStringToFile(newest, bytes).ok());

  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ((*reopened)->recovery().skipped_snapshots, 1u);
  EXPECT_EQ((*reopened)->recovery().snapshot_records, 1u);
  EXPECT_EQ((*reopened)->store().size(), 2u);
  EXPECT_TRUE((*reopened)->store().Get(1)->Contains("N", "b"));
}

TEST(DurableStoreTest, AutoSnapshotTriggersInBackground) {
  const std::string dir = TempDir("ds_auto_snapshot");
  DurableStore::Options opts;
  opts.fsync = FsyncMode::kNever;
  opts.snapshot_every = 4;
  auto store = DurableStore::Open(dir, opts);
  ASSERT_TRUE(store.ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        (*store)->Append(Record{{"N", std::to_string(i), 0.5}}).ok());
  }
  // The snapshot lands asynchronously; poll briefly rather than flake.
  bool seen = false;
  for (int tries = 0; tries < 200 && !seen; ++tries) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (ParseSnapshotFileName(entry.path().filename().string()).ok()) {
        seen = true;
      }
    }
    if (!seen) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(seen) << "no background snapshot after 8 appends with "
                       "snapshot_every=4";
}

TEST(DurableStoreTest, IntervalModeFlushesInBackground) {
  const std::string dir = TempDir("ds_interval");
  DurableStore::Options opts;
  opts.fsync = FsyncMode::kInterval;
  opts.fsync_interval_ms = 5;
  {
    auto store = DurableStore::Open(dir, opts);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
  }
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->store().size(), 1u);
}

TEST(DurableStoreTest, RecoverySummaryMentionsTheParts) {
  const std::string dir = TempDir("ds_summary");
  {
    auto store = DurableStore::Open(dir);
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "a", 0.5}}).ok());
    ASSERT_TRUE((*store)->Snapshot().ok());
    ASSERT_TRUE((*store)->Append(Record{{"N", "b", 0.5}}).ok());
  }
  auto reopened = DurableStore::Open(dir);
  ASSERT_TRUE(reopened.ok());
  const std::string summary = (*reopened)->recovery().Summary();
  EXPECT_NE(summary.find("recovered 2 records"), std::string::npos) << summary;
  EXPECT_NE(summary.find("snapshot-"), std::string::npos) << summary;
  EXPECT_NE(summary.find("1 replayed"), std::string::npos) << summary;
}

}  // namespace
}  // namespace infoleak::persist
