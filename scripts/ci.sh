#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, and run the full test suite twice —
# once as a plain Release build and once under AddressSanitizer
# (-DINFOLEAK_SANITIZE=address). Both runs must be 100% green.
#
# Usage: scripts/ci.sh [jobs]
#
# Build trees land in build-ci-release/ and build-ci-asan/ at the repo
# root (covered by the build-*/ gitignore pattern) so they never clobber
# a developer's ./build tree.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local dir="$1"
  shift
  echo "=== [${dir}] configure: $* ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [${dir}] build (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${dir}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

run_pass build-ci-release
run_pass build-ci-asan -DINFOLEAK_SANITIZE=address

echo "=== CI OK: plain Release and ASan suites both green ==="
