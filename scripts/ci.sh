#!/usr/bin/env bash
# Tier-1 CI gate: configure, build, and run the full test suite three
# times — a plain Release build, an AddressSanitizer build
# (-DINFOLEAK_SANITIZE=address), and a forced-scalar build
# (-DINFOLEAK_FORCE_SCALAR=ON, pinning the SIMD kernel tables to the
# scalar reference) — plus a ThreadSanitizer pass
# (-DINFOLEAK_SANITIZE=thread) over the concurrency-heavy test subset.
# All runs must be 100% green. Each full pass also end-to-end smoke-tests
# the query service (serve on an ephemeral port, round-trip
# ping/append/leak/set-leak/stats through `infoleak call`, then SIGTERM
# and require a clean graceful drain), smoke-tests the incremental leakage
# index (index-path set-leaks under appends, `subscribe` deltas, compact
# mid-load, kill -9 rebuild), smoke-tests the anonymization frontier
# (`infoleak frontier` on a small grid: worst-person leakage must be
# non-increasing in k and the per-point phase accounting present),
# and runs the differential selfcheck
# harness (`infoleak selfcheck`): every engine and path must agree on
# 2000 adversarial cases plus the checked-in regression corpus.
#
# Usage: scripts/ci.sh [jobs]
#
# Build trees land in build-ci-release/, build-ci-asan/, build-ci-scalar/,
# and build-ci-tsan/ at the repo root (covered by the build-*/ gitignore
# pattern) so they never clobber a developer's ./build tree.
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

run_pass() {
  local dir="$1"
  shift
  echo "=== [${dir}] configure: $* ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release "$@"
  echo "=== [${dir}] build (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${dir}] ctest ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}"
}

# Serves a real store on an ephemeral port, exercises every hot verb via
# the one-shot client, and checks that SIGTERM drains cleanly (exit 0 and
# the drain summary in the log).
smoke_serve() {
  local dir="$1"
  local bin="${dir}/src/cli/infoleak"
  local log="${dir}/serve_smoke.log"
  echo "=== [${dir}] serve smoke test ==="
  "${bin}" serve --db examples/data/store_records.csv --port 0 \
      --workers 2 >"${log}" 2>&1 &
  local pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "${log}" | head -n1)"
    [[ -n "${port}" ]] && break
    kill -0 "${pid}" 2>/dev/null || break
    sleep 0.1
  done
  if [[ -z "${port}" ]]; then
    echo "serve never reported a listening port:"
    cat "${log}"
    kill "${pid}" 2>/dev/null || true
    return 1
  fi
  local ref='{<N, n1>, <C, c1>, <P, p1>}'
  "${bin}" call --port "${port}" --verb ping | grep -q '"pong":true'
  "${bin}" call --port "${port}" --verb append \
      --body '{"record":"{<N, smoke, 1>}"}' | grep -q '"appended":'
  "${bin}" call --port "${port}" --verb leak \
      --body "{\"record_id\":0,\"reference\":\"${ref}\"}" \
      | grep -q '"leakage":'
  "${bin}" call --port "${port}" --verb set-leak \
      --body "{\"reference\":\"${ref}\"}" | grep -q '"argmax":'
  "${bin}" call --port "${port}" --verb stats | grep -q '"records":'
  # Observability plane: drive a little more set-leak load, then demand the
  # event log saw it. The enriched stats verb must report event accounting,
  # the slow-query ring, and build identity; `tail` must stream per-phase
  # breakdowns (zero phases are omitted from the JSON, so a present "eval"
  # key is a non-zero eval time), and the slow view must agree.
  for _ in 1 2 3; do
    "${bin}" call --port "${port}" --verb set-leak \
        --body "{\"reference\":\"${ref}\"}" >/dev/null
  done
  local stats_out
  stats_out="$("${bin}" call --port "${port}" --verb stats)"
  echo "${stats_out}" | grep -q '"events":{"recorded":'
  echo "${stats_out}" | grep -q '"slow":\['
  echo "${stats_out}" | grep -q '"build":{"version":'
  local tail_out
  tail_out="$("${bin}" tail --port "${port}" --count 50 --min-micros 1)"
  echo "${tail_out}" | grep -q '"verb":"set-leak"'
  echo "${tail_out}" | grep '"verb":"set-leak"' | grep -q '"queue":'
  echo "${tail_out}" | grep '"verb":"set-leak"' | grep -q '"eval":'
  echo "${tail_out}" | grep '"verb":"set-leak"' | grep -q '"serialize":'
  "${bin}" top --port "${port}" | grep -q 'slow-query ring:'
  "${bin}" tail --port "${port}" --slow --count 5 | grep -q '"total_us":'
  kill -TERM "${pid}"
  wait "${pid}"  # graceful drain must exit 0 (set -e aborts otherwise)
  grep -q "drained" "${log}"
  echo "=== [${dir}] serve smoke OK (port ${port}) ==="
}

# Durability smoke: serve a durable store with --fsync always, append
# through the network path, kill -9 (no drain, no flush courtesy), restart
# on the same data dir, and require every acknowledged append plus a
# bit-identical leakage answer. Finishes with an offline `compact` and one
# more recovery to prove the rewritten snapshot stands alone.
smoke_crash() {
  local dir="$1"
  local bin="${dir}/src/cli/infoleak"
  local log="${dir}/crash_smoke.log"
  local data
  data="$(mktemp -d "${dir}/crash-data-XXXXXX")"
  echo "=== [${dir}] crash-recovery smoke test ==="

  start_durable() {
    "${bin}" serve --data-dir "${data}" --fsync always --port 0 \
        --workers 2 >"${log}" 2>&1 &
    pid=$!
    port=""
    for _ in $(seq 1 100); do
      port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "${log}" | head -n1)"
      [[ -n "${port}" ]] && break
      kill -0 "${pid}" 2>/dev/null || break
      sleep 0.1
    done
    if [[ -z "${port}" ]]; then
      echo "durable serve never reported a listening port:"
      cat "${log}"
      kill "${pid}" 2>/dev/null || true
      return 1
    fi
  }

  local pid port
  start_durable
  local n=25
  for i in $(seq 1 "${n}"); do
    "${bin}" call --port "${port}" --verb append \
        --body "{\"record\":\"{<N, crash${i}, 0.9>, <C, c${i}, 0.8>}\"}" \
        | grep -q '"appended":'
  done
  local ref='{<N, crash1>, <C, c1>}'
  local leak_before leak_after
  leak_before="$("${bin}" call --port "${port}" --verb leak \
      --body "{\"record_id\":0,\"reference\":\"${ref}\"}")"
  echo "${leak_before}" | grep -q '"leakage":'
  # No SIGTERM courtesy: the acknowledged appends must already be on disk.
  kill -9 "${pid}"
  wait "${pid}" 2>/dev/null || true

  start_durable
  "${bin}" call --port "${port}" --verb stats \
      | grep -q "\"records\":${n}\b"
  leak_after="$("${bin}" call --port "${port}" --verb leak \
      --body "{\"record_id\":0,\"reference\":\"${ref}\"}")"
  kill -TERM "${pid}"
  wait "${pid}"
  if [[ "${leak_before}" != "${leak_after}" ]]; then
    echo "leakage answer changed across kill -9 recovery:"
    echo "  before: ${leak_before}"
    echo "  after:  ${leak_after}"
    return 1
  fi

  # Offline compact, then one more recovery from the snapshot alone.
  "${bin}" compact --data-dir "${data}" | grep -q "compacted: ${n} record"
  start_durable
  "${bin}" call --port "${port}" --verb stats \
      | grep -q "\"records\":${n}\b"
  kill -TERM "${pid}"
  wait "${pid}"
  rm -rf "${data}"
  echo "=== [${dir}] crash-recovery smoke OK (${n} appends survived kill -9) ==="
}

# Incremental-index smoke: serve a durable store with the leakage index on
# (the default), interleave appends with set-leak load and require every
# answer off the index path, stream the per-append deltas over `subscribe`,
# compact mid-load (WAL reset -> epoch bump -> rebuild), check the stats
# hit/invalidation counters, then kill -9 and require the recovered index
# to reproduce the pre-crash answer bit for bit.
smoke_inc() {
  local dir="$1"
  local bin="${dir}/src/cli/infoleak"
  local log="${dir}/inc_smoke.log"
  local data
  data="$(mktemp -d "${dir}/inc-data-XXXXXX")"
  echo "=== [${dir}] incremental-index smoke test ==="

  local pid port
  start_inc() {
    "${bin}" serve --data-dir "${data}" --fsync always --port 0 \
        --workers 2 >"${log}" 2>&1 &
    pid=$!
    port=""
    for _ in $(seq 1 100); do
      port="$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' "${log}" | head -n1)"
      [[ -n "${port}" ]] && break
      kill -0 "${pid}" 2>/dev/null || break
      sleep 0.1
    done
    if [[ -z "${port}" ]]; then
      echo "inc serve never reported a listening port:"
      cat "${log}"
      kill "${pid}" 2>/dev/null || true
      return 1
    fi
  }

  start_inc
  local ref='{<N, inc1>, <C, c1>}'
  local body="{\"reference\":\"${ref}\"}"
  "${bin}" call --port "${port}" --verb append \
      --body '{"record":"{<N, inc1, 0.9>, <C, c1, 0.8>}"}' >/dev/null
  # The first set-leak registers the index; every answer must come off it.
  "${bin}" call --port "${port}" --verb set-leak --body "${body}" \
      | grep -q '"path":"index"'
  for i in $(seq 2 20); do
    "${bin}" call --port "${port}" --verb append \
        --body "{\"record\":\"{<N, inc${i}, 0.9>, <C, c${i}, 0.8>}\"}" \
        >/dev/null
    if (( i % 5 == 0 )); then
      "${bin}" call --port "${port}" --verb set-leak --body "${body}" \
          | grep -q '"path":"index"'
    fi
  done
  # The change feed streams the per-append deltas with a resumable cursor.
  "${bin}" subscribe --port "${port}" --reference-text "${ref}" \
      --max-events 5 | grep -q '"seq":1'
  # Compact mid-load: WAL reset -> epoch bump -> the index rebuilds and the
  # next query still answers off it.
  "${bin}" call --port "${port}" --verb compact | grep -q '"epoch":'
  "${bin}" call --port "${port}" --verb append \
      --body '{"record":"{<N, inc21, 0.9>, <C, c21, 0.8>}"}' >/dev/null
  local answer_before
  answer_before="$("${bin}" call --port "${port}" --verb set-leak \
      --body "${body}")"
  echo "${answer_before}" | grep -q '"path":"index"'
  echo "${answer_before}" | grep -q '"records":21'
  local stats_out
  stats_out="$("${bin}" call --port "${port}" --verb stats)"
  echo "${stats_out}" | grep -q '"index":{"enabled":true'
  echo "${stats_out}" | grep -Eq '"hits":[1-9]'
  echo "${stats_out}" | grep -Eq '"invalidations":[1-9]'
  # kill -9: recovery replays snapshot+WAL and rebuilds the index; the
  # answer must not move by a bit.
  kill -9 "${pid}"
  wait "${pid}" 2>/dev/null || true
  start_inc
  local answer_after
  answer_after="$("${bin}" call --port "${port}" --verb set-leak \
      --body "${body}")"
  kill -TERM "${pid}"
  wait "${pid}"
  if [[ "${answer_before}" != "${answer_after}" ]]; then
    echo "set-leak answer changed across kill -9 index rebuild:"
    echo "  before: ${answer_before}"
    echo "  after:  ${answer_after}"
    return 1
  fi
  rm -rf "${data}"
  echo "=== [${dir}] incremental-index smoke OK (21 records, index path) ==="
}

# Frontier smoke: sweep a small anonymization grid through the whole
# mechanism-evaluation pipeline (lattice search -> generalized ER ->
# per-person leakage) and require (a) worst-person leakage non-increasing
# in k — the paper's core monotonicity, any ER or lattice regression
# breaks it — and (b) the per-point phase accounting present when asked.
smoke_frontier() {
  local dir="$1"
  local bin="${dir}/src/cli/infoleak"
  echo "=== [${dir}] frontier smoke test ==="
  local out
  out="$("${bin}" frontier --rows 40 --ks 2,5,10 --phases)"
  echo "${out}" | grep -c '"found":true' | grep -qx 3
  echo "${out}" | grep -v '^#' \
    | sed -n 's/.*"worst_leakage":\([0-9.eE+-]*\).*/\1/p' \
    | awk 'NR > 1 && $1 > prev + 1e-12 { exit 1 } { prev = $1 }'
  echo "${out}" | grep '^# phases' \
    | grep -q 'anonymize_us=[0-9]* resolve_us=[0-9]* eval_us=[0-9]*'
  echo "=== [${dir}] frontier smoke OK (worst leakage monotone in k) ==="
}

# Differential selfcheck smoke: replay the regression corpus, then fuzz
# 2000 adversarial cases through every engine and path (offline, served,
# durable-recovery). Any cross-engine disagreement fails the gate.
smoke_selfcheck() {
  local dir="$1"
  local bin="${dir}/src/cli/infoleak"
  echo "=== [${dir}] selfcheck smoke test ==="
  "${bin}" selfcheck --cases 2000 --seed 1 \
      --corpus tests/corpus/selfcheck --no-corpus-write \
      | grep -q "all engines and paths agree"
  # Second sweep with the measure-family checks pinned on explicitly and a
  # different seed: cross-measure orderings, brute-force truths, and the
  # modal-tie/divergence case shapes (docs/measures.md).
  "${bin}" selfcheck --measures all --cases 2000 --seed 2 \
      --corpus tests/corpus/selfcheck --no-corpus-write \
      | grep -q "all engines and paths agree"
  echo "=== [${dir}] selfcheck smoke OK (2x2000 cases + corpus) ==="
}

# ThreadSanitizer pass over the concurrency-heavy subset: the server's
# worker pool and drain, the sharded metrics registry, the durable store's
# background fsync/snapshot thread, and the selfcheck harness (which spins
# a loopback server and a durable store inside one process).
run_tsan_pass() {
  local dir="build-ci-tsan"
  echo "=== [${dir}] configure: -DINFOLEAK_SANITIZE=thread ==="
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release -DINFOLEAK_SANITIZE=thread
  echo "=== [${dir}] build (-j${JOBS}) ==="
  cmake --build "${dir}" -j "${JOBS}"
  echo "=== [${dir}] ctest (concurrency subset) ==="
  ctest --test-dir "${dir}" --output-on-failure -j "${JOBS}" -R \
    'Concurrency|Columnar|SvcServer|SvcQueue|SvcService|Persist|Streaming|Metrics|Trace|EventLog|SelfCheckRun|Inc|Measure'
}

run_pass build-ci-release
smoke_serve build-ci-release
smoke_crash build-ci-release
smoke_inc build-ci-release
smoke_frontier build-ci-release
smoke_selfcheck build-ci-release
run_pass build-ci-asan -DINFOLEAK_SANITIZE=address
smoke_serve build-ci-asan
smoke_crash build-ci-asan
smoke_inc build-ci-asan
smoke_frontier build-ci-asan
smoke_selfcheck build-ci-asan
# Forced-scalar pass: the SIMD kernel tables are compiled out, so every
# engine runs the scalar reference kernels. The full suite plus selfcheck
# must stay green — this is what pins the wide tables to the scalar ones
# (any divergence shows up as a golden/selfcheck failure in exactly one of
# the two passes).
run_pass build-ci-scalar -DINFOLEAK_FORCE_SCALAR=ON
smoke_selfcheck build-ci-scalar
run_tsan_pass

echo "=== CI OK: Release, ASan, forced-scalar, and TSan(concurrency subset) all green ==="
