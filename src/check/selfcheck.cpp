#include "check/selfcheck.h"

#include <unistd.h>

#include <filesystem>
#include <functional>
#include <memory>
#include <system_error>
#include <utility>

#include "check/case_gen.h"
#include "check/corpus.h"
#include "check/shrink.h"
#include "core/column_bank.h"
#include "core/database.h"
#include "core/leakage.h"
#include "core/measure_family.h"
#include "core/record_io.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "persist/durable_store.h"
#include "svc/json.h"
#include "svc/loopback.h"
#include "util/string_util.h"

namespace infoleak::check {
namespace {

namespace fs = std::filesystem;

std::string RenderValue(const Result<double>& v) {
  if (!v.ok()) return "<error: " + v.status().message() + ">";
  return FormatDoubleRoundTrip(*v);
}

bool SameOutcome(const Result<double>& a, const Result<double>& b) {
  if (a.ok() != b.ok()) return false;
  return !a.ok() || *a == *b;  // both failing counts as agreement
}

/// Served-path oracle: the case is also asked over the wire (a loopback
/// `infoleak serve`) with the record and reference inlined as text, and each
/// engine's served answer must be bit-identical to its offline one —
/// including agreeing on *failing*. The wire renders doubles with
/// round-trip precision, so bit-identity across the text hop is a fair
/// demand.
class ServedChecker {
 public:
  explicit ServedChecker(const OracleConfig& oracle)
      : server_(RecordStore()),
        naive_max_(oracle.naive_max),
        check_pml_(oracle.check_pml),
        check_guesswork_(oracle.check_guesswork),
        check_overunder_(oracle.check_overunder) {}

  Status Start() {
    INFOLEAK_RETURN_IF_ERROR(server_.Start());
    INFOLEAK_ASSIGN_OR_RETURN(client_, server_.NewClient());
    // Event-log accounting baseline: the loopback server shares the
    // process-global EventLog, and nothing else in a selfcheck run serves
    // requests, so every recorded event past this point is one of ours.
    baseline_recorded_ = obs::EventLog::Global().recorded();
    return Status::OK();
  }

  Status Stop() { return server_.Stop(); }

  /// Observability invariants over the whole served run, checked once at
  /// the end: every completed wire request must have produced exactly one
  /// event-log record (the server emits before it responds, so a received
  /// reply guarantees the event is already recorded), and the ids the log
  /// hands back must be unique and strictly increasing. These findings are
  /// not case-reproducible, so the caller must not shrink them or write
  /// them to the corpus.
  void CheckObs(std::size_t* comparisons, std::vector<Finding>* findings) {
    ++*comparisons;
    const uint64_t delta =
        obs::EventLog::Global().recorded() - baseline_recorded_;
    if (delta != calls_) {
      findings->push_back(
          Finding{"obs",
                  "event-log accounting broke: " + std::to_string(calls_) +
                      " served request(s) but " + std::to_string(delta) +
                      " event(s) recorded (exactly one per request expected)",
                  CheckCase{}});
    }
    // Unique ids: pull the freshest window the wire allows and demand the
    // served ids come back strictly increasing (Recent sorts by id, so a
    // duplicate would surface as a non-increasing neighbor).
    ++*comparisons;
    svc::JsonValue body = svc::JsonValue::Object();
    body.Set("count", svc::JsonValue::Number(1000.0));
    Result<svc::JsonValue> response = client_.CallVerb("tail", std::move(body));
    if (!response.ok()) {
      findings->push_back(Finding{
          "obs", "tail over loopback failed: " + response.status().message(),
          CheckCase{}});
      return;
    }
    const svc::JsonValue* events = response->Find("events");
    if (events == nullptr || !events->is_array()) {
      findings->push_back(Finding{
          "obs", "tail response carries no \"events\" array", CheckCase{}});
      return;
    }
    double prev_id = 0;
    for (const svc::JsonValue& event : events->items()) {
      const double id = event.GetNumber("id", 0.0);
      if (id <= prev_id) {
        findings->push_back(
            Finding{"obs",
                    "request ids not unique/increasing in the event log: id " +
                        std::to_string(static_cast<uint64_t>(id)) +
                        " follows id " +
                        std::to_string(static_cast<uint64_t>(prev_id)),
                    CheckCase{}});
        return;
      }
      prev_id = id;
    }
  }

  void Check(const CheckCase& c, std::size_t* comparisons,
             std::vector<Finding>* findings) {
    for (const auto& v : OfflineValues(c)) {
      ++*comparisons;
      const Result<double> served = Served(c, v.name, v.is_measure);
      if (!SameOutcome(v.offline, served)) {
        findings->push_back(Finding{
            "served",
            std::string(v.name) + ": offline " + RenderValue(v.offline) +
                " vs served " + RenderValue(served),
            c});
      }
    }
  }

  /// Shrink predicate: does any served/offline mismatch remain?
  bool Disagrees(const CheckCase& c) {
    for (const auto& v : OfflineValues(c)) {
      if (!SameOutcome(v.offline, Served(c, v.name, v.is_measure))) {
        return true;
      }
    }
    return false;
  }

 private:
  /// One wire comparison: `name` is either an engine name (is_measure
  /// false, sent as the request's "engine") or a measure name (sent as
  /// "measure" — the field the serving layer resolves to its singleton).
  struct WireValue {
    const char* name;
    bool is_measure;
    Result<double> offline;
  };

  std::vector<WireValue> OfflineValues(const CheckCase& c) {
    std::vector<WireValue> values;
    values.push_back({"auto", false, auto_.RecordLeakage(c.r, c.p, c.wm)});
    values.push_back({"approx", false, approx_.RecordLeakage(c.r, c.p, c.wm)});
    values.push_back({"exact", false, exact_.RecordLeakage(c.r, c.p, c.wm)});
    // The service's naive engine has a larger enumeration cap than the
    // oracle's; compare only where both sides are comfortably inside it.
    if (c.r.size() <= naive_max_) {
      values.push_back({"naive", false, naive_.RecordLeakage(c.r, c.p, c.wm)});
    }
    auto add_measure = [&](Measure m) {
      const LeakageEngine* e = MeasureEngineSingleton(m);
      values.push_back({MeasureName(m).data(), true,
                        e->RecordLeakage(c.r, c.p, c.wm)});
    };
    if (check_pml_) add_measure(Measure::kPml);
    if (check_guesswork_) add_measure(Measure::kGuesswork);
    if (check_overunder_) {
      add_measure(Measure::kUnder);
      add_measure(Measure::kOver);
    }
    return values;
  }

  Result<double> Served(const CheckCase& c, const std::string& name,
                        bool is_measure) {
    svc::JsonValue body = svc::JsonValue::Object();
    body.Set("record", svc::JsonValue::Str(FormatRecord(c.r)));
    body.Set("reference", svc::JsonValue::Str(FormatRecord(c.p)));
    const std::string weights = FormatWeights(c.wm);
    if (!weights.empty()) body.Set("weights", svc::JsonValue::Str(weights));
    body.Set(is_measure ? "measure" : "engine", svc::JsonValue::Str(name));
    ++calls_;
    INFOLEAK_ASSIGN_OR_RETURN(svc::JsonValue response,
                              client_.CallVerb("leak", std::move(body)));
    const svc::JsonValue* leakage = response.Find("leakage");
    if (leakage == nullptr || !leakage->is_number()) {
      return Status::Internal("leak response carries no \"leakage\" number");
    }
    return leakage->as_number();
  }

  svc::LoopbackServer server_;
  svc::Client client_;
  NaiveLeakage naive_;
  ExactLeakage exact_;
  ApproxLeakage approx_;
  AutoLeakage auto_;
  std::size_t naive_max_;
  bool check_pml_;
  bool check_guesswork_;
  bool check_overunder_;
  uint64_t baseline_recorded_ = 0;
  uint64_t calls_ = 0;  ///< wire requests issued through Served()
};

/// Recovery oracle: every generated record is appended to a real
/// DurableStore (WAL + one midpoint snapshot); at the end of the run the
/// store is closed and recovered, and each stored record must come back
/// textually identical and answer its case's leakage query bit-identically
/// to the pre-recovery evaluation.
class DurableChecker {
 public:
  explicit DurableChecker(std::string dir) : dir_(std::move(dir)) {}

  Status Open() {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // stale scratch from a killed run
    persist::DurableStore::Options options;
    options.fsync = persist::FsyncMode::kNever;  // correctness, not crashes
    INFOLEAK_ASSIGN_OR_RETURN(
        store_, persist::DurableStore::Open(dir_, options));
    return Status::OK();
  }

  Status Add(const CheckCase& c) {
    INFOLEAK_ASSIGN_OR_RETURN(RecordId id, store_->Append(c.r));
    Entry e{id, c, {}};
    for (const auto& [name, engine] : Engines()) {
      e.before.emplace_back(name, engine->RecordLeakage(c.r, c.p, c.wm));
    }
    entries_.push_back(std::move(e));
    return Status::OK();
  }

  /// Mid-run snapshot, so recovery exercises snapshot + WAL tail rather
  /// than a pure log replay.
  Status SnapshotNow() { return store_->Snapshot(); }

  Status Finish(std::size_t* comparisons, std::vector<Finding>* findings) {
    INFOLEAK_ASSIGN_OR_RETURN(
        store_, persist::DurableStore::Reopen(std::move(store_)));
    if (!store_->recovery().wal_damage.ok()) {
      findings->push_back(Finding{
          "durable-recovery",
          "recovery reported WAL damage on an uncrashed store: " +
              store_->recovery().wal_damage.message(),
          CheckCase{}});
    }
    for (const Entry& e : entries_) {
      ++*comparisons;
      const Result<Record> rec = store_->store().Get(e.id);
      if (!rec.ok()) {
        findings->push_back(Finding{
            "durable-recovery",
            "record " + std::to_string(e.id) +
                " lost in recovery: " + rec.status().message(),
            e.c});
        continue;
      }
      if (FormatRecord(*rec) != FormatRecord(e.c.r)) {
        findings->push_back(Finding{
            "durable-recovery",
            "record " + std::to_string(e.id) + " recovered as " +
                FormatRecord(*rec) + " but was appended as " +
                FormatRecord(e.c.r),
            e.c});
        continue;
      }
      for (const auto& [name, before] : e.before) {
        ++*comparisons;
        const LeakageEngine* engine = nullptr;
        for (const auto& [n2, eng] : Engines()) {
          if (n2 == name) engine = eng;
        }
        const Result<double> after =
            engine->RecordLeakage(*rec, e.c.p, e.c.wm);
        if (!SameOutcome(before, after)) {
          findings->push_back(Finding{
              "durable-recovery",
              std::string(name) + " leakage changed across recovery: before " +
                  RenderValue(before) + " vs after " + RenderValue(after),
              e.c});
        }
      }
    }
    store_.reset();
    std::error_code ec;
    fs::remove_all(dir_, ec);
    return Status::OK();
  }

 private:
  struct Entry {
    RecordId id;
    CheckCase c;
    /// Pre-recovery answer per engine: auto plus the whole measure family
    /// (a recovered record must answer identically under every adversary
    /// model, not just the default one).
    std::vector<std::pair<const char*, Result<double>>> before;
  };

  std::vector<std::pair<const char*, const LeakageEngine*>> Engines() const {
    return {{"auto", &auto_},
            {"pml", MeasureEngineSingleton(Measure::kPml)},
            {"guesswork", MeasureEngineSingleton(Measure::kGuesswork)},
            {"under", MeasureEngineSingleton(Measure::kUnder)},
            {"over", MeasureEngineSingleton(Measure::kOver)}};
  }

  std::string dir_;
  std::unique_ptr<persist::DurableStore> store_;
  std::vector<Entry> entries_;
  AutoLeakage auto_;
};

/// Interleaving checker for the incremental plane: drives a seeded
/// append/query/compact interleaving through a served durable store — the
/// index-backed `set-leak` path — and after every query demands the wire
/// answer be bit-identical (leakage, argmax, covered count) to a cold
/// columnar rescan of a mirror database held offline. The materialized
/// view must never drift from the scan it stands in for, on any prefix of
/// the interleaving, including across WAL resets (`compact` → epoch bump →
/// rebuild) and across engines the index refuses (poisoned → scan
/// fallback must still match).
class IncChecker {
 public:
  explicit IncChecker(std::string dir) : dir_(std::move(dir)) {}

  Status Run(uint64_t seed, std::size_t ops, std::size_t* comparisons,
             std::vector<Finding>* findings) {
    std::error_code ec;
    fs::remove_all(dir_, ec);  // stale scratch from a killed run
    persist::DurableStore::Options options;
    options.fsync = persist::FsyncMode::kNever;  // correctness, not crashes
    INFOLEAK_ASSIGN_OR_RETURN(std::unique_ptr<persist::DurableStore> store,
                              persist::DurableStore::Open(dir_, options));
    {
      // Small inline-catch-up window so the interleaving actually exercises
      // the background-rebuild fallback, not just inline deltas.
      svc::ServiceConfig service_config;
      service_config.index_inline_catchup = 64;
      svc::LoopbackServer server(store.get(), svc::ServerConfig{},
                                 service_config);
      INFOLEAK_RETURN_IF_ERROR(server.Start());
      INFOLEAK_ASSIGN_OR_RETURN(svc::Client client, server.NewClient());

      // Query pool: a handful of generated references, each pinned to one
      // engine so every columnar engine sees the interleaving — including
      // naive/exact, whose structural errors must poison the index into
      // the bit-identical scan fallback rather than a wrong answer, and the
      // measure family, whose per-engine indexes must never leak a stale
      // default-measure answer. The last four names are measures and travel
      // as the wire's "measure" field.
      static constexpr const char* kEngines[] = {
          "auto", "approx", "exact",     "naive",
          "pml",  "guesswork", "under", "over"};
      constexpr std::size_t kNumEngines = 8;
      CaseGenerator gen(seed ^ 0x1c5e11c8ec4ULL);
      std::vector<CheckCase> pool;
      while (pool.size() < kNumEngines) {
        Result<CheckCase> c = Canonicalize(gen.Next());
        if (c.ok()) pool.push_back(std::move(c).value());
      }

      Rng rng(seed);
      Database mirror;
      std::size_t appends = 0, compacts = 0;
      auto check_query = [&](std::size_t step, std::size_t which) -> Status {
        const CheckCase& c = pool[which];
        const char* engine_name = kEngines[which % kNumEngines];
        const bool is_measure = (which % kNumEngines) >= 4;
        ++*comparisons;
        // Wire answer through the served, index-backed path.
        svc::JsonValue body = svc::JsonValue::Object();
        body.Set("reference", svc::JsonValue::Str(FormatRecord(c.p)));
        const std::string weights = FormatWeights(c.wm);
        if (!weights.empty()) {
          body.Set("weights", svc::JsonValue::Str(weights));
        }
        body.Set(is_measure ? "measure" : "engine",
                 svc::JsonValue::Str(engine_name));
        Result<svc::JsonValue> wire =
            client.CallVerb("set-leak", std::move(body));
        // Cold rescan of the mirror prefix, built from scratch every time.
        const PreparedReference prep(c.p, c.wm);
        ColumnBank bank(prep);
        for (const Record& r : mirror) bank.Append(r);
        std::ptrdiff_t want_argmax = -1;
        const Result<double> rescan =
            SetLeakageColumnar(bank, Engine(engine_name), &want_argmax);
        const std::string at = "step " + std::to_string(step) + " (" +
                               std::to_string(appends) + " append(s), " +
                               std::to_string(compacts) +
                               " compact(s), engine " + engine_name + ")";
        if (wire.ok() != rescan.ok()) {
          findings->push_back(Finding{
              "inc-interleave",
              at + ": wire " +
                  (wire.ok() ? "answered" : wire.status().message()) +
                  " but cold rescan " +
                  (rescan.ok() ? "answered" : rescan.status().message()),
              c});
          return Status::OK();
        }
        if (!wire.ok()) return Status::OK();  // both failing is agreement
        const double got = wire->GetNumber("leakage", -1.0);
        const double got_argmax = wire->GetNumber("argmax", -2.0);
        const double got_records = wire->GetNumber("records", -1.0);
        if (got != *rescan ||
            got_argmax != static_cast<double>(want_argmax) ||
            got_records != static_cast<double>(mirror.size())) {
          findings->push_back(Finding{
              "inc-interleave",
              at + ": wire (leakage " + FormatDoubleRoundTrip(got) +
                  ", argmax " +
                  std::to_string(static_cast<long long>(got_argmax)) +
                  ", records " +
                  std::to_string(static_cast<long long>(got_records)) +
                  ") vs cold rescan (leakage " + FormatDoubleRoundTrip(*rescan) +
                  ", argmax " + std::to_string(want_argmax) + ", records " +
                  std::to_string(mirror.size()) + ")",
              c});
        }
        return Status::OK();
      };

      for (std::size_t step = 0; step < ops; ++step) {
        const uint64_t draw = rng.NextBounded(100);
        if (draw < 50) {
          // Append one generated record through the wire (WAL + change-feed
          // publish) and mirror it offline. The wire refuses empty records,
          // so skip the generator's empty shape.
          Record r = gen.Next().r;
          while (r.empty()) r = gen.Next().r;
          svc::JsonValue body = svc::JsonValue::Object();
          body.Set("record", svc::JsonValue::Str(FormatRecord(r)));
          Result<svc::JsonValue> response =
              client.CallVerb("append", std::move(body));
          if (!response.ok()) {
            return Status::Internal("inc interleaving append failed: " +
                                    response.status().message());
          }
          mirror.Add(r);
          ++appends;
        } else if (draw < 95) {
          INFOLEAK_RETURN_IF_ERROR(
              check_query(step, rng.NextBounded(pool.size())));
        } else {
          // Served compact: snapshot + WAL reset + epoch bump, with the
          // server live. Every index must re-fence and rebuild.
          Result<svc::JsonValue> response =
              client.CallVerb("compact", svc::JsonValue::Object());
          if (!response.ok()) {
            return Status::Internal("inc interleaving compact failed: " +
                                    response.status().message());
          }
          ++compacts;
        }
      }
      // Final full-prefix pass: every pool reference answers over the
      // complete interleaving, whatever state its index ended up in.
      for (std::size_t which = 0; which < pool.size(); ++which) {
        INFOLEAK_RETURN_IF_ERROR(check_query(ops, which));
      }
      INFOLEAK_RETURN_IF_ERROR(server.Stop());
    }
    store.reset();
    fs::remove_all(dir_, ec);
    return Status::OK();
  }

 private:
  const LeakageEngine& Engine(std::string_view name) const {
    if (name == "naive") return naive_;
    if (name == "exact") return exact_;
    if (name == "approx") return approx_;
    if (Result<Measure> m = ParseMeasure(name);
        m.ok() && *m != Measure::kExpectedF1) {
      return *MeasureEngineSingleton(*m);
    }
    return auto_;
  }

  std::string dir_;
  NaiveLeakage naive_;
  ExactLeakage exact_;
  ApproxLeakage approx_;
  AutoLeakage auto_;
};

std::string DefaultScratchDir(uint64_t seed) {
  std::error_code ec;
  fs::path base = fs::temp_directory_path(ec);
  if (ec) base = ".";
  return (base / ("infoleak-selfcheck-" + std::to_string(::getpid()) + "-" +
                  std::to_string(seed)))
      .string();
}

}  // namespace

std::string SelfCheckReport::Summary() const {
  std::string out = "selfcheck: corpus " + std::to_string(corpus_cases) +
                    " case(s), generated " + std::to_string(generated_cases) +
                    " case(s), " + std::to_string(comparisons) +
                    " comparison(s), " + std::to_string(disagreements) +
                    " disagreement(s)\n";
  for (const Finding& f : findings) {
    out += "disagreement [" + f.kind + "] " + f.c.name + "\n";
    out += "  " + f.detail + "\n";
    for (const auto& line : Split(FormatCase(f.c), '\n')) {
      if (!line.empty()) out += "  | " + line + "\n";
    }
  }
  if (disagreements > findings.size()) {
    out += "(+" + std::to_string(disagreements - findings.size()) +
           " further disagreement(s) not minimized; raise the report cap)\n";
  }
  return out;
}

Result<SelfCheckReport> RunSelfCheck(const SelfCheckConfig& config) {
  static obs::Counter& cases_total = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_selfcheck_cases_total", {},
      "Cases evaluated by the differential selfcheck harness");
  static obs::Counter& comparisons_total =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_selfcheck_comparisons_total", {},
          "Cross-engine comparisons performed by selfcheck");
  static obs::Counter& disagreements_total =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_selfcheck_disagreements_total", {},
          "Cross-engine disagreements found by selfcheck");

  SelfCheckReport report;
  const Oracle oracle(config.oracle);

  ServedChecker served(config.oracle);
  if (config.check_served) INFOLEAK_RETURN_IF_ERROR(served.Start());
  DurableChecker durable(config.scratch_dir.empty()
                             ? DefaultScratchDir(config.seed)
                             : config.scratch_dir);
  if (config.check_durable) INFOLEAK_RETURN_IF_ERROR(durable.Open());

  // Accepts raw findings: counts them all, minimizes and (optionally)
  // records the first `max_reported`. `shrinker` may be empty for findings
  // whose reproduction needs an environment (durable recovery) — those are
  // reported as found.
  auto handle = [&](std::vector<Finding>&& found,
                    const std::function<bool(const CheckCase&)>& shrinker) {
    for (Finding& f : found) {
      ++report.disagreements;
      disagreements_total.Inc();
      if (report.findings.size() >= config.max_reported) continue;
      Finding minimized = std::move(f);
      if (shrinker) minimized.c = Shrink(minimized.c, shrinker);
      if (!config.corpus_dir.empty() && config.extend_corpus) {
        Result<std::string> path =
            WriteCorpusEntry(config.corpus_dir, minimized);
        if (path.ok()) report.corpus_written.push_back(*path);
      }
      report.findings.push_back(std::move(minimized));
    }
  };

  // Shrink predicate for an oracle finding: the candidate still triggers a
  // finding of the same kind under the same seed.
  auto oracle_shrinker = [&oracle](std::string kind, uint64_t case_seed) {
    return [&oracle, kind = std::move(kind),
            case_seed](const CheckCase& candidate) {
      const OracleOutcome o = oracle.Evaluate(candidate, case_seed);
      for (const Finding& f : o.findings) {
        if (f.kind == kind) return true;
      }
      return false;
    };
  };

  auto served_shrinker = [&served](const CheckCase& candidate) {
    return served.Disagrees(candidate);
  };

  // Runs every enabled path on one canonical case.
  auto run_case = [&](const CheckCase& c, uint64_t case_seed) -> Status {
    OracleOutcome o = oracle.Evaluate(c, case_seed);
    report.comparisons += o.comparisons;
    for (Finding& f : o.findings) {
      const std::string kind = f.kind;
      std::vector<Finding> one;
      one.push_back(std::move(f));
      handle(std::move(one), oracle_shrinker(kind, case_seed));
    }
    if (config.check_served) {
      std::vector<Finding> found;
      served.Check(c, &report.comparisons, &found);
      handle(std::move(found), served_shrinker);
    }
    if (config.check_durable) INFOLEAK_RETURN_IF_ERROR(durable.Add(c));
    return Status::OK();
  };

  // ---- 1. Replay the regression corpus -----------------------------------
  if (!config.corpus_dir.empty()) {
    INFOLEAK_ASSIGN_OR_RETURN(std::vector<CheckCase> corpus,
                              LoadCorpus(config.corpus_dir));
    for (std::size_t i = 0; i < corpus.size(); ++i) {
      // Corpus case seeds live far above the generated index range so
      // replay determinism survives --cases changes.
      const uint64_t case_seed =
          CaseGenerator::CaseSeed(config.seed, (1ULL << 32) + i);
      INFOLEAK_ASSIGN_OR_RETURN(const CheckCase c, Canonicalize(corpus[i]));
      ++report.corpus_cases;
      cases_total.Inc();
      INFOLEAK_RETURN_IF_ERROR(run_case(c, case_seed));
    }
  }

  // ---- 2. Generate adversarial cases -------------------------------------
  CaseGenerator gen(config.seed);
  for (std::size_t i = 0; i < config.cases; ++i) {
    const uint64_t case_seed = CaseGenerator::CaseSeed(config.seed, i);
    const CheckCase raw = gen.Next();
    ++report.generated_cases;
    cases_total.Inc();
    ++report.comparisons;
    Result<CheckCase> canonical = Canonicalize(raw);
    if (!canonical.ok()) {
      // A generated case that does not survive its own text form is a
      // serialization bug — the exact class the served path would trip on.
      std::vector<Finding> one;
      one.push_back(Finding{"canonicalize",
                            "case does not round-trip through its text form: " +
                                canonical.status().message(),
                            raw});
      handle(std::move(one), {});
      continue;
    }
    const CheckCase& c = *canonical;
    ++report.comparisons;
    if (FormatCase(c) != FormatCase(raw)) {
      std::vector<Finding> one;
      one.push_back(Finding{
          "canonicalize",
          "text form is not a fixpoint: parsing and re-rendering changed "
          "the case (lossy double rendering?)",
          raw});
      handle(std::move(one), {});
    }
    INFOLEAK_RETURN_IF_ERROR(run_case(c, case_seed));
    if (config.check_durable && i + 1 == config.cases / 2) {
      INFOLEAK_RETURN_IF_ERROR(durable.SnapshotNow());
    }
  }

  // ---- 3. Recover the durable store and re-verify ------------------------
  if (config.check_durable) {
    std::vector<Finding> found;
    INFOLEAK_RETURN_IF_ERROR(durable.Finish(&report.comparisons, &found));
    handle(std::move(found), {});  // recovery needs the env; no shrinking
  }
  // ---- 4. Observability invariants on the served path --------------------
  if (config.check_served) {
    // Not case-reproducible (no shrinking, never written to the corpus):
    // these findings are about the serving run as a whole.
    std::vector<Finding> obs_found;
    served.CheckObs(&report.comparisons, &obs_found);
    for (Finding& f : obs_found) {
      ++report.disagreements;
      disagreements_total.Inc();
      if (report.findings.size() < config.max_reported) {
        report.findings.push_back(std::move(f));
      }
    }
    INFOLEAK_RETURN_IF_ERROR(served.Stop());
  }
  // ---- 5. Incremental-plane interleaving ---------------------------------
  // Runs after the served obs check: the interleaving drives its own
  // loopback server, and its requests land in the process-global EventLog
  // the served checker's exactly-one-event-per-request accounting watches.
  if (config.check_inc && config.cases > 0) {
    IncChecker inc((config.scratch_dir.empty()
                        ? DefaultScratchDir(config.seed)
                        : config.scratch_dir) +
                   "-inc");
    std::vector<Finding> found;
    // Scale the interleaving with --cases; past a few thousand steps the
    // O(prefix) cold rescans dominate the whole selfcheck run.
    const std::size_t ops = std::min<std::size_t>(config.cases, 4000);
    INFOLEAK_RETURN_IF_ERROR(
        inc.Run(config.seed, ops, &report.comparisons, &found));
    handle(std::move(found), {});  // interleaving state isn't case-shrinkable
  }

  comparisons_total.Inc(report.comparisons);
  return report;
}

}  // namespace infoleak::check
