#pragma once

#include <functional>

#include "check/case.h"

namespace infoleak::check {

/// \brief Greedy delta-debugging minimizer: repeatedly tries the mutations
/// below, keeping any that still satisfy `still_fails`, until a full pass
/// changes nothing (or `max_steps` predicate evaluations are spent):
///
///   1. drop one attribute of `r`, then of `p`;
///   2. simplify one confidence to 1.0, then to 0.5;
///   3. drop one explicit weight (reverting that label to the default 1).
///
/// Every candidate is canonicalized before testing, so the minimized case
/// is exactly what its corpus entry will replay. The input case must
/// satisfy `still_fails`; the result always does.
CheckCase Shrink(const CheckCase& failing,
                 const std::function<bool(const CheckCase&)>& still_fails,
                 std::size_t max_steps = 2000);

}  // namespace infoleak::check
