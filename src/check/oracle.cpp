#include "check/oracle.h"

#include <cmath>
#include <cstdint>
#include <optional>

#include "core/bounds.h"
#include "core/measure_family.h"
#include "util/string_util.h"

namespace infoleak::check {
namespace {

/// AutoLeakage's default dispatch threshold; the oracle's naive engine is
/// capped here so the auto-dispatch replication can always evaluate it.
constexpr std::size_t kAutoNaiveCutoff = 16;

std::string Render(const Result<double>& v) {
  if (!v.ok()) return "<error: " + v.status().message() + ">";
  return FormatDoubleRoundTrip(*v);
}

}  // namespace

Oracle::Oracle(OracleConfig config)
    : config_(config),
      naive_(kAutoNaiveCutoff),
      approx1_(1),
      approx2_(2),
      auto_(kAutoNaiveCutoff),
      mc_(config.mc_samples) {}

OracleOutcome Oracle::Evaluate(const CheckCase& c, uint64_t case_seed) const {
  OracleOutcome out;
  auto fail = [&](const char* kind, std::string detail) {
    out.findings.push_back(Finding{kind, std::move(detail), c});
  };
  // Bit-identity across API paths: same ok-ness, and on success the exact
  // same double.
  auto same_bits = [&](const char* kind, const char* what,
                       const Result<double>& a, const Result<double>& b) {
    ++out.comparisons;
    if (a.ok() != b.ok() || (a.ok() && *a != *b)) {
      fail(kind, std::string(what) + ": " + Render(a) + " vs " + Render(b));
    }
  };
  auto in_range = [&](const char* what, const Result<double>& v) {
    ++out.comparisons;
    if (v.ok() && !(*v >= 0.0 && *v <= 1.0)) {
      fail("range", std::string(what) + " = " + Render(v) +
                        " is outside [0, 1]");
    }
  };

  const PreparedReference ref(c.p, c.wm);
  const PreparedRecord pr(c.r, ref);
  LeakageWorkspace ws;

  const bool uniform = c.wm.IsConstantOver(c.r, c.p);
  const bool enumerable = c.r.size() <= kAutoNaiveCutoff;
  const bool small = c.r.size() <= config_.naive_max;

  // ---- Per-engine values, string and prepared paths ----------------------
  Result<double> naive_s = Status::NotSupported("naive disabled");
  Result<double> naive_p = naive_s;
  if (config_.check_naive) {
    naive_s = naive_.RecordLeakage(c.r, c.p, c.wm);
    naive_p = naive_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "naive leakage", naive_s, naive_p);
    in_range("naive leakage", naive_p);
    ++out.comparisons;
    if (naive_p.ok() != enumerable) {
      fail("error-contract",
           "naive must succeed exactly when |r| <= " +
               std::to_string(kAutoNaiveCutoff) + "; |r|=" +
               std::to_string(c.r.size()) + " gave " + Render(naive_p));
    }
  }

  Result<double> exact_s = Status::NotSupported("exact disabled");
  Result<double> exact_p = exact_s;
  if (config_.check_exact) {
    exact_s = exact_.RecordLeakage(c.r, c.p, c.wm);
    exact_p = exact_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "exact leakage", exact_s, exact_p);
    in_range("exact leakage", exact_p);
    ++out.comparisons;
    if (exact_p.ok() != uniform) {
      fail("error-contract",
           std::string("exact must succeed exactly when the weights are "
                       "uniform over (r, p); uniform=") +
               (uniform ? "true" : "false") + " gave " + Render(exact_p));
    }
  }

  Result<double> approx1_p = Status::NotSupported("approx disabled");
  Result<double> approx2_p = approx1_p;
  if (config_.check_approx) {
    approx1_p = approx1_.RecordLeakagePrepared(pr, ref, &ws);
    approx2_p = approx2_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "approx order-1 leakage",
              approx1_.RecordLeakage(c.r, c.p, c.wm), approx1_p);
    same_bits("string-vs-prepared", "approx order-2 leakage",
              approx2_.RecordLeakage(c.r, c.p, c.wm), approx2_p);
    in_range("approx order-1 leakage", approx1_p);
    in_range("approx order-2 leakage", approx2_p);
    ++out.comparisons;
    if (approx1_p.ok() && approx2_p.ok() && !(*approx1_p <= *approx2_p)) {
      fail("approx-order", "order-1 " + Render(approx1_p) +
                               " > order-2 " + Render(approx2_p) +
                               " (the variance correction is non-negative)");
    }
  }

  Result<double> auto_p = Status::NotSupported("auto disabled");
  if (config_.check_auto) {
    auto_p = auto_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "auto leakage",
              auto_.RecordLeakage(c.r, c.p, c.wm), auto_p);
    in_range("auto leakage", auto_p);
    // Replicate the documented dispatch rule and demand bit-identity with
    // the engine it names.
    const Result<double>& expected =
        uniform ? exact_p : (enumerable ? naive_p : approx2_p);
    const char* expected_name =
        uniform ? "exact" : (enumerable ? "naive" : "approx");
    if (config_.check_exact && config_.check_naive && config_.check_approx) {
      ++out.comparisons;
      if (expected.ok() != auto_p.ok() ||
          (auto_p.ok() && *auto_p != *expected)) {
        fail("auto-dispatch", std::string("auto = ") + Render(auto_p) +
                                  " but its rule picks " + expected_name +
                                  " = " + Render(expected));
      }
    }
  }

  // Expected recall is engine-independent and exact; check the two API
  // paths against each other and the range.
  {
    const Result<double> recall_s = naive_.ExpectedRecall(c.r, c.p, c.wm);
    const Result<double> recall_p =
        naive_.ExpectedRecallPrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "expected recall", recall_s, recall_p);
    in_range("expected recall", recall_p);
  }

  // Expected precision: same cross-checks as leakage, cheaper tolerance
  // set (no Taylor bound is derived for it).
  if (config_.check_naive && config_.check_exact) {
    const Result<double> prec_naive =
        naive_.ExpectedPrecisionPrepared(pr, ref, &ws);
    const Result<double> prec_exact =
        exact_.ExpectedPrecisionPrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "naive expected precision",
              naive_.ExpectedPrecision(c.r, c.p, c.wm), prec_naive);
    same_bits("string-vs-prepared", "exact expected precision",
              exact_.ExpectedPrecision(c.r, c.p, c.wm), prec_exact);
    in_range("naive expected precision", prec_naive);
    in_range("exact expected precision", prec_exact);
    if (uniform && small && prec_naive.ok() && prec_exact.ok()) {
      ++out.comparisons;
      if (std::abs(*prec_naive - *prec_exact) > config_.exact_tol) {
        fail("exact-vs-naive",
             "expected precision: naive " + Render(prec_naive) +
                 " vs exact " + Render(prec_exact) + " differ by more than " +
                 FormatDoubleRoundTrip(config_.exact_tol));
      }
    }
  }

  // ---- Truth and the analytic tolerances ---------------------------------
  std::optional<double> truth;
  if (small && naive_p.ok()) {
    truth = *naive_p;
  } else if (uniform && exact_p.ok()) {
    truth = *exact_p;
  }

  if (uniform && small && naive_p.ok() && exact_p.ok()) {
    ++out.comparisons;
    if (std::abs(*naive_p - *exact_p) > config_.exact_tol) {
      fail("exact-vs-naive",
           "naive " + Render(naive_p) + " vs exact " + Render(exact_p) +
               " differ by " +
               FormatDoubleRoundTrip(std::abs(*naive_p - *exact_p)) +
               " > " + FormatDoubleRoundTrip(config_.exact_tol));
    }
  }

  if (config_.check_approx && truth.has_value()) {
    const Result<double>* approxes[] = {&approx1_p, &approx2_p};
    for (int order = 1; order <= 2; ++order) {
      const Result<double>& a = *approxes[order - 1];
      if (!a.ok()) continue;
      const double bound = ApproxLeakageErrorBound(c.r, c.p, c.wm, order);
      const double tol = bound + config_.slack + config_.exact_tol;
      ++out.comparisons;
      if (std::abs(*a - *truth) > tol) {
        fail("approx-bound",
             "order-" + std::to_string(order) + " Taylor " + Render(a) +
                 " vs truth " + FormatDoubleRoundTrip(*truth) +
                 " differ by " + FormatDoubleRoundTrip(std::abs(*a - *truth)) +
                 " > computed bound " + FormatDoubleRoundTrip(bound) +
                 " (+slack)");
      }
    }
  }

  if (config_.check_bounds) {
    const LeakageBounds lb = BoundRecordLeakage(c.r, c.p, c.wm);
    ++out.comparisons;
    if (!(lb.lower >= 0.0 && lb.lower <= lb.upper && lb.upper <= 1.0)) {
      fail("bounds", "malformed bracket [" + FormatDoubleRoundTrip(lb.lower) +
                         ", " + FormatDoubleRoundTrip(lb.upper) + "]");
    }
    if (truth.has_value()) {
      ++out.comparisons;
      if (*truth < lb.lower - config_.slack ||
          *truth > lb.upper + config_.slack) {
        fail("bounds", "truth " + FormatDoubleRoundTrip(*truth) +
                           " escapes [" + FormatDoubleRoundTrip(lb.lower) +
                           ", " + FormatDoubleRoundTrip(lb.upper) + "]");
      }
    } else if (config_.check_approx && approx2_p.ok()) {
      // No independent truth (large, non-uniform): the Taylor value must
      // still land inside the bracket widened by its own error bound.
      const double bound = ApproxLeakageErrorBound(c.r, c.p, c.wm, 2);
      ++out.comparisons;
      if (*approx2_p < lb.lower - bound - config_.slack ||
          *approx2_p > lb.upper + bound + config_.slack) {
        fail("bounds",
             "approx " + Render(approx2_p) + " escapes the bound-widened "
                 "bracket [" + FormatDoubleRoundTrip(lb.lower) + ", " +
                 FormatDoubleRoundTrip(lb.upper) + "] +/- " +
                 FormatDoubleRoundTrip(bound));
      }
    }
  }

  if (config_.check_mc) {
    const Result<MonteCarloLeakage::Estimate> est =
        mc_.EstimateLeakage(c.r, c.p, c.wm, case_seed);
    const Result<MonteCarloLeakage::Estimate> est2 =
        mc_.EstimateLeakage(c.r, c.p, c.wm, case_seed);
    ++out.comparisons;
    if (est.ok() != est2.ok() ||
        (est.ok() && (est->mean != est2->mean ||
                      est->standard_error != est2->standard_error))) {
      fail("monte-carlo-repro",
           "same seed, different estimates: " +
               (est.ok() ? FormatDoubleRoundTrip(est->mean) : "<error>") +
               " vs " +
               (est2.ok() ? FormatDoubleRoundTrip(est2->mean) : "<error>"));
    }
    if (est.ok()) {
      in_range("monte-carlo mean", Result<double>(est->mean));
      if (truth.has_value()) {
        // Empirical-Bernstein-style half-width: the sigma·SE term alone is
        // a trap near boundary confidences — when (say) conf = 1 − 1e-7,
        // all n samples usually come out identical, the sample variance is
        // exactly 0, and the CI degenerates even though a true deviation
        // of order 1/n is statistically expected. The range/n term (F1 has
        // range 1) keeps the band honest there while staying far below any
        // systematic estimator bias.
        const double bernstein =
            config_.mc_sigmas * config_.mc_sigmas /
            static_cast<double>(mc_.samples());
        const double tol = config_.mc_sigmas * est->standard_error +
                           bernstein + config_.slack;
        ++out.comparisons;
        if (std::abs(est->mean - *truth) > tol) {
          fail("monte-carlo-ci",
               "mean " + FormatDoubleRoundTrip(est->mean) + " vs truth " +
                   FormatDoubleRoundTrip(*truth) + " differ by " +
                   FormatDoubleRoundTrip(std::abs(est->mean - *truth)) +
                   " > " + FormatDoubleRoundTrip(config_.mc_sigmas) +
                   "*SE+sigma^2/n+slack = " + FormatDoubleRoundTrip(tol));
        }
      }
    }
  }

  if (config_.check_batch && config_.check_auto && auto_p.ok()) {
    Database db;
    db.Add(c.r);
    const Record* rec_ptr = &db[0];
    const Result<std::vector<double>> batch =
        BatchLeakage(std::span<const Record* const>(&rec_ptr, 1), ref, auto_);
    ++out.comparisons;
    if (!batch.ok() || batch->size() != 1 || (*batch)[0] != *auto_p) {
      fail("batch-vs-single",
           "BatchLeakage gave " +
               (batch.ok() && batch->size() == 1
                    ? FormatDoubleRoundTrip((*batch)[0])
                    : std::string("<error>")) +
               " vs single " + Render(auto_p));
    }
    std::ptrdiff_t argmax = -2;
    const Result<double> set = SetLeakageArgMax(db, ref, auto_, &argmax);
    ++out.comparisons;
    if (!set.ok() || *set != *auto_p || argmax != 0) {
      fail("batch-vs-single",
           "SetLeakageArgMax gave " + Render(set) + " (argmax " +
               std::to_string(argmax) + ") vs single " + Render(auto_p));
    }
  }

  // ---- Columnar path: bit-identical to prepared, engine by engine --------
  if (config_.check_columnar) {
    ColumnBank bank(ref);
    bank.Append(c.r);
    const ColumnRecordView v = bank.view(0);
    if (config_.check_naive) {
      same_bits("columnar-vs-prepared", "naive leakage",
                naive_.RecordLeakageColumnar(v, ref, &ws), naive_p);
      same_bits("columnar-vs-prepared", "naive expected precision",
                naive_.ExpectedPrecisionColumnar(v, ref, &ws),
                naive_.ExpectedPrecisionPrepared(pr, ref, &ws));
    }
    if (config_.check_exact) {
      same_bits("columnar-vs-prepared", "exact leakage",
                exact_.RecordLeakageColumnar(v, ref, &ws), exact_p);
      same_bits("columnar-vs-prepared", "exact expected precision",
                exact_.ExpectedPrecisionColumnar(v, ref, &ws),
                exact_.ExpectedPrecisionPrepared(pr, ref, &ws));
    }
    if (config_.check_approx) {
      same_bits("columnar-vs-prepared", "approx order-1 leakage",
                approx1_.RecordLeakageColumnar(v, ref, &ws), approx1_p);
      same_bits("columnar-vs-prepared", "approx order-2 leakage",
                approx2_.RecordLeakageColumnar(v, ref, &ws), approx2_p);
    }
    if (config_.check_auto) {
      same_bits("columnar-vs-prepared", "auto leakage",
                auto_.RecordLeakageColumnar(v, ref, &ws), auto_p);
    }
    same_bits("columnar-vs-prepared", "expected recall",
              naive_.ExpectedRecallColumnar(v, ref, &ws),
              naive_.ExpectedRecallPrepared(pr, ref, &ws));
    if (config_.check_bounds) {
      const LeakageBounds a = BoundRecordLeakage(c.r, c.p, c.wm);
      const LeakageBounds b = BoundRecordLeakageColumnar(bank, 0, &ws);
      ++out.comparisons;
      if (a.lower != b.lower || a.upper != b.upper) {
        fail("columnar-vs-prepared",
             "bounds: string [" + FormatDoubleRoundTrip(a.lower) + ", " +
                 FormatDoubleRoundTrip(a.upper) + "] vs columnar [" +
                 FormatDoubleRoundTrip(b.lower) + ", " +
                 FormatDoubleRoundTrip(b.upper) + "]");
      }
    }
    if (config_.check_auto && auto_p.ok()) {
      std::ptrdiff_t argmax = -2;
      const Result<double> set = SetLeakageColumnar(bank, auto_, &argmax);
      ++out.comparisons;
      if (!set.ok() || *set != *auto_p || argmax != 0) {
        fail("columnar-vs-prepared",
             "SetLeakageColumnar gave " + Render(set) + " (argmax " +
                 std::to_string(argmax) + ") vs single " + Render(auto_p));
      }
      const Result<std::vector<double>> batch =
          BatchLeakageColumnar(bank, auto_);
      ++out.comparisons;
      if (!batch.ok() || batch->size() != 1 || (*batch)[0] != *auto_p) {
        fail("columnar-vs-prepared",
             "BatchLeakageColumnar gave " +
                 (batch.ok() && batch->size() == 1
                      ? FormatDoubleRoundTrip((*batch)[0])
                      : std::string("<error>")) +
                 " vs single " + Render(auto_p));
      }
    }
  }

  EvaluateMeasures(c, MeasureEngines{}, &out);

  return out;
}

void Oracle::EvaluateMeasures(const CheckCase& c, const MeasureEngines& engines,
                              OracleOutcome* out) const {
  const bool do_pml = config_.check_pml;
  const bool do_gw = config_.check_guesswork;
  const bool do_ou = config_.check_overunder;
  if (!do_pml && !do_gw && !do_ou) return;

  const LeakageEngine* pml_e =
      engines.pml ? engines.pml : MeasureEngineSingleton(Measure::kPml);
  const LeakageEngine* gw_e = engines.guesswork
                                  ? engines.guesswork
                                  : MeasureEngineSingleton(Measure::kGuesswork);
  const LeakageEngine* under_e =
      engines.under ? engines.under : MeasureEngineSingleton(Measure::kUnder);
  const LeakageEngine* over_e =
      engines.over ? engines.over : MeasureEngineSingleton(Measure::kOver);

  auto fail = [&](const char* kind, std::string detail) {
    out->findings.push_back(Finding{kind, std::move(detail), c});
  };
  auto same_bits = [&](const char* kind, const std::string& what,
                       const Result<double>& a, const Result<double>& b) {
    ++out->comparisons;
    if (a.ok() != b.ok() || (a.ok() && *a != *b)) {
      fail(kind, what + ": " + Render(a) + " vs " + Render(b));
    }
  };
  auto in_range = [&](const std::string& what, const Result<double>& v) {
    ++out->comparisons;
    if (v.ok() && !(*v >= 0.0 && *v <= 1.0)) {
      fail("measure-path",
           what + " = " + Render(v) + " is outside [0, 1]");
    }
  };

  const PreparedReference ref(c.p, c.wm);
  const PreparedRecord pr(c.r, ref);
  LeakageWorkspace ws;
  ColumnBank bank(ref);
  bank.Append(c.r);
  const ColumnRecordView v = bank.view(0);

  // ---- measure-path: every surface of every measure agrees bit for bit --
  struct Row {
    const char* what;
    const LeakageEngine* e;
    bool on;
    bool has_precision;
  };
  const Row rows[] = {
      {"pml leakage", pml_e, do_pml, true},
      {"guesswork leakage", gw_e, do_gw, true},
      {"under leakage", under_e, do_ou, false},
      {"over leakage", over_e, do_ou, false},
  };
  // String-path values, indexed like `rows`; the monotone and truth checks
  // below reuse them (string == prepared == columnar once measure-path
  // passed, so any one surface is "the" value).
  Result<double> vals[4] = {
      Status::NotSupported("measure disabled"),
      Status::NotSupported("measure disabled"),
      Status::NotSupported("measure disabled"),
      Status::NotSupported("measure disabled"),
  };
  for (std::size_t i = 0; i < 4; ++i) {
    const Row& row = rows[i];
    if (!row.on) continue;
    const Result<double> s = row.e->RecordLeakage(c.r, c.p, c.wm);
    const Result<double> p = row.e->RecordLeakagePrepared(pr, ref, &ws);
    same_bits("measure-path", std::string(row.what) + " string-vs-prepared",
              s, p);
    if (config_.check_columnar) {
      same_bits("measure-path",
                std::string(row.what) + " columnar-vs-prepared",
                row.e->RecordLeakageColumnar(v, ref, &ws), p);
    }
    in_range(row.what, p);
    vals[i] = s;
    if (row.has_precision) {
      const std::string what = std::string(rows[i].e->name()) + " precision";
      const Result<double> prec_p =
          row.e->ExpectedPrecisionPrepared(pr, ref, &ws);
      same_bits("measure-path", what + " string-vs-prepared",
                row.e->ExpectedPrecision(c.r, c.p, c.wm), prec_p);
      if (config_.check_columnar) {
        same_bits("measure-path", what + " columnar-vs-prepared",
                  row.e->ExpectedPrecisionColumnar(v, ref, &ws), prec_p);
      }
      in_range(what, prec_p);
    } else {
      // under/over bound expected F1 only; a precision value would be
      // unsound, so the engines must refuse rather than answer.
      ++out->comparisons;
      const Result<double> prec = row.e->ExpectedPrecision(c.r, c.p, c.wm);
      if (prec.ok()) {
        fail("measure-path", std::string(rows[i].e->name()) +
                                 " precision must be NotSupported, got " +
                                 Render(prec));
      }
    }
  }
  const Result<double>& pml_v = vals[0];
  const Result<double>& gw_v = vals[1];
  const Result<double>& under_v = vals[2];
  const Result<double>& over_v = vals[3];

  const bool uniform = c.wm.IsConstantOver(c.r, c.p);
  const bool small = c.r.size() <= config_.naive_max;
  const double wp = c.wm.TotalWeight(c.p);

  // Expected-F1 truth, by the same rule Evaluate uses: naive when
  // enumerable (any weights), else Algorithm 1 when uniform.
  std::optional<double> truth;
  if (small) {
    const Result<double> n = naive_.RecordLeakagePrepared(pr, ref, &ws);
    if (n.ok()) truth = *n;
  } else if (uniform) {
    const Result<double> e = exact_.RecordLeakagePrepared(pr, ref, &ws);
    if (e.ok()) truth = *e;
  }

  // ---- measure-truth: independent recomputations --------------------------
  // pml vs a brute-force maximum over every feasible world. The engine's
  // closed form rests on a monotonicity argument; the enumeration does not,
  // so a wrong "optimal world" choice shows up here.
  if (do_pml && small && pml_v.ok()) {
    struct Attr {
      double conf;
      double w;
      bool matched;
    };
    std::vector<Attr> attrs;
    attrs.reserve(c.r.size());
    for (const auto& a : c.r) {
      attrs.push_back({a.confidence, c.wm.Weight(a.label),
                       c.p.Find(a.label, a.value) != nullptr});
    }
    const std::size_t n = attrs.size();
    double best = 0.0;
    for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
      double total = 0.0;
      double overlap = 0.0;
      bool feasible = true;
      for (std::size_t i = 0; i < n; ++i) {
        if ((mask >> i) & 1) {
          if (attrs[i].conf == 0.0) {
            feasible = false;
            break;
          }
          total += attrs[i].w;
          if (attrs[i].matched) overlap += attrs[i].w;
        } else if (attrs[i].conf == 1.0) {
          feasible = false;
          break;
        }
      }
      if (!feasible) continue;
      const double denom = total + wp;
      const double f1 = denom > 0.0 ? 2.0 * overlap / denom : 0.0;
      if (f1 > best) best = f1;
    }
    ++out->comparisons;
    if (std::abs(*pml_v - best) > config_.exact_tol) {
      fail("measure-truth",
           "pml " + Render(pml_v) + " vs brute-force world maximum " +
               FormatDoubleRoundTrip(best) + " differ by more than " +
               FormatDoubleRoundTrip(config_.exact_tol));
    }
  }

  // guesswork vs the modal world materialized as a deterministic record and
  // pushed through the Taylor engine: with every confidence at 1 the world
  // distribution is a point mass, Var[Y] = 0, and the order-2 value is the
  // modal world's F1 exactly — an independent code path end to end.
  if (do_gw && gw_v.ok()) {
    Record modal;
    for (const auto& a : c.r) {
      if (a.confidence >= 0.5) modal.Insert(Attribute(a.label, a.value, 1.0));
    }
    const Result<double> direct = approx2_.RecordLeakage(modal, c.p, c.wm);
    if (direct.ok()) {
      ++out->comparisons;
      if (std::abs(*gw_v - *direct) > config_.exact_tol) {
        fail("measure-truth",
             "guesswork " + Render(gw_v) +
                 " vs modal-world F1 via the Taylor engine " + Render(direct) +
                 " differ by more than " +
                 FormatDoubleRoundTrip(config_.exact_tol));
      }
    }
  }

  // ---- measure-order: the family's provable inequalities ------------------
  // E[F1] ≤ max-world F1, and the modal world is one feasible world.
  if (do_pml && pml_v.ok()) {
    if (truth.has_value()) {
      ++out->comparisons;
      if (*truth > *pml_v + config_.slack) {
        fail("measure-order", "expected-F1 truth " +
                                  FormatDoubleRoundTrip(*truth) +
                                  " exceeds pml " + Render(pml_v));
      }
    }
    if (do_gw && gw_v.ok()) {
      ++out->comparisons;
      if (*gw_v > *pml_v + config_.slack) {
        fail("measure-order",
             "guesswork " + Render(gw_v) + " exceeds pml " + Render(pml_v));
      }
    }
  }

  // ---- measure-bracket: under ≤ E[F1] ≤ over, and under ≤ over ------------
  if (do_ou) {
    if (under_v.ok() && over_v.ok()) {
      ++out->comparisons;
      if (!(*under_v <= *over_v)) {
        fail("measure-bracket", "under " + Render(under_v) + " > over " +
                                    Render(over_v));
      }
    }
    if (truth.has_value()) {
      if (under_v.ok()) {
        ++out->comparisons;
        if (*truth < *under_v - config_.slack) {
          fail("measure-bracket",
               "truth " + FormatDoubleRoundTrip(*truth) +
                   " falls below under " + Render(under_v));
        }
      }
      if (over_v.ok()) {
        ++out->comparisons;
        if (*truth > *over_v + config_.slack) {
          fail("measure-bracket", "truth " + FormatDoubleRoundTrip(*truth) +
                                      " escapes above over " +
                                      Render(over_v));
        }
      }
    }
  }

  // ---- measure-vs-bounds: the bound engines ARE the bounds, bitwise -------
  // (FinishUnitInterval's clamp is the identity on a well-formed bracket,
  // so any difference is a real divergence between the two code paths.)
  if (do_ou) {
    const LeakageBounds lb = BoundRecordLeakage(c.r, c.p, c.wm);
    if (under_v.ok()) {
      ++out->comparisons;
      if (*under_v != lb.lower) {
        fail("measure-vs-bounds",
             "under " + Render(under_v) + " vs BoundRecordLeakage lower " +
                 FormatDoubleRoundTrip(lb.lower));
      }
    }
    if (over_v.ok()) {
      ++out->comparisons;
      if (*over_v != lb.upper) {
        fail("measure-vs-bounds",
             "over " + Render(over_v) + " vs BoundRecordLeakage upper " +
                 FormatDoubleRoundTrip(lb.upper));
      }
    }
  }

  // ---- measure-degenerate: one possible world, everyone must report it ----
  // All confidences in {0, 1} collapse the distribution to a point: the
  // included set is exactly the confidence-1 attributes, its F1 is directly
  // computable at any record size, and max / modal / expectation coincide.
  // The Jensen lower bound is tight on a point mass too.
  bool degenerate = true;
  for (const auto& a : c.r) {
    if (a.confidence != 0.0 && a.confidence != 1.0) {
      degenerate = false;
      break;
    }
  }
  if (degenerate) {
    double total = 0.0;
    double overlap = 0.0;
    for (const auto& a : c.r) {
      if (a.confidence != 1.0) continue;
      const double w = c.wm.Weight(a.label);
      total += w;
      if (c.p.Find(a.label, a.value) != nullptr) overlap += w;
    }
    const double denom = total + wp;
    const double f1 = denom > 0.0 ? 2.0 * overlap / denom : 0.0;
    if (std::isfinite(f1)) {
      auto agree = [&](const char* what, const Result<double>& m) {
        if (!m.ok()) return;
        ++out->comparisons;
        if (std::abs(*m - f1) > config_.exact_tol) {
          fail("measure-degenerate",
               std::string(what) + " " + Render(m) +
                   " vs the single world's F1 " + FormatDoubleRoundTrip(f1));
        }
      };
      if (do_pml) agree("pml", pml_v);
      if (do_gw) agree("guesswork", gw_v);
      if (do_ou) {
        agree("under", under_v);
        if (over_v.ok()) {
          ++out->comparisons;
          if (f1 > *over_v + config_.slack) {
            fail("measure-degenerate",
                 "single world's F1 " + FormatDoubleRoundTrip(f1) +
                     " escapes above over " + Render(over_v));
          }
        }
      }
    }
  }

  // ---- measure-monotone: a fresh unmatched attribute cannot help ----------
  // Extending r with an attribute absent from p adds no overlap: pml skips
  // it outright when conf < 1 (bit-identical by the branching-skip
  // contract); guesswork skips it below the 0.5 modal threshold and
  // otherwise only grows the modal denominator; the under/over bounds both
  // weakly decrease (larger E[Y] in every Jensen term, unchanged recall
  // mass).
  {
    bool label_free = true;
    for (const auto& a : c.r) {
      if (a.label == "__ext") {
        label_free = false;
        break;
      }
    }
    for (const auto& a : c.p) {
      if (a.label == "__ext") {
        label_free = false;
        break;
      }
    }
    if (label_free) {
      auto leq = [&](const char* what, const Result<double>& base,
                     const Result<double>& ext) {
        if (!base.ok() || !ext.ok()) return;
        ++out->comparisons;
        if (*ext > *base + config_.slack) {
          fail("measure-monotone",
               std::string(what) + " grew from " + Render(base) + " to " +
                   Render(ext) + " on an unmatched extension");
        }
      };
      const double confs[] = {0.75, 0.25};
      for (const double conf : confs) {
        Record ext = c.r;
        ext.Insert(Attribute("__ext", "1", conf));
        if (do_pml) {
          same_bits("measure-monotone",
                    "pml under unmatched conf-" + FormatDoubleRoundTrip(conf) +
                        " extension",
                    pml_e->RecordLeakage(ext, c.p, c.wm), pml_v);
        }
        if (do_gw) {
          const Result<double> g = gw_e->RecordLeakage(ext, c.p, c.wm);
          if (conf < 0.5) {
            same_bits("measure-monotone",
                      "guesswork under sub-modal unmatched extension", g,
                      gw_v);
          } else {
            leq("guesswork", gw_v, g);
          }
        }
        if (do_ou) {
          leq("under", under_v, under_e->RecordLeakage(ext, c.p, c.wm));
          leq("over", over_v, over_e->RecordLeakage(ext, c.p, c.wm));
        }
      }
    }
  }
}

}  // namespace infoleak::check
