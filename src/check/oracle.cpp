#include "check/oracle.h"

#include <cmath>
#include <optional>

#include "core/bounds.h"
#include "util/string_util.h"

namespace infoleak::check {
namespace {

/// AutoLeakage's default dispatch threshold; the oracle's naive engine is
/// capped here so the auto-dispatch replication can always evaluate it.
constexpr std::size_t kAutoNaiveCutoff = 16;

std::string Render(const Result<double>& v) {
  if (!v.ok()) return "<error: " + v.status().message() + ">";
  return FormatDoubleRoundTrip(*v);
}

}  // namespace

Oracle::Oracle(OracleConfig config)
    : config_(config),
      naive_(kAutoNaiveCutoff),
      approx1_(1),
      approx2_(2),
      auto_(kAutoNaiveCutoff),
      mc_(config.mc_samples) {}

OracleOutcome Oracle::Evaluate(const CheckCase& c, uint64_t case_seed) const {
  OracleOutcome out;
  auto fail = [&](const char* kind, std::string detail) {
    out.findings.push_back(Finding{kind, std::move(detail), c});
  };
  // Bit-identity across API paths: same ok-ness, and on success the exact
  // same double.
  auto same_bits = [&](const char* kind, const char* what,
                       const Result<double>& a, const Result<double>& b) {
    ++out.comparisons;
    if (a.ok() != b.ok() || (a.ok() && *a != *b)) {
      fail(kind, std::string(what) + ": " + Render(a) + " vs " + Render(b));
    }
  };
  auto in_range = [&](const char* what, const Result<double>& v) {
    ++out.comparisons;
    if (v.ok() && !(*v >= 0.0 && *v <= 1.0)) {
      fail("range", std::string(what) + " = " + Render(v) +
                        " is outside [0, 1]");
    }
  };

  const PreparedReference ref(c.p, c.wm);
  const PreparedRecord pr(c.r, ref);
  LeakageWorkspace ws;

  const bool uniform = c.wm.IsConstantOver(c.r, c.p);
  const bool enumerable = c.r.size() <= kAutoNaiveCutoff;
  const bool small = c.r.size() <= config_.naive_max;

  // ---- Per-engine values, string and prepared paths ----------------------
  Result<double> naive_s = Status::NotSupported("naive disabled");
  Result<double> naive_p = naive_s;
  if (config_.check_naive) {
    naive_s = naive_.RecordLeakage(c.r, c.p, c.wm);
    naive_p = naive_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "naive leakage", naive_s, naive_p);
    in_range("naive leakage", naive_p);
    ++out.comparisons;
    if (naive_p.ok() != enumerable) {
      fail("error-contract",
           "naive must succeed exactly when |r| <= " +
               std::to_string(kAutoNaiveCutoff) + "; |r|=" +
               std::to_string(c.r.size()) + " gave " + Render(naive_p));
    }
  }

  Result<double> exact_s = Status::NotSupported("exact disabled");
  Result<double> exact_p = exact_s;
  if (config_.check_exact) {
    exact_s = exact_.RecordLeakage(c.r, c.p, c.wm);
    exact_p = exact_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "exact leakage", exact_s, exact_p);
    in_range("exact leakage", exact_p);
    ++out.comparisons;
    if (exact_p.ok() != uniform) {
      fail("error-contract",
           std::string("exact must succeed exactly when the weights are "
                       "uniform over (r, p); uniform=") +
               (uniform ? "true" : "false") + " gave " + Render(exact_p));
    }
  }

  Result<double> approx1_p = Status::NotSupported("approx disabled");
  Result<double> approx2_p = approx1_p;
  if (config_.check_approx) {
    approx1_p = approx1_.RecordLeakagePrepared(pr, ref, &ws);
    approx2_p = approx2_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "approx order-1 leakage",
              approx1_.RecordLeakage(c.r, c.p, c.wm), approx1_p);
    same_bits("string-vs-prepared", "approx order-2 leakage",
              approx2_.RecordLeakage(c.r, c.p, c.wm), approx2_p);
    in_range("approx order-1 leakage", approx1_p);
    in_range("approx order-2 leakage", approx2_p);
    ++out.comparisons;
    if (approx1_p.ok() && approx2_p.ok() && !(*approx1_p <= *approx2_p)) {
      fail("approx-order", "order-1 " + Render(approx1_p) +
                               " > order-2 " + Render(approx2_p) +
                               " (the variance correction is non-negative)");
    }
  }

  Result<double> auto_p = Status::NotSupported("auto disabled");
  if (config_.check_auto) {
    auto_p = auto_.RecordLeakagePrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "auto leakage",
              auto_.RecordLeakage(c.r, c.p, c.wm), auto_p);
    in_range("auto leakage", auto_p);
    // Replicate the documented dispatch rule and demand bit-identity with
    // the engine it names.
    const Result<double>& expected =
        uniform ? exact_p : (enumerable ? naive_p : approx2_p);
    const char* expected_name =
        uniform ? "exact" : (enumerable ? "naive" : "approx");
    if (config_.check_exact && config_.check_naive && config_.check_approx) {
      ++out.comparisons;
      if (expected.ok() != auto_p.ok() ||
          (auto_p.ok() && *auto_p != *expected)) {
        fail("auto-dispatch", std::string("auto = ") + Render(auto_p) +
                                  " but its rule picks " + expected_name +
                                  " = " + Render(expected));
      }
    }
  }

  // Expected recall is engine-independent and exact; check the two API
  // paths against each other and the range.
  {
    const Result<double> recall_s = naive_.ExpectedRecall(c.r, c.p, c.wm);
    const Result<double> recall_p =
        naive_.ExpectedRecallPrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "expected recall", recall_s, recall_p);
    in_range("expected recall", recall_p);
  }

  // Expected precision: same cross-checks as leakage, cheaper tolerance
  // set (no Taylor bound is derived for it).
  if (config_.check_naive && config_.check_exact) {
    const Result<double> prec_naive =
        naive_.ExpectedPrecisionPrepared(pr, ref, &ws);
    const Result<double> prec_exact =
        exact_.ExpectedPrecisionPrepared(pr, ref, &ws);
    same_bits("string-vs-prepared", "naive expected precision",
              naive_.ExpectedPrecision(c.r, c.p, c.wm), prec_naive);
    same_bits("string-vs-prepared", "exact expected precision",
              exact_.ExpectedPrecision(c.r, c.p, c.wm), prec_exact);
    in_range("naive expected precision", prec_naive);
    in_range("exact expected precision", prec_exact);
    if (uniform && small && prec_naive.ok() && prec_exact.ok()) {
      ++out.comparisons;
      if (std::abs(*prec_naive - *prec_exact) > config_.exact_tol) {
        fail("exact-vs-naive",
             "expected precision: naive " + Render(prec_naive) +
                 " vs exact " + Render(prec_exact) + " differ by more than " +
                 FormatDoubleRoundTrip(config_.exact_tol));
      }
    }
  }

  // ---- Truth and the analytic tolerances ---------------------------------
  std::optional<double> truth;
  if (small && naive_p.ok()) {
    truth = *naive_p;
  } else if (uniform && exact_p.ok()) {
    truth = *exact_p;
  }

  if (uniform && small && naive_p.ok() && exact_p.ok()) {
    ++out.comparisons;
    if (std::abs(*naive_p - *exact_p) > config_.exact_tol) {
      fail("exact-vs-naive",
           "naive " + Render(naive_p) + " vs exact " + Render(exact_p) +
               " differ by " +
               FormatDoubleRoundTrip(std::abs(*naive_p - *exact_p)) +
               " > " + FormatDoubleRoundTrip(config_.exact_tol));
    }
  }

  if (config_.check_approx && truth.has_value()) {
    const Result<double>* approxes[] = {&approx1_p, &approx2_p};
    for (int order = 1; order <= 2; ++order) {
      const Result<double>& a = *approxes[order - 1];
      if (!a.ok()) continue;
      const double bound = ApproxLeakageErrorBound(c.r, c.p, c.wm, order);
      const double tol = bound + config_.slack + config_.exact_tol;
      ++out.comparisons;
      if (std::abs(*a - *truth) > tol) {
        fail("approx-bound",
             "order-" + std::to_string(order) + " Taylor " + Render(a) +
                 " vs truth " + FormatDoubleRoundTrip(*truth) +
                 " differ by " + FormatDoubleRoundTrip(std::abs(*a - *truth)) +
                 " > computed bound " + FormatDoubleRoundTrip(bound) +
                 " (+slack)");
      }
    }
  }

  if (config_.check_bounds) {
    const LeakageBounds lb = BoundRecordLeakage(c.r, c.p, c.wm);
    ++out.comparisons;
    if (!(lb.lower >= 0.0 && lb.lower <= lb.upper && lb.upper <= 1.0)) {
      fail("bounds", "malformed bracket [" + FormatDoubleRoundTrip(lb.lower) +
                         ", " + FormatDoubleRoundTrip(lb.upper) + "]");
    }
    if (truth.has_value()) {
      ++out.comparisons;
      if (*truth < lb.lower - config_.slack ||
          *truth > lb.upper + config_.slack) {
        fail("bounds", "truth " + FormatDoubleRoundTrip(*truth) +
                           " escapes [" + FormatDoubleRoundTrip(lb.lower) +
                           ", " + FormatDoubleRoundTrip(lb.upper) + "]");
      }
    } else if (config_.check_approx && approx2_p.ok()) {
      // No independent truth (large, non-uniform): the Taylor value must
      // still land inside the bracket widened by its own error bound.
      const double bound = ApproxLeakageErrorBound(c.r, c.p, c.wm, 2);
      ++out.comparisons;
      if (*approx2_p < lb.lower - bound - config_.slack ||
          *approx2_p > lb.upper + bound + config_.slack) {
        fail("bounds",
             "approx " + Render(approx2_p) + " escapes the bound-widened "
                 "bracket [" + FormatDoubleRoundTrip(lb.lower) + ", " +
                 FormatDoubleRoundTrip(lb.upper) + "] +/- " +
                 FormatDoubleRoundTrip(bound));
      }
    }
  }

  if (config_.check_mc) {
    const Result<MonteCarloLeakage::Estimate> est =
        mc_.EstimateLeakage(c.r, c.p, c.wm, case_seed);
    const Result<MonteCarloLeakage::Estimate> est2 =
        mc_.EstimateLeakage(c.r, c.p, c.wm, case_seed);
    ++out.comparisons;
    if (est.ok() != est2.ok() ||
        (est.ok() && (est->mean != est2->mean ||
                      est->standard_error != est2->standard_error))) {
      fail("monte-carlo-repro",
           "same seed, different estimates: " +
               (est.ok() ? FormatDoubleRoundTrip(est->mean) : "<error>") +
               " vs " +
               (est2.ok() ? FormatDoubleRoundTrip(est2->mean) : "<error>"));
    }
    if (est.ok()) {
      in_range("monte-carlo mean", Result<double>(est->mean));
      if (truth.has_value()) {
        // Empirical-Bernstein-style half-width: the sigma·SE term alone is
        // a trap near boundary confidences — when (say) conf = 1 − 1e-7,
        // all n samples usually come out identical, the sample variance is
        // exactly 0, and the CI degenerates even though a true deviation
        // of order 1/n is statistically expected. The range/n term (F1 has
        // range 1) keeps the band honest there while staying far below any
        // systematic estimator bias.
        const double bernstein =
            config_.mc_sigmas * config_.mc_sigmas /
            static_cast<double>(mc_.samples());
        const double tol = config_.mc_sigmas * est->standard_error +
                           bernstein + config_.slack;
        ++out.comparisons;
        if (std::abs(est->mean - *truth) > tol) {
          fail("monte-carlo-ci",
               "mean " + FormatDoubleRoundTrip(est->mean) + " vs truth " +
                   FormatDoubleRoundTrip(*truth) + " differ by " +
                   FormatDoubleRoundTrip(std::abs(est->mean - *truth)) +
                   " > " + FormatDoubleRoundTrip(config_.mc_sigmas) +
                   "*SE+sigma^2/n+slack = " + FormatDoubleRoundTrip(tol));
        }
      }
    }
  }

  if (config_.check_batch && config_.check_auto && auto_p.ok()) {
    Database db;
    db.Add(c.r);
    const Record* rec_ptr = &db[0];
    const Result<std::vector<double>> batch =
        BatchLeakage(std::span<const Record* const>(&rec_ptr, 1), ref, auto_);
    ++out.comparisons;
    if (!batch.ok() || batch->size() != 1 || (*batch)[0] != *auto_p) {
      fail("batch-vs-single",
           "BatchLeakage gave " +
               (batch.ok() && batch->size() == 1
                    ? FormatDoubleRoundTrip((*batch)[0])
                    : std::string("<error>")) +
               " vs single " + Render(auto_p));
    }
    std::ptrdiff_t argmax = -2;
    const Result<double> set = SetLeakageArgMax(db, ref, auto_, &argmax);
    ++out.comparisons;
    if (!set.ok() || *set != *auto_p || argmax != 0) {
      fail("batch-vs-single",
           "SetLeakageArgMax gave " + Render(set) + " (argmax " +
               std::to_string(argmax) + ") vs single " + Render(auto_p));
    }
  }

  // ---- Columnar path: bit-identical to prepared, engine by engine --------
  if (config_.check_columnar) {
    ColumnBank bank(ref);
    bank.Append(c.r);
    const ColumnRecordView v = bank.view(0);
    if (config_.check_naive) {
      same_bits("columnar-vs-prepared", "naive leakage",
                naive_.RecordLeakageColumnar(v, ref, &ws), naive_p);
      same_bits("columnar-vs-prepared", "naive expected precision",
                naive_.ExpectedPrecisionColumnar(v, ref, &ws),
                naive_.ExpectedPrecisionPrepared(pr, ref, &ws));
    }
    if (config_.check_exact) {
      same_bits("columnar-vs-prepared", "exact leakage",
                exact_.RecordLeakageColumnar(v, ref, &ws), exact_p);
      same_bits("columnar-vs-prepared", "exact expected precision",
                exact_.ExpectedPrecisionColumnar(v, ref, &ws),
                exact_.ExpectedPrecisionPrepared(pr, ref, &ws));
    }
    if (config_.check_approx) {
      same_bits("columnar-vs-prepared", "approx order-1 leakage",
                approx1_.RecordLeakageColumnar(v, ref, &ws), approx1_p);
      same_bits("columnar-vs-prepared", "approx order-2 leakage",
                approx2_.RecordLeakageColumnar(v, ref, &ws), approx2_p);
    }
    if (config_.check_auto) {
      same_bits("columnar-vs-prepared", "auto leakage",
                auto_.RecordLeakageColumnar(v, ref, &ws), auto_p);
    }
    same_bits("columnar-vs-prepared", "expected recall",
              naive_.ExpectedRecallColumnar(v, ref, &ws),
              naive_.ExpectedRecallPrepared(pr, ref, &ws));
    if (config_.check_bounds) {
      const LeakageBounds a = BoundRecordLeakage(c.r, c.p, c.wm);
      const LeakageBounds b = BoundRecordLeakageColumnar(bank, 0, &ws);
      ++out.comparisons;
      if (a.lower != b.lower || a.upper != b.upper) {
        fail("columnar-vs-prepared",
             "bounds: string [" + FormatDoubleRoundTrip(a.lower) + ", " +
                 FormatDoubleRoundTrip(a.upper) + "] vs columnar [" +
                 FormatDoubleRoundTrip(b.lower) + ", " +
                 FormatDoubleRoundTrip(b.upper) + "]");
      }
    }
    if (config_.check_auto && auto_p.ok()) {
      std::ptrdiff_t argmax = -2;
      const Result<double> set = SetLeakageColumnar(bank, auto_, &argmax);
      ++out.comparisons;
      if (!set.ok() || *set != *auto_p || argmax != 0) {
        fail("columnar-vs-prepared",
             "SetLeakageColumnar gave " + Render(set) + " (argmax " +
                 std::to_string(argmax) + ") vs single " + Render(auto_p));
      }
      const Result<std::vector<double>> batch =
          BatchLeakageColumnar(bank, auto_);
      ++out.comparisons;
      if (!batch.ok() || batch->size() != 1 || (*batch)[0] != *auto_p) {
        fail("columnar-vs-prepared",
             "BatchLeakageColumnar gave " +
                 (batch.ok() && batch->size() == 1
                      ? FormatDoubleRoundTrip((*batch)[0])
                      : std::string("<error>")) +
                 " vs single " + Render(auto_p));
      }
    }
  }

  return out;
}

}  // namespace infoleak::check
