#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/case.h"
#include "core/leakage.h"
#include "core/monte_carlo.h"

namespace infoleak::check {

/// Which comparisons run and how tight they are. The defaults are the
/// `infoleak selfcheck` defaults; tests narrow them to isolate one engine.
struct OracleConfig {
  /// Truth comparisons use the naive possible-worlds oracle only for
  /// records at or below this size — it is O(2^|r|), and above ~12
  /// attributes its own accumulation error starts to crowd `exact_tol`.
  std::size_t naive_max = 12;
  /// Monte-Carlo samples per estimate.
  std::size_t mc_samples = 4000;
  /// Half-width of the Monte-Carlo acceptance interval, in standard
  /// errors. 8σ makes a false alarm over a 5000-case run astronomically
  /// unlikely while still catching any real estimator bias.
  double mc_sigmas = 8.0;
  /// Tolerance for exact-vs-naive agreement (two independent exact
  /// algorithms; the budget covers their accumulated rounding).
  double exact_tol = 1e-12;
  /// Absolute slack added to analytically-derived tolerances (Taylor
  /// bound, leakage bounds, Monte-Carlo CI) to absorb the comparison
  /// baseline's own rounding.
  double slack = 1e-9;

  bool check_naive = true;
  bool check_exact = true;
  bool check_approx = true;
  bool check_mc = true;
  bool check_bounds = true;
  bool check_batch = true;
  bool check_auto = true;
  bool check_columnar = true;
  // The measure family (core/measure_family.h): pointwise maximal,
  // guesswork, and the under/over probabilistic bounds as engines.
  bool check_pml = true;
  bool check_guesswork = true;
  bool check_overunder = true;
};

/// One confirmed disagreement: which property broke, the values involved,
/// and the (possibly shrunk) case that triggers it.
struct Finding {
  std::string kind;    ///< e.g. "approx-bound", "string-vs-prepared"
  std::string detail;  ///< values, difference, and the violated tolerance
  CheckCase c;
};

struct OracleOutcome {
  std::size_t comparisons = 0;
  std::vector<Finding> findings;
};

/// \brief The offline differential oracle: evaluates one case through
/// every enabled engine and path and cross-checks the results.
///
/// Properties checked (each a `Finding::kind`):
///  * `range`              — every successful value lies in [0, 1]
///  * `string-vs-prepared` — both API surfaces bit-identical, per engine
///  * `error-contract`     — naive fails iff |r| exceeds its cap; exact
///                           fails iff the weights are non-uniform
///  * `exact-vs-naive`     — |exact − naive| ≤ exact_tol (uniform, small)
///  * `approx-bound`       — |approx_k − truth| ≤ ApproxLeakageErrorBound
///  * `approx-order`       — order-1 ≤ order-2 (the variance term is ≥ 0)
///  * `bounds`             — BoundRecordLeakage brackets the truth; the
///                           Taylor value stays in the bound-widened bracket
///  * `monte-carlo-ci`     — |MC mean − truth| ≤ mc_sigmas·SE + slack
///  * `monte-carlo-repro`  — same per-case seed, bit-identical estimate
///  * `batch-vs-single`    — BatchLeakage and SetLeakageArgMax over a
///                           one-record database reproduce the single call
///  * `auto-dispatch`      — AutoLeakage equals the engine its rule picks
///  * `columnar-vs-prepared` — the structure-of-arrays path (ColumnBank +
///                           array kernels) reproduces every prepared-path
///                           value bit for bit, including leakage bounds
///                           and the set/batch columnar scans
///
/// "Truth" is the naive oracle when the record is enumerable (arbitrary
/// weights), else Algorithm 1 when the weights are uniform; large
/// non-uniform cases have no independent truth, so only the cross-path and
/// bracket properties apply there.
///
/// The measure family (core/measure_family.h) gets its own property set,
/// run by `EvaluateMeasures` (called from Evaluate with the default
/// engines):
///  * `measure-path`       — string/prepared/columnar bit-identity and
///                           [0, 1] range, per measure engine
///  * `measure-truth`      — pml equals an independent brute-force world
///                           maximum (small records); guesswork equals an
///                           independent modal-world F1 recomputation
///  * `measure-order`      — truth ≤ pml and guesswork ≤ pml (+slack)
///  * `measure-bracket`    — under − slack ≤ truth ≤ over + slack
///  * `measure-vs-bounds`  — the under/over engines are bitwise equal to
///                           BoundRecordLeakage's lower/upper
///  * `measure-degenerate` — all-{0,1}-confidence cases have one possible
///                           world, whose directly-computed F1 every
///                           measure must reproduce (any record size)
///  * `measure-monotone`   — extending r with a fresh unmatched attribute
///                           leaves pml bit-identical (conf < 1 excluded,
///                           conf ≥ 0.5 can only grow the modal world):
///                           guesswork/under/over may only decrease
///
/// Thread-compatible: Evaluate is const and engines are stateless, but the
/// shared workspace means one Oracle per thread.
class Oracle {
 public:
  explicit Oracle(OracleConfig config = {});

  /// The measure engines one EvaluateMeasures pass cross-validates. Null
  /// entries resolve to the process-wide singletons; tests inject
  /// deliberately-perturbed engines here to prove each property would
  /// catch a wrong implementation.
  struct MeasureEngines {
    const LeakageEngine* pml = nullptr;
    const LeakageEngine* guesswork = nullptr;
    const LeakageEngine* under = nullptr;
    const LeakageEngine* over = nullptr;
  };

  /// Runs every enabled comparison on `c`. `case_seed` drives the
  /// Monte-Carlo sampling, so a (case, seed) pair always reproduces.
  OracleOutcome Evaluate(const CheckCase& c, uint64_t case_seed) const;

  /// The measure-family slice of Evaluate, appended into `*out`. Public so
  /// tests can swap in perturbed engines (the sensitivity proof each new
  /// measure owes the acceptance criteria).
  void EvaluateMeasures(const CheckCase& c, const MeasureEngines& engines,
                        OracleOutcome* out) const;

  const OracleConfig& config() const { return config_; }

 private:
  OracleConfig config_;
  NaiveLeakage naive_;  // cap 16 = AutoLeakage's dispatch range
  ExactLeakage exact_;
  ApproxLeakage approx1_;
  ApproxLeakage approx2_;
  AutoLeakage auto_;
  MonteCarloLeakage mc_;
};

}  // namespace infoleak::check
