#include "check/case_gen.h"

#include <array>
#include <cstddef>

namespace infoleak::check {
namespace {

// Shared label pool. Small on purpose: collisions between r and p labels
// (and duplicate labels within one record) are exactly the interesting
// regime; disjoint label spaces never match and exercise nothing.
constexpr std::array<const char*, 10> kLabels = {
    "A", "B", "C", "D", "E", "F", "G", "H", "I", "J"};

std::string LabelAt(std::size_t i) { return kLabels[i % kLabels.size()]; }

std::string ValueAt(uint64_t i) { return "v" + std::to_string(i); }

/// Confidence drawn from the boundary-heavy palette: exact 0 and 1, values
/// an ulp away from them, a plain 0.5, and a uniform draw.
double BoundaryConfidence(Rng& rng) {
  switch (rng.NextBounded(8)) {
    case 0: return 0.0;
    case 1: return 1.0;
    case 2: return 1e-7;
    case 3: return 1.0 - 1e-7;
    case 4: return 0.5;
    case 5: return 1e-15;
    default: return rng.NextDouble();
  }
}

/// Confidence hugging the guesswork modal threshold: exactly 0.5, an ulp
/// or a hair to either side. The include-iff-conf-≥-0.5 tie convention and
/// its FP sensitivity live or die in this band.
double ModalTieConfidence(Rng& rng) {
  switch (rng.NextBounded(6)) {
    case 0: return 0.5;
    case 1: return 0.5 - 1e-7;
    case 2: return 0.5 + 1e-7;
    case 3: return 0.5 - 1e-15;
    case 4: return 0.5 + 1e-15;
    default: return rng.Uniform(0.45, 0.55);
  }
}

/// Confidence from the divergence palette: masses near 0 and near 1 but
/// never at them. This is where the measure family disagrees hardest —
/// pml counts every conf > 0 match, guesswork only the ≥ 0.5 side, the
/// expectation weighs both — so biased sampling here stresses exactly the
/// cross-measure ordering properties.
double DivergenceConfidence(Rng& rng) {
  switch (rng.NextBounded(6)) {
    case 0: return 1e-7;
    case 1: return 1e-3;
    case 2: return 0.05;
    case 3: return 0.95;
    case 4: return 1.0 - 1e-7;
    default:
      return rng.Bernoulli(0.5) ? rng.Uniform(0.0, 0.1)
                                : rng.Uniform(0.9, 1.0);
  }
}

/// Weight from the extreme palette. Kept within [1e-6, 1e6]: wide enough
/// to exercise cancellation and the Taylor blow-up, narrow enough that no
/// engine's intermediate sums overflow double range (overflow is rejected
/// with InvalidArgument and tested separately, not fuzzed).
double ExtremeWeight(Rng& rng) {
  switch (rng.NextBounded(6)) {
    case 0: return 1e-6;
    case 1: return 1e-3;
    case 2: return 1.0;
    case 3: return 1e3;
    case 4: return 1e6;
    default: return rng.Uniform(0.1, 10.0);
  }
}

/// Appends `n` attributes with labels drawn from the first `label_span`
/// pool entries and values from [0, value_span).
void FillRecord(Record* rec, Rng& rng, std::size_t n, std::size_t label_span,
                uint64_t value_span, bool boundary_conf) {
  for (std::size_t i = 0; i < n; ++i) {
    Attribute a;
    a.label = LabelAt(rng.NextBounded(label_span));
    a.value = ValueAt(rng.NextBounded(value_span));
    a.confidence = boundary_conf ? BoundaryConfidence(rng) : rng.NextDouble();
    rec->Insert(std::move(a));
  }
}

/// Builds `p` by copying a random subset of `r`'s (label, value) pairs —
/// guaranteeing matches — then adding a few fresh pairs that miss.
void FillReferenceFrom(const Record& r, Record* p, Rng& rng,
                       std::size_t extra) {
  for (const auto& a : r) {
    if (rng.Bernoulli(0.5)) p->Insert(Attribute{a.label, a.value, 1.0});
  }
  for (std::size_t i = 0; i < extra; ++i) {
    p->Insert(Attribute{LabelAt(rng.NextBounded(kLabels.size())),
                        ValueAt(900 + rng.NextBounded(50)), 1.0});
  }
}

void AddExplicitWeights(WeightModel* wm, Rng& rng, std::size_t labels,
                        bool allow_zero) {
  for (std::size_t i = 0; i < labels; ++i) {
    double w = ExtremeWeight(rng);
    if (allow_zero && rng.NextBounded(4) == 0) w = 0.0;
    (void)wm->SetWeight(LabelAt(i), w);  // palette weights are always valid
  }
}

}  // namespace

CaseGenerator::CaseGenerator(uint64_t seed) : rng_(seed), seed_(seed) {}

uint64_t CaseGenerator::CaseSeed(uint64_t seed, std::size_t index) {
  // SplitMix64 finalizer over (seed, index): stable across platforms and
  // independent of how many draws the generator itself consumed.
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (index + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

CheckCase CaseGenerator::Next() {
  constexpr std::size_t kShapes = 14;
  const std::size_t shape = count_ % kShapes;
  const std::size_t index = count_++;
  CheckCase c;
  const char* shape_name = "uniform-random";
  switch (shape) {
    case 0:  // baseline: moderate sizes, smooth confidences, unit weights
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(10), 8, 12, false);
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(4));
      break;
    case 1:  // confidences pinned to the 0/1 boundary
      shape_name = "boundary-conf";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(10), 8, 12, true);
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(4));
      break;
    case 2:  // empty adversary record
      shape_name = "empty-r";
      FillRecord(&c.p, rng_, rng_.NextBounded(5), 8, 12, true);
      break;
    case 3:  // empty reference
      shape_name = "empty-p";
      FillRecord(&c.r, rng_, rng_.NextBounded(7), 8, 12, true);
      break;
    case 4:  // single attribute on both sides; match or near-miss
      shape_name = "single-attr";
      FillRecord(&c.r, rng_, 1, 3, 3, true);
      if (rng_.Bernoulli(0.5)) {
        FillReferenceFrom(c.r, &c.p, rng_, 0);
        if (c.p.empty()) FillRecord(&c.p, rng_, 1, 3, 3, true);
      } else {
        FillRecord(&c.p, rng_, 1, 3, 3, true);
      }
      break;
    case 5:  // |r| >> |p|: big records route auto to the Taylor engine
      shape_name = "big-r";
      FillRecord(&c.r, rng_, 20 + rng_.NextBounded(21), kLabels.size(), 30,
                 true);
      FillReferenceFrom(c.r, &c.p, rng_, 0);
      while (c.p.size() > 2) {
        (void)c.p.Erase(c.p.attributes().back().label,
                        c.p.attributes().back().value);
      }
      AddExplicitWeights(&c.wm, rng_, 4, false);
      break;
    case 6:  // |p| >> |r|
      shape_name = "big-p";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(3), kLabels.size(), 30,
                 true);
      FillReferenceFrom(c.r, &c.p, rng_, 25 + rng_.NextBounded(16));
      break;
    case 7:  // extreme weight magnitudes (the Taylor blow-up regime)
      shape_name = "extreme-weights";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(8), 6, 10, true);
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(3));
      AddExplicitWeights(&c.wm, rng_, 6, false);
      break;
    case 8:  // zero weights mixed in (degenerate denominators)
      shape_name = "zero-weights";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(8), 6, 10, true);
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(3));
      AddExplicitWeights(&c.wm, rng_, 6, true);
      break;
    case 9:  // duplicate labels: one label, many values, on both sides
      shape_name = "duplicate-labels";
      FillRecord(&c.r, rng_, 2 + rng_.NextBounded(7), 2, 8, true);
      FillReferenceFrom(c.r, &c.p, rng_, 1 + rng_.NextBounded(3));
      if (rng_.Bernoulli(0.5)) AddExplicitWeights(&c.wm, rng_, 2, true);
      break;
    case 10:  // deterministic records: every confidence exactly 0 or 1
      shape_name = "deterministic";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(8), 6, 8, true);
      for (const auto& a : std::vector<Attribute>(c.r.attributes())) {
        (void)c.r.SetConfidence(a.label, a.value,
                                rng_.Bernoulli(0.5) ? 1.0 : 0.0);
      }
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(3));
      break;
    case 11:  // confidences packed around the guesswork modal threshold
      shape_name = "modal-tie";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(8), 6, 8, false);
      for (const auto& a : std::vector<Attribute>(c.r.attributes())) {
        (void)c.r.SetConfidence(a.label, a.value, ModalTieConfidence(rng_));
      }
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(3));
      if (rng_.Bernoulli(0.5)) AddExplicitWeights(&c.wm, rng_, 4, true);
      break;
    case 12:  // near-0/near-1 confidence split: max measure disagreement
      shape_name = "measure-divergence";
      FillRecord(&c.r, rng_, 2 + rng_.NextBounded(9), 6, 8, false);
      for (const auto& a : std::vector<Attribute>(c.r.attributes())) {
        (void)c.r.SetConfidence(a.label, a.value, DivergenceConfidence(rng_));
      }
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(3));
      if (rng_.Bernoulli(0.5)) AddExplicitWeights(&c.wm, rng_, 4, false);
      break;
    default:  // uniform non-1 weight: exact-eligible with a scaled weight
      shape_name = "uniform-weight";
      FillRecord(&c.r, rng_, 1 + rng_.NextBounded(10), 6, 10, true);
      FillReferenceFrom(c.r, &c.p, rng_, rng_.NextBounded(4));
      {
        WeightModel scaled(ExtremeWeight(rng_));
        // Same weight on every label both records use, via explicit
        // entries so the model round-trips through its text spec.
        for (const auto& a : c.r) {
          (void)c.wm.SetWeight(a.label, scaled.default_weight());
        }
        for (const auto& a : c.p) {
          (void)c.wm.SetWeight(a.label, scaled.default_weight());
        }
      }
      break;
  }
  c.name = "seed=" + std::to_string(seed_) + "/case=" +
           std::to_string(index) + "/shape=" + shape_name;
  return c;
}

}  // namespace infoleak::check
