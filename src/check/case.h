#pragma once

#include <string>
#include <string_view>

#include "core/record.h"
#include "core/record_io.h"
#include "core/weights.h"
#include "util/result.h"

namespace infoleak::check {

/// \brief One differential-oracle input: an adversary record `r`, a
/// reference `p`, and a weight model — everything a leakage engine needs.
/// Cases are value types: generated, shrunk, serialized into the regression
/// corpus, and replayed, all through the same text form.
struct CheckCase {
  Record r;
  Record p;
  WeightModel wm;
  /// Provenance for reports: "seed=1/case=42/shape=boundary-conf" or the
  /// corpus filename.
  std::string name;
};

/// \brief Renders the weight model's explicit weights as the
/// `WeightModel::Parse` spec ("A=2,B=0.5", round-trip doubles; "" for an
/// all-default model). Only models with the default weight 1 round-trip —
/// the spec grammar has no slot for the default — so the generator never
/// produces anything else.
std::string FormatWeights(const WeightModel& wm);

/// \brief The corpus text form:
///   # optional comment lines
///   r: {<L0, v1, 0.5>, <L1, v2>}
///   p: {<L0, v1>}
///   w: L0=2,L1=0.5
/// The `w:` line is omitted for an all-default weight model.
std::string FormatCase(const CheckCase& c);

/// \brief Parses the corpus text form; `name` becomes the case's
/// provenance. Unknown line prefixes are errors, missing `r:`/`p:` lines
/// are errors, comments and blank lines are skipped.
Result<CheckCase> ParseCase(std::string_view text, std::string name);

/// \brief Round-trips the case through its text form once. With round-trip
/// double rendering this is the identity — and that is the point: it
/// proves, per case, that every text transport (wire protocol, corpus
/// file, CSV) reproduces the exact doubles the offline engines evaluate,
/// so the served and recovered paths are comparable bit-for-bit.
Result<CheckCase> Canonicalize(const CheckCase& c);

}  // namespace infoleak::check
