#include "check/corpus.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <system_error>

#include "util/file.h"

namespace infoleak::check {
namespace {

namespace fs = std::filesystem;

std::string Hash8(std::string_view text) {
  // FNV-1a, folded to 32 bits: content addressing, not security.
  uint64_t h = 0xCBF29CE484222325ULL;
  for (unsigned char ch : text) {
    h ^= ch;
    h *= 0x100000001B3ULL;
  }
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x",
                static_cast<uint32_t>(h ^ (h >> 32)));
  return buf;
}

}  // namespace

Result<std::vector<CheckCase>> LoadCorpus(const std::string& dir) {
  std::vector<CheckCase> cases;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return cases;

  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".case") {
      files.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("cannot list corpus dir " + dir + ": " +
                            ec.message());
  }
  std::sort(files.begin(), files.end());
  cases.reserve(files.size());
  for (const auto& path : files) {
    INFOLEAK_ASSIGN_OR_RETURN(std::string text, ReadFileToString(path));
    INFOLEAK_ASSIGN_OR_RETURN(CheckCase c,
                              ParseCase(text, fs::path(path).filename().string()));
    cases.push_back(std::move(c));
  }
  return cases;
}

Result<std::string> WriteCorpusEntry(const std::string& dir,
                                     const Finding& f) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("cannot create corpus dir " + dir + ": " +
                            ec.message());
  }
  const std::string body = FormatCase(f.c);
  const std::string path = dir + "/" + f.kind + "-" + Hash8(body) + ".case";
  std::string text = "# kind: " + f.kind + "\n";
  text += "# detail: " + f.detail + "\n";
  text += "# found-by: " + f.c.name + "\n";
  text += body;
  INFOLEAK_RETURN_IF_ERROR(WriteStringToFile(path, text));
  return path;
}

}  // namespace infoleak::check
