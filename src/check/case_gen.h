#pragma once

#include <cstdint>
#include <string>

#include "check/case.h"
#include "util/rng.h"

namespace infoleak::check {

/// \brief Deterministic adversarial case stream for the differential
/// oracle. The i-th case from a given seed is always the same (the stream
/// depends only on the seed and the draw order), so `selfcheck --seed S`
/// reports are reproducible and a failure's provenance string pins it down.
///
/// Rather than sampling uniformly, the generator cycles through shapes
/// chosen to sit on the boundaries where leakage computations historically
/// break: confidences exactly 0.0/1.0, empty and single-attribute records,
/// |r| ≫ |p| and |p| ≫ |r|, extreme and zero weights, duplicate labels,
/// and near-cancelling Taylor denominators. Every shape still randomizes
/// its fill, so repeated cases of one shape differ.
class CaseGenerator {
 public:
  explicit CaseGenerator(uint64_t seed);

  /// The next case. `case.name` records seed, index, and shape;
  /// `CaseSeed()` of the same index seeds per-case randomness downstream
  /// (Monte-Carlo draws) independently of this stream.
  CheckCase Next();

  /// Stable per-case seed for downstream randomness: a SplitMix64-style
  /// mix of (seed, index), independent of the generator's own draws.
  static uint64_t CaseSeed(uint64_t seed, std::size_t index);

  std::size_t generated() const { return count_; }

 private:
  Rng rng_;
  uint64_t seed_;
  std::size_t count_ = 0;
};

}  // namespace infoleak::check
