#include "check/case.h"

#include "util/string_util.h"

namespace infoleak::check {

std::string FormatWeights(const WeightModel& wm) {
  std::string out;
  for (const auto& [label, w] : wm.explicit_weights()) {
    if (!out.empty()) out += ',';
    out += label;
    out += '=';
    out += FormatDoubleRoundTrip(w);
  }
  return out;
}

std::string FormatCase(const CheckCase& c) {
  std::string out = "r: " + FormatRecord(c.r) + "\n";
  out += "p: " + FormatRecord(c.p) + "\n";
  const std::string weights = FormatWeights(c.wm);
  if (!weights.empty()) out += "w: " + weights + "\n";
  return out;
}

Result<CheckCase> ParseCase(std::string_view text, std::string name) {
  CheckCase c;
  c.name = std::move(name);
  bool have_r = false;
  bool have_p = false;
  for (const auto& raw : Split(text, '\n')) {
    const std::string_view line = Trim(raw);
    if (line.empty() || line.front() == '#') continue;
    if (line.rfind("r:", 0) == 0) {
      INFOLEAK_ASSIGN_OR_RETURN(c.r, ParseRecord(line.substr(2)));
      have_r = true;
    } else if (line.rfind("p:", 0) == 0) {
      INFOLEAK_ASSIGN_OR_RETURN(c.p, ParseRecord(line.substr(2)));
      have_p = true;
    } else if (line.rfind("w:", 0) == 0) {
      INFOLEAK_ASSIGN_OR_RETURN(c.wm, WeightModel::Parse(line.substr(2)));
    } else {
      return Status::InvalidArgument("case line '" + std::string(line) +
                                     "' has no r:/p:/w: prefix");
    }
  }
  if (!have_r || !have_p) {
    return Status::InvalidArgument("case '" + c.name +
                                   "' needs both an r: and a p: line");
  }
  return c;
}

Result<CheckCase> Canonicalize(const CheckCase& c) {
  return ParseCase(FormatCase(c), c.name);
}

}  // namespace infoleak::check
