#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/oracle.h"
#include "util/result.h"

namespace infoleak::check {

/// What a selfcheck run does: replay the regression corpus, generate
/// adversarial cases, and cross-check every enabled engine/path — offline
/// engines through the `Oracle`, plus optionally the served path (a
/// loopback `infoleak serve`) and the recovered path (a DurableStore
/// round-trip through close-and-reopen).
struct SelfCheckConfig {
  std::size_t cases = 1000;
  uint64_t seed = 1;
  OracleConfig oracle;
  /// Compare offline answers against a loopback server, bit-for-bit.
  bool check_served = true;
  /// Append every record to a durable store, recover it at the end of the
  /// run, and demand bit-identical answers pre- and post-recovery.
  bool check_durable = true;
  /// Drive a seeded append/query/compact interleaving through a served
  /// durable store (the index-backed set-leak path) and demand every wire
  /// answer be bit-identical to a cold columnar rescan of a mirror — the
  /// materialized view must never drift from the scan it stands in for,
  /// across any prefix of the interleaving, including across WAL resets.
  bool check_inc = true;
  /// Regression corpus directory; "" skips replay. Replayed before
  /// generation so a regression fails fast.
  std::string corpus_dir;
  /// Write each newly-found, minimized disagreement into `corpus_dir`.
  bool extend_corpus = true;
  /// Scratch directory for the durable store; "" picks a unique directory
  /// under the system temp dir (removed afterwards).
  std::string scratch_dir;
  /// Findings minimized, reported, and written to the corpus; further
  /// disagreements are still counted. Shrinking re-evaluates the oracle
  /// hundreds of times per finding, so an unbounded pathological run must
  /// not take hours.
  std::size_t max_reported = 20;
};

struct SelfCheckReport {
  std::size_t corpus_cases = 0;
  std::size_t generated_cases = 0;
  std::size_t comparisons = 0;
  std::size_t disagreements = 0;  ///< all findings, reported or not
  std::vector<Finding> findings;  ///< minimized, first `max_reported`
  std::vector<std::string> corpus_written;  ///< new corpus entry paths

  bool clean() const { return disagreements == 0; }

  /// Deterministic multi-line report: totals, then each finding with its
  /// minimized case in corpus text form (paste-able into a .case file).
  std::string Summary() const;
};

/// \brief Runs the differential selfcheck. A non-OK status means the
/// harness itself could not run (bad corpus file, server failed to start);
/// disagreements are NOT errors here — they are data in the report, and
/// the CLI turns a non-clean report into its own failure.
Result<SelfCheckReport> RunSelfCheck(const SelfCheckConfig& config);

}  // namespace infoleak::check
