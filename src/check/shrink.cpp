#include "check/shrink.h"

#include <iterator>
#include <utility>
#include <vector>

namespace infoleak::check {
namespace {

enum class Mutated {
  kOutOfRange,     // index walked past the structure: stop this pass
  kNotApplicable,  // already in the simplified form: try the next index
  kApplied,
};

Mutated Mutate(CheckCase* c, std::size_t which, std::size_t index) {
  switch (which) {
    case 0: {  // drop r attribute
      if (index >= c->r.size()) return Mutated::kOutOfRange;
      const Attribute a = c->r.attributes()[index];
      (void)c->r.Erase(a.label, a.value);
      return Mutated::kApplied;
    }
    case 1: {  // drop p attribute
      if (index >= c->p.size()) return Mutated::kOutOfRange;
      const Attribute a = c->p.attributes()[index];
      (void)c->p.Erase(a.label, a.value);
      return Mutated::kApplied;
    }
    case 2: {  // confidence -> 1.0
      if (index >= c->r.size()) return Mutated::kOutOfRange;
      const Attribute& a = c->r.attributes()[index];
      if (a.confidence == 1.0) return Mutated::kNotApplicable;
      (void)c->r.SetConfidence(a.label, a.value, 1.0);
      return Mutated::kApplied;
    }
    case 3: {  // confidence -> 0.5 (only from a less-simple value)
      if (index >= c->r.size()) return Mutated::kOutOfRange;
      const Attribute& a = c->r.attributes()[index];
      // 1.0 ranks simpler than 0.5: without this order the ->1.0 and ->0.5
      // mutations would undo each other forever whenever both keep the
      // predicate, burning the whole step budget on a two-cycle.
      if (a.confidence == 0.5 || a.confidence == 1.0) {
        return Mutated::kNotApplicable;
      }
      (void)c->r.SetConfidence(a.label, a.value, 0.5);
      return Mutated::kApplied;
    }
    default: {  // drop one explicit weight (back to the default 1)
      const auto& weights = c->wm.explicit_weights();
      if (index >= weights.size()) return Mutated::kOutOfRange;
      auto it = weights.begin();
      std::advance(it, index);
      WeightModel pruned;
      for (const auto& [label, w] : weights) {
        if (label != it->first) (void)pruned.SetWeight(label, w);
      }
      c->wm = std::move(pruned);
      return Mutated::kApplied;
    }
  }
}

/// Structure-removing mutations shift later elements down one index, so a
/// kept removal re-tests the same index; in-place edits advance.
bool RemovesElement(std::size_t which) {
  return which == 0 || which == 1 || which == 4;
}

}  // namespace

CheckCase Shrink(const CheckCase& failing,
                 const std::function<bool(const CheckCase&)>& still_fails,
                 std::size_t max_steps) {
  CheckCase best = failing;
  std::size_t steps = 0;
  bool changed = true;
  while (changed && steps < max_steps) {
    changed = false;
    for (std::size_t which = 0; which < 5 && steps < max_steps; ++which) {
      std::size_t i = 0;
      while (steps < max_steps) {
        CheckCase candidate = best;
        const Mutated m = Mutate(&candidate, which, i);
        if (m == Mutated::kOutOfRange) break;
        if (m == Mutated::kNotApplicable) {
          ++i;
          continue;
        }
        Result<CheckCase> canonical = Canonicalize(candidate);
        ++steps;
        if (canonical.ok() && still_fails(*canonical)) {
          best = std::move(*canonical);
          changed = true;
          if (!RemovesElement(which)) ++i;
        } else {
          ++i;
        }
      }
    }
  }
  best.name = failing.name + "/shrunk";
  return best;
}

}  // namespace infoleak::check
