#pragma once

#include <string>
#include <vector>

#include "check/case.h"
#include "check/oracle.h"
#include "util/result.h"

namespace infoleak::check {

/// \brief Loads every `*.case` file in `dir`, sorted by filename (stable
/// replay order). A missing directory is an empty corpus, not an error —
/// a repo without checked-in regressions must still selfcheck. An entry
/// that fails to parse IS an error: a corrupt corpus silently skipping
/// cases would un-fix every bug it encodes.
Result<std::vector<CheckCase>> LoadCorpus(const std::string& dir);

/// \brief Writes `f`'s (minimized) case into `dir` (created if needed) as
/// `<kind>-<hash8>.case`, where the hash is over the case text — re-found
/// bugs dedupe onto the same file instead of piling up. The entry carries
/// a comment header recording the kind, the detail, and the provenance
/// string, so a reader can reproduce the failure from the file alone.
/// Returns the written path.
Result<std::string> WriteCorpusEntry(const std::string& dir,
                                     const Finding& f);

}  // namespace infoleak::check
