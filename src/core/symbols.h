#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

namespace infoleak {

/// \brief Interns strings to dense `uint32_t` ids.
///
/// The evaluation hot path (leakage over thousands of records against one
/// reference) spends most of its lookup time hashing and comparing label /
/// value strings. A `SymbolTable` folds each distinct string into a small
/// integer once, so the inner loops compare ids instead of bytes.
///
/// Interned strings are stored in a deque arena whose element addresses are
/// stable, so the id → name views stay valid as the table grows. The table
/// is movable but not copyable (copies would leave views dangling into the
/// original arena).
class SymbolTable {
 public:
  /// Sentinel returned by Find() for strings never interned.
  static constexpr uint32_t kNoSymbol = 0xFFFFFFFFu;

  SymbolTable() = default;
  SymbolTable(SymbolTable&&) = default;
  SymbolTable& operator=(SymbolTable&&) = default;
  SymbolTable(const SymbolTable&) = delete;
  SymbolTable& operator=(const SymbolTable&) = delete;

  /// Returns the id of `s`, interning it first if unseen. Ids are dense:
  /// the n-th distinct string gets id n-1.
  uint32_t Intern(std::string_view s);

  /// Id of `s`, or kNoSymbol when `s` was never interned. Never mutates.
  uint32_t Find(std::string_view s) const;

  /// The string behind `id`; empty view for unknown ids. The view stays
  /// valid for the table's lifetime.
  std::string_view NameOf(uint32_t id) const {
    return id < names_.size() ? names_[id] : std::string_view{};
  }

  std::size_t size() const { return names_.size(); }
  bool empty() const { return names_.empty(); }

 private:
  /// One slot of the open-addressing string index: the cached full hash
  /// (to skip byte comparisons on probe collisions) plus the interned id;
  /// id == kNoSymbol marks an empty slot. Flat linear probing at load
  /// factor <= 1/2 replaces the node-based unordered_map the index used to
  /// be — Find on the record-ingest path is now typically one cache line.
  struct IndexSlot {
    uint64_t hash = 0;
    uint32_t id = kNoSymbol;
  };

  std::size_t SlotFor(uint64_t hash) const;
  uint32_t Lookup(std::string_view s, uint64_t hash) const;
  void Grow();

  std::deque<std::string> arena_;  // owns the bytes; addresses are stable
  std::vector<IndexSlot> index_;   // open-addressing hash -> id
  std::vector<std::string_view> names_;  // id -> view
};

/// \brief The two string domains of an attribute, interned independently so
/// each stays dense (labels repeat far more than values).
struct Symbols {
  SymbolTable labels;
  SymbolTable values;
};

/// Packs an interned (label, value) pair into one 64-bit hash-map key.
inline uint64_t PackSymbolPair(uint32_t label, uint32_t value) {
  return (static_cast<uint64_t>(label) << 32) | value;
}

}  // namespace infoleak
