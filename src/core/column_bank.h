#pragma once

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/prepared.h"

namespace infoleak {

/// \brief Structure-of-arrays view of one record inside a `ColumnBank`:
/// raw pointers into the bank's contiguous columns plus the per-record
/// scalars the engines need. Cheap to construct (no ownership); valid until
/// the bank is appended to or destroyed.
struct ColumnRecordView {
  const double* conf = nullptr;        ///< believed confidence per attribute
  const double* weight = nullptr;      ///< resolved label weight per attribute
  const uint32_t* label = nullptr;     ///< interned label id (kNoSymbol if unknown to p)
  const uint32_t* match_pos = nullptr; ///< position in p, or PreparedReference::kNoMatch
  std::size_t size = 0;                ///< attribute count |r|
  bool uniform_weight = true;          ///< one weight across the record's labels
  double common_weight = 0.0;          ///< that weight (0 when empty)
};

/// \brief The data-oriented evaluation plane: a batch of records prepared
/// against one `PreparedReference` and laid out as contiguous per-column
/// arrays over the reference's interned symbol table — confidence, weight,
/// label id, and (the workhorse) the precomputed match position of every
/// attribute in `p`, plus record offset/length and per-record weight
/// summaries.
///
/// Where `PreparedRecord::Assign` re-resolves two string hashes and one
/// pair lookup per attribute per scan, a bank resolves them exactly once at
/// append time; a set-leakage scan over the bank touches nothing but flat
/// arrays. Banks are incrementally appendable, so a serving layer can keep
/// one bank per cached reference and extend it as the store grows — the
/// steady state evaluates thousands of records with zero hashing and zero
/// allocation.
///
/// The per-record column order is the record's canonical attribute order
/// (the same order the string and prepared paths iterate), so every
/// evaluation over a bank is bit-identical to the record-at-a-time paths —
/// pinned by columnar_equivalence_test and the selfcheck oracle's
/// `columnar-vs-prepared` property.
///
/// Lifetime: the bank borrows `ref`, which must outlive it. Thread safety:
/// concurrent readers are safe; appends need external synchronization
/// against readers (see RecordStore::SetLeakColumnar for the serving-side
/// locking pattern).
class ColumnBank {
 public:
  explicit ColumnBank(const PreparedReference& ref);

  ColumnBank(ColumnBank&&) = default;
  ColumnBank& operator=(ColumnBank&&) = default;
  ColumnBank(const ColumnBank&) = delete;
  ColumnBank& operator=(const ColumnBank&) = delete;

  /// Builds a bank holding every record of `db`, in order.
  static ColumnBank FromDatabase(const Database& db,
                                 const PreparedReference& ref);

  /// Appends one record's columns (the bank analogue of
  /// PreparedRecord::Assign, plus the match-position precomputation).
  void Append(const Record& r);

  /// Appends the records of `db` this bank does not cover yet — records
  /// [size(), db.size()). Precondition: the bank was built from a prefix of
  /// `db` (size() <= db.size()); the serving layer's incremental path.
  void ExtendFrom(const Database& db);

  /// Number of records in the bank.
  std::size_t size() const { return records_; }
  bool empty() const { return records_ == 0; }

  /// Total attribute cells across all records.
  std::size_t attributes() const { return conf_.size(); }

  /// Largest record length seen — what a workspace should reserve for.
  std::size_t max_record_size() const { return max_record_; }

  const PreparedReference& reference() const { return *ref_; }

  /// SoA view of record `i`. Precondition: i < size().
  ColumnRecordView view(std::size_t i) const {
    const std::size_t begin = static_cast<std::size_t>(offset_[i]);
    const std::size_t end = static_cast<std::size_t>(offset_[i + 1]);
    ColumnRecordView v;
    v.conf = conf_.data() + begin;
    v.weight = weight_.data() + begin;
    v.label = label_.data() + begin;
    v.match_pos = match_pos_.data() + begin;
    v.size = end - begin;
    v.uniform_weight = uniform_[i] != 0;
    v.common_weight = common_weight_[i];
    return v;
  }

 private:
  const PreparedReference* ref_;  // borrowed; must outlive the bank
  std::vector<double> conf_;
  std::vector<double> weight_;
  std::vector<uint32_t> label_;
  std::vector<uint32_t> match_pos_;
  std::vector<uint64_t> offset_;  // records_ + 1 entries; offset_[0] == 0
  std::vector<uint8_t> uniform_;
  std::vector<double> common_weight_;
  std::size_t records_ = 0;
  std::size_t max_record_ = 0;
};

/// Columnar analogue of FillMatches: scatters a record view's precomputed
/// match positions into the workspace's per-reference-position columns.
/// O(|r|), no hashing.
void FillMatchColumns(const ColumnRecordView& v, std::size_t reference_size,
                      LeakageWorkspace* ws);

/// Columnar analogue of UniformWeightOver (Algorithm 1's precondition).
bool UniformWeightOver(const ColumnRecordView& r, const PreparedReference& p);

}  // namespace infoleak
