#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/record.h"
#include "core/weights.h"
#include "util/result.h"

namespace infoleak {

/// Correlated-attribute decomposition (paper §2): "phone number and address
/// may be correlated: if we know the phone number we may be able to narrow
/// down the possible addresses... We can model this situation by assuming
/// there are three attributes: J contains the joint information, A the
/// remaining address information, and P the remaining phone information. If
/// Eve discovers Alice's phone number, she has values for J and P; if she
/// discovers the address, she gets J and A... Now we can provide weights
/// for the J, A and P labels, and not double count."
///
/// A `CorrelationModel` holds such groups. `Decompose` rewrites a record:
/// every attribute whose label belongs to a group contributes its remainder
/// attribute (label', original value) plus the group's joint attribute
/// <J_label, joint value>; multiple correlated attributes of one group
/// contribute the joint attribute once (max confidence), which is exactly
/// the paper's no-double-counting semantics. Weights for the joint and
/// remainder labels are supplied by the caller via the group definition and
/// applied to a `WeightModel` with `ApplyWeights`.
class CorrelationModel {
 public:
  /// One correlated group.
  struct Group {
    std::string joint_label;    ///< e.g. "J_contact"
    double joint_weight = 1.0;  ///< weight of the shared information
    /// member label -> (remainder label, remainder weight), e.g.
    /// "P" -> ("P_rest", 0.5), "A" -> ("A_rest", 1.0).
    std::map<std::string, std::pair<std::string, double>> members;
    /// Derivation table: (member label, value) -> joint value, e.g.
    /// ("P", "555-0100") -> "downtown" and ("A", "123 Main") -> "downtown".
    /// A member value absent from the table derives no joint attribute —
    /// an adversary holding an unrecognized (e.g. perturbed) value cannot
    /// extract the shared information from it, so a *wrong* phone never
    /// earns credit for the joint knowledge.
    std::map<std::pair<std::string, std::string>, std::string> joint_values;
  };

  /// Registers a group. Fails when a member label is already claimed by an
  /// earlier group, when the group has fewer than two members, or when any
  /// weight is negative.
  Status AddGroup(Group group);

  /// True iff `label` belongs to some group.
  bool IsCorrelated(std::string_view label) const;

  /// Rewrites `r` under the decomposition: each member attribute becomes
  /// its remainder attribute (same value, same confidence) plus — when the
  /// derivation table recognizes the value — one joint attribute
  /// <joint_label, derived joint value>. Knowing the correct phone or the
  /// correct address thus yields the *same* joint attribute (counted once,
  /// max confidence), while unrecognized values contribute only their
  /// remainder: the paper's no-double-counting semantics.
  Record Decompose(const Record& r) const;

  /// Decomposes every record of a database (provenance preserved).
  Database Decompose(const Database& db) const;

  /// Writes the joint and remainder label weights into `wm`.
  Status ApplyWeights(WeightModel* wm) const;

  std::size_t num_groups() const { return groups_.size(); }

 private:
  std::vector<Group> groups_;
  // member label -> group index
  std::map<std::string, std::size_t, std::less<>> member_to_group_;
};

}  // namespace infoleak
