#include "core/symbols.h"

namespace infoleak {

uint32_t SymbolTable::Intern(std::string_view s) {
  auto it = ids_.find(s);
  if (it != ids_.end()) return it->second;
  arena_.emplace_back(s);
  const std::string_view stored = arena_.back();
  const auto id = static_cast<uint32_t>(names_.size());
  ids_.emplace(stored, id);
  names_.push_back(stored);
  return id;
}

uint32_t SymbolTable::Find(std::string_view s) const {
  auto it = ids_.find(s);
  return it != ids_.end() ? it->second : kNoSymbol;
}

}  // namespace infoleak
