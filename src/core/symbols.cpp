#include "core/symbols.h"

#include <functional>

namespace infoleak {
namespace {

constexpr std::size_t kMinIndexCapacity = 16;

// std::hash<string_view> followed by a Fibonacci mix: the standard hash is
// allowed to be weak in its high bits, and the slot index is taken from the
// top of the product, so the odd multiplier redistributes whatever entropy
// the hash produced.
uint64_t HashOf(std::string_view s) {
  return std::hash<std::string_view>{}(s) * 0x9E3779B97F4A7C15ull;
}

}  // namespace

std::size_t SymbolTable::SlotFor(uint64_t hash) const {
  return static_cast<std::size_t>(hash >> 32) & (index_.size() - 1);
}

uint32_t SymbolTable::Lookup(std::string_view s, uint64_t hash) const {
  if (index_.empty()) return kNoSymbol;
  std::size_t i = SlotFor(hash);
  while (index_[i].id != kNoSymbol) {
    if (index_[i].hash == hash && names_[index_[i].id] == s) {
      return index_[i].id;
    }
    i = (i + 1) & (index_.size() - 1);
  }
  return kNoSymbol;
}

void SymbolTable::Grow() {
  const std::size_t capacity =
      index_.empty() ? kMinIndexCapacity : index_.size() * 2;
  std::vector<IndexSlot> old = std::move(index_);
  index_.assign(capacity, IndexSlot{});
  for (const IndexSlot& slot : old) {
    if (slot.id == kNoSymbol) continue;
    std::size_t i = SlotFor(slot.hash);
    while (index_[i].id != kNoSymbol) i = (i + 1) & (index_.size() - 1);
    index_[i] = slot;
  }
}

uint32_t SymbolTable::Intern(std::string_view s) {
  const uint64_t hash = HashOf(s);
  const uint32_t found = Lookup(s, hash);
  if (found != kNoSymbol) return found;
  if ((names_.size() + 1) * 2 > index_.size()) Grow();
  arena_.emplace_back(s);
  const std::string_view stored = arena_.back();
  const auto id = static_cast<uint32_t>(names_.size());
  names_.push_back(stored);
  std::size_t i = SlotFor(hash);
  while (index_[i].id != kNoSymbol) i = (i + 1) & (index_.size() - 1);
  index_[i] = IndexSlot{hash, id};
  return id;
}

uint32_t SymbolTable::Find(std::string_view s) const {
  return Lookup(s, HashOf(s));
}

}  // namespace infoleak
