#pragma once

#include "core/leakage.h"
#include "util/rng.h"

namespace infoleak {

/// \brief Monte-Carlo record leakage: estimates E[L0(r̄, p)] by sampling
/// possible worlds instead of enumerating them.
///
/// A natural third baseline between the naive oracle (exact, exponential)
/// and the Taylor approximation (fast, biased): unbiased for *arbitrary*
/// weights at O(samples·|r|) cost, with standard-error ~ 1/√samples. The
/// ablation bench quantifies where sampling beats the second-order Taylor
/// expansion (it rarely does at the paper's scales — which is itself a
/// result supporting the paper's design choice).
///
/// Deterministic: the world stream derives from (seed, r, p) only through
/// the explicit seed, so repeated calls return the same estimate.
class MonteCarloLeakage : public LeakageEngine {
 public:
  explicit MonteCarloLeakage(std::size_t samples = 10000,
                             uint64_t seed = 0xC0FFEE)
      : samples_(samples == 0 ? 1 : samples), seed_(seed) {}

  std::string_view name() const override { return "monte-carlo"; }

  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  /// Leakage estimate plus its standard error (sample std-dev / √n).
  struct Estimate {
    double mean = 0.0;
    double standard_error = 0.0;
    std::size_t samples = 0;
  };
  Result<Estimate> EstimateLeakage(const Record& r, const Record& p,
                                   const WeightModel& wm) const;

  /// As above with an explicit per-call seed that overrides the constructor
  /// seed. `selfcheck --seed` plumbs a per-case seed through here so every
  /// Monte-Carlo comparison in a run is reproducible without constructing
  /// one engine per case.
  Result<Estimate> EstimateLeakage(const Record& r, const Record& p,
                                   const WeightModel& wm, uint64_t seed) const;

  std::size_t samples() const { return samples_; }
  uint64_t seed() const { return seed_; }

 private:
  Result<Estimate> Run(const Record& r, const Record& p,
                       const WeightModel& wm, double base, double factor,
                       uint64_t seed) const;

  std::size_t samples_;
  uint64_t seed_;
};

}  // namespace infoleak
