#include "core/polynomial.h"

namespace infoleak {

std::vector<double> Poly::MultiplyBernoulli(const std::vector<double>& y,
                                            double c) {
  // Y(t) = Σ_x y[x]·t^{n−x}. Multiplying by (c·t + (1−c)) yields
  // Z(t) = Σ_k z[k]·t^{n+1−k} with z[k] = c·y[k] + (1−c)·y[k−1]
  // (out-of-range y treated as 0).
  std::vector<double> z(y.size() + 1, 0.0);
  for (std::size_t k = 0; k < z.size(); ++k) {
    double v = 0.0;
    if (k < y.size()) v += c * y[k];
    if (k >= 1) v += (1.0 - c) * y[k - 1];
    z[k] = v;
  }
  return z;
}

double Poly::IntegrateAgainstPower(const std::vector<double>& coeffs,
                                   double m) {
  double total = 0.0;
  const std::size_t size = coeffs.size();
  for (std::size_t x = 0; x < size; ++x) {
    total += coeffs[x] / (m + static_cast<double>(size - x));
  }
  return total;
}

double Poly::Evaluate(const std::vector<double>& coeffs, double t) {
  double acc = 0.0;
  for (double c : coeffs) acc = acc * t + c;
  return acc;
}

}  // namespace infoleak
