#include "core/bounds.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "core/kernels.h"

namespace infoleak {

LeakageBounds BoundRecordLeakage(const Record& r, const Record& p,
                                 const WeightModel& wm) {
  LeakageBounds bounds;
  const double wp = wm.TotalWeight(p);
  if (wp <= 0.0 || r.empty()) {
    bounds.upper = 0.0;
    return bounds;
  }

  double mean_all = 0.0;
  for (const auto& a : r) {
    mean_all += wm.Weight(a.label) * a.confidence;
  }

  double lower = 0.0;
  double expected_recall_mass = 0.0;
  for (const auto& b : p) {
    const Attribute* match = r.Find(b.label, b.value);
    if (match == nullptr || match->confidence == 0.0) continue;
    const double wb = wm.Weight(b.label);
    const double mean = mean_all - wb * match->confidence;
    const double denom = mean + wb + wp;
    if (denom > 0.0) {
      lower += 2.0 * match->confidence * wb / denom;
    }
    expected_recall_mass += match->confidence * wb;
  }
  bounds.lower = std::min(lower, 1.0);
  // F1 ≤ 2·Re pointwise, so L ≤ 2·E[Re]; and L ≤ 1 trivially.
  bounds.upper = std::min(1.0, 2.0 * expected_recall_mass / wp);
  // Never report an upper bound below the proven lower bound (floating
  // slack at the boundary).
  bounds.upper = std::max(bounds.upper, bounds.lower);
  return bounds;
}

LeakageBounds BoundRecordLeakagePrepared(const PreparedRecord& r,
                                         const PreparedReference& p,
                                         LeakageWorkspace* ws) {
  FillMatches(r, p, ws);
  const auto& attrs = r.attrs();
  const std::size_t n = attrs.size();
  ws->conf.resize(n);
  ws->weight.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws->conf[i] = attrs[i].confidence;
    ws->weight[i] = attrs[i].weight;
  }
  LeakageBounds bounds;
  kern::Active().bounds(ws->conf.data(), ws->weight.data(), n,
                        ws->match_conf.data(), p.attr_weights().data(),
                        p.size(), p.total_weight(), &bounds.lower,
                        &bounds.upper);
  return bounds;
}

LeakageBounds BoundRecordLeakageColumnar(const ColumnBank& bank,
                                         std::size_t index,
                                         LeakageWorkspace* ws) {
  return BoundRecordLeakageView(bank.view(index), bank.reference(), ws);
}

LeakageBounds BoundRecordLeakageView(const ColumnRecordView& v,
                                     const PreparedReference& p,
                                     LeakageWorkspace* ws) {
  FillMatchColumns(v, p.size(), ws);
  LeakageBounds bounds;
  kern::Active().bounds(v.conf, v.weight, v.size, ws->match_conf.data(),
                        p.attr_weights().data(), p.size(), p.total_weight(),
                        &bounds.lower, &bounds.upper);
  return bounds;
}

double ApproxLeakageErrorBound(const Record& r, const Record& p,
                               const WeightModel& wm, int order) {
  const double wp = wm.TotalWeight(p);
  double mean_all = 0.0;
  double var_all = 0.0;
  double weight_all = 0.0;
  for (const auto& a : r) {
    const double w = wm.Weight(a.label);
    mean_all += w * a.confidence;
    var_all += w * w * a.confidence * (1.0 - a.confidence);
    weight_all += w;
  }

  double bound = 0.0;
  for (const auto& b : p) {
    const Attribute* match = r.Find(b.label, b.value);
    if (match == nullptr) continue;
    const double pb = match->confidence;
    const double wb = wm.Weight(b.label);
    if (pb <= 0.0 || wb <= 0.0) continue;  // both engines' term is exactly 0
    const double c = wb + wp;
    const double mean = mean_all - wb * pb;
    const double var = var_all - wb * wb * pb * (1.0 - pb);
    const double ymax = weight_all - wb;
    const double denom = mean + c;
    if (denom <= 0.0) continue;  // engine skips; exact term is 0 too (wb>0
                                 // forces denom>0 unless weights vanish)
    const double jensen = wb / denom;
    const double chord =
        ymax > 0.0 ? wb / c + (wb / (ymax + c) - wb / c) * (mean / ymax)
                   : jensen;  // Y is deterministically 0
    const double gap = std::max(0.0, chord - jensen);
    const double corr =
        order >= 2 ? wb / (denom * denom * denom) * std::max(0.0, var) : 0.0;
    const double term_error =
        order >= 2 ? std::max(corr, std::max(0.0, gap - corr)) : gap;
    bound += 2.0 * pb * term_error;
  }
  if (std::isnan(bound)) return std::numeric_limits<double>::infinity();
  return bound;
}

}  // namespace infoleak
