#include "core/bounds.h"

#include <algorithm>

namespace infoleak {

LeakageBounds BoundRecordLeakage(const Record& r, const Record& p,
                                 const WeightModel& wm) {
  LeakageBounds bounds;
  const double wp = wm.TotalWeight(p);
  if (wp <= 0.0 || r.empty()) {
    bounds.upper = 0.0;
    return bounds;
  }

  double mean_all = 0.0;
  for (const auto& a : r) {
    mean_all += wm.Weight(a.label) * a.confidence;
  }

  double lower = 0.0;
  double expected_recall_mass = 0.0;
  for (const auto& b : p) {
    const Attribute* match = r.Find(b.label, b.value);
    if (match == nullptr || match->confidence == 0.0) continue;
    const double wb = wm.Weight(b.label);
    const double mean = mean_all - wb * match->confidence;
    const double denom = mean + wb + wp;
    if (denom > 0.0) {
      lower += 2.0 * match->confidence * wb / denom;
    }
    expected_recall_mass += match->confidence * wb;
  }
  bounds.lower = std::min(lower, 1.0);
  // F1 ≤ 2·Re pointwise, so L ≤ 2·E[Re]; and L ≤ 1 trivially.
  bounds.upper = std::min(1.0, 2.0 * expected_recall_mass / wp);
  // Never report an upper bound below the proven lower bound (floating
  // slack at the boundary).
  bounds.upper = std::max(bounds.upper, bounds.lower);
  return bounds;
}

}  // namespace infoleak
