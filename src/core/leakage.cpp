#include "core/leakage.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "core/kernels.h"
#include "core/polynomial.h"
#include "core/possible_worlds.h"
#include "obs/metrics.h"
#include "obs/request.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace infoleak {
namespace {

// ---------------------------------------------------------------------------
// Instrumentation handles (resolved once; Inc is a sharded relaxed add)
// ---------------------------------------------------------------------------

constexpr char kEvalHelp[] =
    "Record-leakage evaluations per engine (the hot-loop unit of work)";
constexpr char kPathHelp[] =
    "Record evaluations by API path: prepared fast path vs string "
    "adapter/fallback";

obs::Counter& EngineEvalCounter(std::string_view engine) {
  return obs::MetricsRegistry::Global().GetCounter(
      "infoleak_leakage_evaluations_total",
      {{"engine", std::string(engine)}}, kEvalHelp);
}

obs::Counter& PathCounter(bool prepared) {
  static obs::Counter& prepared_count =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_eval_path_total", {{"path", "prepared"}}, kPathHelp);
  static obs::Counter& string_count =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_eval_path_total", {{"path", "string"}}, kPathHelp);
  return prepared ? prepared_count : string_count;
}

obs::Counter& ColumnarPathCounter() {
  static obs::Counter& columnar_count =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_eval_path_total", {{"path", "columnar"}}, kPathHelp);
  return columnar_count;
}

/// The kernel table evaluations dispatch to, with the dispatch counted per
/// invocation under the variant that won (the variant is fixed per process,
/// so the label resolves once and Inc is a sharded relaxed add).
const kern::KernelTable& ActiveKernels() {
  static obs::Counter& dispatches = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_kernel_dispatch_total",
      {{"variant", std::string(kern::Active().name)}},
      "Array-kernel invocations by dispatched variant (scalar / avx2 / "
      "avx512; forced scalar via INFOLEAK_FORCE_SCALAR)");
  dispatches.Inc();
  return kern::Active();
}

obs::Counter& NaiveCapCounter() {
  static obs::Counter& rejected = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_naive_cap_rejections_total", {},
      "Naive-engine evaluations refused because the record exceeded the "
      "2^|r| enumeration cap");
  return rejected;
}

/// Every engine output is the expectation of a statistic in [0, 1], so a
/// finite total may only leave that interval by floating-point rounding
/// (exact/naive, off by an ulp) or by Taylor truncation error (approx,
/// which can overshoot badly when Var[Y] dwarfs the denominator — see the
/// selfcheck corpus). Clamp back into range; a non-finite total means the
/// weights overflowed double range and there is no meaningful value to
/// clamp, so refuse instead of propagating NaN/Inf to callers.
Result<double> FinishUnitInterval(double total, const char* what) {
  if (!std::isfinite(total)) {
    return Status::InvalidArgument(
        std::string(what) +
        " is not finite; the weight model is too extreme for double "
        "arithmetic");
  }
  return std::clamp(total, 0.0, 1.0);
}

obs::Histogram& SetLeakageLatency(bool parallel) {
  static obs::Histogram& serial = obs::MetricsRegistry::Global().GetHistogram(
      "infoleak_set_leakage_seconds", {{"mode", "serial"}},
      "Wall time of one SetLeakage/SetLeakageArgMax scan");
  static obs::Histogram& par = obs::MetricsRegistry::Global().GetHistogram(
      "infoleak_set_leakage_seconds", {{"mode", "parallel"}},
      "Wall time of one SetLeakage/SetLeakageArgMax scan");
  return parallel ? par : serial;
}

obs::Histogram& SetLeakageLatencyColumnar() {
  static obs::Histogram& columnar =
      obs::MetricsRegistry::Global().GetHistogram(
          "infoleak_set_leakage_seconds", {{"mode", "columnar"}},
          "Wall time of one SetLeakage/SetLeakageArgMax scan");
  return columnar;
}

/// Shared core of Algorithm 1 on prepared views. Computes
///   factor · Σ_{b∈p} p(b,r) · ∫₀¹ t^m · Π_{a∈z}(c_a·t + 1−c_a) dt
/// where z = r without the attribute matching b. With m = |p| and
/// factor = 2 this is L(r, p); with m = 0 and factor = 1 it is E[Pr].
///
/// Iteration stays in the records' canonical order (the same order the
/// string API walks), so the floating-point accumulation is bit-identical
/// to a from-scratch string evaluation.
double ExactSum(const PreparedRecord& r, const PreparedReference& p, double m,
                double factor, LeakageWorkspace* ws) {
  FillMatches(r, p, ws);
  const auto& rattrs = r.attrs();
  const std::size_t rn = rattrs.size();
  // Gather the confidence column; the kernel then runs Algorithm 1's
  // coefficient recurrence (in-place Poly::MultiplyBernoulli per attribute,
  // Poly::IntegrateAgainstPower per b ∈ p) over flat arrays — the same
  // arithmetic in the same order, shared with the columnar path.
  ws->conf.resize(rn);
  for (std::size_t i = 0; i < rn; ++i) ws->conf[i] = rattrs[i].confidence;
  ws->poly.resize(rn + 1);
  return ActiveKernels().exact_sum(ws->conf.data(), rn, ws->match_conf.data(),
                                   ws->match_rpos.data(), p.size(), m, factor,
                                   ws->poly.data());
}

/// Shared core of the §5.2 Taylor approximation on prepared views.
/// Approximates
///   factor · Σ_{b∈p} p(b,r) · E[w_b / (Y + w_b + base)]
/// where Y = Σ_{a∈r̄\{b}} w_a and base = Σ_{a∈p} w_a for leakage
/// (factor 2) or 0 for precision (factor 1).
double ApproxSum(const PreparedRecord& r, const PreparedReference& p,
                 double base, double factor, int order,
                 LeakageWorkspace* ws) {
  FillMatches(r, p, ws);
  // Gather the confidence and weight columns; the kernel precomputes the
  // record moments once and derives each per-b value by removing the
  // matched attribute's contribution, giving O(|p| + |r|).
  const auto& rattrs = r.attrs();
  const std::size_t rn = rattrs.size();
  ws->conf.resize(rn);
  ws->weight.resize(rn);
  for (std::size_t i = 0; i < rn; ++i) {
    ws->conf[i] = rattrs[i].confidence;
    ws->weight[i] = rattrs[i].weight;
  }
  return ActiveKernels().approx_sum(
      ws->conf.data(), ws->weight.data(), rn, ws->match_conf.data(),
      ws->match_rpos.data(), p.attr_weights().data(), p.size(), base, factor,
      order);
}

/// Enumerates all 2^|r| worlds (the paper's O(2^|r|·|r|) naive algorithm)
/// and returns E[factor·overlap/(total_r + base)], covering both F1
/// (base = W(p), factor = 2) and precision (base = 0, factor = 1).
Result<double> NaiveEnumerate(const PreparedRecord& r,
                              const PreparedReference& p, double base,
                              double factor, std::size_t max_attributes,
                              LeakageWorkspace* ws) {
  if (max_attributes > kMaxEnumerableAttributes) {
    max_attributes = kMaxEnumerableAttributes;
  }
  if (r.size() > max_attributes) {
    NaiveCapCounter().Inc();
    return Status::ResourceExhausted(
        "record has " + std::to_string(r.size()) +
        " attributes; naive enumeration capped at " +
        std::to_string(max_attributes));
  }
  const auto& attrs = r.attrs();
  const std::size_t n = attrs.size();
  ws->matched.assign(n, 0);
  ws->conf.resize(n);
  ws->weight.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws->matched[i] =
        p.MatchPosition(attrs[i].label, attrs[i].value) !=
                PreparedReference::kNoMatch
            ? 1
            : 0;
    ws->conf[i] = attrs[i].confidence;
    ws->weight[i] = attrs[i].weight;
  }
  return ActiveKernels().naive_sum(ws->conf.data(), ws->weight.data(),
                                   ws->matched.data(), n, base, factor);
}

/// Columnar twin of NaiveEnumerate: the bank already holds the confidence
/// and weight columns, and `matched` falls out of the precomputed match
/// positions without a single hash lookup.
Result<double> NaiveEnumerateColumnar(const ColumnRecordView& r, double base,
                                      double factor,
                                      std::size_t max_attributes,
                                      LeakageWorkspace* ws) {
  if (max_attributes > kMaxEnumerableAttributes) {
    max_attributes = kMaxEnumerableAttributes;
  }
  if (r.size > max_attributes) {
    NaiveCapCounter().Inc();
    return Status::ResourceExhausted(
        "record has " + std::to_string(r.size) +
        " attributes; naive enumeration capped at " +
        std::to_string(max_attributes));
  }
  ws->matched.assign(r.size, 0);
  for (std::size_t i = 0; i < r.size; ++i) {
    ws->matched[i] =
        r.match_pos[i] != PreparedReference::kNoMatch ? 1 : 0;
  }
  return ActiveKernels().naive_sum(r.conf, r.weight, ws->matched.data(),
                                   r.size, base, factor);
}

}  // namespace

// ---------------------------------------------------------------------------
// LeakageEngine defaults and adapters
// ---------------------------------------------------------------------------

Result<double> LeakageEngine::ExpectedRecall(const Record& r, const Record& p,
                                             const WeightModel& wm) const {
  // Recall is linear in the inclusion indicators, so the expectation is
  // exact for every engine: E[Re] = Σ_{b∈p} p(b,r)·w_b / Σ_{b∈p} w_b.
  const double denom = wm.TotalWeight(p);
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (const auto& b : p) {
    num += r.Confidence(b.label, b.value) * wm.Weight(b.label);
  }
  return FinishUnitInterval(num / denom, "expected recall");
}

Result<double> LeakageEngine::RecordLeakagePrepared(
    const PreparedRecord& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no prepared evaluation path");
}

Result<double> LeakageEngine::ExpectedPrecisionPrepared(
    const PreparedRecord& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no prepared evaluation path");
}

Result<double> LeakageEngine::ExpectedRecallPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  const double denom = p.total_weight();
  if (denom <= 0.0) return 0.0;
  FillMatches(r, p, ws);
  const double num = ActiveKernels().recall_sum(
      ws->match_conf.data(), p.attr_weights().data(), p.size());
  return FinishUnitInterval(num / denom, "expected recall");
}

Result<double> LeakageEngine::RecordLeakageColumnar(
    const ColumnRecordView& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no columnar evaluation path");
}

Result<double> LeakageEngine::ExpectedPrecisionColumnar(
    const ColumnRecordView& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no columnar evaluation path");
}

Result<double> LeakageEngine::ExpectedRecallColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  const double denom = p.total_weight();
  if (denom <= 0.0) return 0.0;
  FillMatchColumns(r, p.size(), ws);
  const double num = ActiveKernels().recall_sum(
      ws->match_conf.data(), p.attr_weights().data(), p.size());
  return FinishUnitInterval(num / denom, "expected recall");
}

Result<double> LeakageEngine::AdaptRecordLeakage(const Record& r,
                                                 const Record& p,
                                                 const WeightModel& wm) const {
  PathCounter(/*prepared=*/false).Inc();
  const PreparedReference ref(p, wm);
  const PreparedRecord pr(r, ref);
  LeakageWorkspace ws;
  return RecordLeakagePrepared(pr, ref, &ws);
}

Result<double> LeakageEngine::AdaptExpectedPrecision(
    const Record& r, const Record& p, const WeightModel& wm) const {
  PathCounter(/*prepared=*/false).Inc();
  const PreparedReference ref(p, wm);
  const PreparedRecord pr(r, ref);
  LeakageWorkspace ws;
  return ExpectedPrecisionPrepared(pr, ref, &ws);
}

// ---------------------------------------------------------------------------
// NaiveLeakage
// ---------------------------------------------------------------------------

Result<double> NaiveLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> NaiveLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> NaiveLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("naive");
  evals.Inc();
  Result<double> total = NaiveEnumerate(r, p, /*base=*/p.total_weight(),
                                        /*factor=*/2.0, max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive record leakage");
}

Result<double> NaiveLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  Result<double> total = NaiveEnumerate(r, p, /*base=*/0.0, /*factor=*/1.0,
                                        max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive expected precision");
}

Result<double> NaiveLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("naive");
  evals.Inc();
  Result<double> total = NaiveEnumerateColumnar(
      r, /*base=*/p.total_weight(), /*factor=*/2.0, max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive record leakage");
}

Result<double> NaiveLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& /*p*/,
    LeakageWorkspace* ws) const {
  Result<double> total = NaiveEnumerateColumnar(r, /*base=*/0.0,
                                                /*factor=*/1.0,
                                                max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive expected precision");
}

// ---------------------------------------------------------------------------
// ExactLeakage (Algorithm 1)
// ---------------------------------------------------------------------------

Result<double> ExactLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> ExactLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

namespace {

/// Algorithm 1 cancels the constant weight out of every F1 numerator and
/// denominator — valid only when that weight is positive. A uniform weight
/// of exactly 0 still passes `UniformWeightOver`, but then every possible
/// world's weighted F1 is 0/0, which the per-world convention (and
/// NaiveLeakage) evaluates as 0: no weighted content, no leakage. Cancelling
/// the 0 instead would silently compute the *unweighted* F1 (the
/// differential selfcheck caught exactly that: naive 0 vs exact 0.297).
bool UniformWeightIsZero(const PreparedRecord& r, const PreparedReference& p) {
  if (r.size() > 0) return r.common_weight() == 0.0;
  if (p.size() > 0) return p.common_weight() == 0.0;
  return false;
}

bool UniformWeightIsZero(const ColumnRecordView& r,
                         const PreparedReference& p) {
  if (r.size > 0) return r.common_weight == 0.0;
  if (p.size() > 0) return p.common_weight() == 0.0;
  return false;
}

}  // namespace

Result<double> ExactLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("exact");
  evals.Inc();
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "Algorithm 1 requires a constant weight across the labels of r and "
        "p; use ApproxLeakage or NaiveLeakage for arbitrary weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(
      ExactSum(r, p, /*m=*/static_cast<double>(p.size()), /*factor=*/2.0, ws),
      "exact record leakage");
}

Result<double> ExactLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "exact expected precision requires constant weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(ExactSum(r, p, /*m=*/0, /*factor=*/1.0, ws),
                            "exact expected precision");
}

namespace {

/// Shared core of Algorithm 1 on a bank view: the match columns scatter
/// straight from the precomputed positions, and the confidence column feeds
/// the kernel without a gather.
double ExactSumColumnar(const ColumnRecordView& r, const PreparedReference& p,
                        double m, double factor, LeakageWorkspace* ws) {
  FillMatchColumns(r, p.size(), ws);
  ws->poly.resize(r.size + 1);
  return ActiveKernels().exact_sum(r.conf, r.size, ws->match_conf.data(),
                                   ws->match_rpos.data(), p.size(), m, factor,
                                   ws->poly.data());
}

}  // namespace

Result<double> ExactLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("exact");
  evals.Inc();
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "Algorithm 1 requires a constant weight across the labels of r and "
        "p; use ApproxLeakage or NaiveLeakage for arbitrary weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(
      ExactSumColumnar(r, p, /*m=*/static_cast<double>(p.size()),
                       /*factor=*/2.0, ws),
      "exact record leakage");
}

Result<double> ExactLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "exact expected precision requires constant weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(
      ExactSumColumnar(r, p, /*m=*/0, /*factor=*/1.0, ws),
      "exact expected precision");
}

// ---------------------------------------------------------------------------
// ApproxLeakage (§5.2)
// ---------------------------------------------------------------------------

Result<ApproxLeakage> ApproxLeakage::Create(int order) {
  if (order != 1 && order != 2) {
    return Status::InvalidArgument(
        "ApproxLeakage supports Taylor orders 1 and 2, got " +
        std::to_string(order));
  }
  return ApproxLeakage(order);
}

ApproxLeakage::ApproxLeakage(int order) : order_(order < 2 ? 1 : 2) {
  if (order != 1 && order != 2) {
    static obs::Counter& clamped = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_approx_order_clamped_total", {},
        "ApproxLeakage constructions whose Taylor order was clamped to a "
        "supported one");
    clamped.Inc();
  }
}

Result<double> ApproxLeakage::RecordLeakage(const Record& r, const Record& p,
                                            const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> ApproxLeakage::ExpectedPrecision(const Record& r,
                                                const Record& p,
                                                const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> ApproxLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("approx");
  evals.Inc();
  return FinishUnitInterval(ApproxSum(r, p, /*base=*/p.total_weight(),
                                      /*factor=*/2.0, order_, ws),
                            "approximate record leakage");
}

Result<double> ApproxLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return FinishUnitInterval(ApproxSum(r, p, /*base=*/0.0, /*factor=*/1.0,
                                      order_, ws),
                            "approximate expected precision");
}

namespace {

/// Shared core of the §5.2 approximation on a bank view: every input is
/// already a contiguous column, so the kernel runs gather-free.
double ApproxSumColumnar(const ColumnRecordView& r, const PreparedReference& p,
                         double base, double factor, int order,
                         LeakageWorkspace* ws) {
  FillMatchColumns(r, p.size(), ws);
  return ActiveKernels().approx_sum(r.conf, r.weight, r.size,
                                    ws->match_conf.data(),
                                    ws->match_rpos.data(),
                                    p.attr_weights().data(), p.size(), base,
                                    factor, order);
}

}  // namespace

Result<double> ApproxLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("approx");
  evals.Inc();
  return FinishUnitInterval(
      ApproxSumColumnar(r, p, /*base=*/p.total_weight(), /*factor=*/2.0,
                        order_, ws),
      "approximate record leakage");
}

Result<double> ApproxLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return FinishUnitInterval(
      ApproxSumColumnar(r, p, /*base=*/0.0, /*factor=*/1.0, order_, ws),
      "approximate expected precision");
}

// ---------------------------------------------------------------------------
// AutoLeakage
// ---------------------------------------------------------------------------

const LeakageEngine& AutoLeakage::PickBy(bool uniform,
                                         std::size_t record_size) const {
  static constexpr char kPickHelp[] =
      "Engine choices made by AutoLeakage's dispatch rule";
  if (uniform) {
    static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_auto_engine_selected_total", {{"engine", "exact"}},
        kPickHelp);
    picked.Inc();
    return exact_;
  }
  if (record_size <= naive_cutoff_) {
    static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_auto_engine_selected_total", {{"engine", "naive"}},
        kPickHelp);
    picked.Inc();
    return naive_;
  }
  static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_auto_engine_selected_total", {{"engine", "approx"}},
      kPickHelp);
  picked.Inc();
  return approx_;
}

const LeakageEngine& AutoLeakage::Pick(const PreparedRecord& r,
                                       const PreparedReference& p) const {
  return PickBy(UniformWeightOver(r, p), r.size());
}

Result<double> AutoLeakage::RecordLeakage(const Record& r, const Record& p,
                                          const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> AutoLeakage::ExpectedPrecision(const Record& r,
                                              const Record& p,
                                              const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> AutoLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return Pick(r, p).RecordLeakagePrepared(r, p, ws);
}

Result<double> AutoLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return Pick(r, p).ExpectedPrecisionPrepared(r, p, ws);
}

Result<double> AutoLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return PickBy(UniformWeightOver(r, p), r.size)
      .RecordLeakageColumnar(r, p, ws);
}

Result<double> AutoLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return PickBy(UniformWeightOver(r, p), r.size)
      .ExpectedPrecisionColumnar(r, p, ws);
}

// ---------------------------------------------------------------------------
// Set leakage
// ---------------------------------------------------------------------------

namespace {

/// String-API fallback for engines without a prepared path.
Result<double> SetLeakageArgMaxFallback(const Database& db, const Record& p,
                                        const WeightModel& wm,
                                        const LeakageEngine& engine,
                                        std::ptrdiff_t* argmax) {
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  for (std::size_t i = 0; i < db.size(); ++i) {
    PathCounter(/*prepared=*/false).Inc();
    Result<double> l = engine.RecordLeakage(db[i], p, wm);
    if (!l.ok()) return l.status();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

}  // namespace

Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax) {
  obs::TraceSpan span("leakage/set");
  WallTimer timer;
  if (!engine.SupportsPrepared()) {
    Result<double> out = SetLeakageArgMaxFallback(db, p.record(),
                                                  p.weight_model(), engine,
                                                  argmax);
    SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
    return out;
  }
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  LeakageWorkspace ws;
  PreparedRecord r;
  for (std::size_t i = 0; i < db.size(); ++i) {
    r.Assign(db[i], p);
    Result<double> l = engine.RecordLeakagePrepared(r, p, &ws);
    if (!l.ok()) return l.status();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  PathCounter(/*prepared=*/true).Inc(db.size());
  SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax,
                                const std::function<bool()>& cancel,
                                std::size_t check_every) {
  if (!cancel) return SetLeakageArgMax(db, p, engine, argmax);
  if (check_every == 0) check_every = 1;
  obs::TraceSpan span("leakage/set");
  WallTimer timer;
  const bool prepared = engine.SupportsPrepared();
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  LeakageWorkspace ws;
  PreparedRecord r;
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (i % check_every == 0 && cancel()) {
      return Status::DeadlineExceeded(
          "set-leakage scan cancelled after " + std::to_string(i) + " of " +
          std::to_string(db.size()) + " records");
    }
    Result<double> l = 0.0;
    if (prepared) {
      r.Assign(db[i], p);
      l = engine.RecordLeakagePrepared(r, p, &ws);
    } else {
      l = engine.RecordLeakage(db[i], p.record(), p.weight_model());
    }
    if (!l.ok()) return l.status();
    PathCounter(prepared).Inc();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

Result<double> SetLeakageArgMax(const Database& db, const Record& p,
                                const WeightModel& wm,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax) {
  if (!engine.SupportsPrepared()) {
    return SetLeakageArgMaxFallback(db, p, wm, engine, argmax);
  }
  const PreparedReference ref(p, wm);
  return SetLeakageArgMax(db, ref, engine, argmax);
}

Result<double> SetLeakage(const Database& db, const Record& p,
                          const WeightModel& wm,
                          const LeakageEngine& engine) {
  return SetLeakageArgMax(db, p, wm, engine, nullptr);
}

Result<double> SetLeakage(const Database& db, const PreparedReference& p,
                          const LeakageEngine& engine) {
  return SetLeakageArgMax(db, p, engine, nullptr);
}

Result<double> SetLeakageParallel(const Database& db,
                                  const PreparedReference& p,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<std::size_t>(num_threads, db.size());
  static obs::Gauge& threads_gauge = obs::MetricsRegistry::Global().GetGauge(
      "infoleak_set_leakage_parallel_threads", {},
      "Worker threads used by the most recent SetLeakageParallel call");
  threads_gauge.Set(static_cast<double>(std::max<std::size_t>(num_threads, 1)));
  if (num_threads <= 1) return SetLeakage(db, p, engine);

  obs::TraceSpan span("leakage/set_parallel");
  WallTimer timer;
  const bool prepared = engine.SupportsPrepared();
  std::vector<double> best(num_threads, 0.0);
  std::vector<Status> errors(num_threads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      // Strided partition keeps per-thread work balanced when record sizes
      // trend across the database. The prepared reference is shared
      // read-only; the workspace and record view are thread-local, and the
      // path counter's thread-sharded storage keeps the per-record
      // increments contention-free.
      LeakageWorkspace ws;
      PreparedRecord r;
      obs::Counter& path = PathCounter(prepared);
      for (std::size_t i = t; i < db.size(); i += num_threads) {
        Result<double> l = 0.0;
        if (prepared) {
          r.Assign(db[i], p);
          l = engine.RecordLeakagePrepared(r, p, &ws);
        } else {
          l = engine.RecordLeakage(db[i], p.record(), p.weight_model());
        }
        path.Inc();
        if (!l.ok()) {
          errors[t] = l.status();
          return;
        }
        best[t] = std::max(best[t], *l);
      }
    });
  }
  for (auto& w : workers) w.join();
  SetLeakageLatency(/*parallel=*/true).Observe(timer.ElapsedSeconds());
  for (const auto& st : errors) {
    if (!st.ok()) return st;
  }
  double total = 0.0;
  for (double b : best) total = std::max(total, b);
  return total;
}

Result<double> SetLeakageParallel(const Database& db, const Record& p,
                                  const WeightModel& wm,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads) {
  const PreparedReference ref(p, wm);
  return SetLeakageParallel(db, ref, engine, num_threads);
}

// ---------------------------------------------------------------------------
// Batch leakage
// ---------------------------------------------------------------------------

Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const PreparedReference& p,
                                         const LeakageEngine& engine) {
  obs::TraceSpan span("leakage/batch");
  std::vector<double> out;
  out.reserve(records.size());
  if (!engine.SupportsPrepared()) {
    for (const Record* rec : records) {
      PathCounter(/*prepared=*/false).Inc();
      Result<double> l =
          engine.RecordLeakage(*rec, p.record(), p.weight_model());
      if (!l.ok()) return l.status();
      out.push_back(*l);
    }
    return out;
  }
  LeakageWorkspace ws;
  PreparedRecord r;
  for (const Record* rec : records) {
    r.Assign(*rec, p);
    Result<double> l = engine.RecordLeakagePrepared(r, p, &ws);
    if (!l.ok()) return l.status();
    out.push_back(*l);
  }
  PathCounter(/*prepared=*/true).Inc(records.size());
  return out;
}

Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const Record& p,
                                         const WeightModel& wm,
                                         const LeakageEngine& engine) {
  const PreparedReference ref(p, wm);
  return BatchLeakage(records, ref, engine);
}

// ---------------------------------------------------------------------------
// Columnar set leakage
// ---------------------------------------------------------------------------

namespace {

/// One worker's scan over the contiguous bank range [begin, end): local
/// first-strictly-greater argmax, optional cancellation polling, first
/// error wins. Shared by the serial (one range spanning the bank) and
/// sharded paths so both accumulate identically.
struct ColumnRangeResult {
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  Status status = Status::OK();
};

ColumnRangeResult ScanColumnRange(const ColumnBank& bank,
                                  const LeakageEngine& engine,
                                  std::size_t begin, std::size_t end,
                                  const std::function<bool()>& cancel,
                                  std::size_t check_every,
                                  std::atomic<bool>* stop) {
  ColumnRangeResult out;
  const PreparedReference& p = bank.reference();
  LeakageWorkspace ws;
  ws.ReserveFor(bank.max_record_size(), p.size());
  for (std::size_t i = begin; i < end; ++i) {
    if ((i - begin) % check_every == 0) {
      if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
        out.status = Status::DeadlineExceeded("set-leakage scan cancelled");
        return out;
      }
      if (cancel && cancel()) {
        if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
        out.status = Status::DeadlineExceeded(
            "set-leakage scan cancelled after " + std::to_string(i - begin) +
            " of " + std::to_string(end - begin) + " records");
        return out;
      }
    }
    Result<double> l = engine.RecordLeakageColumnar(bank.view(i), p, &ws);
    if (!l.ok()) {
      if (stop != nullptr) stop->store(true, std::memory_order_relaxed);
      out.status = l.status();
      return out;
    }
    if (out.best_index < 0 || *l > out.best) {
      out.best = *l;
      out.best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  return out;
}

}  // namespace

Result<double> SetLeakageColumnar(const ColumnBank& bank,
                                  const LeakageEngine& engine,
                                  std::ptrdiff_t* argmax,
                                  const ColumnScanOptions& options) {
  if (!engine.SupportsColumnar()) {
    return Status::NotSupported("engine '" + std::string(engine.name()) +
                                "' has no columnar evaluation path");
  }
  obs::TraceSpan span("leakage/set_columnar");
  // Request-scoped attribution covers every exit (success and
  // cancellation); records are charged up front as the count visible to
  // the scan.
  obs::PhaseTimer eval_phase(options.ctx, obs::Phase::kEval);
  if (options.ctx != nullptr) {
    options.ctx->AddRecordsScanned(bank.size());
    options.ctx->set_kernel_variant(kern::Active().name);
  }
  WallTimer timer;
  const std::size_t check_every =
      options.check_every == 0 ? 1 : options.check_every;
  std::size_t num_threads =
      options.num_threads == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : options.num_threads;
  num_threads = std::min(num_threads, bank.size());

  ColumnRangeResult reduced;
  if (num_threads <= 1) {
    reduced = ScanColumnRange(bank, engine, 0, bank.size(), options.cancel,
                              check_every, nullptr);
    if (!reduced.status.ok()) return reduced.status;
  } else {
    // Contiguous shards: each worker streams one slice of the columns front
    // to back, and reducing in worker order reproduces the serial scan's
    // first-strictly-greater argmax exactly.
    std::vector<ColumnRangeResult> results(num_threads);
    std::atomic<bool> stop{false};
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    const std::size_t chunk = (bank.size() + num_threads - 1) / num_threads;
    for (std::size_t t = 0; t < num_threads; ++t) {
      const std::size_t begin = t * chunk;
      const std::size_t end = std::min(bank.size(), begin + chunk);
      workers.emplace_back([&, t, begin, end] {
        results[t] = ScanColumnRange(bank, engine, begin, end, options.cancel,
                                     check_every, &stop);
      });
    }
    for (auto& w : workers) w.join();
    for (const ColumnRangeResult& r : results) {
      if (!r.status.ok()) return r.status;
      if (r.best_index < 0) continue;
      if (reduced.best_index < 0 || r.best > reduced.best) {
        reduced.best = r.best;
        reduced.best_index = r.best_index;
      }
    }
  }
  ColumnarPathCounter().Inc(bank.size());
  SetLeakageLatencyColumnar().Observe(timer.ElapsedSeconds());
  if (argmax != nullptr) *argmax = reduced.best_index;
  return reduced.best_index < 0 ? 0.0 : reduced.best;
}

Result<std::vector<double>> BatchLeakageColumnar(const ColumnBank& bank,
                                                 const LeakageEngine& engine) {
  if (!engine.SupportsColumnar()) {
    return Status::NotSupported("engine '" + std::string(engine.name()) +
                                "' has no columnar evaluation path");
  }
  obs::TraceSpan span("leakage/batch_columnar");
  const PreparedReference& p = bank.reference();
  std::vector<double> out;
  out.reserve(bank.size());
  LeakageWorkspace ws;
  ws.ReserveFor(bank.max_record_size(), p.size());
  for (std::size_t i = 0; i < bank.size(); ++i) {
    Result<double> l = engine.RecordLeakageColumnar(bank.view(i), p, &ws);
    if (!l.ok()) return l.status();
    out.push_back(*l);
  }
  ColumnarPathCounter().Inc(bank.size());
  return out;
}

Result<double> BankRecordLeakage(const ColumnBank& bank, std::size_t index,
                                 const LeakageEngine& engine,
                                 LeakageWorkspace* ws) {
  if (!engine.SupportsColumnar()) {
    return Status::NotSupported("engine '" + std::string(engine.name()) +
                                "' has no columnar evaluation path");
  }
  if (index >= bank.size()) {
    return Status::OutOfRange("bank record " + std::to_string(index) +
                              " out of range (bank holds " +
                              std::to_string(bank.size()) + ")");
  }
  const PreparedReference& p = bank.reference();
  LeakageWorkspace scratch;
  LeakageWorkspace* w = ws != nullptr ? ws : &scratch;
  w->ReserveFor(bank.max_record_size(), p.size());
  Result<double> l = engine.RecordLeakageColumnar(bank.view(index), p, w);
  if (l.ok()) ColumnarPathCounter().Inc(1);
  return l;
}

std::unique_ptr<LeakageEngine> MakeDefaultEngine() {
  return std::make_unique<AutoLeakage>();
}

}  // namespace infoleak
