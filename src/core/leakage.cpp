#include "core/leakage.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/polynomial.h"
#include "core/possible_worlds.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace infoleak {
namespace {

// ---------------------------------------------------------------------------
// Instrumentation handles (resolved once; Inc is a sharded relaxed add)
// ---------------------------------------------------------------------------

constexpr char kEvalHelp[] =
    "Record-leakage evaluations per engine (the hot-loop unit of work)";
constexpr char kPathHelp[] =
    "Record evaluations by API path: prepared fast path vs string "
    "adapter/fallback";

obs::Counter& EngineEvalCounter(std::string_view engine) {
  return obs::MetricsRegistry::Global().GetCounter(
      "infoleak_leakage_evaluations_total",
      {{"engine", std::string(engine)}}, kEvalHelp);
}

obs::Counter& PathCounter(bool prepared) {
  static obs::Counter& prepared_count =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_eval_path_total", {{"path", "prepared"}}, kPathHelp);
  static obs::Counter& string_count =
      obs::MetricsRegistry::Global().GetCounter(
          "infoleak_eval_path_total", {{"path", "string"}}, kPathHelp);
  return prepared ? prepared_count : string_count;
}

obs::Counter& NaiveCapCounter() {
  static obs::Counter& rejected = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_naive_cap_rejections_total", {},
      "Naive-engine evaluations refused because the record exceeded the "
      "2^|r| enumeration cap");
  return rejected;
}

/// Every engine output is the expectation of a statistic in [0, 1], so a
/// finite total may only leave that interval by floating-point rounding
/// (exact/naive, off by an ulp) or by Taylor truncation error (approx,
/// which can overshoot badly when Var[Y] dwarfs the denominator — see the
/// selfcheck corpus). Clamp back into range; a non-finite total means the
/// weights overflowed double range and there is no meaningful value to
/// clamp, so refuse instead of propagating NaN/Inf to callers.
Result<double> FinishUnitInterval(double total, const char* what) {
  if (!std::isfinite(total)) {
    return Status::InvalidArgument(
        std::string(what) +
        " is not finite; the weight model is too extreme for double "
        "arithmetic");
  }
  return std::clamp(total, 0.0, 1.0);
}

obs::Histogram& SetLeakageLatency(bool parallel) {
  static obs::Histogram& serial = obs::MetricsRegistry::Global().GetHistogram(
      "infoleak_set_leakage_seconds", {{"mode", "serial"}},
      "Wall time of one SetLeakage/SetLeakageArgMax scan");
  static obs::Histogram& par = obs::MetricsRegistry::Global().GetHistogram(
      "infoleak_set_leakage_seconds", {{"mode", "parallel"}},
      "Wall time of one SetLeakage/SetLeakageArgMax scan");
  return parallel ? par : serial;
}

/// Shared core of Algorithm 1 on prepared views. Computes
///   factor · Σ_{b∈p} p(b,r) · ∫₀¹ t^m · Π_{a∈z}(c_a·t + 1−c_a) dt
/// where z = r without the attribute matching b. With m = |p| and
/// factor = 2 this is L(r, p); with m = 0 and factor = 1 it is E[Pr].
///
/// Iteration stays in the records' canonical order (the same order the
/// string API walks), so the floating-point accumulation is bit-identical
/// to a from-scratch string evaluation.
double ExactSum(const PreparedRecord& r, const PreparedReference& p, double m,
                double factor, LeakageWorkspace* ws) {
  FillMatches(r, p, ws);
  const auto& rattrs = r.attrs();
  double total = 0.0;
  std::vector<double>& y = ws->poly;  // reused across all b ∈ p and calls
  y.reserve(rattrs.size() + 1);
  for (std::size_t j = 0; j < p.size(); ++j) {
    const double pb = ws->match_conf[j];
    if (pb == 0.0) continue;  // zero-confidence terms contribute nothing
    const uint32_t skip = ws->match_rpos[j];
    y.assign(1, 1.0);
    for (std::size_t i = 0; i < rattrs.size(); ++i) {
      if (i == skip) continue;
      // In-place Poly::MultiplyBernoulli: z[k] = c·y[k] + (1−c)·y[k−1],
      // computed back to front so y can be updated without a scratch list.
      const double c = rattrs[i].confidence;
      y.push_back(0.0);
      for (std::size_t k = y.size() - 1; k > 0; --k) {
        y[k] = c * y[k] + (1.0 - c) * y[k - 1];
      }
      y[0] *= c;
    }
    total += factor * pb * Poly::IntegrateAgainstPower(y, m);
  }
  return total;
}

/// Shared core of the §5.2 Taylor approximation on prepared views.
/// Approximates
///   factor · Σ_{b∈p} p(b,r) · E[w_b / (Y + w_b + base)]
/// where Y = Σ_{a∈r̄\{b}} w_a and base = Σ_{a∈p} w_a for leakage
/// (factor 2) or 0 for precision (factor 1).
double ApproxSum(const PreparedRecord& r, const PreparedReference& p,
                 double base, double factor, int order,
                 LeakageWorkspace* ws) {
  FillMatches(r, p, ws);
  // Precompute the moments of the full record once; per-b values follow by
  // removing the matched attribute's contribution, giving O(|p| + |r|).
  double mean_all = 0.0;
  double var_all = 0.0;
  for (const auto& a : r.attrs()) {
    mean_all += a.weight * a.confidence;
    var_all += a.weight * a.weight * a.confidence * (1.0 - a.confidence);
  }
  double total = 0.0;
  const auto& pattrs = p.attrs();
  const auto& rattrs = r.attrs();
  for (std::size_t j = 0; j < pattrs.size(); ++j) {
    const uint32_t mi = ws->match_rpos[j];
    if (mi == PreparedReference::kNoMatch) continue;
    const double pb = ws->match_conf[j];
    if (pb == 0.0) continue;
    const double wb = pattrs[j].weight;
    const double wm_match = rattrs[mi].weight;  // == wb (same label)
    const double mean = mean_all - wm_match * pb;
    const double var = var_all - wm_match * wm_match * pb * (1.0 - pb);
    const double denom = mean + wb + base;
    if (denom <= 0.0) continue;
    double term = wb / denom;
    if (order >= 2) term += wb / (denom * denom * denom) * var;
    total += factor * pb * term;
  }
  return total;
}

/// Enumerates all 2^|r| worlds (the paper's O(2^|r|·|r|) naive algorithm)
/// and returns E[factor·overlap/(total_r + base)], covering both F1
/// (base = W(p), factor = 2) and precision (base = 0, factor = 1).
Result<double> NaiveEnumerate(const PreparedRecord& r,
                              const PreparedReference& p, double base,
                              double factor, std::size_t max_attributes,
                              LeakageWorkspace* ws) {
  if (max_attributes > kMaxEnumerableAttributes) {
    max_attributes = kMaxEnumerableAttributes;
  }
  if (r.size() > max_attributes) {
    NaiveCapCounter().Inc();
    return Status::ResourceExhausted(
        "record has " + std::to_string(r.size()) +
        " attributes; naive enumeration capped at " +
        std::to_string(max_attributes));
  }
  const auto& attrs = r.attrs();
  const std::size_t n = attrs.size();
  ws->matched.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ws->matched[i] =
        p.MatchPosition(attrs[i].label, attrs[i].value) !=
                PreparedReference::kNoMatch
            ? 1
            : 0;
  }
  double total = 0.0;
  const uint64_t worlds = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double prob = 1.0;
    double weight_r = 0.0;
    double overlap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        prob *= attrs[i].confidence;
        weight_r += attrs[i].weight;
        if (ws->matched[i]) overlap += attrs[i].weight;
      } else {
        prob *= 1.0 - attrs[i].confidence;
      }
    }
    const double denom = weight_r + base;
    if (denom > 0.0) total += prob * factor * overlap / denom;
  }
  return total;
}

}  // namespace

// ---------------------------------------------------------------------------
// LeakageEngine defaults and adapters
// ---------------------------------------------------------------------------

Result<double> LeakageEngine::ExpectedRecall(const Record& r, const Record& p,
                                             const WeightModel& wm) const {
  // Recall is linear in the inclusion indicators, so the expectation is
  // exact for every engine: E[Re] = Σ_{b∈p} p(b,r)·w_b / Σ_{b∈p} w_b.
  const double denom = wm.TotalWeight(p);
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (const auto& b : p) {
    num += r.Confidence(b.label, b.value) * wm.Weight(b.label);
  }
  return FinishUnitInterval(num / denom, "expected recall");
}

Result<double> LeakageEngine::RecordLeakagePrepared(
    const PreparedRecord& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no prepared evaluation path");
}

Result<double> LeakageEngine::ExpectedPrecisionPrepared(
    const PreparedRecord& /*r*/, const PreparedReference& /*p*/,
    LeakageWorkspace* /*ws*/) const {
  return Status::NotSupported("engine '" + std::string(name()) +
                              "' has no prepared evaluation path");
}

Result<double> LeakageEngine::ExpectedRecallPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  const double denom = p.total_weight();
  if (denom <= 0.0) return 0.0;
  FillMatches(r, p, ws);
  double num = 0.0;
  const auto& pattrs = p.attrs();
  for (std::size_t j = 0; j < pattrs.size(); ++j) {
    num += ws->match_conf[j] * pattrs[j].weight;
  }
  return FinishUnitInterval(num / denom, "expected recall");
}

Result<double> LeakageEngine::AdaptRecordLeakage(const Record& r,
                                                 const Record& p,
                                                 const WeightModel& wm) const {
  PathCounter(/*prepared=*/false).Inc();
  const PreparedReference ref(p, wm);
  const PreparedRecord pr(r, ref);
  LeakageWorkspace ws;
  return RecordLeakagePrepared(pr, ref, &ws);
}

Result<double> LeakageEngine::AdaptExpectedPrecision(
    const Record& r, const Record& p, const WeightModel& wm) const {
  PathCounter(/*prepared=*/false).Inc();
  const PreparedReference ref(p, wm);
  const PreparedRecord pr(r, ref);
  LeakageWorkspace ws;
  return ExpectedPrecisionPrepared(pr, ref, &ws);
}

// ---------------------------------------------------------------------------
// NaiveLeakage
// ---------------------------------------------------------------------------

Result<double> NaiveLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> NaiveLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> NaiveLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("naive");
  evals.Inc();
  Result<double> total = NaiveEnumerate(r, p, /*base=*/p.total_weight(),
                                        /*factor=*/2.0, max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive record leakage");
}

Result<double> NaiveLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  Result<double> total = NaiveEnumerate(r, p, /*base=*/0.0, /*factor=*/1.0,
                                        max_attributes_, ws);
  if (!total.ok()) return total.status();
  return FinishUnitInterval(*total, "naive expected precision");
}

// ---------------------------------------------------------------------------
// ExactLeakage (Algorithm 1)
// ---------------------------------------------------------------------------

Result<double> ExactLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> ExactLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

namespace {

/// Algorithm 1 cancels the constant weight out of every F1 numerator and
/// denominator — valid only when that weight is positive. A uniform weight
/// of exactly 0 still passes `UniformWeightOver`, but then every possible
/// world's weighted F1 is 0/0, which the per-world convention (and
/// NaiveLeakage) evaluates as 0: no weighted content, no leakage. Cancelling
/// the 0 instead would silently compute the *unweighted* F1 (the
/// differential selfcheck caught exactly that: naive 0 vs exact 0.297).
bool UniformWeightIsZero(const PreparedRecord& r, const PreparedReference& p) {
  if (r.size() > 0) return r.common_weight() == 0.0;
  if (p.size() > 0) return p.common_weight() == 0.0;
  return false;
}

}  // namespace

Result<double> ExactLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("exact");
  evals.Inc();
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "Algorithm 1 requires a constant weight across the labels of r and "
        "p; use ApproxLeakage or NaiveLeakage for arbitrary weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(
      ExactSum(r, p, /*m=*/static_cast<double>(p.size()), /*factor=*/2.0, ws),
      "exact record leakage");
}

Result<double> ExactLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  if (!UniformWeightOver(r, p)) {
    return Status::InvalidArgument(
        "exact expected precision requires constant weights");
  }
  if (UniformWeightIsZero(r, p)) return 0.0;
  return FinishUnitInterval(ExactSum(r, p, /*m=*/0, /*factor=*/1.0, ws),
                            "exact expected precision");
}

// ---------------------------------------------------------------------------
// ApproxLeakage (§5.2)
// ---------------------------------------------------------------------------

Result<ApproxLeakage> ApproxLeakage::Create(int order) {
  if (order != 1 && order != 2) {
    return Status::InvalidArgument(
        "ApproxLeakage supports Taylor orders 1 and 2, got " +
        std::to_string(order));
  }
  return ApproxLeakage(order);
}

ApproxLeakage::ApproxLeakage(int order) : order_(order < 2 ? 1 : 2) {
  if (order != 1 && order != 2) {
    static obs::Counter& clamped = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_approx_order_clamped_total", {},
        "ApproxLeakage constructions whose Taylor order was clamped to a "
        "supported one");
    clamped.Inc();
  }
}

Result<double> ApproxLeakage::RecordLeakage(const Record& r, const Record& p,
                                            const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> ApproxLeakage::ExpectedPrecision(const Record& r,
                                                const Record& p,
                                                const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> ApproxLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = EngineEvalCounter("approx");
  evals.Inc();
  return FinishUnitInterval(ApproxSum(r, p, /*base=*/p.total_weight(),
                                      /*factor=*/2.0, order_, ws),
                            "approximate record leakage");
}

Result<double> ApproxLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return FinishUnitInterval(ApproxSum(r, p, /*base=*/0.0, /*factor=*/1.0,
                                      order_, ws),
                            "approximate expected precision");
}

// ---------------------------------------------------------------------------
// AutoLeakage
// ---------------------------------------------------------------------------

const LeakageEngine& AutoLeakage::Pick(const PreparedRecord& r,
                                       const PreparedReference& p) const {
  static constexpr char kPickHelp[] =
      "Engine choices made by AutoLeakage's dispatch rule";
  if (UniformWeightOver(r, p)) {
    static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_auto_engine_selected_total", {{"engine", "exact"}},
        kPickHelp);
    picked.Inc();
    return exact_;
  }
  if (r.size() <= naive_cutoff_) {
    static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
        "infoleak_auto_engine_selected_total", {{"engine", "naive"}},
        kPickHelp);
    picked.Inc();
    return naive_;
  }
  static obs::Counter& picked = obs::MetricsRegistry::Global().GetCounter(
      "infoleak_auto_engine_selected_total", {{"engine", "approx"}},
      kPickHelp);
  picked.Inc();
  return approx_;
}

Result<double> AutoLeakage::RecordLeakage(const Record& r, const Record& p,
                                          const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> AutoLeakage::ExpectedPrecision(const Record& r,
                                              const Record& p,
                                              const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> AutoLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return Pick(r, p).RecordLeakagePrepared(r, p, ws);
}

Result<double> AutoLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  return Pick(r, p).ExpectedPrecisionPrepared(r, p, ws);
}

// ---------------------------------------------------------------------------
// Set leakage
// ---------------------------------------------------------------------------

namespace {

/// String-API fallback for engines without a prepared path.
Result<double> SetLeakageArgMaxFallback(const Database& db, const Record& p,
                                        const WeightModel& wm,
                                        const LeakageEngine& engine,
                                        std::ptrdiff_t* argmax) {
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  for (std::size_t i = 0; i < db.size(); ++i) {
    PathCounter(/*prepared=*/false).Inc();
    Result<double> l = engine.RecordLeakage(db[i], p, wm);
    if (!l.ok()) return l.status();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

}  // namespace

Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax) {
  obs::TraceSpan span("leakage/set");
  WallTimer timer;
  if (!engine.SupportsPrepared()) {
    Result<double> out = SetLeakageArgMaxFallback(db, p.record(),
                                                  p.weight_model(), engine,
                                                  argmax);
    SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
    return out;
  }
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  LeakageWorkspace ws;
  PreparedRecord r;
  for (std::size_t i = 0; i < db.size(); ++i) {
    r.Assign(db[i], p);
    Result<double> l = engine.RecordLeakagePrepared(r, p, &ws);
    if (!l.ok()) return l.status();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  PathCounter(/*prepared=*/true).Inc(db.size());
  SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax,
                                const std::function<bool()>& cancel,
                                std::size_t check_every) {
  if (!cancel) return SetLeakageArgMax(db, p, engine, argmax);
  if (check_every == 0) check_every = 1;
  obs::TraceSpan span("leakage/set");
  WallTimer timer;
  const bool prepared = engine.SupportsPrepared();
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  LeakageWorkspace ws;
  PreparedRecord r;
  for (std::size_t i = 0; i < db.size(); ++i) {
    if (i % check_every == 0 && cancel()) {
      return Status::DeadlineExceeded(
          "set-leakage scan cancelled after " + std::to_string(i) + " of " +
          std::to_string(db.size()) + " records");
    }
    Result<double> l = 0.0;
    if (prepared) {
      r.Assign(db[i], p);
      l = engine.RecordLeakagePrepared(r, p, &ws);
    } else {
      l = engine.RecordLeakage(db[i], p.record(), p.weight_model());
    }
    if (!l.ok()) return l.status();
    PathCounter(prepared).Inc();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  SetLeakageLatency(/*parallel=*/false).Observe(timer.ElapsedSeconds());
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

Result<double> SetLeakageArgMax(const Database& db, const Record& p,
                                const WeightModel& wm,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax) {
  if (!engine.SupportsPrepared()) {
    return SetLeakageArgMaxFallback(db, p, wm, engine, argmax);
  }
  const PreparedReference ref(p, wm);
  return SetLeakageArgMax(db, ref, engine, argmax);
}

Result<double> SetLeakage(const Database& db, const Record& p,
                          const WeightModel& wm,
                          const LeakageEngine& engine) {
  return SetLeakageArgMax(db, p, wm, engine, nullptr);
}

Result<double> SetLeakage(const Database& db, const PreparedReference& p,
                          const LeakageEngine& engine) {
  return SetLeakageArgMax(db, p, engine, nullptr);
}

Result<double> SetLeakageParallel(const Database& db,
                                  const PreparedReference& p,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<std::size_t>(num_threads, db.size());
  static obs::Gauge& threads_gauge = obs::MetricsRegistry::Global().GetGauge(
      "infoleak_set_leakage_parallel_threads", {},
      "Worker threads used by the most recent SetLeakageParallel call");
  threads_gauge.Set(static_cast<double>(std::max<std::size_t>(num_threads, 1)));
  if (num_threads <= 1) return SetLeakage(db, p, engine);

  obs::TraceSpan span("leakage/set_parallel");
  WallTimer timer;
  const bool prepared = engine.SupportsPrepared();
  std::vector<double> best(num_threads, 0.0);
  std::vector<Status> errors(num_threads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      // Strided partition keeps per-thread work balanced when record sizes
      // trend across the database. The prepared reference is shared
      // read-only; the workspace and record view are thread-local, and the
      // path counter's thread-sharded storage keeps the per-record
      // increments contention-free.
      LeakageWorkspace ws;
      PreparedRecord r;
      obs::Counter& path = PathCounter(prepared);
      for (std::size_t i = t; i < db.size(); i += num_threads) {
        Result<double> l = 0.0;
        if (prepared) {
          r.Assign(db[i], p);
          l = engine.RecordLeakagePrepared(r, p, &ws);
        } else {
          l = engine.RecordLeakage(db[i], p.record(), p.weight_model());
        }
        path.Inc();
        if (!l.ok()) {
          errors[t] = l.status();
          return;
        }
        best[t] = std::max(best[t], *l);
      }
    });
  }
  for (auto& w : workers) w.join();
  SetLeakageLatency(/*parallel=*/true).Observe(timer.ElapsedSeconds());
  for (const auto& st : errors) {
    if (!st.ok()) return st;
  }
  double total = 0.0;
  for (double b : best) total = std::max(total, b);
  return total;
}

Result<double> SetLeakageParallel(const Database& db, const Record& p,
                                  const WeightModel& wm,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads) {
  const PreparedReference ref(p, wm);
  return SetLeakageParallel(db, ref, engine, num_threads);
}

// ---------------------------------------------------------------------------
// Batch leakage
// ---------------------------------------------------------------------------

Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const PreparedReference& p,
                                         const LeakageEngine& engine) {
  obs::TraceSpan span("leakage/batch");
  std::vector<double> out;
  out.reserve(records.size());
  if (!engine.SupportsPrepared()) {
    for (const Record* rec : records) {
      PathCounter(/*prepared=*/false).Inc();
      Result<double> l =
          engine.RecordLeakage(*rec, p.record(), p.weight_model());
      if (!l.ok()) return l.status();
      out.push_back(*l);
    }
    return out;
  }
  LeakageWorkspace ws;
  PreparedRecord r;
  for (const Record* rec : records) {
    r.Assign(*rec, p);
    Result<double> l = engine.RecordLeakagePrepared(r, p, &ws);
    if (!l.ok()) return l.status();
    out.push_back(*l);
  }
  PathCounter(/*prepared=*/true).Inc(records.size());
  return out;
}

Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const Record& p,
                                         const WeightModel& wm,
                                         const LeakageEngine& engine) {
  const PreparedReference ref(p, wm);
  return BatchLeakage(records, ref, engine);
}

std::unique_ptr<LeakageEngine> MakeDefaultEngine() {
  return std::make_unique<AutoLeakage>();
}

}  // namespace infoleak
