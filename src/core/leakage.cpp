#include "core/leakage.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "core/polynomial.h"
#include "core/possible_worlds.h"

namespace infoleak {
namespace {

/// Shared core of Algorithm 1. Computes
///   factor · Σ_{b∈p} p(b,r) · ∫₀¹ t^m · Π_{a∈z}(c_a·t + 1−c_a) dt
/// where z = r without the attribute matching b. With m = |p| and
/// factor = 2 this is L(r, p); with m = 0 and factor = 1 it is E[Pr].
double ExactSum(const Record& r, const Record& p, double m,
                double factor) {
  double total = 0.0;
  std::vector<double> y;  // hoisted: one allocation across all b ∈ p
  y.reserve(r.size() + 1);
  for (const auto& b : p) {
    const double pb = r.Confidence(b.label, b.value);
    if (pb == 0.0) continue;  // zero-confidence terms contribute nothing
    y.assign(1, 1.0);
    for (const auto& a : r) {
      if (a.SameInfo(b)) continue;
      // In-place Poly::MultiplyBernoulli: z[k] = c·y[k] + (1−c)·y[k−1],
      // computed back to front so y can be updated without a scratch list.
      const double c = a.confidence;
      y.push_back(0.0);
      for (std::size_t k = y.size() - 1; k > 0; --k) {
        y[k] = c * y[k] + (1.0 - c) * y[k - 1];
      }
      y[0] *= c;
    }
    total += factor * pb * Poly::IntegrateAgainstPower(y, m);
  }
  return total;
}

/// Shared core of the §5.2 Taylor approximation. Approximates
///   factor · Σ_{b∈p} p(b,r) · E[w_b / (Y + w_b + base)]
/// where Y = Σ_{a∈r̄\{b}} w_a and base = Σ_{a∈p} w_a for leakage
/// (factor 2) or 0 for precision (factor 1).
double ApproxSum(const Record& r, const Record& p, const WeightModel& wm,
                 double base, double factor, int order) {
  // Precompute the moments of the full record once; per-b values follow by
  // removing the matched attribute's contribution, giving O(|p|·log|r| + |r|).
  double mean_all = 0.0;
  double var_all = 0.0;
  for (const auto& a : r) {
    const double w = wm.Weight(a.label);
    mean_all += w * a.confidence;
    var_all += w * w * a.confidence * (1.0 - a.confidence);
  }
  double total = 0.0;
  for (const auto& b : p) {
    const Attribute* match = r.Find(b.label, b.value);
    if (match == nullptr || match->confidence == 0.0) continue;
    const double pb = match->confidence;
    const double wb = wm.Weight(b.label);
    const double wm_match = wm.Weight(match->label);  // == wb (same label)
    const double mean =
        mean_all - wm_match * match->confidence;
    const double var = var_all - wm_match * wm_match * match->confidence *
                                     (1.0 - match->confidence);
    const double denom = mean + wb + base;
    if (denom <= 0.0) continue;
    double term = wb / denom;
    if (order >= 2) term += wb / (denom * denom * denom) * var;
    total += factor * pb * term;
  }
  return total;
}

}  // namespace

Result<double> LeakageEngine::ExpectedRecall(const Record& r, const Record& p,
                                             const WeightModel& wm) const {
  // Recall is linear in the inclusion indicators, so the expectation is
  // exact for every engine: E[Re] = Σ_{b∈p} p(b,r)·w_b / Σ_{b∈p} w_b.
  const double denom = wm.TotalWeight(p);
  if (denom <= 0.0) return 0.0;
  double num = 0.0;
  for (const auto& b : p) {
    num += r.Confidence(b.label, b.value) * wm.Weight(b.label);
  }
  return num / denom;
}

// ---------------------------------------------------------------------------
// NaiveLeakage
// ---------------------------------------------------------------------------

namespace {

/// Per-attribute data the naive enumeration needs; extracting it once keeps
/// the 2^|r| loop allocation-free (a Record per world would dominate).
struct NaiveSetup {
  std::vector<double> weight;
  std::vector<double> confidence;
  std::vector<bool> matched;  // (label, value) present in p
};

NaiveSetup PrepareNaive(const Record& r, const Record& p,
                        const WeightModel& wm) {
  NaiveSetup s;
  s.weight.reserve(r.size());
  s.confidence.reserve(r.size());
  s.matched.reserve(r.size());
  for (const auto& a : r) {
    s.weight.push_back(wm.Weight(a.label));
    s.confidence.push_back(a.confidence);
    s.matched.push_back(p.Contains(a.label, a.value));
  }
  return s;
}

/// Enumerates all 2^|r| worlds (the paper's O(2^|r|·|r|) naive algorithm)
/// and returns E[factor·overlap/(total_r + base)], covering both F1
/// (base = W(p), factor = 2) and precision (base = 0, factor = 1).
Result<double> NaiveEnumerate(const Record& r, const Record& p,
                              const WeightModel& wm, double base,
                              double factor, std::size_t max_attributes) {
  if (max_attributes > kMaxEnumerableAttributes) {
    max_attributes = kMaxEnumerableAttributes;
  }
  if (r.size() > max_attributes) {
    return Status::ResourceExhausted(
        "record has " + std::to_string(r.size()) +
        " attributes; naive enumeration capped at " +
        std::to_string(max_attributes));
  }
  const NaiveSetup s = PrepareNaive(r, p, wm);
  const std::size_t n = s.weight.size();
  double total = 0.0;
  const uint64_t worlds = uint64_t{1} << n;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double prob = 1.0;
    double weight_r = 0.0;
    double overlap = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        prob *= s.confidence[i];
        weight_r += s.weight[i];
        if (s.matched[i]) overlap += s.weight[i];
      } else {
        prob *= 1.0 - s.confidence[i];
      }
    }
    const double denom = weight_r + base;
    if (denom > 0.0) total += prob * factor * overlap / denom;
  }
  return total;
}

}  // namespace

Result<double> NaiveLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return NaiveEnumerate(r, p, wm, /*base=*/wm.TotalWeight(p), /*factor=*/2.0,
                        max_attributes_);
}

Result<double> NaiveLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return NaiveEnumerate(r, p, wm, /*base=*/0.0, /*factor=*/1.0,
                        max_attributes_);
}

// ---------------------------------------------------------------------------
// ExactLeakage (Algorithm 1)
// ---------------------------------------------------------------------------

Result<double> ExactLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  if (!wm.IsConstantOver(r, p)) {
    return Status::InvalidArgument(
        "Algorithm 1 requires a constant weight across the labels of r and "
        "p; use ApproxLeakage or NaiveLeakage for arbitrary weights");
  }
  return ExactSum(r, p, /*m=*/static_cast<double>(p.size()),
                  /*factor=*/2.0);
}

Result<double> ExactLeakage::ExpectedPrecision(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  if (!wm.IsConstantOver(r, p)) {
    return Status::InvalidArgument(
        "exact expected precision requires constant weights");
  }
  return ExactSum(r, p, /*m=*/0, /*factor=*/1.0);
}

// ---------------------------------------------------------------------------
// ApproxLeakage (§5.2)
// ---------------------------------------------------------------------------

Result<double> ApproxLeakage::RecordLeakage(const Record& r, const Record& p,
                                            const WeightModel& wm) const {
  return ApproxSum(r, p, wm, /*base=*/wm.TotalWeight(p), /*factor=*/2.0,
                   order_);
}

Result<double> ApproxLeakage::ExpectedPrecision(const Record& r,
                                                const Record& p,
                                                const WeightModel& wm) const {
  return ApproxSum(r, p, wm, /*base=*/0.0, /*factor=*/1.0, order_);
}

// ---------------------------------------------------------------------------
// AutoLeakage
// ---------------------------------------------------------------------------

const LeakageEngine& AutoLeakage::Pick(const Record& r, const Record& p,
                                       const WeightModel& wm) const {
  if (wm.IsConstantOver(r, p)) return exact_;
  if (r.size() <= naive_cutoff_) return naive_;
  return approx_;
}

Result<double> AutoLeakage::RecordLeakage(const Record& r, const Record& p,
                                          const WeightModel& wm) const {
  return Pick(r, p, wm).RecordLeakage(r, p, wm);
}

Result<double> AutoLeakage::ExpectedPrecision(const Record& r,
                                              const Record& p,
                                              const WeightModel& wm) const {
  return Pick(r, p, wm).ExpectedPrecision(r, p, wm);
}

// ---------------------------------------------------------------------------
// Set leakage
// ---------------------------------------------------------------------------

Result<double> SetLeakageArgMax(const Database& db, const Record& p,
                                const WeightModel& wm,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax) {
  double best = 0.0;
  std::ptrdiff_t best_index = -1;
  for (std::size_t i = 0; i < db.size(); ++i) {
    Result<double> l = engine.RecordLeakage(db[i], p, wm);
    if (!l.ok()) return l.status();
    if (best_index < 0 || *l > best) {
      best = *l;
      best_index = static_cast<std::ptrdiff_t>(i);
    }
  }
  if (argmax != nullptr) *argmax = best_index;
  return best_index < 0 ? 0.0 : best;
}

Result<double> SetLeakage(const Database& db, const Record& p,
                          const WeightModel& wm,
                          const LeakageEngine& engine) {
  return SetLeakageArgMax(db, p, wm, engine, nullptr);
}

Result<double> SetLeakageParallel(const Database& db, const Record& p,
                                  const WeightModel& wm,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min<std::size_t>(num_threads, db.size());
  if (num_threads <= 1) return SetLeakage(db, p, wm, engine);

  std::vector<double> best(num_threads, 0.0);
  std::vector<Status> errors(num_threads, Status::OK());
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      // Strided partition keeps per-thread work balanced when record sizes
      // trend across the database.
      for (std::size_t i = t; i < db.size(); i += num_threads) {
        Result<double> l = engine.RecordLeakage(db[i], p, wm);
        if (!l.ok()) {
          errors[t] = l.status();
          return;
        }
        best[t] = std::max(best[t], *l);
      }
    });
  }
  for (auto& w : workers) w.join();
  for (const auto& st : errors) {
    if (!st.ok()) return st;
  }
  double total = 0.0;
  for (double b : best) total = std::max(total, b);
  return total;
}

std::unique_ptr<LeakageEngine> MakeDefaultEngine() {
  return std::make_unique<AutoLeakage>();
}

}  // namespace infoleak
