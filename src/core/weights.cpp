#include "core/weights.h"

#include <cmath>

#include "util/string_util.h"

namespace infoleak {

WeightModel::WeightModel(double default_weight)
    : default_weight_(default_weight) {}

Status WeightModel::SetWeight(std::string_view label, double weight) {
  if (!std::isfinite(weight) || weight < 0.0) {
    return Status::InvalidArgument("weight for label '" + std::string(label) +
                                   "' must be finite and non-negative");
  }
  weights_[std::string(label)] = weight;
  return Status::OK();
}

double WeightModel::Weight(std::string_view label) const {
  auto it = weights_.find(label);
  return it != weights_.end() ? it->second : default_weight_;
}

bool WeightModel::IsConstant() const {
  for (const auto& [label, w] : weights_) {
    if (w != default_weight_) return false;
  }
  return true;
}

bool WeightModel::IsConstantOver(const Record& r, const Record& p) const {
  std::optional<double> common;
  auto check = [&](const Record& rec) {
    for (const auto& a : rec) {
      double w = Weight(a.label);
      if (!common.has_value()) {
        common = w;
      } else if (*common != w) {
        return false;
      }
    }
    return true;
  };
  return check(r) && check(p);
}

double WeightModel::TotalWeight(const Record& r) const {
  double total = 0.0;
  for (const auto& a : r) total += Weight(a.label);
  return total;
}

double WeightModel::OverlapWeight(const Record& r, const Record& p) const {
  // Both attribute vectors are sorted by (label, value); walk them together.
  double total = 0.0;
  auto it_r = r.begin();
  auto it_p = p.begin();
  while (it_r != r.end() && it_p != p.end()) {
    if (it_r->Key() < it_p->Key()) {
      ++it_r;
    } else if (it_p->Key() < it_r->Key()) {
      ++it_p;
    } else {
      total += Weight(it_r->label);
      ++it_r;
      ++it_p;
    }
  }
  return total;
}

Result<WeightModel> WeightModel::Parse(std::string_view spec) {
  WeightModel model;
  if (Trim(spec).empty()) return model;
  for (const auto& part : Split(spec, ',')) {
    auto kv = Split(part, '=');
    if (kv.size() != 2) {
      return Status::InvalidArgument("bad weight entry '" + part +
                                     "' (want label=weight)");
    }
    std::string label(Trim(kv[0]));
    if (label.empty()) {
      return Status::InvalidArgument("empty label in weight spec");
    }
    char* end = nullptr;
    std::string num(Trim(kv[1]));
    double w = std::strtod(num.c_str(), &end);
    if (end == nullptr || *end != '\0' || num.empty()) {
      return Status::InvalidArgument("bad weight value '" + num + "'");
    }
    INFOLEAK_RETURN_IF_ERROR(model.SetWeight(label, w));
  }
  return model;
}

}  // namespace infoleak
