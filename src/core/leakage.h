#pragma once

#include <memory>
#include <string_view>

#include "core/database.h"
#include "core/measures.h"
#include "core/record.h"
#include "core/weights.h"
#include "util/result.h"

namespace infoleak {

/// \brief Computes the record leakage L(r, p) of Definition 2.1 — the
/// expected F1 of a possible world of `r` against the reference `p` — plus
/// the expected-precision / expected-recall variants the paper mentions.
///
/// Three implementations reproduce §5:
///  * NaiveLeakage  — enumerates all 2^|r| possible worlds; arbitrary
///                    weights; exact; the correctness oracle.
///  * ExactLeakage  — Algorithm 1; O(|p|·|r|²); exact, but requires one
///                    constant weight across all labels in r and p.
///  * ApproxLeakage — second-order Taylor expansion; O(|p|·|r|); arbitrary
///                    weights; highly accurate in practice (Table 5).
class LeakageEngine {
 public:
  virtual ~LeakageEngine() = default;

  /// Engine name for benchmark tables ("naive", "exact", "approx", "auto").
  virtual std::string_view name() const = 0;

  /// L(r, p) = E[F1(r̄, p)] over the possible worlds r̄ of r.
  virtual Result<double> RecordLeakage(const Record& r, const Record& p,
                                       const WeightModel& wm) const = 0;

  /// E[Pr(r̄, p)]: Definition 2.1 with F1 replaced by precision.
  virtual Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                           const WeightModel& wm) const = 0;

  /// E[Re(r̄, p)]: Definition 2.1 with F1 replaced by recall. Recall is
  /// linear in the attribute indicators, so every engine computes it
  /// exactly: Σ_{b∈p} p(b,r)·w_b / Σ_{b∈p} w_b.
  virtual Result<double> ExpectedRecall(const Record& r, const Record& p,
                                        const WeightModel& wm) const;
};

/// \brief Exponential-time oracle: enumerates possible worlds (§5's naive
/// algorithm, O(2^|r|·|r|)). Refuses records larger than `max_attributes`.
class NaiveLeakage : public LeakageEngine {
 public:
  explicit NaiveLeakage(std::size_t max_attributes = 25)
      : max_attributes_(max_attributes) {}

  std::string_view name() const override { return "naive"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

 private:
  std::size_t max_attributes_;
};

/// \brief Algorithm 1 (§5.1): exact record leakage in O(|p|·|r|²) time via
/// polynomial-coefficient integration. Requires all labels occurring in `r`
/// and `p` to carry one common weight (the weight value itself cancels);
/// returns InvalidArgument otherwise.
class ExactLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "exact"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;
};

/// \brief Second-order Taylor approximation (§5.2): O(|p|·|r|) time,
/// arbitrary weights. Approximates E[w_b/(Y+c)] by
/// w_b/(E[Y]+c) + w_b·Var[Y]/(E[Y]+c)³ with Y the total believed weight of
/// r̄ minus the matched attribute.
///
/// `order` selects the Taylor truncation: 1 keeps only the mean term
/// (F(E[Y])), 2 (the paper's choice, default) adds the variance correction.
/// The ablation benchmark quantifies what the second term buys.
class ApproxLeakage : public LeakageEngine {
 public:
  explicit ApproxLeakage(int order = 2) : order_(order < 2 ? 1 : 2) {}

  std::string_view name() const override {
    return order_ == 2 ? "approx" : "approx-o1";
  }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

 private:
  int order_;
};

/// \brief Dispatching engine: Algorithm 1 when the weight model is constant
/// over (r, p); the naive oracle when the record is small enough to
/// enumerate; the Taylor approximation otherwise. This is the engine most
/// applications should use.
class AutoLeakage : public LeakageEngine {
 public:
  explicit AutoLeakage(std::size_t naive_cutoff = 16)
      : naive_(naive_cutoff), naive_cutoff_(naive_cutoff) {}

  std::string_view name() const override { return "auto"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

 private:
  const LeakageEngine& Pick(const Record& r, const Record& p,
                            const WeightModel& wm) const;

  NaiveLeakage naive_;
  ExactLeakage exact_;
  ApproxLeakage approx_;
  std::size_t naive_cutoff_;
};

/// \brief Basic set leakage L0(R, p) = max_{r∈R} L(r, p) (§2.3); 0 for an
/// empty database.
Result<double> SetLeakage(const Database& db, const Record& p,
                          const WeightModel& wm, const LeakageEngine& engine);

/// \brief As SetLeakage, but also reports which record attains the maximum
/// (index into `db`, or -1 for an empty database).
Result<double> SetLeakageArgMax(const Database& db, const Record& p,
                                const WeightModel& wm,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax);

/// \brief Parallel set leakage: partitions the database across
/// `num_threads` worker threads (hardware concurrency when 0) and reduces
/// by maximum. The maximum is order-independent, so the result is
/// bit-identical to SetLeakage; engines are stateless and safe to share.
/// Worthwhile from a few thousand record-leakage evaluations upward.
Result<double> SetLeakageParallel(const Database& db, const Record& p,
                                  const WeightModel& wm,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads = 0);

/// \brief Convenience factory for the dispatching engine.
std::unique_ptr<LeakageEngine> MakeDefaultEngine();

}  // namespace infoleak
