#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string_view>

#include "core/column_bank.h"
#include "core/database.h"
#include "core/measures.h"
#include "core/prepared.h"
#include "core/record.h"
#include "core/weights.h"

namespace infoleak::obs {
class RequestContext;
}
#include "util/result.h"

namespace infoleak {

/// \brief Computes the record leakage L(r, p) of Definition 2.1 — the
/// expected F1 of a possible world of `r` against the reference `p` — plus
/// the expected-precision / expected-recall variants the paper mentions.
///
/// Three implementations reproduce §5:
///  * NaiveLeakage  — enumerates all 2^|r| possible worlds; arbitrary
///                    weights; exact; the correctness oracle.
///  * ExactLeakage  — Algorithm 1; O(|p|·|r|²); exact, but requires one
///                    constant weight across all labels in r and p.
///  * ApproxLeakage — second-order Taylor expansion; O(|p|·|r|); arbitrary
///                    weights; highly accurate in practice (Table 5).
///
/// Each engine exposes two equivalent surfaces:
///  * the string API below, taking `Record`s and a `WeightModel` — for the
///    core engines this is a thin adapter that prepares its arguments and
///    forwards; and
///  * the prepared API (`*Prepared` methods), taking interned views from
///    `core/prepared.h` plus a caller-owned `LeakageWorkspace`. This is the
///    hot path: the reference is prepared once, records are prepared into a
///    reusable buffer, and the steady state does no allocation and no
///    string hashing. Both paths produce bit-identical results.
///
/// Every successful evaluation returns a value in [0, 1]: the measures are
/// expectations of statistics bounded by 1, so finite totals are clamped
/// back into range when floating-point rounding (or the Taylor truncation
/// of ApproxLeakage) pushes them out, and non-finite totals — possible only
/// when the weight model overflows double arithmetic — surface as
/// InvalidArgument instead of silently propagating NaN/Inf.
///
/// Engines are stateless and safe to share across threads; workspaces are
/// not, so use one workspace per thread.
class LeakageEngine {
 public:
  virtual ~LeakageEngine() = default;

  /// Engine name for benchmark tables ("naive", "exact", "approx", "auto").
  virtual std::string_view name() const = 0;

  // ----- String API (Record in, double out) --------------------------------

  /// L(r, p) = E[F1(r̄, p)] over the possible worlds r̄ of r.
  virtual Result<double> RecordLeakage(const Record& r, const Record& p,
                                       const WeightModel& wm) const = 0;

  /// E[Pr(r̄, p)]: Definition 2.1 with F1 replaced by precision.
  virtual Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                           const WeightModel& wm) const = 0;

  /// E[Re(r̄, p)]: Definition 2.1 with F1 replaced by recall. Recall is
  /// linear in the attribute indicators, so every engine computes it
  /// exactly: Σ_{b∈p} p(b,r)·w_b / Σ_{b∈p} w_b.
  virtual Result<double> ExpectedRecall(const Record& r, const Record& p,
                                        const WeightModel& wm) const;

  // ----- Prepared API (interned views + workspace) -------------------------

  /// True when the engine implements the prepared fast path. SetLeakage and
  /// friends fall back to the string API for engines that don't (e.g.
  /// sampling engines defined outside this header).
  virtual bool SupportsPrepared() const { return false; }

  /// As RecordLeakage, on prepared views. `r` must have been prepared
  /// against `p`. Default: NotSupported.
  virtual Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                               const PreparedReference& p,
                                               LeakageWorkspace* ws) const;

  /// As ExpectedPrecision, on prepared views. Default: NotSupported.
  virtual Result<double> ExpectedPrecisionPrepared(
      const PreparedRecord& r, const PreparedReference& p,
      LeakageWorkspace* ws) const;

  /// As ExpectedRecall, on prepared views; exact for every engine.
  virtual Result<double> ExpectedRecallPrepared(const PreparedRecord& r,
                                                const PreparedReference& p,
                                                LeakageWorkspace* ws) const;

  // ----- Columnar API (ColumnBank views + workspace) -----------------------
  //
  // The structure-of-arrays fast path: records live in a `ColumnBank`
  // prepared once against the reference, so an evaluation streams
  // contiguous confidence/weight/match-position columns through the array
  // kernels (core/kernels.h) — no string hashing, no per-record match
  // lookups, no allocation in the steady state. Bit-identical to the string
  // and prepared paths (pinned by columnar_equivalence_test and the
  // selfcheck oracle).

  /// True when the engine implements the columnar fast path.
  /// SetLeakageColumnar refuses engines that don't.
  virtual bool SupportsColumnar() const { return false; }

  /// As RecordLeakage, on a bank view. `r` must come from a bank built
  /// against `p`. Default: NotSupported.
  virtual Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                               const PreparedReference& p,
                                               LeakageWorkspace* ws) const;

  /// As ExpectedPrecision, on a bank view. Default: NotSupported.
  virtual Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                                   const PreparedReference& p,
                                                   LeakageWorkspace* ws) const;

  /// As ExpectedRecall, on a bank view; exact for every engine.
  Result<double> ExpectedRecallColumnar(const ColumnRecordView& r,
                                        const PreparedReference& p,
                                        LeakageWorkspace* ws) const;

 protected:
  /// Adapter bodies for the string API of prepared-capable engines:
  /// prepare (r, p, wm), then forward to the `*Prepared` virtuals.
  Result<double> AdaptRecordLeakage(const Record& r, const Record& p,
                                    const WeightModel& wm) const;
  Result<double> AdaptExpectedPrecision(const Record& r, const Record& p,
                                        const WeightModel& wm) const;
};

/// \brief Exponential-time oracle: enumerates possible worlds (§5's naive
/// algorithm, O(2^|r|·|r|)). Refuses records larger than `max_attributes`.
class NaiveLeakage : public LeakageEngine {
 public:
  explicit NaiveLeakage(std::size_t max_attributes = 25)
      : max_attributes_(max_attributes) {}

  std::string_view name() const override { return "naive"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

 private:
  std::size_t max_attributes_;
};

/// \brief Algorithm 1 (§5.1): exact record leakage in O(|p|·|r|²) time via
/// polynomial-coefficient integration. Requires all labels occurring in `r`
/// and `p` to carry one common weight (the weight value itself cancels);
/// returns InvalidArgument otherwise.
class ExactLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "exact"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;
};

/// \brief Second-order Taylor approximation (§5.2): O(|p|·|r|) time,
/// arbitrary weights. Approximates E[w_b/(Y+c)] by
/// w_b/(E[Y]+c) + w_b·Var[Y]/(E[Y]+c)³ with Y the total believed weight of
/// r̄ minus the matched attribute.
///
/// `order` selects the Taylor truncation: 1 keeps only the mean term
/// (F(E[Y])), 2 (the paper's choice, default) adds the variance correction.
/// Only orders 1 and 2 exist; `Create` rejects anything else, while the
/// constructor clamps to the nearest supported order (order < 2 → 1,
/// order > 2 → 2) for callers that cannot handle a Status. The ablation
/// benchmark quantifies what the second term buys.
class ApproxLeakage : public LeakageEngine {
 public:
  /// Validating factory: fails with InvalidArgument unless order ∈ {1, 2}.
  static Result<ApproxLeakage> Create(int order);

  /// Clamps out-of-range orders to the nearest supported one (counted in
  /// the `infoleak_approx_order_clamped_total` metric).
  explicit ApproxLeakage(int order = 2);

  std::string_view name() const override {
    return order_ == 2 ? "approx" : "approx-o1";
  }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

 private:
  int order_;
};

/// \brief Dispatching engine: Algorithm 1 when the weight model is constant
/// over (r, p); the naive oracle when the record is small enough to
/// enumerate; the Taylor approximation otherwise. This is the engine most
/// applications should use.
class AutoLeakage : public LeakageEngine {
 public:
  explicit AutoLeakage(std::size_t naive_cutoff = 16)
      : naive_(naive_cutoff), naive_cutoff_(naive_cutoff) {}

  std::string_view name() const override { return "auto"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

 private:
  /// The dispatch rule itself, shared by the prepared and columnar paths:
  /// exact when one weight covers (r, p), naive when small enough to
  /// enumerate, approx otherwise.
  const LeakageEngine& PickBy(bool uniform, std::size_t record_size) const;
  const LeakageEngine& Pick(const PreparedRecord& r,
                            const PreparedReference& p) const;

  NaiveLeakage naive_;
  ExactLeakage exact_;
  ApproxLeakage approx_;
  std::size_t naive_cutoff_;
};

/// \brief Basic set leakage L0(R, p) = max_{r∈R} L(r, p) (§2.3); 0 for an
/// empty database. Prepares `p` once and streams the records through a
/// reusable workspace.
Result<double> SetLeakage(const Database& db, const Record& p,
                          const WeightModel& wm, const LeakageEngine& engine);

/// As above with a caller-prepared reference — for callers that evaluate
/// several databases (or database versions) against one fixed `p`.
Result<double> SetLeakage(const Database& db, const PreparedReference& p,
                          const LeakageEngine& engine);

/// \brief As SetLeakage, but also reports which record attains the maximum
/// (index into `db`, or -1 for an empty database).
Result<double> SetLeakageArgMax(const Database& db, const Record& p,
                                const WeightModel& wm,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax);
Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax);

/// \brief Cancellable set-leakage scan: as SetLeakageArgMax, but polls
/// `cancel` every `check_every` record evaluations (and before the first);
/// a true return aborts the scan with DeadlineExceeded. The scan order and
/// floating-point accumulation match the uncancelled overload exactly, so a
/// run that is never cancelled returns bit-identical results. This is how
/// the serving layer enforces per-request deadlines mid-evaluation without
/// the engines knowing about clocks.
Result<double> SetLeakageArgMax(const Database& db, const PreparedReference& p,
                                const LeakageEngine& engine,
                                std::ptrdiff_t* argmax,
                                const std::function<bool()>& cancel,
                                std::size_t check_every = 256);

/// \brief Parallel set leakage: partitions the database across
/// `num_threads` worker threads (hardware concurrency when 0) and reduces
/// by maximum. The reference is prepared once and shared read-only; each
/// thread owns its workspace. The maximum is order-independent, so the
/// result is bit-identical to SetLeakage; engines are stateless and safe to
/// share. Worthwhile from a few thousand record-leakage evaluations upward.
Result<double> SetLeakageParallel(const Database& db, const Record& p,
                                  const WeightModel& wm,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads = 0);
Result<double> SetLeakageParallel(const Database& db,
                                  const PreparedReference& p,
                                  const LeakageEngine& engine,
                                  std::size_t num_threads = 0);

/// \brief Batch evaluation: L(r, p) for every record in `records` against a
/// once-prepared `p`, in order. The building block for scoring scenarios
/// that need per-record leakages rather than the max (re-identification,
/// ranking, probabilistic bounds).
Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const Record& p,
                                         const WeightModel& wm,
                                         const LeakageEngine& engine);
Result<std::vector<double>> BatchLeakage(std::span<const Record* const> records,
                                         const PreparedReference& p,
                                         const LeakageEngine& engine);

// ---------------------------------------------------------------------------
// Columnar set-leakage scans
// ---------------------------------------------------------------------------

/// \brief Options for a columnar set-leakage scan.
struct ColumnScanOptions {
  /// Worker threads sharding the bank (hardware concurrency when 0;
  /// 1 = serial). Workers take contiguous column ranges, so each streams
  /// its slice of the bank's arrays front to back.
  std::size_t num_threads = 1;

  /// Polled every `check_every` evaluations (and before the first); a true
  /// return aborts the scan with DeadlineExceeded. With num_threads > 1 the
  /// callback is polled from every worker and must be thread-safe.
  std::function<bool()> cancel;
  std::size_t check_every = 256;

  /// Optional request-scoped attribution sink: when set, the scan charges
  /// its wall time to the eval phase and reports the records visible to
  /// the scan plus the dispatched kernel variant. Attribution happens on
  /// the calling thread only (workers are joined before the scan returns),
  /// so the context needs no synchronization.
  obs::RequestContext* ctx = nullptr;
};

/// \brief Set leakage L0 over a column bank: max_i L(bank[i], p), with the
/// attaining index in `*argmax` (-1 when empty). Serial scans, parallel
/// scans, and cancelled-then-retried scans all return bit-identical maxima
/// and the same (first) argmax as SetLeakageArgMax over the source
/// database. NotSupported for engines without a columnar path.
Result<double> SetLeakageColumnar(const ColumnBank& bank,
                                  const LeakageEngine& engine,
                                  std::ptrdiff_t* argmax = nullptr,
                                  const ColumnScanOptions& options = {});

/// \brief Per-record leakages over a column bank, in bank order — the
/// columnar analogue of BatchLeakage.
Result<std::vector<double>> BatchLeakageColumnar(const ColumnBank& bank,
                                                 const LeakageEngine& engine);

/// \brief Single-record columnar evaluation: L(bank[index], p) through the
/// engine's columnar kernels, reusing the caller's workspace across calls.
/// This is the delta-maintenance entry point — an incremental maintainer
/// evaluates exactly the records appended since its last run, and because
/// the per-record computation is the same one ScanColumnRange performs, a
/// sequence of these calls is bit-identical to a cold scan over the same
/// bank. NotSupported for engines without a columnar path; `ws` may be
/// null (a scratch workspace is then used).
Result<double> BankRecordLeakage(const ColumnBank& bank, std::size_t index,
                                 const LeakageEngine& engine,
                                 LeakageWorkspace* ws = nullptr);

/// \brief Convenience factory for the dispatching engine.
std::unique_ptr<LeakageEngine> MakeDefaultEngine();

}  // namespace infoleak
