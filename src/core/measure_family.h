#pragma once

#include <string_view>

#include "core/bounds.h"
#include "core/leakage.h"
#include "util/result.h"

namespace infoleak {

/// \brief The measure family: adversary models beyond the paper's
/// expected-F1 leakage, each a first-class `LeakageEngine` over the same
/// possible-worlds substrate. A "measure" answers *which statistic of the
/// world distribution* the engine reports; the default measure
/// (`expected-f1`) is the paper's E[F1(r̄, p)], served by the four classic
/// engines (naive/exact/approx/auto), and the measures below are served by
/// one dedicated engine each:
///
///  * `pml`        — pointwise maximal leakage: the largest F1 any
///                   positive-probability world attains (Saeidian et al.'s
///                   worst-case-realization stance). Closed form in O(|r|):
///                   F1 is monotone in adding matched attributes, so the
///                   maximizing world includes every matched attribute with
///                   confidence > 0 and excludes every excludable (conf < 1)
///                   unmatched one.
///  * `guesswork`  — guesswork-style leakage: the F1 of the adversary's
///                   single best guess, i.e. the modal world (include an
///                   attribute iff confidence ≥ 0.5; the 0.5 tie includes,
///                   a documented convention pinned by tests).
///  * `under`      — probabilistic under-estimate: the closed-form Jensen
///                   lower bound of core/bounds.h as an engine, guaranteed
///                   ≤ the exact expected-F1 leakage.
///  * `over`       — the matching upper bound (2·E[Re] capped at 1),
///                   guaranteed ≥ the exact value; `under ≤ over` always.
///
/// All measure engines support the string, prepared, and columnar paths
/// with the same bit-identity contract as the classic engines (one shared
/// array core per measure; non-contributing attributes are skipped by
/// branch, never added as zero, so unmatched record extension is
/// bit-invariant — the measure-monotone oracle property relies on this).
/// They are closed-form and O(|r| + |p|), so unlike the naive engine they
/// have no record-size cap. Values obey the engine contract: finite results
/// clamp into [0, 1], non-finite totals (overflowing weight models) surface
/// as InvalidArgument. Zero total weight follows the repo's 0/0 → 0
/// convention. ExpectedPrecision carries each measure's precision analogue
/// (pml/guesswork) or NotSupported (under/over: the bounds are derived for
/// F1 only); ExpectedRecall stays the engine-independent expectation.
///
/// The selfcheck oracle (`src/check`) cross-validates the family:
/// expected ≤ pml, guesswork ≤ pml, under ≤ expected ≤ over, degenerate
/// ({0,1}-confidence) agreement, and per-measure brute-force truths — see
/// docs/measures.md for the property catalog.

/// \brief Closed vocabulary of measures the CLI `--measure` flag and the
/// wire-protocol `measure` field accept.
enum class Measure {
  kExpectedF1,  ///< the paper's E[F1] — served by the classic engines
  kPml,
  kGuesswork,
  kUnder,
  kOver,
};

/// Spellings, in enum order: "expected-f1", "pml", "guesswork", "under",
/// "over".
inline constexpr std::string_view kMeasureNames[] = {
    "expected-f1", "pml", "guesswork", "under", "over"};

/// Wire/CLI spelling of a measure.
std::string_view MeasureName(Measure m);

/// Parses a measure name; unknown names are InvalidArgument naming the
/// closed vocabulary (never a silent default — the PR 3 wire rule).
Result<Measure> ParseMeasure(std::string_view name);

/// \brief Process-wide engine singleton for a non-default measure. Stable
/// pointers by design: the serving layer keys its per-reference incremental
/// indexes by engine identity, so every request for one measure must
/// resolve to the same engine object. Returns nullptr for kExpectedF1 —
/// the default measure's engine is chosen by the engine flag/field, not
/// here.
const LeakageEngine* MeasureEngineSingleton(Measure m);

/// \brief Pointwise maximal leakage: max over positive-probability worlds
/// of F1(r̄, p).
class PmlLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "pml"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;
};

/// \brief Guesswork-style leakage: F1 of the modal world (attribute
/// included iff its confidence ≥ 0.5; ties include).
class GuessworkLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "guesswork"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionPrepared(const PreparedRecord& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
  Result<double> ExpectedPrecisionColumnar(const ColumnRecordView& r,
                                           const PreparedReference& p,
                                           LeakageWorkspace* ws) const override;
};

/// \brief Probabilistic under-estimate: BoundRecordLeakage's lower bound as
/// an engine, bitwise equal to the bound (pinned by the measure-vs-bounds
/// oracle property).
class UnderLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "under"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
};

/// \brief Probabilistic over-estimate: the matching upper bound as an
/// engine. `upper ≥ lower` by the bounds contract, so over ≥ under bitwise.
class OverLeakage : public LeakageEngine {
 public:
  std::string_view name() const override { return "over"; }
  Result<double> RecordLeakage(const Record& r, const Record& p,
                               const WeightModel& wm) const override;
  Result<double> ExpectedPrecision(const Record& r, const Record& p,
                                   const WeightModel& wm) const override;

  bool SupportsPrepared() const override { return true; }
  Result<double> RecordLeakagePrepared(const PreparedRecord& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;

  bool SupportsColumnar() const override { return true; }
  Result<double> RecordLeakageColumnar(const ColumnRecordView& r,
                                       const PreparedReference& p,
                                       LeakageWorkspace* ws) const override;
};

}  // namespace infoleak
