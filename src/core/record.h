#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

#include "core/attribute.h"
#include "util/status.h"

namespace infoleak {

/// Identifier of a base record within a Database. Merged records carry the
/// union of their sources' ids as provenance.
using RecordId = uint64_t;

/// Sentinel id for records that were built by hand rather than stored in a
/// Database.
inline constexpr RecordId kNoRecordId = static_cast<RecordId>(-1);

/// \brief A set of attributes about (presumably) one person, as held by the
/// adversary — the paper's record `r` — or the ground truth — the reference
/// record `p`.
///
/// Invariants:
///  * No two attributes share the same (label, value) pair (paper §2.3).
///  * Attributes are kept sorted by (label, value), giving deterministic
///    iteration and O(log n) lookup.
///  * Confidences are clamped to [0, 1] on insertion.
///  * `sources()` is the sorted, deduplicated set of base-record ids this
///    record was merged from; a fresh record starts with no sources until a
///    Database assigns it one.
class Record {
 public:
  Record() = default;

  /// Builds a record from a list of attributes. Duplicate (label, value)
  /// pairs keep the maximum confidence (union-merge semantics).
  Record(std::initializer_list<Attribute> attrs);
  explicit Record(std::vector<Attribute> attrs);

  /// Inserts `attr`, keeping the max confidence if (label, value) exists.
  void Insert(Attribute attr);

  /// Inserts `attr`; fails with AlreadyExists if (label, value) is present.
  Status InsertStrict(Attribute attr);

  /// Removes the attribute with the given (label, value); returns NotFound
  /// if absent.
  Status Erase(std::string_view label, std::string_view value);

  /// The paper's p(a, r): confidence of (label, value) in this record, or 0
  /// if absent.
  double Confidence(std::string_view label, std::string_view value) const;

  /// True iff an attribute with this (label, value) exists.
  bool Contains(std::string_view label, std::string_view value) const;
  bool Contains(const Attribute& a) const {
    return Contains(a.label, a.value);
  }

  /// Pointer to the stored attribute, or nullptr if absent.
  const Attribute* Find(std::string_view label, std::string_view value) const;

  /// Sets the confidence of an existing attribute; NotFound if absent.
  Status SetConfidence(std::string_view label, std::string_view value,
                       double confidence);

  /// Number of attributes (the paper's |r|).
  std::size_t size() const { return attrs_.size(); }
  bool empty() const { return attrs_.empty(); }

  const std::vector<Attribute>& attributes() const { return attrs_; }
  auto begin() const { return attrs_.begin(); }
  auto end() const { return attrs_.end(); }

  /// Returns a copy with every confidence set to 1 — the paper's `r_p`
  /// construction in §4.3 (the record "as if fully believed").
  Record WithFullConfidence() const;

  /// Union-merges `other` into this record: attribute union with max
  /// confidence per (label, value), and provenance union. This is the
  /// paper's `r + s` merge used by entity resolution.
  void MergeFrom(const Record& other);

  /// Returns the union-merge of `a` and `b` without mutating either.
  static Record Merge(const Record& a, const Record& b);

  /// Provenance: sorted unique ids of the base records merged into this one.
  const std::vector<RecordId>& sources() const { return sources_; }

  /// Registers `id` as a provenance source.
  void AddSource(RecordId id);

  /// True iff `id` is among this record's provenance sources.
  bool HasSource(RecordId id) const;

  /// Structural equality: same attributes (including confidences).
  /// Provenance is deliberately excluded — two records carrying identical
  /// information are interchangeable for leakage purposes.
  bool operator==(const Record& other) const { return attrs_ == other.attrs_; }

  /// Renders "{<l1, v1, c1>, <l2, v2>}".
  std::string ToString() const;

 private:
  std::vector<Attribute>::iterator LowerBound(std::string_view label,
                                              std::string_view value);
  std::vector<Attribute>::const_iterator LowerBound(
      std::string_view label, std::string_view value) const;

  std::vector<Attribute> attrs_;
  std::vector<RecordId> sources_;
};

}  // namespace infoleak
