// Scalar reference kernels plus wide (SIMD) variants for the evaluation
// plane. Bit-identity discipline: the only vectorized arithmetic is the
// in-place Bernoulli-multiply recurrence
//     poly[k] = c·poly[k] + (1−c)·poly[k−1]   (descending k)
// whose per-element result depends solely on values from before the sweep,
// so computing a chunk of lanes at once performs the exact same two rounded
// multiplies and one rounded add per element as the scalar loop. Every
// reduction keeps the scalar order. This file must be compiled with
// -ffp-contract=off (see src/core/CMakeLists.txt): the AVX targets have FMA
// available and a contracted multiply-add would round once where the
// reference rounds twice.

#include "core/kernels.h"

#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define INFOLEAK_KERNELS_X86 1
#include <immintrin.h>
#endif

namespace infoleak::kern {
namespace {

constexpr uint32_t kNoMatch = 0xFFFFFFFFu;  // == PreparedReference::kNoMatch

// ---------------------------------------------------------------------------
// Scalar reference implementations — the semantics every variant must
// reproduce bit-for-bit. The bodies mirror the original record-at-a-time
// loops in core/leakage.cpp and core/bounds.cpp; iteration order is part of
// the contract.
// ---------------------------------------------------------------------------

double ExactSumScalar(const double* rconf, std::size_t rn,
                      const double* match_conf, const uint32_t* match_rpos,
                      std::size_t pn, double m, double factor, double* poly) {
  double total = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    const double pb = match_conf[j];
    if (pb == 0.0) continue;  // zero-confidence terms contribute nothing
    const uint32_t skip = match_rpos[j];
    std::size_t size = 1;
    poly[0] = 1.0;
    for (std::size_t i = 0; i < rn; ++i) {
      if (i == skip) continue;
      const double c = rconf[i];
      poly[size] = 0.0;
      for (std::size_t k = size; k > 0; --k) {
        poly[k] = c * poly[k] + (1.0 - c) * poly[k - 1];
      }
      poly[0] *= c;
      ++size;
    }
    // Poly::IntegrateAgainstPower over the descending coefficient list.
    double integral = 0.0;
    for (std::size_t x = 0; x < size; ++x) {
      integral += poly[x] / (m + static_cast<double>(size - x));
    }
    total += factor * pb * integral;
  }
  return total;
}

double ApproxSumScalar(const double* rconf, const double* rweight,
                       std::size_t rn, const double* match_conf,
                       const uint32_t* match_rpos, const double* pweight,
                       std::size_t pn, double base, double factor, int order) {
  // Moments of the full record once; per-b values follow by removing the
  // matched attribute's contribution. Accumulation order is pinned: these
  // are reductions, so they stay scalar in every variant.
  double mean_all = 0.0;
  double var_all = 0.0;
  for (std::size_t i = 0; i < rn; ++i) {
    mean_all += rweight[i] * rconf[i];
    var_all += rweight[i] * rweight[i] * rconf[i] * (1.0 - rconf[i]);
  }
  double total = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    const uint32_t mi = match_rpos[j];
    if (mi == kNoMatch) continue;
    const double pb = match_conf[j];
    if (pb == 0.0) continue;
    const double wb = pweight[j];
    const double wm_match = rweight[mi];  // == wb (same label)
    const double mean = mean_all - wm_match * pb;
    const double var = var_all - wm_match * wm_match * pb * (1.0 - pb);
    const double denom = mean + wb + base;
    if (denom <= 0.0) continue;
    double term = wb / denom;
    if (order >= 2) term += wb / (denom * denom * denom) * var;
    total += factor * pb * term;
  }
  return total;
}

double NaiveSumScalar(const double* rconf, const double* rweight,
                      const uint8_t* matched, std::size_t rn, double base,
                      double factor) {
  double total = 0.0;
  const uint64_t worlds = uint64_t{1} << rn;
  for (uint64_t mask = 0; mask < worlds; ++mask) {
    double prob = 1.0;
    double weight_r = 0.0;
    double overlap = 0.0;
    for (std::size_t i = 0; i < rn; ++i) {
      if (mask & (uint64_t{1} << i)) {
        prob *= rconf[i];
        weight_r += rweight[i];
        if (matched[i]) overlap += rweight[i];
      } else {
        prob *= 1.0 - rconf[i];
      }
    }
    const double denom = weight_r + base;
    if (denom > 0.0) total += prob * factor * overlap / denom;
  }
  return total;
}

double RecallSumScalar(const double* match_conf, const double* pweight,
                       std::size_t pn) {
  double num = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    num += match_conf[j] * pweight[j];
  }
  return num;
}

void BoundsScalar(const double* rconf, const double* rweight, std::size_t rn,
                  const double* match_conf, const double* pweight,
                  std::size_t pn, double wp, double* lower, double* upper) {
  *lower = 0.0;
  *upper = 1.0;
  if (wp <= 0.0 || rn == 0) {
    *upper = 0.0;
    return;
  }
  double mean_all = 0.0;
  for (std::size_t i = 0; i < rn; ++i) {
    mean_all += rweight[i] * rconf[i];
  }
  double low = 0.0;
  double expected_recall_mass = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    const double mc = match_conf[j];
    if (mc == 0.0) continue;  // no match, or a zero-confidence one
    const double wb = pweight[j];
    const double mean = mean_all - wb * mc;
    const double denom = mean + wb + wp;
    if (denom > 0.0) low += 2.0 * mc * wb / denom;
    expected_recall_mass += mc * wb;
  }
  low = low < 1.0 ? low : 1.0;
  double up = 2.0 * expected_recall_mass / wp;
  if (up > 1.0) up = 1.0;
  if (up < low) up = low;  // floating slack at the boundary
  *lower = low;
  *upper = up;
}

#if INFOLEAK_KERNELS_X86

// ---------------------------------------------------------------------------
// Wide variants. Only exact_sum carries real SIMD: its inner recurrence is
// the lone element-wise-independent hot loop. The other kernels are
// reductions whose accumulation order the bit-identity contract pins, so
// the wide tables share the scalar bodies for them (their columnar speedup
// comes from the layout, not the lanes).
//
// Chunking runs top-down: a chunk updates poly[k−W+1 .. k] from the
// untouched poly[k−W .. k], so every lane reads pre-sweep values exactly
// like the descending scalar loop does.
// ---------------------------------------------------------------------------

__attribute__((target("avx2"))) double ExactSumAvx2(
    const double* rconf, std::size_t rn, const double* match_conf,
    const uint32_t* match_rpos, std::size_t pn, double m, double factor,
    double* poly) {
  double total = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    const double pb = match_conf[j];
    if (pb == 0.0) continue;
    const uint32_t skip = match_rpos[j];
    std::size_t size = 1;
    poly[0] = 1.0;
    for (std::size_t i = 0; i < rn; ++i) {
      if (i == skip) continue;
      const double c = rconf[i];
      const double cm = 1.0 - c;
      poly[size] = 0.0;
      std::size_t k = size;
      const __m256d vc = _mm256_set1_pd(c);
      const __m256d vcm = _mm256_set1_pd(cm);
      for (; k >= 4; k -= 4) {
        const __m256d cur = _mm256_loadu_pd(poly + k - 3);
        const __m256d prev = _mm256_loadu_pd(poly + k - 4);
        _mm256_storeu_pd(poly + k - 3,
                         _mm256_add_pd(_mm256_mul_pd(vc, cur),
                                       _mm256_mul_pd(vcm, prev)));
      }
      for (; k > 0; --k) {
        poly[k] = c * poly[k] + cm * poly[k - 1];
      }
      poly[0] *= c;
      ++size;
    }
    double integral = 0.0;
    for (std::size_t x = 0; x < size; ++x) {
      integral += poly[x] / (m + static_cast<double>(size - x));
    }
    total += factor * pb * integral;
  }
  return total;
}

__attribute__((target("avx512f"))) double ExactSumAvx512(
    const double* rconf, std::size_t rn, const double* match_conf,
    const uint32_t* match_rpos, std::size_t pn, double m, double factor,
    double* poly) {
  double total = 0.0;
  for (std::size_t j = 0; j < pn; ++j) {
    const double pb = match_conf[j];
    if (pb == 0.0) continue;
    const uint32_t skip = match_rpos[j];
    std::size_t size = 1;
    poly[0] = 1.0;
    for (std::size_t i = 0; i < rn; ++i) {
      if (i == skip) continue;
      const double c = rconf[i];
      const double cm = 1.0 - c;
      poly[size] = 0.0;
      std::size_t k = size;
      const __m512d vc = _mm512_set1_pd(c);
      const __m512d vcm = _mm512_set1_pd(cm);
      for (; k >= 8; k -= 8) {
        const __m512d cur = _mm512_loadu_pd(poly + k - 7);
        const __m512d prev = _mm512_loadu_pd(poly + k - 8);
        _mm512_storeu_pd(poly + k - 7,
                         _mm512_add_pd(_mm512_mul_pd(vc, cur),
                                       _mm512_mul_pd(vcm, prev)));
      }
      for (; k > 0; --k) {
        poly[k] = c * poly[k] + cm * poly[k - 1];
      }
      poly[0] *= c;
      ++size;
    }
    double integral = 0.0;
    for (std::size_t x = 0; x < size; ++x) {
      integral += poly[x] / (m + static_cast<double>(size - x));
    }
    total += factor * pb * integral;
  }
  return total;
}

#endif  // INFOLEAK_KERNELS_X86

constexpr KernelTable kScalarTable = {
    "scalar",     ExactSumScalar, ApproxSumScalar,
    NaiveSumScalar, RecallSumScalar, BoundsScalar,
};

#if INFOLEAK_KERNELS_X86
constexpr KernelTable kAvx2Table = {
    "avx2",       ExactSumAvx2,   ApproxSumScalar,
    NaiveSumScalar, RecallSumScalar, BoundsScalar,
};
constexpr KernelTable kAvx512Table = {
    "avx512",     ExactSumAvx512, ApproxSumScalar,
    NaiveSumScalar, RecallSumScalar, BoundsScalar,
};
#endif

}  // namespace

const KernelTable& Scalar() { return kScalarTable; }

const KernelTable& Wide() {
#if INFOLEAK_KERNELS_X86
  static const KernelTable& table = []() -> const KernelTable& {
    if (__builtin_cpu_supports("avx512f")) return kAvx512Table;
    if (__builtin_cpu_supports("avx2")) return kAvx2Table;
    return kScalarTable;
  }();
  return table;
#else
  return kScalarTable;
#endif
}

bool ForcedScalar() {
#ifdef INFOLEAK_FORCE_SCALAR
  return true;
#else
  static const bool forced = [] {
    const char* env = std::getenv("INFOLEAK_FORCE_SCALAR");
    return env != nullptr && env[0] != '\0' &&
           std::string_view(env) != std::string_view("0");
  }();
  return forced;
#endif
}

const KernelTable& Active() {
  static const KernelTable& table = ForcedScalar() ? Scalar() : Wide();
  return table;
}

}  // namespace infoleak::kern
