#pragma once

#include <string>
#include <string_view>

#include "core/database.h"
#include "core/record.h"
#include "util/result.h"

namespace infoleak {

/// Serialization for records and databases.
///
/// Text form (what `Record::ToString()` prints, and what the CLI accepts):
///   {<N, Alice>, <A, 20, 0.5>}
/// Attributes are `<label, value>` or `<label, value, confidence>`; commas
/// inside values are not supported in the text form — use CSV for those.
///
/// CSV form (long format, one attribute per row):
///   record,label,value,confidence
///   0,N,Alice,1
///   0,A,20,0.5
///   1,N,Bob,1
/// `record` indices group attributes into records; indices must be
/// non-negative integers and records appear in first-occurrence order.

/// \brief Parses the text form. Accepts optional surrounding braces and
/// whitespace; an empty body yields an empty record.
Result<Record> ParseRecord(std::string_view text);

/// \brief Renders the text form (same as `Record::ToString()`).
std::string FormatRecord(const Record& record);

/// \brief Parses a long-format CSV document into a database.
Result<Database> LoadDatabaseCsv(std::string_view csv_text);

/// \brief Renders a database in long-format CSV (with header).
std::string SaveDatabaseCsv(const Database& db);

}  // namespace infoleak
