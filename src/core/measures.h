#pragma once

#include "core/record.h"
#include "core/weights.h"

namespace infoleak {

/// Correctness / completeness measures of §2.1–2.2. All functions treat both
/// records as certain (confidences ignored); the possible-worlds machinery in
/// leakage.h layers uncertainty on top of these.

/// \brief Precision of `r` against reference `p`:
/// Σ_{a∈r∩p} w / Σ_{a∈r} w, or 0 when the denominator is 0.
double Precision(const Record& r, const Record& p, const WeightModel& wm);

/// \brief Recall of `r` against reference `p`:
/// Σ_{a∈r∩p} w / Σ_{a∈p} w, or 0 when the denominator is 0.
double Recall(const Record& r, const Record& p, const WeightModel& wm);

/// \brief Weighted harmonic mean F_β = (β²+1)·Pr·Re / (β²·Pr + Re);
/// 0 when both inputs are 0. β > 1 emphasizes recall.
double FBeta(double precision, double recall, double beta);

/// \brief F1 = harmonic mean of precision and recall.
double F1(double precision, double recall);

/// \brief The paper's L0(r, p): record leakage without confidences,
/// F1(Pr(r,p), Re(r,p)). For equal weights this simplifies to
/// 2·|r∩p| / (|r| + |p|).
double RecordLeakageNoConfidence(const Record& r, const Record& p,
                                 const WeightModel& wm);

}  // namespace infoleak
