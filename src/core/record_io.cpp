#include "core/record_io.h"

#include <cmath>
#include <cstdlib>
#include <map>

#include "util/csv.h"
#include "util/string_util.h"

namespace infoleak {
namespace {

Result<double> ParseConfidence(std::string_view text) {
  std::string buf(Trim(text));
  char* end = nullptr;
  double c = std::strtod(buf.c_str(), &end);
  if (buf.empty() || end == nullptr || *end != '\0' || !std::isfinite(c)) {
    return Status::InvalidArgument("bad confidence '" + buf + "'");
  }
  if (c < 0.0 || c > 1.0) {
    return Status::OutOfRange("confidence " + buf + " outside [0, 1]");
  }
  return c;
}

Result<Attribute> ParseAttributeBody(std::string_view body) {
  // body is the inside of <...>: "label, value[, confidence]".
  auto parts = Split(body, ',');
  if (parts.size() != 2 && parts.size() != 3) {
    return Status::InvalidArgument("attribute '<" + std::string(body) +
                                   ">' needs 2 or 3 comma-separated fields");
  }
  std::string label(Trim(parts[0]));
  std::string value(Trim(parts[1]));
  if (label.empty()) {
    return Status::InvalidArgument("empty attribute label");
  }
  double confidence = 1.0;
  if (parts.size() == 3) {
    auto c = ParseConfidence(parts[2]);
    if (!c.ok()) return c.status();
    confidence = *c;
  }
  return Attribute(std::move(label), std::move(value), confidence);
}

}  // namespace

Result<Record> ParseRecord(std::string_view text) {
  std::string_view body = Trim(text);
  if (!body.empty() && body.front() == '{') {
    if (body.back() != '}') {
      return Status::InvalidArgument("unbalanced braces in record");
    }
    body = Trim(body.substr(1, body.size() - 2));
  }
  Record record;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t open = body.find('<', pos);
    // Whatever sits between attributes may only be whitespace or a comma.
    std::string_view gap = Trim(body.substr(
        pos, open == std::string_view::npos ? std::string_view::npos
                                            : open - pos));
    if (!gap.empty() && gap != ",") {
      return Status::InvalidArgument("unexpected text in record: '" +
                                     std::string(gap) + "'");
    }
    if (open == std::string_view::npos) break;
    std::size_t close = body.find('>', open);
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated attribute in record");
    }
    auto attr = ParseAttributeBody(body.substr(open + 1, close - open - 1));
    if (!attr.ok()) return attr.status();
    record.Insert(std::move(attr).value());
    pos = close + 1;
  }
  return record;
}

std::string FormatRecord(const Record& record) { return record.ToString(); }

Result<Database> LoadDatabaseCsv(std::string_view csv_text) {
  auto rows = Csv::Parse(csv_text);
  if (!rows.ok()) return rows.status();
  if (rows->empty()) return Database{};
  std::size_t start = 0;
  if (!(*rows)[0].empty() && (*rows)[0][0] == "record") start = 1;  // header

  // Records keyed by index, in first-occurrence order.
  std::vector<long long> order;
  std::map<long long, Record> records;
  for (std::size_t i = start; i < rows->size(); ++i) {
    const auto& row = (*rows)[i];
    if (row.size() != 3 && row.size() != 4) {
      return Status::InvalidArgument(
          "CSV row " + std::to_string(i + 1) +
          " needs record,label,value[,confidence]");
    }
    char* end = nullptr;
    std::string idx_text(Trim(row[0]));
    long long index = std::strtoll(idx_text.c_str(), &end, 10);
    if (idx_text.empty() || end == nullptr || *end != '\0' || index < 0) {
      return Status::InvalidArgument("bad record index '" + idx_text + "'");
    }
    double confidence = 1.0;
    if (row.size() == 4 && !Trim(row[3]).empty()) {
      auto c = ParseConfidence(row[3]);
      if (!c.ok()) return c.status();
      confidence = *c;
    }
    auto [it, inserted] = records.try_emplace(index);
    if (inserted) order.push_back(index);
    it->second.Insert(Attribute(std::string(Trim(row[1])), row[2],
                                confidence));
  }
  Database db;
  for (long long index : order) db.Add(std::move(records[index]));
  return db;
}

std::string SaveDatabaseCsv(const Database& db) {
  std::string out = "record,label,value,confidence\n";
  for (std::size_t i = 0; i < db.size(); ++i) {
    for (const auto& a : db[i]) {
      out += Csv::FormatRow({std::to_string(i), a.label, a.value,
                             FormatDoubleRoundTrip(a.confidence)});
      out += '\n';
    }
  }
  return out;
}

}  // namespace infoleak
