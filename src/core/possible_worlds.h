#pragma once

#include <cstdint>
#include <functional>

#include "core/record.h"
#include "util/status.h"

namespace infoleak {

/// \brief Possible-worlds semantics of an uncertain record (paper §2.3).
///
/// A record with independent per-attribute confidences denotes a distribution
/// over 2^|r| certain records: each attribute appears in a world
/// independently with its confidence as inclusion probability. Worlds are
/// the paper's W(r).
///
/// Enumeration is exponential by design — it is the correctness oracle the
/// naive algorithm of §5 (and Figure 3(d)) is built on. Callers must bound
/// |r| via `max_attributes`.

/// Hard cap on enumerable attributes (2^30 worlds ≈ 1G — far beyond any
/// reasonable call, but prevents accidental 2^200 loops).
inline constexpr std::size_t kMaxEnumerableAttributes = 30;

/// \brief Invokes `fn(world, probability)` for every possible world of `r`.
///
/// Worlds with probability 0 are still visited (the naive algorithm's cost
/// is 2^|r| regardless of confidence values, matching the paper's O(2^|r|)
/// analysis). The visited worlds' probabilities sum to 1.
///
/// Fails with ResourceExhausted when |r| exceeds `max_attributes`.
Status ForEachPossibleWorld(
    const Record& r,
    const std::function<void(const Record& world, double probability)>& fn,
    std::size_t max_attributes = kMaxEnumerableAttributes);

/// \brief Number of possible worlds (2^|r|), or ResourceExhausted when out
/// of range.
Status CountPossibleWorlds(const Record& r, uint64_t* count,
                           std::size_t max_attributes =
                               kMaxEnumerableAttributes);

}  // namespace infoleak
