#include "core/record.h"

#include <algorithm>

namespace infoleak {
namespace {

double ClampConfidence(double c) {
  if (c < 0.0) return 0.0;
  if (c > 1.0) return 1.0;
  return c;
}

bool KeyLess(const Attribute& a, std::string_view label,
             std::string_view value) {
  if (a.label != label) return a.label < label;
  return a.value < value;
}

}  // namespace

Record::Record(std::initializer_list<Attribute> attrs) {
  for (const auto& a : attrs) Insert(a);
}

Record::Record(std::vector<Attribute> attrs) {
  for (auto& a : attrs) Insert(std::move(a));
}

std::vector<Attribute>::iterator Record::LowerBound(std::string_view label,
                                                    std::string_view value) {
  return std::lower_bound(
      attrs_.begin(), attrs_.end(), std::make_pair(label, value),
      [](const Attribute& a, const auto& key) {
        return KeyLess(a, key.first, key.second);
      });
}

std::vector<Attribute>::const_iterator Record::LowerBound(
    std::string_view label, std::string_view value) const {
  return std::lower_bound(
      attrs_.begin(), attrs_.end(), std::make_pair(label, value),
      [](const Attribute& a, const auto& key) {
        return KeyLess(a, key.first, key.second);
      });
}

void Record::Insert(Attribute attr) {
  attr.confidence = ClampConfidence(attr.confidence);
  auto it = LowerBound(attr.label, attr.value);
  if (it != attrs_.end() && it->SameInfo(attr)) {
    it->confidence = std::max(it->confidence, attr.confidence);
    return;
  }
  attrs_.insert(it, std::move(attr));
}

Status Record::InsertStrict(Attribute attr) {
  if (Contains(attr.label, attr.value)) {
    return Status::AlreadyExists("attribute " + attr.ToString() +
                                 " already present");
  }
  Insert(std::move(attr));
  return Status::OK();
}

Status Record::Erase(std::string_view label, std::string_view value) {
  auto it = LowerBound(label, value);
  if (it == attrs_.end() || it->label != label || it->value != value) {
    return Status::NotFound("no attribute <" + std::string(label) + ", " +
                            std::string(value) + ">");
  }
  attrs_.erase(it);
  return Status::OK();
}

double Record::Confidence(std::string_view label,
                          std::string_view value) const {
  const Attribute* a = Find(label, value);
  return a != nullptr ? a->confidence : 0.0;
}

bool Record::Contains(std::string_view label, std::string_view value) const {
  return Find(label, value) != nullptr;
}

const Attribute* Record::Find(std::string_view label,
                              std::string_view value) const {
  auto it = LowerBound(label, value);
  if (it == attrs_.end() || it->label != label || it->value != value) {
    return nullptr;
  }
  return &*it;
}

Status Record::SetConfidence(std::string_view label, std::string_view value,
                             double confidence) {
  auto it = LowerBound(label, value);
  if (it == attrs_.end() || it->label != label || it->value != value) {
    return Status::NotFound("no attribute <" + std::string(label) + ", " +
                            std::string(value) + ">");
  }
  it->confidence = ClampConfidence(confidence);
  return Status::OK();
}

Record Record::WithFullConfidence() const {
  Record out = *this;
  for (auto& a : out.attrs_) a.confidence = 1.0;
  return out;
}

void Record::MergeFrom(const Record& other) {
  if (other.attrs_.empty()) {
    for (RecordId id : other.sources_) AddSource(id);
    return;
  }
  // Both attribute vectors are sorted by (label, value): a linear
  // two-pointer merge beats repeated Insert's O(n²) vector shifting.
  std::vector<Attribute> merged;
  merged.reserve(attrs_.size() + other.attrs_.size());
  auto it_a = attrs_.begin();
  auto it_b = other.attrs_.begin();
  while (it_a != attrs_.end() && it_b != other.attrs_.end()) {
    if (it_a->Key() < it_b->Key()) {
      merged.push_back(std::move(*it_a++));
    } else if (it_b->Key() < it_a->Key()) {
      merged.push_back(*it_b++);
    } else {
      Attribute combined = std::move(*it_a++);
      combined.confidence = std::max(combined.confidence, it_b->confidence);
      merged.push_back(std::move(combined));
      ++it_b;
    }
  }
  merged.insert(merged.end(), std::make_move_iterator(it_a),
                std::make_move_iterator(attrs_.end()));
  merged.insert(merged.end(), it_b, other.attrs_.end());
  attrs_ = std::move(merged);

  if (!other.sources_.empty()) {
    std::vector<RecordId> sources;
    sources.reserve(sources_.size() + other.sources_.size());
    std::set_union(sources_.begin(), sources_.end(), other.sources_.begin(),
                   other.sources_.end(), std::back_inserter(sources));
    sources_ = std::move(sources);
  }
}

Record Record::Merge(const Record& a, const Record& b) {
  Record out = a;
  out.MergeFrom(b);
  return out;
}

void Record::AddSource(RecordId id) {
  auto it = std::lower_bound(sources_.begin(), sources_.end(), id);
  if (it != sources_.end() && *it == id) return;
  sources_.insert(it, id);
}

bool Record::HasSource(RecordId id) const {
  return std::binary_search(sources_.begin(), sources_.end(), id);
}

std::string Record::ToString() const {
  std::string out = "{";
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace infoleak
