#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/record.h"
#include "core/symbols.h"
#include "core/weights.h"

namespace infoleak {

/// \brief One interned attribute: symbol ids instead of strings, the
/// per-label weight already resolved. The unit of work of the prepared
/// evaluation hot path.
struct PreparedAttr {
  uint32_t label = SymbolTable::kNoSymbol;
  uint32_t value = SymbolTable::kNoSymbol;
  double confidence = 0.0;
  double weight = 0.0;
};

/// \brief The reference record `p` prepared once for many evaluations:
/// interned attributes in the record's canonical (label, value) order, the
/// precomputed total weight Σ_{b∈p} w_b, a per-label weight cache, and a
/// hash index for O(1) match lookups by id pair.
///
/// Lifetime: the prepared reference keeps pointers to the source record and
/// the weight model — both must outlive it. It owns the symbol tables its
/// ids refer to; `PreparedRecord`s are prepared *against* a reference and
/// are only meaningful with that reference.
///
/// The attribute order deliberately mirrors the source record's canonical
/// string order (not id order) so that prepared evaluations accumulate
/// floating-point sums in exactly the same order as the string API — the
/// two paths are bit-identical, which the equivalence property test pins.
class PreparedReference {
 public:
  /// Position sentinel returned by MatchPosition for non-matches.
  static constexpr uint32_t kNoMatch = 0xFFFFFFFFu;

  PreparedReference(const Record& p, const WeightModel& wm);

  PreparedReference(PreparedReference&&) = default;
  PreparedReference& operator=(PreparedReference&&) = default;
  PreparedReference(const PreparedReference&) = delete;
  PreparedReference& operator=(const PreparedReference&) = delete;

  const std::vector<PreparedAttr>& attrs() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }

  /// Σ_{b∈p} w_b, summed in canonical order (== wm.TotalWeight(p)).
  double total_weight() const { return total_weight_; }

  /// Position of (label, value) in attrs(), or kNoMatch. O(1).
  uint32_t MatchPosition(uint32_t label, uint32_t value) const {
    if (label == SymbolTable::kNoSymbol || value == SymbolTable::kNoSymbol) {
      return kNoMatch;
    }
    auto it = match_.find(PackSymbolPair(label, value));
    return it != match_.end() ? it->second : kNoMatch;
  }

  /// Cached wm.Weight(label) for labels interned by this reference.
  double LabelWeight(uint32_t label) const { return label_weight_[label]; }

  /// True iff every label of `p` carries one weight value (vacuously true
  /// when empty); `common_weight()` is that value.
  bool uniform_weight() const { return uniform_; }
  double common_weight() const { return common_weight_; }

  const Symbols& symbols() const { return syms_; }
  const WeightModel& weight_model() const { return *wm_; }

  /// The source record `p` (for engines without a prepared path).
  const Record& record() const { return *source_; }

 private:
  Symbols syms_;
  std::vector<PreparedAttr> attrs_;       // canonical order of p
  std::vector<double> label_weight_;      // by label id
  std::unordered_map<uint64_t, uint32_t> match_;  // packed ids -> position
  double total_weight_ = 0.0;
  bool uniform_ = true;
  double common_weight_ = 0.0;
  const Record* source_;
  const WeightModel* wm_;
};

/// \brief An adversary record `r` prepared against a reference: interned
/// attributes (canonical order, weights resolved). Attributes whose label or
/// value never occurs in the reference get kNoSymbol ids — they can match
/// nothing, which is all the evaluation needs — so the reference's symbol
/// tables stay bounded by |p| no matter how many records stream through.
///
/// Default-constructible and reusable: `Assign` re-prepares in place,
/// reusing capacity, so a caller evaluating a whole database touches the
/// allocator only while the first few records grow the buffer.
class PreparedRecord {
 public:
  PreparedRecord() = default;
  PreparedRecord(const Record& r, const PreparedReference& ref) {
    Assign(r, ref);
  }

  /// Re-prepares this view for `r` against `ref`, reusing storage.
  void Assign(const Record& r, const PreparedReference& ref);

  const std::vector<PreparedAttr>& attrs() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }

  /// True iff every label of `r` carries one weight value (vacuously true
  /// when empty); `common_weight()` is that value.
  bool uniform_weight() const { return uniform_; }
  double common_weight() const { return common_weight_; }

 private:
  std::vector<PreparedAttr> attrs_;
  bool uniform_ = true;
  double common_weight_ = 0.0;
};

/// True iff one common weight covers every label of `r` and `p` — the
/// prepared analogue of WeightModel::IsConstantOver (Algorithm 1's
/// precondition).
bool UniformWeightOver(const PreparedRecord& r, const PreparedReference& p);

/// \brief Caller-owned scratch for prepared evaluations. Engines size the
/// buffers on demand; capacity is retained across calls, so reusing one
/// workspace for a batch of evaluations makes the steady state
/// allocation-free. Contents are engine-internal and carry no state between
/// calls — any evaluation may be replayed with a fresh workspace and yields
/// the identical result.
struct LeakageWorkspace {
  std::vector<double> poly;        // Algorithm 1's coefficient list Y
  std::vector<double> match_conf;  // per reference position: p(b, r)
  std::vector<uint32_t> match_rpos;  // per reference position: index into r
  std::vector<uint8_t> matched;      // per record attribute: b ∈ p?
};

/// Fills `ws->match_conf` / `ws->match_rpos` for (r, p): one O(|r|) pass of
/// hash lookups shared by every prepared evaluation core.
void FillMatches(const PreparedRecord& r, const PreparedReference& p,
                 LeakageWorkspace* ws);

}  // namespace infoleak
