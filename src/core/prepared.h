#pragma once

#include <cstdint>
#include <vector>

#include "core/record.h"
#include "core/symbols.h"
#include "core/weights.h"

namespace infoleak {

/// \brief Open-addressing map from packed (label, value) id pairs to
/// reference positions — the data-oriented replacement for the
/// `std::unordered_map` the match index used to live in. Linear probing
/// over one flat array of power-of-two capacity: a lookup is one multiply,
/// one shift, and (at load factor <= 1/2) almost always one cache line,
/// where the node-based map paid a pointer chase per probe. The packed key
/// 0xFFFF..FF can never occur (it would need both ids to be kNoSymbol,
/// which MatchPosition screens out), so it doubles as the empty-slot mark.
class FlatPairMap {
 public:
  /// Value returned by Find for absent keys (== PreparedReference::kNoMatch).
  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

  FlatPairMap() { Rehash(kMinCapacity); }

  /// Pre-sizes for `expected` insertions (capacity stays a power of two,
  /// load factor <= 1/2).
  void Reserve(std::size_t expected) {
    std::size_t cap = kMinCapacity;
    while (cap < expected * 2) cap *= 2;
    if (cap > keys_.size()) Rehash(cap);
  }

  /// Inserts (key, value); a key already present keeps its first value
  /// (mirroring the emplace semantics the match index relies on).
  void Insert(uint64_t key, uint32_t value) {
    if ((size_ + 1) * 2 > keys_.size()) Rehash(keys_.size() * 2);
    std::size_t i = Slot(key);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return;
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = value;
    ++size_;
  }

  /// Value for `key`, or kNotFound.
  uint32_t Find(uint64_t key) const {
    std::size_t i = Slot(key);
    while (keys_[i] != kEmptyKey) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  std::size_t size() const { return size_; }

 private:
  static constexpr uint64_t kEmptyKey = ~uint64_t{0};
  static constexpr std::size_t kMinCapacity = 8;

  /// Fibonacci multiplicative hash: ids are dense and low-entropy, the odd
  /// multiplier spreads them across the high bits, and the shift keeps
  /// exactly the bits the capacity can address.
  std::size_t Slot(uint64_t key) const {
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> shift_) &
           mask_;
  }

  void Rehash(std::size_t capacity) {
    std::vector<uint64_t> old_keys = std::move(keys_);
    std::vector<uint32_t> old_values = std::move(values_);
    keys_.assign(capacity, kEmptyKey);
    values_.assign(capacity, 0);
    mask_ = capacity - 1;
    shift_ = 64;
    for (std::size_t c = capacity; c > 1; c /= 2) --shift_;
    size_ = 0;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmptyKey) continue;
      std::size_t j = Slot(old_keys[i]);
      while (keys_[j] != kEmptyKey) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
      ++size_;
    }
  }

  std::vector<uint64_t> keys_;
  std::vector<uint32_t> values_;
  std::size_t mask_ = 0;
  unsigned shift_ = 64;
  std::size_t size_ = 0;
};

/// \brief One interned attribute: symbol ids instead of strings, the
/// per-label weight already resolved. The unit of work of the prepared
/// evaluation hot path.
struct PreparedAttr {
  uint32_t label = SymbolTable::kNoSymbol;
  uint32_t value = SymbolTable::kNoSymbol;
  double confidence = 0.0;
  double weight = 0.0;
};

/// \brief The reference record `p` prepared once for many evaluations:
/// interned attributes in the record's canonical (label, value) order, the
/// precomputed total weight Σ_{b∈p} w_b, a per-label weight cache, and a
/// hash index for O(1) match lookups by id pair.
///
/// Lifetime: the prepared reference keeps pointers to the source record and
/// the weight model — both must outlive it. It owns the symbol tables its
/// ids refer to; `PreparedRecord`s are prepared *against* a reference and
/// are only meaningful with that reference.
///
/// The attribute order deliberately mirrors the source record's canonical
/// string order (not id order) so that prepared evaluations accumulate
/// floating-point sums in exactly the same order as the string API — the
/// two paths are bit-identical, which the equivalence property test pins.
class PreparedReference {
 public:
  /// Position sentinel returned by MatchPosition for non-matches.
  static constexpr uint32_t kNoMatch = 0xFFFFFFFFu;

  PreparedReference(const Record& p, const WeightModel& wm);

  PreparedReference(PreparedReference&&) = default;
  PreparedReference& operator=(PreparedReference&&) = default;
  PreparedReference(const PreparedReference&) = delete;
  PreparedReference& operator=(const PreparedReference&) = delete;

  const std::vector<PreparedAttr>& attrs() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }

  /// Σ_{b∈p} w_b, summed in canonical order (== wm.TotalWeight(p)).
  double total_weight() const { return total_weight_; }

  /// Position of (label, value) in attrs(), or kNoMatch. O(1): one probe
  /// into the flat pair index (FlatPairMap::kNotFound == kNoMatch).
  uint32_t MatchPosition(uint32_t label, uint32_t value) const {
    if (label == SymbolTable::kNoSymbol || value == SymbolTable::kNoSymbol) {
      return kNoMatch;
    }
    return match_.Find(PackSymbolPair(label, value));
  }

  /// Cached wm.Weight(label) for labels interned by this reference.
  double LabelWeight(uint32_t label) const { return label_weight_[label]; }

  /// Per-position attribute weights as one contiguous column
  /// (attr_weights()[j] == attrs()[j].weight) — what the array kernels
  /// stream instead of striding through PreparedAttr.
  const std::vector<double>& attr_weights() const { return attr_weight_; }

  /// True iff every label of `p` carries one weight value (vacuously true
  /// when empty); `common_weight()` is that value.
  bool uniform_weight() const { return uniform_; }
  double common_weight() const { return common_weight_; }

  const Symbols& symbols() const { return syms_; }
  const WeightModel& weight_model() const { return *wm_; }

  /// The source record `p` (for engines without a prepared path).
  const Record& record() const { return *source_; }

 private:
  Symbols syms_;
  std::vector<PreparedAttr> attrs_;       // canonical order of p
  std::vector<double> attr_weight_;       // by position (weight column)
  std::vector<double> label_weight_;      // by label id
  FlatPairMap match_;                     // packed ids -> position
  double total_weight_ = 0.0;
  bool uniform_ = true;
  double common_weight_ = 0.0;
  const Record* source_;
  const WeightModel* wm_;
};

/// \brief An adversary record `r` prepared against a reference: interned
/// attributes (canonical order, weights resolved). Attributes whose label or
/// value never occurs in the reference get kNoSymbol ids — they can match
/// nothing, which is all the evaluation needs — so the reference's symbol
/// tables stay bounded by |p| no matter how many records stream through.
///
/// Default-constructible and reusable: `Assign` re-prepares in place,
/// reusing capacity, so a caller evaluating a whole database touches the
/// allocator only while the first few records grow the buffer.
class PreparedRecord {
 public:
  PreparedRecord() = default;
  PreparedRecord(const Record& r, const PreparedReference& ref) {
    Assign(r, ref);
  }

  /// Re-prepares this view for `r` against `ref`, reusing storage.
  void Assign(const Record& r, const PreparedReference& ref);

  const std::vector<PreparedAttr>& attrs() const { return attrs_; }
  std::size_t size() const { return attrs_.size(); }

  /// True iff every label of `r` carries one weight value (vacuously true
  /// when empty); `common_weight()` is that value.
  bool uniform_weight() const { return uniform_; }
  double common_weight() const { return common_weight_; }

 private:
  std::vector<PreparedAttr> attrs_;
  bool uniform_ = true;
  double common_weight_ = 0.0;
};

/// True iff one common weight covers every label of `r` and `p` — the
/// prepared analogue of WeightModel::IsConstantOver (Algorithm 1's
/// precondition).
bool UniformWeightOver(const PreparedRecord& r, const PreparedReference& p);

/// \brief Caller-owned scratch for prepared evaluations. Engines size the
/// buffers on demand; capacity is retained across calls, so reusing one
/// workspace for a batch of evaluations makes the steady state
/// allocation-free. Contents are engine-internal and carry no state between
/// calls — any evaluation may be replayed with a fresh workspace and yields
/// the identical result.
struct LeakageWorkspace {
  std::vector<double> poly;        // Algorithm 1's coefficient list Y
  std::vector<double> match_conf;  // per reference position: p(b, r)
  std::vector<uint32_t> match_rpos;  // per reference position: index into r
  std::vector<uint8_t> matched;      // per record attribute: b ∈ p?
  std::vector<double> conf;    // per record attribute: confidence column
  std::vector<double> weight;  // per record attribute: weight column

  /// Pre-grows every buffer for records up to `max_record_attrs` attributes
  /// against a reference of `reference_attrs` — after this, evaluating any
  /// such record performs zero allocations (the sharded set-leakage workers
  /// call it once per contiguous range; asserted by the steady-state test).
  void ReserveFor(std::size_t max_record_attrs, std::size_t reference_attrs);
};

/// Fills `ws->match_conf` / `ws->match_rpos` for (r, p): one O(|r|) pass of
/// hash lookups shared by every prepared evaluation core.
void FillMatches(const PreparedRecord& r, const PreparedReference& p,
                 LeakageWorkspace* ws);

}  // namespace infoleak
