#pragma once

#include <map>
#include <string>
#include <string_view>

#include "core/database.h"
#include "core/record.h"
#include "core/weights.h"
#include "util/result.h"

namespace infoleak {

/// Statistical-background-knowledge extension of §2.1: "knowing that
/// someone has an average age may be less leakage than knowing that
/// someone has an exceptional age". A `ValueDistribution` learned from a
/// population scores each (label, value) by its self-information; an
/// `InformativenessWeigher` scales the label weight by how surprising the
/// value is, so rare values contribute more leakage than common ones.

/// \brief Empirical distribution of values per label, with add-one
/// smoothing so unseen values get finite (maximal) surprisal.
class ValueDistribution {
 public:
  /// Counts one observation of (label, value).
  void Observe(std::string_view label, std::string_view value);

  /// Counts every attribute of every record.
  void ObserveDatabase(const Database& db);

  /// Smoothed probability of `value` under `label`:
  /// (count + 1) / (total + distinct + 1). Labels never observed yield
  /// 1/2 (one pseudo-observation out of two).
  double Probability(std::string_view label, std::string_view value) const;

  /// Self-information −ln P(value | label), ≥ 0.
  double Surprisal(std::string_view label, std::string_view value) const;

  /// Mean surprisal of the observed values of `label` (its empirical
  /// entropy-ish normalizer); 1.0 for unobserved labels.
  double MeanSurprisal(std::string_view label) const;

  std::size_t TotalObservations(std::string_view label) const;

 private:
  struct LabelStats {
    std::map<std::string, std::size_t, std::less<>> counts;
    std::size_t total = 0;
  };
  std::map<std::string, LabelStats, std::less<>> labels_;
};

/// \brief Per-attribute weight: label weight × value informativeness.
///
/// The scale factor is surprisal / mean-surprisal for the label, clamped to
/// [min_scale, max_scale]: an average value keeps roughly its base weight,
/// a rare value weighs more, a ubiquitous value less. Labels without
/// observations keep their base weight exactly.
class InformativenessWeigher {
 public:
  InformativenessWeigher(const WeightModel& base,
                         const ValueDistribution& distribution,
                         double min_scale = 0.25, double max_scale = 4.0);

  /// Effective weight of one attribute.
  double Weight(const Attribute& a) const;
  double Weight(std::string_view label, std::string_view value) const;

  double TotalWeight(const Record& r) const;
  double OverlapWeight(const Record& r, const Record& p) const;

 private:
  const WeightModel& base_;
  const ValueDistribution& distribution_;
  double min_scale_;
  double max_scale_;
};

/// Informativeness-aware measures (exact attribute matching, surprisal-
/// scaled weights). With an empty distribution they reduce to the base
/// measures.

double InformedPrecision(const Record& r, const Record& p,
                         const InformativenessWeigher& weigher);
double InformedRecall(const Record& r, const Record& p,
                      const InformativenessWeigher& weigher);
double InformedRecordLeakageNoConfidence(const Record& r, const Record& p,
                                         const InformativenessWeigher& w);

/// \brief E[informed-L0(r̄, p)] by possible-world enumeration (per-value
/// weights rule out Algorithm 1's constant-weight shortcut).
Result<double> InformedRecordLeakage(const Record& r, const Record& p,
                                     const InformativenessWeigher& weigher,
                                     std::size_t max_attributes = 25);

}  // namespace infoleak
