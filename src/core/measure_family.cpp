#include "core/measure_family.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "obs/metrics.h"

namespace infoleak {
namespace {

// Same metric family as the classic engines (core/leakage.cpp): every
// measure evaluation counts under its engine label, which is what gives
// the serving layer per-measure metric visibility for free.
obs::Counter& MeasureEvalCounter(std::string_view engine) {
  return obs::MetricsRegistry::Global().GetCounter(
      "infoleak_leakage_evaluations_total",
      {{"engine", std::string(engine)}},
      "Record-leakage evaluations per engine (the hot-loop unit of work)");
}

/// Engine-contract finisher (mirrors core/leakage.cpp): finite totals may
/// only leave [0, 1] by floating rounding, so clamp; non-finite totals mean
/// the weight model overflowed double arithmetic, so refuse.
Result<double> FinishUnitInterval(double total, const char* what) {
  if (!std::isfinite(total)) {
    return Status::InvalidArgument(
        std::string(what) +
        " is not finite; the weight model is too extreme for double "
        "arithmetic");
  }
  return std::clamp(total, 0.0, 1.0);
}

// ---------------------------------------------------------------------------
// Shared array cores. Each walks the record's confidence/weight/matched
// columns once; (base, factor) parameterizes F1 (base = W(p), factor = 2)
// vs precision (base = 0, factor = 1), the same trick the naive kernel
// uses. Non-contributing attributes are skipped by branch — adding an
// unmatched attribute with confidence < 1 performs zero additional
// floating-point operations, so the result is bit-invariant under such an
// extension (the measure-monotone oracle property).
// ---------------------------------------------------------------------------

/// Pointwise maximal leakage core. F1 = factor·overlap/(total_r̄ + base) is
/// non-decreasing in adding a matched attribute of weight w ≥ 0 (the
/// derivative of factor·(I+t)/(D+t) in t is factor·(D−I)/(D+t)² ≥ 0 since
/// the denominator always carries at least the numerator's mass), so the
/// maximizing positive-probability world includes every matched attribute
/// with confidence > 0, must include every mandatory (confidence == 1)
/// attribute, and excludes every other unmatched one.
double PmlTotal(const double* conf, const double* weight,
                const uint8_t* matched, std::size_t n, double base,
                double factor) {
  double included = 0.0;   // matched, includable: confidence > 0
  double mandatory = 0.0;  // unmatched but present in every world: conf == 1
  for (std::size_t i = 0; i < n; ++i) {
    if (matched[i]) {
      if (conf[i] > 0.0) included += weight[i];
    } else if (conf[i] == 1.0) {
      mandatory += weight[i];
    }
  }
  const double denom = included + mandatory + base;
  return denom > 0.0 ? factor * included / denom : 0.0;
}

/// Guesswork core: the modal world includes an attribute iff its
/// confidence ≥ 0.5 (ties include — the documented convention).
double GuessworkTotal(const double* conf, const double* weight,
                      const uint8_t* matched, std::size_t n, double base,
                      double factor) {
  double modal = 0.0;    // weight of the modal world
  double overlap = 0.0;  // its matched share
  for (std::size_t i = 0; i < n; ++i) {
    if (conf[i] >= 0.5) {
      modal += weight[i];
      if (matched[i]) overlap += weight[i];
    }
  }
  const double denom = modal + base;
  return denom > 0.0 ? factor * overlap / denom : 0.0;
}

/// Fills the workspace's matched/conf/weight columns from a prepared
/// record, exactly as the naive enumeration core does (match flags via the
/// reference's O(1) position index) — but with no record-size cap: the
/// measure cores are linear.
std::size_t FillRecordColumns(const PreparedRecord& r,
                              const PreparedReference& p,
                              LeakageWorkspace* ws) {
  const auto& attrs = r.attrs();
  const std::size_t n = attrs.size();
  ws->matched.assign(n, 0);
  ws->conf.resize(n);
  ws->weight.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    ws->matched[i] =
        p.MatchPosition(attrs[i].label, attrs[i].value) !=
                PreparedReference::kNoMatch
            ? 1
            : 0;
    ws->conf[i] = attrs[i].confidence;
    ws->weight[i] = attrs[i].weight;
  }
  return n;
}

/// Columnar twin: the bank already holds the confidence/weight columns;
/// matched falls out of the precomputed match positions.
void FillMatchedFlags(const ColumnRecordView& r, LeakageWorkspace* ws) {
  ws->matched.assign(r.size, 0);
  for (std::size_t i = 0; i < r.size; ++i) {
    ws->matched[i] = r.match_pos[i] != PreparedReference::kNoMatch ? 1 : 0;
  }
}

Status NoPrecision(std::string_view engine) {
  return Status::NotSupported(
      "engine '" + std::string(engine) +
      "' bounds expected F1 only; it has no precision analogue");
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

std::string_view MeasureName(Measure m) {
  return kMeasureNames[static_cast<int>(m)];
}

Result<Measure> ParseMeasure(std::string_view name) {
  for (std::size_t i = 0; i < std::size(kMeasureNames); ++i) {
    if (name == kMeasureNames[i]) return static_cast<Measure>(i);
  }
  return Status::InvalidArgument(
      "unknown measure '" + std::string(name) +
      "' (expected-f1|pml|guesswork|under|over)");
}

const LeakageEngine* MeasureEngineSingleton(Measure m) {
  static const PmlLeakage pml;
  static const GuessworkLeakage guesswork;
  static const UnderLeakage under;
  static const OverLeakage over;
  switch (m) {
    case Measure::kPml:
      return &pml;
    case Measure::kGuesswork:
      return &guesswork;
    case Measure::kUnder:
      return &under;
    case Measure::kOver:
      return &over;
    case Measure::kExpectedF1:
      break;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// PmlLeakage
// ---------------------------------------------------------------------------

Result<double> PmlLeakage::RecordLeakage(const Record& r, const Record& p,
                                         const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> PmlLeakage::ExpectedPrecision(const Record& r, const Record& p,
                                             const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> PmlLeakage::RecordLeakagePrepared(const PreparedRecord& r,
                                                 const PreparedReference& p,
                                                 LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("pml");
  evals.Inc();
  const std::size_t n = FillRecordColumns(r, p, ws);
  return FinishUnitInterval(
      PmlTotal(ws->conf.data(), ws->weight.data(), ws->matched.data(), n,
               /*base=*/p.total_weight(), /*factor=*/2.0),
      "pointwise maximal leakage");
}

Result<double> PmlLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  const std::size_t n = FillRecordColumns(r, p, ws);
  return FinishUnitInterval(
      PmlTotal(ws->conf.data(), ws->weight.data(), ws->matched.data(), n,
               /*base=*/0.0, /*factor=*/1.0),
      "pointwise maximal precision");
}

Result<double> PmlLeakage::RecordLeakageColumnar(const ColumnRecordView& r,
                                                 const PreparedReference& p,
                                                 LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("pml");
  evals.Inc();
  FillMatchedFlags(r, ws);
  return FinishUnitInterval(
      PmlTotal(r.conf, r.weight, ws->matched.data(), r.size,
               /*base=*/p.total_weight(), /*factor=*/2.0),
      "pointwise maximal leakage");
}

Result<double> PmlLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& /*p*/,
    LeakageWorkspace* ws) const {
  FillMatchedFlags(r, ws);
  return FinishUnitInterval(
      PmlTotal(r.conf, r.weight, ws->matched.data(), r.size, /*base=*/0.0,
               /*factor=*/1.0),
      "pointwise maximal precision");
}

// ---------------------------------------------------------------------------
// GuessworkLeakage
// ---------------------------------------------------------------------------

Result<double> GuessworkLeakage::RecordLeakage(const Record& r,
                                               const Record& p,
                                               const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> GuessworkLeakage::ExpectedPrecision(
    const Record& r, const Record& p, const WeightModel& wm) const {
  return AdaptExpectedPrecision(r, p, wm);
}

Result<double> GuessworkLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("guesswork");
  evals.Inc();
  const std::size_t n = FillRecordColumns(r, p, ws);
  return FinishUnitInterval(
      GuessworkTotal(ws->conf.data(), ws->weight.data(), ws->matched.data(),
                     n, /*base=*/p.total_weight(), /*factor=*/2.0),
      "guesswork leakage");
}

Result<double> GuessworkLeakage::ExpectedPrecisionPrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  const std::size_t n = FillRecordColumns(r, p, ws);
  return FinishUnitInterval(
      GuessworkTotal(ws->conf.data(), ws->weight.data(), ws->matched.data(),
                     n, /*base=*/0.0, /*factor=*/1.0),
      "guesswork precision");
}

Result<double> GuessworkLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("guesswork");
  evals.Inc();
  FillMatchedFlags(r, ws);
  return FinishUnitInterval(
      GuessworkTotal(r.conf, r.weight, ws->matched.data(), r.size,
                     /*base=*/p.total_weight(), /*factor=*/2.0),
      "guesswork leakage");
}

Result<double> GuessworkLeakage::ExpectedPrecisionColumnar(
    const ColumnRecordView& r, const PreparedReference& /*p*/,
    LeakageWorkspace* ws) const {
  FillMatchedFlags(r, ws);
  return FinishUnitInterval(
      GuessworkTotal(r.conf, r.weight, ws->matched.data(), r.size,
                     /*base=*/0.0, /*factor=*/1.0),
      "guesswork precision");
}

// ---------------------------------------------------------------------------
// UnderLeakage / OverLeakage — the probabilistic bounds as engines
// ---------------------------------------------------------------------------

Result<double> UnderLeakage::RecordLeakage(const Record& r, const Record& p,
                                           const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> UnderLeakage::ExpectedPrecision(
    const Record& /*r*/, const Record& /*p*/,
    const WeightModel& /*wm*/) const {
  return NoPrecision(name());
}

Result<double> UnderLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("under");
  evals.Inc();
  return FinishUnitInterval(BoundRecordLeakagePrepared(r, p, ws).lower,
                            "under-estimate leakage bound");
}

Result<double> UnderLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("under");
  evals.Inc();
  return FinishUnitInterval(BoundRecordLeakageView(r, p, ws).lower,
                            "under-estimate leakage bound");
}

Result<double> OverLeakage::RecordLeakage(const Record& r, const Record& p,
                                          const WeightModel& wm) const {
  return AdaptRecordLeakage(r, p, wm);
}

Result<double> OverLeakage::ExpectedPrecision(
    const Record& /*r*/, const Record& /*p*/,
    const WeightModel& /*wm*/) const {
  return NoPrecision(name());
}

Result<double> OverLeakage::RecordLeakagePrepared(
    const PreparedRecord& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("over");
  evals.Inc();
  return FinishUnitInterval(BoundRecordLeakagePrepared(r, p, ws).upper,
                            "over-estimate leakage bound");
}

Result<double> OverLeakage::RecordLeakageColumnar(
    const ColumnRecordView& r, const PreparedReference& p,
    LeakageWorkspace* ws) const {
  static obs::Counter& evals = MeasureEvalCounter("over");
  evals.Inc();
  return FinishUnitInterval(BoundRecordLeakageView(r, p, ws).upper,
                            "over-estimate leakage bound");
}

}  // namespace infoleak
