#pragma once

#include <vector>

namespace infoleak {

/// \brief Dense univariate polynomial helpers for Algorithm 1 (paper §5.1).
///
/// Algorithm 1 rewrites E[t^{|r̄\{b}|}] as the product
/// Π_{a∈z} (p(a,r)·t + (1 − p(a,r))) and integrates the resulting polynomial
/// against t^{|p|} over [0, 1]. We follow the paper's coefficient
/// convention: `coeffs[x]` multiplies t^{n−x} where n = coeffs.size() − 1
/// (descending powers), so the code mirrors the pseudocode's Y/Z lists.
class Poly {
 public:
  /// The constant polynomial 1 (the pseudocode's initial Y = (1.0)).
  static std::vector<double> One() { return {1.0}; }

  /// Multiplies `y` (descending coefficients) by the Bernoulli factor
  /// (c·t + (1−c)), returning a polynomial of one higher degree. This is
  /// steps 8–12 of Algorithm 1 with the off-by-one of the published
  /// pseudocode corrected (the printed loop reads one past the list).
  static std::vector<double> MultiplyBernoulli(const std::vector<double>& y,
                                               double c);

  /// Evaluates ∫₀¹ t^m · Y(t) dt for Y in descending-coefficient form:
  /// Σ_x coeffs[x] / (m + n − x + 1) with n = coeffs.size() − 1, i.e.
  /// Σ_x coeffs[x] / (m + |Y| − x), matching step 14 of Algorithm 1.
  /// `m` may be fractional (m ≥ 0): the F-beta generalization integrates
  /// against t^(β²·|p|).
  static double IntegrateAgainstPower(const std::vector<double>& coeffs,
                                      double m);

  /// Evaluates Y(t) (descending coefficients) via Horner's rule.
  static double Evaluate(const std::vector<double>& coeffs, double t);
};

}  // namespace infoleak
