#include "core/measures.h"

namespace infoleak {

double Precision(const Record& r, const Record& p, const WeightModel& wm) {
  double denom = wm.TotalWeight(r);
  if (denom <= 0.0) return 0.0;
  return wm.OverlapWeight(r, p) / denom;
}

double Recall(const Record& r, const Record& p, const WeightModel& wm) {
  double denom = wm.TotalWeight(p);
  if (denom <= 0.0) return 0.0;
  return wm.OverlapWeight(r, p) / denom;
}

double FBeta(double precision, double recall, double beta) {
  double b2 = beta * beta;
  double denom = b2 * precision + recall;
  if (denom <= 0.0) return 0.0;
  return (b2 + 1.0) * precision * recall / denom;
}

double F1(double precision, double recall) {
  return FBeta(precision, recall, 1.0);
}

double RecordLeakageNoConfidence(const Record& r, const Record& p,
                                 const WeightModel& wm) {
  // Equivalent to F1(Pr, Re) but computed in one pass:
  // 2·Σ_{a∈r∩p} w / (Σ_{a∈r} w + Σ_{a∈p} w).
  double denom = wm.TotalWeight(r) + wm.TotalWeight(p);
  if (denom <= 0.0) return 0.0;
  return 2.0 * wm.OverlapWeight(r, p) / denom;
}

}  // namespace infoleak
