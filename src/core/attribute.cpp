#include "core/attribute.h"

#include "util/string_util.h"

namespace infoleak {

std::string Attribute::ToString() const {
  std::string out = "<";
  out += label;
  out += ", ";
  out += value;
  if (confidence != 1.0) {
    out += ", ";
    // Round-trip rendering: parsing the text back must reproduce the exact
    // double, or every text-transported path (wire protocol, corpus files,
    // CSV) would silently evaluate a slightly different record.
    out += FormatDoubleRoundTrip(confidence);
  }
  out += ">";
  return out;
}

}  // namespace infoleak
