#include "core/attribute.h"

#include "util/string_util.h"

namespace infoleak {

std::string Attribute::ToString() const {
  std::string out = "<";
  out += label;
  out += ", ";
  out += value;
  if (confidence != 1.0) {
    out += ", ";
    out += FormatDouble(confidence, 4);
  }
  out += ">";
  return out;
}

}  // namespace infoleak
