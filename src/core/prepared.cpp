#include "core/prepared.h"

namespace infoleak {

PreparedReference::PreparedReference(const Record& p, const WeightModel& wm)
    : source_(&p), wm_(&wm) {
  attrs_.reserve(p.size());
  attr_weight_.reserve(p.size());
  match_.Reserve(p.size());
  for (const auto& b : p) {
    PreparedAttr pa;
    pa.label = syms_.labels.Intern(b.label);
    if (pa.label == label_weight_.size()) {
      label_weight_.push_back(wm.Weight(b.label));
    }
    pa.value = syms_.values.Intern(b.value);
    pa.confidence = b.confidence;
    pa.weight = label_weight_[pa.label];
    total_weight_ += pa.weight;
    if (attrs_.empty()) {
      common_weight_ = pa.weight;
    } else if (pa.weight != common_weight_) {
      uniform_ = false;
    }
    match_.Insert(PackSymbolPair(pa.label, pa.value),
                  static_cast<uint32_t>(attrs_.size()));
    attr_weight_.push_back(pa.weight);
    attrs_.push_back(pa);
  }
}

void LeakageWorkspace::ReserveFor(std::size_t max_record_attrs,
                                  std::size_t reference_attrs) {
  poly.reserve(max_record_attrs + 1);
  match_conf.reserve(reference_attrs);
  match_rpos.reserve(reference_attrs);
  matched.reserve(max_record_attrs);
  conf.reserve(max_record_attrs);
  weight.reserve(max_record_attrs);
}

void PreparedRecord::Assign(const Record& r, const PreparedReference& ref) {
  attrs_.clear();
  attrs_.reserve(r.size());
  uniform_ = true;
  common_weight_ = 0.0;
  const Symbols& syms = ref.symbols();
  for (const auto& a : r) {
    PreparedAttr pa;
    pa.label = syms.labels.Find(a.label);
    pa.value = syms.values.Find(a.value);
    pa.confidence = a.confidence;
    pa.weight = pa.label != SymbolTable::kNoSymbol
                    ? ref.LabelWeight(pa.label)
                    : ref.weight_model().Weight(a.label);
    if (attrs_.empty()) {
      common_weight_ = pa.weight;
    } else if (pa.weight != common_weight_) {
      uniform_ = false;
    }
    attrs_.push_back(pa);
  }
}

bool UniformWeightOver(const PreparedRecord& r, const PreparedReference& p) {
  if (!r.uniform_weight() || !p.uniform_weight()) return false;
  if (r.size() == 0 || p.size() == 0) return true;
  return r.common_weight() == p.common_weight();
}

void FillMatches(const PreparedRecord& r, const PreparedReference& p,
                 LeakageWorkspace* ws) {
  ws->match_conf.assign(p.size(), 0.0);
  ws->match_rpos.assign(p.size(), PreparedReference::kNoMatch);
  const auto& attrs = r.attrs();
  for (std::size_t i = 0; i < attrs.size(); ++i) {
    const uint32_t pos = p.MatchPosition(attrs[i].label, attrs[i].value);
    if (pos != PreparedReference::kNoMatch) {
      ws->match_conf[pos] = attrs[i].confidence;
      ws->match_rpos[pos] = static_cast<uint32_t>(i);
    }
  }
}

}  // namespace infoleak
